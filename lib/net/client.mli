(** A blocking client with bounded retry.

    Queries are read-only, so every request the protocol carries is
    safe to replay; the client therefore treats the whole transient
    family — connection refused/reset, broken pipe, timeouts, framing
    damage ({!Wire.protocol_error} on the response stream), and the
    server's own [Overloaded]/[Corrupt_frame] answers — uniformly:
    drop the connection if it is suspect, back off exponentially,
    reconnect, replay. The policy mirrors [Failpoint.Io]'s bounded
    retry-with-backoff, and each replay bumps the same [io.retries]
    counter (plus [net.client.retries]) when observability is on.

    Definitive answers — results, [Bad_request], [Deadline],
    [Shutting_down], [Server_error] — are never retried. *)

module Db := Segdb_core.Segdb
open Segdb_geom

type t

exception Error of string
(** Retries exhausted, or the server answered with a non-transient
    error. *)

val connect :
  ?retries:int -> ?backoff_ms:int -> ?timeout_ms:int -> Server.addr -> t
(** Connects eagerly, retrying refused connections (a server still
    binding is a transient condition too). [retries] bounds replays
    {e per request} (default 4), [backoff_ms] seeds the exponential
    backoff (default 10), [timeout_ms] bounds each response wait
    (default 5000; 0 disables). *)

val rpc : t -> Wire.request -> Wire.response
(** One request, retried per the policy above. Raises {!Error} when
    retries are exhausted. The typed helpers below are this plus
    unwrapping. *)

val ping : t -> unit

val query : t -> Vquery.t -> int list Db.Degraded.t
(** Sorted ids; completeness/faults as reported by the server. *)

val count : t -> Vquery.t -> int

val batch : t -> Vquery.t array -> int list array Db.Degraded.t
(** Element [i] is exactly what in-process [Segdb.query_ids] on query
    [i] would return. *)

val batch_ex :
  t -> ?request_id:int -> ?trace:bool -> Vquery.t array -> int list array Db.Degraded.t
(** {!batch} with observability: [request_id] (a value from
    [Segdb_obs.Trace.fresh_request_id]) is attached to every span the
    server records while serving the batch, and [trace] asks it to
    bracket execution in an ["exec.batch"] span. Follow with
    {!fetch_trace} to pull those spans back. An old server answers the
    new tag with [Bad_request] (raised as {!Error}). *)

val fetch_trace : t -> request_id:int -> Segdb_obs.Trace.event list
(** The server's retained trace events for one request, in recording
    order. Empty when the server's observability is off or its ring
    wrapped past the request. *)

val slowlog : t -> [ `Text | `Json ] -> string
(** The server's slow-query log, pre-rendered. *)

val stats : t -> [ `Text | `Json | `Prometheus ] -> string
val shutdown : t -> unit

val close : t -> unit
(** Idempotent. *)
