(* Unit and property tests for Segdb_util: rng, stats, table. *)

open Segdb_util

let qtest = QCheck_alcotest.to_alcotest

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_rng_split () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int64 a) in
  let ys = List.init 32 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_int_bounds =
  QCheck.Test.make ~name:"rng int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      0 <= v && v < bound)

let prop_in_range =
  QCheck.Test.make ~name:"rng in_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 100))
    (fun (seed, lo, extent) ->
      let rng = Rng.create seed in
      let v = Rng.in_range rng lo (lo + extent) in
      lo <= v && v <= lo + extent)

let prop_float_bounds =
  QCheck.Test.make ~name:"rng float within bounds" ~count:500 QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng 10.0 in
      0.0 <= v && v < 10.0)

let test_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  Alcotest.(check bool) "shuffled" true (a <> b);
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true (sorted = a)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  Alcotest.(check (float 1e-6)) "stddev" 1.290994 (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev of empty" 0.0 (Stats.stddev s)

let prop_stats_mean =
  QCheck.Test.make ~name:"stats mean matches fold" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let expected = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. expected) < 1e-6 *. (1.0 +. Float.abs expected))

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "n"; "io" ] in
  Table.add_row t [ Table.cell_int 1024; Table.cell_float 3.5 ];
  Table.add_row t [ Table.cell_int 2048 ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  (* row order is insertion order *)
  let idx s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "1024 before 2048" true (idx out "1024" < idx out "2048" && idx out "1024" >= 0)

let test_table_row_too_wide () =
  let t = Table.create ~title:"x" ~columns:[ "a" ] in
  Alcotest.check_raises "wide row rejected" (Invalid_argument "Table.add_row: row wider than header")
    (fun () -> Table.add_row t [ "1"; "2" ])

let suite =
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
      Alcotest.test_case "rng split" `Quick test_rng_split;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "stats basic" `Quick test_stats_basic;
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table row too wide" `Quick test_table_row_too_wide;
      qtest prop_int_bounds;
      qtest prop_in_range;
      qtest prop_float_bounds;
      qtest prop_stats_mean;
    ] )

(* ---------------- Ascii_plot ---------------- *)

let test_plot_renders () =
  let out =
    Ascii_plot.render ~width:40 ~height:8 ~log_x:true ~title:"demo" ~x_label:"n"
      ~y_label:"io"
      [
        { Ascii_plot.label = "a"; points = [ (1024.0, 1.0); (2048.0, 2.0); (4096.0, 3.0) ] };
        { Ascii_plot.label = "b"; points = [ (1024.0, 10.0); (4096.0, 40.0) ] };
      ]
  in
  Alcotest.(check bool) "has title" true (String.length out > 0);
  Alcotest.(check bool) "has legend a" true
    (String.split_on_char '\n' out |> List.exists (fun l -> l = "           * = a"));
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions log scale" true (contains out "log scale")

let test_plot_empty () =
  let out = Ascii_plot.render ~title:"empty" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "no data marker" true
    (String.length out > 0)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "ascii plot renders" `Quick test_plot_renders;
        Alcotest.test_case "ascii plot empty" `Quick test_plot_empty;
      ] )
