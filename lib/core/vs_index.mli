open Segdb_io
open Segdb_geom

(** Common interface of the vertical-segment-query indexes.

    Every index is built against one {!config}: a shared buffer pool, a
    shared I/O counter, and the block size [B]. The experiments measure
    an operation by snapshotting [stats] around it. *)

type config = {
  pool : Block_store.Pool.t;
  stats : Io_stats.t;
  block : int; (** the paper's [B]: items per block / node capacity *)
  cascade : bool; (** Solution 2: fractional cascading in [G] *)
}

val config :
  ?pool_blocks:int -> ?block:int -> ?cascade:bool -> unit -> config
(** Defaults: a 64-block pool, [block = 64], cascading on. The pool is
    deliberately small relative to index sizes so that I/O counts
    reflect structure traversals rather than cache hits. *)

module type S = sig
  type t

  val name : string

  val build : config -> Segment.t array -> t
  (** Bulk construction. Segment ids must be distinct; answers are
      reported in terms of the original segments. *)

  val insert : t -> Segment.t -> unit

  val delete : t -> Segment.t -> bool
  (** Removes the segment (matched by id and geometry); returns whether
      it was present. Amortized logarithmic: the structures use local
      removal plus periodic rebuilds. *)

  val query : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
  (** Calls [f] exactly once per stored segment intersecting the
      query. *)

  val iter_all : t -> f:(Segment.t -> unit) -> unit
  (** Calls [f] exactly once per stored segment, in unspecified order —
      the enumeration snapshots and audits are built on. Backends that
      materialize segments by id answer from that table; block-resident
      backends scan their blocks and are charged the I/O. *)

  val size : t -> int
  val block_count : t -> int
end

val query_ids : (module S with type t = 'a) -> 'a -> Vquery.t -> int list
(** Sorted ids of the answer — the comparison form used by tests. *)
