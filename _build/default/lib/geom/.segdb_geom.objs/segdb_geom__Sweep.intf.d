lib/geom/sweep.mli: Segment
