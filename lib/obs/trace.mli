(** Trace spans over the query pipeline.

    A span marks one phase of work — a first-level descent step, a PST
    [Find]/[Report], an interval-tree stab, a slab-tree walk, a
    [File_store] page fetch, a WAL append. Finished spans land in a
    fixed-size ring buffer (oldest overwritten first) and their
    durations and block counts feed per-phase histograms
    ([span.<phase>.ns] / [span.<phase>.blocks]) in
    {!Metrics.default}, which is where the per-phase percentile tables
    come from.

    All of it is inert while {!Control.enabled} is false: [enter]
    returns a shared dummy, [exit] returns immediately, nothing is
    allocated or locked. *)

type event = {
  seq : int;  (** monotone across the process; survives wraparound *)
  phase : string;
  depth : int;  (** nesting depth on the recording domain *)
  t0_ns : int;  (** wall-clock start, nanoseconds *)
  dur_ns : int;
  blocks : int;  (** block reads charged during the span *)
}

type span

val none : span
(** The disabled span; exiting it is a no-op. *)

val enter : ?blocks:int -> string -> span
(** Opens a span for [phase]. [blocks] is the caller's current
    block-read counter (see {!Segdb_io.Probe} for the helper that picks
    the right one); the matching [exit] turns the pair into a delta. *)

val exit : ?blocks:int -> span -> unit
(** Closes the span: records the event in the ring and feeds the
    per-phase histograms. Safe from any domain. *)

val with_span : ?blocks:(unit -> int) -> string -> (unit -> 'a) -> 'a
(** [with_span phase f] wraps [f] in a span, sampling [blocks] at entry
    and exit. When tracing is off this is exactly [f ()]. *)

val events : unit -> event list
(** The ring's surviving events, oldest first (at most [capacity]). *)

val clear : unit -> unit

val set_capacity : int -> unit
(** Replaces the ring (discarding recorded events). Default 4096. *)

val capacity : unit -> int

val span_histogram : string -> string
(** [span_histogram phase] is the name of the duration histogram the
    phase feeds in {!Metrics.default} ([span.<phase>.ns]). *)

val span_blocks_histogram : string -> string
(** The blocks-per-span histogram name ([span.<phase>.blocks]). *)

val now_ns : unit -> int
(** The clock spans are stamped with (wall time in nanoseconds). *)
