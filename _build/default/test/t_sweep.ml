(* Sweepline crossing detection: soundness (reported pairs truly cross,
   by the exact predicate) and agreement with the O(n^2) oracle. *)

open Segdb_geom
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let iseg_gen =
  QCheck.Gen.(
    let* n = 0 -- 60 in
    list_size (return n)
      (quad (int_range 0 40) (int_range 0 40) (int_range (-8) 8) (int_range (-8) 8)))

let segs_of raw =
  List.mapi (fun i (x, y, dx, dy) ->
      Segment.make ~id:i
        (float_of_int x, float_of_int y)
        (float_of_int (x + dx), float_of_int (y + dy)))
    raw
  |> Array.of_list

let prop_agrees_with_oracle =
  QCheck.Test.make ~name:"sweep agrees with exact pairwise check" ~count:400
    (QCheck.make
       ~print:(fun raw -> QCheck.Print.(list (quad int int int int)) raw)
       iseg_gen)
    (fun raw ->
      let segs = segs_of raw in
      let oracle = W.verify_nct segs in
      let swept = Sweep.verify_nct segs in
      swept = oracle)

let prop_sound =
  QCheck.Test.make ~name:"sweep-reported pairs truly cross" ~count:400
    (QCheck.make ~print:QCheck.Print.(list (quad int int int int)) iseg_gen)
    (fun raw ->
      let segs = segs_of raw in
      match Sweep.find_crossing segs with
      | None -> true
      | Some (a, b) -> Predicates.crosses (Predicates.of_segment a) (Predicates.of_segment b))

let prop_certified_families_pass =
  QCheck.Test.make ~name:"certified families pass the sweep at scale" ~count:10
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1000))
    (fun seed ->
      let rng = Rng.create seed in
      Sweep.verify_nct (W.grid_city rng ~n:2000 ~span:500 ~max_len:40)
      && Sweep.verify_nct (W.temporal (Rng.create seed) ~n:2000 ~keys:50 ~horizon:2000)
      && Sweep.verify_nct (W.fans (Rng.create seed) ~n:1000 ~centers:5 ~span:500)
      && Sweep.verify_nct (W.roads (Rng.create seed) ~n:2000 ~span:500.0)
      && Sweep.verify_nct (W.long_spans (Rng.create seed) ~n:1000 ~span:500.0))

let test_detects_planted_crossing () =
  let rng = Rng.create 9 in
  let segs = W.grid_city rng ~n:1000 ~span:300 ~max_len:30 in
  (* plant a long diagonal through the middle *)
  let bad = Segment.make ~id:999_999 (10.0, 13.0) (290.0, 287.0) in
  let segs = Array.append segs [| bad |] in
  match Sweep.find_crossing segs with
  | Some (a, b) ->
      Alcotest.(check bool) "involves the diagonal" true
        (a.Segment.id = 999_999 || b.Segment.id = 999_999
        || Predicates.crosses (Predicates.of_segment a) (Predicates.of_segment b))
  | None -> Alcotest.fail "planted crossing not detected"

let test_touching_chain_clean () =
  (* a polyline chain touches at every joint: no crossing *)
  let segs =
    Array.init 50 (fun i ->
        Segment.make ~id:i
          (float_of_int i, float_of_int (i mod 3))
          (float_of_int (i + 1), float_of_int ((i + 1) mod 3)))
  in
  Alcotest.(check bool) "chain is NCT" true (Sweep.verify_nct segs)

let suite =
  ( "sweep",
    [
      Alcotest.test_case "detects planted crossing" `Quick test_detects_planted_crossing;
      Alcotest.test_case "touching chain clean" `Quick test_touching_chain_clean;
      qtest prop_agrees_with_oracle;
      qtest prop_sound;
      qtest prop_certified_families_pass;
    ] )

let test_tie_heavy_regression () =
  (* Degenerate tie webs (tiny integer grid, many shared endpoints) are
     where status order flips at shared right endpoints; the rescue
     path must re-test adjacency after its rebuild. Deterministic
     seeds, exact oracle. *)
  let rng = Rng.create 20260705 in
  for _case = 1 to 400 do
    let n = 5 + Rng.int rng 40 in
    let segs =
      Array.init n (fun i ->
          let x = Rng.int rng 10 and y = Rng.int rng 10 in
          let dx = Rng.int rng 7 - 3 and dy = Rng.int rng 7 - 3 in
          Segment.make ~id:i
            (float_of_int x, float_of_int y)
            (float_of_int (x + dx), float_of_int (y + dy)))
    in
    let expected = W.verify_nct segs in
    let got = Sweep.verify_nct segs in
    if got <> expected then
      Alcotest.failf "tie-heavy case diverged (n=%d, expected %b, got %b)" n expected got
  done

let suite =
  let name, cases = suite in
  (name, cases @ [ Alcotest.test_case "tie-heavy regression" `Quick test_tie_heavy_regression ])
