(** The experiment registry (per-experiment index of DESIGN.md /
    EXPERIMENTS.md). E11 — wall-clock timing — lives in [bench/main.ml]
    since it is a Bechamel suite, not an I/O table. *)

type experiment = {
  id : string;
  title : string;
  validates : string;
  run : Harness.params -> Harness.output list;
}

val all : experiment list
val find : string -> experiment option

val run_ids : ?params:Harness.params -> string list -> unit
(** Runs the listed experiments (all when the list is empty) and prints
    their tables to stdout. Unknown ids raise [Invalid_argument]. *)
