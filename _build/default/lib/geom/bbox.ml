type t = { minx : float; miny : float; maxx : float; maxy : float }

let make ~minx ~miny ~maxx ~maxy =
  if minx > maxx || miny > maxy then invalid_arg "Bbox.make: inverted box";
  { minx; miny; maxx; maxy }

let of_segment (s : Segment.t) =
  { minx = Segment.min_x s; miny = Segment.min_y s; maxx = Segment.max_x s; maxy = Segment.max_y s }

let of_vquery (q : Vquery.t) = { minx = q.x; miny = q.ylo; maxx = q.x; maxy = q.yhi }

let union a b =
  {
    minx = Float.min a.minx b.minx;
    miny = Float.min a.miny b.miny;
    maxx = Float.max a.maxx b.maxx;
    maxy = Float.max a.maxy b.maxy;
  }

let intersects a b =
  a.minx <= b.maxx && b.minx <= a.maxx && a.miny <= b.maxy && b.miny <= a.maxy

let contains outer inner =
  outer.minx <= inner.minx && outer.miny <= inner.miny && outer.maxx >= inner.maxx
  && outer.maxy >= inner.maxy

let area b = (b.maxx -. b.minx) *. (b.maxy -. b.miny)

let margin b = (b.maxx -. b.minx) +. (b.maxy -. b.miny)

let enlargement box extra = area (union box extra) -. area box

let center b = (0.5 *. (b.minx +. b.maxx), 0.5 *. (b.miny +. b.maxy))

let pp ppf b = Format.fprintf ppf "[%g,%g]x[%g,%g]" b.minx b.maxx b.miny b.maxy
