module Db = Segdb_core.Segdb
module Metrics = Segdb_obs.Metrics
module Control = Segdb_obs.Control

exception Error of string

type t = {
  addr : Server.addr;
  retries : int;
  backoff_ms : int;
  timeout : float option;
  mutable fd : Unix.file_descr option;
}

let c_io_retries = Metrics.counter Metrics.default "io.retries"
let c_net_retries = Metrics.counter Metrics.default "net.client.retries"

let count_retry () =
  if Control.enabled () then begin
    Metrics.incr c_io_retries;
    Metrics.incr c_net_retries
  end

let backoff t attempt =
  count_retry ();
  Unix.sleepf (float_of_int (t.backoff_ms * (1 lsl min attempt 10)) /. 1000.0)

(* A transport error anywhere mid-exchange leaves the stream possibly
   desynchronized; the only safe recovery is a fresh connection. *)
let drop t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let close = drop

let transient = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE | Unix.ENOENT
  | Unix.EIO | Unix.ETIMEDOUT | Unix.ENETUNREACH | Unix.EHOSTUNREACH ->
      true
  | _ -> false

let sockaddr_of = function
  | Server.Unix_path p -> Unix.ADDR_UNIX p
  | Server.Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      Unix.ADDR_INET (ip, port)

let connect_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
      let sa = sockaddr_of t.addr in
      let dom =
        match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
      in
      let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd sa;
         (match t.addr with
         | Server.Tcp _ -> (
             try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
         | Server.Unix_path _ -> ())
       with e ->
         (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
         raise e);
      t.fd <- Some fd;
      fd

type attempt =
  | Answer of Wire.response
  | Retry of string  (** transient; connection already dropped if suspect *)

let attempt_rpc t req =
  match
    let fd = connect_fd t in
    Wire.send fd (Wire.encode_request req);
    Wire.recv ?timeout:t.timeout fd
  with
  | Result.Ok payload -> (
      match Wire.decode_response payload with
      | Result.Ok (Wire.Error ((Wire.Overloaded | Wire.Corrupt_frame) as code, msg)) ->
          (* Corrupt_frame means the server saw damage on this stream
             and will close it — reconnect rather than race the close *)
          if code = Wire.Corrupt_frame then drop t;
          Retry (Wire.error_code_to_string code ^ ": " ^ msg)
      | Result.Ok resp -> Answer resp
      | Result.Error e ->
          drop t;
          Retry (Wire.protocol_error_to_string e))
  | Result.Error e ->
      drop t;
      Retry (Wire.protocol_error_to_string e)
  | exception Unix.Unix_error (code, fn, _) when transient code ->
      drop t;
      Retry (Printf.sprintf "%s: %s" fn (Unix.error_message code))

let rpc t req =
  let rec go attempt =
    match attempt_rpc t req with
    | Answer resp -> resp
    | Retry why ->
        if attempt >= t.retries then
          raise
            (Error
               (Printf.sprintf "%s: giving up after %d attempts (%s)"
                  (Server.addr_to_string t.addr) (attempt + 1) why));
        backoff t attempt;
        go (attempt + 1)
  in
  go 0

let connect ?(retries = 4) ?(backoff_ms = 10) ?(timeout_ms = 5000) addr =
  let t =
    {
      addr;
      retries = max 0 retries;
      backoff_ms = max 1 backoff_ms;
      timeout = (if timeout_ms <= 0 then None else Some (float_of_int timeout_ms /. 1000.0));
      fd = None;
    }
  in
  let rec go attempt =
    match connect_fd t with
    | _ -> ()
    | exception Unix.Unix_error (code, _, _) when transient code ->
        if attempt >= t.retries then
          raise
            (Error
               (Printf.sprintf "%s: connect failed after %d attempts (%s)"
                  (Server.addr_to_string addr) (attempt + 1) (Unix.error_message code)));
        backoff t attempt;
        go (attempt + 1)
  in
  go 0;
  t

let unexpected what resp =
  let got =
    match resp with
    | Wire.Error (code, msg) -> Wire.error_code_to_string code ^ ": " ^ msg
    | Wire.Pong -> "pong"
    | Wire.Ids _ -> "ids"
    | Wire.Counted _ -> "count"
    | Wire.Batch_ids _ -> "batch ids"
    | Wire.Stats_payload _ -> "stats"
    | Wire.Shutdown_ack -> "shutdown ack"
    | Wire.Trace_events _ -> "trace events"
    | Wire.Slowlog_payload _ -> "slowlog"
  in
  raise (Error (Printf.sprintf "expected %s, got %s" what got))

let ping t = match rpc t Wire.Ping with Wire.Pong -> () | r -> unexpected "pong" r

let query t q =
  match rpc t (Wire.Query q) with
  | Wire.Ids { ids; complete; faults } ->
      { Db.Degraded.value = ids; complete; faults }
  | r -> unexpected "ids" r

let count t q =
  match rpc t (Wire.Count q) with Wire.Counted n -> n | r -> unexpected "count" r

let batch t qs =
  match rpc t (Wire.Batch qs) with
  | Wire.Batch_ids { results; complete; faults } ->
      { Db.Degraded.value = results; complete; faults }
  | r -> unexpected "batch ids" r

let batch_ex t ?(request_id = 0) ?(trace = false) qs =
  match rpc t (Wire.Batch_ex { request_id; trace; queries = qs }) with
  | Wire.Batch_ids { results; complete; faults } ->
      { Db.Degraded.value = results; complete; faults }
  | r -> unexpected "batch ids" r

let fetch_trace t ~request_id =
  match rpc t (Wire.Trace_fetch { request_id }) with
  | Wire.Trace_events evs -> evs
  | r -> unexpected "trace events" r

let slowlog t fmt =
  match rpc t (Wire.Slowlog fmt) with
  | Wire.Slowlog_payload s -> s
  | r -> unexpected "slowlog" r

let stats t fmt =
  match rpc t (Wire.Stats fmt) with
  | Wire.Stats_payload s -> s
  | r -> unexpected "stats" r

let shutdown t =
  match rpc t Wire.Shutdown with Wire.Shutdown_ack -> () | r -> unexpected "shutdown ack" r
