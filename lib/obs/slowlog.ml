(* The slow-query log: a bounded ring of structured records for
   requests whose wall time cleared a threshold.

   Disabled by default (threshold < 0), and the disabled check is one
   [Atomic.get] ([enabled]). A threshold of 0 records every request —
   useful for smoke tests and short captures. Recording serializes on
   one mutex; by construction only slow requests get here, so the lock
   is uncontended exactly when it matters. *)

type entry = {
  request_id : int;
  query : string;  (* rendering of the (first) query rect *)
  queries : int;  (* batch size *)
  outcome : string;
  wall_ns : int;
  queue_wait_ns : int;
  blocks : int;
  cache_hits : int;
  cache_misses : int;
  at_ns : int;  (* completion wall-clock stamp *)
}

(* -1 = disabled. Stored in ns so the hot-path compare needs no unit
   conversion. *)
let threshold_ns = Atomic.make (-1)

let enabled () = Atomic.get threshold_ns >= 0

let set_threshold_ms ms =
  Atomic.set threshold_ns (if ms < 0 then -1 else ms * 1_000_000)

let threshold_ms () =
  let t = Atomic.get threshold_ns in
  if t < 0 then -1 else t / 1_000_000

let mu = Mutex.create ()
let default_capacity = 128
let slots = ref (Array.make default_capacity None)
let next = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_capacity n =
  if n < 1 then invalid_arg "Slowlog.set_capacity: capacity must be positive";
  locked (fun () ->
      slots := Array.make n None;
      next := 0)

let clear () =
  locked (fun () ->
      Array.fill !slots 0 (Array.length !slots) None;
      next := 0)

let record e =
  locked (fun () ->
      !slots.(!next mod Array.length !slots) <- Some e;
      next := !next + 1)

let note ~wall_ns mk =
  let t = Atomic.get threshold_ns in
  if t >= 0 && wall_ns >= t then record (mk ())

let entries () =
  locked (fun () ->
      let n = Array.length !slots in
      let acc = ref [] in
      for k = 0 to n - 1 do
        match !slots.((!next + k) mod n) with
        | Some e -> acc := e :: !acc
        | None -> ()
      done;
      List.rev !acc)

(* ---------------- rendering ---------------- *)

let to_text es =
  if es = [] then "(slow-query log empty)\n"
  else begin
    let module Table = Segdb_util.Table in
    let t =
      Table.create ~title:"slow queries"
        ~columns:
          [ "req"; "query"; "n"; "outcome"; "wall ms"; "wait ms"; "blocks"; "hit"; "miss" ]
    in
    List.iter
      (fun e ->
        Table.add_row t
          [
            Printf.sprintf "%x" e.request_id;
            e.query;
            Table.cell_int e.queries;
            e.outcome;
            Table.cell_float ~decimals:2 (float_of_int e.wall_ns /. 1e6);
            Table.cell_float ~decimals:2 (float_of_int e.queue_wait_ns /. 1e6);
            Table.cell_int e.blocks;
            Table.cell_int e.cache_hits;
            Table.cell_int e.cache_misses;
          ])
      es;
    Table.render t
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json es =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun idx e ->
      if idx > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"request_id\": %d, \"query\": \"%s\", \"queries\": %d, \
            \"outcome\": \"%s\", \"wall_ns\": %d, \"queue_wait_ns\": %d, \
            \"blocks\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
            \"at_ns\": %d}"
           e.request_id (json_escape e.query) e.queries (json_escape e.outcome)
           e.wall_ns e.queue_wait_ns e.blocks e.cache_hits e.cache_misses e.at_ns))
    es;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let configure_from_env () =
  match Sys.getenv_opt "SEGDB_SLOW_MS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some ms -> set_threshold_ms ms
      | None -> ())
  | None -> ()
