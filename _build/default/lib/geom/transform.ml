type t = { c : float; s : float }

let identity = { c = 1.0; s = 0.0 }

let rotation ~angle = { c = cos angle; s = sin angle }

(* A direction (1, m) must map to (0, _): choose angle a with
   cos a = m / h, sin a = 1 / h where h = sqrt (1 + m^2); then
   (1, m) |-> (cos a - m sin a, sin a + m cos a) = (0, h). *)
let to_vertical ~slope =
  let h = sqrt (1.0 +. (slope *. slope)) in
  { c = slope /. h; s = 1.0 /. h }

let inverse t = { t with s = -.t.s }

let point t (x, y) = ((t.c *. x) -. (t.s *. y), (t.s *. x) +. (t.c *. y))

let segment t (sg : Segment.t) =
  Segment.make ~id:sg.id (point t (sg.x1, sg.y1)) (point t (sg.x2, sg.y2))

let vquery_of_segment t p q =
  let x1, y1 = point t p and x2, y2 = point t q in
  let x = 0.5 *. (x1 +. x2) in
  Vquery.segment ~x ~ylo:(Float.min y1 y2) ~yhi:(Float.max y1 y2)
