(* E4 — Theorem 1: Solution 1 answers VS queries in
   O(log n (log_B n + IL*(B)) + t) I/Os; with Solution 2 (Theorem 2)
   shaving the first factor to O(log_B n). Series: naive scan, R-tree,
   Solution 1, Solution 2. *)

open Segdb_util
module W = Segdb_workload.Workload

let id = "e4"
let title = "E4: VS query I/O vs N, all backends"
let validates = "Theorems 1-2 (query): logarithmic growth; Solution 2 < Solution 1"

let run (p : Harness.params) =
  let span = 1000.0 in
  let table =
    Table.create ~title
      ~columns:[ "n"; "naive"; "rtree"; "sol1"; "sol2"; "mean t"; "log2 n" ]
  in
  let pn = ref [] and pr = ref [] and p1 = ref [] and p2 = ref [] in
  List.iter
    (fun n ->
      let segs = W.uniform (Segdb_util.Rng.create p.seed) ~n ~span in
      let queries =
        W.segment_queries (Segdb_util.Rng.create (p.seed + 1)) ~n:40 ~span ~selectivity:0.02
      in
      let cost b =
        let _, c = Backends.measure_backend b segs queries in
        c
      in
      let cn = cost "naive" and cr = cost "rtree" in
      let c1 = cost "solution1" and c2 = cost "solution2" in
      let fn = float_of_int n in
      pn := (fn, cn.mean_io) :: !pn;
      pr := (fn, cr.mean_io) :: !pr;
      p1 := (fn, c1.mean_io) :: !p1;
      p2 := (fn, c2.mean_io) :: !p2;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 cn.mean_io;
          Table.cell_float ~decimals:1 cr.mean_io;
          Table.cell_float ~decimals:1 c1.mean_io;
          Table.cell_float ~decimals:1 c2.mean_io;
          Table.cell_float ~decimals:1 c2.mean_out;
          Table.cell_float ~decimals:1 (Harness.log2 (float_of_int n));
        ])
    (Harness.sweep_n p);
  let chart =
    Ascii_plot.render ~log_x:true ~title:"E4 (figure): VS query I/O vs N" ~x_label:"N"
      ~y_label:"mean I/O per query"
      [
        { Ascii_plot.label = "naive scan"; points = List.rev !pn };
        { Ascii_plot.label = "rtree"; points = List.rev !pr };
        { Ascii_plot.label = "solution1"; points = List.rev !p1 };
        { Ascii_plot.label = "solution2"; points = List.rev !p2 };
      ]
  in
  [ Harness.Table table; Harness.Chart chart ]
