lib/io/io_stats.ml: Format
