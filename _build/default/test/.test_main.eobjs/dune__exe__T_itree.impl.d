test/t_itree.ml: Alcotest Array Block_store Float Io_stats List Printf QCheck QCheck_alcotest Segdb_geom Segdb_io Segdb_itree Segdb_util Segment
