lib/segtree/slab_segment_tree.ml: Array Block_store Hashtbl Io_stats Option Packed_list Segdb_btree Segdb_geom Segdb_io Segment
