lib/workload/workload.mli: Lseg Rng Segdb_geom Segdb_util Segment Vquery
