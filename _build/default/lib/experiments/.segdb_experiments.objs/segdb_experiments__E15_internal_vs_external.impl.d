lib/experiments/e15_internal_vs_external.ml: Array Block_store Harness Io_stats List Rng Segdb_core Segdb_geom Segdb_internal Segdb_io Segdb_itree Segdb_util Segdb_workload Table Unix
