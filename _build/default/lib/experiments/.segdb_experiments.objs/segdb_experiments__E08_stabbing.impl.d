lib/experiments/e08_stabbing.ml: Array Backends Block_store Harness Io_stats List Rng Segdb_geom Segdb_io Segdb_itree Segdb_util Segdb_workload Segment Table Vquery
