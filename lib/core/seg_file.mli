open Segdb_geom

(** Plain-text interchange format for segment sets.

    One segment per line: [id x1 y1 x2 y2], whitespace-separated; blank
    lines and [#] comments are ignored. The format is what the CLI's
    [generate] emits and [query]/[stats] consume. *)

val save : string -> Segment.t array -> unit

val load : string -> Segment.t array
(** Raises [Failure] with a line-numbered message on malformed input. *)

val to_channel : out_channel -> Segment.t array -> unit
val of_channel : in_channel -> Segment.t array

(** {1 Binary form}

    The persistence layer (snapshots, WAL records) stores segments in
    the fixed binary layout [id: u64 | x1 y1 x2 y2: f64], little-endian
    — 40 bytes per segment, exact float round-trips. *)

val codec : Segment.t Segdb_io.Codec.t
val array_codec : Segment.t array Segdb_io.Codec.t
