(* Read-path/write-path split: queries are pure, readers leave no
   trace on shared state, mutation under a reader is rejected, and
   [Segdb.parallel_query] returns exactly the serial answers on every
   backend at every domain count. *)

open Segdb_io
open Segdb_geom
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Vs = Segdb_core.Vs_index
module Db = Segdb_core.Segdb

let qtest = QCheck_alcotest.to_alcotest

let backends : (string * (module Vs.S)) list =
  [
    ("naive", (module Segdb_core.Naive));
    ("rtree", (module Segdb_core.Rtree_index));
    ("solution1", (module Segdb_core.Solution1));
    ("solution2", (module Segdb_core.Solution2));
  ]

let families =
  [
    ("roads", fun rng n -> W.roads rng ~n ~span:100.0);
    ("grid", fun rng n -> W.grid_city rng ~n ~span:100 ~max_len:25);
    ("temporal", fun rng n -> W.temporal rng ~n ~keys:12 ~horizon:200);
    ("fans", fun rng n -> W.fans rng ~n ~centers:4 ~span:100);
  ]

let random_query rng segs =
  let x =
    if Rng.bool rng || Array.length segs = 0 then Rng.float rng 120.0 -. 10.0
    else
      let s = segs.(Rng.int rng (Array.length segs)) in
      if Rng.bool rng then s.Segment.x1 else s.Segment.x2
  in
  match Rng.int rng 4 with
  | 0 -> Vquery.line ~x
  | 1 -> Vquery.ray_up ~x ~ylo:(Rng.float rng 100.0)
  | 2 -> Vquery.ray_down ~x ~yhi:(Rng.float rng 100.0)
  | _ ->
      let y = Rng.float rng 100.0 in
      Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 40.0)

let scenario =
  QCheck.make
    ~print:(fun (seed, n, block, fam) -> Printf.sprintf "seed=%d n=%d B=%d fam=%s" seed n block fam)
    QCheck.Gen.(
      let* seed = 0 -- 100_000 in
      let* n = 0 -- 120 in
      let* block = oneofl [ 4; 8; 16 ] in
      let* fam = oneofl (List.map fst families) in
      return (seed, n, block, fam))

(* Random interleavings of the whole read API — plain and through a
   reader — between two [query_ids] calls never change the answer; and
   under a reader the shared counter does not move at all while the
   reader's own counter shows no writes and no allocs. *)
let prop_queries_leave_no_trace =
  QCheck.Test.make ~name:"queries leave no trace" ~count:60 scenario
    (fun (seed, n, block, fam) ->
      let rng = Rng.create seed in
      let segs = (List.assoc fam families) (Rng.split rng) n in
      let queries = Array.init 12 (fun _ -> random_query rng segs) in
      List.for_all
        (fun (_name, (module M : Vs.S)) ->
          let cfg = Vs.config ~pool_blocks:8 ~block () in
          let t = M.build cfg segs in
          let baseline = Array.map (fun q -> Vs.query_ids (module M) t q) queries in
          let interleave use_reader =
            Array.iter
              (fun q ->
                match Rng.int rng 4 with
                | 0 -> ignore (Vs.query_ids (module M) t q)
                | 1 ->
                    let k = ref 0 in
                    M.query t q ~f:(fun _ -> incr k)
                | 2 ->
                    if use_reader then
                      let r = Vs.reader cfg in
                      ignore (Vs.query_ids_r (module M) r t q)
                    else M.query t q ~f:ignore
                | _ -> M.iter_all t ~f:ignore)
              queries
          in
          (* plain interleaving: answers stable *)
          interleave false;
          let after_plain = Array.map (fun q -> Vs.query_ids (module M) t q) queries in
          (* reader interleaving: answers stable and shared state frozen *)
          let r = Vs.reader cfg in
          let before = Io_stats.snapshot cfg.Vs.stats in
          let under_reader =
            Vs.with_reader r (fun () ->
                interleave true;
                Array.map (fun q -> Vs.query_ids (module M) t q) queries)
          in
          let shared_delta = Io_stats.diff before (Io_stats.snapshot cfg.Vs.stats) in
          let rio = Io_stats.snapshot (Vs.reader_io r) in
          after_plain = baseline && under_reader = baseline
          && shared_delta = { Io_stats.reads = 0; writes = 0; allocs = 0 }
          && rio.Io_stats.writes = 0 && rio.Io_stats.allocs = 0)
        backends)

(* ---------------- parallel_query vs serial ---------------- *)

let test_parallel_matches_serial () =
  let rng = Rng.create 7 in
  let segs = W.roads (Rng.split rng) ~n:300 ~span:100.0 in
  let queries = Array.init 64 (fun _ -> random_query rng segs) in
  List.iter
    (fun (name, backend) ->
      let db = Db.create ~backend ~block:8 ~pool_blocks:16 segs in
      let serial = Array.map (Db.query_ids db) queries in
      List.iter
        (fun domains ->
          let par = Db.parallel_query db queries ~domains in
          Array.iteri
            (fun i got ->
              Alcotest.(check (list int))
                (Printf.sprintf "%s: query %d, %d domains" name i domains)
                serial.(i) got)
            par)
        [ 1; 2; 4 ])
    Db.all_backends

let test_parallel_after_mutation () =
  let rng = Rng.create 11 in
  let pool = W.roads (Rng.split rng) ~n:400 ~span:100.0 in
  let initial = Array.sub pool 0 200 in
  let db = Db.create ~backend:`Solution2 ~block:8 ~pool_blocks:16 initial in
  for i = 200 to 299 do
    Db.insert db pool.(i)
  done;
  for i = 0 to 49 do
    ignore (Db.delete db initial.(i))
  done;
  let queries = Array.init 64 (fun _ -> random_query rng pool) in
  let serial = Array.map (Db.query_ids db) queries in
  let par = Db.parallel_query db queries ~domains:4 in
  Array.iteri
    (fun i got -> Alcotest.(check (list int)) (Printf.sprintf "query %d" i) serial.(i) got)
    par

let test_parallel_validation () =
  let db = Db.create ~backend:`Naive [||] in
  Alcotest.check_raises "domains 0" (Invalid_argument "Segdb.parallel_query: domains must be >= 1")
    (fun () -> ignore (Db.parallel_query db [||] ~domains:0));
  Alcotest.check_raises "readers arity"
    (Invalid_argument "Segdb.parallel_query: readers array must have one reader per domain")
    (fun () ->
      ignore (Db.parallel_query ~readers:[| Db.reader db |] db [||] ~domains:2))

(* ---------------- writer guard ---------------- *)

module Store = Block_store.Make (struct
  type t = int
end)

let test_mutation_under_reader_raises () =
  let pool = Block_store.Pool.create ~capacity:4 in
  let io = Io_stats.create () in
  let s = Store.create ~pool ~stats:io () in
  let a = Store.alloc s 10 in
  let r = Read_context.create () in
  Read_context.with_reader r (fun () ->
      Alcotest.(check int) "read allowed" 10 (Store.read s a);
      let expect op f =
        match f () with
        | () -> Alcotest.failf "%s under reader did not raise" op
        | exception Invalid_argument _ -> ()
      in
      expect "write" (fun () -> Store.write s a 11);
      expect "alloc" (fun () -> ignore (Store.alloc s 12));
      expect "free" (fun () -> Store.free s a);
      expect "flush" (fun () -> Store.flush s));
  (* the guard lifts with the reader *)
  Store.write s a 11;
  Alcotest.(check int) "write after reader" 11 (Store.read s a)

let test_db_mutation_under_reader_raises () =
  let segs = W.roads (Rng.create 3) ~n:100 ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 segs in
  let r = Db.reader db in
  match Db.with_reader r (fun () -> Db.insert db (Segment.make ~id:9999 (0.5, 0.5) (1.5, 1.5))) with
  | () -> Alcotest.fail "insert under reader did not raise"
  | exception Invalid_argument _ -> ()

(* ---------------- reader accounting ---------------- *)

let test_reader_accounting () =
  let segs = W.roads (Rng.create 5) ~n:600 ~span:100.0 in
  let cfg = Vs.config ~pool_blocks:4 ~block:8 () in
  let t = Segdb_core.Solution2.build cfg segs in
  let q = Vquery.line ~x:50.0 in
  let shared_before = Io_stats.snapshot cfg.Vs.stats in
  let r1 = Vs.reader ~cache_blocks:1024 cfg in
  let ids = Vs.query_ids_r (module Segdb_core.Solution2) r1 t q in
  Alcotest.(check bool) "reader query leaves the shared counter alone" true
    (Io_stats.diff shared_before (Io_stats.snapshot cfg.Vs.stats)
    = { Io_stats.reads = 0; writes = 0; allocs = 0 });
  let first = Io_stats.reads (Vs.reader_io r1) in
  Alcotest.(check bool) "cold reader pays reads" true (first > 0);
  (* a second reader starts cold and pays its own way — before any
     serial query warms the shared pool *)
  let r2 = Vs.reader ~cache_blocks:1024 cfg in
  ignore (Vs.query_ids_r (module Segdb_core.Solution2) r2 t q);
  Alcotest.(check int) "independent reader pays the cold cost" first
    (Io_stats.reads (Vs.reader_io r2));
  ignore (Vs.query_ids_r (module Segdb_core.Solution2) r1 t q);
  let second = Io_stats.reads (Vs.reader_io r1) - first in
  Alcotest.(check bool)
    (Printf.sprintf "warm shard re-reads less (%d then %d)" first second)
    true (second < first);
  Alcotest.(check (list int)) "reader answer" (Vs.query_ids (module Segdb_core.Solution2) t q) ids

let suite =
  ( "parallel",
    [
      qtest prop_queries_leave_no_trace;
      Alcotest.test_case "parallel_query matches serial" `Quick test_parallel_matches_serial;
      Alcotest.test_case "parallel_query after mutation" `Quick test_parallel_after_mutation;
      Alcotest.test_case "parallel_query validation" `Quick test_parallel_validation;
      Alcotest.test_case "store mutation under reader raises" `Quick
        test_mutation_under_reader_raises;
      Alcotest.test_case "db mutation under reader raises" `Quick
        test_db_mutation_under_reader_raises;
      Alcotest.test_case "reader accounting" `Quick test_reader_accounting;
    ] )
