module Make (E : sig
  type t

  val compare : t -> t -> int
end) =
struct
  module Store = Block_store.Make (struct
    type t = E.t array
  end)

  (* a run is the list of its block addresses, in order *)
  type run = Block_store.addr list

  let passes ~block ~memory_blocks n =
    if n <= block * memory_blocks then 0
    else begin
      let runs0 = (n + (block * memory_blocks) - 1) / (block * memory_blocks) in
      let k = memory_blocks - 1 in
      let rec go runs acc = if runs <= 1 then acc else go ((runs + k - 1) / k) (acc + 1) in
      go runs0 0
    end

  let sort ~pool ~stats ?(block = 64) ?(memory_blocks = 8) (input : E.t array) =
    if memory_blocks < 3 then invalid_arg "Ext_sort.sort: memory_blocks must be >= 3";
    if block < 1 then invalid_arg "Ext_sort.sort: block must be >= 1";
    let store = Store.create ~name:"extsort" ~pool ~stats () in
    let n = Array.length input in
    let write_run (items : E.t list) : run =
      (* stream items out in block-sized chunks *)
      let rec chunks acc = function
        | [] -> List.rev acc
        | items ->
            let rec take k xs acc =
              match (k, xs) with
              | 0, _ | _, [] -> (List.rev acc, xs)
              | k, x :: rest -> take (k - 1) rest (x :: acc)
            in
            let chunk, rest = take block items [] in
            chunks (Store.alloc store (Array.of_list chunk) :: acc) rest
      in
      chunks [] items
    in
    (* 1. run formation: memory_blocks * block items at a time *)
    let run_span = memory_blocks * block in
    let runs = ref [] in
    let i = ref 0 in
    while !i < n do
      let len = min run_span (n - !i) in
      let chunk = Array.sub input !i len in
      Array.stable_sort E.compare chunk;
      runs := write_run (Array.to_list chunk) :: !runs;
      i := !i + len
    done;
    let runs = List.rev !runs in
    (* 2. k-way merge passes *)
    let merge (group : run list) : run =
      (* one open block per input run *)
      let cursors =
        group
        |> List.map (fun r ->
               match r with
               | [] -> None
               | a :: rest -> Some (ref (Store.read store a), ref 0, ref rest, ref a))
        |> List.filter_map Fun.id
      in
      let out = ref [] and out_len = ref 0 and out_blocks = ref [] in
      let flush () =
        if !out <> [] then begin
          out_blocks := Store.alloc store (Array.of_list (List.rev !out)) :: !out_blocks;
          out := [];
          out_len := 0
        end
      in
      let live = ref cursors in
      while !live <> [] do
        (* smallest head among open blocks; stability via list order *)
        let best = ref None in
        List.iter
          (fun ((buf, pos, _, _) as cur) ->
            let v = !buf.(!pos) in
            match !best with
            | Some (_, bv) when E.compare bv v <= 0 -> ()
            | _ -> best := Some (cur, v))
          !live;
        (match !best with
        | None -> ()
        | Some ((buf, pos, rest, addr), v) ->
            out := v :: !out;
            incr out_len;
            if !out_len = block then flush ();
            incr pos;
            if !pos >= Array.length !buf then begin
              Store.free store !addr;
              match !rest with
              | a :: more ->
                  buf := Store.read store a;
                  addr := a;
                  pos := 0;
                  rest := more
              | [] ->
                  live :=
                    List.filter (fun (_, _, _, a') -> a' != addr) !live
            end)
      done;
      flush ();
      List.rev !out_blocks
    in
    let k = memory_blocks - 1 in
    let rec merge_level (runs : run list) =
      match runs with
      | [] -> []
      | [ r ] -> r
      | _ ->
          let rec group acc cur cnt = function
            | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
            | r :: rest ->
                if cnt = k then group (List.rev cur :: acc) [ r ] 1 rest
                else group acc (r :: cur) (cnt + 1) rest
          in
          let groups = group [] [] 0 runs in
          merge_level (List.map merge groups)
    in
    let final = merge_level runs in
    (* 3. read the result back *)
    if n = 0 then [||]
    else begin
    let out = Array.make n input.(0) in
    let j = ref 0 in
    List.iter
      (fun a ->
        let blk = Store.read store a in
        Array.blit blk 0 out !j (Array.length blk);
        j := !j + Array.length blk;
        Store.free store a)
      final;
    assert (!j = n);
    out
    end
end
