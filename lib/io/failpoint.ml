module Rng = Segdb_util.Rng

exception Injected_crash of string

type action = Eio | Short | Bit_flip | Torn | Crash

type site = { site_name : string; mutable hit_count : int }

type plan = { at : int; persistent : bool; action : action }

let plan ?(at = 1) ?(persistent = false) action = { at; persistent; action }

(* Registry state. [on] is the only thing a disarmed [fire] touches;
   everything else lives behind the mutex so arming from one domain is
   safe against sites firing on others. *)
let on = Atomic.make false
let lock = Mutex.create ()
let sites : (string, site) Hashtbl.t = Hashtbl.create 16
let plans : (string, plan * bool ref (* fired *)) Hashtbl.t = Hashtbl.create 16
let injection_rng = ref (Rng.create 0)

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let site name =
  locked (fun () ->
      match Hashtbl.find_opt sites name with
      | Some s -> s
      | None ->
          let s = { site_name = name; hit_count = 0 } in
          Hashtbl.add sites name s;
          s)

let name s = s.site_name

let registered () =
  locked (fun () -> Hashtbl.fold (fun n _ acc -> n :: acc) sites [])
  |> List.sort compare

let armed () = Atomic.get on

let arm ?(seed = 0) entries =
  locked (fun () ->
      Hashtbl.reset plans;
      Hashtbl.iter (fun _ s -> s.hit_count <- 0) sites;
      List.iter (fun (n, p) -> Hashtbl.replace plans n (p, ref false)) entries;
      injection_rng := Rng.create seed);
  Atomic.set on (entries <> [])

let disarm () =
  Atomic.set on false;
  locked (fun () -> Hashtbl.reset plans)

let fire s =
  if not (Atomic.get on) then None
  else
    locked (fun () ->
        s.hit_count <- s.hit_count + 1;
        match Hashtbl.find_opt plans s.site_name with
        | None -> None
        | Some (p, fired) ->
            if p.persistent then if s.hit_count >= p.at then Some p.action else None
            else if (not !fired) && s.hit_count >= p.at then begin
              fired := true;
              Some p.action
            end
            else None)

let hits s = locked (fun () -> s.hit_count)
let rng () = !injection_rng

(* ---------------- spec parsing ---------------- *)

let action_of_string = function
  | "eio" -> Some Eio
  | "short" -> Some Short
  | "flip" -> Some Bit_flip
  | "torn" -> Some Torn
  | "crash" -> Some Crash
  | _ -> None

let parse_entry entry =
  match String.index_opt entry '=' with
  | None -> Error (Printf.sprintf "%S: expected site=action[@hit][+]" entry)
  | Some 0 -> Error (Printf.sprintf "%S: empty site name" entry)
  | Some i -> (
      let site_name = String.sub entry 0 i in
      let rest = String.sub entry (i + 1) (String.length entry - i - 1) in
      let rest, persistent =
        match String.length rest with
        | 0 -> (rest, false)
        | n when rest.[n - 1] = '+' -> (String.sub rest 0 (n - 1), true)
        | _ -> (rest, false)
      in
      let act, at =
        match String.index_opt rest '@' with
        | None -> (rest, Ok 1)
        | Some j ->
            let at_s = String.sub rest (j + 1) (String.length rest - j - 1) in
            ( String.sub rest 0 j,
              match int_of_string_opt at_s with
              | Some n when n >= 1 -> Ok n
              | _ -> Error (Printf.sprintf "%S: bad hit number %S" entry at_s) )
      in
      match (action_of_string act, at) with
      | _, Error e -> Error e
      | None, _ -> Error (Printf.sprintf "%S: unknown action %S" entry act)
      | Some action, Ok at -> Ok (site_name, { at; persistent; action }))

let parse_spec spec =
  let entries =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc e ->
      match (acc, parse_entry e) with
      | Error _, _ -> acc
      | _, Error m -> Error m
      | Ok l, Ok p -> Ok (p :: l))
    (Ok []) entries
  |> Result.map List.rev

let arm_from_env () =
  match Sys.getenv_opt "SEGDB_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
      let seed =
        match Sys.getenv_opt "SEGDB_FAILPOINT_SEED" with
        | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 0)
        | None -> 0
      in
      match parse_spec spec with
      | Ok entries -> arm ~seed entries
      | Error m ->
          Printf.eprintf "SEGDB_FAILPOINTS: %s\n%!" m;
          exit 2)

(* ---------------- hardened syscalls ---------------- *)

module Io = struct
  let c_retries = Segdb_obs.Metrics.counter Segdb_obs.Metrics.default "io.retries"

  let count_retry () =
    if Segdb_obs.Control.enabled () then Segdb_obs.Metrics.incr c_retries

  let max_eio_retries = 4
  let max_stalled_writes = 8

  (* Bounded retry with backoff. EINTR and EAGAIN are always retried
     (they are the kernel's, not the device's); EIO is retried
     [max_eio_retries] times with exponential backoff and then allowed
     to escape. [f] must be idempotent — the positional wrappers below
     are, by re-seeking on every attempt. *)
  let rec retrying ?(attempt = 0) f =
    try f () with
    | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) when attempt < 100 ->
        count_retry ();
        retrying ~attempt:(attempt + 1) f
    | Unix.Unix_error (Unix.EIO, _, _) when attempt < max_eio_retries ->
        count_retry ();
        Unix.sleepf (1e-4 *. float_of_int (1 lsl attempt));
        retrying ~attempt:(attempt + 1) f

  let injected_eio op = Unix.Unix_error (Unix.EIO, op, "injected")

  (* A strict prefix length, drawn from the arming seed. *)
  let prefix_of len = if len <= 1 then 0 else Rng.int (rng ()) len

  let flip_bit buf ~len =
    if len > 0 then begin
      let r = rng () in
      let i = Rng.int r len in
      Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl Rng.int r 8)))
    end

  let sp_pread = site "pread"
  let sp_pwrite = site "pwrite"
  let sp_fsync = site "fsync"

  let read_fully fd buf ~got ~len =
    let stop = ref false in
    while (not !stop) && !got < len do
      let n = Unix.read fd buf !got (len - !got) in
      if n = 0 then stop := true else got := !got + n
    done

  let pread fd ~off buf =
    let len = Bytes.length buf in
    let got = ref 0 in
    let post = ref None in
    retrying (fun () ->
        (match fire sp_pread with
        | Some Crash -> raise (Injected_crash "pread")
        | Some Eio -> raise (injected_eio "pread")
        | Some ((Short | Bit_flip | Torn) as a) -> post := Some a
        | None -> ());
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        got := 0;
        read_fully fd buf ~got ~len);
    (match !post with
    | Some Short | Some Torn -> got := prefix_of !got
    | Some Bit_flip -> flip_bit buf ~len:!got
    | _ -> ());
    !got

  let write_from ?(site = sp_pwrite) fd ~off buf =
    let len = Bytes.length buf in
    retrying (fun () ->
        (match fire site with
        | Some Crash -> raise (Injected_crash (name site))
        | Some Eio -> raise (injected_eio (name site))
        | Some Torn ->
            (* a strict prefix reaches the disk, then the plug is
               pulled: exactly the torn write the recovery paths must
               survive *)
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            let k = prefix_of len in
            let put = ref 0 in
            while !put < k do
              put := !put + Unix.write fd buf !put (k - !put)
            done;
            raise (Injected_crash (name site ^ ".torn"))
        | Some Short ->
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            let k = prefix_of len in
            let put = ref 0 in
            while !put < k do
              put := !put + Unix.write fd buf !put (k - !put)
            done;
            raise (injected_eio (name site ^ ".short"))
        | Some Bit_flip ->
            (* silent on-disk corruption: the write itself succeeds *)
            flip_bit buf ~len
        | None -> ());
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let put = ref 0 in
        let stalls = ref 0 in
        while !put < len do
          let n = Unix.write fd buf !put (len - !put) in
          if n = 0 then begin
            incr stalls;
            if !stalls > max_stalled_writes then
              raise (Unix.Unix_error (Unix.ENOSPC, name site, "persistent short write"))
          end
          else begin
            stalls := 0;
            put := !put + n
          end
        done)

  let pwrite fd ~off buf = write_from fd ~off buf
  let write_all ?site fd ~off buf = write_from ?site fd ~off buf

  (* ---------------- socket wrappers ----------------

     Streams have no offset to rewind to, so the torn-write shape
     changes meaning: on a file, [Torn] models the process dying
     mid-write (Injected_crash); on a socket it models the *connection*
     dying mid-frame — a strict prefix reaches the wire and then the
     peer sees a reset. The process survives; the caller's job is to
     close the connection and let the other side retry. *)

  let sp_net_read = site "net.read"
  let sp_net_write = site "net.write"

  let recv fd buf ~pos ~len =
    let post = ref None in
    let n =
      retrying (fun () ->
          post := None;
          (match fire sp_net_read with
          | Some Crash -> raise (Injected_crash "net.read")
          | Some Eio -> raise (injected_eio "net.read")
          | Some ((Short | Bit_flip | Torn) as a) -> post := Some a
          | None -> ());
          Unix.read fd buf pos len)
    in
    match !post with
    | Some (Short | Torn) -> prefix_of n
    | Some Bit_flip ->
        if n > 0 then begin
          let r = rng () in
          let i = pos + Rng.int r n in
          Bytes.set buf i
            (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl Rng.int r 8)))
        end;
        n
    | _ -> n

  let send_all fd buf ~pos ~len =
    let limit = pos + len in
    let put = ref pos in
    let stalls = ref 0 in
    while !put < limit do
      let n =
        retrying (fun () ->
            match fire sp_net_write with
            | Some Crash -> raise (Injected_crash "net.write")
            | Some Eio -> raise (injected_eio "net.write")
            | Some Torn ->
                (* a strict prefix of the frame reaches the wire, then
                   the connection is torn down under the writer *)
                let k = prefix_of (limit - !put) in
                let sent = ref 0 in
                while !sent < k do
                  sent := !sent + Unix.write fd buf (!put + !sent) (k - !sent)
                done;
                raise
                  (Unix.Unix_error (Unix.ECONNRESET, "net.write", "torn frame (injected)"))
            | Some Short ->
                (* partial transfer: perfectly legal on a socket, the
                   outer loop just continues from where it got *)
                Unix.write fd buf !put (prefix_of (limit - !put))
            | Some Bit_flip ->
                (* corrupt one bit of what is about to hit the wire;
                   the peer's frame CRC must catch it *)
                if limit - !put > 0 then begin
                  let r = rng () in
                  let i = !put + Rng.int r (limit - !put) in
                  Bytes.set buf i
                    (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl Rng.int r 8)))
                end;
                Unix.write fd buf !put (limit - !put)
            | None -> Unix.write fd buf !put (limit - !put))
      in
      if n = 0 then begin
        incr stalls;
        if !stalls > max_stalled_writes then
          raise (Unix.Unix_error (Unix.EPIPE, "net.write", "persistent zero-byte write"))
      end
      else begin
        stalls := 0;
        put := !put + n
      end
    done

  let fsync ?(site = sp_fsync) fd =
    retrying (fun () ->
        (match fire site with
        | Some Crash -> raise (Injected_crash (name site))
        | Some Eio -> raise (injected_eio (name site))
        | Some (Short | Bit_flip | Torn) | None -> ());
        Unix.fsync fd)
end
