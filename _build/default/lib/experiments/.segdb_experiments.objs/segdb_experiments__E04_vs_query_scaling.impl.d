lib/experiments/e04_vs_query_scaling.ml: Ascii_plot Backends Harness List Segdb_util Segdb_workload Table
