open Segdb_io
open Segdb_geom

(** The segment database: the user-facing facade.

    A [Segdb.t] stores a set of NCT plane segments under one of the
    index backends and answers generalized vertical-segment queries
    ({!Vquery.t}). Fixed-slope (non-vertical) query families are
    supported by rotating the database with {!Transform} before
    indexing — see [examples/sloped_queries.ml].

    {[
      let db =
        Segdb.create ~backend:`Solution2
          [| Segment.make ~id:0 (0., 0.) (4., 2.); ... |]
      in
      let hits = Segdb.query db (Vquery.segment ~x:1.0 ~ylo:0.0 ~yhi:5.0) in
      ...
    ]} *)

type backend =
  [ `Naive  (** block scan; the baseline floor *)
  | `Rtree  (** STR-packed R-tree; the practical comparator *)
  | `Solution1  (** the paper's linear-space two-level structure *)
  | `Solution2  (** the paper's improved structure, with cascading *)
  | `Solution2_nofc  (** Solution 2 with fractional cascading disabled *)
  ]

type t

val create :
  ?backend:backend ->
  ?block:int ->
  ?pool_blocks:int ->
  Segment.t array ->
  t
(** Builds an index over the segments (default backend [`Solution2],
    block size 64, buffer pool 64 blocks). Ids must be distinct; use
    {!of_segments} to assign them. *)

val of_segments : ?backend:backend -> ?block:int -> ?pool_blocks:int -> (float * float) list list -> t
(** Convenience: each element is a polyline (list of points) whose
    consecutive point pairs become segments; ids are assigned
    sequentially. The caller is responsible for the NCT property. *)

val insert : t -> Segment.t -> unit
(** Semi-dynamic insertion; the new segment must not cross stored ones
    (NCT) for complexity guarantees, though answers remain exact for
    touching-only violations. *)

val delete : t -> Segment.t -> bool
(** Removes the segment (matched by id and geometry); amortized
    logarithmic via local removal plus periodic rebuilds. *)

val query : t -> Vquery.t -> Segment.t list
val query_iter : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
val query_ids : t -> Vquery.t -> int list
val count : t -> Vquery.t -> int

val size : t -> int
val block_count : t -> int

val io : t -> Io_stats.t
(** The index's I/O counter (shared by all its sub-structures). *)

val backend_name : t -> string

val backend_of_string : string -> backend option
val all_backends : (string * backend) list

(** {1 Fixed-slope query families}

    The paper's footnote: non-vertical query directions reduce to the
    vertical case by rotating the coordinate axes. [Sloped] owns that
    reduction: it rotates the database once at build time and rotates
    each query segment on the fly. *)

module Sloped : sig
  type db := t
  type t

  val create :
    ?backend:backend -> ?block:int -> ?pool_blocks:int -> slope:float -> Segment.t array -> t
  (** Indexes the segments for query segments of slope [slope]. *)

  val query : t -> p1:float * float -> p2:float * float -> Segment.t list
  (** [p1]-[p2] must lie on a line of slope [slope] (up to float noise);
      answers are the original (unrotated) segments. *)

  val count : t -> p1:float * float -> p2:float * float -> int
  val db : t -> db
  (** The underlying rotated database (for stats). *)
end
