(** Named metrics: counters, gauges and log-bucketed histograms.

    One {!t} is a registry; {!default} is the process-wide one that the
    I/O stack's probe sites record into. Handles ([counter], [gauge])
    are resolved once and bumped with a single atomic add, so a probe
    behind {!Control.enabled} costs nothing measurable when off and a
    couple of atomic operations when on.

    Registries are mergeable ({!merge_into}): parallel query workers
    record into private registries or histograms and the coordinator
    folds them into one view; merging is associative, so the fold order
    does not matter. *)

type t

type counter = int Atomic.t
type gauge = int Atomic.t

val create : unit -> t

val default : t
(** The process-wide registry used by built-in instrumentation. *)

val counter : t -> string -> counter
(** Get-or-create; the handle stays valid for the registry's life. *)

val gauge : t -> string -> gauge

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set_gauge : gauge -> int -> unit

val observe : t -> string -> int -> unit
(** Records one sample into the named histogram (created on first use).
    Thread-safe: serialized on the registry lock. *)

val merge_histogram : t -> string -> Histogram.t -> unit
(** Folds a privately-recorded histogram into the named one — the
    cheap way for a worker to publish many samples at once. *)

val histogram : t -> string -> Histogram.t option
(** A copy of the named histogram, if it exists. *)

val counters : t -> (string * int) list
(** Name-sorted snapshot. *)

val gauges : t -> (string * int) list
val histograms : t -> (string * Histogram.t) list

val merge_into : into:t -> t -> unit
(** Adds counters and gauges by name and merges histograms pointwise;
    [src] is unchanged. *)

val reset : t -> unit
(** Zeroes every metric, keeping handles valid. *)
