(** Per-reader I/O context: the read path's private half of the buffer
    pool.

    A query never mutates an index, but in the baseline design it still
    funnels through shared mutable state: the LRU buffer pool (recency
    updates, evictions) and the index's single {!Io_stats.t}. A
    [Read_context.t] gives one reader its own I/O counter and its own
    LRU shard. While a context is installed (see {!with_reader}) on the
    current domain:

    - {!Block_store} reads resolve through the context: a block found in
      the reader's shard or resident in the shared pool is free; a block
      only on the simulated disk charges one read to the {e reader's}
      stats and is cached in the reader's shard. The shared pool, the
      shared stats and the store's tables are not touched at all.
    - {!Block_store} [alloc]/[write]/[free]/[flush] raise
      [Invalid_argument] — the mechanism that turns "queries are pure"
      from a convention into an enforced contract.

    Contexts are domain-local (installed via [Domain.DLS]), so each
    worker domain of a parallel query batch installs its own; because
    readers never mutate shared store state, any number of domains may
    read one index concurrently as long as no writer runs. A context
    must not be shared across databases (block addresses are only unique
    within one buffer pool); sharing one across domains is also
    meaningless, as installation is per-domain. *)

type t

val create : ?cache_blocks:int -> unit -> t
(** A fresh context with its own zeroed {!Io_stats.t} and a private LRU
    shard of [cache_blocks] blocks (default 64). *)

val stats : t -> Io_stats.t
(** The reader's own counter: cold misses it paid, no writes, no
    allocs. *)

val capacity : t -> int

val resident : t -> int
(** Blocks currently held by the reader's shard. *)

val cache_hits : t -> int
(** Lookups served from the reader's own shard. *)

val cache_misses : t -> int
(** Shard misses (whether then served by the shared pool or by disk). *)

val effective_stats : Io_stats.t -> Io_stats.t
(** [effective_stats default] is the counter reads on the current domain
    are charged to: the installed reader's stats, or [default] when no
    read context is active. *)

val with_reader : t -> (unit -> 'a) -> 'a
(** [with_reader t f] installs [t] as the current domain's read context
    for the duration of [f] (restoring the previous one after, also on
    exceptions). Nesting installs the innermost. *)

(**/**)

(* The remainder is the store-facing half, used by {!Block_store} and
   {!File_store}; payloads are untyped because one context serves
   stores of different payload types (addresses are unique per pool,
   and the [uid] check catches cross-pool misuse). *)

val fresh_uid : unit -> int
val active : unit -> t option
val find : t -> uid:int -> addr:int -> Obj.t option
val add : t -> uid:int -> addr:int -> Obj.t -> unit
