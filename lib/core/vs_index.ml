open Segdb_io
open Segdb_geom

type config = {
  pool : Block_store.Pool.t;
  stats : Io_stats.t;
  block : int;
  cascade : bool;
}

let config ?(pool_blocks = 64) ?(block = 64) ?(cascade = true) () =
  if block < 4 then invalid_arg "Vs_index.config: block must be >= 4";
  {
    pool = Block_store.Pool.create ~capacity:pool_blocks;
    stats = Io_stats.create ();
    block;
    cascade;
  }

type reader = Read_context.t

let reader ?cache_blocks (cfg : config) =
  let cache_blocks =
    match cache_blocks with
    | Some c -> c
    | None -> Block_store.Pool.capacity cfg.pool
  in
  Read_context.create ~cache_blocks ()

let with_reader = Read_context.with_reader
let reader_io = Read_context.stats

module type S = sig
  type t

  val name : string
  val build : config -> Segment.t array -> t
  val insert : t -> Segment.t -> unit
  val delete : t -> Segment.t -> bool
  val query : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
  val query_r : reader -> t -> Vquery.t -> f:(Segment.t -> unit) -> unit
  val iter_all : t -> f:(Segment.t -> unit) -> unit
  val size : t -> int
  val block_count : t -> int
end

let query_ids (type a) (module M : S with type t = a) (t : a) q =
  let acc = ref [] in
  M.query t q ~f:(fun s -> acc := s.Segment.id :: !acc);
  List.sort compare !acc

let query_ids_r (type a) (module M : S with type t = a) r (t : a) q =
  let acc = ref [] in
  M.query_r r t q ~f:(fun s -> acc := s.Segment.id :: !acc);
  List.sort compare !acc
