lib/core/rtree_index.mli: Vs_index
