open Segdb_io
open Segdb_geom
module Pst = Segdb_pst.Pst
module Itree = Segdb_itree.Interval_tree

type node =
  | Leaf of Segment.t array
  | Node of {
      xb : float; (* the base line bl(v) *)
      c : Itree.t option; (* segments lying on bl(v) *)
      l : Pst.t; (* left parts of segments crossing bl(v) *)
      r : Pst.t; (* right parts *)
      left : Block_store.addr;
      right : Block_store.addr;
      size : int; (* segments in this subtree *)
    }

module Store = Block_store.Make (struct
  type t = node
end)

type t = {
  store : Store.t;
  cfg : Vs_index.config;
  by_id : (int, Segment.t) Hashtbl.t;
      (* materialization table: fragments carry ids; a real system would
         store the full segment as the fragment's payload, so lookups
         here are not charged as I/O *)
  mutable root : Block_store.addr;
  mutable size : int;
  mutable deletes : int; (* since the last global rebuild *)
}

let name = "solution1"

let on_line xb (s : Segment.t) = Segment.is_vertical s && s.x1 = xb

let crosses_line xb (s : Segment.t) = Segment.spans_x s xb && not (on_line xb s)

let median_endpoint_x segs =
  let xs = Array.make (2 * Array.length segs) 0.0 in
  Array.iteri
    (fun i (s : Segment.t) ->
      xs.(2 * i) <- s.x1;
      xs.((2 * i) + 1) <- s.x2)
    segs;
  Array.sort compare xs;
  xs.(Array.length xs / 2)

let build_pst t lsegs =
  Pst.blocked ~node_capacity:t.cfg.block ~pool:t.cfg.pool ~stats:t.cfg.stats
    (Array.of_list lsegs)

let build_itree t ivls =
  Itree.build ~leaf_capacity:t.cfg.block ~pool:t.cfg.pool ~stats:t.cfg.stats
    (Array.of_list ivls)

let ivl_of (s : Segment.t) = { Itree.lo = Segment.min_y s; hi = Segment.max_y s; seg = s }

let rec build_node t (segs : Segment.t array) : Block_store.addr =
  let n = Array.length segs in
  if n = 0 then Block_store.null
  else if n <= t.cfg.block then Store.alloc t.store (Leaf segs)
  else begin
    let xb = median_endpoint_x segs in
    let cs = ref [] and ls = ref [] and rs = ref [] in
    let lefts = ref [] and rights = ref [] in
    let stored = ref 0 in
    Array.iter
      (fun (s : Segment.t) ->
        if on_line xb s then begin
          cs := ivl_of s :: !cs;
          incr stored
        end
        else if crosses_line xb s then begin
          ls := Lseg.left_of_vline ~base_x:xb s :: !ls;
          rs := Lseg.right_of_vline ~base_x:xb s :: !rs;
          incr stored
        end
        else if s.x2 < xb then lefts := s :: !lefts
        else rights := s :: !rights)
      segs;
    if !stored = 0 && (!lefts = [] || !rights = []) then
      (* no separation progress: degenerate distribution, oversized leaf *)
      Store.alloc t.store (Leaf segs)
    else begin
      let c = if !cs = [] then None else Some (build_itree t !cs) in
      let l = build_pst t !ls and r = build_pst t !rs in
      let left = build_node t (Array.of_list (List.rev !lefts)) in
      let right = build_node t (Array.of_list (List.rev !rights)) in
      Store.alloc t.store (Node { xb; c; l; r; left; right; size = n })
    end
  end

let build (cfg : Vs_index.config) segs =
  let store = Store.create ~name:"sol1" ~pool:cfg.pool ~stats:cfg.stats () in
  let t =
    { store; cfg; by_id = Hashtbl.create 1024; root = Block_store.null; size = 0; deletes = 0 }
  in
  Array.iter (fun (s : Segment.t) -> Hashtbl.replace t.by_id s.id s) segs;
  if Hashtbl.length t.by_id <> Array.length segs then
    invalid_arg "Solution1.build: duplicate segment ids";
  t.root <- build_node t (Array.copy segs);
  t.size <- Array.length segs;
  t

(* ---------------- query ---------------- *)

let query t (q : Vquery.t) ~f =
  Probe.span t.cfg.stats "sol1.descent" @@ fun () ->
  let seen = Hashtbl.create 16 in
  let emit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      f (Hashtbl.find t.by_id id)
    end
  in
  let emit_lseg (ls : Lseg.t) = emit ls.Lseg.id in
  let rec go addr =
    if addr <> Block_store.null then
      match Store.read t.store addr with
      | Leaf segs ->
          Array.iter (fun (s : Segment.t) -> if Vquery.matches q s then emit s.id) segs
      | Node n ->
          if q.x = n.xb then begin
            (match n.c with
            | Some c -> Itree.overlap c ~lo:q.ylo ~hi:q.yhi ~f:(fun iv -> emit iv.seg.Segment.id)
            | None -> ());
            let lq = Lseg.query ~uq:0.0 ~vlo:q.ylo ~vhi:q.yhi in
            Pst.query n.l lq ~f:emit_lseg;
            Pst.query n.r lq ~f:emit_lseg
            (* all segments touching the base line live here: stop *)
          end
          else if q.x < n.xb then begin
            Pst.query n.l (Lseg.query ~uq:(n.xb -. q.x) ~vlo:q.ylo ~vhi:q.yhi) ~f:emit_lseg;
            go n.left
          end
          else begin
            Pst.query n.r (Lseg.query ~uq:(q.x -. n.xb) ~vlo:q.ylo ~vhi:q.yhi) ~f:emit_lseg;
            go n.right
          end
  in
  go t.root

let query_r r t q ~f = Read_context.with_reader r (fun () -> query t q ~f)

let iter_all t ~f = Hashtbl.iter (fun _ s -> f s) t.by_id

(* ---------------- insertion ---------------- *)

let node_size t addr =
  if addr = Block_store.null then 0
  else match Store.read t.store addr with Leaf s -> Array.length s | Node n -> n.size

(* BB[alpha]-style scapegoat criterion, as in the PSTs. *)
let needs_rebuild t ~child_size ~subtree_size =
  subtree_size > 4 * t.cfg.block && 4 * (child_size + 1) > 3 * (subtree_size + 1)

let rec collect t addr seen acc =
  if addr <> Block_store.null then begin
    (match Store.read t.store addr with
    | Leaf segs ->
        Array.iter
          (fun (s : Segment.t) ->
            if not (Hashtbl.mem seen s.id) then begin
              Hashtbl.add seen s.id ();
              acc := s :: !acc
            end)
          segs
    | Node n ->
        (match n.c with
        | Some c ->
            Itree.iter c (fun iv ->
                let s = iv.Itree.seg in
                if not (Hashtbl.mem seen s.Segment.id) then begin
                  Hashtbl.add seen s.Segment.id ();
                  acc := s :: !acc
                end)
        | None -> ());
        Pst.iter n.l (fun ls ->
            let id = ls.Lseg.id in
            if not (Hashtbl.mem seen id) then begin
              Hashtbl.add seen id ();
              acc := Hashtbl.find t.by_id id :: !acc
            end);
        (* right parts mirror left parts: already collected *)
        collect t n.left seen acc;
        collect t n.right seen acc);
    Store.free t.store addr
  end

let rebuild_subtree t addr =
  let acc = ref [] in
  collect t addr (Hashtbl.create 64) acc;
  build_node t (Array.of_list !acc)

let rec insert_rec t addr (s : Segment.t) : Block_store.addr =
  if addr = Block_store.null then Store.alloc t.store (Leaf [| s |])
  else
    match Store.read t.store addr with
    | Leaf segs ->
        let segs = Array.append segs [| s |] in
        if Array.length segs <= t.cfg.block then begin
          Store.write t.store addr (Leaf segs);
          addr
        end
        else begin
          Store.free t.store addr;
          build_node t segs
        end
    | Node n ->
        if on_line n.xb s then begin
          let c =
            match n.c with
            | Some c -> c
            | None -> build_itree t []
          in
          Itree.insert c (ivl_of s);
          Store.write t.store addr (Node { n with c = Some c; size = n.size + 1 });
          addr
        end
        else if crosses_line n.xb s then begin
          Pst.insert n.l (Lseg.left_of_vline ~base_x:n.xb s);
          Pst.insert n.r (Lseg.right_of_vline ~base_x:n.xb s);
          Store.write t.store addr (Node { n with size = n.size + 1 });
          addr
        end
        else begin
          let go_left = s.x2 < n.xb in
          let kid = if go_left then n.left else n.right in
          let kid = insert_rec t kid s in
          let kid =
            if needs_rebuild t ~child_size:(node_size t kid) ~subtree_size:(n.size + 1) then
              rebuild_subtree t kid
            else kid
          in
          (if go_left then Store.write t.store addr (Node { n with left = kid; size = n.size + 1 })
           else Store.write t.store addr (Node { n with right = kid; size = n.size + 1 }));
          addr
        end

let insert t s =
  if Hashtbl.mem t.by_id s.Segment.id then invalid_arg "Solution1.insert: duplicate id";
  Hashtbl.replace t.by_id s.Segment.id s;
  t.size <- t.size + 1;
  t.root <- insert_rec t t.root s

(* ---------------- deletion ---------------- *)

let rec free_tree t addr =
  if addr <> Block_store.null then begin
    (match Store.read t.store addr with
    | Leaf _ -> ()
    | Node n ->
        free_tree t n.left;
        free_tree t n.right);
    Store.free t.store addr
  end

let rec delete_rec t addr (s : Segment.t) : bool =
  if addr = Block_store.null then false
  else
    match Store.read t.store addr with
    | Leaf segs -> (
        match Array.find_index (fun c -> Segment.equal c s) segs with
        | Some i ->
            let out = Array.make (Array.length segs - 1) s in
            Array.blit segs 0 out 0 i;
            Array.blit segs (i + 1) out i (Array.length segs - 1 - i);
            Store.write t.store addr (Leaf out);
            true
        | None -> false)
    | Node n ->
        if on_line n.xb s then begin
          match n.c with
          | Some c ->
              let present =
                Itree.delete c { Itree.lo = Segment.min_y s; hi = Segment.max_y s; seg = s }
              in
              if present then Store.write t.store addr (Node { n with size = n.size - 1 });
              present
          | None -> false
        end
        else if crosses_line n.xb s then begin
          let dl = Pst.delete n.l (Lseg.left_of_vline ~base_x:n.xb s) in
          let dr = Pst.delete n.r (Lseg.right_of_vline ~base_x:n.xb s) in
          if dl <> dr then invalid_arg "Solution1.delete: inconsistent halves";
          if dl then Store.write t.store addr (Node { n with size = n.size - 1 });
          dl
        end
        else begin
          let go_left = s.x2 < n.xb in
          let present = delete_rec t (if go_left then n.left else n.right) s in
          if present then Store.write t.store addr (Node { n with size = n.size - 1 });
          present
        end

let delete t (s : Segment.t) =
  match Hashtbl.find_opt t.by_id s.Segment.id with
  | Some stored when Segment.equal stored s ->
      let present = delete_rec t t.root s in
      if present then begin
        Hashtbl.remove t.by_id s.Segment.id;
        t.size <- t.size - 1;
        t.deletes <- t.deletes + 1;
        (* halving rebuild keeps weight balance under deletion *)
        if t.deletes > t.size + t.cfg.block then begin
          let segs = Array.of_seq (Hashtbl.to_seq_values t.by_id) in
          free_tree t t.root;
          t.root <- build_node t segs;
          t.deletes <- 0
        end
      end;
      present
  | _ -> false

(* ---------------- metrics / invariants ---------------- *)

let size t = t.size

let rec blocks_rec t addr =
  if addr = Block_store.null then 0
  else
    match Store.read t.store addr with
    | Leaf _ -> 1
    | Node n ->
        1
        + (match n.c with Some c -> Itree.block_count c | None -> 0)
        + Pst.block_count n.l + Pst.block_count n.r
        + blocks_rec t n.left + blocks_rec t n.right

let block_count t = blocks_rec t t.root

let rec height_rec t addr =
  if addr = Block_store.null then 0
  else
    match Store.read t.store addr with
    | Leaf _ -> 1
    | Node n -> 1 + max (height_rec t n.left) (height_rec t n.right)

let height t = height_rec t t.root

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let seen = Hashtbl.create 64 in
  let rec go addr ~lo ~hi =
    if addr = Block_store.null then 0
    else
      match Store.read t.store addr with
      | Leaf segs ->
          Array.iter
            (fun (s : Segment.t) ->
              if Hashtbl.mem seen s.id then fail () else Hashtbl.add seen s.id ();
              (match lo with Some b -> if s.x1 <= b then fail () | None -> ());
              match hi with Some b -> if s.x2 >= b then fail () | None -> ())
            segs;
          Array.length segs
      | Node n ->
          (match lo with Some b -> if n.xb <= b then fail () | None -> ());
          (match hi with Some b -> if n.xb >= b then fail () | None -> ());
          let stored = ref 0 in
          (match n.c with
          | Some c ->
              Itree.iter c (fun iv ->
                  incr stored;
                  let s = iv.Itree.seg in
                  if Hashtbl.mem seen s.Segment.id then fail ()
                  else Hashtbl.add seen s.Segment.id ();
                  if not (on_line n.xb s) then fail ())
          | None -> ());
          if not (Pst.check_invariants n.l && Pst.check_invariants n.r) then fail ();
          if Pst.size n.l <> Pst.size n.r then fail ();
          Pst.iter n.l (fun ls ->
              incr stored;
              let id = ls.Lseg.id in
              if Hashtbl.mem seen id then fail () else Hashtbl.add seen id ();
              let s = Hashtbl.find t.by_id id in
              if not (crosses_line n.xb s) then fail ());
          let nl = go n.left ~lo ~hi:(Some n.xb) in
          let nr = go n.right ~lo:(Some n.xb) ~hi in
          if !stored + nl + nr <> n.size then fail ();
          n.size
  in
  let total = go t.root ~lo:None ~hi:None in
  if total <> t.size then fail ();
  !ok
