open Segdb_io

(** External priority search trees over points: 3-sided range queries.

    Background structure of Section 2: the paper reduces segment queries
    on line-based segments to (almost) 3-sided queries on the endpoint
    set, and Figure 2 shows the two are *not* equivalent. This module
    makes the duality executable: a point [(x, y)] is stored as the
    degenerate vertical line-based segment with base [x] and depth [y],
    so the 3-sided query [x1 <= x <= x2, y >= y0] is exactly an
    {!Lseg.query} on the wrapped {!Pst} — and experiment E12 measures
    how often the point-based answer diverges from the true segment
    answer. *)

type t

val build :
  ?node_capacity:int ->
  ?branching:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  (float * float) array ->
  t
(** Points with ids equal to their array positions. *)

val size : t -> int
val block_count : t -> int

val query : t -> x1:float -> x2:float -> y:float -> f:(int -> float * float -> unit) -> unit
(** Reports (id, point) for every point in [\[x1, x2\] × \[y, ∞)]. *)

val query_ids : t -> x1:float -> x2:float -> y:float -> int list
(** Sorted ids. *)

val count : t -> x1:float -> x2:float -> y:float -> int
