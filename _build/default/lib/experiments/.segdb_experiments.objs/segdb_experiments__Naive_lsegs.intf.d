lib/experiments/naive_lsegs.mli: Block_store Io_stats Lseg Segdb_geom Segdb_io
