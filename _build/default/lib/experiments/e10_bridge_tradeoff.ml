(* E10 — the Section 4.3 trade-off study on G itself: list block
   capacity sweep x cascading on/off. Our bridges are exact landing
   pointers (the d -> 0 limit of the paper's d-spaced bridges, see
   DESIGN.md), so the residual trade-off is the list block size: smaller
   blocks mean deeper list indexes (more fallback I/O) but finer
   walks. *)

open Segdb_io
open Segdb_util
module W = Segdb_workload.Workload
module G = Segdb_segtree.Slab_segment_tree

let id = "e10"
let title = "E10: G structure — list block size x cascading"
let validates = "Section 4.3: bridge navigation vs per-level searches inside G"

let run (p : Harness.params) =
  let n = if p.quick then 1 lsl 13 else 1 lsl 16 in
  let span = 1000.0 in
  let nb = 17 in
  let boundaries = Array.init nb (fun i -> float_of_int i *. (span /. float_of_int (nb - 1))) in
  (* long fragments: co-sorted lines clipped to boundary multiples *)
  let rng = Rng.create p.seed in
  let raw = W.long_spans rng ~n ~span in
  let frags =
    Array.to_list raw
    |> List.filter_map (fun (s : Segdb_geom.Segment.t) ->
           let step = span /. float_of_int (nb - 1) in
           let f = ceil (s.Segdb_geom.Segment.x1 /. step) *. step in
           let l = floor (s.Segdb_geom.Segment.x2 /. step) *. step in
           if f < l then Segdb_geom.Segment.clip_x s f l else None)
    |> Array.of_list
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (fragments = %d)" title (Array.length frags))
      ~columns:
        [ "list block"; "cascade"; "mean io"; "max io"; "blocks"; "guided"; "fallback" ]
  in
  let qrng = Rng.create (p.seed + 1) in
  let queries =
    Array.init 40 (fun _ ->
        let x = Rng.float qrng span in
        let y = Rng.float qrng span in
        (x, y, y +. (0.01 *. span)))
  in
  List.iter
    (fun lb ->
      List.iter
        (fun cascade ->
          let io = Io_stats.create () in
          let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
          let g = G.build ~cascade ~list_block:lb ~pool ~stats:io ~boundaries frags in
          let c =
            Harness.measure ~io ~queries ~run:(fun (x, ylo, yhi) ->
                let k = ref 0 in
                G.query g ~x ~ylo ~yhi ~f:(fun _ -> incr k);
                !k)
          in
          Table.add_row table
            [
              Table.cell_int lb;
              (if cascade then "yes" else "no");
              Table.cell_float ~decimals:1 c.mean_io;
              Table.cell_float ~decimals:0 c.max_io;
              Table.cell_int (G.block_count g);
              Table.cell_int (G.guided_levels g);
              Table.cell_int (G.fallback_searches g);
            ])
        [ true; false ])
    [ 16; 64; 256 ];
  [ Harness.Table table ]
