let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let init = 0xFFFFFFFF

let update acc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc.update: out of bounds";
  let t = Lazy.force table in
  let acc = ref acc in
  for i = pos to pos + len - 1 do
    acc := t.((!acc lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!acc lsr 8)
  done;
  !acc

let finish acc = acc lxor 0xFFFFFFFF

let string s = finish (update init s ~pos:0 ~len:(String.length s))

let bytes b ~pos ~len =
  finish (update init (Bytes.unsafe_to_string b) ~pos ~len)
