open Segdb_geom

type node = {
  seg : Lseg.t; (* deepest segment of the subtree *)
  kmin : Lseg.t; (* subtree key range *)
  kmax : Lseg.t;
  left : node option;
  right : node option;
  count : int;
}

type t = { root : node option }

let size t = match t.root with Some n -> n.count | None -> 0

let rec height_rec = function
  | None -> 0
  | Some n -> 1 + max (height_rec n.left) (height_rec n.right)

let height t = height_rec t.root

(* [arr] sorted by {!Lseg.compare_key}; extract the deepest as the node,
   split the rest at the median key. *)
let rec build_rec (arr : Lseg.t array) lo hi : node option =
  if lo > hi then None
  else begin
    let deepest = ref lo in
    for i = lo + 1 to hi do
      if Lseg.compare_far_u arr.(i) arr.(!deepest) > 0 then deepest := i
    done;
    let d = arr.(!deepest) in
    (* remove the deepest, split the remainder at its median *)
    let rest = Array.make (hi - lo) d in
    let j = ref 0 in
    for i = lo to hi do
      if i <> !deepest then begin
        rest.(!j) <- arr.(i);
        incr j
      end
    done;
    let m = Array.length rest in
    let mid = m / 2 in
    let left = build_rec rest 0 (mid - 1) and right = build_rec rest mid (m - 1) in
    Some { seg = d; kmin = arr.(lo); kmax = arr.(hi); left; right; count = hi - lo + 1 }
  end

let build lsegs =
  let arr = Array.copy lsegs in
  Array.sort Lseg.compare_key arr;
  { root = build_rec arr 0 (Array.length arr - 1) }

let query t (q : Lseg.query) ~f =
  let lo = ref None and hi = ref None in
  let pruned (n : node) =
    (match !lo with Some w -> Lseg.compare_key n.kmax w <= 0 | None -> false)
    || match !hi with Some w -> Lseg.compare_key n.kmin w >= 0 | None -> false
  in
  let scan (s : Lseg.t) =
    if Lseg.reaches s q.uq then begin
      let cv = Lseg.cross_v s q.uq in
      if cv < q.vlo then (
        match !lo with
        | Some w when Lseg.compare_key w s >= 0 -> ()
        | _ -> lo := Some s)
      else if cv > q.vhi then (
        match !hi with
        | Some w when Lseg.compare_key w s <= 0 -> ()
        | _ -> hi := Some s)
      else f s
    end
  in
  let rec visit = function
    | None -> ()
    | Some n ->
        if n.seg.Lseg.far_u >= q.uq && not (pruned n) then begin
          scan n.seg;
          visit n.left;
          visit n.right
        end
  in
  visit t.root

let query_list t q =
  let acc = ref [] in
  query t q ~f:(fun s -> acc := s :: !acc);
  !acc

let check_invariants t =
  let ok = ref true in
  let rec go lo hi = function
    | None -> 0
    | Some n ->
        (match lo with
        | Some b -> if Lseg.compare_key n.kmin b < 0 then ok := false
        | None -> ());
        (match hi with
        | Some b -> if Lseg.compare_key n.kmax b > 0 then ok := false
        | None -> ());
        let heap_ok child =
          match child with
          | Some c -> if Lseg.compare_far_u c.seg n.seg > 0 then ok := false
          | None -> ()
        in
        heap_ok n.left;
        heap_ok n.right;
        let cl = go lo hi n.left and cr = go lo hi n.right in
        if cl + cr + 1 <> n.count then ok := false;
        n.count
  in
  ignore (go None None t.root);
  !ok
