type ipoint = int * int
type iseg = ipoint * ipoint

let orient (ax, ay) (bx, by) (cx, cy) =
  let det = ((bx - ax) * (cy - ay)) - ((by - ay) * (cx - ax)) in
  compare det 0

let on_segment ((px, py) as p) (((ax, ay) as a), ((bx, by) as b)) =
  orient a b p = 0
  && min ax bx <= px
  && px <= max ax bx
  && min ay by <= py
  && py <= max ay by

(* 1-D closed-interval overlap length sign: 0 = disjoint, 1 = single
   point, 2 = positive-length overlap. *)
let overlap_1d a1 a2 b1 b2 =
  let lo = max (min a1 a2) (min b1 b2) and hi = min (max a1 a2) (max b1 b2) in
  if lo > hi then 0 else if lo = hi then 1 else 2

let collinear_overlap ((ax, ay), (bx, by)) ((cx, cy), (dx, dy)) =
  (* All four points collinear; project on the dominant axis. *)
  if max (abs (bx - ax)) (abs (dx - cx)) >= max (abs (by - ay)) (abs (dy - cy)) then
    overlap_1d ax bx cx dx
  else overlap_1d ay by cy dy

let crosses ((a, b) as s1) ((c, d) as s2) =
  let d1 = orient a b c
  and d2 = orient a b d
  and d3 = orient c d a
  and d4 = orient c d b in
  if d1 = 0 && d2 = 0 && d3 = 0 && d4 = 0 then collinear_overlap s1 s2 = 2
  else d1 * d2 < 0 && d3 * d4 < 0

let intersect ((a, b) as s1) ((c, d) as s2) =
  let d1 = orient a b c
  and d2 = orient a b d
  and d3 = orient c d a
  and d4 = orient c d b in
  if d1 * d2 < 0 && d3 * d4 < 0 then true
  else
    (d1 = 0 && on_segment c s1)
    || (d2 = 0 && on_segment d s1)
    || (d3 = 0 && on_segment a s2)
    || (d4 = 0 && on_segment b s2)

let nct_set segs =
  let n = Array.length segs in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if !ok && crosses segs.(i) segs.(j) then ok := false
    done
  done;
  !ok

let of_segment (s : Segment.t) =
  let conv v =
    let i = int_of_float v in
    if float_of_int i <> v then
      invalid_arg "Predicates.of_segment: non-integer coordinate";
    i
  in
  ((conv s.x1, conv s.y1), (conv s.x2, conv s.y2))
