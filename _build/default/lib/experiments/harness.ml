open Segdb_io
open Segdb_util

type params = { seed : int; quick : bool }

let default = { seed = 42; quick = false }
let quick = { default with quick = true }

let sweep_n p =
  let hi = if p.quick then 13 else 17 in
  List.init (hi - 9) (fun i -> 1 lsl (i + 10))

type output = Table of Segdb_util.Table.t | Chart of string

type cost = { queries : int; mean_io : float; max_io : float; mean_out : float }

let measure ~io ~queries ~run =
  let st = Stats.create () and out = Stats.create () in
  Array.iter
    (fun q ->
      let before = Io_stats.snapshot io in
      let t = run q in
      let d = Io_stats.diff before (Io_stats.snapshot io) in
      Stats.add st (float_of_int (Io_stats.snapshot_total d));
      Stats.add out (float_of_int t))
    queries;
  {
    queries = Stats.count st;
    mean_io = Stats.mean st;
    max_io = Stats.max st;
    mean_out = Stats.mean out;
  }

let cost_cells c =
  [
    Table.cell_float ~decimals:1 c.mean_io;
    Table.cell_float ~decimals:0 c.max_io;
    Table.cell_float ~decimals:1 c.mean_out;
  ]

let pool_blocks = 16
let block = 64

let log2 x = log x /. log 2.0
