lib/geom/segment.ml: Format
