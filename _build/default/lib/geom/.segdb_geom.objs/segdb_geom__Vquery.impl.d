lib/geom/vquery.ml: Float Format Segment
