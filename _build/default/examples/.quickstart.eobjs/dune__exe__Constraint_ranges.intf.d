examples/constraint_ranges.mli:
