(** Deterministic fault injection for the I/O stack.

    A {e site} is a named point in the code where a fault can be
    injected: the syscall wrappers ([pread], [pwrite], [fsync]), the
    WAL's frame append ([wal.append]), the store's durability point
    ([store.sync]), the snapshot writer ([snapshot.write]), and the
    query entry ([segdb.query]). Sites are registered once at module
    initialization ({!site}) and consulted with {!fire} on every pass.

    The registry is disarmed by default, and a disarmed {!fire} costs a
    single [Atomic.get] — the same discipline as
    {!Segdb_obs.Control.enabled}, so production builds pay nothing
    measurable. Arming installs a {e plan} per site: an action, the hit
    number it triggers on, and whether it keeps firing afterwards.
    Randomness (bit positions, torn-prefix lengths) flows through a
    seeded {!Segdb_util.Rng}, so every injected failure is reproducible
    from the arming seed.

    Plans can be armed programmatically ({!arm}) or from the
    environment ({!arm_from_env} reads [SEGDB_FAILPOINTS], e.g.
    ["wal.append=crash@3;pread=eio+"]) — which is how the CLI tools
    expose the harness without any code change. *)

exception Injected_crash of string
(** A hard "crash here" cut: the site name is the payload. Raised out
    of the faulted operation and never caught inside the library — the
    test harness treats it as the process dying at that instant. *)

(** What a site does when its plan triggers. *)
type action =
  | Eio  (** raise [Unix.EIO]; a one-shot plan models a transient
             error healed by the retry policy, a persistent plan a
             dead device *)
  | Short  (** short transfer: a read returns a strict prefix, a write
               persists one and then fails (retryable) *)
  | Bit_flip  (** flip one random bit of the transferred buffer —
                  silent corruption, to be caught by checksums *)
  | Torn  (** write a strict prefix of the buffer, then crash *)
  | Crash  (** raise {!Injected_crash} before touching anything *)

type site

val site : string -> site
(** Get-or-create the named site. Call once at module initialization
    and keep the handle; names are global. *)

val name : site -> string

val registered : unit -> string list
(** Every registered site name, sorted. Complete once the libraries
    are linked, since sites register at module initialization. *)

val armed : unit -> bool
(** One atomic load; [false] by default. *)

type plan = {
  at : int;  (** trigger on this hit number, 1-based *)
  persistent : bool;  (** keep firing from [at] on, vs once *)
  action : action;
}

val plan : ?at:int -> ?persistent:bool -> action -> plan
(** [at] defaults to 1, [persistent] to [false]. *)

val arm : ?seed:int -> (string * plan) list -> unit
(** Installs the plans (replacing any previous arming), resets every
    site's hit counter, and seeds the injection {!rng}. Unknown site
    names are accepted — the site may register later. *)

val disarm : unit -> unit

val arm_from_env : unit -> unit
(** Arms from [SEGDB_FAILPOINTS] if set (seed from
    [SEGDB_FAILPOINT_SEED], default 0). The spec grammar is
    [site=action\[@hit\]\[+\]] joined by [';' | ',']: [eio], [short],
    [flip], [torn], [crash]; [@N] sets the hit number; a trailing [+]
    makes the plan persistent. Malformed specs abort with a message on
    stderr, so a typo cannot silently disarm a fault run. *)

val parse_spec : string -> ((string * plan) list, string) result
(** The parser behind {!arm_from_env}, exposed for the CLI. *)

val fire : site -> action option
(** Consult the site: [None] when disarmed (one atomic load) or when
    the site's plan does not trigger on this hit. Hits are counted only
    while armed. *)

val hits : site -> int
(** Hits since the last {!arm}. *)

val rng : unit -> Segdb_util.Rng.t
(** The arming-seeded generator injection helpers draw from. *)

(** Hardened syscall wrappers shared by {!File_store}, {!Wal} and the
    snapshot writer. Each wrapper consults its fault site on every
    attempt, retries transient errors ([EINTR]/[EAGAIN] always, [EIO] a
    bounded number of times with exponential backoff), counts retries
    into [Segdb_obs.Metrics] as [io.retries] (when observability is
    on), and treats a persistently stalled 0-byte write as an error
    rather than spinning. *)
module Io : sig
  val pread : Unix.file_descr -> off:int -> Bytes.t -> int
  (** Positional read of the whole buffer; returns the bytes obtained
      (short only at end-of-file, or under an injected [Short]).
      Site: [pread]. *)

  val pwrite : Unix.file_descr -> off:int -> Bytes.t -> unit
  (** Positional write of the whole buffer. Site: [pwrite]. *)

  val write_all : ?site:site -> Unix.file_descr -> off:int -> Bytes.t -> unit
  (** Like {!pwrite} but firing [site] instead (the WAL's
      [wal.append], the snapshot's [snapshot.write]); the explicit
      offset makes retries idempotent — every attempt rewrites from
      [off]. *)

  val fsync : ?site:site -> Unix.file_descr -> unit
  (** Site: [fsync] unless overridden. *)

  (** {2 Socket wrappers}

      The same retry discipline over a stream, for the network serving
      layer ({!Segdb_net}). Streams cannot re-seek, so [Torn] changes
      meaning: instead of a crash cut it models the {e connection}
      dying mid-frame — a strict prefix reaches the wire, then the
      writer sees [ECONNRESET]. The process survives; the peer observes
      a truncated or CRC-mismatched frame and retries. *)

  val recv : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> int
  (** One [read(2)] into [buf.(pos..pos+len)], returning the byte count
      ([0] at end-of-stream). [EINTR]/[EAGAIN] retried, [EIO] bounded.
      Injected [Short]/[Torn] truncate the result to a strict prefix;
      [Bit_flip] corrupts one received bit (caught by the frame CRC).
      Site: [net.read]. *)

  val send_all : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> unit
  (** Writes the whole range, looping over partial transfers. Injected
      [Short] caps one transfer (the loop continues — legal socket
      behaviour); [Bit_flip] corrupts one outgoing bit; [Torn] sends a
      strict prefix and raises [ECONNRESET]. Site: [net.write]. *)
end
