open Segdb_geom

let to_channel oc segs =
  output_string oc "# segdb segment set: id x1 y1 x2 y2\n";
  Array.iter
    (fun (s : Segment.t) ->
      Printf.fprintf oc "%d %.17g %.17g %.17g %.17g\n" s.id s.x1 s.y1 s.x2 s.y2)
    segs

let save path segs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc segs)

let of_channel ic =
  let acc = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = input_line ic in
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
         | [ id; x1; y1; x2; y2 ] -> (
             match
               ( int_of_string_opt id,
                 float_of_string_opt x1,
                 float_of_string_opt y1,
                 float_of_string_opt x2,
                 float_of_string_opt y2 )
             with
             | Some id, Some x1, Some y1, Some x2, Some y2 ->
                 acc := Segment.make ~id (x1, y1) (x2, y2) :: !acc
             | _ -> failwith (Printf.sprintf "line %d: malformed numbers" !lineno))
         | _ -> failwith (Printf.sprintf "line %d: expected 5 fields" !lineno)
     done
   with End_of_file -> ());
  Array.of_list (List.rev !acc)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

module Codec = Segdb_io.Codec

let codec : Segment.t Codec.t =
  {
    write =
      (fun b (s : Segment.t) ->
        Codec.W.u64 b s.id;
        Codec.W.f64 b s.x1;
        Codec.W.f64 b s.y1;
        Codec.W.f64 b s.x2;
        Codec.W.f64 b s.y2);
    read =
      (fun r ->
        let id = Codec.R.u64 r in
        let x1 = Codec.R.f64 r in
        let y1 = Codec.R.f64 r in
        let x2 = Codec.R.f64 r in
        let y2 = Codec.R.f64 r in
        (* [make] renormalizes endpoint order, the stored segment was
           already normalized: the round-trip is exact *)
        Segment.make ~id (x1, y1) (x2, y2));
  }

let array_codec = Codec.array codec
