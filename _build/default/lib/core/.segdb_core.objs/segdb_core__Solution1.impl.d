lib/core/solution1.ml: Array Block_store Hashtbl List Lseg Segdb_geom Segdb_io Segdb_itree Segdb_pst Segment Vquery Vs_index
