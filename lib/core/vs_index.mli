open Segdb_io
open Segdb_geom

(** Common interface of the vertical-segment-query indexes.

    Every index is built against one {!config}: a shared buffer pool, a
    shared I/O counter, and the block size [B]. The experiments measure
    an operation by snapshotting [stats] around it.

    {b Reader/writer contract.} The query operations ([query],
    [query_r], and everything built on them — counts, id lists,
    enumeration) never mutate the index. [insert]/[delete] require
    exclusive access. A {!reader} makes the read half of that contract
    operational: queries run under one touch no shared state at all —
    I/O is charged to the reader's own counter and cold blocks land in
    the reader's own LRU shard — so any number of domains can query one
    index concurrently, each with its own reader. *)

type config = {
  pool : Block_store.Pool.t;
  stats : Io_stats.t;
  block : int; (** the paper's [B]: items per block / node capacity *)
  cascade : bool; (** Solution 2: fractional cascading in [G] *)
}

val config :
  ?pool_blocks:int -> ?block:int -> ?cascade:bool -> unit -> config
(** Defaults: a 64-block pool, [block = 64], cascading on. The pool is
    deliberately small relative to index sizes so that I/O counts
    reflect structure traversals rather than cache hits. *)

type reader = Read_context.t
(** A read context for this index family: per-reader {!Io_stats.t} plus
    a private LRU shard. See {!Read_context}. *)

val reader : ?cache_blocks:int -> config -> reader
(** A fresh reader for indexes built against [config]. The private
    shard defaults to the shared pool's capacity, so a reader's memory
    budget matches the writer's. Do not share a reader across configs
    (block addresses are only unique within one pool). *)

val with_reader : reader -> (unit -> 'a) -> 'a
(** Runs [f] with the reader installed on the current domain:
    {!Block_store} reads go through it, and any index mutation raises
    [Invalid_argument]. *)

val reader_io : reader -> Io_stats.t
(** The reader's own counter: the cold misses this reader paid. *)

module type S = sig
  type t

  val name : string

  val build : config -> Segment.t array -> t
  (** Bulk construction. Segment ids must be distinct; answers are
      reported in terms of the original segments. *)

  val insert : t -> Segment.t -> unit

  val delete : t -> Segment.t -> bool
  (** Removes the segment (matched by id and geometry); returns whether
      it was present. Amortized logarithmic: the structures use local
      removal plus periodic rebuilds. *)

  val query : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
  (** Calls [f] exactly once per stored segment intersecting the
      query. *)

  val query_r : reader -> t -> Vquery.t -> f:(Segment.t -> unit) -> unit
  (** [query] against an immutable-by-contract handle: runs under the
      reader, charging I/O to {!reader_io} and leaving the shared pool,
      the shared counter and all index state untouched. Safe to call
      from several domains at once (one reader per domain) as long as
      no writer runs. *)

  val iter_all : t -> f:(Segment.t -> unit) -> unit
  (** Calls [f] exactly once per stored segment, in unspecified order —
      the enumeration snapshots and audits are built on. Backends that
      materialize segments by id answer from that table; block-resident
      backends scan their blocks and are charged the I/O. *)

  val size : t -> int
  val block_count : t -> int
end

val query_ids : (module S with type t = 'a) -> 'a -> Vquery.t -> int list
(** Sorted ids of the answer — the comparison form used by tests. *)

val query_ids_r :
  (module S with type t = 'a) -> reader -> 'a -> Vquery.t -> int list
(** {!query_ids} through a reader. *)
