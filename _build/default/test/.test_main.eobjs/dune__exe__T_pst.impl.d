test/t_pst.ml: Alcotest Array Block_store Hashtbl Io_stats List Lseg Printf QCheck QCheck_alcotest Segdb_geom Segdb_io Segdb_pst Segdb_util
