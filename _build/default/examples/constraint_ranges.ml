(* Constraint database scenario.

   The paper lists constraint databases [11] among the applications of
   segment databases. The reduction: a linear repeating or bounded
   constraint over (t, x) — say "resource r is feasible while
   x = a + b*t, for t in [t1, t2]" — is a plane segment; asking "which
   constraints admit a solution at time t0 with x in [lo, hi]" is a
   vertical segment query.

   This example models a fleet of linearly-drifting reservations and
   answers feasibility queries over them.

   Run with: dune exec examples/constraint_ranges.exe *)

open Segdb_geom
module Db = Segdb_core.Segdb
module Rng = Segdb_util.Rng

let () =
  let rng = Rng.create 17 in
  let n = 30_000 in
  let horizon = 10_000.0 in
  (* non-crossing by construction: co-sorted intercepts and drifts *)
  let intercepts = Array.init n (fun _ -> Rng.float rng 5_000.0) in
  let drifts = Array.init n (fun _ -> (Rng.float rng 0.4) -. 0.2) in
  Array.sort compare intercepts;
  Array.sort compare drifts;
  let constraints =
    Array.init n (fun i ->
        let t1 = Rng.float rng (horizon /. 2.0) in
        let t2 = t1 +. 200.0 +. Rng.float rng (horizon /. 2.0) in
        let x t = intercepts.(i) +. (drifts.(i) *. t) in
        Segment.make ~id:i (t1, x t1) (t2, x t2))
  in
  let db = Db.create ~backend:`Solution2 constraints in
  Printf.printf "constraint store: %d linear validity constraints over t in [0, %.0f]\n"
    (Db.size db) horizon;

  (* feasibility probes *)
  List.iter
    (fun (t0, lo, hi) ->
      let io = Db.io db in
      Segdb_io.Io_stats.reset io;
      let feasible = Db.query db (Vquery.segment ~x:t0 ~ylo:lo ~yhi:hi) in
      Printf.printf
        "at t=%.0f, x in [%.0f, %.0f]: %d feasible constraints (%d I/Os)\n" t0 lo hi
        (List.length feasible)
        (Segdb_io.Io_stats.total_io io))
    [ (1_000.0, 1_000.0, 1_100.0); (5_000.0, 2_000.0, 2_500.0); (9_000.0, 0.0, 5_000.0) ];

  (* which constraints are active at all at time t (any x)? *)
  let t0 = 7_500.0 in
  Printf.printf "constraints whose validity interval contains t=%.0f: %d\n" t0
    (Db.count db (Vquery.line ~x:t0));

  (* sanity: the naive scan agrees *)
  let naive = Db.create ~backend:`Naive constraints in
  let q = Vquery.segment ~x:5_000.0 ~ylo:2_000.0 ~yhi:2_500.0 in
  Printf.printf "exactness check: %b\n" (Db.query_ids naive q = Db.query_ids db q)
