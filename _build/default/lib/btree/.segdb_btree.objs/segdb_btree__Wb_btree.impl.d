lib/btree/wb_btree.ml: Array Block_store List Segdb_io
