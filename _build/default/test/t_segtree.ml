(* Packed list and slab segment tree (G + fractional cascading) tests. *)

open Segdb_io
open Segdb_geom
module G = Segdb_segtree.Slab_segment_tree

module Pl = Segdb_segtree.Packed_list.Make (struct
  type t = int
end)

let qtest = QCheck_alcotest.to_alcotest

let mk_pool ?(cap = 512) () = (Block_store.Pool.create ~capacity:cap, Io_stats.create ())

(* ---------------- Packed_list ---------------- *)

let sorted_ints_arb =
  QCheck.make ~print:QCheck.Print.(list int)
    QCheck.Gen.(map (List.sort_uniq compare) (list_size (0 -- 300) (int_range 0 1000)))

let prop_plist_search =
  QCheck.Test.make ~name:"packed list search equals naive" ~count:200
    (QCheck.pair sorted_ints_arb (QCheck.int_range (-10) 1010))
    (fun (xs, needle) ->
      let pool, io = mk_pool () in
      let arr = Array.of_list xs in
      let t = Pl.build ~block_capacity:4 ~pool ~stats:io arr in
      let got = Pl.search t ~cmp:(fun e -> compare e needle) in
      let expected =
        match Array.find_index (fun e -> e >= needle) arr with
        | Some i -> i
        | None -> Array.length arr
      in
      got = expected)

let prop_plist_roundtrip =
  QCheck.Test.make ~name:"packed list get/to_array roundtrip" ~count:100 sorted_ints_arb
    (fun xs ->
      let pool, io = mk_pool () in
      let arr = Array.of_list xs in
      let t = Pl.build ~block_capacity:3 ~pool ~stats:io arr in
      Pl.to_array t = arr
      && List.for_all (fun i -> Pl.get t i = arr.(i)) (List.init (Array.length arr) Fun.id))

let prop_plist_walks =
  QCheck.Test.make ~name:"packed list bidirectional walks" ~count:100
    (QCheck.pair sorted_ints_arb QCheck.small_nat)
    (fun (xs, start) ->
      let pool, io = mk_pool () in
      let arr = Array.of_list xs in
      let n = Array.length arr in
      QCheck.assume (n > 0);
      let start = start mod n in
      let t = Pl.build ~block_capacity:3 ~pool ~stats:io arr in
      let fwd = ref [] in
      Pl.iter_forward t start (fun i e ->
          fwd := (i, e) :: !fwd;
          `Continue);
      let bwd = ref [] in
      Pl.iter_backward t start (fun i e ->
          bwd := (i, e) :: !bwd;
          `Continue);
      List.rev !fwd = List.init (n - start) (fun k -> (start + k, arr.(start + k)))
      && List.rev !bwd = List.init (start + 1) (fun k -> (start - k, arr.(start - k))))

let test_plist_empty () =
  let pool, io = mk_pool () in
  let t = Pl.build ~pool ~stats:io [||] in
  Alcotest.(check int) "length" 0 (Pl.length t);
  Alcotest.(check int) "search" 0 (Pl.search t ~cmp:(fun _ -> 0));
  Pl.iter_forward t 0 (fun _ _ -> Alcotest.fail "no entries");
  Pl.iter_backward t 0 (fun _ _ -> Alcotest.fail "no entries")

let test_plist_search_io () =
  let pool = Block_store.Pool.create ~capacity:4 in
  let io = Io_stats.create () in
  let arr = Array.init 100_000 (fun i -> i) in
  let t = Pl.build ~block_capacity:64 ~pool ~stats:io arr in
  Io_stats.reset io;
  ignore (Pl.search t ~cmp:(fun e -> compare e 77_777));
  Alcotest.(check bool)
    (Printf.sprintf "search cost %d is logarithmic" (Io_stats.reads io))
    true
    (Io_stats.reads io <= 4)

(* ---------------- Slab segment tree ---------------- *)

(* Non-crossing long fragments on x >= 0: lines y = base + slope * x
   with bases and slopes co-sorted never cross at x >= 0. *)
let fragments_of rng ~nb ~n =
  let boundaries = Array.init nb (fun i -> float_of_int (i * 10)) in
  let bases = Array.init n (fun _ -> Segdb_util.Rng.float rng 100.0) in
  let slopes = Array.init n (fun _ -> Segdb_util.Rng.float rng 2.0 -. 1.0) in
  Array.sort compare bases;
  Array.sort compare slopes;
  let frags =
    Array.init n (fun i ->
        let a = Segdb_util.Rng.int rng (nb - 1) in
        let b = Segdb_util.Rng.in_range rng (a + 1) (nb - 1) in
        let xa = boundaries.(a) and xb = boundaries.(b) in
        let y x = bases.(i) +. (slopes.(i) *. x) in
        Segment.make ~id:i (xa, y xa) (xb, y xb))
  in
  (boundaries, frags)

let g_scenario =
  QCheck.make
    ~print:(fun (seed, nb, n, x, y1, w) ->
      Printf.sprintf "seed=%d nb=%d n=%d x=%g y=[%g,%g]" seed nb n x y1 (y1 +. w))
    QCheck.Gen.(
      let* seed = 0 -- 100000 in
      let* nb = 2 -- 12 in
      let* n = 0 -- 80 in
      let* x = float_range (-5.0) 125.0 in
      let* y1 = float_range (-20.0) 220.0 in
      let* w = float_range 0.0 100.0 in
      return (seed, nb, n, x, y1, w))

let oracle_g frags ~x ~ylo ~yhi =
  Array.to_list frags
  |> List.filter (fun (s : Segment.t) ->
         Segment.spans_x s x
         &&
         let y = Segment.y_at s x in
         ylo <= y && y <= yhi)
  |> List.map (fun (s : Segment.t) -> s.Segment.id)
  |> List.sort_uniq compare

let run_g ?(cascade = true) (seed, nb, n, x, y1, w) =
  let pool, io = mk_pool () in
  let rng = Segdb_util.Rng.create seed in
  let boundaries, frags = fragments_of rng ~nb ~n in
  let g = G.build ~cascade ~list_block:4 ~pool ~stats:io ~boundaries frags in
  let got = G.query_list g ~x ~ylo:y1 ~yhi:(y1 +. w) in
  let got_ids = List.map (fun (s : Segment.t) -> s.Segment.id) got |> List.sort compare in
  (g, frags, got_ids, io)

let prop_g_oracle =
  QCheck.Test.make ~name:"segment tree query equals naive (cascade)" ~count:400 g_scenario
    (fun ((_, _, _, x, y1, w) as sc) ->
      let _, frags, got, _ = run_g sc in
      let expected = oracle_g frags ~x ~ylo:y1 ~yhi:(y1 +. w) in
      got = expected
      && List.length got = List.length (List.sort_uniq compare got) (* unique *))

let prop_g_oracle_nocascade =
  QCheck.Test.make ~name:"segment tree query equals naive (no cascade)" ~count:300 g_scenario
    (fun ((_, _, _, x, y1, w) as sc) ->
      let _, frags, got, _ = run_g ~cascade:false sc in
      got = oracle_g frags ~x ~ylo:y1 ~yhi:(y1 +. w))

let prop_g_invariants =
  QCheck.Test.make ~name:"segment tree invariants" ~count:200 g_scenario (fun sc ->
      let g, frags, _, _ = run_g sc in
      G.check_invariants g
      && G.size g = Array.length frags
      (* each fragment allocated to at most 2 nodes per level *)
      && G.stored_entries g <= Array.length frags * 2 * (2 + int_of_float (ceil (log (float_of_int (max 2 (G.size g))) /. log 2.0))))

let test_g_cascade_guides () =
  let pool, io = mk_pool ~cap:2048 () in
  let rng = Segdb_util.Rng.create 3 in
  let boundaries, frags = fragments_of rng ~nb:12 ~n:4000 in
  let g = G.build ~cascade:true ~list_block:16 ~pool ~stats:io ~boundaries frags in
  for i = 0 to 19 do
    let x = 5.0 +. (float_of_int i *. 5.5) in
    ignore (G.query_list g ~x ~ylo:0.0 ~yhi:200.0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "guided %d > fallback %d" (G.guided_levels g) (G.fallback_searches g))
    true
    (G.guided_levels g > G.fallback_searches g)

let test_g_cascade_saves_io () =
  (* With dense lists on every level, cascading must beat per-level
     searches in I/Os. *)
  let run cascade =
    let pool = Block_store.Pool.create ~capacity:8 in
    let io = Io_stats.create () in
    let rng = Segdb_util.Rng.create 9 in
    let boundaries, frags = fragments_of rng ~nb:16 ~n:20_000 in
    let g = G.build ~cascade ~list_block:32 ~pool ~stats:io ~boundaries frags in
    Io_stats.reset io;
    for i = 0 to 49 do
      let x = 3.0 +. (float_of_int i *. 2.9) in
      let y = float_of_int (i * 4) in
      ignore (G.query_list g ~x ~ylo:y ~yhi:(y +. 4.0))
    done;
    Io_stats.reads io
  in
  let with_fc = run true and without_fc = run false in
  Alcotest.(check bool)
    (Printf.sprintf "cascade %d < no-cascade %d reads" with_fc without_fc)
    true
    (with_fc < without_fc)

let test_g_empty_and_errors () =
  let pool, io = mk_pool () in
  let g = G.build ~pool ~stats:io ~boundaries:[| 0.0; 10.0 |] [||] in
  Alcotest.(check int) "empty query" 0 (List.length (G.query_list g ~x:5.0 ~ylo:0.0 ~yhi:1.0));
  Alcotest.(check bool) "bad boundaries rejected" true
    (match G.build ~pool ~stats:io ~boundaries:[| 1.0 |] [||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "off-boundary fragment rejected" true
    (match
       G.build ~pool ~stats:io ~boundaries:[| 0.0; 10.0 |]
         [| Segment.make ~id:0 (1.0, 0.0) (10.0, 0.0) |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_g_boundary_query () =
  (* query exactly on an interior boundary touches both sides *)
  let pool, io = mk_pool () in
  let boundaries = [| 0.0; 10.0; 20.0 |] in
  let frags =
    [|
      Segment.make ~id:0 (0.0, 1.0) (10.0, 1.0); (* left of s_1 *)
      Segment.make ~id:1 (10.0, 2.0) (20.0, 2.0); (* right of s_1 *)
      Segment.make ~id:2 (0.0, 3.0) (20.0, 3.0); (* spans both *)
    |]
  in
  let g = G.build ~pool ~stats:io ~boundaries frags in
  let got =
    G.query_list g ~x:10.0 ~ylo:0.0 ~yhi:5.0
    |> List.map (fun (s : Segment.t) -> s.Segment.id)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "all three touched once" [ 0; 1; 2 ] got

let suite =
  ( "segtree",
    [
      Alcotest.test_case "plist empty" `Quick test_plist_empty;
      Alcotest.test_case "plist search io" `Quick test_plist_search_io;
      Alcotest.test_case "g cascade guides" `Quick test_g_cascade_guides;
      Alcotest.test_case "g cascade saves io" `Quick test_g_cascade_saves_io;
      Alcotest.test_case "g empty and errors" `Quick test_g_empty_and_errors;
      Alcotest.test_case "g boundary query" `Quick test_g_boundary_query;
      qtest prop_plist_search;
      qtest prop_plist_roundtrip;
      qtest prop_plist_walks;
      qtest prop_g_oracle;
      qtest prop_g_oracle_nocascade;
      qtest prop_g_invariants;
    ] )

(* -------- dynamic overlay: insert + delete -------- *)

let prop_g_insert_oracle =
  QCheck.Test.make ~name:"segment tree insert preserves queries" ~count:200 g_scenario
    (fun (seed, nb, n, x, y1, w) ->
      QCheck.assume (n > 1 && nb >= 2);
      let pool, io = mk_pool () in
      let rng = Segdb_util.Rng.create seed in
      let boundaries, frags = fragments_of rng ~nb ~n in
      let k = n / 2 in
      let g = G.build ~list_block:4 ~pool ~stats:io ~boundaries (Array.sub frags 0 k) in
      for i = k to n - 1 do
        G.insert g frags.(i)
      done;
      let got =
        G.query_list g ~x ~ylo:y1 ~yhi:(y1 +. w)
        |> List.map (fun (s : Segment.t) -> s.Segment.id)
        |> List.sort compare
      in
      G.size g = n
      && G.check_invariants g
      && got = oracle_g frags ~x ~ylo:y1 ~yhi:(y1 +. w))

let prop_g_delete_oracle =
  QCheck.Test.make ~name:"segment tree delete tombstones correctly" ~count:150 g_scenario
    (fun (seed, nb, n, x, y1, w) ->
      QCheck.assume (n > 0 && nb >= 2);
      let pool, io = mk_pool () in
      let rng = Segdb_util.Rng.create seed in
      let boundaries, frags = fragments_of rng ~nb ~n in
      let g = G.build ~list_block:4 ~pool ~stats:io ~boundaries frags in
      let doomed, kept =
        Array.to_list frags |> List.partition (fun (s : Segment.t) -> s.Segment.id mod 3 = 0)
      in
      let ok_del = List.for_all (G.delete g) doomed in
      let got =
        G.query_list g ~x ~ylo:y1 ~yhi:(y1 +. w)
        |> List.map (fun (s : Segment.t) -> s.Segment.id)
        |> List.sort compare
      in
      ok_del
      && G.size g = List.length kept
      && got = (oracle_g (Array.of_list kept) ~x ~ylo:y1 ~yhi:(y1 +. w)))

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_g_insert_oracle; qtest prop_g_delete_oracle ])
