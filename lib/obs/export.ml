(* Exporters: the three read-out formats of a metrics registry, plus
   the textual rendering of a trace dump.

   - [text]: aligned tables (via Segdb_util.Table) for humans;
   - [json]: one self-contained object for tooling and bench diffs;
   - [prometheus]: the text exposition format — counters and gauges as
     single samples, histograms as cumulative [_bucket{le="..."}]
     series with [_sum]/[_count], names sanitized to the metric
     charset and prefixed [segdb_]. *)

module Table = Segdb_util.Table

let pcts = [ (0.50, "p50"); (0.90, "p90"); (0.99, "p99") ]

(* ---------------- aligned text ---------------- *)

let text reg =
  let buf = Buffer.create 1024 in
  let counters = Metrics.counters reg and gauges = Metrics.gauges reg in
  if counters <> [] || gauges <> [] then begin
    let t = Table.create ~title:"counters" ~columns:[ "name"; "value" ] in
    List.iter (fun (name, v) -> Table.add_row t [ name; Table.cell_int v ]) counters;
    List.iter (fun (name, v) -> Table.add_row t [ name ^ " (gauge)"; Table.cell_int v ]) gauges;
    Buffer.add_string buf (Table.render t)
  end;
  let hists = Metrics.histograms reg in
  if hists <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let t =
      Table.create ~title:"histograms"
        ~columns:[ "name"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun (name, h) ->
        Table.add_row t
          ([ name; Table.cell_int (Histogram.count h); Table.cell_float ~decimals:1 (Histogram.mean h) ]
          @ List.map (fun (p, _) -> Table.cell_float ~decimals:0 (Histogram.percentile h p)) pcts
          @ [ Table.cell_int (Histogram.max_value h) ]))
      hists;
    Buffer.add_string buf (Table.render t)
  end;
  Buffer.contents buf

(* ---------------- JSON ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v || Float.is_integer v then Printf.sprintf "%.0f" (if Float.is_nan v then 0.0 else v)
  else Printf.sprintf "%.6g" v

let json reg =
  let buf = Buffer.create 4096 in
  let obj fields = "{" ^ String.concat ", " fields ^ "}" in
  let scalar_section bindings =
    obj (List.map (fun (name, v) -> Printf.sprintf "\"%s\": %d" (json_escape name) v) bindings)
  in
  let hist_entry (name, h) =
    let nonzero =
      Array.to_list (Histogram.buckets h)
      |> List.mapi (fun b c -> (b, c))
      |> List.filter (fun (_, c) -> c > 0)
      |> List.map (fun (b, c) ->
             let lo, hi = Histogram.bucket_bounds b in
             Printf.sprintf "[%d, %d, %d]" (max 0 lo) (max 0 hi) c)
    in
    Printf.sprintf "\"%s\": %s" (json_escape name)
      (obj
         ([
            Printf.sprintf "\"count\": %d" (Histogram.count h);
            Printf.sprintf "\"sum\": %d" (Histogram.sum h);
            Printf.sprintf "\"min\": %d" (Histogram.min_value h);
            Printf.sprintf "\"max\": %d" (Histogram.max_value h);
            Printf.sprintf "\"mean\": %s" (json_float (Histogram.mean h));
          ]
         @ List.map
             (fun (p, label) ->
               Printf.sprintf "\"%s\": %s" label (json_float (Histogram.percentile h p)))
             pcts
         @ [ Printf.sprintf "\"buckets\": [%s]" (String.concat ", " nonzero) ]))
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"counters\": %s,\n" (scalar_section (Metrics.counters reg)));
  Buffer.add_string buf (Printf.sprintf "  \"gauges\": %s,\n" (scalar_section (Metrics.gauges reg)));
  Buffer.add_string buf
    (Printf.sprintf "  \"histograms\": {%s}\n"
       (String.concat ",\n    " (List.map hist_entry (Metrics.histograms reg))));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---------------- Prometheus text format ---------------- *)

let prom_sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let prom_name name = "segdb_" ^ prom_sanitize name

(* Exposition-format escaping for label values: backslash, double
   quote, and newline. Anything else (an address, a socket path) passes
   through verbatim inside the quotes. *)
let prom_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels kvs =
  match kvs with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> prom_sanitize k ^ "=\"" ^ prom_label_value v ^ "\"") kvs)
      ^ "}"

let prometheus ?(labels = []) reg =
  let buf = Buffer.create 4096 in
  let base = prom_labels labels in
  let sample name typ lines =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
    List.iter (fun l -> Buffer.add_string buf (l ^ "\n")) lines
  in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      sample n "counter" [ Printf.sprintf "%s%s %d" n base v ])
    (Metrics.counters reg);
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      sample n "gauge" [ Printf.sprintf "%s%s %d" n base v ])
    (Metrics.gauges reg);
  List.iter
    (fun (name, h) ->
      let n = prom_name name in
      let with_le le = prom_labels (labels @ [ ("le", le) ]) in
      let buckets = Histogram.buckets h in
      let top =
        (* highest non-empty bucket: emit up to there, then +Inf *)
        let t = ref 0 in
        Array.iteri (fun b c -> if c > 0 then t := b) buckets;
        !t
      in
      let cum = ref 0 in
      let lines = ref [] in
      for b = 0 to top do
        cum := !cum + buckets.(b);
        let _, hi = Histogram.bucket_bounds b in
        lines :=
          Printf.sprintf "%s_bucket%s %d" n (with_le (string_of_int (max 0 hi))) !cum
          :: !lines
      done;
      lines := Printf.sprintf "%s_bucket%s %d" n (with_le "+Inf") (Histogram.count h) :: !lines;
      lines := Printf.sprintf "%s_sum%s %d" n base (Histogram.sum h) :: !lines;
      lines := Printf.sprintf "%s_count%s %d" n base (Histogram.count h) :: !lines;
      sample n "histogram" (List.rev !lines))
    (Metrics.histograms reg);
  Buffer.contents buf

(* ---------------- trace rendering ---------------- *)

let trace_text events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "seq    phase                                dur(us)  blocks\n";
  List.iter
    (fun (ev : Trace.event) ->
      let label = String.make (2 * ev.depth) ' ' ^ ev.phase in
      Buffer.add_string buf
        (Printf.sprintf "%-6d %-36s %8.1f %7d\n" ev.seq label
           (float_of_int ev.dur_ns /. 1e3)
           ev.blocks))
    events;
  Buffer.contents buf

(* The stitched per-request view: events from several processes and
   domains (a client's ring merged with what the server returned over
   the wire), ordered by wall-clock start. Seqs from different
   processes are incomparable, so ties on t0 fall back to (dom, seq)
   only to make the output deterministic. *)
let timeline events =
  let events =
    List.sort
      (fun (a : Trace.event) (b : Trace.event) ->
        compare (a.t0_ns, a.dom, a.seq) (b.t0_ns, b.dom, b.seq))
      events
  in
  let t_base =
    List.fold_left (fun acc (ev : Trace.event) -> min acc ev.t0_ns) max_int events
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t+ms       dur(us)    dom  blocks  phase\n";
  List.iter
    (fun (ev : Trace.event) ->
      Buffer.add_string buf
        (Printf.sprintf "%-10.3f %-10.1f %-4d %7d  %s%s\n"
           (float_of_int (ev.t0_ns - t_base) /. 1e6)
           (float_of_int ev.dur_ns /. 1e3)
           ev.dom ev.blocks
           (String.make (2 * ev.depth) ' ')
           ev.phase))
    events;
  Buffer.contents buf

(* Chrome trace-event JSON (the "JSON array format" with complete "X"
   events), loadable in Perfetto / chrome://tracing. Timestamps are
   microseconds; request ids map to pids and domains to tids, so a
   request groups as one "process" with one track per domain. *)
let trace_json events =
  let events =
    List.sort
      (fun (a : Trace.event) (b : Trace.event) ->
        compare (a.t0_ns, a.dom, a.seq) (b.t0_ns, b.dom, b.seq))
      events
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  List.iteri
    (fun i (ev : Trace.event) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"name\": \"%s\", \"cat\": \"segdb\", \"ph\": \"X\", \"ts\": %.3f, \
            \"dur\": %.3f, \"pid\": %d, \"tid\": %d, \"args\": {\"seq\": %d, \
            \"depth\": %d, \"blocks\": %d}}"
           (json_escape ev.phase)
           (float_of_int ev.t0_ns /. 1e3)
           (float_of_int ev.dur_ns /. 1e3)
           ev.request_id ev.dom ev.seq ev.depth ev.blocks))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* Per-phase roll-up of the span histograms ([span.<phase>.ns] paired
   with [span.<phase>.blocks]) — the table the bench and the CLI's
   --trace flag print. *)
let phase_summary reg =
  let hists = Metrics.histograms reg in
  let phase_of name =
    if String.length name > 8 && String.sub name 0 5 = "span." && Filename.check_suffix name ".ns"
    then Some (String.sub name 5 (String.length name - 8))
    else None
  in
  let t =
    Table.create ~title:"per-phase spans"
      ~columns:
        [ "phase"; "count"; "p50 us"; "p90 us"; "p99 us"; "max us"; "p50 blk"; "max blk" ]
  in
  let any = ref false in
  List.iter
    (fun (name, h) ->
      match phase_of name with
      | None -> ()
      | Some _ when Histogram.is_empty h -> ()
      | Some phase ->
          any := true;
          let blocks =
            match List.assoc_opt (Trace.span_blocks_histogram phase) hists with
            | Some b -> b
            | None -> Histogram.create ()
          in
          let us v = v /. 1e3 in
          Table.add_row t
            [
              phase;
              Table.cell_int (Histogram.count h);
              Table.cell_float ~decimals:1 (us (Histogram.percentile h 0.5));
              Table.cell_float ~decimals:1 (us (Histogram.percentile h 0.9));
              Table.cell_float ~decimals:1 (us (Histogram.percentile h 0.99));
              Table.cell_float ~decimals:1 (us (float_of_int (Histogram.max_value h)));
              Table.cell_float ~decimals:1 (Histogram.percentile blocks 0.5);
              Table.cell_int (Histogram.max_value blocks);
            ])
    hists;
  if !any then Table.render t else "(no spans recorded)\n"
