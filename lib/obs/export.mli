(** Render a metrics registry (and trace dumps) for humans and tools. *)

val text : Metrics.t -> string
(** Aligned tables: counters/gauges, then histogram summaries. *)

val json : Metrics.t -> string
(** One JSON object: [{"counters": {...}, "gauges": {...},
    "histograms": {...}}]. Histogram entries carry count/sum/min/max/
    mean/p50/p90/p99 plus the non-empty buckets as [[lo, hi, count]]
    triples. *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition format. Names are sanitized to
    [[A-Za-z0-9_]] and prefixed [segdb_]; histograms become cumulative
    [_bucket{le="..."}] series with [_sum] and [_count]. *)

val trace_text : Trace.event list -> string
(** The span dump: one line per event, indented by nesting depth. *)

val phase_summary : Metrics.t -> string
(** Per-phase percentile table built from the [span.<phase>.ns] /
    [span.<phase>.blocks] histogram pairs in the registry. *)
