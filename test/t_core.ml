(* Core index tests: every backend must agree with the naive filter on
   every workload family and every query kind; structural invariants
   hold after builds and after insertions; boundary-exact queries are
   de-duplicated; I/O costs separate the indexes from the scan. *)

open Segdb_io
open Segdb_geom
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module S1 = Segdb_core.Solution1
module S2 = Segdb_core.Solution2
module Naive = Segdb_core.Naive
module Vs = Segdb_core.Vs_index
module Db = Segdb_core.Segdb

let qtest = QCheck_alcotest.to_alcotest

let families =
  [
    ("roads", fun rng n -> W.roads rng ~n ~span:100.0);
    ("grid", fun rng n -> W.grid_city rng ~n ~span:100 ~max_len:25);
    ("temporal", fun rng n -> W.temporal rng ~n ~keys:12 ~horizon:200);
    ("fans", fun rng n -> W.fans rng ~n ~centers:4 ~span:100);
  ]

let scenario =
  QCheck.make
    ~print:(fun (seed, n, block, fam, x, y1, w) ->
      Printf.sprintf "seed=%d n=%d B=%d fam=%s x=%g y=[%g,%g]" seed n block fam x y1 (y1 +. w))
    QCheck.Gen.(
      let* seed = 0 -- 100_000 in
      let* n = 0 -- 150 in
      let* block = oneofl [ 4; 8; 16 ] in
      let* fam = oneofl (List.map fst families) in
      let* x = float_range (-10.0) 110.0 in
      let* y1 = float_range (-10.0) 110.0 in
      let* w = float_range 0.0 60.0 in
      return (seed, n, block, fam, x, y1, w))

let gen_family fam rng n = (List.assoc fam families) rng n

let oracle segs q =
  Array.to_list segs |> List.filter (Vquery.matches q)
  |> List.map (fun (s : Segment.t) -> s.Segment.id)
  |> List.sort compare

(* Queries that exercise boundary-equality paths: abscissas snapped to
   actual endpoint values. *)
let interesting_xs segs x =
  if Array.length segs = 0 then [ x ]
  else
    [ x; segs.(Array.length segs / 2).Segment.x1; segs.(Array.length segs / 3).Segment.x2 ]

let check_backend (module M : Vs.S) cfg segs queries =
  let t = M.build cfg segs in
  List.for_all (fun q -> Vs.query_ids (module M) t q = oracle segs q) queries

let queries_of segs (x, y1, w) =
  List.concat_map
    (fun x ->
      [
        Vquery.segment ~x ~ylo:y1 ~yhi:(y1 +. w);
        Vquery.line ~x;
        Vquery.ray_up ~x ~ylo:y1;
        Vquery.ray_down ~x ~yhi:(y1 +. w);
      ])
    (interesting_xs segs x)

let prop_all_backends_oracle =
  QCheck.Test.make ~name:"all backends equal naive filter" ~count:250 scenario
    (fun (seed, n, block, fam, x, y1, w) ->
      let segs = gen_family fam (Rng.create seed) n in
      let queries = queries_of segs (x, y1, w) in
      let mk () = Vs.config ~pool_blocks:64 ~block () in
      check_backend (module Naive) (mk ()) segs queries
      && check_backend (module S1) (mk ()) segs queries
      && check_backend (module S2) (mk ()) segs queries
      && check_backend (module S2) (Vs.config ~pool_blocks:64 ~block ~cascade:false ()) segs queries
      && check_backend (module Segdb_core.Rtree_index) (mk ()) segs queries)

let prop_invariants =
  QCheck.Test.make ~name:"solution invariants after build" ~count:150 scenario
    (fun (seed, n, block, fam, _, _, _) ->
      let segs = gen_family fam (Rng.create seed) n in
      let cfg1 = Vs.config ~block () and cfg2 = Vs.config ~block () in
      let t1 = S1.build cfg1 segs and t2 = S2.build cfg2 segs in
      S1.check_invariants t1 && S2.check_invariants t2
      && S1.size t1 = Array.length segs
      && S2.size t2 = Array.length segs)

let prop_insert_oracle =
  QCheck.Test.make ~name:"solutions support insertion" ~count:120 scenario
    (fun (seed, n, block, fam, x, y1, w) ->
      QCheck.assume (n > 0);
      let segs = gen_family fam (Rng.create seed) n in
      let k = Array.length segs / 2 in
      let head = Array.sub segs 0 k in
      let queries = queries_of segs (x, y1, w) in
      let run (module M : Vs.S) =
        let cfg = Vs.config ~block () in
        let t = M.build cfg head in
        for i = k to Array.length segs - 1 do
          M.insert t segs.(i)
        done;
        M.size t = Array.length segs
        && List.for_all (fun q -> Vs.query_ids (module M) t q = oracle segs q) queries
      in
      let invariants_after_insert () =
        let t1 = S1.build (Vs.config ~block ()) head in
        let t2 = S2.build (Vs.config ~block ()) head in
        for i = k to Array.length segs - 1 do
          S1.insert t1 segs.(i);
          S2.insert t2 segs.(i)
        done;
        S1.check_invariants t1 && S2.check_invariants t2
      in
      run (module S1) && run (module S2) && run (module Naive) && invariants_after_insert ())

let test_facade () =
  let rng = Rng.create 5 in
  let segs = W.roads rng ~n:200 ~span:100.0 in
  let q = Vquery.segment ~x:40.0 ~ylo:10.0 ~yhi:60.0 in
  let expected = oracle segs q in
  List.iter
    (fun (name, backend) ->
      let db = Db.create ~backend ~block:16 segs in
      Alcotest.(check (list int)) (name ^ " answers") expected (Db.query_ids db q);
      Alcotest.(check int) (name ^ " size") 200 (Db.size db);
      Alcotest.(check bool) (name ^ " blocks > 0") true (Db.block_count db > 0))
    Db.all_backends

let test_facade_of_segments () =
  let db =
    Db.of_segments ~backend:`Solution1
      [ [ (0.0, 0.0); (1.0, 1.0); (2.0, 0.5) ]; [ (0.0, 5.0); (2.0, 5.0) ] ]
  in
  Alcotest.(check int) "three segments" 3 (Db.size db);
  Alcotest.(check int) "stab all" 3 (Db.count db (Vquery.line ~x:1.0))

let test_duplicate_ids_rejected () =
  let segs = [| Segment.make ~id:1 (0.0, 0.0) (1.0, 1.0); Segment.make ~id:1 (2.0, 0.0) (3.0, 1.0) |] in
  List.iter
    (fun backend ->
      match Db.create ~backend segs with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "duplicate ids must be rejected")
    [ `Solution1; `Solution2 ]

let test_empty_db () =
  List.iter
    (fun (_, backend) ->
      let db = Db.create ~backend [||] in
      Alcotest.(check int) "size" 0 (Db.size db);
      Alcotest.(check int) "query" 0 (Db.count db (Vquery.line ~x:0.0)))
    Db.all_backends

let test_io_separation () =
  (* At n = 30k the solutions must answer thin queries in far fewer
     I/Os than the naive scan. *)
  let rng = Rng.create 11 in
  let segs = W.roads rng ~n:30_000 ~span:1000.0 in
  let qrng = Rng.create 12 in
  let queries = W.segment_queries qrng ~n:30 ~span:1000.0 ~selectivity:0.01 in
  let cost backend =
    let db = Db.create ~backend ~block:64 ~pool_blocks:16 segs in
    let io = Db.io db in
    Io_stats.reset io;
    Array.iter (fun q -> ignore (Db.count db q)) queries;
    Io_stats.reads io
  in
  let naive = cost `Naive and s1 = cost `Solution1 and s2 = cost `Solution2 in
  Alcotest.(check bool)
    (Printf.sprintf "s1 %d << naive %d" s1 naive)
    true
    (s1 * 4 < naive);
  Alcotest.(check bool)
    (Printf.sprintf "s2 %d << naive %d" s2 naive)
    true
    (s2 * 4 < naive)

let test_cascade_counters () =
  (* cascading only matters with long fragments: use wide co-sorted
     lines that span many slabs *)
  let rng = Rng.create 21 in
  let n = 20_000 in
  let bases = Array.init n (fun _ -> Rng.float rng 1000.0) in
  let slopes = Array.init n (fun _ -> Rng.float rng 0.4 -. 0.2) in
  Array.sort compare bases;
  Array.sort compare slopes;
  let segs =
    Array.init n (fun i ->
        let x1 = Rng.float rng 300.0 in
        let x2 = x1 +. 300.0 +. Rng.float rng 400.0 in
        let y x = bases.(i) +. (slopes.(i) *. x) in
        Segment.make ~id:i (x1, y x1) (x2, y x2))
  in
  let cfg = Vs.config ~block:64 ~pool_blocks:16 () in
  let t = S2.build cfg segs in
  let qrng = Rng.create 22 in
  Array.iter
    (fun q -> ignore (Vs.query_ids (module S2) t q))
    (W.segment_queries qrng ~n:20 ~span:1000.0 ~selectivity:0.2);
  let guided, fallback = S2.cascade_counters t in
  Alcotest.(check bool)
    (Printf.sprintf "cascading active: guided=%d fallback=%d" guided fallback)
    true
    (guided > 0)

let suite =
  ( "core",
    [
      Alcotest.test_case "facade backends agree" `Quick test_facade;
      Alcotest.test_case "facade of_segments" `Quick test_facade_of_segments;
      Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_ids_rejected;
      Alcotest.test_case "empty db" `Quick test_empty_db;
      Alcotest.test_case "io separation from naive" `Quick test_io_separation;
      Alcotest.test_case "cascade counters" `Quick test_cascade_counters;
      qtest prop_all_backends_oracle;
      qtest prop_invariants;
      qtest prop_insert_oracle;
    ] )

let prop_delete_oracle =
  QCheck.Test.make ~name:"all backends support deletion" ~count:100 scenario
    (fun (seed, n, block, fam, x, y1, w) ->
      QCheck.assume (n > 0);
      let segs = gen_family fam (Rng.create seed) n in
      QCheck.assume (Array.length segs > 0);
      (* delete every third segment *)
      let doomed, kept =
        Array.to_list segs |> List.partition (fun (s : Segment.t) -> s.Segment.id mod 3 = 0)
      in
      let kept = Array.of_list kept in
      let queries = queries_of segs (x, y1, w) in
      let expect q =
        Array.to_list kept |> List.filter (Vquery.matches q)
        |> List.map (fun (s : Segment.t) -> s.Segment.id)
        |> List.sort compare
      in
      let run (module M : Vs.S) =
        let cfg = Vs.config ~block () in
        let t = M.build cfg segs in
        List.for_all (fun s -> M.delete t s) doomed
        && List.for_all (fun s -> not (M.delete t s)) doomed (* gone *)
        && M.size t = Array.length kept
        && List.for_all (fun q -> Vs.query_ids (module M) t q = expect q) queries
      in
      run (module Naive) && run (module S1) && run (module S2)
      && run (module Segdb_core.Rtree_index))

let prop_mixed_ops =
  QCheck.Test.make ~name:"interleaved insert/delete keep answers exact" ~count:80 scenario
    (fun (seed, n, block, fam, x, y1, w) ->
      QCheck.assume (n > 2);
      let segs = gen_family fam (Rng.create seed) n in
      QCheck.assume (Array.length segs > 2);
      let k = Array.length segs / 2 in
      let run (module M : Vs.S) =
        let cfg = Vs.config ~block () in
        let t = M.build cfg (Array.sub segs 0 k) in
        (* interleave: insert one new, delete one old *)
        let live = Hashtbl.create 16 in
        Array.iteri (fun i s -> if i < k then Hashtbl.replace live i s) segs;
        for i = k to Array.length segs - 1 do
          M.insert t segs.(i);
          Hashtbl.replace live i segs.(i);
          let victim = i - k in
          if victim < k && victim mod 2 = 0 then begin
            if not (M.delete t segs.(victim)) then failwith "delete failed";
            Hashtbl.remove live victim
          end
        done;
        let queries = queries_of segs (x, y1, w) in
        List.for_all
          (fun q ->
            let expect =
              Hashtbl.fold
                (fun _ (s : Segment.t) acc ->
                  if Vquery.matches q s then s.Segment.id :: acc else acc)
                live []
              |> List.sort compare
            in
            Vs.query_ids (module M) t q = expect)
          queries
      in
      run (module S1) && run (module S2) && run (module Segdb_core.Rtree_index))

let prop_delete_invariants =
  QCheck.Test.make ~name:"invariants survive deletion" ~count:80 scenario
    (fun (seed, n, block, fam, _, _, _) ->
      QCheck.assume (n > 0);
      let segs = gen_family fam (Rng.create seed) n in
      QCheck.assume (Array.length segs > 0);
      let doomed =
        Array.to_list segs |> List.filter (fun (s : Segment.t) -> s.Segment.id mod 3 = 0)
      in
      let t1 = S1.build (Vs.config ~block ()) segs in
      let t2 = S2.build (Vs.config ~block ()) segs in
      List.iter (fun s -> ignore (S1.delete t1 s)) doomed;
      List.iter (fun s -> ignore (S2.delete t2 s)) doomed;
      S1.check_invariants t1 && S2.check_invariants t2)

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_delete_oracle; qtest prop_mixed_ops; qtest prop_delete_invariants ])

let prop_sloped_facade =
  QCheck.Test.make ~name:"Sloped facade equals direct geometric filter" ~count:150
    (QCheck.make
       ~print:(fun (seed, n, slope, x0, y0, len) ->
         Printf.sprintf "seed=%d n=%d m=%g from=(%g,%g) len=%g" seed n slope x0 y0 len)
       QCheck.Gen.(
         let* seed = 0 -- 100_000 in
         let* n = 1 -- 120 in
         let* slope = float_range (-2.0) 2.0 in
         let* x0 = float_range 0.0 80.0 in
         let* y0 = float_range 0.0 80.0 in
         let* len = float_range 1.0 40.0 in
         return (seed, n, slope, x0, y0, len)))
    (fun (seed, n, slope, x0, y0, len) ->
      (* keep segment directions away from the query slope so float
         orientation noise cannot flip a verdict *)
      let rng = Rng.create seed in
      let bases = Array.init n (fun _ -> Rng.float rng 100.0) in
      let drifts = Array.init n (fun _ -> Rng.float rng 0.5) in
      Array.sort compare bases;
      Array.sort compare drifts;
      let segs =
        (* lines y = base_i + dir_i * x with co-sorted (base, dir) never
           cross at x >= 0; clip each to an x-range *)
        Array.init n (fun i ->
            let x1 = Rng.float rng 50.0 in
            let x2 = x1 +. 10.0 +. Rng.float rng 50.0 in
            let dir = slope +. 2.5 +. drifts.(i) in
            let y x = bases.(i) +. (dir *. x) in
            Segment.make ~id:i (x1, y x1) (x2, y x2))
      in
      let sdb = Db.Sloped.create ~backend:`Solution2 ~slope segs in
      let p1 = (x0, y0) and p2 = (x0 +. len, y0 +. (slope *. len)) in
      let got =
        Db.Sloped.query sdb ~p1 ~p2
        |> List.map (fun (s : Segment.t) -> s.Segment.id)
        |> List.sort compare
      in
      let orient (ax, ay) (bx, by) (cx, cy) =
        let d = ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax)) in
        if d > 1e-7 then 1 else if d < -1e-7 then -1 else 0
      in
      let expected =
        Array.to_list segs
        |> List.filter (fun (s : Segment.t) ->
               let a = (s.Segment.x1, s.Segment.y1) and b = (s.Segment.x2, s.Segment.y2) in
               let d1 = orient a b p1 and d2 = orient a b p2 in
               let d3 = orient p1 p2 a and d4 = orient p1 p2 b in
               d1 * d2 < 0 && d3 * d4 < 0)
        |> List.map (fun (s : Segment.t) -> s.Segment.id)
        |> List.sort compare
      in
      (* allow boundary-touch divergence: every disagreement must be a
         near-tangency. The rotation adds relative float noise, so the
         excusable band is judged with a coarser tolerance than the
         oracle itself. *)
      let coarse (ax, ay) (bx, by) (cx, cy) =
        let u = (bx -. ax) *. (cy -. ay) and v = (by -. ay) *. (cx -. ax) in
        let d = u -. v in
        let eps = 1e-6 *. (Float.abs u +. Float.abs v +. 1.0) in
        if d > eps then 1 else if d < -.eps then -1 else 0
      in
      let sym_diff =
        List.filter (fun i -> not (List.mem i expected)) got
        @ List.filter (fun i -> not (List.mem i got)) expected
      in
      List.for_all
        (fun i ->
          let s = segs.(i) in
          let a = (s.Segment.x1, s.Segment.y1) and b = (s.Segment.x2, s.Segment.y2) in
          let d1 = coarse a b p1 and d2 = coarse a b p2 in
          let d3 = coarse p1 p2 a and d4 = coarse p1 p2 b in
          d1 = 0 || d2 = 0 || d3 = 0 || d4 = 0)
        sym_diff)

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_sloped_facade ])

(* ---------------- persistence: snapshot + WAL ---------------- *)

let all_backend_tags = List.map snd Db.all_backends

let pers_workload seed n =
  let rng = Rng.create seed in
  W.roads rng ~n ~span:100.0

let pers_queries segs =
  let xs =
    if Array.length segs = 0 then [ 50.0 ]
    else
      [
        segs.(0).Segment.x1;
        segs.(Array.length segs / 2).Segment.x2;
        25.0;
        50.0;
        75.0;
      ]
  in
  List.concat_map
    (fun x ->
      [ Vquery.line ~x; Vquery.segment ~x ~ylo:10.0 ~yhi:60.0; Vquery.ray_up ~x ~ylo:40.0 ])
    xs

let answers db queries = List.map (fun q -> List.sort compare (Db.query_ids db q)) queries

let with_tmp ext f =
  let path = Filename.temp_file "segdb_pers" ext in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Acceptance: save then open answers identical workloads, per backend,
   on BOTH open paths — the marshaled-image restore and the rebuild. *)
let test_snapshot_roundtrip () =
  let segs = pers_workload 42 200 in
  let queries = pers_queries segs in
  List.iter
    (fun backend ->
      with_tmp ".snap" (fun path ->
          let db = Db.create ~backend ~block:16 segs in
          let expect = answers db queries in
          Db.save db path;
          let restored, mode = Db.open_db_mode path in
          Alcotest.(check bool)
            (Db.backend_name db ^ ": image restored")
            true (mode = Db.Restored_image);
          Alcotest.(check bool)
            (Db.backend_name db ^ ": same backend")
            true
            (Db.backend restored = backend);
          Alcotest.(check int)
            (Db.backend_name db ^ ": size")
            (Db.size db) (Db.size restored);
          if answers restored queries <> expect then
            Alcotest.failf "%s: restored image answers differ" (Db.backend_name db);
          let rebuilt, mode = Db.open_db_mode ~use_image:false path in
          Alcotest.(check bool)
            (Db.backend_name db ^ ": rebuild forced")
            true (mode = Db.Rebuilt);
          if answers rebuilt queries <> expect then
            Alcotest.failf "%s: rebuilt answers differ" (Db.backend_name db)))
    all_backend_tags

let test_snapshot_no_image () =
  let segs = pers_workload 7 120 in
  with_tmp ".snap" (fun path ->
      let db = Db.create ~backend:`Solution2 segs in
      Db.save ~image:false db path;
      let restored, mode = Db.open_db_mode path in
      Alcotest.(check bool) "no image -> rebuilt" true (mode = Db.Rebuilt);
      let queries = pers_queries segs in
      Alcotest.(check bool) "answers equal" true (answers restored queries = answers db queries))

let test_snapshot_corrupt () =
  with_tmp ".snap" (fun path ->
      let db = Db.create ~backend:`Naive (pers_workload 3 30) in
      Db.save db path;
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* flip a byte in the middle: some CRC must catch it *)
      let b = Bytes.of_string data in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Db.open_db path with
      | exception Segdb_core.Snapshot.Corrupt_snapshot _ -> ()
      | _ -> Alcotest.fail "bit flip must be detected")

(* Crash recovery: acknowledged inserts/deletes survive a process that
   never saved. The "crash" drops the db without checkpointing; reopen
   replays the WAL into a fresh index. *)
let test_wal_recovery () =
  let base = pers_workload 11 100 in
  let extra = pers_workload 12 160 in
  with_tmp ".wal" (fun wal_path ->
      Sys.remove wal_path;
      List.iter
        (fun backend ->
          if Sys.file_exists wal_path then Sys.remove wal_path;
          let db = Db.create ~backend ~block:16 base in
          let replayed = Db.attach_wal ~sync:false db wal_path in
          Alcotest.(check int) "fresh wal" 0 replayed;
          (* new ids, disjoint from base *)
          Array.iteri
            (fun i (s : Segment.t) ->
              if i >= 100 then
                Db.insert db
                  (Segment.make ~id:(1000 + s.Segment.id)
                     (s.Segment.x1, s.Segment.y1)
                     (s.Segment.x2, s.Segment.y2)))
            extra;
          let doomed = base.(0) in
          ignore (Db.delete db doomed);
          let queries = pers_queries base in
          let expect = answers db queries in
          let n = Db.size db in
          Db.detach_wal db;
          (* crash: db dropped, only base segments + the log survive *)
          let db2 = Db.create ~backend ~block:16 base in
          let replayed = Db.attach_wal ~sync:false db2 wal_path in
          Alcotest.(check int)
            (Db.backend_name db ^ ": all ops replayed")
            61 replayed;
          Alcotest.(check int) (Db.backend_name db ^ ": size recovered") n (Db.size db2);
          if answers db2 queries <> expect then
            Alcotest.failf "%s: recovered answers differ" (Db.backend_name db);
          Db.detach_wal db2)
        all_backend_tags)

(* The acceptance criterion, end to end: truncate the WAL file at every
   byte offset; reopening recovers exactly the acknowledged prefix. *)
let test_wal_truncation_sweep () =
  let base = pers_workload 21 40 in
  with_tmp ".wal" (fun wal_path ->
      Sys.remove wal_path;
      let db = Db.create ~backend:`Solution2 ~block:16 base in
      ignore (Db.attach_wal ~sync:false db wal_path);
      let ops = 12 in
      for i = 0 to ops - 1 do
        Db.insert db (Segment.make ~id:(2000 + i) (float_of_int i, 200.0) (float_of_int i +. 5.0, 201.0))
      done;
      Db.detach_wal db;
      let data =
        let ic = open_in_bin wal_path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let frame = String.length data / ops in
      Alcotest.(check int) "op frames are fixed-size" 49 frame;
      with_tmp ".wal" (fun torn ->
          for len = 0 to String.length data do
            let oc = open_out_bin torn in
            output_string oc (String.sub data 0 len);
            close_out oc;
            let db2 = Db.create ~backend:`Solution2 ~block:16 base in
            let replayed = Db.attach_wal ~sync:false db2 torn in
            let expect = len / frame in
            if replayed <> expect then
              Alcotest.failf "truncation at %d: replayed %d, expected %d" len replayed expect;
            if Db.size db2 <> Array.length base + expect then
              Alcotest.failf "truncation at %d: size %d, expected %d" len (Db.size db2)
                (Array.length base + expect);
            Db.detach_wal db2
          done))

let test_checkpoint () =
  let base = pers_workload 31 80 in
  with_tmp ".snap" (fun snap_path ->
      with_tmp ".wal" (fun wal_path ->
          Sys.remove wal_path;
          let db = Db.create ~backend:`Solution1 base in
          ignore (Db.attach_wal ~sync:false db wal_path);
          for i = 0 to 9 do
            Db.insert db (Segment.make ~id:(3000 + i) (float_of_int i, 150.0) (float_of_int i +. 3.0, 151.0))
          done;
          Db.checkpoint db snap_path;
          Alcotest.(check int)
            "wal empty after checkpoint" 0
            (Unix.stat wal_path).Unix.st_size;
          (* ops after the checkpoint land in the (now empty) log *)
          Db.insert db (Segment.make ~id:4000 (0.0, 160.0) (5.0, 161.0));
          let queries = pers_queries base in
          let expect = answers db queries in
          let n = Db.size db in
          Db.detach_wal db;
          (* recover: snapshot + post-checkpoint log *)
          let db2 = Db.open_db snap_path in
          let replayed = Db.attach_wal ~sync:false db2 wal_path in
          Alcotest.(check int) "one post-checkpoint record" 1 replayed;
          Alcotest.(check int) "size recovered" n (Db.size db2);
          Alcotest.(check bool) "answers equal" true (answers db2 queries = expect);
          Db.detach_wal db2))

(* Replay is idempotent: attaching the same log twice (snapshot already
   contains the ops) must not duplicate or abort. *)
let test_wal_replay_idempotent () =
  let base = pers_workload 41 50 in
  with_tmp ".snap" (fun snap_path ->
      with_tmp ".wal" (fun wal_path ->
          Sys.remove wal_path;
          let db = Db.create ~backend:`Solution2 base in
          ignore (Db.attach_wal ~sync:false db wal_path);
          for i = 0 to 4 do
            Db.insert db (Segment.make ~id:(5000 + i) (float_of_int i, 170.0) (float_of_int i +. 2.0, 171.0))
          done;
          (* save WITHOUT resetting the log: the snapshot already holds
             the logged inserts *)
          Db.save db snap_path;
          let n = Db.size db in
          Db.detach_wal db;
          let db2 = Db.open_db snap_path in
          let replayed = Db.attach_wal ~sync:false db2 wal_path in
          Alcotest.(check int) "records replayed" 5 replayed;
          Alcotest.(check int) "no duplicates" n (Db.size db2);
          Db.detach_wal db2))

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "snapshot roundtrip, all backends" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "snapshot without image rebuilds" `Quick test_snapshot_no_image;
        Alcotest.test_case "snapshot rejects bit flips" `Quick test_snapshot_corrupt;
        Alcotest.test_case "wal crash recovery, all backends" `Quick test_wal_recovery;
        Alcotest.test_case "wal truncation sweep (segdb)" `Quick test_wal_truncation_sweep;
        Alcotest.test_case "checkpoint truncates the log" `Quick test_checkpoint;
        Alcotest.test_case "wal replay idempotent over snapshot" `Quick test_wal_replay_idempotent;
      ] )

(* Fresh-process round-trip: a snapshot written here is reopened by
   segdb_cli (a different executable, so the rebuild path) which must
   print identical ids and query answers. This is the acceptance
   criterion's "fresh process". *)

let cli_exe =
  (* the (deps %{exe:...}) stanza puts the binary next to the test cwd *)
  List.find_opt Sys.file_exists
    [
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/segdb_cli.exe";
      "../bin/segdb_cli.exe";
    ]

let run_lines cmd =
  let ic = Unix.open_process_in cmd in
  let rec go acc = match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> lines
  | _ -> Alcotest.failf "command failed: %s" cmd

let test_fresh_process_roundtrip () =
  match cli_exe with
  | None -> Alcotest.skip ()
  | Some exe ->
      let segs = pers_workload 55 150 in
      List.iter
        (fun backend ->
          with_tmp ".snap" (fun snap ->
              let db = Db.create ~backend ~block:16 segs in
              Db.save db snap;
              let expect_ids =
                Array.to_list (Db.segments db)
                |> List.map (fun (s : Segment.t) -> string_of_int s.Segment.id)
              in
              let got_ids =
                run_lines (Filename.quote_command exe [ "open"; snap; "--ids" ])
                |> List.filter (fun l -> not (String.length l > 0 && l.[0] = 'o'))
              in
              Alcotest.(check (list string))
                (Db.backend_name db ^ ": ids across processes")
                expect_ids got_ids;
              let x = segs.(75).Segment.x1 in
              let expect_q =
                Db.query_ids db (Vquery.segment ~x ~ylo:10.0 ~yhi:80.0)
                |> List.sort compare
                |> List.map string_of_int
              in
              let got_q =
                run_lines
                  (Filename.quote_command exe
                     [ "open"; snap; "-x"; Printf.sprintf "%.17g" x; "--ylo"; "10"; "--yhi"; "80" ])
                |> List.filter (fun l ->
                       String.length l > 0 && (l.[0] >= '0' && l.[0] <= '9'))
              in
              Alcotest.(check (list string))
                (Db.backend_name db ^ ": query answers across processes")
                expect_q got_q))
        [ `Naive; `Solution2 ]

(* ---------------- robustness: degraded reads, scrub, repair ---------------- *)

module Snapshot = Segdb_core.Snapshot

let with_disarm f = Fun.protect ~finally:Segdb_io.Failpoint.disarm f

(* [scan_wal] is the non-mutating read the repair path depends on: it
   must see exactly the operations that went through the logged db. *)
let test_scan_wal () =
  with_tmp ".wal" (fun wal ->
      Sys.remove wal;
      let segs = pers_workload 31 40 in
      let db = Db.create ~backend:`Naive ~block:16 (Array.sub segs 0 30) in
      ignore (Db.attach_wal ~sync:false db wal);
      Db.insert db segs.(30);
      Db.insert db segs.(31);
      ignore (Db.delete db segs.(5));
      Db.detach_wal db;
      let ops, skipped = Db.scan_wal wal in
      Alcotest.(check int) "no skipped records" 0 skipped;
      let describe = function
        | Db.Op_insert s -> Printf.sprintf "+%d" s.Segment.id
        | Db.Op_delete s -> Printf.sprintf "-%d" s.Segment.id
      in
      Alcotest.(check (list string))
        "exact op sequence"
        [
          Printf.sprintf "+%d" segs.(30).Segment.id;
          Printf.sprintf "+%d" segs.(31).Segment.id;
          Printf.sprintf "-%d" segs.(5).Segment.id;
        ]
        (List.map describe ops);
      (* the scan did not consume the log *)
      let ops2, _ = Db.scan_wal wal in
      Alcotest.(check int) "scan is repeatable" (List.length ops) (List.length ops2))

(* [query_safe] under an injected query fault: the caller gets what was
   collected, a [complete = false] flag, and the fault string — and the
   same call heals as soon as the fault clears. *)
let test_query_safe_degraded () =
  let segs = pers_workload 77 80 in
  let db = Db.create ~backend:`Solution2 ~block:16 segs in
  let q = Vquery.segment ~x:50.0 ~ylo:0.0 ~yhi:100.0 in
  let healthy = Db.query_safe db q in
  Alcotest.(check bool) "complete when healthy" true healthy.Db.Degraded.complete;
  Alcotest.(check (list int))
    "value matches the raw query"
    (List.sort compare (Db.query_ids db q))
    (List.sort compare
       (List.map (fun (s : Segment.t) -> s.Segment.id) healthy.Db.Degraded.value));
  with_disarm (fun () ->
      Segdb_io.Failpoint.arm
        [ ("segdb.query", Segdb_io.Failpoint.plan Segdb_io.Failpoint.Eio) ];
      let d = Db.query_safe db q in
      Alcotest.(check bool) "incomplete under fault" false d.Db.Degraded.complete;
      Alcotest.(check bool) "fault recorded" true (d.Db.Degraded.faults <> []));
  let again = Db.query_safe db q in
  Alcotest.(check bool) "healed after disarm" true again.Db.Degraded.complete

(* And the raw query path refuses loudly rather than degrading: the
   typed channel is opt-in. *)
let test_raw_query_raises () =
  let segs = pers_workload 78 30 in
  let db = Db.create ~backend:`Naive segs in
  with_disarm (fun () ->
      Segdb_io.Failpoint.arm
        [ ("segdb.query", Segdb_io.Failpoint.plan Segdb_io.Failpoint.Eio) ];
      match Db.query_ids db (Vquery.line ~x:50.0) with
      | _ -> Alcotest.fail "raw query must raise under fault"
      | exception Unix.Unix_error (Unix.EIO, _, _) -> ())

(* The scrub-side invariant battery on healthy databases: every backend,
   including the random-query cross-check against a fresh naive build. *)
let test_validate_clean () =
  let segs = pers_workload 41 120 in
  List.iter
    (fun backend ->
      let db = Db.create ~backend ~block:16 segs in
      Alcotest.(check (list string))
        (Db.backend_name db ^ " validates clean")
        []
        (Db.validate ~queries:12 ~seed:9 db))
    all_backend_tags

let test_snapshot_salvage () =
  let segs = pers_workload 91 60 in
  with_tmp ".snap" (fun snap ->
      let db = Db.create ~backend:`Solution1 ~block:16 segs in
      Db.save db snap;
      (match Snapshot.salvage ~path:snap with
      | [], Some c ->
          Alcotest.(check int) "all segments salvaged" 60 (Array.length c.Snapshot.segments);
          Alcotest.(check string) "backend survives" "solution1" c.Snapshot.header.Snapshot.backend
      | fs, _ -> Alcotest.failf "clean snapshot has findings: %s" (String.concat "; " fs));
      (* flip one byte in the middle: salvage must degrade, never lie *)
      let ic = open_in_bin snap in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string data in
      let pos = Bytes.length b / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
      let oc = open_out_bin snap in
      output_bytes oc b;
      close_out oc;
      let findings, contents = Snapshot.salvage ~path:snap in
      Alcotest.(check bool)
        "damage is visible (finding or destroyed section)" true
        (findings <> [] || contents = None);
      (* a section either salvages intact or is dropped — never altered *)
      match contents with
      | None -> ()
      | Some c ->
          Alcotest.(check bool)
            "surviving segments are bit-identical" true
            (c.Snapshot.segments = Array.of_list (Array.to_list segs)
            || findings <> []))

(* The repair pipeline's building blocks, end to end in-process:
   salvage the snapshot, rebuild, replay the scanned WAL, validate. *)
let test_repair_roundtrip () =
  let segs = pers_workload 17 80 in
  with_tmp ".snap" (fun snap ->
      with_tmp ".wal" (fun wal ->
          Sys.remove wal;
          let db = Db.create ~backend:`Solution2 ~block:16 (Array.sub segs 0 70) in
          Db.save db snap;
          ignore (Db.attach_wal ~sync:false db wal);
          for i = 70 to 79 do
            Db.insert db segs.(i)
          done;
          ignore (Db.delete db segs.(3));
          let expect = answers db (pers_queries segs) in
          Db.detach_wal db;
          (* the "repair": salvage + rebuild + replay, touching neither input *)
          let findings, contents = Snapshot.salvage ~path:snap in
          Alcotest.(check (list string)) "salvage clean" [] findings;
          let c = match contents with Some c -> c | None -> Alcotest.fail "no contents" in
          let db2 =
            Db.create ~backend:`Solution2 ~block:c.Snapshot.header.Snapshot.block
              c.Snapshot.segments
          in
          let ops, skipped = Db.scan_wal wal in
          Alcotest.(check int) "log fully decodable" 0 skipped;
          Db.apply_wal_ops db2 ops;
          Alcotest.(check (list string)) "repaired db validates" []
            (Db.validate ~queries:8 db2);
          List.iteri
            (fun i (got, want) ->
              if got <> want then Alcotest.failf "query %d diverged after repair" i)
            (List.combine (answers db2 (pers_queries segs)) expect)))

(* Same pipeline through the real executable: scrub a damaged snapshot
   (non-zero exit, findings on stdout), repair it, scrub the repaired
   copy clean. *)
let test_cli_scrub_repair () =
  match cli_exe with
  | None -> Alcotest.skip ()
  | Some exe ->
      let segs = pers_workload 23 50 in
      with_tmp ".snap" (fun snap ->
          with_tmp ".snap2" (fun out ->
              let db = Db.create ~backend:`Solution2 ~block:16 segs in
              Db.save db snap;
              (* clean scrub exits 0 *)
              let rc = Sys.command (Filename.quote_command exe [ "scrub"; snap ] ^ " > /dev/null") in
              Alcotest.(check int) "clean scrub exit code" 0 rc;
              (* damage the image section's CRC region: past the header *)
              let fd = Unix.openfile snap [ Unix.O_RDWR ] 0 in
              let size = (Unix.fstat fd).Unix.st_size in
              ignore (Unix.lseek fd (size - 8) Unix.SEEK_SET);
              ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
              Unix.close fd;
              let rc = Sys.command (Filename.quote_command exe [ "scrub"; snap ] ^ " > /dev/null") in
              Alcotest.(check bool) "damaged scrub exits non-zero" true (rc <> 0);
              let rc =
                Sys.command
                  (Filename.quote_command exe [ "repair"; snap; "-o"; out ] ^ " > /dev/null")
              in
              Alcotest.(check int) "repair succeeds" 0 rc;
              let rc = Sys.command (Filename.quote_command exe [ "scrub"; out ] ^ " > /dev/null") in
              Alcotest.(check int) "repaired snapshot scrubs clean" 0 rc;
              let db2 = Db.open_db out in
              Alcotest.(check int) "repaired contents" (Array.length segs) (Db.size db2)))

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "fresh-process snapshot roundtrip" `Quick test_fresh_process_roundtrip;
        Alcotest.test_case "scan_wal sees the op sequence" `Quick test_scan_wal;
        Alcotest.test_case "query_safe degrades and heals" `Quick test_query_safe_degraded;
        Alcotest.test_case "raw query raises under fault" `Quick test_raw_query_raises;
        Alcotest.test_case "validate clean on every backend" `Quick test_validate_clean;
        Alcotest.test_case "snapshot salvage" `Quick test_snapshot_salvage;
        Alcotest.test_case "repair pipeline roundtrip" `Quick test_repair_roundtrip;
        Alcotest.test_case "cli scrub + repair" `Quick test_cli_scrub_repair;
      ] )
