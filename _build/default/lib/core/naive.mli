(** Baseline: segments packed [B] per block, every query scans all
    blocks — the [O(n + t)]-per-query floor every index must beat. *)

include Vs_index.S
