(** Structured logging: leveled key/value events with nanosecond
    timestamps and domain tags.

    Logging is {e off by default} and the disabled path costs one
    [Atomic.get]: field lists are passed as thunks, so nothing is
    built below the threshold. Call sites hot enough to care about the
    thunk's own closure allocation should guard on {!would_log}.

    This is for rare, narratable events — a connection accepted, a
    server draining, a request refused, a WAL tail truncated. Per-
    operation measurements belong in {!Metrics}, per-phase intervals
    in {!Trace}. *)

type level = Debug | Info | Warn | Error

val set_level : level option -> unit
(** [set_level (Some l)] enables events at [l] and above; [None]
    (the default) disables logging entirely. *)

val level : unit -> level option

val would_log : level -> bool
(** One [Atomic.get]: would an event at this level be emitted? *)

val level_name : level -> string
val level_of_string : string -> level option

(** {1 Fields} *)

type value = S of string | I of int | F of float | B of bool

type field = string * value

val s : string -> string -> field
val i : string -> int -> field
val f : string -> float -> field
val b : string -> bool -> field

(** {1 Events} *)

type event = {
  ts_ns : int;  (** wall clock, ns since epoch *)
  lvl : level;
  dom : int;  (** id of the emitting domain *)
  comp : string;  (** component tag: "server", "exec", "wal", ... *)
  msg : string;
  fields : field list;
}

val log : level -> comp:string -> string -> (unit -> field list) -> unit
(** [log l ~comp msg fields] emits an event when [l] clears the
    threshold; [fields] is only forced then. *)

val debug : comp:string -> string -> (unit -> field list) -> unit
val info : comp:string -> string -> (unit -> field list) -> unit
val warn : comp:string -> string -> (unit -> field list) -> unit
val error : comp:string -> string -> (unit -> field list) -> unit

val render : event -> string
(** One logfmt line: [ts=… level=… dom=… comp=… msg="…" k=v …] —
    string values are quoted/escaped when they contain spaces, quotes,
    [=] or control bytes. *)

(** {1 Sinks}

    Emission fans out to every configured sink under one lock. *)

val set_stderr : bool -> unit
(** Emit rendered lines to stderr (default [true]). *)

val set_file : string option -> unit
(** Append rendered lines to a file ([None], the default, closes any
    open one). *)

val set_ring : int -> unit
(** Keep the last [n] events in memory ([0], the default, disables
    the ring). *)

val ring_events : unit -> event list
(** The ring's retained events, oldest first. *)

val configure_from_env : unit -> unit
(** Read [SEGDB_LOG] (a level name, or [off]), [SEGDB_LOG_FILE]
    (a path) and [SEGDB_LOG_STDERR] ([0] to silence stderr). Unset
    variables leave the current configuration untouched. *)
