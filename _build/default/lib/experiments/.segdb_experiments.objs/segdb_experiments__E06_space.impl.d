lib/experiments/e06_space.ml: Backends Harness List Rng Segdb_core Segdb_util Segdb_workload Table
