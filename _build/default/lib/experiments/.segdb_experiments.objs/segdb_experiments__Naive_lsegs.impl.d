lib/experiments/naive_lsegs.ml: Array Block_store List Lseg Segdb_geom Segdb_io
