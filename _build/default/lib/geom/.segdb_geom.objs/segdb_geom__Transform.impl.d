lib/geom/transform.ml: Float Segment Vquery
