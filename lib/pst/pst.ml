open Segdb_io
open Segdb_geom

(* A router describes one child subtree from the parent's point of view:
   everything pruning needs without touching the child's block. *)
type child = {
  addr : Block_store.addr; (* Block_store.null = absent subtree *)
  top : float; (* max far_u in the subtree *)
  kmin : Lseg.t; (* least segment of the subtree in key order *)
  kmax : Lseg.t; (* greatest *)
  csize : int; (* number of segments in the subtree *)
}

type node = {
  segs : Lseg.t array; (* deepest segments of the subtree, key-sorted *)
  splits : Lseg.t array; (* branching-1 key separators, or [||] for a leaf *)
  children : child array; (* branching routers, or [||] for a leaf *)
}

module Store = Block_store.Make (struct
  type t = node
end)

type t = {
  store : Store.t;
  pool : Block_store.Pool.t;
  io : Io_stats.t;
  cap : int;
  branching : int;
  mutable root : child;
}

let dummy_seg = Lseg.make ~base_v:0.0 ~far_u:0.0 ~far_v:0.0 ()

(* Sentinel greater than every real key (compare_key looks at base_v
   first). *)
let max_sentinel = Lseg.make ~base_v:infinity ~far_u:0.0 ~far_v:infinity ()

let no_child = { addr = Block_store.null; top = neg_infinity; kmin = dummy_seg; kmax = dummy_seg; csize = 0 }

let key_min a b = if Lseg.compare_key a b <= 0 then a else b
let key_max a b = if Lseg.compare_key a b >= 0 then a else b

let node_capacity t = t.cap
let size t = t.root.csize

(* ---------------- static construction ---------------- *)

(* Split [arr] (key-sorted) into the [cap] deepest segments (key-sorted)
   and the rest (key order preserved). *)
let select_deepest cap arr =
  let m = Array.length arr in
  if m <= cap then (arr, [||])
  else begin
    let order = Array.init m (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = compare arr.(j).Lseg.far_u arr.(i).Lseg.far_u in
        if c <> 0 then c else compare i j)
      order;
    let chosen = Array.make m false in
    for r = 0 to cap - 1 do
      chosen.(order.(r)) <- true
    done;
    let top = Array.make cap dummy_seg and rest = Array.make (m - cap) dummy_seg in
    let ti = ref 0 and ri = ref 0 in
    for i = 0 to m - 1 do
      if chosen.(i) then begin
        top.(!ti) <- arr.(i);
        incr ti
      end
      else begin
        rest.(!ri) <- arr.(i);
        incr ri
      end
    done;
    (top, rest)
  end

let subtree_stats arr =
  let top = ref neg_infinity in
  Array.iter (fun (s : Lseg.t) -> if s.far_u > !top then top := s.far_u) arr;
  !top

(* Build a subtree from a key-sorted array; returns its router. *)
let rec build_sub t (arr : Lseg.t array) : child =
  let m = Array.length arr in
  if m = 0 then no_child
  else begin
    let segs, rest = select_deepest t.cap arr in
    let node =
      if Array.length rest = 0 then { segs; splits = [||]; children = [||] }
      else begin
        let rlen = Array.length rest in
        (* cap the fan-out so children are at least block-sized: wide
           nodes over tiny subtrees would waste a block per child *)
        let f = max 2 (min t.branching ((rlen + t.cap - 1) / t.cap)) in
        let boundary i = i * rlen / f in
        let children =
          Array.init f (fun i ->
              let lo = boundary i and hi = boundary (i + 1) in
              build_sub t (Array.sub rest lo (hi - lo)))
        in
        let splits =
          Array.init (f - 1) (fun i ->
              let b = boundary (i + 1) in
              if b < rlen then rest.(b) else max_sentinel)
        in
        { segs; splits; children }
      end
    in
    let addr = Store.alloc t.store node in
    { addr; top = subtree_stats arr; kmin = arr.(0); kmax = arr.(m - 1); csize = m }
  end

let build ?(node_capacity = 64) ?(branching = 2) ~pool ~stats lsegs =
  if node_capacity < 2 then invalid_arg "Pst.build: node_capacity must be >= 2";
  if branching < 2 then invalid_arg "Pst.build: branching must be >= 2";
  let store = Store.create ~name:"pst" ~pool ~stats () in
  let t = { store; pool; io = stats; cap = node_capacity; branching; root = no_child } in
  let arr = Array.copy lsegs in
  Array.sort Lseg.compare_key arr;
  t.root <- build_sub t arr;
  t

let binary ?node_capacity ~pool ~stats lsegs = build ?node_capacity ~branching:2 ~pool ~stats lsegs

let blocked ?(node_capacity = 64) ~pool ~stats lsegs =
  build ~node_capacity ~branching:(max 4 (node_capacity / 4)) ~pool ~stats lsegs

(* ---------------- traversal ---------------- *)

let rec iter_sub t (c : child) f =
  if c.addr <> Block_store.null then begin
    let n = Store.read t.store c.addr in
    Array.iter f n.segs;
    Array.iter (fun ch -> iter_sub t ch f) n.children
  end

let iter t f = iter_sub t t.root f

let to_list t =
  let acc = ref [] in
  iter t (fun s -> acc := s :: !acc);
  !acc

let rec height_sub t (c : child) =
  if c.addr = Block_store.null then 0
  else
    let n = Store.read t.store c.addr in
    1 + Array.fold_left (fun acc ch -> max acc (height_sub t ch)) 0 n.children

let height t = height_sub t t.root

let block_count t = Store.block_count t.store

(* ---------------- query ---------------- *)

(* Witness bounds: [lo] is a scanned segment known to cross strictly
   left of the query range, [hi] one crossing strictly right. By the NCT
   order lemma no match can have key <= key(lo) or >= key(hi), so whole
   subtrees are pruned through their routers. *)

let query t (q : Lseg.query) ~f =
  Probe.span t.io "pst.report" @@ fun () ->
  let lo = ref None and hi = ref None in
  let pruned (c : child) =
    (match !lo with Some w -> Lseg.compare_key c.kmax w <= 0 | None -> false)
    || match !hi with Some w -> Lseg.compare_key c.kmin w >= 0 | None -> false
  in
  let scan (s : Lseg.t) =
    if Lseg.reaches s q.uq then begin
      let cv = Lseg.cross_v s q.uq in
      if cv < q.vlo then (
        match !lo with
        | Some w when Lseg.compare_key w s >= 0 -> ()
        | _ -> lo := Some s)
      else if cv > q.vhi then (
        match !hi with
        | Some w when Lseg.compare_key w s <= 0 -> ()
        | _ -> hi := Some s)
      else f s
    end
  in
  let rec visit (c : child) =
    if c.addr <> Block_store.null && c.top >= q.uq && not (pruned c) then begin
      let n = Store.read t.store c.addr in
      Array.iter scan n.segs;
      Array.iter visit n.children
    end
  in
  visit t.root

let query_list t q =
  let acc = ref [] in
  query t q ~f:(fun s -> acc := s :: !acc);
  !acc

let count t q =
  let n = ref 0 in
  query t q ~f:(fun _ -> incr n);
  !n

(* Find: deepest-leftmost / deepest-rightmost intersected segment
   (Lemma 1.1). A DFS ordered toward the sought boundary, with witness
   pruning plus pruning against the best answer found so far. *)
let find_gen t (q : Lseg.query) ~leftmost =
  Probe.span t.io "pst.find" @@ fun () ->
  let lo = ref None and hi = ref None and best = ref None in
  let better s =
    match !best with
    | None -> true
    | Some b -> if leftmost then Lseg.compare_key s b < 0 else Lseg.compare_key s b > 0
  in
  let pruned (c : child) =
    (match !lo with Some w -> Lseg.compare_key c.kmax w <= 0 | None -> false)
    || (match !hi with Some w -> Lseg.compare_key c.kmin w >= 0 | None -> false)
    ||
    match !best with
    | None -> false
    | Some b ->
        if leftmost then Lseg.compare_key c.kmin b >= 0 else Lseg.compare_key c.kmax b <= 0
  in
  let scan (s : Lseg.t) =
    if Lseg.reaches s q.uq then begin
      let cv = Lseg.cross_v s q.uq in
      if cv < q.vlo then (
        match !lo with
        | Some w when Lseg.compare_key w s >= 0 -> ()
        | _ -> lo := Some s)
      else if cv > q.vhi then (
        match !hi with
        | Some w when Lseg.compare_key w s <= 0 -> ()
        | _ -> hi := Some s)
      else if better s then best := Some s
    end
  in
  let rec visit (c : child) =
    if c.addr <> Block_store.null && c.top >= q.uq && not (pruned c) then begin
      let n = Store.read t.store c.addr in
      Array.iter scan n.segs;
      let k = Array.length n.children in
      if leftmost then
        for i = 0 to k - 1 do
          visit n.children.(i)
        done
      else
        for i = k - 1 downto 0 do
          visit n.children.(i)
        done
    end
  in
  visit t.root;
  !best

let find_leftmost t q = find_gen t q ~leftmost:true
let find_rightmost t q = find_gen t q ~leftmost:false

(* The Appendix A formulation: a breadth-first frontier (the paper's
   queue Q) holding the candidate nodes of one level at a time, pruned
   by the same witnesses. Lemma 1 claims the queue holds at most two
   nodes per level; [find_profile] measures the realized frontier width
   so the claim can be validated empirically (experiment E13). *)
type find_profile = {
  result : Lseg.t option;
  visited : int; (* blocks read *)
  max_width : int; (* widest frontier over all levels *)
  levels : int;
}

let find_profile t (q : Lseg.query) ~leftmost =
  let lo = ref None and hi = ref None and best = ref None in
  let better s =
    match !best with
    | None -> true
    | Some b -> if leftmost then Lseg.compare_key s b < 0 else Lseg.compare_key s b > 0
  in
  let pruned (c : child) =
    (match !lo with Some w -> Lseg.compare_key c.kmax w <= 0 | None -> false)
    || (match !hi with Some w -> Lseg.compare_key c.kmin w >= 0 | None -> false)
    ||
    match !best with
    | None -> false
    | Some b ->
        if leftmost then Lseg.compare_key c.kmin b >= 0 else Lseg.compare_key c.kmax b <= 0
  in
  let scan (s : Lseg.t) =
    if Lseg.reaches s q.uq then begin
      let cv = Lseg.cross_v s q.uq in
      if cv < q.vlo then (
        match !lo with
        | Some w when Lseg.compare_key w s >= 0 -> ()
        | _ -> lo := Some s)
      else if cv > q.vhi then (
        match !hi with
        | Some w when Lseg.compare_key w s <= 0 -> ()
        | _ -> hi := Some s)
      else if better s then best := Some s
    end
  in
  let visited = ref 0 and max_width = ref 0 and levels = ref 0 in
  let live (c : child) = c.addr <> Block_store.null && c.top >= q.uq && not (pruned c) in
  let frontier = ref (if live t.root then [ t.root ] else []) in
  while !frontier <> [] do
    incr levels;
    let processed = ref 0 in
    let next = ref [] in
    List.iter
      (fun (c : child) ->
        (* re-check: scanning earlier frontier nodes may have tightened
           the witnesses, so most enqueued candidates die unread *)
        if live c then begin
          incr visited;
          incr processed;
          let n = Store.read t.store c.addr in
          Array.iter scan n.segs;
          Array.iter (fun ch -> if live ch then next := ch :: !next) n.children
        end)
      !frontier;
    if !processed > !max_width then max_width := !processed;
    frontier := List.rev !next
  done;
  { result = !best; visited = !visited; max_width = !max_width; levels = !levels }

let find_leftmost_bfs t q = (find_profile t q ~leftmost:true).result
let find_rightmost_bfs t q = (find_profile t q ~leftmost:false).result

(* The paper's literal two-phase Report (Appendix A, Algorithm 2):
   locate the deepest-leftmost and deepest-rightmost intersected
   segments, then report the 3-sided set {key in [sl, sr], far_u >= uq}
   — by the NCT order lemma that set equals the answer. The one-pass
   [query] is the production path; this variant exists to execute the
   paper's algorithm as written and is oracle-tested against [query]. *)
let query_two_phase t (q : Lseg.query) ~f =
  Probe.span t.io "pst.report" @@ fun () ->
  match (find_leftmost t q, find_rightmost t q) with
  | None, _ | _, None -> ()
  | Some sl, Some sr ->
      let rec report (c : child) =
        if
          c.addr <> Block_store.null && c.top >= q.uq
          && Lseg.compare_key c.kmax sl >= 0
          && Lseg.compare_key c.kmin sr <= 0
        then begin
          let n = Store.read t.store c.addr in
          Array.iter
            (fun (s : Lseg.t) ->
              if
                Lseg.reaches s q.uq
                && Lseg.compare_key s sl >= 0
                && Lseg.compare_key s sr <= 0
              then f s)
            n.segs;
          Array.iter report n.children
        end
      in
      report t.root

(* ---------------- insertion ---------------- *)

let sorted_insert (segs : Lseg.t array) (s : Lseg.t) =
  let n = Array.length segs in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Lseg.compare_key segs.(mid) s < 0 then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  let out = Array.make (n + 1) s in
  Array.blit segs 0 out 0 i;
  Array.blit segs i out (i + 1) (n - i);
  out

(* Index of the shallowest (minimal far_u) segment of a block. *)
let argmin_far_u (segs : Lseg.t array) =
  let best = ref 0 in
  for i = 1 to Array.length segs - 1 do
    if Lseg.compare_far_u segs.(i) segs.(!best) < 0 then best := i
  done;
  !best

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* Child slot for a key: first i with key < splits.(i), else the last. *)
let route splits (s : Lseg.t) =
  let k = Array.length splits in
  let rec go i = if i >= k then k else if Lseg.compare_key s splits.(i) < 0 then i else go (i + 1) in
  go 0

(* Turn a full leaf into an internal node: separators are quantiles of
   its current keys, children start absent. *)
let allocate_children t (n : node) =
  let f = t.branching in
  let m = Array.length n.segs in
  let splits =
    Array.init (f - 1) (fun i ->
        let b = (i + 1) * m / f in
        if b < m then n.segs.(b) else max_sentinel)
  in
  { n with splits; children = Array.make f no_child }

let rec collect_sub t (c : child) acc =
  if c.addr <> Block_store.null then begin
    let n = Store.read t.store c.addr in
    Array.iter (fun s -> acc := s :: !acc) n.segs;
    Array.iter (fun ch -> collect_sub t ch acc) n.children;
    Store.free t.store c.addr
  end

let rebuild_count = ref 0
let rebuild_mass = ref 0

let rebuild_sub t (c : child) =
  incr rebuild_count;
  rebuild_mass := !rebuild_mass + c.csize;
  let acc = ref [] in
  collect_sub t c acc;
  let arr = Array.of_list !acc in
  Array.sort Lseg.compare_key arr;
  build_sub t arr

(* Scapegoat criterion: rebuild a child that outgrew its fair share of
   the subtree. Binary follows BB[alpha] with alpha = 3/4; wider nodes
   allow 4x the ideal share so that skewed streams do not thrash. The
   fan-out must be the node's actual one — static builds cap it below
   [t.branching] for small subtrees. *)
let needs_rebuild t ~fanout ~child_size ~subtree_size =
  subtree_size > 4 * t.cap
  &&
  if fanout <= 2 then 4 * (child_size + 1) > 3 * (subtree_size + 1)
  else fanout * (child_size + 1) > 4 * (subtree_size + 1)

let fresh_leaf t (s : Lseg.t) =
  let addr = Store.alloc t.store { segs = [| s |]; splits = [||]; children = [||] } in
  { addr; top = s.far_u; kmin = s; kmax = s; csize = 1 }

let rec insert_sub t (c : child) (s : Lseg.t) : child =
  let n = Store.read t.store c.addr in
  let c =
    {
      c with
      top = Float.max c.top s.Lseg.far_u;
      kmin = key_min c.kmin s;
      kmax = key_max c.kmax s;
      csize = c.csize + 1;
    }
  in
  let max_child_top =
    Array.fold_left (fun acc ch -> Float.max acc ch.top) neg_infinity n.children
  in
  if Array.length n.segs < t.cap && (Array.length n.children = 0 || s.Lseg.far_u >= max_child_top)
  then begin
    Store.write t.store c.addr { n with segs = sorted_insert n.segs s };
    c
  end
  else begin
    let n = if Array.length n.children = 0 then allocate_children t n else n in
    (* Keep the block holding the subtree's deepest segments: if [s] is
       deeper than the shallowest resident, it takes that slot and the
       evicted segment sinks instead. *)
    let sink, n =
      let i = argmin_far_u n.segs in
      if Lseg.compare_far_u s n.segs.(i) > 0 then begin
        let evicted = n.segs.(i) in
        (evicted, { n with segs = sorted_insert (array_remove n.segs i) s })
      end
      else (s, n)
    in
    let slot = route n.splits sink in
    let updated =
      if n.children.(slot).addr = Block_store.null then fresh_leaf t sink
      else insert_sub t n.children.(slot) sink
    in
    let children = Array.copy n.children in
    children.(slot) <- updated;
    Store.write t.store c.addr { n with children };
    (* Scapegoat: when one child outgrows its share, the *partition* of
       this subtree is stale — rebuild the whole subtree so quantile
       splits are recomputed. Rebuilding only the child would leave the
       violation in place and thrash. *)
    if
      needs_rebuild t ~fanout:(Array.length n.children) ~child_size:updated.csize
        ~subtree_size:c.csize
    then rebuild_sub t c
    else c
  end

let insert t s =
  if t.root.addr = Block_store.null then t.root <- fresh_leaf t s
  else t.root <- insert_sub t t.root s

(* ---------------- invariants ---------------- *)

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let rec go (c : child) ~lo ~hi =
    (* lo/hi: exclusive key bounds from parent splits *)
    if c.addr <> Block_store.null then begin
      let n = Store.read t.store c.addr in
      let count = ref 0 and top = ref neg_infinity in
      let kmin = ref None and kmax = ref None in
      let see (s : Lseg.t) =
        incr count;
        if s.far_u > !top then top := s.far_u;
        (match !kmin with None -> kmin := Some s | Some m -> kmin := Some (key_min m s));
        (match !kmax with None -> kmax := Some s | Some m -> kmax := Some (key_max m s));
        (match lo with Some b -> if Lseg.compare_key s b < 0 then fail () | None -> ());
        match hi with Some b -> if Lseg.compare_key s b >= 0 then fail () | None -> ()
      in
      if Array.length n.segs = 0 then fail ();
      if Array.length n.segs > t.cap then fail ();
      for i = 1 to Array.length n.segs - 1 do
        if Lseg.compare_key n.segs.(i - 1) n.segs.(i) >= 0 then fail ()
      done;
      Array.iter see n.segs;
      let shallowest = n.segs.(argmin_far_u n.segs) in
      if Array.length n.children > 0 then begin
        let f = Array.length n.children in
        if f < 2 || f > t.branching then fail ();
        if Array.length n.splits <> f - 1 then fail ();
        if Array.length n.segs > t.cap then fail ();
        Array.iteri
          (fun i ch ->
            let clo = if i = 0 then lo else Some n.splits.(i - 1)
            and chi = if i = Array.length n.children - 1 then hi else Some n.splits.(i) in
            (* heap order across levels *)
            if ch.addr <> Block_store.null && ch.top > shallowest.Lseg.far_u then fail ();
            go ch ~lo:clo ~hi:chi;
            if ch.addr <> Block_store.null then begin
              count := !count + ch.csize;
              if ch.top > !top then top := ch.top;
              (match !kmin with None -> fail () | Some m -> kmin := Some (key_min m ch.kmin));
              match !kmax with None -> fail () | Some m -> kmax := Some (key_max m ch.kmax)
            end)
          n.children
      end
      else if Array.length n.splits <> 0 then fail ();
      if !count <> c.csize then fail ();
      if !top <> c.top then fail ();
      (* kmin/kmax are conservative bounds: deletions leave them stale
         but still enclosing *)
      (match !kmin with
      | Some m -> if Lseg.compare_key m c.kmin < 0 then fail ()
      | None -> fail ());
      match !kmax with
      | Some m -> if Lseg.compare_key m c.kmax > 0 then fail ()
      | None -> fail ()
    end
    else if c.csize <> 0 then fail ()
  in
  go t.root ~lo:None ~hi:None;
  !ok

(* ---------------- deletion ---------------- *)

(* Remove the deepest segment of subtree [c] and return it together
   with the updated router. [c.addr] must be non-null and non-empty. *)
let rec extract_deepest t (c : child) : Lseg.t * child =
  let n = Store.read t.store c.addr in
  (* the deepest segment of the subtree sits in the node block by the
     heap property *)
  let i = ref 0 in
  for j = 1 to Array.length n.segs - 1 do
    if Lseg.compare_far_u n.segs.(j) n.segs.(!i) > 0 then i := j
  done;
  let deepest = n.segs.(!i) in
  let segs = array_remove n.segs !i in
  finish_removal t c n segs deepest

(* Shared tail of delete/extract: [segs] is the node's seg array after
   one removal; refill from the deepest child if the heap has one. *)
and finish_removal t (c : child) n segs removed : Lseg.t * child =
  let best = ref (-1) in
  Array.iteri
    (fun j (ch : child) ->
      if ch.addr <> Block_store.null && (!best < 0 || ch.top > n.children.(!best).top) then
        best := j)
    n.children;
  if !best >= 0 && Array.length segs < t.cap then begin
    let pulled, updated = extract_deepest t n.children.(!best) in
    let children = Array.copy n.children in
    children.(!best) <- updated;
    let segs = sorted_insert segs pulled in
    let node = { n with segs; children } in
    Store.write t.store c.addr node;
    let top =
      Array.fold_left
        (fun acc (s : Lseg.t) -> Float.max acc s.far_u)
        (Array.fold_left (fun acc ch -> Float.max acc ch.top) neg_infinity children)
        segs
    in
    (removed, { c with top; csize = c.csize - 1 })
  end
  else if Array.length segs = 0 then begin
    (* no children left: the subtree is gone *)
    Store.free t.store c.addr;
    (removed, no_child)
  end
  else begin
    Store.write t.store c.addr { n with segs };
    let top = Array.fold_left (fun acc (s : Lseg.t) -> Float.max acc s.far_u) neg_infinity segs in
    (removed, { c with top; csize = c.csize - 1 })
  end

let delete t (target : Lseg.t) =
  let rec del (c : child) : child option =
    (* None = not found; Some c' = deleted, updated router *)
    if c.addr = Block_store.null then None
    else if Lseg.compare_key target c.kmin < 0 || Lseg.compare_key target c.kmax > 0 then None
    else begin
      let n = Store.read t.store c.addr in
      let found = ref (-1) in
      Array.iteri
        (fun j (s : Lseg.t) -> if Lseg.compare_key s target = 0 then found := j)
        n.segs;
      if !found >= 0 then begin
        let segs = array_remove n.segs !found in
        let _, c' = finish_removal t c n segs target in
        Some c'
      end
      else if Array.length n.children = 0 then None
      else begin
        let slot = route n.splits target in
        match del n.children.(slot) with
        | None -> None
        | Some updated ->
            let children = Array.copy n.children in
            children.(slot) <- updated;
            Store.write t.store c.addr { n with children };
            let top =
              Array.fold_left
                (fun acc (s : Lseg.t) -> Float.max acc s.far_u)
                (Array.fold_left (fun acc ch -> Float.max acc ch.top) neg_infinity children)
                n.segs
            in
            Some { c with top; csize = c.csize - 1 }
      end
    end
  in
  match del t.root with
  | None -> false
  | Some c ->
      t.root <- c;
      true
