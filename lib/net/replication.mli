(** WAL-shipping replication: the primary/replica machinery behind the
    serving layer.

    The WAL (PR 1/PR 4) already totally orders every committed
    mutation; replication ships that order to warm standbys. Three
    pieces live here:

    - {!t}, one node's {e stream state}: role, fencing epoch, the
      committed LSN, an in-memory tail of recent records (what a
      reconnecting replica catches up from without a full snapshot),
      and per-peer acknowledgements. The server feeds it through
      [Segdb.set_commit_hook], so local writes, wire writes and
      replicated applies all append through the same door.
    - {!Gate}, a writer-preference reader/writer gate: served queries
      enter as readers, replicated applies (and wire writes) as the
      writer — so a replica's readers always observe a consistent
      applied prefix, never a half-applied batch. Each apply bumps
      [Segdb.generation], which invalidates the execution engine's
      per-domain cached readers.
    - {!tail}, the replica's subscription loop (its own domain): it
      connects upstream, subscribes from its applied LSN, applies
      pushed records via [Segdb.commit] under the gate, acknowledges,
      and reconnects with backoff after any transport damage — the
      catch-up protocol degrades from tail records to a full
      {!Wire.response.Repl_snapshot} automatically.

    {b LSN}: the count of records committed since the node's stream
    began — a position in the WAL's total order, independent of
    checkpoint truncation. {b Epoch fencing}: every [repl_*] frame
    carries the sender's epoch; {!promote} bumps it, and any node
    refuses stream data from a lower epoch, so a revived stale primary
    is refused, not obeyed. A subscriber with a {e lower} epoch is the
    one legitimate stale party: it is answered with a snapshot resync
    that discards its divergent history. *)

module Db := Segdb_core.Segdb

type role = Primary | Replica

val role_name : role -> string
(** ["primary"] / ["replica"]. *)

(** Writer-preference reader/writer gate. Readers are served queries
    (entered on the accept loop, exited from whichever worker domain
    completes the request); the single writer is a mutation batch. A
    waiting writer blocks new readers, so applies cannot starve. *)
module Gate : sig
  type t

  val create : unit -> t

  val enter_read : t -> unit
  (** Blocks while a writer is active or waiting. *)

  val exit_read : t -> unit

  val with_write : t -> (unit -> 'a) -> 'a
  (** Waits for in-flight readers to drain, runs [f] exclusively,
      releases. Not reentrant. *)
end

type t

val create : ?role:role -> ?epoch:int -> ?max_tail:int -> unit -> t
(** A fresh stream at LSN 0. [epoch] defaults to 1 for a primary and 0
    for a replica (0 = "has never seen a primary", so the first
    subscribe forces a snapshot resync). [max_tail] bounds the
    in-memory record tail (default 8192); a subscriber older than the
    retained tail is caught up by snapshot instead. *)

val attach : t -> Db.t -> unit
(** Install the commit hook on [db] so every committed mutation is
    appended to this stream. Replaces any previous hook. *)

val role : t -> role
val epoch : t -> int

val lsn : t -> int
(** The stream's committed LSN: [base_lsn + retained records]. *)

val base_lsn : t -> int
(** LSN of the oldest retained record; anything older needs a
    snapshot. *)

val append : t -> string -> unit
(** Append one committed record (what {!attach}'s hook calls). May
    drop the oldest half of the tail once it exceeds [max_tail]. *)

val records_from : t -> int -> string list option
(** The retained records from LSN [from] (exclusive of nothing —
    record [from] is the first returned), or [None] when [from] is
    below {!base_lsn} or beyond {!lsn}: the caller must snapshot. *)

val reset_to : t -> lsn:int -> unit
(** Empty the tail and rebase at [lsn] — what a replica does after
    installing a snapshot. *)

val set_epoch : t -> int -> unit
(** Adopt a higher epoch learned from upstream. Never lowers. *)

val promote : t -> ?epoch:int -> unit -> int
(** Flip to [Primary] at [epoch] (default/0: [current + 1]) and return
    the new epoch. Raises [Invalid_argument] if [epoch] is at or below
    the current one (fencing: epochs only move forward). *)

val ack : t -> peer:string -> int -> unit
(** Record a replica's acknowledged LSN. *)

val acks : t -> (string * int) list
(** Per-peer acknowledged LSNs, most recent ack per peer. *)

val touch_progress : t -> unit
(** Mark "replication showed a sign of life now". {!append}, {!ack} and
    {!reset_to} touch it implicitly; the replica tail touches it on
    every decoded upstream frame (including idle status probes), so on
    a healthy replica it goes stale only when the upstream link does. *)

val seconds_since_progress : t -> float
(** Seconds since the last {!touch_progress} — the staleness signal
    behind the health endpoint's replica-stall rule. *)

val status : t -> Wire.repl_status
(** This node's standing, ready to serve a {!Wire.request.Repl_status}.
    [sent_lsn] is reported equal to the ack for each peer — only the
    server knows the true per-connection push cursors and overlays them
    (see {!Server}). *)

val resync : Db.t -> Segdb_geom.Segment.t array -> int * int
(** Make [db]'s contents equal the snapshot's segment set by applying
    the difference (deletes then inserts) through the idempotent,
    unlogged replay path — returns [(deleted, inserted)]. The caller
    holds the write gate and then {!reset_to}s the stream. *)

(** {1 The replica tail} *)

type tail

val start_tail :
  connect:(unit -> Unix.file_descr) ->
  gate:Gate.t ->
  db:Db.t ->
  stream:t ->
  ?on_applied:(int -> unit) ->
  unit ->
  tail
(** Spawn the subscription loop in its own domain. [connect] returns a
    fresh socket to the upstream primary (raising on failure — the
    loop retries with backoff); [stream] must already be {!attach}ed
    to [db]. The loop exits when {!stop_tail} is called or the stream
    is promoted. [on_applied] observes the applied LSN after each
    batch (tests and lag probes). Frames from a lower epoch than the
    stream's are refused: the connection is dropped and the refusal
    logged ([comp="repl"]) — a revived stale primary cannot feed a
    promoted replica. *)

val stop_tail : tail -> unit
(** Signal the loop to exit (async-signal-safe: flips an atomic). *)

val join_tail : tail -> unit
(** {!stop_tail} then join the domain. Idempotent. *)

val tail_last_applied : tail -> int
(** The LSN after the most recently applied batch (0 before any). *)
