lib/core/solution2.ml: Array Block_store Hashtbl List Lseg Segdb_geom Segdb_io Segdb_itree Segdb_pst Segdb_segtree Segment Vquery Vs_index
