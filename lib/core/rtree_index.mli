(** The R-tree baseline behind the common index interface. *)

include Vs_index.S

val check_invariants : t -> bool
(** Structural soundness of the underlying tree (see
    {!Segdb_rtree.Rtree.check_invariants}). *)
