(** I/O accounting for the simulated disk.

    The paper's cost model counts transfers of [B]-item blocks between
    secondary storage and memory. Every {!Block_store} charges its cache
    misses and dirty write-backs to one of these counters; experiments
    snapshot the counter around an operation to obtain its I/O cost. *)

type t

type snapshot = { reads : int; writes : int; allocs : int }

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit
val record_alloc : t -> unit

val reads : t -> int
(** Blocks fetched from disk (buffer-pool misses). *)

val writes : t -> int
(** Blocks written back to disk (dirty evictions and flushes). *)

val allocs : t -> int
(** Blocks ever allocated; allocation itself is not charged as a
    transfer. *)

val total_io : t -> int
(** [reads + writes]. *)

val reset : t -> unit

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff before after] is the per-counter difference. *)

val snapshot_total : snapshot -> int

val pp : Format.formatter -> t -> unit
