lib/internal/internal_pst.mli: Lseg Segdb_geom
