lib/io/lru.mli:
