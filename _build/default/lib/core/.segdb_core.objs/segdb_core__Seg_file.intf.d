lib/core/seg_file.mli: Segdb_geom Segment
