type snapshot = { reads : int; writes : int; allocs : int }

type t = { mutable reads : int; mutable writes : int; mutable allocs : int }

let create () = { reads = 0; writes = 0; allocs = 0 }

let record_read t = t.reads <- t.reads + 1
let record_write t = t.writes <- t.writes + 1
let record_alloc t = t.allocs <- t.allocs + 1

let reads t = t.reads
let writes t = t.writes
let allocs t = t.allocs
let total_io t = t.reads + t.writes

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.allocs <- 0

let snapshot t : snapshot = { reads = t.reads; writes = t.writes; allocs = t.allocs }

let diff (before : snapshot) (after : snapshot) : snapshot =
  {
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    allocs = after.allocs - before.allocs;
  }

let snapshot_total (s : snapshot) = s.reads + s.writes

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d allocs=%d" t.reads t.writes t.allocs
