lib/geom/segment.mli: Format
