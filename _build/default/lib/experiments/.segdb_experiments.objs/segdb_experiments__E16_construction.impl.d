lib/experiments/e16_construction.ml: Array Backends Block_store Ext_sort Float Harness Io_stats List Rng Segdb_core Segdb_io Segdb_util Segdb_workload Table
