(** A minimal HTTP/1.0 exporter, multiplexed into an existing select
    loop.

    Serves the monitoring endpoints ([/metrics], [/healthz], [/varz])
    off the same domain that runs the wire-protocol accept loop: the
    owner adds {!fds} to its [select] read set and hands ready
    descriptors to {!handle} — no threading model of its own, no
    framework. Only [GET] is understood; every response closes the
    connection (HTTP/1.0 semantics), so there is no keep-alive state to
    manage.

    Hardening: reads and writes go through the [net.read]/[net.write]
    failpoint sites ({!Segdb_io.Failpoint.Io}), a malformed request
    line is answered [400] without disturbing the loop, a request
    larger than 8 KiB is answered [400], and a connection that never
    completes its headers is reaped after a few seconds. *)

type t

type response = { status : int; content_type : string; body : string }

val create : handler:(string -> response) -> Unix.sockaddr -> t
(** Bind + listen immediately. [handler] receives the decoded request
    path (query string stripped) and runs on whichever domain calls
    {!handle} — the owner's select loop. Raises [Unix.Unix_error] if
    the address cannot be bound. *)

val bound : t -> Unix.sockaddr
(** The actual listening address (kernel-chosen port for TCP port 0). *)

val fds : t -> Unix.file_descr list
(** The listen socket plus every half-read connection — what the owner
    adds to its [select] read set. *)

val owns : t -> Unix.file_descr -> bool

val handle : t -> Unix.file_descr -> unit
(** Service one ready descriptor: accept on the listen socket, read /
    answer / close on a connection. Never raises on peer misbehaviour. *)

val reap : t -> unit
(** Close connections that have sat incomplete past the header
    deadline; call once per loop tick. *)

val close : t -> unit
(** Close the listener and every pending connection. *)
