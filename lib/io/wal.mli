(** Write-ahead log: an append-only file of CRC-framed records.

    Each record is framed as [len: u32 | crc32(payload): u32 | payload].
    A reader accepts the longest prefix of intact frames and treats
    everything after the first torn or corrupt frame — a crash mid-
    [append] — as garbage, so recovery after a torn write is: replay the
    valid prefix, truncate the rest. {!open_} does exactly that.

    The databases log an operation {e before} applying it to the index;
    replay-on-open then restores every acknowledged operation after a
    crash, and a checkpoint ({!reset} after a snapshot) bounds the log's
    length. Payloads are opaque bytes — the caller owns the record
    encoding (see [Segdb]'s insert/delete records). *)

type t

val open_ : ?sync:bool -> string -> t * string list
(** Opens (creating if absent) the log at the path, repairs a torn tail
    by truncating the file to its valid prefix, and returns the handle
    together with the surviving records in append order. When [sync] is
    true (the default) every {!append} is followed by an [fsync], which
    is what makes an insert "acknowledged"; pass [~sync:false] for bulk
    loads and tests. *)

val scan : string -> string list
(** The valid records of the log at the path, in order, without opening
    it for append or repairing it. [[]] if the file does not exist. *)

val scan_from : string -> from:int -> string list
(** {!scan} minus the first [from] records — replay from an arbitrary
    LSN offset into the log's total order. [[]] when [from] is at or
    past the end; a negative [from] behaves like 0. Backs replication
    catch-up from a WAL tail. *)

type audit = {
  audit_records : int;  (** intact records in the valid prefix *)
  valid_bytes : int;  (** bytes the valid prefix spans *)
  file_bytes : int;  (** actual file length; any excess is a torn tail *)
}

val audit : string -> audit
(** Non-mutating inspection of the log at the path (all zeros if the
    file does not exist): what {!open_} would replay and how much torn
    tail it would truncate. Backs [recover --dry-run]. *)

val append : t -> string -> unit
(** Appends one record (durably, if the log was opened with [sync]). *)

val sync : t -> unit
(** Explicit [fsync], for logs opened with [~sync:false]. *)

val reset : t -> unit
(** Checkpoint: truncates the log to empty. *)

val size : t -> int
(** Current length of the log in bytes. *)

val records : t -> int
(** Records appended or replayed through this handle since open. *)

val path : t -> string
val close : t -> unit
