lib/geom/predicates.ml: Array Segment
