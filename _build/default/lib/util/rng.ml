type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (int64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bounds far below 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let in_range t lo hi =
  if hi < lo then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
