(* E8 — the stabbing/VS gap motivating the paper (Figure 1): on pure
   vertical *line* queries the interval tree over x-projections is the
   optimal tool; the VS structures answer them too but pay their more
   general machinery; conversely the interval tree cannot answer
   bounded VS queries output-sensitively (it must post-filter its
   entire stab answer). *)

open Segdb_io
open Segdb_geom
open Segdb_util
module W = Segdb_workload.Workload
module Itree = Segdb_itree.Interval_tree

let id = "e8"
let title = "E8: stabbing (vertical line) queries: interval tree vs VS structures"
let validates = "Introduction / Figure 1: VS queries strictly generalize stabbing"

let run (p : Harness.params) =
  let span = 1000.0 in
  let t1 =
    Table.create
      ~title:(title ^ " — line queries")
      ~columns:[ "n"; "itree"; "naive"; "rtree"; "sol1"; "sol2"; "mean t" ]
  in
  let t2 =
    Table.create
      ~title:"E8b: short VS queries — itree must post-filter its whole stab answer"
      ~columns:[ "n"; "itree+filter"; "sol2"; "mean t(vs)"; "mean t(stab)" ]
  in
  List.iter
    (fun n ->
      (* grid-city keeps line answers sparse so the search term, not the
         output, dominates — the regime the Introduction contrasts *)
      let segs = W.grid_city (Rng.create p.seed) ~n ~span:(int_of_float span) ~max_len:40 in
      let lines = W.line_queries (Rng.create (p.seed + 1)) ~n:40 ~span in
      let vs = W.segment_queries (Rng.create (p.seed + 2)) ~n:40 ~span ~selectivity:0.005 in
      (* interval tree over x-projections *)
      let io = Io_stats.create () in
      let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
      let it =
        Itree.build ~leaf_capacity:Harness.block ~pool ~stats:io
          (Array.map
             (fun (s : Segment.t) -> { Itree.lo = s.Segment.x1; hi = s.Segment.x2; seg = s })
             segs)
      in
      let stab_count (q : Vquery.t) =
        let k = ref 0 in
        Itree.stab it q.Vquery.x ~f:(fun _ -> incr k);
        !k
      in
      let vs_filter_count (q : Vquery.t) =
        let k = ref 0 in
        Itree.stab it q.Vquery.x ~f:(fun iv -> if Vquery.matches q iv.Itree.seg then incr k);
        !k
      in
      let it_lines = Harness.measure ~io ~queries:lines ~run:stab_count in
      let cost b qs =
        let _, c = Backends.measure_backend b segs qs in
        c
      in
      let cn = cost "naive" lines and cr = cost "rtree" lines in
      let c1 = cost "solution1" lines and c2 = cost "solution2" lines in
      Table.add_row t1
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 it_lines.mean_io;
          Table.cell_float ~decimals:1 cn.mean_io;
          Table.cell_float ~decimals:1 cr.mean_io;
          Table.cell_float ~decimals:1 c1.mean_io;
          Table.cell_float ~decimals:1 c2.mean_io;
          Table.cell_float ~decimals:1 it_lines.mean_out;
        ];
      let it_vs = Harness.measure ~io ~queries:vs ~run:vs_filter_count in
      let s2_vs = cost "solution2" vs in
      let it_stab_t = Harness.measure ~io ~queries:vs ~run:stab_count in
      Table.add_row t2
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 it_vs.mean_io;
          Table.cell_float ~decimals:1 s2_vs.mean_io;
          Table.cell_float ~decimals:1 s2_vs.mean_out;
          Table.cell_float ~decimals:1 it_stab_t.mean_out;
        ])
    (Harness.sweep_n p);
  [ Harness.Table t1; Harness.Table t2 ]
