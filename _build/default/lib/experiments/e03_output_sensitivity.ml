(* E3 — output sensitivity: the "+t" term. Query cost must grow linearly
   with the answer size at ~1/B blocks per reported segment, on top of a
   logarithmic search term. *)

open Segdb_io
open Segdb_geom
open Segdb_util
module W = Segdb_workload.Workload
module Pst = Segdb_pst.Pst

let id = "e3"
let title = "E3: PST query I/O vs output size"
let validates = "Lemmas 2-3: the additive t/B term"

let run (p : Harness.params) =
  let n = if p.quick then 1 lsl 13 else 1 lsl 16 in
  let vspan = 1000.0 and umax = 100.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (N = %d, B = %d)" title n Harness.block)
      ~columns:[ "width%"; "mean t"; "t/B"; "binary io"; "blocked io"; "io per t" ]
  in
  let rng = Rng.create p.seed in
  let lsegs = W.line_based rng ~n ~vspan ~umax in
  let io = Io_stats.create () in
  let pool () = Block_store.Pool.create ~capacity:Harness.pool_blocks in
  let binary = Pst.binary ~node_capacity:Harness.block ~pool:(pool ()) ~stats:io lsegs in
  let blocked = Pst.blocked ~node_capacity:Harness.block ~pool:(pool ()) ~stats:io lsegs in
  List.iter
    (fun width_pct ->
      let qrng = Rng.create (p.seed + 1) in
      let w = float_of_int width_pct /. 100.0 *. vspan in
      let queries =
        Array.init 30 (fun _ ->
            let uq = Rng.float qrng (0.5 *. umax) in
            let v = Rng.float qrng (vspan -. w) in
            Lseg.query ~uq ~vlo:v ~vhi:(v +. w))
      in
      let c_bin = Harness.measure ~io ~queries ~run:(Pst.count binary) in
      let c_blk = Harness.measure ~io ~queries ~run:(Pst.count blocked) in
      Table.add_row table
        [
          Table.cell_int width_pct;
          Table.cell_float ~decimals:1 c_blk.mean_out;
          Table.cell_float ~decimals:1 (c_blk.mean_out /. float_of_int Harness.block);
          Table.cell_float ~decimals:1 c_bin.mean_io;
          Table.cell_float ~decimals:1 c_blk.mean_io;
          Table.cell_float ~decimals:3
            (if c_blk.mean_out > 0.0 then c_blk.mean_io /. c_blk.mean_out else 0.0);
        ])
    [ 1; 2; 5; 10; 25; 50; 100 ];
  [ Harness.Table table ]
