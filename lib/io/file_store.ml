exception Corrupt_store of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt_store m)) fmt

let magic = "SEGFST01"

(* Version 2 added the per-page payload CRC to the header. Version 1
   images carry no page checksums, so reading them with this build
   would defeat the corruption guarantees — they are rejected with a
   migration message instead of silently trusted. *)
let version = 2
let header_bytes = 13 (* kind u8 | next u32 | len u32 | crc u32 *)
let crc_prefix = 9 (* the header bytes the page CRC covers *)
let kind_free = 0
let kind_head = 1
let kind_cont = 2

(* ---------------- raw file I/O ----------------

   All syscalls go through {!Failpoint.Io}: transient EINTR/EAGAIN/EIO
   are retried with backoff (counted as [io.retries]), persistent
   short writes error out, and every call is a registered fault
   site. *)

let pread = Failpoint.Io.pread
let pwrite = Failpoint.Io.pwrite
let sp_sync = Failpoint.site "store.sync"

(* magic 8 | version u32 | page_size u32 | next_page u32 | root u32 | crc u32 *)
let superblock_len = 8 + (4 * 4) + 4

(* ---------------- offline scrub ----------------

   The page format is payload-agnostic, so a store file can be checked
   without knowing its codec: superblock magic/version/CRC, every
   page's header sanity and payload CRC, chain reachability (no
   escapes, no double claims, heads chain through continuations), and
   the root's liveness. Findings are reported, never raised — a scrub
   is diagnosis, not failure. *)

module Scrub = struct
  let file path =
    let findings = ref [] in
    let note fmt = Printf.ksprintf (fun m -> findings := m :: !findings) fmt in
    (try
       let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
         (fun () ->
           let sb = Bytes.create superblock_len in
           if pread fd ~off:0 sb < superblock_len then
             note "superblock: file too short"
           else begin
             let s = Bytes.to_string sb in
             let sane = ref true in
             let bad fmt = Printf.ksprintf (fun m -> sane := false; note "%s" m) fmt in
             if String.sub s 0 8 <> magic then bad "superblock: bad magic";
             let r = Codec.R.of_string ~pos:8 s in
             let ver = Codec.R.u32 r in
             if !sane && ver <> version then
               bad "superblock: version %d (this build reads %d)" ver version;
             let page_size = Codec.R.u32 r in
             let next_page = Codec.R.u32 r in
             let root = Codec.R.u32 r in
             let crc = Codec.R.u32 r in
             if !sane && Crc.string (String.sub s 0 (superblock_len - 4)) <> crc then
               bad "superblock: CRC mismatch";
             if !sane && page_size < 64 then
               bad "superblock: implausible page size %d" page_size;
             if !sane then begin
               (* one pass over the headers, CRC-checking every page *)
               let headers = Array.make next_page None in
               for p = 1 to next_page - 1 do
                 let page = Bytes.create page_size in
                 let got = pread fd ~off:(p * page_size) page in
                 if got < header_bytes then note "page %d: short read (%d bytes)" p got
                 else begin
                   let s = Bytes.to_string page in
                   let r = Codec.R.of_string s in
                   let kind = Codec.R.u8 r in
                   let next = Codec.R.u32 r in
                   let len = Codec.R.u32 r in
                   let crc = Codec.R.u32 r in
                   if kind > kind_cont then note "page %d: unknown kind %d" p kind
                   else if len > page_size - header_bytes then
                     note "page %d: payload overflows the page" p
                   else if got < header_bytes + len then
                     note "page %d: short read (%d bytes)" p got
                   else if
                     Crc.string (String.sub s 0 crc_prefix ^ String.sub s header_bytes len)
                     <> crc
                   then note "page %d: CRC mismatch" p
                   else headers.(p) <- Some (kind, next)
                 end
               done;
               (* chain walk: claimed pages vs the free/continuation pool *)
               let claimed = Array.make next_page false in
               for p = 1 to next_page - 1 do
                 match headers.(p) with
                 | Some (kind, next) when kind = kind_head ->
                     claimed.(p) <- true;
                     let q = ref next in
                     let stop = ref false in
                     while !q <> 0 && not !stop do
                       if !q <= 0 || !q >= next_page then begin
                         note "chain from page %d escapes the file at %d" p !q;
                         stop := true
                       end
                       else if claimed.(!q) then begin
                         note "page %d claimed by two extents" !q;
                         stop := true
                       end
                       else begin
                         claimed.(!q) <- true;
                         match headers.(!q) with
                         | Some (kind, next) when kind = kind_cont -> q := next
                         | Some (kind, _) ->
                             note "chain from page %d reaches page %d of kind %d" p !q
                               kind;
                             stop := true
                         | None ->
                             note "chain from page %d reaches damaged page %d" p !q;
                             stop := true
                       end
                     done
                 | _ -> ()
               done;
               if
                 root <> Block_store.null
                 && (root < 1 || root >= next_page
                    ||
                    match headers.(root) with
                    | Some (kind, _) -> kind <> kind_head
                    | None -> true)
               then note "root %d is not a live block" root
             end
           end)
     with
    | Failpoint.Injected_crash _ as e -> raise e
    | e -> note "scrub failed: %s" (Printexc.to_string e));
    List.rev !findings
end

module Make (P : sig
  type t

  val codec : t Codec.t
end) =
struct
  let c_page_read = Probe.counter "file_store.page_read"
  let c_page_write = Probe.counter "file_store.page_write"
  let c_corrupt = Probe.counter "io.corrupt_pages"

  type frame = { mutable payload : P.t; mutable dirty : bool }

  type t = {
    name : string;
    uid : int; (* distinguishes stores inside a shared read context *)
    path : string;
    fd : Unix.file_descr;
    page_size : int;
    io : Io_stats.t;
    cache : frame Lru.t;
    extents : (int, int list) Hashtbl.t; (* head page -> pages of the extent *)
    mutable free_pages : int list;
    mutable tombstones : int list; (* freed heads whose on-disk header is stale *)
    mutable next_page : int;
    mutable root : Block_store.addr;
    mutable closed : bool;
  }

  let payload_capacity t = t.page_size - header_bytes

  (* ---------------- superblock ---------------- *)

  let write_superblock t =
    let b = Buffer.create superblock_len in
    Buffer.add_string b magic;
    Codec.W.u32 b version;
    Codec.W.u32 b t.page_size;
    Codec.W.u32 b t.next_page;
    Codec.W.u32 b t.root;
    Codec.W.u32 b (Crc.string (Buffer.contents b));
    let page = Bytes.make t.page_size '\000' in
    Bytes.blit_string (Buffer.contents b) 0 page 0 (Buffer.length b);
    pwrite t.fd ~off:0 page

  let read_superblock fd path =
    let buf = Bytes.create superblock_len in
    if pread fd ~off:0 buf < superblock_len then
      corrupt "%s: file too short for a superblock" path;
    let s = Bytes.to_string buf in
    if String.sub s 0 8 <> magic then corrupt "%s: bad magic" path;
    let r = Codec.R.of_string ~pos:8 s in
    let ver = Codec.R.u32 r in
    if ver <> version then
      corrupt
        "%s: store format version %d unsupported (this build reads version %d; \
         re-create the file with `save` from a live database to migrate)"
        path ver version;
    let page_size = Codec.R.u32 r in
    let next_page = Codec.R.u32 r in
    let root = Codec.R.u32 r in
    let crc = Codec.R.u32 r in
    if Crc.string (String.sub s 0 (superblock_len - 4)) <> crc then
      corrupt "%s: superblock CRC mismatch" path;
    (page_size, next_page, root)

  (* ---------------- page primitives ---------------- *)

  let read_page_header t p =
    let buf = Bytes.create header_bytes in
    if pread t.fd ~off:(p * t.page_size) buf < header_bytes then (kind_free, 0, 0)
    else
      let s = Bytes.to_string buf in
      let r = Codec.R.of_string s in
      let kind = Codec.R.u8 r in
      let next = Codec.R.u32 r in
      let len = Codec.R.u32 r in
      (kind, next, len)

  let write_page t p ~kind ~next ~chunk =
    let page = Bytes.make t.page_size '\000' in
    let b = Buffer.create header_bytes in
    Codec.W.u8 b kind;
    Codec.W.u32 b next;
    Codec.W.u32 b (String.length chunk);
    (* The page CRC covers the header-so-far plus the payload, so a
       flipped kind/next/len byte is caught, not just payload damage. *)
    Codec.W.u32 b (Crc.string (Buffer.contents b ^ chunk));
    Bytes.blit_string (Buffer.contents b) 0 page 0 header_bytes;
    Bytes.blit_string chunk 0 page header_bytes (String.length chunk);
    pwrite t.fd ~off:(p * t.page_size) page

  let alloc_page t =
    match t.free_pages with
    | p :: rest ->
        t.free_pages <- rest;
        p
    | [] ->
        let p = t.next_page in
        t.next_page <- p + 1;
        p

  (* ---------------- write-back ---------------- *)

  let split_chunks t s =
    let cap = payload_capacity t in
    let len = String.length s in
    let n = max 1 ((len + cap - 1) / cap) in
    List.init n (fun i -> String.sub s (i * cap) (min cap (len - (i * cap))))

  let write_back t a (frame : frame) =
    let chunks = split_chunks t (Codec.encode P.codec frame.payload) in
    let owned = try Hashtbl.find t.extents a with Not_found -> [ a ] in
    let rec assign chunks owned acc =
      match (chunks, owned) with
      | [], surplus ->
          t.free_pages <- surplus @ t.free_pages;
          List.rev acc
      | c :: cs, [] -> assign cs [] ((alloc_page t, c) :: acc)
      | c :: cs, p :: ps -> assign cs ps ((p, c) :: acc)
    in
    let pages = assign chunks owned [] in
    let rec emit = function
      | [] -> ()
      | (p, chunk) :: rest ->
          let kind = if p = a then kind_head else kind_cont in
          let next = match rest with [] -> 0 | (q, _) :: _ -> q in
          write_page t p ~kind ~next ~chunk;
          Io_stats.record_write t.io;
          Probe.bump c_page_write;
          emit rest
    in
    emit pages;
    Hashtbl.replace t.extents a (List.map fst pages)

  let on_evict t a frame = if frame.dirty then write_back t a frame

  (* ---------------- construction ---------------- *)

  let create ?(name = "file-store") ?(page_size = 4096) ?(cache_blocks = 64) ~stats ~path
      () =
    if page_size < 64 then invalid_arg "File_store.create: page_size must be >= 64";
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let t =
      {
        name;
        uid = Read_context.fresh_uid ();
        path;
        fd;
        page_size;
        io = stats;
        cache = Lru.create ~capacity:cache_blocks;
        extents = Hashtbl.create 1024;
        free_pages = [];
        tombstones = [];
        next_page = 1;
        root = Block_store.null;
        closed = false;
      }
    in
    write_superblock t;
    t

  let open_existing ?(name = "file-store") ?(cache_blocks = 64) ~stats ~path () =
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    let page_size, next_page, root =
      try read_superblock fd path
      with e ->
        Unix.close fd;
        raise e
    in
    let t =
      {
        name;
        uid = Read_context.fresh_uid ();
        path;
        fd;
        page_size;
        io = stats;
        cache = Lru.create ~capacity:cache_blocks;
        extents = Hashtbl.create 1024;
        free_pages = [];
        tombstones = [];
        next_page;
        root;
        closed = false;
      }
    in
    (* Rebuild the directory: heads are pages whose header says so; an
       extent is the chain from its head; everything unreachable is
       free. The scan reads headers only and is not charged — it is
       metadata, not block transfers. *)
    let owned = Hashtbl.create 1024 in
    (try
       for p = 1 to next_page - 1 do
         let kind, next, _ = read_page_header t p in
         if kind = kind_head then begin
           let pages = ref [ p ] in
           Hashtbl.replace owned p ();
           let q = ref next in
           while !q <> 0 do
             if !q <= 0 || !q >= next_page then
               corrupt "%s: chain from page %d escapes the file at %d" path p !q;
             if Hashtbl.mem owned !q then
               corrupt "%s: page %d claimed by two extents" path !q;
             Hashtbl.replace owned !q ();
             pages := !q :: !pages;
             let kind, next, _ = read_page_header t !q in
             if kind <> kind_cont then
               corrupt "%s: page %d in a chain is not a continuation" path !q;
             q := next
           done;
           Hashtbl.replace t.extents p (List.rev !pages)
         end
       done
     with e ->
       Unix.close fd;
       raise e);
    let free = ref [] in
    for p = next_page - 1 downto 1 do
      if not (Hashtbl.mem owned p) then free := p :: !free
    done;
    t.free_pages <- !free;
    t

  (* ---------------- the Block_store contract ---------------- *)

  let fail_unknown t a =
    invalid_arg (Printf.sprintf "File_store(%s): unknown or freed address %d" t.name a)

  let check_open t = if t.closed then invalid_arg "File_store: handle is closed"

  (* Same purity contract as {!Block_store}: mutators refuse to run
     under a read context. *)
  let guard_writer t op =
    if Read_context.active () <> None then
      invalid_arg
        (Printf.sprintf "File_store(%s): %s under a read context (queries must not mutate)"
           t.name op)

  let insert_frame t a frame =
    Lru.put t.cache a frame ~on_evict:(fun addr f -> on_evict t addr f)

  let alloc t payload =
    check_open t;
    guard_writer t "alloc";
    let a = alloc_page t in
    Io_stats.record_alloc t.io;
    Hashtbl.replace t.extents a [ a ];
    insert_frame t a { payload; dirty = true };
    a

  let fetch t ~io a =
    Probe.span t.io "file.fetch" @@ fun () ->
    let pages = try Hashtbl.find t.extents a with Not_found -> fail_unknown t a in
    let buf = Buffer.create (List.length pages * payload_capacity t) in
    let corrupt_page p msg =
      Probe.bump c_corrupt;
      corrupt "%s: page %d %s" t.path p msg
    in
    List.iter
      (fun p ->
        let page = Bytes.create t.page_size in
        let got = pread t.fd ~off:(p * t.page_size) page in
        if got < header_bytes then
          corrupt_page p (Printf.sprintf "short read (%d bytes)" got);
        let s = Bytes.to_string page in
        let r = Codec.R.of_string s in
        let _kind = Codec.R.u8 r in
        let _next = Codec.R.u32 r in
        let len = Codec.R.u32 r in
        let crc = Codec.R.u32 r in
        if len > payload_capacity t then corrupt_page p "payload overflows";
        if got < header_bytes + len then
          corrupt_page p (Printf.sprintf "short read (%d bytes)" got);
        if Crc.string (String.sub s 0 crc_prefix ^ String.sub s header_bytes len) <> crc
        then corrupt_page p "CRC mismatch";
        Buffer.add_substring buf s header_bytes len;
        Io_stats.record_read io;
        Probe.bump c_page_read)
      pages;
    try Codec.decode P.codec (Buffer.contents buf)
    with Codec.Corrupt m -> corrupt "%s: block %d does not decode: %s" t.path a m

  (* Reads under a context leave the handle's cache untouched (no
     recency update, no frame insertion) and charge page reads to the
     reader. The handle itself is still single-domain — the fd's seek
     pointer is shared — so File_store readers isolate *accounting*,
     not domains; parallel readers each open their own handle. *)
  let read_via t ctx a =
    match Read_context.find ctx ~uid:t.uid ~addr:a with
    | Some payload -> (Obj.obj payload : P.t)
    | None -> (
        match Lru.peek t.cache a with
        | Some frame -> frame.payload
        | None ->
            let payload = fetch t ~io:(Read_context.stats ctx) a in
            Read_context.add ctx ~uid:t.uid ~addr:a (Obj.repr payload);
            payload)

  let read t a =
    check_open t;
    (* same cooperative cancellation point as [Block_store.read]: one
       poll per block fetch *)
    Cancel.poll ();
    if not (Hashtbl.mem t.extents a) then fail_unknown t a;
    match Read_context.active () with
    | Some ctx -> read_via t ctx a
    | None -> (
        match Lru.find t.cache a with
        | Some frame -> frame.payload
        | None ->
            let payload = fetch t ~io:t.io a in
            insert_frame t a { payload; dirty = false };
            payload)

  let write t a payload =
    check_open t;
    guard_writer t "write";
    if not (Hashtbl.mem t.extents a) then fail_unknown t a;
    match Lru.find t.cache a with
    | Some frame ->
        frame.payload <- payload;
        frame.dirty <- true
    | None ->
        (* Full-block overwrite: no read charged; the write is charged at
           eviction/flush, as in the in-memory store. *)
        insert_frame t a { payload; dirty = true }

  let free t a =
    check_open t;
    guard_writer t "free";
    match Hashtbl.find_opt t.extents a with
    | None -> fail_unknown t a
    | Some pages ->
        Hashtbl.remove t.extents a;
        ignore (Lru.remove t.cache a);
        t.free_pages <- pages @ t.free_pages;
        t.tombstones <- a :: t.tombstones

  let flush t =
    check_open t;
    guard_writer t "flush";
    Lru.iter t.cache (fun a frame ->
        if frame.dirty then begin
          write_back t a frame;
          frame.dirty <- false
        end)

  let sync t =
    flush t;
    List.iter
      (fun p ->
        (* tombstone: the page may have been reused by a new extent
           already, in which case its header is current, not stale *)
        if not (List.mem p t.free_pages) then ()
        else write_page t p ~kind:kind_free ~next:0 ~chunk:"")
      t.tombstones;
    t.tombstones <- [];
    write_superblock t;
    Failpoint.Io.fsync ~site:sp_sync t.fd

  let close t =
    if not t.closed then begin
      sync t;
      t.closed <- true;
      Unix.close t.fd
    end

  let block_count t = Hashtbl.length t.extents
  let stats t = t.io

  let set_root t a =
    check_open t;
    t.root <- a

  let root t = t.root
  let path t = t.path
  let page_size t = t.page_size

  let live_addrs t =
    Hashtbl.fold (fun a _ acc -> a :: acc) t.extents [] |> List.sort compare

  let page_count t = t.next_page

  let verify t =
    check_open t;
    sync t;
    Scrub.file t.path

  (* Simulates the process dying while this handle is live: the fd is
     closed with nothing flushed, so the on-disk image is whatever the
     last {!sync} (plus any evictions) left behind. *)
  let crash t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end
end
