lib/internal/internal_vs.ml: Array Hashtbl Internal_pst List Lseg Segdb_geom Segment Vquery
