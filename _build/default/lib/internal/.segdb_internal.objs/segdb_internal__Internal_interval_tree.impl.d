lib/internal/internal_interval_tree.ml: Array List Segdb_geom Segment
