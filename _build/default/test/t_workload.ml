(* Workload generator tests: sizes, determinism and — crucially — the
   NCT certification of every family, exact where coordinates are
   integral. *)

open Segdb_geom
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng

let qtest = QCheck_alcotest.to_alcotest

let seeds = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000)

(* Generic float-coordinate crossing check with a strict interior
   intersection test (touching allowed). O(n^2); test sizes only. *)
let float_nct segs =
  let strictly_crosses (a : Segment.t) (b : Segment.t) =
    let o (px, py) (qx, qy) (rx, ry) =
      let d = ((qx -. px) *. (ry -. py)) -. ((qy -. py) *. (rx -. px)) in
      if d > 1e-12 then 1 else if d < -1e-12 then -1 else 0
    in
    let p1 = (a.Segment.x1, a.Segment.y1) and p2 = (a.Segment.x2, a.Segment.y2) in
    let p3 = (b.Segment.x1, b.Segment.y1) and p4 = (b.Segment.x2, b.Segment.y2) in
    o p1 p2 p3 * o p1 p2 p4 < 0 && o p3 p4 p1 * o p3 p4 p2 < 0
  in
  let n = Array.length segs in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if strictly_crosses segs.(i) segs.(j) then ok := false
    done
  done;
  !ok

let prop_roads_nct =
  QCheck.Test.make ~name:"roads are NCT" ~count:30 seeds (fun seed ->
      let segs = W.roads (Rng.create seed) ~n:150 ~span:100.0 in
      Array.length segs = 150 && float_nct segs)

let prop_uniform_nct =
  QCheck.Test.make ~name:"uniform is NCT" ~count:30 seeds (fun seed ->
      let segs = W.uniform (Rng.create seed) ~n:150 ~span:100.0 in
      Array.length segs > 0 && float_nct segs)

let prop_grid_city_nct_exact =
  QCheck.Test.make ~name:"grid city is exactly NCT" ~count:20 seeds (fun seed ->
      let segs = W.grid_city (Rng.create seed) ~n:200 ~span:80 ~max_len:20 in
      Array.length segs > 0 && W.verify_nct segs)

let prop_temporal_nct_exact =
  QCheck.Test.make ~name:"temporal is exactly NCT" ~count:20 seeds (fun seed ->
      let segs = W.temporal (Rng.create seed) ~n:200 ~keys:20 ~horizon:500 in
      Array.length segs > 0 && W.verify_nct segs)

let prop_fans_nct_exact =
  QCheck.Test.make ~name:"fans are exactly NCT" ~count:20 seeds (fun seed ->
      let segs = W.fans (Rng.create seed) ~n:200 ~centers:5 ~span:200 in
      Array.length segs > 0 && W.verify_nct segs)

let prop_deterministic =
  QCheck.Test.make ~name:"generators are seed-deterministic" ~count:20 seeds (fun seed ->
      let a = W.roads (Rng.create seed) ~n:50 ~span:10.0 in
      let b = W.roads (Rng.create seed) ~n:50 ~span:10.0 in
      a = b)

let prop_ids_sequential =
  QCheck.Test.make ~name:"ids are sequential" ~count:20 seeds (fun seed ->
      let segs = W.grid_city (Rng.create seed) ~n:100 ~span:60 ~max_len:15 in
      Array.for_all Fun.id (Array.mapi (fun i (s : Segment.t) -> s.Segment.id = i) segs))

let prop_line_based_order =
  QCheck.Test.make ~name:"line_based family is non-crossing at all depths" ~count:50 seeds
    (fun seed ->
      let ls = W.line_based (Rng.create seed) ~n:60 ~vspan:50.0 ~umax:20.0 in
      (* pairwise: order of crossings at any common depth matches key order *)
      let ok = ref true in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if Lseg.compare_key a b < 0 then begin
                let u = Float.min a.Lseg.far_u b.Lseg.far_u in
                if Lseg.cross_v a u > Lseg.cross_v b u +. 1e-9 then ok := false
              end)
            ls)
        ls;
      !ok)

let test_query_generators () =
  let rng = Rng.create 3 in
  let qs = W.segment_queries rng ~n:50 ~span:100.0 ~selectivity:0.1 in
  Alcotest.(check int) "count" 50 (Array.length qs);
  Array.iter
    (fun (q : Vquery.t) ->
      Alcotest.(check bool) "height" true (Float.abs (q.yhi -. q.ylo -. 10.0) < 1e-9))
    qs;
  let ls = W.line_queries rng ~n:10 ~span:100.0 in
  Array.iter (fun q -> Alcotest.(check bool) "is line" true (Vquery.is_line q)) ls;
  let rs = W.ray_queries rng ~n:10 ~span:100.0 in
  Array.iter
    (fun (q : Vquery.t) ->
      Alcotest.(check bool) "one infinite end" true
        (q.ylo = neg_infinity || q.yhi = infinity))
    rs;
  let ms = W.mixed_queries rng ~n:30 ~span:100.0 ~selectivity:0.2 in
  Alcotest.(check int) "mixed count" 30 (Array.length ms)

let test_empty_requests () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "roads 0" 0 (Array.length (W.roads rng ~n:0 ~span:10.0));
  Alcotest.(check int) "grid 0" 0 (Array.length (W.grid_city rng ~n:0 ~span:10 ~max_len:5));
  Alcotest.(check int) "temporal 0" 0 (Array.length (W.temporal rng ~n:0 ~keys:3 ~horizon:10));
  Alcotest.(check int) "fans 0" 0 (Array.length (W.fans rng ~n:0 ~centers:2 ~span:10))

let suite =
  ( "workload",
    [
      Alcotest.test_case "query generators" `Quick test_query_generators;
      Alcotest.test_case "empty requests" `Quick test_empty_requests;
      qtest prop_roads_nct;
      qtest prop_uniform_nct;
      qtest prop_grid_city_nct_exact;
      qtest prop_temporal_nct_exact;
      qtest prop_fans_nct_exact;
      qtest prop_deterministic;
      qtest prop_ids_sequential;
      qtest prop_line_based_order;
    ] )
