lib/experiments/e02_pst_block_size.ml: Block_store E01_pst_scaling Harness Io_stats List Printf Rng Segdb_io Segdb_pst Segdb_util Segdb_workload Table
