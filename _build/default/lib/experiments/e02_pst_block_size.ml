(* E2 — the blocked PST's O(log_B n) dependence on the block size B. *)

open Segdb_io
open Segdb_util
module W = Segdb_workload.Workload
module Pst = Segdb_pst.Pst

let id = "e2"
let title = "E2: blocked PST query I/O vs block size B"
let validates = "Lemma 3: height and query cost shrink as log_B n"

let run (p : Harness.params) =
  let n = if p.quick then 1 lsl 13 else 1 lsl 16 in
  let vspan = 1000.0 and umax = 100.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (N = %d)" title n)
      ~columns:[ "B"; "height"; "mean io"; "max io"; "mean t"; "blocks" ]
  in
  let rng = Rng.create p.seed in
  let lsegs = W.line_based rng ~n ~vspan ~umax in
  let queries = E01_pst_scaling.queries_for (Rng.create (p.seed + 1)) ~vspan ~umax ~count:40 in
  List.iter
    (fun b ->
      let io = Io_stats.create () in
      let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
      let t = Pst.blocked ~node_capacity:b ~pool ~stats:io lsegs in
      let c = Harness.measure ~io ~queries ~run:(Pst.count t) in
      Table.add_row table
        ([ Table.cell_int b; Table.cell_int (Pst.height t) ]
        @ Harness.cost_cells c
        @ [ Table.cell_int (Pst.block_count t) ]))
    [ 16; 64; 256; 1024 ];
  [ Harness.Table table ]
