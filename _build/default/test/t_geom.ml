(* Geometry tests: exact predicates, segments, vertical queries, the
   line-based order lemma, and rotation transforms. *)

open Segdb_geom

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Predicates ---------------- *)

let ipoint_gen = QCheck.Gen.(pair (int_range (-50) 50) (int_range (-50) 50))
let iseg_gen = QCheck.Gen.(pair ipoint_gen ipoint_gen)

let iseg_print ((a, b), (c, d)) = Printf.sprintf "((%d,%d),(%d,%d))" a b c d

let test_orient_basic () =
  Alcotest.(check int) "left turn" 1 (Predicates.orient (0, 0) (1, 0) (1, 1));
  Alcotest.(check int) "right turn" (-1) (Predicates.orient (0, 0) (1, 0) (1, -1));
  Alcotest.(check int) "collinear" 0 (Predicates.orient (0, 0) (1, 1) (2, 2))

let test_crossing_cases () =
  let x = Predicates.crosses in
  (* proper crossing *)
  Alcotest.(check bool) "X crossing" true (x ((0, 0), (2, 2)) ((0, 2), (2, 0)));
  (* shared endpoint: touching, allowed *)
  Alcotest.(check bool) "shared endpoint" false (x ((0, 0), (2, 2)) ((2, 2), (4, 0)));
  (* T-touch: endpoint on interior, allowed *)
  Alcotest.(check bool) "T touch" false (x ((0, 0), (4, 0)) ((2, 0), (2, 3)));
  (* collinear overlap: crossing *)
  Alcotest.(check bool) "collinear overlap" true (x ((0, 0), (4, 0)) ((2, 0), (6, 0)));
  (* collinear single shared point: touching *)
  Alcotest.(check bool) "collinear point touch" false (x ((0, 0), (2, 0)) ((2, 0), (4, 0)));
  (* disjoint *)
  Alcotest.(check bool) "disjoint" false (x ((0, 0), (1, 0)) ((3, 3), (4, 4)))

let prop_orient_antisymmetric =
  QCheck.Test.make ~name:"orient antisymmetry" ~count:500
    (QCheck.make QCheck.Gen.(triple ipoint_gen ipoint_gen ipoint_gen))
    (fun (a, b, c) -> Predicates.orient a b c = -Predicates.orient b a c)

let prop_crosses_symmetric =
  QCheck.Test.make ~name:"crosses symmetric" ~count:500
    (QCheck.make ~print:(QCheck.Print.pair iseg_print iseg_print) QCheck.Gen.(pair iseg_gen iseg_gen))
    (fun (s1, s2) -> Predicates.crosses s1 s2 = Predicates.crosses s2 s1)

let prop_crosses_implies_intersect =
  QCheck.Test.make ~name:"crosses implies intersect" ~count:500
    (QCheck.make ~print:(QCheck.Print.pair iseg_print iseg_print) QCheck.Gen.(pair iseg_gen iseg_gen))
    (fun (s1, s2) -> (not (Predicates.crosses s1 s2)) || Predicates.intersect s1 s2)

(* ---------------- Segment / Vquery ---------------- *)

let test_segment_normalization () =
  let s = Segment.make ~id:1 (3.0, 1.0) (1.0, 2.0) in
  Alcotest.(check (float 0.0)) "x1 smaller" 1.0 s.Segment.x1;
  Alcotest.(check (float 0.0)) "y1 follows" 2.0 s.Segment.y1

let test_y_at () =
  let s = Segment.make (0.0, 0.0) (4.0, 8.0) in
  Alcotest.(check (float 1e-9)) "midpoint" 4.0 (Segment.y_at s 2.0);
  Alcotest.(check (float 1e-9)) "left end" 0.0 (Segment.y_at s 0.0)

let test_clip_x () =
  let s = Segment.make ~id:3 (0.0, 0.0) (10.0, 10.0) in
  (match Segment.clip_x s 2.0 5.0 with
  | Some c ->
      Alcotest.(check (float 1e-9)) "clip lo" 2.0 c.Segment.x1;
      Alcotest.(check (float 1e-9)) "clip lo y" 2.0 c.Segment.y1;
      Alcotest.(check (float 1e-9)) "clip hi" 5.0 c.Segment.x2;
      Alcotest.(check int) "id preserved" 3 c.Segment.id
  | None -> Alcotest.fail "clip should not be empty");
  Alcotest.(check bool) "disjoint clip" true (Segment.clip_x s 11.0 12.0 = None);
  let v = Segment.make (5.0, 0.0) (5.0, 3.0) in
  Alcotest.(check bool) "vertical inside kept" true (Segment.clip_x v 4.0 6.0 = Some v);
  Alcotest.(check bool) "vertical outside dropped" true (Segment.clip_x v 6.0 7.0 = None)

let test_vquery_matches () =
  let s = Segment.make (0.0, 0.0) (10.0, 10.0) in
  Alcotest.(check bool) "hit" true (Vquery.matches (Vquery.segment ~x:5.0 ~ylo:4.0 ~yhi:6.0) s);
  Alcotest.(check bool) "miss above" false
    (Vquery.matches (Vquery.segment ~x:5.0 ~ylo:6.0 ~yhi:9.0) s);
  Alcotest.(check bool) "ray" true (Vquery.matches (Vquery.ray_up ~x:5.0 ~ylo:1.0) s);
  Alcotest.(check bool) "line" true (Vquery.matches (Vquery.line ~x:5.0) s);
  Alcotest.(check bool) "outside x" false (Vquery.matches (Vquery.line ~x:11.0) s);
  (* touching endpoint counts *)
  Alcotest.(check bool) "touch endpoint" true
    (Vquery.matches (Vquery.segment ~x:0.0 ~ylo:0.0 ~yhi:0.0) s);
  (* vertical segment overlap *)
  let v = Segment.make (2.0, 1.0) (2.0, 5.0) in
  Alcotest.(check bool) "vertical overlap" true
    (Vquery.matches (Vquery.segment ~x:2.0 ~ylo:5.0 ~yhi:8.0) v);
  Alcotest.(check bool) "vertical disjoint" false
    (Vquery.matches (Vquery.segment ~x:2.0 ~ylo:5.5 ~yhi:8.0) v)

let test_vquery_invalid () =
  Alcotest.(check bool) "inverted range rejected" true
    (match Vquery.segment ~x:0.0 ~ylo:1.0 ~yhi:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------------- Lseg ---------------- *)

(* Certified-NCT line-based generator: base positions and slopes sorted
   the same way can never cross (v_j(u) - v_i(u) = (b_j - b_i) + (s_j -
   s_i) u > 0). Depths are arbitrary. *)
let nct_lsegs_gen =
  QCheck.Gen.(
    let* n = 1 -- 40 in
    let* bases = array_size (return n) (float_range (-100.0) 100.0) in
    let* slopes = array_size (return n) (float_range (-3.0) 3.0) in
    let* depths = array_size (return n) (float_range 0.1 50.0) in
    Array.sort compare bases;
    Array.sort compare slopes;
    return
      (Array.init n (fun i ->
           Lseg.make ~id:i ~base_v:bases.(i) ~far_u:depths.(i)
             ~far_v:(bases.(i) +. (slopes.(i) *. depths.(i)))
             ())))

let lseg_print (s : Lseg.t) =
  Printf.sprintf "L%d(b=%g,u=%g,v=%g)" s.Lseg.id s.Lseg.base_v s.Lseg.far_u s.Lseg.far_v

let nct_lsegs_arb = QCheck.make ~print:(QCheck.Print.array lseg_print) nct_lsegs_gen

let prop_order_lemma =
  QCheck.Test.make ~name:"NCT order lemma: key order = crossing order" ~count:300
    (QCheck.pair nct_lsegs_arb (QCheck.float_range 0.0 50.0))
    (fun (segs, uq) ->
      let crossing = Array.to_list segs |> List.filter (fun s -> Lseg.reaches s uq) in
      let sorted = List.sort Lseg.compare_key crossing in
      let rec monotone = function
        | a :: (b :: _ as rest) -> Lseg.cross_v a uq <= Lseg.cross_v b uq && monotone rest
        | _ -> true
      in
      monotone sorted)

let prop_lseg_roundtrip =
  QCheck.Test.make ~name:"lseg above_hline roundtrip" ~count:300 nct_lsegs_arb (fun segs ->
      let approx a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a) in
      Array.for_all
        (fun (s : Lseg.t) ->
          let plane = Lseg.to_segment_above ~base_y:2.0 s in
          let back = Lseg.above_hline ~base_y:2.0 plane in
          (* the height passes through base_y +. far_u -. base_y, which
             floats do not make exact *)
          back.Lseg.id = s.Lseg.id
          && approx back.Lseg.base_v s.Lseg.base_v
          && approx back.Lseg.far_u s.Lseg.far_u
          && approx back.Lseg.far_v s.Lseg.far_v)
        segs)

let prop_vline_parts_consistent =
  (* Splitting a plane segment at a vertical line and querying both
     parts at the line reproduces the original crossing point. *)
  QCheck.Test.make ~name:"left/right parts agree at the base line" ~count:300
    (QCheck.make
       QCheck.Gen.(
         quad (float_range (-50.0) 0.0) (float_range (-40.0) 40.0) (float_range 0.1 50.0)
           (float_range (-40.0) 40.0)))
    (fun (x1, y1, dx, y2) ->
      let s = Segment.make ~id:9 (x1, y1) (x1 +. dx +. 0.5, y2) in
      let base_x = x1 +. (0.25 *. dx) in
      let l = Lseg.left_of_vline ~base_x s and r = Lseg.right_of_vline ~base_x s in
      Float.abs (l.Lseg.base_v -. r.Lseg.base_v) < 1e-9
      && Float.abs (Lseg.cross_v l 0.0 -. Segment.y_at s base_x) < 1e-9)

let test_lseg_matches_basic () =
  (* segment from base 0 going straight up 10 deep *)
  let s = Lseg.make ~id:0 ~base_v:0.0 ~far_u:10.0 ~far_v:0.0 () in
  Alcotest.(check bool) "hit at depth 5" true
    (Lseg.matches (Lseg.query ~uq:5.0 ~vlo:(-1.0) ~vhi:1.0) s);
  Alcotest.(check bool) "miss beyond depth" false
    (Lseg.matches (Lseg.query ~uq:11.0 ~vlo:(-1.0) ~vhi:1.0) s);
  Alcotest.(check bool) "miss sideways" false
    (Lseg.matches (Lseg.query ~uq:5.0 ~vlo:1.0 ~vhi:2.0) s);
  Alcotest.(check bool) "touch at exact depth" true
    (Lseg.matches (Lseg.query ~uq:10.0 ~vlo:0.0 ~vhi:0.0) s)

let test_lseg_key_order_fan () =
  (* same base point: slope breaks the tie *)
  let a = Lseg.make ~id:1 ~base_v:0.0 ~far_u:10.0 ~far_v:(-5.0) () in
  let b = Lseg.make ~id:0 ~base_v:0.0 ~far_u:10.0 ~far_v:5.0 () in
  Alcotest.(check bool) "left-leaning first" true (Lseg.compare_key a b < 0)

(* ---------------- Transform ---------------- *)

let prop_rotation_to_vertical =
  QCheck.Test.make ~name:"to_vertical maps slope-m lines to vertical" ~count:300
    (QCheck.make QCheck.Gen.(triple (float_range (-5.0) 5.0) (float_range (-20.0) 20.0) (float_range (-20.0) 20.0)))
    (fun (m, x0, y0) ->
      let t = Transform.to_vertical ~slope:m in
      let p1 = (x0, y0) and p2 = (x0 +. 3.0, y0 +. (3.0 *. m)) in
      let x1, _ = Transform.point t p1 and x2, _ = Transform.point t p2 in
      Float.abs (x1 -. x2) < 1e-9 *. (1.0 +. Float.abs x1))

let prop_rotation_preserves_distance =
  QCheck.Test.make ~name:"rotation is rigid" ~count:300
    (QCheck.make QCheck.Gen.(triple (float_range (-3.0) 3.0) (float_range (-20.0) 20.0) (float_range (-20.0) 20.0)))
    (fun (angle, x, y) ->
      let t = Transform.rotation ~angle in
      let x', y' = Transform.point t (x, y) in
      Float.abs (sqrt ((x *. x) +. (y *. y)) -. sqrt ((x' *. x') +. (y' *. y'))) < 1e-9)

let prop_rotation_inverse =
  QCheck.Test.make ~name:"inverse undoes rotation" ~count:300
    (QCheck.make QCheck.Gen.(triple (float_range (-3.0) 3.0) (float_range (-20.0) 20.0) (float_range (-20.0) 20.0)))
    (fun (angle, x, y) ->
      let t = Transform.rotation ~angle in
      let x', y' = Transform.point (Transform.inverse t) (Transform.point t (x, y)) in
      Float.abs (x -. x') < 1e-9 && Float.abs (y -. y') < 1e-9)

let prop_sloped_query_matches =
  (* Intersections are invariant under the rotation: a sloped query
     against original segments equals the vertical query against rotated
     segments. Uses exact-ish tolerance by avoiding near-degenerate
     setups: query slope well away from segment slopes. *)
  QCheck.Test.make ~name:"sloped query reduces to vertical" ~count:200
    (QCheck.make QCheck.Gen.(pair (float_range (-2.0) 2.0) (list_size (1 -- 20) (quad (float_range (-10.) 10.) (float_range (-10.) 10.) (float_range 3.0 10.0) (float_range (-1.0) 1.0)))))
    (fun (m, raw) ->
      let t = Transform.to_vertical ~slope:m in
      let segs =
        List.mapi
          (fun i (x, y, len, dir) ->
            (* keep segment direction far from the query slope *)
            let dx = 1.0 and dy = m +. 2.0 +. dir in
            let nx = len /. sqrt ((dx *. dx) +. (dy *. dy)) in
            Segment.make ~id:i (x, y) (x +. (dx *. nx), y +. (dy *. nx)))
          raw
      in
      let p1 = (0.0, 0.0) and p2 = (4.0, 4.0 *. m) in
      let q = Transform.vquery_of_segment t p1 p2 in
      List.for_all
        (fun s ->
          let rotated = Transform.segment t s in
          (* Intersection parameters of the supporting lines: s(ts) =
             a + ts*(b-a), q(tq) = p1 + tq*(p2-p1). *)
          let ax, ay = (s.Segment.x1, s.Segment.y1) in
          let bx, by = (s.Segment.x2, s.Segment.y2) in
          let qx1, qy1 = p1 and qx2, qy2 = p2 in
          let dxs = bx -. ax and dys = by -. ay in
          let dxq = qx2 -. qx1 and dyq = qy2 -. qy1 in
          let det = (dxs *. dyq) -. (dys *. dxq) in
          if Float.abs det < 1e-6 then true (* near-parallel: skip *)
          else begin
            let ts = (((qx1 -. ax) *. dyq) -. ((qy1 -. ay) *. dxq)) /. det in
            let tq = (((qx1 -. ax) *. dys) -. ((qy1 -. ay) *. dxs)) /. det in
            let near_boundary v = Float.abs v < 1e-6 || Float.abs (v -. 1.0) < 1e-6 in
            if near_boundary ts || near_boundary tq then true (* touching: skip *)
            else begin
              let direct = 0.0 < ts && ts < 1.0 && 0.0 < tq && tq < 1.0 in
              direct = Vquery.matches q rotated
            end
          end)
        segs)

let suite =
  ( "geom",
    [
      Alcotest.test_case "orient basic" `Quick test_orient_basic;
      Alcotest.test_case "crossing cases" `Quick test_crossing_cases;
      Alcotest.test_case "segment normalization" `Quick test_segment_normalization;
      Alcotest.test_case "y_at" `Quick test_y_at;
      Alcotest.test_case "clip_x" `Quick test_clip_x;
      Alcotest.test_case "vquery matches" `Quick test_vquery_matches;
      Alcotest.test_case "vquery invalid" `Quick test_vquery_invalid;
      Alcotest.test_case "lseg matches basic" `Quick test_lseg_matches_basic;
      Alcotest.test_case "lseg fan order" `Quick test_lseg_key_order_fan;
      qtest prop_orient_antisymmetric;
      qtest prop_crosses_symmetric;
      qtest prop_crosses_implies_intersect;
      qtest prop_order_lemma;
      qtest prop_lseg_roundtrip;
      qtest prop_vline_parts_consistent;
      qtest prop_rotation_to_vertical;
      qtest prop_rotation_preserves_distance;
      qtest prop_rotation_inverse;
      qtest prop_sloped_query_matches;
    ] )
