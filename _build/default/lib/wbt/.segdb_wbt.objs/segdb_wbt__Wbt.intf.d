lib/wbt/wbt.mli:
