(** Solution 2 (Section 4, Theorem 2): the improved two-level structure.

    First level: an external interval tree with branching [b = B/4]
    balanced over endpoint quantiles, so the height drops from
    O(log n) to O(log_B n). A node's [b] boundaries cut its x-range
    into slabs; every segment stored at the node is split (Figure 6)
    into at most two *short* fragments — line-based on the first/last
    boundary it crosses, kept in per-boundary external PSTs [L_i] /
    [R_i] — and one *long* fragment spanning whole slabs, kept in the
    slab segment tree [G] with fractional cascading (Section 4.3).
    Segments lying on a boundary go to per-boundary interval trees
    [C_i]. Segments inside one slab recurse.

    A query visits one node per level, querying two PSTs and walking
    one root-to-leaf path of [G] — cascaded, so only the topmost [G]
    level pays a list search. Storage O(n log2 B) from the [G]
    multiplicity; query O(log_B n (log_B n + log2 B + IL*(B)) + t);
    insertions are semi-dynamic per the paper, via PST push-down,
    [C_i]/[G] doubling rebuilds and weight-balanced first-level
    rebuilds (DESIGN.md lists the substitutions). *)

include Vs_index.S

val height : t -> int
val check_invariants : t -> bool

val cascade_counters : t -> int * int
(** (guided levels, fallback searches) accumulated across all [G]
    structures — the fractional-cascading effectiveness measure of
    experiment E5. *)
