lib/geom/predicates.mli: Segment
