open Segdb_io
open Segdb_geom

type ivl = { lo : float; hi : float; seg : Segment.t }

(* Keys for the slab lists: (coordinate, id) so equal coordinates stay
   distinct. Right lists are keyed by (-hi, id) so that an ascending
   scan sees decreasing hi. *)
module FKey = struct
  type t = float * int

  let compare (a : t) (b : t) = compare a b
end

module Blist = Segdb_btree.Bplus_tree.Make (FKey) (struct
  type t = ivl
end)

module Mids = Map.Make (Int)

type node =
  | Leaf of ivl array
  | Inner of {
      seps : float array; (* fanout-1 slab boundaries, ascending *)
      kids : Block_store.addr array; (* fanout children, null allowed *)
      lefts : Blist.t option array; (* per slab, keyed (lo, id) *)
      rights : Blist.t option array; (* per slab, keyed (-hi, id) *)
      mids : Blist.t Mids.t; (* multislab lists, key = i * fanout + j *)
    }

module Store = Block_store.Make (struct
  type t = node
end)

type t = {
  store : Store.t;
  pool : Block_store.Pool.t;
  io : Io_stats.t;
  fanout : int;
  leaf_cap : int;
  starts : Blist.t; (* every interval, keyed (lo, id): size, iteration,
                       rebuild collection, and overlap range scans *)
  mutable root : Block_store.addr;
  mutable built_size : int; (* size at the last backbone (re)build *)
}

let size t = Blist.size t.starts

let list_fanout t = max 8 t.leaf_cap

let new_list t = Blist.create ~fanout:(list_fanout t) ~pool:t.pool ~stats:t.io ()

(* Number of separators <= x: the slab index of x. *)
let slab_of seps x =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if seps.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let mid_key t i j = (i * t.fanout) + j

(* ---------------- construction ---------------- *)

(* Quantile boundaries over the multiset of endpoints of [ivls]. *)
let boundaries fanout ivls =
  let pts = Array.make (2 * Array.length ivls) 0.0 in
  Array.iteri
    (fun i iv ->
      pts.(2 * i) <- iv.lo;
      pts.((2 * i) + 1) <- iv.hi)
    ivls;
  Array.sort compare pts;
  let m = Array.length pts in
  Array.init (fanout - 1) (fun i ->
      let idx = (i + 1) * m / fanout in
      pts.(min idx (m - 1)))

let rec build_rec t (ivls : ivl array) : Block_store.addr =
  let m = Array.length ivls in
  if m = 0 then Block_store.null
  else if m <= t.leaf_cap then Store.alloc t.store (Leaf ivls)
  else begin
    let seps = boundaries t.fanout ivls in
    let here = ref [] in
    let below = Array.make t.fanout [] in
    Array.iter
      (fun iv ->
        let sl = slab_of seps iv.lo and sh = slab_of seps iv.hi in
        if sl <> sh then here := iv :: !here else below.(sl) <- iv :: below.(sl))
      ivls;
    (* Degenerate value distribution: quantiles failed to separate
       anything; fall back to an oversized leaf. *)
    if Array.exists (fun l -> List.length l = m) below then Store.alloc t.store (Leaf ivls)
    else begin
      let lefts = Array.make t.fanout None and rights = Array.make t.fanout None in
      let mids = ref Mids.empty in
      let get_left k =
        match lefts.(k) with
        | Some l -> l
        | None ->
            let l = new_list t in
            lefts.(k) <- Some l;
            l
      and get_right k =
        match rights.(k) with
        | Some l -> l
        | None ->
            let l = new_list t in
            rights.(k) <- Some l;
            l
      and get_mid i j =
        match Mids.find_opt (mid_key t i j) !mids with
        | Some l -> l
        | None ->
            let l = new_list t in
            mids := Mids.add (mid_key t i j) l !mids;
            l
      in
      List.iter
        (fun iv ->
          let sl = slab_of seps iv.lo and sh = slab_of seps iv.hi in
          Blist.insert (get_left sl) (iv.lo, iv.seg.Segment.id) iv;
          Blist.insert (get_right sh) (-.iv.hi, iv.seg.Segment.id) iv;
          if sh > sl + 1 then Blist.insert (get_mid (sl + 1) (sh - 1)) (iv.lo, iv.seg.Segment.id) iv)
        !here;
      let kids = Array.map (fun l -> build_rec t (Array.of_list l)) below in
      Store.alloc t.store (Inner { seps; kids; lefts; rights; mids = !mids })
    end
  end

let build ?(fanout = 8) ?(leaf_capacity = 64) ~pool ~stats ivls =
  if fanout < 2 then invalid_arg "Interval_tree.build: fanout must be >= 2";
  if leaf_capacity < 1 then invalid_arg "Interval_tree.build: leaf_capacity must be >= 1";
  Array.iter
    (fun iv -> if iv.lo > iv.hi then invalid_arg "Interval_tree.build: interval with lo > hi")
    ivls;
  let store = Store.create ~name:"itree" ~pool ~stats () in
  let starts = Blist.create ~fanout:(max 8 leaf_capacity) ~pool ~stats () in
  let t =
    {
      store;
      pool;
      io = stats;
      fanout;
      leaf_cap = leaf_capacity;
      starts;
      root = Block_store.null;
      built_size = Array.length ivls;
    }
  in
  Array.iter (fun iv -> Blist.insert t.starts (iv.lo, iv.seg.Segment.id) iv) ivls;
  t.root <- build_rec t (Array.copy ivls);
  t

(* ---------------- queries ---------------- *)

let scan_list_while list ~stop ~f =
  match list with
  | None -> ()
  | Some l ->
      Blist.iter_from l (neg_infinity, min_int) (fun _ iv ->
          if stop iv then `Stop
          else begin
            f iv;
            `Continue
          end)

let report_all list ~f =
  match list with
  | None -> ()
  | Some l -> Blist.iter_range l ~lo:None ~hi:None (fun _ iv -> f iv)

let rec stab_rec t addr x ~f =
  if addr <> Block_store.null then
    match Store.read t.store addr with
    | Leaf ivls -> Array.iter (fun iv -> if iv.lo <= x && x <= iv.hi then f iv) ivls
    | Inner { seps; kids; lefts; rights; mids } ->
        let k = slab_of seps x in
        (* left list k: intervals starting in slab k and leaving it
           rightward; they contain x iff lo <= x *)
        scan_list_while lefts.(k) ~stop:(fun iv -> iv.lo > x) ~f;
        (* right list k: intervals ending in slab k, coming from the
           left; they contain x iff hi >= x *)
        scan_list_while rights.(k) ~stop:(fun iv -> iv.hi < x) ~f;
        (* multislab lists fully covering slab k *)
        Mids.iter
          (fun key l ->
            let i = key / t.fanout and j = key mod t.fanout in
            if i <= k && k <= j then report_all (Some l) ~f)
          mids;
        stab_rec t kids.(k) x ~f

let stab t x ~f = Probe.span t.io "itree.stab" @@ fun () -> stab_rec t t.root x ~f

let overlap t ~lo ~hi ~f =
  if lo > hi then invalid_arg "Interval_tree.overlap: lo > hi";
  Probe.span t.io "itree.overlap" @@ fun () ->
  stab t lo ~f;
  (* intervals starting strictly inside (lo, hi] overlap but do not
     contain lo *)
  Blist.iter_from t.starts (lo, max_int) (fun (start, _) iv ->
      if start > hi then `Stop
      else begin
        f iv;
        `Continue
      end)

let stab_list t x =
  let acc = ref [] in
  stab t x ~f:(fun iv -> acc := iv :: !acc);
  !acc

let overlap_list t ~lo ~hi =
  let acc = ref [] in
  overlap t ~lo ~hi ~f:(fun iv -> acc := iv :: !acc);
  !acc

let iter t f = Blist.iter_range t.starts ~lo:None ~hi:None (fun _ iv -> f iv)

(* ---------------- insertion ---------------- *)

let rec free_rec t addr =
  if addr <> Block_store.null then begin
    (match Store.read t.store addr with
    | Leaf _ -> ()
    | Inner { kids; _ } -> Array.iter (free_rec t) kids);
    Store.free t.store addr
  end

let rebuild t =
  let acc = ref [] in
  iter t (fun iv -> acc := iv :: !acc);
  free_rec t t.root;
  let arr = Array.of_list !acc in
  t.root <- build_rec t arr;
  t.built_size <- Array.length arr

let rec insert_rec t addr (iv : ivl) : Block_store.addr =
  if addr = Block_store.null then Store.alloc t.store (Leaf [| iv |])
  else
    match Store.read t.store addr with
    | Leaf ivls ->
        let ivls = Array.append ivls [| iv |] in
        if Array.length ivls <= t.leaf_cap then begin
          Store.write t.store addr (Leaf ivls);
          addr
        end
        else begin
          (* split the leaf by rebuilding it as a subtree *)
          Store.free t.store addr;
          build_rec t ivls
        end
    | Inner ({ seps; kids; lefts; rights; mids } as n) ->
        let sl = slab_of seps iv.lo and sh = slab_of seps iv.hi in
        if sl <> sh then begin
          let dirty = ref false in
          (* list creation works on copies so the node payload is
             replaced atomically by the write-back below *)
          let lefts = Array.copy lefts and rights = Array.copy rights in
          let mids = ref mids in
          let get arr slot =
            match arr.(slot) with
            | Some l -> l
            | None ->
                let l = new_list t in
                arr.(slot) <- Some l;
                dirty := true;
                l
          in
          let get_mid i j =
            match Mids.find_opt (mid_key t i j) !mids with
            | Some l -> l
            | None ->
                let l = new_list t in
                mids := Mids.add (mid_key t i j) l !mids;
                dirty := true;
                l
          in
          Blist.insert (get lefts sl) (iv.lo, iv.seg.Segment.id) iv;
          Blist.insert (get rights sh) (-.iv.hi, iv.seg.Segment.id) iv;
          if sh > sl + 1 then
            Blist.insert (get_mid (sl + 1) (sh - 1)) (iv.lo, iv.seg.Segment.id) iv;
          if !dirty then Store.write t.store addr (Inner { n with lefts; rights; mids = !mids });
          addr
        end
        else begin
          let kid = insert_rec t kids.(sl) iv in
          if kid <> kids.(sl) then begin
            let kids = Array.copy kids in
            kids.(sl) <- kid;
            Store.write t.store addr (Inner { n with kids })
          end;
          addr
        end

let insert t iv =
  if iv.lo > iv.hi then invalid_arg "Interval_tree.insert: interval with lo > hi";
  Blist.insert t.starts (iv.lo, iv.seg.Segment.id) iv;
  t.root <- insert_rec t t.root iv;
  (* doubling rebuild keeps the backbone balanced without a
     weight-balanced B-tree (see DESIGN.md) *)
  if size t > (2 * t.built_size) + t.leaf_cap then rebuild t

(* ---------------- metrics / invariants ---------------- *)

let rec height_rec t addr =
  if addr = Block_store.null then 0
  else
    match Store.read t.store addr with
    | Leaf _ -> 1
    | Inner { kids; _ } -> 1 + Array.fold_left (fun acc k -> max acc (height_rec t k)) 0 kids

let height t = height_rec t t.root

let rec blocks_rec t addr =
  if addr = Block_store.null then 0
  else
    match Store.read t.store addr with
    | Leaf _ -> 1
    | Inner { kids; lefts; rights; mids; _ } ->
        let lists =
          Array.fold_left
            (fun acc l -> match l with Some b -> acc + Blist.block_count b | None -> acc)
            0 lefts
          + Array.fold_left
              (fun acc l -> match l with Some b -> acc + Blist.block_count b | None -> acc)
              0 rights
          + Mids.fold (fun _ b acc -> acc + Blist.block_count b) mids 0
        in
        1 + lists + Array.fold_left (fun acc k -> acc + blocks_rec t k) 0 kids

let block_count t = blocks_rec t t.root + Blist.block_count t.starts

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let seen = ref 0 in
  let rec go addr ~lo ~hi =
    if addr <> Block_store.null then
      match Store.read t.store addr with
      | Leaf ivls ->
          seen := !seen + Array.length ivls;
          Array.iter
            (fun iv ->
              if iv.lo > iv.hi then fail ();
              (match lo with Some b -> if iv.lo < b then fail () | None -> ());
              match hi with Some b -> if iv.hi > b then fail () | None -> ())
            ivls
      | Inner { seps; kids; lefts; rights; mids } ->
          for i = 1 to Array.length seps - 1 do
            if seps.(i - 1) > seps.(i) then fail ()
          done;
          let in_lists = Hashtbl.create 16 in
          Array.iteri
            (fun k l ->
              match l with
              | None -> ()
              | Some b ->
                  if not (Blist.check_invariants b) then fail ();
                  Blist.iter_range b ~lo:None ~hi:None (fun _ iv ->
                      if slab_of seps iv.lo <> k then fail ();
                      if slab_of seps iv.hi = k then fail ();
                      Hashtbl.replace in_lists iv.seg.Segment.id ()))
            lefts;
          let right_count = ref 0 in
          Array.iteri
            (fun k l ->
              match l with
              | None -> ()
              | Some b ->
                  Blist.iter_range b ~lo:None ~hi:None (fun _ iv ->
                      incr right_count;
                      if slab_of seps iv.hi <> k then fail ();
                      if not (Hashtbl.mem in_lists iv.seg.Segment.id) then fail ()))
            rights;
          if Hashtbl.length in_lists <> !right_count then fail ();
          Mids.iter
            (fun key b ->
              let i = key / t.fanout and j = key mod t.fanout in
              if not (i <= j && i >= 1 && j <= t.fanout - 1) then fail ();
              Blist.iter_range b ~lo:None ~hi:None (fun _ iv ->
                  if slab_of seps iv.lo + 1 <> i || slab_of seps iv.hi - 1 <> j then fail ();
                  if not (Hashtbl.mem in_lists iv.seg.Segment.id) then fail ()))
            mids;
          seen := !seen + Hashtbl.length in_lists;
          Array.iteri
            (fun k kid ->
              let klo = if k = 0 then None else Some seps.(k - 1) in
              let khi = if k = Array.length seps then None else Some seps.(k) in
              ignore khi;
              (* children hold intervals whose both endpoints fall in
                 slab k; bounds via slab recomputation instead of
                 open/closed fiddling *)
              go kid ~lo:klo ~hi:(if k = Array.length seps then None else Some seps.(k)))
            kids
  in
  go t.root ~lo:None ~hi:None;
  if !seen <> size t then fail ();
  !ok

(* ---------------- deletion ---------------- *)

let delete t (iv : ivl) =
  let key = (iv.lo, iv.seg.Segment.id) in
  if not (Blist.delete t.starts key) then false
  else begin
    let rec del addr =
      if addr = Block_store.null then false
      else
        match Store.read t.store addr with
        | Leaf ivls -> (
            match
              Array.find_index
                (fun c -> c.seg.Segment.id = iv.seg.Segment.id && c.lo = iv.lo && c.hi = iv.hi)
                ivls
            with
            | Some i ->
                let out = Array.make (Array.length ivls - 1) iv in
                Array.blit ivls 0 out 0 i;
                Array.blit ivls (i + 1) out i (Array.length ivls - 1 - i);
                Store.write t.store addr (Leaf out);
                true
            | None -> false)
        | Inner { seps; kids; lefts; rights; mids } ->
            let sl = slab_of seps iv.lo and sh = slab_of seps iv.hi in
            if sl <> sh then begin
              let ok = ref true in
              (match lefts.(sl) with
              | Some l -> if not (Blist.delete l key) then ok := false
              | None -> ok := false);
              (match rights.(sh) with
              | Some l -> if not (Blist.delete l (-.iv.hi, iv.seg.Segment.id)) then ok := false
              | None -> ok := false);
              if sh > sl + 1 then (
                match Mids.find_opt (mid_key t (sl + 1) (sh - 1)) mids with
                | Some l -> if not (Blist.delete l key) then ok := false
                | None -> ok := false);
              !ok
            end
            else del kids.(sl)
    in
    ignore (del t.root);
    true
  end
