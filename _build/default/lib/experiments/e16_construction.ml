(* E16 — construction costs. The paper's structures are built over
   sorted endpoint lists; the EM sorting bound O((n/B) log_{M/B} (n/B))
   is the floor. We measure (a) the external merge sort itself against
   its predicted pass structure, and (b) the I/O actually charged while
   bulk-building each index (allocation write-back under the small
   pool). *)

open Segdb_io
open Segdb_util
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb

module Fsort = Ext_sort.Make (struct
  type t = float

  let compare = Float.compare
end)

let id = "e16"
let title = "E16: construction costs — external sort and index builds"
let validates = "EM sorting bound as the build floor; builds are linear-ish in n/B"

let run (p : Harness.params) =
  let t1 =
    Table.create ~title:(title ^ " — external merge sort (B = 16, M = 4 blocks)")
      ~columns:[ "n"; "blocks"; "passes"; "io"; "io / 2*blocks" ]
  in
  let sweep = if p.quick then [ 1 lsl 10; 1 lsl 12; 1 lsl 14 ] else Harness.sweep_n p in
  List.iter
    (fun n ->
      let block = 16 and mem = 4 in
      let pool = Block_store.Pool.create ~capacity:mem in
      let io = Io_stats.create () in
      let rng = Rng.create p.seed in
      let arr = Array.init n (fun _ -> Rng.float rng 1e6) in
      ignore (Fsort.sort ~pool ~stats:io ~block ~memory_blocks:mem arr);
      let blocks = (n + block - 1) / block in
      let passes = Fsort.passes ~block ~memory_blocks:mem n in
      Table.add_row t1
        [
          Table.cell_int n;
          Table.cell_int blocks;
          Table.cell_int passes;
          Table.cell_int (Io_stats.total_io io);
          Table.cell_float ~decimals:2
            (float_of_int (Io_stats.total_io io) /. float_of_int (2 * blocks));
        ])
    sweep;
  let t2 =
    Table.create ~title:"E16b: index build I/O (charged during bulk construction)"
      ~columns:[ "n"; "n/B"; "naive"; "rtree"; "sol1"; "sol2" ]
  in
  List.iter
    (fun n ->
      let segs = W.uniform (Rng.create p.seed) ~n ~span:1000.0 in
      let build_io backend =
        let db = Backends.build backend segs in
        Table.cell_int (Io_stats.total_io (Db.io db))
      in
      Table.add_row t2
        [
          Table.cell_int n;
          Table.cell_int (n / Harness.block);
          build_io "naive";
          build_io "rtree";
          build_io "solution1";
          build_io "solution2";
        ])
    sweep;
  [ Harness.Table t1; Harness.Table t2 ]
