(** Plane segments with stable identities.

    A segment database stores NCT segments: mutually non-crossing but
    possibly touching. Segments are normalized at construction so that
    [(x1, y1)] is the lexicographically smaller endpoint; [id] survives
    fragment splitting inside the indexes, so query answers can be
    reported in terms of the original segments. *)

type t = private { x1 : float; y1 : float; x2 : float; y2 : float; id : int }

val make : ?id:int -> float * float -> float * float -> t
(** [make (x1, y1) (x2, y2)] normalizes endpoint order. The default [id]
    is [-1] (useful for throwaway geometry); indexes require ids to be
    distinct, which {!Segdb_workload} generators and [with_id] ensure. *)

val with_id : t -> int -> t

val equal : t -> t -> bool
(** Geometric and id equality. *)

val compare_id : t -> t -> int

val is_vertical : t -> bool
val is_point : t -> bool

val min_x : t -> float
val max_x : t -> float
val min_y : t -> float
val max_y : t -> float

val spans_x : t -> float -> bool
(** [spans_x s x] iff the closed x-extent of [s] contains [x]. *)

val slope : t -> float
(** [dy/dx]; [infinity] on vertical segments. *)

val y_at : t -> float -> float
(** Ordinate of [s] at abscissa [x], assuming [spans_x s x] and [s] not
    vertical. On a vertical segment returns its lower ordinate. *)

val pp : Format.formatter -> t -> unit

val clip_x : t -> float -> float -> t option
(** [clip_x s lo hi] is the part of [s] with abscissa in [\[lo, hi\]]
    (same id), or [None] if the intersection is empty. Vertical segments
    are kept iff their abscissa lies in range. *)
