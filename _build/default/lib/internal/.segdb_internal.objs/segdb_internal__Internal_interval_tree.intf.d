lib/internal/internal_interval_tree.mli: Segdb_geom Segment
