lib/experiments/e03_output_sensitivity.ml: Array Block_store Harness Io_stats List Lseg Printf Rng Segdb_geom Segdb_io Segdb_pst Segdb_util Segdb_workload Table
