(** The binary wire protocol.

    Every message is one {e frame}:

    {v
      len u32 | crc32(payload) u32 | payload (len bytes)
      payload = tag u8 | body            (little-endian throughout)
    v}

    — the same length-prefix + CRC-32 discipline as the WAL's frames,
    built on {!Segdb_io.Codec} and {!Segdb_io.Crc}. The CRC guards the
    payload, so a flipped bit on the wire surfaces as {!Crc_mismatch}
    rather than a garbage decode; the length prefix is bounded by
    {!max_frame}, so a corrupted header cannot make a peer allocate or
    wait for gigabytes.

    Decoding is total: malformed input of any shape maps to a typed
    {!protocol_error} — never an exception, never a hang. The blocking
    fd helpers ({!send}, {!recv}) run through the [net.write]/[net.read]
    failpoint sites, so the fault matrix covers the socket path. *)

open Segdb_geom

(** What a client can ask. Queries are read-only and therefore safe to
    retry; [Shutdown] requests a graceful drain.

    Tags added after the first release ([Batch_ex], [Trace_fetch],
    [Slowlog]) rely on the unknown-tag rule for compatibility: an old
    server answers them [Error (Bad_request, _)] and keeps the stream
    up, so a new client talking to an old peer degrades instead of
    wedging. *)
type request =
  | Ping
  | Query of Vquery.t
  | Count of Vquery.t
  | Batch of Vquery.t array
  | Stats of [ `Text | `Json | `Prometheus ]
  | Shutdown
  | Batch_ex of { request_id : int; trace : bool; queries : Vquery.t array }
      (** [Batch] plus observability: the client-generated request id
          is carried into every span the server records while serving
          it, and [trace] asks the server to bracket execution in an
          ["exec.batch"] span. Answered with {!Batch_ids}. *)
  | Trace_fetch of { request_id : int }
      (** Return the server's retained trace events for one request
          (as {!Trace_events}) — how a client reassembles the full
          client→server→storage timeline after a traced batch. *)
  | Slowlog of [ `Text | `Json ]
      (** Dump the server's slow-query log (as {!Slowlog_payload}). *)
  | Insert of Segment.t
      (** Commit one insert through the primary (answered {!Applied}).
          Applied idempotently, so a replay after a torn response is a
          no-op — which is what makes a write safe under the client's
          retry policy. A replica answers [Error (Not_primary, _)]. *)
  | Delete of Segment.t
      (** Commit one delete (full segment: id + geometry) — see
          {!Insert}. *)
  | Repl_subscribe of { epoch : int; from_lsn : int }
      (** A replica joins the primary's replication stream from its
          applied LSN, carrying the highest epoch it has seen. The
          primary answers {!Repl_records} when its in-memory tail still
          covers [from_lsn] at the same epoch, {!Repl_snapshot}
          (full-state catch-up) otherwise, and [Error (Fenced, _)] when
          [epoch] is {e newer} than its own — a primary that has been
          superseded must not stream stale history. After the answer
          the connection stays subscribed: new records are pushed as
          further {!Repl_records} frames. *)
  | Repl_ack of { epoch : int; lsn : int }
      (** The replica's applied-prefix acknowledgement, sent after each
          applied batch. Fire-and-forget (no response) unless the epoch
          is stale, which is answered [Error (Fenced, _)]. *)
  | Repl_status
      (** Replication introspection (answered {!Repl_status_payload}):
          role, epoch, committed LSN, and per-peer acknowledged LSNs —
          what the CLI's [repl-status] prints and CI derives replica
          lag from. *)
  | Promote of { epoch : int }
      (** Turn a replica into a writable primary at [epoch] (0 picks
          [current + 1]). Fenced: an epoch at or below the node's
          current one is refused, and promoting an existing primary is
          an idempotent no-op answered with its current epoch. *)

(** Typed failure channel carried in {!Error} responses. The split
    matters to the client's retry policy: [Overloaded] and
    [Corrupt_frame] are transient (retry with backoff), the rest are
    answers. *)
type error_code =
  | Overloaded  (** the bounded request queue was full — back off *)
  | Deadline  (** the request sat past its deadline; dropped unexecuted *)
  | Bad_request  (** a well-framed payload that does not decode *)
  | Corrupt_frame  (** framing-level damage: CRC mismatch, truncation,
                       oversized length — the stream is not trustworthy,
                       the server closes it, the client should retry *)
  | Server_error  (** the handler raised; message carries the details *)
  | Shutting_down  (** draining; no new work accepted *)
  | Not_primary
      (** a write or subscribe reached a replica — failover-able: a
          multi-endpoint client rotates to the next endpoint *)
  | Fenced
      (** the frame's epoch is stale (or, for a subscribe, newer than
          the answering node's): a revived stale primary is refused,
          not obeyed — definitive, never retried *)

(** One subscribed replica as the primary sees it: how far it has
    acknowledged, and how far the primary has pushed to it. The gap
    [sent_lsn - acked_lsn] is the in-flight window; [lsn - acked_lsn]
    (against the enclosing status) is its replication lag. *)
type repl_peer = { peer : string; acked_lsn : int; sent_lsn : int }

(** One node's replication standing, as answered to {!Repl_status}.

    The [Repl_status_payload] body changed shape in the monitoring
    release (it gained [progress_ms] and per-peer sent cursors) with no
    version negotiation: primaries, replicas, clients and the CLI are
    built from one tree and deployed together. A mixed-version pair
    decodes the old body as [Error (Bad_request, _)] / [Malformed] and
    keeps the stream up — status introspection degrades, replication
    itself does not touch this frame. *)
type repl_status = {
  role : string;  (** ["primary"] or ["replica"] *)
  epoch : int;
  lsn : int;  (** committed (primary) / applied (replica) LSN *)
  progress_ms : int;
      (** milliseconds since the last sign of replication life (commit,
          ack, resync, or — on a replica — any upstream frame); the
          staleness signal behind [/healthz]'s replica-stall rule *)
  peers : repl_peer list;
      (** on a primary: every subscribed replica's cursors *)
}

type response =
  | Pong
  | Ids of { ids : int list; complete : bool; faults : string list }
      (** sorted ids; [complete]/[faults] mirror {!Segdb_core.Segdb.Degraded} *)
  | Counted of int
  | Batch_ids of { results : int list array; complete : bool; faults : string list }
      (** element [i] is exactly [Segdb.query_ids db qs.(i)], sorted *)
  | Stats_payload of string
  | Error of error_code * string
  | Shutdown_ack
  | Trace_events of Segdb_obs.Trace.event list
      (** A {!Trace_fetch} answer: the server's retained events for
          the requested id, in recording order. Empty when
          observability was off or the ring wrapped past them. *)
  | Slowlog_payload of string
      (** A {!Slowlog} answer, pre-rendered in the requested format. *)
  | Applied of { lsn : int; changed : bool }
      (** A write landed: the primary's committed LSN after it, and
          whether the index changed ([false] = idempotent replay). *)
  | Repl_records of { epoch : int; from_lsn : int; records : string list }
      (** A contiguous run of WAL records starting at [from_lsn], in
          commit order; [records] are opaque {!Segdb_core.Segdb.op}
          encodings. Pushed to every subscribed replica as writes
          land. *)
  | Repl_snapshot of { epoch : int; lsn : int; segments : Segment.t array }
      (** Full-state catch-up: the primary's entire segment set as of
          [lsn]. Sent when the subscriber's [from_lsn] is no longer
          covered by the primary's in-memory tail, or when its epoch
          differs (divergent history is discarded, not merged). *)
  | Repl_status_payload of repl_status
  | Promoted of { epoch : int }

type protocol_error =
  | Truncated  (** the stream ended mid-frame *)
  | Oversized of int  (** length prefix beyond {!max_frame} *)
  | Crc_mismatch
  | Unknown_tag of int
  | Malformed of string  (** intact frame whose body does not decode *)

val max_frame : int
(** Hard ceiling on a payload length (16 MiB). *)

val header_bytes : int
(** Frame header size: 8. *)

val pp_protocol_error : Format.formatter -> protocol_error -> unit
val protocol_error_to_string : protocol_error -> string
val error_code_to_string : error_code -> string

(** {1 Pure encode/decode} *)

val encode_request : request -> string
(** The complete frame (header + payload). *)

val encode_response : response -> string

val decode_request : string -> (request, protocol_error) result
(** Over a CRC-verified payload (no header). *)

val decode_response : string -> (response, protocol_error) result

val decode_header : string -> (int * int, protocol_error) result
(** [(payload_len, crc)] from the first {!header_bytes} bytes. *)

val check_payload : crc:int -> string -> (string, protocol_error) result

(** {1 Blocking fd transport} *)

val send : Unix.file_descr -> string -> unit
(** Writes a pre-encoded frame through {!Segdb_io.Failpoint.Io.send_all}
    ([net.write] site). Raises [Unix.Unix_error] on connection death. *)

val recv : ?timeout:float -> Unix.file_descr -> (string, protocol_error) result
(** Reads one frame and returns its CRC-verified payload. [Truncated]
    on end-of-stream, [Oversized]/[Crc_mismatch] per the header. With
    [timeout] (seconds), raises [Unix.Unix_error (ETIMEDOUT, _, _)] if
    the frame does not complete in time — the client treats that as a
    transient transport failure. Site: [net.read]. *)
