test/t_sweep.ml: Alcotest Array List Predicates QCheck QCheck_alcotest Segdb_geom Segdb_util Segdb_workload Segment Sweep
