(* Segment file format round-trips. *)

open Segdb_geom
module Seg_file = Segdb_core.Seg_file
module W = Segdb_workload.Workload

let qtest = QCheck_alcotest.to_alcotest

let prop_roundtrip =
  QCheck.Test.make ~name:"seg file round-trip" ~count:50 (QCheck.make QCheck.Gen.(0 -- 5000))
    (fun seed ->
      let segs = W.roads (Segdb_util.Rng.create seed) ~n:50 ~span:100.0 in
      let path = Filename.temp_file "segdb" ".seg" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Seg_file.save path segs;
          let back = Seg_file.load path in
          Array.length back = Array.length segs
          && Array.for_all2 Segment.equal segs back))

let test_malformed () =
  let path = Filename.temp_file "segdb" ".seg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# comment\n\n1 2 3\n";
      close_out oc;
      match Seg_file.load path with
      | exception Failure msg ->
          Alcotest.(check bool) "line number in error" true
            (String.length msg > 0 && String.contains msg '3')
      | _ -> Alcotest.fail "expected Failure")

let test_comments_and_blanks () =
  let path = Filename.temp_file "segdb" ".seg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# header\n\n7 0 0 1 1\n\n# tail\n";
      close_out oc;
      let segs = Seg_file.load path in
      Alcotest.(check int) "one segment" 1 (Array.length segs);
      Alcotest.(check int) "id" 7 segs.(0).Segment.id)

let suite =
  ( "seg_file",
    [
      Alcotest.test_case "malformed input" `Quick test_malformed;
      Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
      qtest prop_roundtrip;
    ] )
