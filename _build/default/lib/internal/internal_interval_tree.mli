open Segdb_geom

(** Internal-memory interval tree (Edelsbrunner / Preparata–Shamos —
    the paper's references [6, 8]).

    The paper frames its contribution against internal-memory results:
    stabbing queries cost O(log N + T) in memory with O(N) space. This
    module is that baseline, used by experiment E15 to quantify what the
    external structures give up (wall-clock constant factors) and gain
    (I/O behaviour) relative to a pointer structure.

    Classic construction: each node carries a center point, the
    intervals containing it (sorted by both endpoints), and subtrees
    for the intervals entirely to either side. Static build is
    perfectly balanced over endpoint medians; insertion descends by
    center and triggers scapegoat rebuilds, so the tree stays
    logarithmic. *)

type ivl = { lo : float; hi : float; seg : Segment.t }

type t

val build : ivl array -> t
val insert : t -> ivl -> unit
val delete : t -> ivl -> bool

val size : t -> int
val height : t -> int

val stab : t -> float -> f:(ivl -> unit) -> unit
val stab_list : t -> float -> ivl list

val overlap : t -> lo:float -> hi:float -> f:(ivl -> unit) -> unit
(** All intervals meeting [\[lo, hi\]], each once. *)

val iter : t -> (ivl -> unit) -> unit
val check_invariants : t -> bool
