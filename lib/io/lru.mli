(** Bounded LRU map over integer keys, used as the buffer pool of
    {!Block_store}.

    Operations are O(1): a hash table maps keys to doubly-linked-list
    nodes ordered by recency. On overflow the least-recently-used binding
    is evicted and handed to the caller's callback (which write-back
    logic hooks into). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** Touches the binding (moves it to most-recently-used). *)

val mem : 'a t -> int -> bool
(** Does not touch recency. *)

val peek : 'a t -> int -> 'a option
(** Like {!find} but without touching recency — the read-only lookup
    read contexts use to consult a shared cache without mutating it. *)

val put : 'a t -> int -> 'a -> on_evict:(int -> 'a -> unit) -> unit
(** Inserts or replaces the binding and marks it most-recently-used.
    If insertion overflows the capacity the LRU binding is removed and
    passed to [on_evict] (never the key just inserted). *)

val remove : 'a t -> int -> 'a option
(** Removes and returns the binding without calling any eviction hook. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterates from most- to least-recently-used. *)

val clear : 'a t -> on_evict:(int -> 'a -> unit) -> unit
(** Empties the cache, invoking [on_evict] on every binding. *)

val hits : 'a t -> int
(** Lookups through {!find} that found their key, plus nothing else:
    {!peek} and {!mem} stay uncounted because read contexts call them
    on shared caches from concurrent domains, where bumping a counter
    would be a data race. Callers on such paths account hits in their
    own per-domain structures instead. *)

val misses : 'a t -> int
(** {!find} lookups that missed, plus explicit {!note_miss} calls. *)

val note_miss : 'a t -> unit
(** Records a miss detected before consulting the table — the block
    store's disk path knows it missed without ever calling {!find}. *)

val reset_stats : 'a t -> unit
