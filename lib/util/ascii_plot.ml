type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 64) ?(height = 16) ?(log_x = false) ~title ~x_label ~y_label series =
  let tx x = if log_x then log x /. log 2.0 else x in
  let pts =
    List.concat_map
      (fun s ->
        List.filter (fun (x, y) -> Float.is_finite (tx x) && Float.is_finite y) s.points)
      series
  in
  if pts = [] then title ^ "\n(no data)\n"
  else begin
    let xs = List.map (fun (x, _) -> tx x) pts and ys = List.map snd pts in
    let xmin = List.fold_left Float.min infinity xs
    and xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = Float.min 0.0 (List.fold_left Float.min infinity ys)
    and ymax = List.fold_left Float.max neg_infinity ys in
    let ymax = if ymax = ymin then ymin +. 1.0 else ymax in
    let xmax = if xmax = xmin then xmin +. 1.0 else xmax in
    let grid = Array.make_matrix height width ' ' in
    let plot_series idx s =
      let glyph = glyphs.(idx mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          let x = tx x in
          if Float.is_finite x && Float.is_finite y then begin
            let col =
              int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1))
            in
            if row >= 0 && row < height && col >= 0 && col < width then
              grid.(row).(col) <- glyph
          end)
        s.points
    in
    List.iteri plot_series series;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf (title ^ "\n");
    let y_axis_width = 10 in
    Array.iteri
      (fun r row ->
        let yv =
          ymax -. (float_of_int r /. float_of_int (height - 1) *. (ymax -. ymin))
        in
        let label =
          if r = 0 || r = height - 1 || r = height / 2 then Printf.sprintf "%9.1f " yv
          else String.make y_axis_width ' '
        in
        Buffer.add_string buf label;
        Buffer.add_char buf '|';
        Buffer.add_string buf (String.init width (fun c -> row.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make y_axis_width ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%s x: %s [%.4g .. %.4g]%s   y: %s\n"
         (String.make y_axis_width ' ')
         x_label
         (if log_x then Float.pow 2.0 xmin else xmin)
         (if log_x then Float.pow 2.0 xmax else xmax)
         (if log_x then " (log scale)" else "")
         y_label);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%s %c = %s\n"
             (String.make y_axis_width ' ')
             glyphs.(i mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ?log_x ~title ~x_label ~y_label series =
  print_string (render ?width ?height ?log_x ~title ~x_label ~y_label series)

(* Eight vertical bar glyphs, UTF-8 encoded by hand so the module stays
   free of string-literal encoding surprises. *)
let spark_levels =
  [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 40) values =
  let values = List.filter Float.is_finite values in
  let n = List.length values in
  if n = 0 then String.make (max 1 width) ' '
  else begin
    let width = max 1 width in
    (* keep the newest [width] points: a sparkline is a recency strip *)
    let values =
      if n <= width then values else List.filteri (fun i _ -> i >= n - width) values
    in
    let lo = List.fold_left Float.min Float.infinity values in
    let hi = List.fold_left Float.max Float.neg_infinity values in
    let span = hi -. lo in
    let buf = Buffer.create (width * 3) in
    List.iter
      (fun v ->
        let lvl =
          if span <= 0. then 3
          else
            let f = (v -. lo) /. span in
            min 7 (max 0 (int_of_float (f *. 7.99)))
        in
        Buffer.add_string buf spark_levels.(lvl))
      values;
    Buffer.contents buf
  end
