test/t_rtree.ml: Alcotest Array Block_store Io_stats List Printf QCheck QCheck_alcotest Segdb_geom Segdb_io Segdb_rtree Segment Vquery
