lib/experiments/backends.ml: Harness Option Segdb_core Segdb_geom Vquery
