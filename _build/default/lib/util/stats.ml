type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity; total = 0.0 }

let add t x =
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.mean
let min t = t.min_v
let max t = t.max_v
let total t = t.total

let stddev t =
  if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

let pp ppf t =
  Format.fprintf ppf "%.2f ± %.2f (%.0f..%.0f, n=%d)" (mean t) (stddev t) t.min_v t.max_v
    t.count
