open Segdb_geom
module Db = Segdb_core.Segdb

(** The execution engine: every query entry point, one scheduler.

    [Exec] owns query execution end-to-end. A {!t} is a persistent pool
    of worker domains — spawned once, reused for every batch — fed by a
    bounded job queue. Work arrives as a typed {!request} (query batch,
    absolute deadline, degraded-result tolerance) and leaves as a typed
    {!outcome}; deadlines and explicit cancellation propagate into the
    storage layer through [Segdb_io.Cancel], so an abandoned request
    stops at the next block fetch instead of scanning to completion.

    Two ways in:

    - {!run} — cooperative fan-out for a caller that wants the batch
      answered {e now}: the calling domain participates, idle pool
      workers join as helpers, and queries are pulled off a shared
      cursor. This is what [Segdb.parallel_query] routes through (the
      hook is installed by this module's initializer, so merely linking
      [segdb_exec] upgrades every batch call site in the program).
    - {!submit} / {!await} — admission-controlled asynchronous
      execution for servers: the request is queued for a single worker,
      refused with {!Overloaded} when the queue is full, and completed
      through a callback on the worker domain.

    Pool metrics land in [Segdb_obs.Metrics.default] when observability
    is on: [exec.queue_depth] (gauge), [exec.request.ns] (histogram
    over submitted requests, decomposed into [exec.queue_wait.ns] —
    submit to worker pickup — and [exec.service.ns] — pickup to
    completion), [exec.deadline_exceeded] and [exec.cancelled]
    (counters). Submitted requests additionally feed the slow-query
    log ([Segdb_obs.Slowlog]) when its threshold is armed, and
    admission refusals / deadline cuts / cancellations emit
    [Segdb_obs.Log] events under the ["exec"] component. *)

(** {1 Requests and outcomes} *)

type request
(** A batch of queries plus its execution policy, built by {!request}.
    Immutable; a request may be run or submitted more than once. *)

val request :
  ?deadline_ms:int ->
  ?degraded_ok:bool ->
  ?trace:bool ->
  ?request_id:int ->
  Vquery.t array ->
  request
(** [request qs] describes executing the batch [qs].

    - [deadline_ms]: budget from {e now} (the clock starts at
      construction, so queue time counts against it — a request built
      at admission and served late can expire before its first query).
      [0] or absent means no deadline. Whatever the budget, an admitted
      request always completes its first query: deadline enforcement
      arms only after one answer exists, so a tight deadline yields a
      partial result rather than an empty one, and only a request that
      expired while still queued reports zero completions.
    - [degraded_ok] (default [true]): storage faults (corrupt pages,
      undecodable blocks) are collected per query and reported through
      {!Degraded} rather than raised; [false] re-raises the first
      fault to the caller of {!run}. Injected crashes
      ([Failpoint.Injected_crash]) always propagate — they model
      process death, not a servable fault.
    - [trace] (default [false]): wrap execution in a
      [Segdb_obs.Trace] span (["exec.batch"]) when observability is
      enabled.
    - [request_id]: the id every trace span recorded while executing
      this request is attributed to — pass the id a remote client
      generated to stitch its timeline across processes. Absent (or
      [0]), a fresh id is drawn from
      [Segdb_obs.Trace.fresh_request_id]. *)

val queries : request -> Vquery.t array
val deadline_ns : request -> int
(** Absolute deadline in [Trace.now_ns] time, [0] when none. *)

val request_id : request -> int
(** The id the request's spans and slow-query records carry. Never
    [0]. *)

type outcome =
  | Ok of int list array
      (** Element [i] holds the sorted matching ids for query [i]. *)
  | Degraded of int list array * string list
      (** Every query ran, but some hit storage faults: the answers
          cover what survived, and the faults say what did not. *)
  | Deadline_exceeded of { partial : int list array; completed : int }
      (** The deadline cut execution short after [completed] queries
          (in cursor order for {!run}, batch order for {!submit});
          unanswered slots are [[]]. [completed = 0] means the request
          expired before doing any work (e.g. while queued). *)
  | Overloaded
      (** Refused at admission: the queue was at [queue_depth]. The
          request never touched a worker. *)
  | Cancelled of { partial : int list array; completed : int }
      (** Explicitly cancelled ({!cancel}, or the [cancel] flag of
          {!run}); same partial-result convention as
          [Deadline_exceeded]. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line summary: constructor, completed/total, fault count. *)

val outcome_name : outcome -> string
(** The constructor as a lowercase word ("ok", "degraded", "deadline",
    "overloaded", "cancelled") — what wire answers, slow-query records
    and log events use. *)

(** {1 The pool} *)

type t
(** A persistent pool of worker domains plus its admission queue.
    Domains are spawned by {!create} and live until {!shutdown}. *)

val create : ?queue_depth:int -> workers:int -> unit -> t
(** [create ~workers ()] spawns [max 1 workers] domains, parked on the
    job queue. [queue_depth] (default 128) bounds how many {!submit}ted
    requests may be admitted but not yet running; [0] refuses every
    submit (useful in tests). Cooperative {!run} work bypasses
    admission — a full queue can delay helpers, never the caller. *)

val size : t -> int
(** Worker-domain count (fixed at creation). *)

val queue_depth : t -> int

val busy : t -> int
(** Workers currently inside a job — the pool's instantaneous
    occupancy. One atomic load; also published as the
    ["exec.pool_busy"] gauge when observability is on. *)

val queued : t -> int
(** Jobs sitting in the queue, not yet picked up (takes the pool lock
    briefly). *)

val shutdown : t -> unit
(** Stops the workers after the queue drains and joins them.
    Idempotent. Requests admitted before shutdown complete; new
    submits are refused with {!Overloaded}. *)

(** {1 Cooperative execution} *)

val run :
  ?readers:Db.reader array ->
  ?cancel:bool Atomic.t ->
  t ->
  Db.t ->
  request ->
  domains:int ->
  outcome * Db.worker_stats array
(** [run pool db req ~domains] answers the batch with up to [domains]
    participants: the calling domain always works, and up to
    [min (domains - 1) (size pool)] pool workers join as helpers as
    they come free (a busy pool degrades to fewer helpers, never to a
    wrong answer — the caller finishes whatever nobody else picks up).
    Queries are pulled off a shared cursor, so skewed batches
    self-balance exactly as in the spawn-per-call executor this
    replaces.

    [readers], when given, must have one reader per [domains] slot
    (slot [k] is used by participant [k]; slots no helper reached stay
    untouched). Setting [cancel] to [true] (from any domain) stops the
    batch at the next query boundary or block fetch.

    The [worker_stats] array has [domains] rows; rows for slots no
    helper filled report zero queries. With a single-worker pool or
    [domains = 1] the batch runs entirely inline — no queueing, no
    atomics beyond the cursor.

    Raises [Invalid_argument] on [domains < 1] or a mis-sized
    [readers]; re-raises worker exceptions when the request has
    [degraded_ok = false]. *)

(** {1 Submitted execution} *)

type ticket
(** A handle on one admitted (or refused) request. *)

val submit :
  ?cache_blocks:int -> ?on_complete:(outcome -> unit) -> t -> Db.t -> request -> ticket
(** Queues the request for a single worker domain, or refuses it when
    [queue_depth] requests are already waiting (the ticket is then
    already complete with {!Overloaded}). [on_complete] fires exactly
    once, on the worker domain (or the submitting domain for an
    admission refusal), after the outcome is recorded — a server's
    chance to write the response without a coordination hop. Workers
    keep one cached reader per database they have served (keyed by
    physical identity, sized by [cache_blocks] at first use), so a
    request stream against one database keeps its LRU shard warm
    across requests. *)

val await : ticket -> outcome
(** Blocks until the outcome is recorded; returns immediately on an
    already-complete ticket. *)

val peek : ticket -> outcome option
(** The outcome if complete, without blocking. *)

val cancel : ticket -> unit
(** Requests cancellation: a queued request completes as {!Cancelled}
    with no work done; a running one stops at the next block fetch.
    Completion still arrives through {!await} / [on_complete]. *)

val served_by : ticket -> int
(** Domain id ([Domain.self]) of the worker that executed the request,
    [-1] until one picks it up. Stable across batches on a one-worker
    pool — the test hook for pool persistence. *)

(** {1 The process-default pool} *)

val default : unit -> t
(** The lazily-created process-wide pool that [Segdb.parallel_query]
    fans out on. Sized on first use from
    [Domain.recommended_domain_count ()] (minus one for the calling
    domain, minimum 1), or from the [SEGDB_EXEC_WORKERS] environment
    variable, or from {!set_default_workers} — whichever bound it last
    before creation. Never shut down explicitly; its parked domains
    die with the process. *)

val set_default_workers : int -> unit
(** Overrides the default pool's size. Takes effect only before the
    pool exists (first call to {!default} or first multi-domain
    [Segdb.parallel_query]); later calls are ignored. *)

val default_created : unit -> bool
(** Whether the default pool has been forced yet. *)
