open Segdb_geom

(** Internal-memory VS-query structure — the paper's reference [5]
    shape: an interval tree over x-extents whose nodes carry two
    priority search trees over the left and right parts of the segments
    crossing the node's line. Queries cost O(log² N + T) comparisons,
    the bound the paper's introduction quotes for in-core solutions.

    Exists as (a) the in-core baseline of experiment E15b and (b) an
    independent second implementation cross-checking the external
    solutions in the test suite. Static. *)

type t

val build : Segment.t array -> t

val size : t -> int
val height : t -> int

val query : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
(** Each intersecting segment exactly once. *)

val query_ids : t -> Vquery.t -> int list

val check_invariants : t -> bool
