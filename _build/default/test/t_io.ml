(* Tests for the simulated disk: LRU semantics and exact I/O accounting. *)

open Segdb_io

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Lru ---------------- *)

let test_lru_basic () =
  let l = Lru.create ~capacity:2 in
  let evicted = ref [] in
  let on_evict k _ = evicted := k :: !evicted in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 2 "b" ~on_evict;
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find l 1);
  Lru.put l 3 "c" ~on_evict;
  (* 2 was least recently used (1 was touched by find) *)
  Alcotest.(check (list int)) "evicted 2" [ 2 ] !evicted;
  Alcotest.(check (option string)) "2 gone" None (Lru.find l 2);
  Alcotest.(check int) "length" 2 (Lru.length l)

let test_lru_replace () =
  let l = Lru.create ~capacity:2 in
  let on_evict _ _ = Alcotest.fail "no eviction expected" in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 1 "b" ~on_evict;
  Alcotest.(check (option string)) "replaced" (Some "b") (Lru.find l 1);
  Alcotest.(check int) "length 1" 1 (Lru.length l)

let test_lru_remove () =
  let l = Lru.create ~capacity:4 in
  let on_evict _ _ = () in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 2 "b" ~on_evict;
  Alcotest.(check (option string)) "remove returns" (Some "a") (Lru.remove l 1);
  Alcotest.(check (option string)) "remove again" None (Lru.remove l 1);
  Alcotest.(check int) "length" 1 (Lru.length l)

let test_lru_iter_order () =
  let l = Lru.create ~capacity:3 in
  let on_evict _ _ = () in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 2 "b" ~on_evict;
  Lru.put l 3 "c" ~on_evict;
  ignore (Lru.find l 1);
  let order = ref [] in
  Lru.iter l (fun k _ -> order := k :: !order);
  Alcotest.(check (list int)) "MRU first" [ 1; 3; 2 ] (List.rev !order)

(* Model-based property: the LRU against a naive list model. *)
let prop_lru_model =
  QCheck.Test.make ~name:"lru model equivalence" ~count:300
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 15) (int_range 0 100))))
    (fun (cap, ops) ->
      QCheck.assume (cap >= 1);
      let l = Lru.create ~capacity:cap in
      (* model: association list, most recent first *)
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (k, v) ->
          Lru.put l k v ~on_evict:(fun _ _ -> ());
          model := (k, v) :: List.remove_assoc k !model;
          if List.length !model > cap then
            model := List.filteri (fun i _ -> i < cap) !model)
        ops;
      List.iter
        (fun (k, _) ->
          match List.assoc_opt k !model with
          | Some mv -> if Lru.find l k <> Some mv then ok := false
          | None -> if Lru.mem l k then ok := false)
        ops;
      if Lru.length l <> List.length !model then ok := false;
      !ok)

(* ---------------- Block_store ---------------- *)

module S = Block_store.Make (struct
  type t = int
end)

let mk ?(cap = 4) () =
  let pool = Block_store.Pool.create ~capacity:cap in
  let io = Io_stats.create () in
  let s = S.create ~pool ~stats:io () in
  (s, io, pool)

let test_store_roundtrip () =
  let s, _, _ = mk () in
  let a = S.alloc s 10 and b = S.alloc s 20 in
  Alcotest.(check int) "read a" 10 (S.read s a);
  Alcotest.(check int) "read b" 20 (S.read s b);
  S.write s a 11;
  Alcotest.(check int) "read a after write" 11 (S.read s a);
  Alcotest.(check int) "live blocks" 2 (S.block_count s)

let test_store_no_io_while_resident () =
  let s, io, _ = mk ~cap:8 () in
  let addrs = List.init 4 (fun i -> S.alloc s i) in
  List.iter (fun a -> ignore (S.read s a)) addrs;
  List.iter (fun a -> ignore (S.read s a)) addrs;
  Alcotest.(check int) "no reads charged while resident" 0 (Io_stats.reads io);
  Alcotest.(check int) "no writes yet" 0 (Io_stats.writes io);
  Alcotest.(check int) "allocs counted" 4 (Io_stats.allocs io)

let test_store_eviction_charges () =
  let s, io, _ = mk ~cap:2 () in
  let a = S.alloc s 1 in
  let b = S.alloc s 2 in
  let c = S.alloc s 3 in
  (* pool holds 2; allocating c evicted a (dirty) -> 1 write *)
  Alcotest.(check int) "write on dirty eviction" 1 (Io_stats.writes io);
  Alcotest.(check int) "read back a" 1 (S.read s a);
  (* reading a missed -> 1 read, and evicted b (dirty) -> +1 write *)
  Alcotest.(check int) "read charged" 1 (Io_stats.reads io);
  Alcotest.(check int) "second dirty eviction" 2 (Io_stats.writes io);
  ignore (S.read s c);
  ignore b

let test_store_clean_eviction_free () =
  let s, io, _ = mk ~cap:1 () in
  let a = S.alloc s 1 in
  let _b = S.alloc s 2 in
  (* a evicted dirty: 1 write *)
  Alcotest.(check int) "dirty eviction" 1 (Io_stats.writes io);
  ignore (S.read s a);
  (* b evicted dirty: +1 write; a resident clean *)
  Alcotest.(check int) "dirty eviction b" 2 (Io_stats.writes io);
  ignore (S.read s _b);
  (* a evicted clean: no write *)
  Alcotest.(check int) "clean eviction free" 2 (Io_stats.writes io);
  Alcotest.(check int) "reads" 2 (Io_stats.reads io)

let test_store_free_and_errors () =
  let s, _, _ = mk () in
  let a = S.alloc s 5 in
  S.free s a;
  Alcotest.(check int) "no live blocks" 0 (S.block_count s);
  (match S.read s a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read after free should raise");
  match S.free s a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double free should raise"

let test_store_flush () =
  let s, io, _ = mk ~cap:8 () in
  let a = S.alloc s 1 and b = S.alloc s 2 in
  S.flush s;
  Alcotest.(check int) "flush writes dirty blocks" 2 (Io_stats.writes io);
  S.flush s;
  Alcotest.(check int) "second flush free" 2 (Io_stats.writes io);
  ignore (a, b)

let test_store_write_nonresident_no_read () =
  let s, io, _ = mk ~cap:1 () in
  let a = S.alloc s 1 in
  let _b = S.alloc s 2 in
  (* a is on disk now *)
  let r0 = Io_stats.reads io in
  S.write s a 10;
  Alcotest.(check int) "blind overwrite charges no read" r0 (Io_stats.reads io);
  Alcotest.(check int) "value updated" 10 (S.read s a)

(* Two stores sharing one pool compete for frames. *)
let test_shared_pool () =
  let pool = Block_store.Pool.create ~capacity:2 in
  let io = Io_stats.create () in
  let s1 = S.create ~name:"s1" ~pool ~stats:io () in
  let s2 = S.create ~name:"s2" ~pool ~stats:io () in
  let a = S.alloc s1 1 in
  let _ = S.alloc s2 2 in
  let _ = S.alloc s2 3 in
  (* a was evicted by s2's allocations *)
  let r0 = Io_stats.reads io in
  Alcotest.(check int) "read back from disk" 1 (S.read s1 a);
  Alcotest.(check int) "miss charged" (r0 + 1) (Io_stats.reads io);
  Alcotest.(check bool) "pool bounded" true (Block_store.Pool.resident pool <= 2)

let prop_store_model =
  QCheck.Test.make ~name:"block store read-your-writes under eviction" ~count:200
    QCheck.(pair (int_range 1 6) (small_list (pair (int_range 0 9) (int_range 0 999))))
    (fun (cap, writes) ->
      let pool = Block_store.Pool.create ~capacity:cap in
      let io = Io_stats.create () in
      let s = S.create ~pool ~stats:io () in
      let addr_of = Hashtbl.create 16 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          (match Hashtbl.find_opt addr_of k with
          | None -> Hashtbl.add addr_of k (S.alloc s v)
          | Some a -> S.write s a v);
          Hashtbl.replace model k v)
        writes;
      Hashtbl.fold
        (fun k a ok -> ok && S.read s a = Hashtbl.find model k)
        addr_of true)

let suite =
  ( "io",
    [
      Alcotest.test_case "lru basic" `Quick test_lru_basic;
      Alcotest.test_case "lru replace" `Quick test_lru_replace;
      Alcotest.test_case "lru remove" `Quick test_lru_remove;
      Alcotest.test_case "lru iter order" `Quick test_lru_iter_order;
      Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
      Alcotest.test_case "store resident free" `Quick test_store_no_io_while_resident;
      Alcotest.test_case "store eviction charges" `Quick test_store_eviction_charges;
      Alcotest.test_case "store clean eviction free" `Quick test_store_clean_eviction_free;
      Alcotest.test_case "store free/errors" `Quick test_store_free_and_errors;
      Alcotest.test_case "store flush" `Quick test_store_flush;
      Alcotest.test_case "store blind write" `Quick test_store_write_nonresident_no_read;
      Alcotest.test_case "shared pool" `Quick test_shared_pool;
      qtest prop_lru_model;
      qtest prop_store_model;
    ] )

(* ---------------- Ext_sort ---------------- *)

module Xs = Ext_sort.Make (Int)

let prop_extsort_correct =
  QCheck.Test.make ~name:"external sort equals Array.sort" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 2000) (int_range 0 10_000))
        (int_range 1 16) (int_range 3 8))
    (fun (xs, block, mem) ->
      let pool = Block_store.Pool.create ~capacity:mem in
      let io = Io_stats.create () in
      let arr = Array.of_list xs in
      let sorted = Xs.sort ~pool ~stats:io ~block ~memory_blocks:mem arr in
      let expected = Array.copy arr in
      Array.sort compare expected;
      sorted = expected)

let prop_extsort_stable =
  QCheck.Test.make ~name:"external sort is stable" ~count:100
    QCheck.(list_of_size Gen.(0 -- 500) (int_range 0 20))
    (fun keys ->
      (* tag duplicates with their original index; compare keys only *)
      let module P = Ext_sort.Make (struct
        type t = int * int

        let compare (a, _) (b, _) = compare a b
      end) in
      let pool = Block_store.Pool.create ~capacity:8 in
      let io = Io_stats.create () in
      let arr = Array.of_list (List.mapi (fun i k -> (k, i)) keys) in
      let sorted = P.sort ~pool ~stats:io ~block:4 ~memory_blocks:3 arr in
      let expected = Array.copy arr in
      Array.stable_sort (fun (a, _) (b, _) -> compare a b) expected;
      sorted = expected)

let test_extsort_io_scaling () =
  (* I/O ~ 2 * blocks * (passes + 1): the EM sorting bound's shape *)
  let block = 16 and mem = 4 in
  let costs =
    List.map
      (fun n ->
        let pool = Block_store.Pool.create ~capacity:mem in
        let io = Io_stats.create () in
        let arr = Array.init n (fun i -> (i * 7919) mod 104729) in
        ignore (Xs.sort ~pool ~stats:io ~block ~memory_blocks:mem arr);
        let blocks = (n + block - 1) / block in
        let passes = Xs.passes ~block ~memory_blocks:mem n in
        (n, Io_stats.total_io io, blocks * (2 * (passes + 2))))
      [ 1_000; 4_000; 16_000 ]
  in
  List.iter
    (fun (n, io, budget) ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d io=%d within budget %d" n io budget)
        true (io <= budget))
    costs

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "extsort io scaling" `Quick test_extsort_io_scaling;
        qtest prop_extsort_correct;
        qtest prop_extsort_stable;
      ] )
