lib/io/block_store.ml: Hashtbl Io_stats Lru Printf
