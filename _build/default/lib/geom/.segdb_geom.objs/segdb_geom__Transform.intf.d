lib/geom/transform.mli: Segment Vquery
