test/t_io.ml: Alcotest Array Block_store Ext_sort Gen Hashtbl Int Io_stats List Lru Printf QCheck QCheck_alcotest Segdb_io
