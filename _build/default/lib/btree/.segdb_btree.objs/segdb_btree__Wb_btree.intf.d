lib/btree/wb_btree.mli: Block_store Io_stats Segdb_io
