type reason = Deadline | Explicit

exception Cancelled of reason

type t = {
  flag : bool Atomic.t;
  deadline_ns : int; (* absolute, 0 = none *)
  mutable deadline_on : bool;
  mutable polls : int; (* domain-local by construction: handles are per-worker *)
}

let create ?(deadline_ns = 0) ?flag () =
  let flag = match flag with Some f -> f | None -> Atomic.make false in
  { flag; deadline_ns = max 0 deadline_ns; deadline_on = true; polls = 0 }

let flag t = t.flag
let cancel t = Atomic.set t.flag true
let cancelled t = Atomic.get t.flag
let deadline_ns t = t.deadline_ns

let expired t = t.deadline_ns > 0 && Segdb_obs.Trace.now_ns () > t.deadline_ns

let set_deadline_enabled t on = t.deadline_on <- on

let poll_stride = 16

(* How many handles are installed process-wide: the guard that keeps a
   poll on the unused engine down to one atomic load — the same
   discipline as [Failpoint.armed]. *)
let installed = Atomic.make 0

(* Domain-local, like [Read_context.current]: installing a handle on
   one worker never affects queries running on another. *)
let current : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let active () = !(Domain.DLS.get current)

let install t f =
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some t;
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      slot := saved;
      Atomic.decr installed)
    f

let check t =
  if Atomic.get t.flag then raise (Cancelled Explicit);
  if t.deadline_ns > 0 && t.deadline_on then begin
    t.polls <- t.polls + 1;
    if
      t.polls land (poll_stride - 1) = 0
      && Segdb_obs.Trace.now_ns () > t.deadline_ns
    then raise (Cancelled Deadline)
  end

let poll () =
  if Atomic.get installed > 0 then
    match !(Domain.DLS.get current) with None -> () | Some t -> check t
