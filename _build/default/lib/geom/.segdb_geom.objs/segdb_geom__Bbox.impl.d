lib/geom/bbox.ml: Float Format Segment Vquery
