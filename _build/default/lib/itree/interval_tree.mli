open Segdb_io
open Segdb_geom

(** External-memory interval tree (the paper's reference [3], Arge and
    Vitter), over 1-D closed intervals carrying plane segments.

    Used three ways by the index structures:
    - as [C(v)]: the collinear segments lying on a node's base line
      (their y-extents are the intervals);
    - as the stabbing-query structure whose optimality for vertical
      *line* queries motivates the paper (Figure 1, experiment E8);
    - the backbone idea is reused by Solution 2's first level.

    Structure: an [fanout]-ary backbone balanced over endpoint
    quantiles. A node's boundaries cut the value axis into slabs. An
    interval whose endpoints fall in different slabs is stored at that
    node in (a) the left list of its start slab (sorted by [lo]), (b)
    the right list of its end slab (sorted by [hi] descending), and (c)
    if it fully spans interior slabs, one multislab list — the
    classical decomposition making stabbing queries output-sensitive:
    a stab in slab [k] scans a prefix of left list [k], a prefix of
    right list [k], and whole multislab lists covering [k]. Lists are
    external B+-trees; with [fanout = Θ(sqrt B)] the node's O(fanout²)
    list handles fit one block.

    Insertions go to the lists in [O(log_B n)]; the backbone itself is
    kept balanced by global doubling rebuilds (our substitute for the
    weight-balanced B-tree, see DESIGN.md), so insertion is amortized
    logarithmic. *)

type ivl = { lo : float; hi : float; seg : Segment.t }
(** A closed interval [\[lo, hi\]] tagged with the segment it came from.
    [seg.id] must be unique per tree. *)

type t

val build :
  ?fanout:int ->
  ?leaf_capacity:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  ivl array ->
  t
(** [fanout] (default 8) is the backbone branching; [leaf_capacity]
    (default 64) is the paper's [B]. Raises [Invalid_argument] if some
    [lo > hi]. *)

val insert : t -> ivl -> unit

val delete : t -> ivl -> bool
(** Removes the interval (matched by [(lo, hi, seg.id)]); returns
    whether it was present. The backbone does not shrink; doubling
    rebuilds restore balance as the tree keeps mutating. *)

val size : t -> int
val height : t -> int
val block_count : t -> int

val stab : t -> float -> f:(ivl -> unit) -> unit
(** All intervals containing the point, each exactly once. *)

val overlap : t -> lo:float -> hi:float -> f:(ivl -> unit) -> unit
(** All intervals meeting [\[lo, hi\]], each exactly once: a stab at
    [lo] plus a start-point range scan over [(lo, hi]]. *)

val stab_list : t -> float -> ivl list
val overlap_list : t -> lo:float -> hi:float -> ivl list

val iter : t -> (ivl -> unit) -> unit

val check_invariants : t -> bool
