open Segdb_io
open Segdb_geom

module Store = Block_store.Make (struct
  type t = Segment.t array
end)

type t = {
  store : Store.t;
  block : int;
  mutable blocks : Block_store.addr list; (* most recent first *)
  mutable size : int;
}

let name = "naive-scan"

let build (cfg : Vs_index.config) segs =
  let store = Store.create ~name:"naive" ~pool:cfg.pool ~stats:cfg.stats () in
  let t = { store; block = cfg.block; blocks = []; size = Array.length segs } in
  let n = Array.length segs in
  let i = ref 0 in
  while !i < n do
    let len = min t.block (n - !i) in
    t.blocks <- Store.alloc store (Array.sub segs !i len) :: t.blocks;
    i := !i + len
  done;
  t

let insert t s =
  t.size <- t.size + 1;
  match t.blocks with
  | a :: _ when Array.length (Store.read t.store a) < t.block ->
      Store.write t.store a (Array.append (Store.read t.store a) [| s |])
  | _ -> t.blocks <- Store.alloc t.store [| s |] :: t.blocks

let delete t (s : Segment.t) =
  let found = ref false in
  List.iter
    (fun a ->
      if not !found then begin
        let segs = Store.read t.store a in
        match Array.find_index (fun c -> Segment.equal c s) segs with
        | Some i ->
            let out = Array.make (Array.length segs - 1) s in
            Array.blit segs 0 out 0 i;
            Array.blit segs (i + 1) out i (Array.length segs - 1 - i);
            Store.write t.store a out;
            found := true
        | None -> ()
      end)
    t.blocks;
  if !found then t.size <- t.size - 1;
  !found

let query t q ~f =
  List.iter
    (fun a -> Array.iter (fun s -> if Vquery.matches q s then f s) (Store.read t.store a))
    t.blocks

let query_r r t q ~f = Read_context.with_reader r (fun () -> query t q ~f)

let iter_all t ~f = List.iter (fun a -> Array.iter f (Store.read t.store a)) t.blocks

let size t = t.size
let block_count t = Store.block_count t.store
