lib/pst/three_sided.mli: Block_store Io_stats Segdb_io
