(* R-tree baseline tests. *)

open Segdb_io
open Segdb_geom
module R = Segdb_rtree.Rtree

let qtest = QCheck_alcotest.to_alcotest

let mk_pool ?(cap = 512) () = (Block_store.Pool.create ~capacity:cap, Io_stats.create ())

let segs_gen =
  QCheck.Gen.(
    let* n = 0 -- 120 in
    let* raw =
      list_size (return n)
        (quad (float_range 0.0 100.0) (float_range 0.0 100.0) (float_range (-10.0) 10.0)
           (float_range (-10.0) 10.0))
    in
    return
      (Array.of_list
         (List.mapi (fun i (x, y, dx, dy) -> Segment.make ~id:i (x, y) (x +. dx, y +. dy)) raw)))

let scenario =
  QCheck.make
    ~print:(fun (segs, x, y1, w) ->
      Printf.sprintf "n=%d x=%g y=[%g,%g]" (Array.length segs) x y1 (y1 +. w))
    QCheck.Gen.(
      let* segs = segs_gen in
      let* x = float_range (-15.0) 115.0 in
      let* y1 = float_range (-15.0) 115.0 in
      let* w = float_range 0.0 50.0 in
      return (segs, x, y1, w))

let ids l = List.map (fun (s : Segment.t) -> s.Segment.id) l |> List.sort compare

let oracle segs q = Array.to_list segs |> List.filter (Vquery.matches q) |> ids

let prop_query_oracle =
  QCheck.Test.make ~name:"rtree query equals naive filter" ~count:300 scenario
    (fun (segs, x, y1, w) ->
      let pool, io = mk_pool () in
      let t = R.bulk_load ~node_capacity:8 ~pool ~stats:io segs in
      let q = Vquery.segment ~x ~ylo:y1 ~yhi:(y1 +. w) in
      ids (R.query_list t q) = oracle segs q)

let prop_bulk_invariants =
  QCheck.Test.make ~name:"rtree bulk invariants" ~count:150 scenario (fun (segs, _, _, _) ->
      let pool, io = mk_pool () in
      let t = R.bulk_load ~node_capacity:8 ~pool ~stats:io segs in
      R.check_invariants t && R.size t = Array.length segs)

let prop_insert_oracle =
  QCheck.Test.make ~name:"rtree insert equals oracle" ~count:150 scenario
    (fun (segs, x, y1, w) ->
      let pool, io = mk_pool () in
      let k = Array.length segs / 2 in
      let t = R.bulk_load ~node_capacity:8 ~pool ~stats:io (Array.sub segs 0 k) in
      for i = k to Array.length segs - 1 do
        R.insert t segs.(i)
      done;
      let q = Vquery.segment ~x ~ylo:y1 ~yhi:(y1 +. w) in
      R.check_invariants t && ids (R.query_list t q) = oracle segs q)

let test_empty () =
  let pool, io = mk_pool () in
  let t = R.create ~pool ~stats:io () in
  Alcotest.(check int) "size" 0 (R.size t);
  Alcotest.(check bool) "query" true (R.query_list t (Vquery.line ~x:0.0) = []);
  Alcotest.(check bool) "invariants" true (R.check_invariants t)

let test_line_query () =
  let pool, io = mk_pool () in
  let segs = Array.init 10 (fun i -> Segment.make ~id:i (float_of_int i, 0.0) (float_of_int i +. 5.0, 3.0)) in
  let t = R.bulk_load ~node_capacity:4 ~pool ~stats:io segs in
  let got = ids (R.query_list t (Vquery.line ~x:7.5)) in
  Alcotest.(check (list int)) "line stab" [ 3; 4; 5; 6; 7 ] got

let suite =
  ( "rtree",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "line query" `Quick test_line_query;
      qtest prop_query_oracle;
      qtest prop_bulk_invariants;
      qtest prop_insert_oracle;
    ] )
