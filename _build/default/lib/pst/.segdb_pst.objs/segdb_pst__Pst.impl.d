lib/pst/pst.ml: Array Block_store Float Io_stats List Lseg Segdb_geom Segdb_io
