lib/core/solution2.mli: Vs_index
