open Segdb_util
open Segdb_geom

let reid segs = Array.mapi (fun i s -> Segment.with_id s i) segs

let truncate_to n segs =
  if Array.length segs <= n then segs else Array.sub segs 0 n

(* ---------------- roads ---------------- *)

let roads rng ~n ~span =
  if n <= 0 then [||]
  else begin
    let tracks = max 1 (int_of_float (sqrt (float_of_int n) /. 2.0)) in
    (* 10% of pieces are dropped below; overshoot so [n] survive *)
    let per_track = (((5 * n / 4) + tracks - 1) / tracks) + 4 in
    let band = span /. float_of_int tracks in
    let amplitude = 0.35 *. band in
    let acc = ref [] in
    for k = 0 to tracks - 1 do
      let base = (float_of_int k +. 0.5) *. band in
      let dx = span /. float_of_int per_track in
      let w = ref (Rng.float rng 2.0 -. 1.0) in
      let prev = ref (0.0, base +. (amplitude *. !w)) in
      for j = 1 to per_track do
        w := Float.max (-1.0) (Float.min 1.0 (!w +. (Rng.float rng 0.6 -. 0.3)));
        let p = (float_of_int j *. dx, base +. (amplitude *. !w)) in
        (* occasional gaps make the polylines realistic road pieces *)
        if Rng.float rng 1.0 > 0.1 then acc := Segment.make !prev p :: !acc;
        prev := p
      done
    done;
    reid (truncate_to n (Array.of_list !acc))
  end

let uniform rng ~n ~span =
  if n <= 0 then [||]
  else begin
    (* many narrow tracks: short segments with varied direction *)
    let tracks = max 1 (n / 8) in
    let per_track = ((n + tracks - 1) / tracks) + 1 in
    let band = span /. float_of_int tracks in
    let amplitude = 0.45 *. band in
    let acc = ref [] in
    for k = 0 to tracks - 1 do
      let base = (float_of_int k +. 0.5) *. band in
      let x = ref (Rng.float rng (span /. 4.0)) in
      let y = ref (base +. (amplitude *. (Rng.float rng 2.0 -. 1.0))) in
      let j = ref 0 in
      while !j < per_track && !x < span do
        let nx = !x +. (span /. float_of_int (4 * per_track)) +. Rng.float rng (span /. float_of_int (2 * per_track)) in
        let ny = base +. (amplitude *. (Rng.float rng 2.0 -. 1.0)) in
        if Rng.float rng 1.0 > 0.15 then acc := Segment.make (!x, !y) (nx, ny) :: !acc;
        x := nx;
        y := ny;
        incr j
      done
    done;
    reid (truncate_to n (Array.of_list !acc))
  end

let long_spans rng ~n ~span =
  if n <= 0 then [||]
  else begin
    let bases = Array.init n (fun _ -> Rng.float rng span) in
    let slopes = Array.init n (fun _ -> (Rng.float rng 0.4 -. 0.2) *. (span /. 1000.0)) in
    Array.sort compare bases;
    Array.sort compare slopes;
    reid
      (Array.init n (fun i ->
           let x1 = Rng.float rng (0.5 *. span) in
           let x2 = x1 +. (0.3 *. span) +. Rng.float rng (0.5 *. span) in
           let x2 = Float.min x2 span in
           let y x = bases.(i) +. (slopes.(i) *. x) in
           Segment.make (x1, y x1) (x2, y x2)))
  end

(* ---------------- grid city ---------------- *)

let grid_city rng ~n ~span ~max_len =
  if n <= 0 then [||]
  else begin
    let max_len = max 2 max_len in
    (* horizontal streets per row / vertical per column, kept disjoint
       within their line by rejection *)
    let horiz : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let vert : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    let disjoint existing (a, b) =
      List.for_all (fun (c, d) -> b < c || d < a) existing
    in
    let tries = ref 0 and placed = ref 0 in
    (* place about n raw streets; crossing splits only add more *)
    while !placed < n && !tries < 20 * n do
      incr tries;
      let len = 2 + Rng.int rng (max_len - 1) in
      let table = if Rng.bool rng then horiz else vert in
      let line = Rng.int rng (span + 1) in
      let start = Rng.int rng (max 1 (span - len)) in
      let iv = (start, start + len) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt table line) in
      if disjoint existing iv then begin
        Hashtbl.replace table line (iv :: existing);
        incr placed
      end
    done;
    (* exact crossing points: H (y, [x1,x2]) x V (x, [y1,y2]) *)
    let cuts_h : (int * int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let cuts_v : (int * int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let note table key x =
      match Hashtbl.find_opt table key with
      | Some l -> l := x :: !l
      | None -> Hashtbl.add table key (ref [ x ])
    in
    Hashtbl.iter
      (fun vx ivs ->
        List.iter
          (fun (vy1, vy2) ->
            Hashtbl.iter
              (fun hy hivs ->
                if vy1 < hy && hy < vy2 then
                  List.iter
                    (fun (hx1, hx2) ->
                      if hx1 < vx && vx < hx2 then begin
                        note cuts_h (hy, hx1, hx2) vx;
                        note cuts_v (vx, vy1, vy2) hy
                      end)
                    hivs)
              horiz)
          ivs)
      vert;
    let acc = ref [] in
    let emit_pieces mk lo hi cuts =
      let cuts = List.sort_uniq compare cuts in
      let rec go a = function
        | [] -> if a < hi then acc := mk a hi :: !acc
        | c :: rest ->
            if a < c then acc := mk a c :: !acc;
            go c rest
      in
      go lo cuts
    in
    Hashtbl.iter
      (fun hy ivs ->
        List.iter
          (fun (x1, x2) ->
            let cuts =
              match Hashtbl.find_opt cuts_h (hy, x1, x2) with Some l -> !l | None -> []
            in
            emit_pieces
              (fun a b -> Segment.make (float_of_int a, float_of_int hy) (float_of_int b, float_of_int hy))
              x1 x2 cuts)
          ivs)
      horiz;
    Hashtbl.iter
      (fun vx ivs ->
        List.iter
          (fun (y1, y2) ->
            let cuts =
              match Hashtbl.find_opt cuts_v (vx, y1, y2) with Some l -> !l | None -> []
            in
            emit_pieces
              (fun a b -> Segment.make (float_of_int vx, float_of_int a) (float_of_int vx, float_of_int b))
              y1 y2 cuts)
          ivs)
      vert;
    (* horizontals were emitted before verticals: shuffle so truncation
       keeps a balanced mix (any subset of an NCT set is NCT) *)
    let out = Array.of_list !acc in
    Rng.shuffle rng out;
    reid (truncate_to n out)
  end

(* ---------------- temporal ---------------- *)

let temporal rng ~n ~keys ~horizon =
  if n <= 0 then [||]
  else begin
    let keys = max 1 keys in
    (* per-key cursors so later rounds extend a history instead of
       overlaying a second one on the same row *)
    let cursor = Array.make keys (-1) in
    let acc = ref [] in
    let count = ref 0 in
    let k = ref 0 in
    let exhausted = ref 0 in
    while !count < n && !exhausted < keys do
      let key = !k mod keys in
      if cursor.(key) < horizon then begin
        let y = float_of_int key in
        if cursor.(key) < 0 then cursor.(key) <- Rng.int rng (max 1 (horizon / 10));
        let t = cursor.(key) in
        let len = 1 + Rng.int rng (max 1 (horizon / 20)) in
        let stop = min (t + len) horizon in
        acc := Segment.make (float_of_int t, y) (float_of_int stop, y) :: !acc;
        incr count;
        (* versions either abut (touching endpoints) or leave a gap *)
        cursor.(key) <-
          (if Rng.float rng 1.0 < 0.3 then stop + 1 + Rng.int rng (max 1 (horizon / 20))
           else stop);
        if cursor.(key) >= horizon then incr exhausted
      end;
      incr k
    done;
    reid (truncate_to n (Array.of_list !acc))
  end

(* ---------------- fans ---------------- *)

let fans rng ~n ~centers ~span =
  if n <= 0 then [||]
  else begin
    let centers = max 1 centers in
    let strip = max 4 (span / centers) in
    let per_center = (n + centers - 1) / centers in
    let acc = ref [] in
    for c = 0 to centers - 1 do
      let x0 = (c * strip) + (strip / 2) in
      (* one ray per primitive direction: same-center collinear far
         points would overlap in more than a point *)
      let seen = Hashtbl.create 16 in
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let made = ref 0 and tries = ref 0 in
      while !made < per_center && !tries < 10 * per_center do
        incr tries;
        let fx = (c * strip) + 1 + Rng.int rng (strip - 2) in
        let fy = 1 + Rng.int rng (max 1 span) in
        let g = gcd (abs (fx - x0)) fy in
        let dir = ((fx - x0) / g, fy / g) in
        if not (Hashtbl.mem seen dir) then begin
          Hashtbl.add seen dir ();
          acc :=
            Segment.make (float_of_int x0, 0.0) (float_of_int fx, float_of_int fy) :: !acc;
          incr made
        end
      done
    done;
    reid (truncate_to n (Array.of_list !acc))
  end

(* ---------------- line-based families ---------------- *)

let line_based rng ~n ~vspan ~umax =
  let bases = Array.init n (fun _ -> Rng.float rng vspan) in
  let slopes = Array.init n (fun _ -> Rng.float rng 6.0 -. 3.0) in
  Array.sort compare bases;
  Array.sort compare slopes;
  Array.init n (fun i ->
      let far_u = 0.05 +. Rng.float rng umax in
      Lseg.make ~id:i ~base_v:bases.(i) ~far_u
        ~far_v:(bases.(i) +. (slopes.(i) *. far_u))
        ())

let line_based_fan rng ~n ~centers ~vspan ~umax =
  let centers = max 1 centers in
  let per = (n + centers - 1) / centers in
  let out = Array.make n (Lseg.make ~base_v:0.0 ~far_u:0.0 ~far_v:0.0 ()) in
  let idx = ref 0 in
  for c = 0 to centers - 1 do
    let base = float_of_int (c + 1) *. (vspan /. float_of_int (centers + 1)) in
    for _ = 1 to per do
      if !idx < n then begin
        let far_u = 0.05 +. Rng.float rng umax in
        let slope = Rng.float rng 2.0 -. 1.0 in
        out.(!idx) <-
          Lseg.make ~id:!idx ~base_v:base ~far_u ~far_v:(base +. (slope *. far_u)) ();
        incr idx
      end
    done
  done;
  out

(* ---------------- queries ---------------- *)

let segment_queries rng ~n ~span ~selectivity =
  let h = Float.max 0.0 (selectivity *. span) in
  Array.init n (fun _ ->
      let x = Rng.float rng span in
      let yc = Rng.float rng span in
      Vquery.segment ~x ~ylo:(yc -. (h /. 2.0)) ~yhi:(yc +. (h /. 2.0)))

let line_queries rng ~n ~span =
  Array.init n (fun _ -> Vquery.line ~x:(Rng.float rng span))

let ray_queries rng ~n ~span =
  Array.init n (fun i ->
      let x = Rng.float rng span and y = Rng.float rng span in
      if i mod 2 = 0 then Vquery.ray_up ~x ~ylo:y else Vquery.ray_down ~x ~yhi:y)

let mixed_queries rng ~n ~span ~selectivity =
  Array.init n (fun i ->
      match i mod 3 with
      | 0 -> Vquery.line ~x:(Rng.float rng span)
      | 1 ->
          let x = Rng.float rng span and y = Rng.float rng span in
          if i mod 2 = 0 then Vquery.ray_up ~x ~ylo:y else Vquery.ray_down ~x ~yhi:y
      | _ ->
          let h = selectivity *. span in
          let x = Rng.float rng span and yc = Rng.float rng span in
          Vquery.segment ~x ~ylo:(yc -. (h /. 2.0)) ~yhi:(yc +. (h /. 2.0)))

(* ---------------- checking ---------------- *)

let verify_nct segs =
  let isegs = Array.map Predicates.of_segment segs in
  Predicates.nct_set isegs

let verify_nct_fast = Sweep.verify_nct
