lib/wbt/wbt.ml: Array List
