module Failpoint = Segdb_io.Failpoint
module Log = Segdb_obs.Log

type response = { status : int; content_type : string; body : string }

(* One in-flight request: bytes received so far, and when it started —
   a peer that never finishes its headers is reaped, not waited on. *)
type hconn = { fd : Unix.file_descr; mutable buf : string; started : float }

type t = {
  lfd : Unix.file_descr;
  bound_ : Unix.sockaddr;
  handler : string -> response;
  mutable conns : hconn list;
}

let max_request_bytes = 8192
let header_deadline_s = 5.0

let create ~handler sa =
  let dom =
    match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let lfd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try
     (match sa with
     | Unix.ADDR_INET _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
     | Unix.ADDR_UNIX _ -> ());
     Unix.bind lfd sa;
     Unix.listen lfd 16
   with e ->
     Unix.close lfd;
     raise e);
  { lfd; bound_ = Unix.getsockname lfd; handler; conns = [] }

let bound t = t.bound_
let fds t = t.lfd :: List.map (fun c -> c.fd) t.conns
let owns t fd = fd = t.lfd || List.exists (fun c -> c.fd = fd) t.conns

let close_conn t c =
  (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ());
  t.conns <- List.filter (fun c' -> c'.fd <> c.fd) t.conns

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* Through the net.write failpoint site: the fault matrix covers the
   exporter path too. A dead peer is its own problem — we were about
   to close anyway. *)
let send_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason_of status) content_type (String.length body)
  in
  let frame = Bytes.of_string (head ^ body) in
  try Failpoint.Io.send_all fd frame ~pos:0 ~len:(Bytes.length frame)
  with Unix.Unix_error (_, _, _) -> ()

let error_response status msg =
  { status; content_type = "application/json"; body = Printf.sprintf "{\"error\":%S}\n" msg }

let contains_sub hay sub =
  let nh = String.length hay and ns = String.length sub in
  let rec go i = i + ns <= nh && (String.sub hay i ns = sub || go (i + 1)) in
  go 0

(* headers end at the first blank line (CRLF or bare LF) *)
let headers_complete buf = contains_sub buf "\r\n\r\n" || contains_sub buf "\n\n"

(* "GET /path?query HTTP/1.x" -> Ok "/path"; anything else is typed so
   the caller can pick the right 4xx *)
let parse_request_line buf =
  let line =
    match String.index_opt buf '\n' with
    | Some i -> String.sub buf 0 i
    | None -> buf
  in
  let line =
    if line <> "" && line.[String.length line - 1] = '\r' then
      String.sub line 0 (String.length line - 1)
    else line
  in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ meth; target; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      if meth <> "GET" then Error (`Method meth)
      else
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        if path = "" || path.[0] <> '/' then Error (`Malformed line) else Ok path
  | _ -> Error (`Malformed line)

let answer t c =
  let resp =
    match parse_request_line c.buf with
    | Ok path -> (
        match t.handler path with
        | r -> r
        | exception e ->
            Log.warn ~comp:"http" "handler raised" (fun () ->
                [ Log.s "path" path; Log.s "error" (Printexc.to_string e) ]);
            error_response 500 "internal error")
    | Error (`Method m) -> error_response 405 (Printf.sprintf "method %s not allowed" m)
    | Error (`Malformed line) ->
        Log.warn ~comp:"http" "malformed request line" (fun () -> [ Log.s "line" line ]);
        error_response 400 "malformed request line"
  in
  send_response c.fd resp;
  close_conn t c

let read_conn t c =
  let buf = Bytes.create 4096 in
  match Failpoint.Io.recv c.fd buf ~pos:0 ~len:(Bytes.length buf) with
  | 0 ->
      (* peer closed before completing its request; nothing to answer *)
      close_conn t c
  | n ->
      c.buf <- c.buf ^ Bytes.sub_string buf 0 n;
      if String.length c.buf > max_request_bytes then begin
        send_response c.fd (error_response 400 "request too large");
        close_conn t c
      end
      else if headers_complete c.buf then answer t c
  | exception Unix.Unix_error (_, _, _) -> close_conn t c

let accept t =
  match Unix.accept t.lfd with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ -> t.conns <- { fd; buf = ""; started = Unix.gettimeofday () } :: t.conns

let handle t fd =
  if fd = t.lfd then accept t
  else
    match List.find_opt (fun c -> c.fd = fd) t.conns with
    | Some c -> read_conn t c
    | None -> ()

let reap t =
  let now = Unix.gettimeofday () in
  let stale = List.filter (fun c -> now -. c.started > header_deadline_s) t.conns in
  List.iter (close_conn t) stale

let close t =
  (try Unix.close t.lfd with Unix.Unix_error (_, _, _) -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) t.conns;
  t.conns <- []
