lib/experiments/registry.mli: Harness
