type t = { base_v : float; far_u : float; far_v : float; id : int }

let make ?(id = -1) ~base_v ~far_u ~far_v () =
  if Float.is_nan base_v || Float.is_nan far_u || Float.is_nan far_v then
    invalid_arg "Lseg.make: NaN coordinate";
  if far_u < 0.0 then invalid_arg "Lseg.make: far_u must be >= 0";
  { base_v; far_u; far_v; id }

type query = { uq : float; vlo : float; vhi : float }

let query ~uq ~vlo ~vhi =
  if uq < 0.0 then invalid_arg "Lseg.query: uq must be >= 0";
  if vlo > vhi then invalid_arg "Lseg.query: vlo > vhi";
  { uq; vlo; vhi }

let reaches s uq = s.far_u >= uq

let cross_v s uq =
  if uq = 0.0 || s.far_u = 0.0 then s.base_v
  else s.base_v +. ((s.far_v -. s.base_v) *. (uq /. s.far_u))

let matches q s =
  reaches s q.uq
  &&
  let v = cross_v s q.uq in
  q.vlo <= v && v <= q.vhi

let slope s = if s.far_u = 0.0 then 0.0 else (s.far_v -. s.base_v) /. s.far_u

let compare_base a b =
  let c = compare a.base_v b.base_v in
  if c <> 0 then c else compare a.id b.id

let compare_key a b =
  let c = compare a.base_v b.base_v in
  if c <> 0 then c
  else
    let c = compare (slope a) (slope b) in
    if c <> 0 then c else compare a.id b.id

let compare_far_u a b =
  let c = compare a.far_u b.far_u in
  if c <> 0 then c else compare a.id b.id

let equal a b =
  a.id = b.id && a.base_v = b.base_v && a.far_u = b.far_u && a.far_v = b.far_v

let pp ppf s =
  Format.fprintf ppf "L#%d[v0=%g -> (u=%g, v=%g)]" s.id s.base_v s.far_u s.far_v

let left_of_vline ~base_x (s : Segment.t) =
  if not (Segment.spans_x s base_x) then invalid_arg "Lseg.left_of_vline: no crossing";
  if Segment.is_vertical s then invalid_arg "Lseg.left_of_vline: vertical segment";
  make ~id:s.id ~base_v:(Segment.y_at s base_x) ~far_u:(base_x -. s.x1) ~far_v:s.y1 ()

let right_of_vline ~base_x (s : Segment.t) =
  if not (Segment.spans_x s base_x) then invalid_arg "Lseg.right_of_vline: no crossing";
  if Segment.is_vertical s then invalid_arg "Lseg.right_of_vline: vertical segment";
  make ~id:s.id ~base_v:(Segment.y_at s base_x) ~far_u:(s.x2 -. base_x) ~far_v:s.y2 ()

let above_hline ~base_y (s : Segment.t) =
  let on_base y = y = base_y in
  if on_base s.y1 && s.y2 >= base_y then
    make ~id:s.id ~base_v:s.x1 ~far_u:(s.y2 -. base_y) ~far_v:s.x2 ()
  else if on_base s.y2 && s.y1 >= base_y then
    make ~id:s.id ~base_v:s.x2 ~far_u:(s.y1 -. base_y) ~far_v:s.x1 ()
  else invalid_arg "Lseg.above_hline: segment is not line-based on this line"

let to_segment_above ~base_y s =
  Segment.make ~id:s.id (s.base_v, base_y) (s.far_v, base_y +. s.far_u)
