lib/io/block_store.mli: Io_stats
