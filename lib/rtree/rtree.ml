open Segdb_io
open Segdb_geom

type node =
  | Leaf of (Bbox.t * Segment.t) array
  | Inner of (Bbox.t * Block_store.addr) array

module Store = Block_store.Make (struct
  type t = node
end)

type t = {
  store : Store.t;
  cap : int;
  mutable root : Block_store.addr; (* null iff empty *)
  mutable size : int;
  mutable height : int;
}

let min_occ cap = max 1 (cap * 2 / 5)

let create ?(node_capacity = 64) ~pool ~stats () =
  if node_capacity < 4 then invalid_arg "Rtree.create: node_capacity must be >= 4";
  let store = Store.create ~name:"rtree" ~pool ~stats () in
  { store; cap = node_capacity; root = Block_store.null; size = 0; height = 0 }

let size t = t.size
let height t = t.height
let block_count t = Store.block_count t.store

let node_bbox = function
  | Leaf entries ->
      Array.fold_left (fun acc (b, _) -> Bbox.union acc b) (fst entries.(0)) entries
  | Inner entries ->
      Array.fold_left (fun acc (b, _) -> Bbox.union acc b) (fst entries.(0)) entries

(* ---------------- STR bulk loading ---------------- *)

let bulk_load ?(node_capacity = 64) ~pool ~stats segs =
  let t = create ~node_capacity ~pool ~stats () in
  let n = Array.length segs in
  if n = 0 then t
  else begin
    let cap = t.cap in
    (* Pack rectangles into nodes of [cap] by x-slices then y-order. *)
    let leaves =
      let entries = Array.map (fun s -> (Bbox.of_segment s, s)) segs in
      let nnodes = (n + cap - 1) / cap in
      let nslices = int_of_float (ceil (sqrt (float_of_int nnodes))) in
      let slice_sz = nslices * cap in
      Array.sort
        (fun (a, _) (b, _) -> compare (fst (Bbox.center a)) (fst (Bbox.center b)))
        entries;
      let acc = ref [] in
      let i = ref 0 in
      while !i < n do
        let len = min slice_sz (n - !i) in
        let slice = Array.sub entries !i len in
        Array.sort
          (fun (a, _) (b, _) -> compare (snd (Bbox.center a)) (snd (Bbox.center b)))
          slice;
        let j = ref 0 in
        while !j < len do
          let l = min cap (len - !j) in
          let chunk = Array.sub slice !j l in
          let addr = Store.alloc t.store (Leaf chunk) in
          let bbox = Array.fold_left (fun a (b, _) -> Bbox.union a b) (fst chunk.(0)) chunk in
          acc := (bbox, addr) :: !acc;
          j := !j + l
        done;
        i := !i + len
      done;
      Array.of_list (List.rev !acc)
    in
    let rec pack level (nodes : (Bbox.t * Block_store.addr) array) =
      if Array.length nodes = 1 then begin
        t.root <- snd nodes.(0);
        t.height <- level
      end
      else begin
        let m = Array.length nodes in
        let nnodes = (m + cap - 1) / cap in
        let nslices = int_of_float (ceil (sqrt (float_of_int nnodes))) in
        let slice_sz = nslices * cap in
        Array.sort (fun (a, _) (b, _) -> compare (fst (Bbox.center a)) (fst (Bbox.center b))) nodes;
        let acc = ref [] in
        let i = ref 0 in
        while !i < m do
          let len = min slice_sz (m - !i) in
          let slice = Array.sub nodes !i len in
          Array.sort (fun (a, _) (b, _) -> compare (snd (Bbox.center a)) (snd (Bbox.center b))) slice;
          let j = ref 0 in
          while !j < len do
            let l = min cap (len - !j) in
            let chunk = Array.sub slice !j l in
            let addr = Store.alloc t.store (Inner chunk) in
            let bbox = Array.fold_left (fun a (b, _) -> Bbox.union a b) (fst chunk.(0)) chunk in
            acc := (bbox, addr) :: !acc;
            j := !j + l
          done;
          i := !i + len
        done;
        pack (level + 1) (Array.of_list (List.rev !acc))
      end
    in
    pack 1 leaves;
    t.size <- n;
    t
  end

(* ---------------- query ---------------- *)

let query t (q : Vquery.t) ~f =
  let qbox = Bbox.of_vquery q in
  let rec go addr =
    match Store.read t.store addr with
    | Leaf entries ->
        Array.iter (fun (b, s) -> if Bbox.intersects b qbox && Vquery.matches q s then f s) entries
    | Inner entries ->
        Array.iter (fun (b, kid) -> if Bbox.intersects b qbox then go kid) entries
  in
  if t.root <> Block_store.null then go t.root

let query_list t q =
  let acc = ref [] in
  query t q ~f:(fun s -> acc := s :: !acc);
  !acc

let iter t f =
  let rec go addr =
    match Store.read t.store addr with
    | Leaf entries -> Array.iter (fun (_, s) -> f s) entries
    | Inner entries -> Array.iter (fun (_, kid) -> go kid) entries
  in
  if t.root <> Block_store.null then go t.root

(* ---------------- insertion ---------------- *)

(* Quadratic split (Guttman): pick the pair wasting the most area as
   seeds, then assign entries to the group whose bbox grows least. *)
let quadratic_split (type e) (entries : (Bbox.t * e) array) =
  let n = Array.length entries in
  let seed1 = ref 0 and seed2 = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let bi = fst entries.(i) and bj = fst entries.(j) in
      let waste = Bbox.area (Bbox.union bi bj) -. Bbox.area bi -. Bbox.area bj in
      if waste > !worst then begin
        worst := waste;
        seed1 := i;
        seed2 := j
      end
    done
  done;
  let g1 = ref [ entries.(!seed1) ] and g2 = ref [ entries.(!seed2) ] in
  let b1 = ref (fst entries.(!seed1)) and b2 = ref (fst entries.(!seed2)) in
  let min_target = min_occ n in
  let rest =
    Array.to_list entries
    |> List.filteri (fun i _ -> i <> !seed1 && i <> !seed2)
  in
  List.iteri
    (fun idx ((b, _) as e) ->
      let remaining = List.length rest - idx in
      (* force-finish a group that must take everything left to reach
         minimum occupancy *)
      if List.length !g1 + remaining <= min_target then begin
        g1 := e :: !g1;
        b1 := Bbox.union !b1 b
      end
      else if List.length !g2 + remaining <= min_target then begin
        g2 := e :: !g2;
        b2 := Bbox.union !b2 b
      end
      else begin
        let e1 = Bbox.enlargement !b1 b and e2 = Bbox.enlargement !b2 b in
        if e1 < e2 || (e1 = e2 && Bbox.area !b1 <= Bbox.area !b2) then begin
          g1 := e :: !g1;
          b1 := Bbox.union !b1 b
        end
        else begin
          g2 := e :: !g2;
          b2 := Bbox.union !b2 b
        end
      end)
    rest;
  (Array.of_list !g1, Array.of_list !g2)

let array_push a x = Array.append a [| x |]

(* Insert into subtree; returns the subtree's new bbox and an optional
   (bbox, addr) of a freshly split-off sibling. *)
let rec insert_rec t addr (box : Bbox.t) (s : Segment.t) =
  match Store.read t.store addr with
  | Leaf entries ->
      let entries = array_push entries (box, s) in
      if Array.length entries <= t.cap then begin
        Store.write t.store addr (Leaf entries);
        (node_bbox (Leaf entries), None)
      end
      else begin
        let g1, g2 = quadratic_split entries in
        Store.write t.store addr (Leaf g1);
        let sib = Store.alloc t.store (Leaf g2) in
        (node_bbox (Leaf g1), Some (node_bbox (Leaf g2), sib))
      end
  | Inner entries ->
      (* least-enlargement child *)
      let best = ref 0 and best_enl = ref infinity and best_area = ref infinity in
      Array.iteri
        (fun i (b, _) ->
          let enl = Bbox.enlargement b box and area = Bbox.area b in
          if enl < !best_enl || (enl = !best_enl && area < !best_area) then begin
            best := i;
            best_enl := enl;
            best_area := area
          end)
        entries;
      let _, kid = entries.(!best) in
      let kbox, split = insert_rec t kid box s in
      let entries = Array.copy entries in
      entries.(!best) <- (kbox, kid);
      let entries = match split with None -> entries | Some e -> array_push entries e in
      if Array.length entries <= t.cap then begin
        Store.write t.store addr (Inner entries);
        (node_bbox (Inner entries), None)
      end
      else begin
        let g1, g2 = quadratic_split entries in
        Store.write t.store addr (Inner g1);
        let sib = Store.alloc t.store (Inner g2) in
        (node_bbox (Inner g1), Some (node_bbox (Inner g2), sib))
      end

let insert t s =
  let box = Bbox.of_segment s in
  if t.root = Block_store.null then begin
    t.root <- Store.alloc t.store (Leaf [| (box, s) |]);
    t.height <- 1
  end
  else begin
    let rbox, split = insert_rec t t.root box s in
    match split with
    | None -> ()
    | Some (sbox, sib) ->
        let root = Store.alloc t.store (Inner [| (rbox, t.root); (sbox, sib) |]) in
        t.root <- root;
        t.height <- t.height + 1
  end;
  t.size <- t.size + 1

(* ---------------- deletion ---------------- *)

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* Remove [s] from the subtree; [`Gone] = not found here, [`Removed r]
   with [r = None] when the subtree emptied, or its refreshed entry.
   Underfull nodes are tolerated (no re-insertion pass): queries stay
   exact; occupancy degrades only under heavy deletion, which the
   invariant checker and benches account for. *)
let rec delete_rec t addr box (s : Segment.t) =
  match Store.read t.store addr with
  | Leaf entries -> (
      match Array.find_index (fun (_, c) -> Segment.equal c s) entries with
      | Some i ->
          let out = array_remove entries i in
          if Array.length out = 0 then begin
            Store.free t.store addr;
            `Removed None
          end
          else begin
            Store.write t.store addr (Leaf out);
            `Removed (Some (node_bbox (Leaf out), addr))
          end
      | None -> `Gone)
  | Inner entries ->
      let n = Array.length entries in
      let result = ref `Gone in
      let i = ref 0 in
      while !result = `Gone && !i < n do
        let b, kid = entries.(!i) in
        if Bbox.contains b box then begin
          match delete_rec t kid box s with
          | `Gone -> ()
          | `Removed res ->
              let entries =
                match res with
                | Some e ->
                    let entries = Array.copy entries in
                    entries.(!i) <- e;
                    entries
                | None -> array_remove entries !i
              in
              if Array.length entries = 0 then begin
                Store.free t.store addr;
                result := `Removed None
              end
              else begin
                Store.write t.store addr (Inner entries);
                result := `Removed (Some (node_bbox (Inner entries), addr))
              end
        end;
        incr i
      done;
      !result

let delete t (s : Segment.t) =
  if t.root = Block_store.null then false
  else
    match delete_rec t t.root (Bbox.of_segment s) s with
    | `Gone -> false
    | `Removed res ->
        t.size <- t.size - 1;
        (match res with
        | None ->
            t.root <- Block_store.null;
            t.height <- 0
        | Some (_, addr) ->
            t.root <- addr;
            (* collapse single-child chains at the root *)
            let rec collapse () =
              match Store.read t.store t.root with
              | Inner [| (_, only) |] ->
                  Store.free t.store t.root;
                  t.root <- only;
                  t.height <- t.height - 1;
                  collapse ()
              | _ -> ()
            in
            collapse ());
        true

(* ---------------- invariants ---------------- *)

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let count = ref 0 in
  let rec go addr depth ~is_root =
    match Store.read t.store addr with
    | Leaf entries ->
        if depth <> t.height then fail ();
        if Array.length entries > t.cap then fail ();
        if (not is_root) && Array.length entries < 1 then fail ();
        count := !count + Array.length entries;
        Array.iter (fun (b, s) -> if not (Bbox.contains b (Bbox.of_segment s)) then fail ()) entries;
        node_bbox (Leaf entries)
    | Inner entries ->
        if Array.length entries > t.cap then fail ();
        if is_root && Array.length entries < 2 then fail ();
        if Array.length entries < 1 then fail ();
        Array.iter
          (fun (b, kid) ->
            let actual = go kid (depth + 1) ~is_root:false in
            if not (Bbox.contains b actual) then fail ())
          entries;
        node_bbox (Inner entries)
  in
  if t.root <> Block_store.null then ignore (go t.root 1 ~is_root:true)
  else if t.size <> 0 then fail ();
  if !count <> t.size && t.root <> Block_store.null then fail ();
  !ok
