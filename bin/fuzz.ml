(* Model-based stress tool.

   Runs long random operation sequences (build / insert / delete /
   query of every kind, boundary-snapped abscissas included) against
   every backend simultaneously and compares each answer with a naive
   in-memory model. Any divergence prints the seed and aborts, so a
   failure is a one-line reproducer.

   With --crash, runs the crash matrix instead: for every registered
   fault site, arm a hard crash cut at that site, run a workload until
   it fires, kill the process state there, recover from what survives
   on disk, and cross-check the recovered database against the model
   (allowing exactly the in-flight operation to differ).

   With --net, serves the database in-process over a Unix socket, arms
   one-shot faults on the socket sites, and cross-checks every remote
   answer (after the client's bounded retries) against the in-process
   oracle.

   Usage: fuzz [--rounds N] [--ops N] [--seed N] [--size N]
               [--persist] [--parallel] [--domains N] [--crash] [--net] *)

open Cmdliner
open Segdb_geom
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Vs = Segdb_core.Vs_index
module Io_stats = Segdb_io.Io_stats
module Codec = Segdb_io.Codec
module File_store = Segdb_io.File_store
module Failpoint = Segdb_io.Failpoint
module Snapshot = Segdb_core.Snapshot

module Model = struct
  let create () : (int, Segment.t) Hashtbl.t = Hashtbl.create 256
  let insert t (s : Segment.t) = Hashtbl.replace t s.id s
  let delete t (s : Segment.t) = Hashtbl.remove t s.id

  let query t q =
    Hashtbl.fold
      (fun _ s acc -> if Vquery.matches q s then s.Segment.id :: acc else acc)
      t []
    |> List.sort compare
end

let backends : (string * (module Vs.S)) list =
  [
    ("naive", (module Segdb_core.Naive));
    ("rtree", (module Segdb_core.Rtree_index));
    ("solution1", (module Segdb_core.Solution1));
    ("solution2", (module Segdb_core.Solution2));
  ]

type instance = Instance : string * (module Vs.S with type t = 'a) * 'a -> instance

let run_round ~seed ~ops ~size round =
  let seed = seed + (round * 7919) in
  let rng = Rng.create seed in
  let family = Rng.int rng 5 in
  let pool_segs =
    match family with
    | 0 -> W.roads (Rng.split rng) ~n:(2 * size) ~span:200.0
    | 1 -> W.grid_city (Rng.split rng) ~n:(2 * size) ~span:200 ~max_len:30
    | 2 -> W.temporal (Rng.split rng) ~n:(2 * size) ~keys:20 ~horizon:400
    | 3 -> W.fans (Rng.split rng) ~n:(2 * size) ~centers:5 ~span:200
    | _ -> W.long_spans (Rng.split rng) ~n:(2 * size) ~span:200.0
  in
  let n0 = Array.length pool_segs / 2 in
  let initial = Array.sub pool_segs 0 n0 in
  let spare = ref (Array.to_list (Array.sub pool_segs n0 (Array.length pool_segs - n0))) in
  let model = Model.create () in
  Array.iter (Model.insert model) initial;
  let instances =
    List.map
      (fun (name, (module M : Vs.S)) ->
        let cfg = Vs.config ~pool_blocks:16 ~block:(8 lsl Rng.int rng 3) () in
        Instance (name, (module M), M.build cfg initial))
      backends
  in
  let live = ref (Array.to_list initial) in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (round %d, seed %d): %s\n" round seed msg;
        exit 1)
      fmt
  in
  let random_query () =
    let x =
      if Rng.bool rng || !live = [] then Rng.float rng 220.0 -. 10.0
      else begin
        (* boundary-snapped: an actual endpoint abscissa *)
        let s = List.nth !live (Rng.int rng (List.length !live)) in
        if Rng.bool rng then s.Segment.x1 else s.Segment.x2
      end
    in
    match Rng.int rng 4 with
    | 0 -> Vquery.line ~x
    | 1 -> Vquery.ray_up ~x ~ylo:(Rng.float rng 200.0)
    | 2 -> Vquery.ray_down ~x ~yhi:(Rng.float rng 200.0)
    | _ ->
        let y = Rng.float rng 200.0 in
        Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0)
  in
  for op = 1 to ops do
    match Rng.int rng 10 with
    | 0 | 1 -> (
        (* insert a fresh segment *)
        match !spare with
        | s :: rest ->
            spare := rest;
            live := s :: !live;
            Model.insert model s;
            List.iter (fun (Instance (_, (module M), t)) -> M.insert t s) instances
        | [] -> ())
    | 2 when !live <> [] ->
        (* delete a random live segment *)
        let s = List.nth !live (Rng.int rng (List.length !live)) in
        live := List.filter (fun (c : Segment.t) -> c.id <> s.Segment.id) !live;
        Model.delete model s;
        List.iter
          (fun (Instance (name, (module M), t)) ->
            if not (M.delete t s) then fail "op %d: %s delete missed id %d" op name s.Segment.id)
          instances
    | _ ->
        let q = random_query () in
        let expected = Model.query model q in
        List.iter
          (fun (Instance (name, (module M), t)) ->
            let got = Vs.query_ids (module M) t q in
            if got <> expected then
              fail "op %d: %s answered %d ids, expected %d on %s" op name (List.length got)
                (List.length expected)
                (Format.asprintf "%a" Vquery.pp q))
          instances
  done;
  (* final audit: sizes and a full line sweep *)
  List.iter
    (fun (Instance (name, (module M), t)) ->
      if M.size t <> Hashtbl.length model then
        fail "final: %s size %d vs model %d" name (M.size t) (Hashtbl.length model))
    instances

module Db = Segdb_core.Segdb
module Exec = Segdb_exec.Exec

(* Parallel round: every backend answers a random query batch three
   times — serially, via [Segdb.parallel_query] (which fans out on the
   shared execution engine), and through [Exec.submit] on the default
   pool (the server's admission path) — and the answers must be
   identical, element by element. A second batch runs after a burst of
   inserts and deletes so the cross-check also covers indexes reshaped
   by mutation (rebuilt PSTs, split blocks). *)

let run_parallel_round ~seed ~ops ~size ~domains round =
  let seed = seed + (round * 31337) in
  let rng = Rng.create seed in
  let pool_segs =
    match Rng.int rng 5 with
    | 0 -> W.roads (Rng.split rng) ~n:(2 * size) ~span:200.0
    | 1 -> W.grid_city (Rng.split rng) ~n:(2 * size) ~span:200 ~max_len:30
    | 2 -> W.temporal (Rng.split rng) ~n:(2 * size) ~keys:20 ~horizon:400
    | 3 -> W.fans (Rng.split rng) ~n:(2 * size) ~centers:5 ~span:200
    | _ -> W.long_spans (Rng.split rng) ~n:(2 * size) ~span:200.0
  in
  let n0 = Array.length pool_segs / 2 in
  let initial = Array.sub pool_segs 0 n0 in
  let spare = ref (Array.to_list (Array.sub pool_segs n0 (Array.length pool_segs - n0))) in
  let live = ref (Array.to_list initial) in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (parallel round %d, seed %d): %s\n" round seed msg;
        exit 1)
      fmt
  in
  let block = 8 lsl Rng.int rng 3 in
  let dbs =
    List.map
      (fun (name, backend) -> (name, Db.create ~backend ~block ~pool_blocks:16 initial))
      Db.all_backends
  in
  let random_query () =
    let x =
      if Rng.bool rng || !live = [] then Rng.float rng 220.0 -. 10.0
      else begin
        let s = List.nth !live (Rng.int rng (List.length !live)) in
        if Rng.bool rng then s.Segment.x1 else s.Segment.x2
      end
    in
    match Rng.int rng 4 with
    | 0 -> Vquery.line ~x
    | 1 -> Vquery.ray_up ~x ~ylo:(Rng.float rng 200.0)
    | 2 -> Vquery.ray_down ~x ~yhi:(Rng.float rng 200.0)
    | _ ->
        let y = Rng.float rng 200.0 in
        Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0)
  in
  let cross_check label =
    let qs = Array.init (max 1 ops) (fun _ -> random_query ()) in
    List.iter
      (fun (name, db) ->
        let serial = Array.map (Db.query_ids db) qs in
        let par = Db.parallel_query db qs ~domains in
        Array.iteri
          (fun i got ->
            if got <> serial.(i) then
              fail "%s: %s parallel answer diverged from serial (%d vs %d ids) on %s" label
                name (List.length got)
                (List.length serial.(i))
                (Format.asprintf "%a" Vquery.pp qs.(i)))
          par;
        let tk = Exec.submit (Exec.default ()) db (Exec.request qs) in
        (match Exec.await tk with
        | Exec.Ok out ->
            Array.iteri
              (fun i got ->
                if got <> serial.(i) then
                  fail "%s: %s pool answer diverged from serial (%d vs %d ids) on %s" label
                    name (List.length got)
                    (List.length serial.(i))
                    (Format.asprintf "%a" Vquery.pp qs.(i)))
              out
        | o -> fail "%s: %s pool refused the batch: %s" label name
                 (Format.asprintf "%a" Exec.pp_outcome o)))
      dbs
  in
  cross_check "fresh build";
  (* reshape the indexes, then cross-check again *)
  for _ = 1 to max 1 (size / 4) do
    match !spare with
    | s :: rest ->
        spare := rest;
        live := s :: !live;
        List.iter (fun (_, db) -> Db.insert db s) dbs
    | [] -> ()
  done;
  for _ = 1 to max 1 (size / 8) do
    match !live with
    | [] -> ()
    | _ ->
        let s = List.nth !live (Rng.int rng (List.length !live)) in
        live := List.filter (fun (c : Segment.t) -> c.id <> s.Segment.id) !live;
        List.iter
          (fun (name, db) ->
            if not (Db.delete db s) then fail "%s delete missed id %d" name s.Segment.id)
          dbs
  done;
  cross_check "after mutation"

(* Persistence round: random ops against the facade with a WAL attached,
   snapshots at random points, then a simulated crash — the db is dropped
   and reopened from snapshot + log. Answers before and after the reopen
   must match each other and the model; both open paths (marshaled image
   and rebuild) are exercised.

   All scratch files live under one dedicated temp root, removed on
   exit via [at_exit] — including the failure path, which exits with
   status 1 after printing the reproducer. *)

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let scratch_root =
  lazy
    (let dir = Filename.temp_file "segdb_fuzz" ".d" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     at_exit (fun () -> try remove_tree dir with Unix.Unix_error _ | Sys_error _ -> ());
     dir)

let run_persist_round ~seed ~ops ~size round =
  let seed = seed + (round * 104729) in
  let rng = Rng.create seed in
  let backend = Rng.pick rng [| `Naive; `Rtree; `Solution1; `Solution2; `Solution2_nofc |] in
  let pool_segs = W.roads (Rng.split rng) ~n:(2 * size) ~span:200.0 in
  let n0 = Array.length pool_segs / 2 in
  let initial = Array.sub pool_segs 0 n0 in
  let spare = ref (Array.to_list (Array.sub pool_segs n0 (Array.length pool_segs - n0))) in
  let dir = Filename.concat (Lazy.force scratch_root) (Printf.sprintf "round%d" round) in
  Unix.mkdir dir 0o700;
  let snap = Filename.concat dir "db.snap" and wal = Filename.concat dir "db.wal" in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (persist round %d, seed %d): %s\n" round seed msg;
        exit 1)
      fmt
  in
  let model = Model.create () in
  Array.iter (Model.insert model) initial;
  let db = Db.create ~backend ~block:(8 lsl Rng.int rng 3) initial in
  Db.save db snap;
  ignore (Db.attach_wal ~sync:false db wal);
  let live = ref (Array.to_list initial) in
  for op = 1 to ops do
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> (
        match !spare with
        | s :: rest ->
            spare := rest;
            live := s :: !live;
            Model.insert model s;
            Db.insert db s
        | [] -> ())
    | 3 when !live <> [] ->
        let s = List.nth !live (Rng.int rng (List.length !live)) in
        live := List.filter (fun (c : Segment.t) -> c.id <> s.Segment.id) !live;
        Model.delete model s;
        if not (Db.delete db s) then fail "op %d: delete missed id %d" op s.Segment.id
    | 4 when Rng.int rng 8 = 0 ->
        (* occasional checkpoint: snapshot + truncate the log *)
        Db.checkpoint db snap
    | _ ->
        let x = Rng.float rng 220.0 -. 10.0 in
        let y = Rng.float rng 200.0 in
        let q = Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0) in
        let got = List.sort compare (Db.query_ids db q) in
        if got <> Model.query model q then
          fail "op %d: live db diverged from model on %s" op
            (Format.asprintf "%a" Vquery.pp q)
  done;
  let queries = Array.init 30 (fun _ ->
      let x = Rng.float rng 220.0 -. 10.0 in
      let y = Rng.float rng 200.0 in
      Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0))
  in
  let before = Array.map (fun q -> List.sort compare (Db.query_ids db q)) queries in
  Db.detach_wal db
  (* crash: the live index is dropped; only snapshot + log survive *);
  let use_image = Rng.bool rng in
  let db2, _ = Db.open_db_mode ~use_image snap in
  ignore (Db.attach_wal ~sync:false db2 wal);
  if Db.size db2 <> Hashtbl.length model then
    fail "reopen (%s): size %d vs model %d"
      (if use_image then "image" else "rebuild")
      (Db.size db2) (Hashtbl.length model);
  Array.iteri
    (fun i q ->
      let after = List.sort compare (Db.query_ids db2 q) in
      if after <> before.(i) then
        fail "reopen (%s): answers differ on %s"
          (if use_image then "image" else "rebuild")
          (Format.asprintf "%a" Vquery.pp q);
      if after <> Model.query model q then
        fail "reopen: recovered db diverged from model on %s"
          (Format.asprintf "%a" Vquery.pp q))
    queries;
  Db.detach_wal db2;
  (* eager per-round cleanup so long runs don't accumulate scratch;
     the at_exit sweep of the root covers every early-exit path *)
  remove_tree dir

(* ---------------- crash matrix ----------------

   One round per (round, site): a workload runs with a hard crash cut
   armed at the site; when it fires, the in-memory state is abandoned
   exactly as a dying process would leave it, and recovery must
   reconstruct the model — modulo the single operation that was in
   flight, which may legitimately be present (logged before the cut)
   or absent (cut before the log write). *)

let ids_of_model model =
  Hashtbl.fold (fun id _ acc -> id :: acc) model [] |> List.sort compare

let site_dir site round =
  let dir =
    Filename.concat (Lazy.force scratch_root)
      (Printf.sprintf "crash%d_%s" round
         (String.map (function '.' -> '_' | c -> c) site))
  in
  Unix.mkdir dir 0o700;
  dir

(* Sites on the Segdb facade path: WAL + snapshot + query. The round
   cycles inserts, deletes, queries and checkpoints so every one of
   these sites is exercised within a few iterations. *)
let run_crash_db_round ~seed ~ops ~size ~site round =
  let seed = seed + (round * 524287) + (Hashtbl.hash site mod 65536) in
  let rng = Rng.create seed in
  let backend = Rng.pick rng [| `Naive; `Rtree; `Solution1; `Solution2; `Solution2_nofc |] in
  let pool_segs = W.roads (Rng.split rng) ~n:(2 * size) ~span:200.0 in
  let n0 = Array.length pool_segs / 2 in
  let initial = Array.sub pool_segs 0 n0 in
  let spare = ref (Array.to_list (Array.sub pool_segs n0 (Array.length pool_segs - n0))) in
  let dir = site_dir site round in
  let snap = Filename.concat dir "db.snap" and wal = Filename.concat dir "db.wal" in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (crash round %d, site %s, seed %d): %s\n" round site
          seed msg;
        exit 1)
      fmt
  in
  let model = Model.create () in
  Array.iter (Model.insert model) initial;
  let db = Db.create ~backend ~block:(8 lsl Rng.int rng 3) initial in
  Db.save db snap;
  ignore (Db.attach_wal ~sync:true db wal);
  let live = ref (Array.to_list initial) in
  (* torn writes are a meaningful crash shape only at write sites *)
  let action =
    if (site = "wal.append" || site = "snapshot.write") && Rng.bool rng then
      Failpoint.Torn
    else Failpoint.Crash
  in
  Failpoint.arm ~seed [ (site, Failpoint.plan ~at:(1 + Rng.int rng 4) action) ];
  let inflight = ref None in
  let crashed = ref false in
  (try
     let op = ref 0 in
     while (not !crashed) && !op < ops do
       incr op;
       match !op mod 5 with
       | 1 | 2 -> (
           match !spare with
           | s :: rest ->
               spare := rest;
               inflight := Some (`Ins s);
               Db.insert db s;
               inflight := None;
               live := s :: !live;
               Model.insert model s
           | [] -> ())
       | 3 -> (
           match !live with
           | [] -> ()
           | l ->
               let s = List.nth l (Rng.int rng (List.length l)) in
               inflight := Some (`Del s);
               ignore (Db.delete db s);
               inflight := None;
               live := List.filter (fun (c : Segment.t) -> c.id <> s.Segment.id) l;
               Model.delete model s)
       | 4 ->
           inflight := None;
           Db.checkpoint db snap
       | _ ->
           let x = Rng.float rng 220.0 -. 10.0 in
           let y = Rng.float rng 200.0 in
           ignore (Db.query_ids db (Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0)))
     done
   with Failpoint.Injected_crash _ -> crashed := true);
  Failpoint.disarm ();
  if not !crashed then fail "site never fired in %d operations" ops;
  (* the process is "dead": drop the handles without any clean-up write *)
  (try Db.detach_wal db with _ -> ());
  (* recovery: snapshot + WAL replay *)
  let use_image = Rng.bool rng in
  let db2, _ = Db.open_db_mode ~use_image snap in
  ignore (Db.attach_wal ~sync:false db2 wal);
  let got =
    Db.segments db2 |> Array.to_list |> List.map (fun (s : Segment.t) -> s.Segment.id)
  in
  let base = ids_of_model model in
  if got = base then ()
  else begin
    (* the recovered state may include exactly the in-flight operation:
       logged-then-cut is as legitimate as cut-before-log *)
    match !inflight with
    | Some (`Ins s) when got = List.sort compare (s.Segment.id :: base) ->
        Model.insert model s
    | Some (`Del s) when got = List.filter (fun id -> id <> s.Segment.id) base ->
        Model.delete model s
    | _ ->
        fail "recovered id set (%d ids) matches neither the model (%d) nor model ± \
              in-flight op"
          (List.length got) (List.length base)
  end;
  for _ = 1 to 30 do
    let x = Rng.float rng 220.0 -. 10.0 in
    let y = Rng.float rng 200.0 in
    let q = Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0) in
    let after = List.sort compare (Db.query_ids db2 q) in
    if after <> Model.query model q then
      fail "recovered db diverged from model on %s" (Format.asprintf "%a" Vquery.pp q)
  done;
  (match Db.validate ~queries:5 db2 with
  | [] -> ()
  | f :: _ -> fail "recovered db fails validation: %s" f);
  (* checkpointing the recovered state must produce a clean snapshot *)
  let snap2 = Filename.concat dir "recovered.snap" in
  Db.checkpoint db2 snap2;
  (match Snapshot.salvage ~path:snap2 with
  | [], Some _ -> ()
  | fs, _ -> fail "checkpointed recovery has findings: %s" (String.concat "; " fs));
  Db.detach_wal db2;
  remove_tree dir

(* Sites on the raw syscall path: a [File_store] workload with a tiny
   cache (so reads miss and writes evict). The contract after a crash
   cut: reopening either detects damage ([Corrupt_store]) or yields a
   store where every block untouched since the last sync reads back
   intact — and a reopened store, once synced, scrubs clean. *)

module FS = File_store.Make (struct
  type t = int array

  let codec = Codec.(array int)
end)

let run_crash_store_round ~seed ~ops ~site round =
  let seed = seed + (round * 786433) + (Hashtbl.hash site mod 65536) in
  let rng = Rng.create seed in
  let dir = site_dir site round in
  let path = Filename.concat dir "store.fst" in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (crash round %d, site %s, seed %d): %s\n" round site
          seed msg;
        exit 1)
      fmt
  in
  let fs = FS.create ~page_size:256 ~cache_blocks:8 ~stats:(Io_stats.create ()) ~path () in
  let model : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let durable : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let touched : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let payload () = Array.init (1 + Rng.int rng 120) (fun _ -> Rng.int rng 1_000_000) in
  let random_addr () =
    match Hashtbl.fold (fun a _ acc -> a :: acc) model [] with
    | [] -> None
    | l -> Some (List.nth l (Rng.int rng (List.length l)))
  in
  let snapshot_durable () =
    Hashtbl.reset touched;
    Hashtbl.reset durable;
    Hashtbl.iter (fun a p -> Hashtbl.replace durable a (Array.copy p)) model
  in
  let do_op () =
    match Rng.int rng 10 with
    | 0 | 1 ->
        let p = payload () in
        let a = FS.alloc fs p in
        Hashtbl.replace touched a ();
        Hashtbl.replace model a p
    | 2 | 3 -> (
        match random_addr () with
        | Some a ->
            let p = payload () in
            Hashtbl.replace touched a ();
            FS.write fs a p;
            Hashtbl.replace model a p
        | None -> ())
    | 4 -> (
        match random_addr () with
        | Some a when Hashtbl.length model > 4 ->
            Hashtbl.replace touched a ();
            FS.free fs a;
            Hashtbl.remove model a
        | _ -> ())
    | 5 ->
        FS.sync fs;
        snapshot_durable ()
    | _ -> (
        match random_addr () with
        | Some a ->
            let v = FS.read fs a in
            if v <> Hashtbl.find model a then fail "live read of block %d diverged" a
        | None -> ())
  in
  for _ = 1 to 20 do
    let p = payload () in
    let a = FS.alloc fs p in
    Hashtbl.replace model a p
  done;
  FS.sync fs;
  snapshot_durable ();
  Failpoint.arm ~seed [ (site, Failpoint.plan ~at:(1 + Rng.int rng 5) Failpoint.Crash) ];
  let crashed = ref false in
  (try
     let i = ref 0 in
     while (not !crashed) && !i < ops do
       incr i;
       do_op ()
     done;
     (* the random mix may not have drawn the armed operation enough
        times to reach its trigger hit: drive the site directly *)
     let j = ref 0 in
     while (not !crashed) && !j < 64 do
       incr j;
       match site with
       | "store.sync" ->
           FS.sync fs;
           snapshot_durable ()
       | "pwrite" ->
           let p = payload () in
           let a = FS.alloc fs p in
           Hashtbl.replace touched a ();
           Hashtbl.replace model a p;
           FS.sync fs;
           snapshot_durable ()
       | _ -> (
           match random_addr () with
           | Some a -> ignore (FS.read fs a)
           | None -> ())
     done
   with Failpoint.Injected_crash _ -> crashed := true);
  Failpoint.disarm ();
  if not !crashed then fail "site never fired in %d operations" ops;
  FS.crash fs;
  (* a scrub of the crash-cut image must diagnose, never raise *)
  ignore (File_store.Scrub.file path);
  (match FS.open_existing ~stats:(Io_stats.create ()) ~path () with
  | exception File_store.Corrupt_store _ -> () (* detected damage: acceptable *)
  | fs2 ->
      Hashtbl.iter
        (fun a p ->
          if not (Hashtbl.mem touched a) then
            match FS.read fs2 a with
            | v -> if v <> p then fail "untouched block %d changed across the crash" a
            | exception File_store.Corrupt_store m ->
                fail "untouched block %d unreadable after recovery: %s" a m)
        durable;
      FS.close fs2;
      (match File_store.Scrub.file path with
      | [] -> ()
      | f :: _ -> fail "recovered store does not scrub clean: %s" f));
  remove_tree dir

(* ---------------- network round ----------------

   The database is served in-process over a Unix socket and a client
   cross-checks every remote answer against the in-process oracle —
   while one-shot faults are armed on the socket sites ([net.read],
   [net.write]). One-shot plans keep every fault survivable by
   construction: the damaged exchange fails once (a torn frame, a
   flipped bit caught by the CRC, a short transfer, a transient EIO)
   and the client's bounded retry must then land the same answer the
   in-process query gives. Crash actions are excluded: on a socket
   site they model process death, which is the crash matrix's job. *)

module Net_server = Segdb_net.Server
module Net_client = Segdb_net.Client

let net_actions = [| Failpoint.Eio; Failpoint.Short; Failpoint.Bit_flip; Failpoint.Torn |]

let run_net_round ~seed ~ops ~size round =
  let seed = seed + (round * 49157) in
  let rng = Rng.create seed in
  let backend = Rng.pick rng [| `Naive; `Rtree; `Solution1; `Solution2; `Solution2_nofc |] in
  let segs = W.roads (Rng.split rng) ~n:size ~span:200.0 in
  let db = Db.create ~backend ~block:(8 lsl Rng.int rng 3) segs in
  let dir = Filename.concat (Lazy.force scratch_root) (Printf.sprintf "net%d" round) in
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "fuzz.sock" in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (net round %d, seed %d): %s\n" round seed msg;
        exit 1)
      fmt
  in
  let srv = Net_server.create ~domains:2 ~queue_depth:64 ~db (Net_server.Unix_path sock) in
  Net_server.start srv;
  let c = Net_client.connect ~retries:8 ~backoff_ms:2 (Net_server.Unix_path sock) in
  let random_query () =
    let x = Rng.float rng 220.0 -. 10.0 in
    match Rng.int rng 4 with
    | 0 -> Vquery.line ~x
    | 1 -> Vquery.ray_up ~x ~ylo:(Rng.float rng 200.0)
    | 2 -> Vquery.ray_down ~x ~yhi:(Rng.float rng 200.0)
    | _ ->
        let y = Rng.float rng 200.0 in
        Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0)
  in
  let bursts = max 1 (ops / 10) in
  for burst = 1 to bursts do
    let plans =
      List.filter_map
        (fun site ->
          if Rng.bool rng then
            Some (site, Failpoint.plan ~at:(1 + Rng.int rng 6) (Rng.pick rng net_actions))
          else None)
        [ "net.read"; "net.write" ]
    in
    Failpoint.arm ~seed:(seed + burst) plans;
    for _ = 1 to 5 do
      match Rng.int rng 3 with
      | 0 ->
          let q = random_query () in
          let expected = List.sort compare (Db.query_ids db q) in
          let got = Net_client.query c q in
          if not got.Db.Degraded.complete then
            fail "query reported degraded on a healthy store (%s)"
              (String.concat "; " got.Db.Degraded.faults);
          if got.Db.Degraded.value <> expected then
            fail "remote answer diverged (%d vs %d ids) on %s"
              (List.length got.Db.Degraded.value)
              (List.length expected)
              (Format.asprintf "%a" Vquery.pp q)
      | 1 ->
          let q = random_query () in
          let got = Net_client.count c q and expected = Db.count db q in
          if got <> expected then
            fail "remote count %d vs %d on %s" got expected
              (Format.asprintf "%a" Vquery.pp q)
      | _ ->
          let qs = Array.init (1 + Rng.int rng 8) (fun _ -> random_query ()) in
          let expected = Array.map (fun q -> List.sort compare (Db.query_ids db q)) qs in
          let got = Net_client.batch c qs in
          if got.Db.Degraded.value <> expected then
            fail "remote batch of %d diverged from the in-process answers"
              (Array.length qs)
    done;
    Failpoint.disarm ()
  done;
  Net_client.shutdown c;
  Net_client.close c;
  Net_server.wait srv;
  remove_tree dir

(* ---------------- replication soak ----------------

   A live primary/replica pair over Unix sockets, a model mirror of
   every acknowledged write, one-shot socket faults armed while writes
   stream (exercising client retry and the tail's reconnect/resync),
   then a partition event. Even rounds kill the primary mid-write and
   promote; odd rounds promote while the primary is still alive (split
   brain) and make a fresh node rejoin the new epoch, discarding the
   divergent history. Either way: the promoted state must equal the
   model up to the single in-flight operation, must validate clean,
   and stale-epoch frames must be fenced on reconnect. *)

module Net_wire = Segdb_net.Wire
module Net_repl = Segdb_net.Replication

let ids_of_db db =
  Db.segments db |> Array.to_list
  |> List.map (fun (s : Segment.t) -> s.Segment.id)
  |> List.sort compare

let run_replica_round ~seed ~ops ~size round =
  let seed = seed + (round * 999983) in
  let rng = Rng.create seed in
  let backend = Rng.pick rng [| `Naive; `Rtree; `Solution1; `Solution2 |] in
  let pool_segs = W.roads (Rng.split rng) ~n:(2 * size) ~span:200.0 in
  let n0 = Array.length pool_segs / 2 in
  let initial = Array.sub pool_segs 0 n0 in
  let spare = ref (Array.to_list (Array.sub pool_segs n0 (Array.length pool_segs - n0))) in
  let dir = Filename.concat (Lazy.force scratch_root) (Printf.sprintf "repl%d" round) in
  Unix.mkdir dir 0o700;
  let psock = Filename.concat dir "p.sock" and rsock = Filename.concat dir "r.sock" in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "FUZZ FAILURE (replica round %d, seed %d): %s\n" round seed msg;
        exit 1)
      fmt
  in
  let model = Model.create () in
  Array.iter (Model.insert model) initial;
  let live = ref (Array.to_list initial) in
  let block = 8 lsl Rng.int rng 3 in
  let pdb = Db.create ~backend ~block initial in
  (* the replica starts empty: only the subscribe-time snapshot resync
     can explain it converging *)
  let rdb = Db.create ~backend ~block [||] in
  let primary = Net_server.create ~domains:2 ~db:pdb (Net_server.Unix_path psock) in
  Net_server.start primary;
  let replica =
    Net_server.create ~domains:2
      ~replica_of:(Net_server.Unix_path psock)
      ~db:rdb (Net_server.Unix_path rsock)
  in
  Net_server.start replica;
  let c = Net_client.connect ~retries:10 ~backoff_ms:2 (Net_server.Unix_path psock) in
  let rc = Net_client.connect ~retries:10 ~backoff_ms:2 (Net_server.Unix_path rsock) in
  let last_lag = ref "" in
  let wait_for ?(timeout_s = 20.0) msg pred =
    let deadline = Unix.gettimeofday () +. timeout_s in
    while not (pred ()) do
      if Unix.gettimeofday () > deadline then
        fail "timed out waiting for %s (%s)" msg !last_lag;
      Unix.sleepf 0.005
    done
  in
  let replica_synced () =
    let st = Net_client.repl_status rc in
    let prepl = Net_server.replication primary in
    let want_lsn = Net_repl.lsn prepl and want_epoch = Net_repl.epoch prepl in
    let ok =
      (* lsn equality alone is vacuous before the first write (both
         report 0); epoch adoption proves the snapshot resync landed *)
      st.Net_wire.lsn = want_lsn && st.Net_wire.epoch = want_epoch
    in
    if not ok then
      last_lag := Printf.sprintf
          "replica role=%s epoch=%d lsn=%d, primary epoch=%d lsn=%d"
          st.Net_wire.role st.Net_wire.epoch st.Net_wire.lsn want_epoch want_lsn;
    ok
  in
  let random_query () =
    let x = Rng.float rng 220.0 -. 10.0 in
    let y = Rng.float rng 200.0 in
    Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 60.0)
  in
  let cross_check_replica label =
    for _ = 1 to 5 do
      let q = random_query () in
      let got = Net_client.query rc q in
      if not got.Db.Degraded.complete then
        fail "%s: replica answered degraded (%s)" label
          (String.concat "; " got.Db.Degraded.faults);
      if got.Db.Degraded.value <> Model.query model q then
        fail "%s: replica diverged from the model on %s" label
          (Format.asprintf "%a" Vquery.pp q)
    done
  in
  (* stabbing query through [s]'s x-midpoint: present iff [s.id] answers *)
  let stored client (s : Segment.t) =
    let x = (s.Segment.x1 +. s.Segment.x2) /. 2.0 in
    let ylo = Float.min s.Segment.y1 s.Segment.y2 -. 1.0 in
    let yhi = Float.max s.Segment.y1 s.Segment.y2 +. 1.0 in
    let got = Net_client.query client (Vquery.segment ~x ~ylo ~yhi) in
    List.mem s.Segment.id got.Db.Degraded.value
  in
  let apply_write client =
    if (Rng.int rng 3 > 0 || !live = []) && !spare <> [] then begin
      match !spare with
      | [] -> ()
      | s :: rest ->
          spare := rest;
          let _, changed = Net_client.insert client s in
          (* under injected faults the client retries: a lost response
             means the first attempt may already have committed, so
             [changed = false] is only a failure if the segment is
             genuinely absent *)
          if (not changed) && not (stored client s) then
            fail "insert of fresh id %d reported unchanged" s.Segment.id;
          Model.insert model s;
          live := s :: !live
    end
    else if !live <> [] then begin
      let s = List.nth !live (Rng.int rng (List.length !live)) in
      let _, changed = Net_client.delete client s in
      if (not changed) && stored client s then
        fail "delete of live id %d reported unchanged" s.Segment.id;
      Model.delete model s;
      live := List.filter (fun (l : Segment.t) -> l.Segment.id <> s.Segment.id) !live
    end
  in
  (* steady state under socket chaos: bursts of writes with one-shot
     faults armed; every burst ends at a sync barrier + cross-check *)
  let bursts = max 1 (ops / 10) in
  wait_for "initial snapshot catch-up" replica_synced;
  cross_check_replica "after catch-up";
  for burst = 1 to bursts do
    let plans =
      List.filter_map
        (fun site ->
          if Rng.bool rng then
            Some (site, Failpoint.plan ~at:(1 + Rng.int rng 6) (Rng.pick rng net_actions))
          else None)
        [ "net.read"; "net.write" ]
    in
    Failpoint.arm ~seed:(seed + burst) plans;
    for _ = 1 to 6 do
      apply_write c
    done;
    Failpoint.disarm ();
    wait_for "burst replication" replica_synced;
    cross_check_replica (Printf.sprintf "burst %d" burst)
  done;
  (* ---- the partition event ---- *)
  let kill_flavor = round mod 2 = 0 in
  let inflight = ref None in
  if kill_flavor then begin
    (* one write is left in flight when the primary dies abruptly: it
       may or may not have been committed and shipped *)
    (match !spare with
    | s :: rest ->
        spare := rest;
        inflight := Some s;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX psock);
        Net_wire.send fd (Net_wire.encode_request (Net_wire.Insert s));
        Net_server.kill primary;
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | [] -> Net_server.kill primary);
    Net_client.close c;
    Net_server.wait primary
  end;
  let epoch = Net_client.promote rc in
  if epoch < 2 then fail "promotion did not advance the epoch (got %d)" epoch;
  (* promote flips the role, which makes the tail's session loop exit
     after its current recv tick; give it that tick so no apply races
     the direct reads below *)
  Unix.sleepf 0.5;
  (* the promoted state equals the model, up to the in-flight write *)
  let got = ids_of_db rdb in
  let base = ids_of_model model in
  (if got = base then ()
   else
     match !inflight with
     | Some s when got = List.sort compare (s.Segment.id :: base) ->
         Model.insert model s;
         live := s :: !live
     | _ ->
         let diff a b = List.filter (fun x -> not (List.mem x b)) a in
         fail
           "promoted id set (%d ids) matches neither the model (%d) nor model + \
            in-flight; primary has %d; db-only: [%s]; model-only: [%s]"
           (List.length got) (List.length base)
           (List.length (ids_of_db pdb))
           (String.concat "," (List.map string_of_int (diff got base)))
           (String.concat "," (List.map string_of_int (diff base got))));
  (match Db.validate ~queries:5 rdb with
  | [] -> ()
  | f :: _ -> fail "promoted db fails validation: %s" f);
  (* fencing on reconnect: frames carrying a stale or impossible epoch
     are refused by the promoted node *)
  let expect_fenced what req =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX rsock);
        Net_wire.send fd (Net_wire.encode_request req);
        match Net_wire.recv ~timeout:10.0 fd with
        | Result.Ok payload -> (
            match Net_wire.decode_response payload with
            | Result.Ok (Net_wire.Error (Net_wire.Fenced, _)) -> ()
            | Result.Ok _ | Result.Error _ -> fail "%s was not fenced" what)
        | Result.Error e ->
            fail "%s: transport error %s" what (Net_wire.protocol_error_to_string e))
  in
  expect_fenced "stale-epoch ack (revived primary)"
    (Net_wire.Repl_ack { epoch = 1; lsn = 0 });
  expect_fenced "subscriber from the future"
    (Net_wire.Repl_subscribe { epoch = epoch + 7; from_lsn = 0 });
  (* the promoted node serves writes at the new epoch *)
  for _ = 1 to 5 do
    apply_write rc
  done;
  for _ = 1 to 5 do
    let q = random_query () in
    let got = Net_client.query rc q in
    if got.Db.Degraded.value <> Model.query model q then
      fail "promoted node diverged from the model after new writes"
  done;
  if not kill_flavor then begin
    (* split brain: the old primary is still alive at epoch 1 and even
       accepts writes — that divergent history must be discarded when
       a node rejoins the new epoch *)
    (match !spare with
    | s :: rest ->
        spare := rest;
        ignore (Net_client.insert c s) (* NOT in the model: wrong side *)
    | [] -> ());
    let tsock = Filename.concat dir "t.sock" in
    (* the rejoining node starts from the stale primary's divergent
       content — snapshot resync must overwrite it *)
    let tdb = Db.create ~backend ~block (Db.segments pdb) in
    let third =
      Net_server.create ~domains:1
        ~replica_of:(Net_server.Unix_path rsock)
        ~db:tdb (Net_server.Unix_path tsock)
    in
    Net_server.start third;
    wait_for "rejoin at the new epoch" (fun () ->
        ids_of_db tdb = ids_of_model model
        && (let tc = Net_client.connect (Net_server.Unix_path tsock) in
            Fun.protect
              ~finally:(fun () -> Net_client.close tc)
              (fun () -> (Net_client.repl_status tc).Net_wire.epoch = epoch)));
    (match Db.validate ~queries:5 tdb with
    | [] -> ()
    | f :: _ -> fail "rejoined db fails validation: %s" f);
    Net_server.stop third;
    Net_server.wait third;
    Net_client.close c;
    Net_server.stop primary;
    Net_server.wait primary
  end;
  Net_client.close rc;
  Net_server.stop replica;
  Net_server.wait replica;
  remove_tree dir

let store_sites = [ "pread"; "pwrite"; "store.sync" ]

(* the socket sites see no traffic in a crash round (nothing serves
   here), so demanding they fire would always fail; their fault
   coverage is --net's one-shot plans *)
let socket_sites = [ "net.read"; "net.write" ]

let run_crash_matrix ~rounds ~ops ~seed ~size =
  let sites =
    List.filter (fun s -> not (List.mem s socket_sites)) (Failpoint.registered ())
  in
  if sites = [] then begin
    Printf.eprintf "fuzz --crash: no fault sites registered\n";
    exit 1
  end;
  for round = 1 to rounds do
    List.iter
      (fun site ->
        if List.mem site store_sites then run_crash_store_round ~seed ~ops ~site round
        else run_crash_db_round ~seed ~ops ~size ~site round)
      sites;
    if round mod 10 = 0 then Printf.printf "round %d/%d ok\n%!" round rounds
  done;
  Printf.printf
    "fuzz: crash matrix: %d sites x %d rounds (%s); every recovery matched the model \
     and scrubbed clean\n"
    (List.length sites) rounds (String.concat ", " sites)

let fuzz rounds ops seed size persist parallel crash net replica domains =
  Segdb_obs.Log.configure_from_env ();
  if crash then begin
    run_crash_matrix ~rounds ~ops ~seed ~size;
    0
  end
  else begin
  for round = 1 to rounds do
    if replica then run_replica_round ~seed ~ops ~size round
    else if net then run_net_round ~seed ~ops ~size round
    else if parallel then run_parallel_round ~seed ~ops ~size ~domains round
    else if persist then run_persist_round ~seed ~ops ~size round
    else run_round ~seed ~ops ~size round;
    if round mod 10 = 0 then Printf.printf "round %d/%d ok\n%!" round rounds
  done;
  if replica then
    Printf.printf
      "fuzz: %d replica rounds (kill+promote / split-brain alternating) under socket \
       faults; promoted state = model ± in-flight, stale epochs fenced, rejoins \
       converged\n"
      rounds
  else if net then
    Printf.printf
      "fuzz: %d net rounds x ~%d requests under socket faults, every remote answer \
       matched the in-process oracle\n"
      rounds (ops / 10 * 5)
  else if parallel then
    Printf.printf
      "fuzz: %d parallel rounds x %d queries, %d-domain answers identical to serial\n" rounds
      ops domains
  else if persist then
    Printf.printf
      "fuzz: %d persist rounds x %d ops, answers stable across save/open/replay\n" rounds ops
  else
    Printf.printf "fuzz: %d rounds x %d ops, all backends agree with the model\n" rounds ops;
  0
  end

let rounds_t = Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"N" ~doc:"Rounds.")
let ops_t = Arg.(value & opt int 300 & info [ "ops" ] ~docv:"N" ~doc:"Operations per round.")
let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
let size_t = Arg.(value & opt int 120 & info [ "size" ] ~docv:"N" ~doc:"Initial segments.")

let persist_t =
  Arg.(
    value & flag
    & info [ "persist" ]
        ~doc:
          "Save/open/replay round-trips: random ops under a WAL with random checkpoints, \
           then a simulated crash and recovery; query answers must be identical before \
           and after the reopen.")

let parallel_t =
  Arg.(
    value & flag
    & info [ "parallel" ]
        ~doc:
          "Parallel-read cross-checks: every backend answers random query batches through \
           $(b,Segdb.parallel_query) and the answers must match the serial ones exactly, \
           both on fresh builds and after mutation.")

let crash_t =
  Arg.(
    value & flag
    & info [ "crash" ]
        ~doc:
          "Crash matrix: for every registered fault site, arm a hard crash cut, run a \
           workload until it fires, abandon the in-memory state, recover from disk and \
           cross-check against the model (the single in-flight operation may be present \
           or absent; anything else fails). Recovered state must validate and scrub \
           clean.")

let net_t =
  Arg.(
    value & flag
    & info [ "net" ]
        ~doc:
          "Network rounds: serve the database in-process over a Unix socket, arm \
           one-shot faults on the socket sites ($(i,net.read), $(i,net.write): torn \
           frames, flipped bits, short transfers, transient EIO), and cross-check every \
           remote answer — after the client's bounded retries — against the in-process \
           oracle.")

let replica_t =
  Arg.(
    value & flag
    & info [ "replica" ]
        ~doc:
          "Replication soak: a primary/replica pair over Unix sockets with one-shot \
           socket faults armed while writes stream. Even rounds kill the primary with \
           a write in flight and promote the replica; odd rounds promote while the \
           primary is alive (split brain) and make a fresh node rejoin the new epoch. \
           The promoted state must equal the model up to the in-flight operation, \
           validate clean, and fence stale-epoch frames.")

let domains_t =
  Arg.(
    value & opt int 4
    & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for $(b,--parallel) rounds.")

let cmd =
  let doc = "model-based stress test across all index backends" in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz $ rounds_t $ ops_t $ seed_t $ size_t $ persist_t $ parallel_t $ crash_t
      $ net_t $ replica_t $ domains_t)

let () =
  Failpoint.arm_from_env ();
  exit (Cmd.eval' cmd)
