(** Simulated secondary storage.

    A block store holds typed blocks addressed by integers. A bounded LRU
    buffer pool sits in front of a simulated disk (a hash table): reading
    a non-resident block charges one read I/O, evicting or flushing a
    dirty block charges one write I/O. Resident accesses are free, exactly
    matching the external-memory model the paper's bounds are stated in.

    All structures of one index share a single {!Io_stats.t} so that an
    index's total cost is observable at one place, and they may share a
    single buffer [pool] so that the memory budget is honest across
    sub-structures.

    {b Read contexts.} When a {!Read_context.t} is installed on the
    current domain ({!Read_context.with_reader}), [read] switches to a
    pure lookup path: shared pool, shared stats and store tables are
    consulted without being modified, cold misses are charged to the
    reader's own counter and cached in the reader's own LRU shard, and
    [alloc]/[write]/[free]/[flush] raise [Invalid_argument]. Outside a
    context the behaviour (and the accounting the experiments measure)
    is exactly the historical single-handle one. *)

type addr = int

val null : addr
(** An address never returned by [alloc]; usable as a sentinel. *)

(** Shared buffer pool: a capacity in blocks, common to every store
    attached to it. *)
module Pool : sig
  type t

  val create : capacity:int -> t
  (** [capacity] is the number of resident blocks across all attached
      stores. *)

  val capacity : t -> int
  val resident : t -> int

  val hits : t -> int
  (** Lookups that found their block resident (serial path only: the
      reader path consults the pool without touching it and accounts in
      the reader's own context instead, see {!Read_context}). *)

  val misses : t -> int
  (** Serial-path lookups that had to fetch the block from disk. *)

  val reset_stats : t -> unit
end

module Make (P : sig
  type t
end) : sig
  type t

  val create : ?name:string -> pool:Pool.t -> stats:Io_stats.t -> unit -> t
  (** A store of blocks with payload [P.t] backed by [pool] and charging
      I/Os to [stats]. *)

  val alloc : t -> P.t -> addr
  (** Allocates a fresh block, resident and dirty. Charges an alloc (not
      a transfer). *)

  val read : t -> addr -> P.t
  (** Fetches the block, charging one read on a pool miss (to the
      reader's stats when a read context is installed, to [stats]
      otherwise). Raises [Invalid_argument] on a freed or unknown
      address. *)

  val write : t -> addr -> P.t -> unit
  (** Replaces the block's payload, marking it dirty. Charges one read on
      a pool miss? No — overwriting does not need the old contents, so a
      miss charges nothing at write time; the dirty page is charged one
      write when evicted or flushed. *)

  val free : t -> addr -> unit
  (** Discards the block without write-back. *)

  val flush : t -> unit
  (** Writes back all dirty resident blocks of this store. *)

  val block_count : t -> int
  (** Number of live (allocated, not freed) blocks: the structure's space
      in blocks. *)

  val stats : t -> Io_stats.t
end
