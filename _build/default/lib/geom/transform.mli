(** Rigid rotations reducing fixed-slope generalized queries to vertical
    ones.

    The paper treats only vertical query segments, remarking that "if the
    query segment is not vertical, coordinate axes can be appropriately
    rotated". This module implements that remark: given the common slope
    of all query segments, [to_vertical] rotates the plane so those
    queries become vertical, and the rotated database can be indexed by
    any {!Segdb_core} structure. *)

type t
(** A rotation around the origin. *)

val identity : t

val rotation : angle:float -> t
(** Counter-clockwise rotation by [angle] radians. *)

val to_vertical : slope:float -> t
(** The rotation mapping every line of slope [slope] to a vertical
    line. *)

val inverse : t -> t

val point : t -> float * float -> float * float

val segment : t -> Segment.t -> Segment.t
(** Rotates both endpoints; the id is preserved. *)

val vquery_of_segment : t -> (float * float) -> (float * float) -> Vquery.t
(** [vquery_of_segment t p q] rotates the query segment [pq] — which must
    have the slope the transform was built for — and returns the
    resulting vertical query. Tiny float asymmetries between the two
    rotated abscissas are averaged away. *)
