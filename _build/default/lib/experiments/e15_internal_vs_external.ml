(* E15 — the introduction's framing: internal-memory structures achieve
   O(log N + T) stabbing in core; external structures trade pointer
   chasing for blocked access. We compare the in-core interval tree
   against the external one on wall-clock (the only meaningful metric
   for a pointer structure) and report the external tree's I/O for the
   same workload. *)

open Segdb_io
open Segdb_util
module W = Segdb_workload.Workload
module Ext = Segdb_itree.Interval_tree
module Int = Segdb_internal.Internal_interval_tree

module Ivs = Segdb_internal.Internal_vs
module Db = Segdb_core.Segdb

let id = "e15"
let title = "E15: internal vs external structures"
let validates = "Introduction: in-core baselines vs the external-memory model"

let time_per_query f queries =
  let t0 = Unix.gettimeofday () in
  let reps = 5 in
  for _ = 1 to reps do
    Array.iter (fun q -> ignore (f q)) queries
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int (reps * Array.length queries) *. 1e6

let run (p : Harness.params) =
  let table =
    Table.create ~title:(title ^ " — stabbing (interval trees)")
      ~columns:[ "n"; "internal us/q"; "external us/q"; "external io/q"; "mean t" ]
  in
  let table2 =
    Table.create
      ~title:
        "E15b: VS queries — in-core [5]-style structure vs Solution 2 (wall-clock + I/O)"
      ~columns:[ "n"; "internal us/q"; "sol2 us/q"; "sol2 io/q"; "mean t" ]
  in
  let sweep = if p.quick then [ 1 lsl 12; 1 lsl 14 ] else [ 1 lsl 13; 1 lsl 15; 1 lsl 17 ] in
  List.iter
    (fun n ->
      let segs = W.grid_city (Rng.create p.seed) ~n ~span:4000 ~max_len:40 in
      let ivls =
        Array.map
          (fun (s : Segdb_geom.Segment.t) ->
            { Ext.lo = s.Segdb_geom.Segment.x1; hi = s.Segdb_geom.Segment.x2; seg = s })
          segs
      in
      let iivls =
        Array.map (fun (iv : Ext.ivl) -> { Int.lo = iv.lo; hi = iv.hi; seg = iv.seg }) ivls
      in
      let xs =
        let qrng = Rng.create (p.seed + 1) in
        Array.init 64 (fun _ -> Rng.float qrng 4000.0)
      in
      let internal = Int.build iivls in
      let io = Io_stats.create () in
      let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
      let external_ = Ext.build ~leaf_capacity:Harness.block ~pool ~stats:io ivls in
      let count_int x =
        let k = ref 0 in
        Int.stab internal x ~f:(fun _ -> incr k);
        !k
      in
      let count_ext x =
        let k = ref 0 in
        Ext.stab external_ x ~f:(fun _ -> incr k);
        !k
      in
      let t_int = time_per_query count_int xs in
      let t_ext = time_per_query count_ext xs in
      let c = Harness.measure ~io ~queries:xs ~run:count_ext in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 t_int;
          Table.cell_float ~decimals:1 t_ext;
          Table.cell_float ~decimals:1 c.mean_io;
          Table.cell_float ~decimals:1 c.mean_out;
        ];
      (* VS queries: the [5]-style in-core structure vs Solution 2 *)
      let ivs = Ivs.build segs in
      let db =
        Db.create ~backend:`Solution2 ~block:Harness.block ~pool_blocks:Harness.pool_blocks
          segs
      in
      let vqueries =
        Segdb_workload.Workload.segment_queries (Rng.create (p.seed + 2)) ~n:64
          ~span:4000.0 ~selectivity:0.01
      in
      let count_ivs q =
        let k = ref 0 in
        Ivs.query ivs q ~f:(fun _ -> incr k);
        !k
      in
      let t_ivs = time_per_query count_ivs vqueries in
      let t_sol2 = time_per_query (Db.count db) vqueries in
      let c2 = Harness.measure ~io:(Db.io db) ~queries:vqueries ~run:(Db.count db) in
      Table.add_row table2
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 t_ivs;
          Table.cell_float ~decimals:1 t_sol2;
          Table.cell_float ~decimals:1 c2.mean_io;
          Table.cell_float ~decimals:1 c2.mean_out;
        ])
    sweep;
  [ Harness.Table table; Harness.Table table2 ]
