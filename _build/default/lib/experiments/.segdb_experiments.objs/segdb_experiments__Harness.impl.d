lib/experiments/harness.ml: Array Io_stats List Segdb_io Segdb_util Stats Table
