(** Solution 1 (Section 3, Theorem 1): the linear-space two-level
    structure.

    First level: a binary tree over the x-order of segment endpoints.
    Each node [v] carries a vertical base line [bl(v)] through the
    median endpoint; segments crossing the line stay at [v], the rest
    recurse left/right, so the height is O(log n). Per node:

    - [C(v)]: an external interval tree over the y-extents of the
      segments lying *on* the base line;
    - [L(v)] / [R(v)]: external PSTs over the left and right parts of
      the crossing segments — line-based sets in the sense of
      Section 2.

    A query at abscissa [x0] walks one root-to-leaf path, querying
    [L(v)] or [R(v)] at depth [|x0 - bl(v)|] on the way; if [x0] hits a
    base line exactly it queries [C(v)] and both PSTs at depth 0 and
    stops. Every segment is stored at exactly one node, so answers are
    reported once (base-line hits are de-duplicated by id).

    Updates follow the paper's BB[alpha] discipline via weight-balanced
    subtree rebuilds: storage O(n), query
    O(log n (log_B n + IL*(B)) + t), amortized logarithmic insertion —
    with our blocked PST standing in for the P-range tree (DESIGN.md). *)

include Vs_index.S

val height : t -> int
val check_invariants : t -> bool
