(* Benchmark harness.

   Two sections:
   1. The I/O experiment tables E1-E10 + E12 (EXPERIMENTS.md): the
      paper's complexity claims measured in simulated block transfers.
   2. E11 — a Bechamel wall-clock suite: build and query throughput of
      every backend, confirming the simulated-I/O ordering carries over
      to real time.

   [dune exec bench/main.exe] runs everything at full scale; pass
   [--quick] (or set SEGDB_BENCH_QUICK) for a smoke run. *)

open Bechamel
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module Rng = Segdb_util.Rng
module Harness = Segdb_experiments.Harness
module Registry = Segdb_experiments.Registry

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv || Sys.getenv_opt "SEGDB_BENCH_QUICK" <> None

(* ---------------- E11: wall clock ---------------- *)

let wall_clock_tests () =
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let queries = W.segment_queries (Rng.create 43) ~n:64 ~span ~selectivity:0.02 in
  let qi = ref 0 in
  let next_query () =
    let q = queries.(!qi land 63) in
    incr qi;
    q
  in
  let query_test name backend =
    let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
    Test.make ~name:("query/" ^ name)
      (Staged.stage (fun () -> ignore (Db.count db (next_query ()))))
  in
  let build_test name backend =
    Test.make ~name:("build/" ^ name)
      (Staged.stage (fun () -> ignore (Db.create ~backend ~block:64 ~pool_blocks:64 segs)))
  in
  let insert_test name backend =
    let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
    let fresh = W.uniform (Rng.create 44) ~n:(n / 4) ~span in
    let i = ref 0 in
    Test.make ~name:("insert/" ^ name)
      (Staged.stage (fun () ->
           (* fresh ids so the semi-dynamic path is exercised; wrap by
              rebuilding the db when the pool of new segments runs out *)
           if !i >= Array.length fresh then i := 0;
           let s = fresh.(!i) in
           incr i;
           let s = Segdb_geom.Segment.with_id s (n + 1_000_000 + !qi) in
           incr qi;
           try Db.insert db s with Invalid_argument _ -> ()))
  in
  List.concat
    [
      List.map (fun (name, b) -> query_test name b) Db.all_backends;
      [
        build_test "naive" `Naive;
        build_test "rtree" `Rtree;
        build_test "solution1" `Solution1;
        build_test "solution2" `Solution2;
      ];
      [ insert_test "solution1" `Solution1; insert_test "solution2" `Solution2 ];
    ]

let run_wall_clock () =
  let tests = Test.make_grouped ~name:"segdb" (wall_clock_tests ()) in
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let table =
    Segdb_util.Table.create ~title:"E11: wall-clock (Bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "ns/op" ]
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, est) ->
         let ns =
           match Analyze.OLS.estimates est with Some [ v ] -> v | _ -> nan
         in
         Segdb_util.Table.add_row table
           [ name; Segdb_util.Table.cell_float ~decimals:0 ns ]);
  Segdb_util.Table.print table

(* ---------------- main ---------------- *)

let () =
  let params = if quick then Harness.quick else Harness.default in
  Printf.printf "segdb bench harness (%s mode)\n" (if quick then "quick" else "full");
  Printf.printf "=== I/O experiment tables (E1-E10, E12-E16) ===\n";
  Registry.run_ids ~params [];
  Printf.printf "\n=== E11: wall-clock timing ===\n\n";
  run_wall_clock ();
  print_newline ()
