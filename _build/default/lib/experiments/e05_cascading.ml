(* E5 — Section 4.3: fractional cascading removes the per-level list
   search inside G. Measured on the long-span workload (many long
   fragments), Solution 2 with bridges vs without, plus the
   guided/fallback counters. *)

open Segdb_util
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module S2 = Segdb_core.Solution2
module Vs = Segdb_core.Vs_index

let id = "e5"
let title = "E5: fractional cascading ablation (Solution 2)"
let validates = "Theorem 2 vs Lemma 4: cascading removes a log_B n factor in G"

let run (p : Harness.params) =
  let span = 1000.0 in
  let table =
    Table.create ~title
      ~columns:[ "n"; "sol2 io"; "sol2-nofc io"; "guided"; "fallback"; "mean t" ]
  in
  List.iter
    (fun n ->
      let segs = W.long_spans (Rng.create p.seed) ~n ~span in
      let queries =
        W.segment_queries (Rng.create (p.seed + 1)) ~n:40 ~span ~selectivity:0.01
      in
      let run_variant cascade =
        let cfg =
          Vs.config ~pool_blocks:Harness.pool_blocks ~block:Harness.block ~cascade ()
        in
        let t = S2.build cfg segs in
        let c =
          Harness.measure ~io:cfg.stats ~queries ~run:(fun q ->
              let k = ref 0 in
              S2.query t q ~f:(fun _ -> incr k);
              !k)
        in
        (c, S2.cascade_counters t)
      in
      let c_fc, (guided, fallback) = run_variant true in
      let c_no, _ = run_variant false in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 c_fc.mean_io;
          Table.cell_float ~decimals:1 c_no.mean_io;
          Table.cell_int guided;
          Table.cell_int fallback;
          Table.cell_float ~decimals:1 c_fc.mean_out;
        ])
    (Harness.sweep_n p);
  [ Harness.Table table ]
