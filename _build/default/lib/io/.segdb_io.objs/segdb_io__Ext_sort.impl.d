lib/io/ext_sort.ml: Array Block_store Fun List
