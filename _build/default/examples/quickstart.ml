(* Quickstart: build a segment database, run the three query kinds,
   look at the I/O counters.

   Run with: dune exec examples/quickstart.exe *)

open Segdb_geom
module Db = Segdb_core.Segdb
module Io_stats = Segdb_io.Io_stats

let () =
  (* A tiny map: three roads and a power line. Touching is fine —
     segments 0 and 1 share an endpoint — but proper crossings are not
     (NCT: non-crossing, possibly touching). *)
  let segments =
    [|
      Segment.make ~id:0 (0.0, 0.0) (4.0, 3.0);
      Segment.make ~id:1 (4.0, 3.0) (9.0, 1.0);
      Segment.make ~id:2 (1.0, 5.0) (8.0, 6.0);
      Segment.make ~id:3 (6.0, -2.0) (6.0, 0.5);
    |]
  in
  let db = Db.create ~backend:`Solution2 segments in

  (* 1. A vertical segment query: what crosses the gate at x = 6,
     0 <= y <= 5.5? *)
  let gate = Vquery.segment ~x:6.0 ~ylo:0.0 ~yhi:5.5 in
  Format.printf "%a:@." Vquery.pp gate;
  List.iter (fun s -> Format.printf "  %a@." Segment.pp s) (Db.query db gate);

  (* 2. A stabbing query (vertical line): everything at x = 6. *)
  let line = Vquery.line ~x:6.0 in
  Format.printf "%a: %d segments@." Vquery.pp line (Db.count db line);

  (* 3. An upward ray: everything above y = 2 at x = 6. *)
  let ray = Vquery.ray_up ~x:6.0 ~ylo:2.0 in
  Format.printf "%a: %d segments@." Vquery.pp ray (Db.count db ray);

  (* Insertion keeps answers exact. *)
  Db.insert db (Segment.make ~id:4 (5.0, 4.0) (7.0, 4.5));
  Format.printf "after insert, %a: %d segments@." Vquery.pp gate (Db.count db gate);

  (* The simulated disk keeps score. *)
  Format.printf "I/O so far: %a; index occupies %d blocks@." Io_stats.pp (Db.io db)
    (Db.block_count db)
