open Segdb_geom

type backend = [ `Naive | `Rtree | `Solution1 | `Solution2 | `Solution2_nofc ]

type pack = Pack : (module Vs_index.S with type t = 'a) * 'a -> pack

type t = { cfg : Vs_index.config; pack : pack }

let build_pack (cfg : Vs_index.config) backend segs =
  match backend with
  | `Naive -> Pack ((module Naive), Naive.build cfg segs)
  | `Rtree -> Pack ((module Rtree_index), Rtree_index.build cfg segs)
  | `Solution1 -> Pack ((module Solution1), Solution1.build cfg segs)
  | `Solution2 | `Solution2_nofc -> Pack ((module Solution2), Solution2.build cfg segs)

let create ?(backend = `Solution2) ?(block = 64) ?(pool_blocks = 64) segs =
  let cascade = backend <> `Solution2_nofc in
  let cfg = Vs_index.config ~pool_blocks ~block ~cascade () in
  { cfg; pack = build_pack cfg backend segs }

let of_segments ?backend ?block ?pool_blocks polylines =
  let acc = ref [] in
  let id = ref 0 in
  List.iter
    (fun points ->
      let rec go = function
        | a :: (b :: _ as rest) ->
            acc := Segment.make ~id:!id a b :: !acc;
            incr id;
            go rest
        | _ -> ()
      in
      go points)
    polylines;
  create ?backend ?block ?pool_blocks (Array.of_list (List.rev !acc))

let insert t s =
  let (Pack ((module M), v)) = t.pack in
  M.insert v s

let delete t s =
  let (Pack ((module M), v)) = t.pack in
  M.delete v s

let query_iter t q ~f =
  let (Pack ((module M), v)) = t.pack in
  M.query v q ~f

let query t q =
  let acc = ref [] in
  query_iter t q ~f:(fun s -> acc := s :: !acc);
  List.rev !acc

let query_ids t q =
  let (Pack ((module M), v)) = t.pack in
  Vs_index.query_ids (module M) v q

let count t q =
  let n = ref 0 in
  query_iter t q ~f:(fun _ -> incr n);
  !n

let size t =
  let (Pack ((module M), v)) = t.pack in
  M.size v

let block_count t =
  let (Pack ((module M), v)) = t.pack in
  M.block_count v

let io t = t.cfg.stats

let backend_name t =
  let (Pack ((module M), _)) = t.pack in
  if M.name = "solution2" && not t.cfg.cascade then "solution2-nofc" else M.name

let all_backends =
  [
    ("naive", `Naive);
    ("rtree", `Rtree);
    ("solution1", `Solution1);
    ("solution2", `Solution2);
    ("solution2-nofc", `Solution2_nofc);
  ]

let backend_of_string s = List.assoc_opt (String.lowercase_ascii s) all_backends

module Sloped = struct
  type nonrec t = {
    rot : Transform.t;
    db : t;
    originals : (int, Segment.t) Hashtbl.t;
  }

  let create ?backend ?block ?pool_blocks ~slope segs =
    let rot = Transform.to_vertical ~slope in
    let originals = Hashtbl.create (Array.length segs) in
    Array.iter (fun (s : Segment.t) -> Hashtbl.replace originals s.id s) segs;
    let rotated = Array.map (Transform.segment rot) segs in
    { rot; db = create ?backend ?block ?pool_blocks rotated; originals }

  let vq t ~p1 ~p2 = Transform.vquery_of_segment t.rot p1 p2

  let query t ~p1 ~p2 =
    query (t.db) (vq t ~p1 ~p2)
    |> List.map (fun (s : Segment.t) -> Hashtbl.find t.originals s.id)

  let count t ~p1 ~p2 = count t.db (vq t ~p1 ~p2)

  let db t = t.db
end
