(* External interval tree tests: stabbing and overlap queries against a
   naive oracle, uniqueness of reporting, insertion, I/O behaviour. *)

open Segdb_io
open Segdb_geom
module It = Segdb_itree.Interval_tree

let qtest = QCheck_alcotest.to_alcotest

let mk_pool ?(cap = 512) () = (Block_store.Pool.create ~capacity:cap, Io_stats.create ())

let ivl_of_triple i (a, b) =
  let lo = Float.min a b and hi = Float.max a b in
  { It.lo; hi; seg = Segment.make ~id:i (lo, 0.0) (hi, 0.0) }

let ivls_gen =
  QCheck.Gen.(
    let* n = 0 -- 150 in
    let* raw = list_size (return n) (pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0)) in
    return (Array.of_list (List.mapi ivl_of_triple raw)))

let ivls_print a =
  QCheck.Print.array (fun iv -> Printf.sprintf "[%g,%g]#%d" iv.It.lo iv.It.hi iv.It.seg.Segment.id) a

let scenario =
  QCheck.make
    ~print:(QCheck.Print.triple ivls_print string_of_float string_of_float)
    QCheck.Gen.(
      triple ivls_gen (float_range (-120.0) 120.0) (float_range 0.0 80.0))

let ids l = List.map (fun iv -> iv.It.seg.Segment.id) l |> List.sort compare

let uniq_sorted l =
  let rec go = function a :: (b :: _ as r) -> a <> b && go r | _ -> true in
  go l

let build ?(fanout = 4) ?(leaf_capacity = 4) ivls =
  let pool, io = mk_pool () in
  (It.build ~fanout ~leaf_capacity ~pool ~stats:io ivls, io)

let prop_stab_oracle =
  QCheck.Test.make ~name:"stab equals naive filter" ~count:300 scenario (fun (ivls, x, _) ->
      let t, _ = build ivls in
      let got = ids (It.stab_list t x) in
      let expected =
        Array.to_list ivls |> List.filter (fun iv -> iv.It.lo <= x && x <= iv.It.hi) |> ids
      in
      got = expected && uniq_sorted got)

let prop_overlap_oracle =
  QCheck.Test.make ~name:"overlap equals naive filter" ~count:300 scenario
    (fun (ivls, a, width) ->
      let t, _ = build ivls in
      let b = a +. width in
      let got = ids (It.overlap_list t ~lo:a ~hi:b) in
      let expected =
        Array.to_list ivls |> List.filter (fun iv -> iv.It.lo <= b && iv.It.hi >= a) |> ids
      in
      got = expected && uniq_sorted got)

let prop_invariants =
  QCheck.Test.make ~name:"itree invariants" ~count:150 scenario (fun (ivls, _, _) ->
      let t, _ = build ivls in
      It.check_invariants t && It.size t = Array.length ivls)

let prop_insert_oracle =
  QCheck.Test.make ~name:"insert preserves stab queries" ~count:200 scenario
    (fun (ivls, x, _) ->
      QCheck.assume (Array.length ivls > 0);
      let k = Array.length ivls / 2 in
      let t, _ = build (Array.sub ivls 0 k) in
      for i = k to Array.length ivls - 1 do
        It.insert t ivls.(i)
      done;
      let got = ids (It.stab_list t x) in
      let expected =
        Array.to_list ivls |> List.filter (fun iv -> iv.It.lo <= x && x <= iv.It.hi) |> ids
      in
      It.check_invariants t && got = expected)

let prop_insert_from_empty =
  QCheck.Test.make ~name:"insert from empty tree" ~count:100 scenario (fun (ivls, x, _) ->
      let t, _ = build [||] in
      Array.iter (It.insert t) ivls;
      let got = ids (It.stab_list t x) in
      let expected =
        Array.to_list ivls |> List.filter (fun iv -> iv.It.lo <= x && x <= iv.It.hi) |> ids
      in
      It.size t = Array.length ivls && got = expected)

let test_empty () =
  let t, _ = build [||] in
  Alcotest.(check int) "size" 0 (It.size t);
  Alcotest.(check bool) "stab empty" true (It.stab_list t 0.0 = []);
  Alcotest.(check bool) "overlap empty" true (It.overlap_list t ~lo:0.0 ~hi:1.0 = []);
  Alcotest.(check bool) "invariants" true (It.check_invariants t)

let test_degenerate_identical () =
  (* all intervals identical: exercises the oversized-leaf fallback *)
  let ivls = Array.init 100 (fun i -> ivl_of_triple i (5.0, 5.0)) in
  let t, _ = build ~leaf_capacity:4 ivls in
  Alcotest.(check int) "all stabbed" 100 (List.length (It.stab_list t 5.0));
  Alcotest.(check int) "none besides" 0 (List.length (It.stab_list t 6.0))

let test_touching_endpoints () =
  let ivls = [| ivl_of_triple 0 (0.0, 2.0); ivl_of_triple 1 (2.0, 4.0) |] in
  let t, _ = build ivls in
  Alcotest.(check (list int)) "stab at shared endpoint" [ 0; 1 ] (ids (It.stab_list t 2.0));
  Alcotest.(check (list int)) "overlap touching" [ 0; 1 ]
    (ids (It.overlap_list t ~lo:2.0 ~hi:2.0))

let test_stab_io_logarithmic () =
  let pool = Block_store.Pool.create ~capacity:8 in
  let io = Io_stats.create () in
  let rng = Segdb_util.Rng.create 7 in
  let n = 20_000 in
  let ivls =
    Array.init n (fun i ->
        let lo = Segdb_util.Rng.float rng 10000.0 in
        let hi = lo +. Segdb_util.Rng.float rng 30.0 in
        { It.lo; hi; seg = Segment.make ~id:i (lo, 0.0) (hi, 0.0) })
  in
  let t = It.build ~fanout:8 ~leaf_capacity:64 ~pool ~stats:io ivls in
  let worst = ref 0 in
  for i = 0 to 29 do
    let x = float_of_int i *. 333.0 in
    let before = Io_stats.snapshot io in
    let res = It.stab_list t x in
    let cost = Io_stats.snapshot_total (Io_stats.diff before (Io_stats.snapshot io)) in
    (* budget: O(height * log_B n + t/B) with generous constants; the
       point is to rule out linear scans (n/B = 312 blocks) *)
    let budget = 40 + (List.length res / 8) in
    if cost > budget then incr worst
  done;
  Alcotest.(check int) "stabs within logarithmic budget" 0 !worst

let suite =
  ( "itree",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "degenerate identical" `Quick test_degenerate_identical;
      Alcotest.test_case "touching endpoints" `Quick test_touching_endpoints;
      Alcotest.test_case "stab io logarithmic" `Quick test_stab_io_logarithmic;
      qtest prop_stab_oracle;
      qtest prop_overlap_oracle;
      qtest prop_invariants;
      qtest prop_insert_oracle;
      qtest prop_insert_from_empty;
    ] )

let prop_delete_oracle =
  QCheck.Test.make ~name:"itree delete preserves stab queries" ~count:150 scenario
    (fun (ivls, x, _) ->
      QCheck.assume (Array.length ivls > 0);
      let t, _ = build ivls in
      let doomed, kept =
        Array.to_list ivls |> List.partition (fun iv -> iv.It.seg.Segment.id mod 3 = 0)
      in
      let ok_del = List.for_all (It.delete t) doomed in
      let gone = List.for_all (fun iv -> not (It.delete t iv)) doomed in
      let got = ids (It.stab_list t x) in
      let expected = kept |> List.filter (fun iv -> iv.It.lo <= x && x <= iv.It.hi) |> ids in
      ok_del && gone && It.size t = List.length kept && got = expected)

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_delete_oracle ])
