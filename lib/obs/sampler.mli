(** Background time-series sampler over the metrics registry.

    The registry ({!Metrics.default}) only accumulates monotone totals;
    operators want {e rates} — queries/s, bytes/s, WAL appends/s — and
    a short window of history to spot trends. The sampler closes that
    gap: a dedicated domain snapshots the registry every [interval_ms]
    into a bounded ring, diffs consecutive snapshots into per-second
    rates, and publishes the results back into the registry as gauge
    families ([rate.<counter>.per_s], [window.<histogram>.p99]) so any
    exporter — the Prometheus endpoint, the wire stats frame — carries
    them with no extra plumbing.

    Default-off discipline: nothing runs until {!start}; when disarmed
    the only residual cost anywhere is one atomic load ({!running}),
    with no allocation — the same contract as {!Control}.

    Layering: [lib/obs] sits below the net and exec layers, so the
    sampler cannot read replication state or pool occupancy itself.
    Higher layers {!register_source} a closure instead; every tick (and
    every {!refresh_gauges}) runs the registered sources and publishes
    whatever gauges they return. Built-in runtime gauges
    ([runtime.heap_words], [runtime.minor_collections],
    [runtime.major_collections], [runtime.open_fds]) ride along. *)

type sample = {
  at_ns : int;  (** monotonic timestamp ({!Trace.now_ns}) *)
  counters : (string * int) list;  (** name-sorted registry snapshot *)
  gauges : (string * int) list;
  hists : (string * int array) list;
      (** per-bucket counts of the watched histograms (see
          {!set_watched}) — cumulative, diffable *)
}

val register_source : string -> (unit -> (string * int) list) -> unit
(** [register_source name f] adds a gauge provider: on every tick and
    {!refresh_gauges}, [f ()] runs and each [(gauge_name, value)] pair
    is published into {!Metrics.default}. Re-registering a name
    replaces the previous source. [f] runs on the sampler domain (or
    whichever domain calls {!refresh_gauges}) and must be thread-safe;
    an exception from [f] skips that source for the tick. *)

val unregister_source : string -> unit

val refresh_gauges : unit -> unit
(** One synchronous provider pass — runtime gauges plus every
    registered source — with no ring append. Exporters call this right
    before rendering so a scrape sees live gauges even when the
    background sampler is not running. *)

val set_capacity : int -> unit
(** Ring bound (number of retained samples, default 120, min 2).
    Shrinking drops the oldest samples immediately. *)

val set_watched : string list -> unit
(** Histogram names whose buckets are carried in each sample (so
    windowed percentiles can be diffed out). Default:
    [["exec.request.ns"; "net.request.ns"]]. *)

val tick : ?now_ns:int -> unit -> unit
(** One sampling pass: refresh gauges, snapshot the registry, append to
    the ring, recompute rates against the previous sample and publish
    the [rate.*]/[window.*] gauge families. The background domain calls
    this every interval; tests call it directly with a pinned [now_ns]
    for deterministic rate arithmetic. A counter that moved backwards
    (a registry {!Metrics.reset}) clamps to rate 0 rather than going
    negative. *)

val start : ?interval_ms:int -> unit -> unit
(** Arm the sampler: spawn the background domain ticking every
    [interval_ms] (default 1000, min 1). Idempotent while running
    (the interval of the live domain is not changed). *)

val stop : unit -> unit
(** Disarm and join the background domain. Idempotent. The ring and
    rates are kept (a dashboard can still read the last window). *)

val running : unit -> bool
(** One atomic load; [false] by default. *)

val interval_ms : unit -> int

val samples : unit -> sample list
(** Ring contents, oldest first. *)

val rates : unit -> (string * float) list
(** Latest per-second rate for every counter, from the last two ticks;
    empty before two samples exist. *)

val window_p99 : string -> float option
(** The p99 of a watched histogram over the retained window (newest
    ring entry minus oldest), interpolated within the landing bucket.
    [None] if the histogram is absent or the window holds no samples. *)

val varz_json : unit -> string
(** The whole ring plus current rates as one JSON object — what the
    HTTP endpoint serves at [/varz]. *)
