examples/quickstart.mli:
