(** Render a metrics registry (and trace dumps) for humans and tools. *)

val text : Metrics.t -> string
(** Aligned tables: counters/gauges, then histogram summaries. *)

val json : Metrics.t -> string
(** One JSON object: [{"counters": {...}, "gauges": {...},
    "histograms": {...}}]. Histogram entries carry count/sum/min/max/
    mean/p50/p90/p99 plus the non-empty buckets as [[lo, hi, count]]
    triples. *)

val prometheus : ?labels:(string * string) list -> Metrics.t -> string
(** Prometheus text exposition format. Names are sanitized to
    [[A-Za-z0-9_]] and prefixed [segdb_]; histograms become cumulative
    [_bucket{le="..."}] series with [_sum] and [_count]. [labels] are
    attached to every sample (the server adds its listen address this
    way); label {e names} are sanitized like metric names and label
    {e values} are escaped per the exposition format (backslash, double
    quote and newline), so an arbitrary address or path cannot corrupt
    the output. *)

val trace_text : Trace.event list -> string
(** The span dump: one line per event, indented by nesting depth. *)

val timeline : Trace.event list -> string
(** The stitched per-request view: events (possibly merged from
    several processes — a client's ring plus what a server returned
    over the wire) ordered by wall-clock start, with offsets relative
    to the earliest event and the recording domain shown per line. *)

val trace_json : Trace.event list -> string
(** Chrome trace-event JSON (complete ["X"] events, timestamps in
    microseconds), loadable in Perfetto or [chrome://tracing]. Request
    ids map to [pid] and recording domains to [tid], so one request
    renders as a process with one track per domain. *)

val phase_summary : Metrics.t -> string
(** Per-phase percentile table built from the [span.<phase>.ns] /
    [span.<phase>.blocks] histogram pairs in the registry. *)
