(* Trace spans: phase-labelled intervals of the query pipeline,
   recorded into per-domain ring buffers and summarized into the
   default registry's per-phase histograms.

   A span is entered with the current block-read count of whatever
   Io_stats the caller is charged against and exited with the same
   counter read again, so each event carries both wall time and blocks
   touched during the phase. Nesting depth is tracked per domain (a
   DLS counter), which lets the dump indent a query's pipeline —
   first-level descent, then the PST / interval-tree / slab probes it
   dispatches — without the probes knowing about each other.

   Every event also carries a request id (propagated per domain via
   DLS, see [with_request_id]) and the recording domain's id, so spans
   from a server's worker domains can be stitched back into one
   per-request timeline after the fact.

   When tracing is off ([Control.enabled () = false]) [enter] returns
   the shared [none] span and [exit] returns immediately: no
   allocation, no lock, no clock read. When on, each domain pushes
   into its own ring (registered once, merged by [events ()]), so span
   exits from concurrent query workers never contend on a shared ring
   lock — only the per-phase histogram update serializes, inside the
   registry. *)

type event = {
  seq : int;
  phase : string;
  depth : int;
  t0_ns : int;
  dur_ns : int;
  blocks : int;
  request_id : int;
  dom : int;
}

type span = { sphase : string; st0 : int; sblocks : int; sdepth : int; srid : int }

let none = { sphase = ""; st0 = 0; sblocks = 0; sdepth = 0; srid = 0 }

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* ---------------- request identity ---------------- *)

(* Ids are positive and unique within a process (a counter) and
   unlikely to collide across processes (the base folds in wall clock
   and pid), which is all stitching a client's spans with a server's
   needs. 0 means "no request": spans recorded outside any request
   keep it. *)

let rid_base =
  (int_of_float (Unix.gettimeofday () *. 1e6) * 0x9E3779B9) lxor (Unix.getpid () lsl 24)

let rid_counter = Atomic.make 0

let fresh_request_id () =
  let id = (rid_base + Atomic.fetch_and_add rid_counter 1) land max_int in
  if id = 0 then 1 else id

let rid_key = Domain.DLS.new_key (fun () -> ref 0)

let current_request_id () = !(Domain.DLS.get rid_key)
let set_request_id rid = Domain.DLS.get rid_key := rid

let with_request_id rid f =
  let r = Domain.DLS.get rid_key in
  let saved = !r in
  r := rid;
  Fun.protect ~finally:(fun () -> r := saved) f

(* ---------------- per-domain rings ---------------- *)

(* Each domain owns one ring (created and registered on first use);
   only the owner writes it, so pushes are lock-free. The mutex guards
   the registry of rings and the structural operations
   ([set_capacity]/[clear]/[events]). [events] reading a ring while its
   owner pushes is a benign race: slots hold immutable event records
   behind a single pointer store, so a reader sees either the old or
   the new event, never a torn one. *)

type ring = { mutable slots : event option array; mutable next : int }

let mu = Mutex.create ()
let default_capacity = 4096
let cap = Atomic.make default_capacity
let rings : ring list ref = ref []
let next_seq = Atomic.make 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r = { slots = Array.make (Atomic.get cap) None; next = 0 } in
      locked (fun () -> rings := r :: !rings);
      r)

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  locked (fun () ->
      Atomic.set cap n;
      List.iter
        (fun r ->
          r.slots <- Array.make n None;
          r.next <- 0)
        !rings;
      Atomic.set next_seq 0)

let capacity () = Atomic.get cap

let clear () =
  locked (fun () ->
      List.iter
        (fun r ->
          Array.fill r.slots 0 (Array.length r.slots) None;
          r.next <- 0)
        !rings;
      Atomic.set next_seq 0)

(* Push onto the calling domain's ring. The ring keeps its own write
   cursor (not [seq mod capacity]) so each domain retains its last
   [capacity] events even when seqs interleave across domains. *)
let push ev =
  let r = Domain.DLS.get ring_key in
  let slots = r.slots in
  slots.(r.next mod Array.length slots) <- Some ev;
  r.next <- r.next + 1

let events () =
  locked (fun () ->
      let acc = ref [] in
      List.iter
        (fun r ->
          Array.iter (function Some ev -> acc := ev :: !acc | None -> ()) r.slots)
        !rings;
      List.sort (fun (a : event) b -> compare a.seq b.seq) !acc)

(* ---------------- spans ---------------- *)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let span_histogram phase = "span." ^ phase ^ ".ns"
let span_blocks_histogram phase = "span." ^ phase ^ ".blocks"

let enter ?(blocks = 0) phase =
  if not (Control.enabled ()) then none
  else begin
    let d = Domain.DLS.get depth_key in
    let sp =
      {
        sphase = phase;
        st0 = now_ns ();
        sblocks = blocks;
        sdepth = !d;
        srid = current_request_id ();
      }
    in
    incr d;
    sp
  end

let exit ?(blocks = 0) sp =
  if sp != none then begin
    let d = Domain.DLS.get depth_key in
    if !d > 0 then decr d;
    let dur = now_ns () - sp.st0 in
    let blocks = max 0 (blocks - sp.sblocks) in
    let seq = Atomic.fetch_and_add next_seq 1 in
    push
      {
        seq;
        phase = sp.sphase;
        depth = sp.sdepth;
        t0_ns = sp.st0;
        dur_ns = dur;
        blocks;
        request_id = sp.srid;
        dom = (Domain.self () :> int);
      };
    Metrics.observe Metrics.default (span_histogram sp.sphase) dur;
    Metrics.observe Metrics.default (span_blocks_histogram sp.sphase) blocks
  end

let with_span ?(blocks = fun () -> 0) phase f =
  if not (Control.enabled ()) then f ()
  else begin
    let sp = enter ~blocks:(blocks ()) phase in
    Fun.protect ~finally:(fun () -> exit ~blocks:(blocks ()) sp) f
  end

(* Direct event injection, for intervals whose start and end live on
   different domains (a request's queue wait: stamped at submit on one
   domain, measured at pickup on another). Records into the calling
   domain's ring and feeds the same per-phase histograms as a span. *)
let record ?request_id ?(blocks = 0) ~t0_ns ~dur_ns phase =
  if Control.enabled () then begin
    let rid = match request_id with Some r -> r | None -> current_request_id () in
    let seq = Atomic.fetch_and_add next_seq 1 in
    push
      {
        seq;
        phase;
        depth = !(Domain.DLS.get depth_key);
        t0_ns;
        dur_ns;
        blocks;
        request_id = rid;
        dom = (Domain.self () :> int);
      };
    Metrics.observe Metrics.default (span_histogram phase) dur_ns;
    Metrics.observe Metrics.default (span_blocks_histogram phase) blocks
  end
