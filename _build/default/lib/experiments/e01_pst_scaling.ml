(* E1 — Lemma 2/3: the external PST answers segment queries on
   line-based sets in O(log n + t) I/Os (binary) and O(log_B n + t)
   (blocked), against the naive O(n/B) block scan. *)

open Segdb_io
open Segdb_geom
open Segdb_util
module W = Segdb_workload.Workload
module Pst = Segdb_pst.Pst

let id = "e1"
let title = "E1: line-based PST query I/O vs N"
let validates = "Lemmas 2-3 (Section 2): O(log n + t) / O(log_B n + t) vs naive O(n/B)"

let queries_for rng ~vspan ~umax ~count =
  Array.init count (fun _ ->
      let uq = Rng.float rng (0.8 *. umax) in
      let v = Rng.float rng vspan in
      Lseg.query ~uq ~vlo:v ~vhi:(v +. (0.01 *. vspan)))

let run (p : Harness.params) =
  let table =
    Table.create ~title
      ~columns:
        [ "n"; "log2 n"; "naive io"; "binary io"; "blocked io"; "mean t"; "naive blk"; "pst blk" ]
  in
  let pts_naive = ref [] and pts_bin = ref [] and pts_blk = ref [] in
  List.iter
    (fun n ->
      let rng = Rng.create p.seed in
      let vspan = 1000.0 and umax = 100.0 in
      let lsegs = W.line_based rng ~n ~vspan ~umax in
      let queries = queries_for (Rng.create (p.seed + 1)) ~vspan ~umax ~count:40 in
      let io = Io_stats.create () in
      let pool () = Block_store.Pool.create ~capacity:Harness.pool_blocks in
      let naive = Naive_lsegs.build ~block:Harness.block ~pool:(pool ()) ~stats:io lsegs in
      let binary = Pst.binary ~node_capacity:Harness.block ~pool:(pool ()) ~stats:io lsegs in
      let blocked = Pst.blocked ~node_capacity:Harness.block ~pool:(pool ()) ~stats:io lsegs in
      let c_naive = Harness.measure ~io ~queries ~run:(Naive_lsegs.count naive) in
      let c_bin = Harness.measure ~io ~queries ~run:(Pst.count binary) in
      let c_blk = Harness.measure ~io ~queries ~run:(Pst.count blocked) in
      let fn = float_of_int n in
      pts_naive := (fn, c_naive.mean_io) :: !pts_naive;
      pts_bin := (fn, c_bin.mean_io) :: !pts_bin;
      pts_blk := (fn, c_blk.mean_io) :: !pts_blk;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 (Harness.log2 (float_of_int n));
          Table.cell_float ~decimals:1 c_naive.mean_io;
          Table.cell_float ~decimals:1 c_bin.mean_io;
          Table.cell_float ~decimals:1 c_blk.mean_io;
          Table.cell_float ~decimals:1 c_blk.mean_out;
          Table.cell_int (Naive_lsegs.block_count naive);
          Table.cell_int (Pst.block_count blocked);
        ])
    (Harness.sweep_n p);
  let chart =
    Ascii_plot.render ~log_x:true ~title:"E1 (figure): query I/O vs N" ~x_label:"N"
      ~y_label:"mean I/O per query"
      [
        { Ascii_plot.label = "naive scan"; points = List.rev !pts_naive };
        { Ascii_plot.label = "binary PST"; points = List.rev !pts_bin };
        { Ascii_plot.label = "blocked PST"; points = List.rev !pts_blk };
      ]
  in
  [ Harness.Table table; Harness.Chart chart ]
