test/test_main.ml: Alcotest T_btree T_core T_geom T_internal T_io T_itree T_pst T_rtree T_seg_file T_segtree T_sweep T_util T_wbt T_workload
