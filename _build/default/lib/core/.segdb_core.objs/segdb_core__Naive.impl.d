lib/core/naive.ml: Array Block_store List Segdb_geom Segdb_io Segment Vquery Vs_index
