examples/quickstart.ml: Format List Segdb_core Segdb_geom Segdb_io Segment Vquery
