open Segdb_io

(** External-memory B+-trees over the simulated block store.

    The substrate the paper assumes from [7]: `O(log_B n + t)` range
    queries, `O(n)` blocks, `O(log_B n)` updates. Used directly as the
    multislab lists of the segment tree [G] (Section 4.2), as the sorted
    runs inside external PST nodes, and available as a general-purpose
    index.

    One tree node occupies exactly one block; the [fanout] parameter
    plays the role of [B]. Leaves are chained for ordered traversal. *)

module Make (K : sig
  type t

  val compare : t -> t -> int
end) (V : sig
  type t
end) : sig
  type t
  type key = K.t
  type value = V.t

  val create :
    ?fanout:int ->
    pool:Block_store.Pool.t ->
    stats:Io_stats.t ->
    unit ->
    t
  (** An empty tree. [fanout] (default 64) is the maximal number of
      entries per node; minimum occupancy is [fanout / 2]. *)

  val bulk_load :
    ?fanout:int ->
    pool:Block_store.Pool.t ->
    stats:Io_stats.t ->
    (key * value) array ->
    t
  (** Builds bottom-up from an array sorted by strictly increasing key.
      Raises [Invalid_argument] if keys are not strictly increasing. *)

  val size : t -> int
  val is_empty : t -> bool
  val height : t -> int
  val block_count : t -> int

  val find : t -> key -> value option

  val insert : t -> key -> value -> unit
  (** Replaces the value if the key is present. *)

  val delete : t -> key -> bool
  (** Returns whether the key was present. Rebalances with borrow/merge
      so occupancy invariants are preserved. *)

  val min_binding : t -> (key * value) option
  val max_binding : t -> (key * value) option

  val iter_range : t -> lo:key option -> hi:key option -> (key -> value -> unit) -> unit
  (** In-order over keys in [\[lo, hi\]] (closed; [None] = unbounded),
      walking the leaf chain. *)

  val iter_from : t -> key -> (key -> value -> [ `Continue | `Stop ]) -> unit
  (** Starts at the first key [>= key] and walks right until the
      callback stops or keys are exhausted. The caller pays one descent
      plus one I/O per visited leaf — the access pattern fractional
      cascading optimizes. *)

  val iter_from_pred : t -> pred:(key -> bool) -> (key -> value -> [ `Continue | `Stop ]) -> unit
  (** Like [iter_from], but the start position is the first key
      satisfying [pred], which must be monotone along the key order
      (all false entries precede all true ones). Useful when keys carry geometry and the boundary
      is defined by evaluation rather than by a comparable constant
      (e.g. "first fragment crossing [x] above [y]"). *)

  val fold : t -> init:'a -> f:('a -> key -> value -> 'a) -> 'a

  val check_invariants : t -> bool
  (** Key order, occupancy bounds, uniform leaf depth, leaf-chain
      consistency. Test use. *)
end
