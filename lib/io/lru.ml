type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value

let hits t = t.hits
let misses t = t.misses
let note_miss t = t.misses <- t.misses + 1
let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let mem t key = Hashtbl.mem t.table key

let peek t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node -> Some node.value

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key;
      Some node.value

let put t key value ~on_evict =
  (match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
  | None ->
      let node = { key; value; prev = None; next = None } in
      Hashtbl.add t.table key node;
      push_front t node);
  if Hashtbl.length t.table > t.capacity then
    match t.tail with
    | None -> assert false
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.table lru.key;
        on_evict lru.key lru.value

let iter t f =
  let rec go = function
    | None -> ()
    | Some node ->
        let next = node.next in
        f node.key node.value;
        go next
  in
  go t.head

let clear t ~on_evict =
  iter t on_evict;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
