lib/util/rng.mli:
