(* Status order at the current sweep abscissa. The comparator reads the
   module-level sweep position; the classical invariant — the relative
   order of active segments is constant while no crossing has occurred —
   is exactly what makes this sound for *detection*. Not reentrant. *)

let sweep_x = ref 0.0

module Key = struct
  type t = Segment.t

  let compare (a : Segment.t) (b : Segment.t) =
    let x = !sweep_x in
    let c = compare (Segment.y_at a x) (Segment.y_at b x) in
    if c <> 0 then c
    else
      let c = compare (Segment.slope a) (Segment.slope b) in
      if c <> 0 then c else compare a.Segment.id b.Segment.id
end

module Status = Segdb_wbt.Wbt.Make (Key)

exception Found of Segment.t * Segment.t

let is_integral v = Float.is_integer v && Float.abs v < 1_073_741_823.0

let all_integral segs =
  Array.for_all
    (fun (s : Segment.t) ->
      is_integral s.x1 && is_integral s.y1 && is_integral s.x2 && is_integral s.y2)
    segs

let float_orient (px, py) (qx, qy) (rx, ry) =
  let a = (qx -. px) *. (ry -. py) and b = (qy -. py) *. (rx -. px) in
  let d = a -. b in
  (* relative tolerance: near-degenerate turns count as collinear, so a
     grazing contact is classified as touching (allowed), never as a
     crossing — the verdict stays sound for NCT checking *)
  let eps = 1e-9 *. (Float.abs a +. Float.abs b +. 1e-300) in
  if d > eps then 1 else if d < -.eps then -1 else 0

(* Proper interior crossing with strict float signs; collinear overlaps
   are caught by a separate 1-D check. *)
let float_crosses (a : Segment.t) (b : Segment.t) =
  let p1 = (a.x1, a.y1) and p2 = (a.x2, a.y2) in
  let p3 = (b.x1, b.y1) and p4 = (b.x2, b.y2) in
  let d1 = float_orient p1 p2 p3
  and d2 = float_orient p1 p2 p4
  and d3 = float_orient p3 p4 p1
  and d4 = float_orient p3 p4 p2 in
  if d1 = 0 && d2 = 0 && d3 = 0 && d4 = 0 then begin
    (* collinear: overlap longer than a point? *)
    let lo = Float.max a.x1 b.x1 and hi = Float.min a.x2 b.x2 in
    if a.x1 = a.x2 then Float.min a.y2 b.y2 > Float.max a.y1 b.y1 else hi > lo
  end
  else d1 * d2 < 0 && d3 * d4 < 0

let default_verdict segs =
  if all_integral segs then fun a b ->
    Predicates.crosses (Predicates.of_segment a) (Predicates.of_segment b)
  else float_crosses

type event = { ex : float; kind : int; seg : Segment.t }
(* kind: 0 = insert, 1 = vertical, 2 = remove — processed in this order
   at equal abscissas so verticals see everything active at their x *)

let find_crossing ?verdict segs =
  let verdict = match verdict with Some v -> v | None -> default_verdict segs in
  let events = ref [] in
  Array.iter
    (fun (s : Segment.t) ->
      if Segment.is_point s then () (* a point only ever touches *)
      else if Segment.is_vertical s then events := { ex = s.x1; kind = 1; seg = s } :: !events
      else begin
        events := { ex = s.x1; kind = 0; seg = s } :: !events;
        events := { ex = s.x2; kind = 2; seg = s } :: !events
      end)
    segs;
  let events =
    List.sort
      (fun a b -> compare (a.ex, a.kind, a.seg.Segment.id) (b.ex, b.kind, b.seg.Segment.id))
      !events
  in
  let status = ref Status.empty in
  let check a b = if verdict a b then raise (Found (a, b)) in
  let check_opt s = function Some (o, ()) -> check s o | None -> () in
  (* Order-corruption fallback: a failed keyed lookup means the status
     order broke (ties flipping at a shared right endpoint, or a
     crossing past the comparator). Test the departing segment against
     every active one, rebuild the status under the current order, and
     test every *adjacent pair* of the rebuilt order — rebuilding is an
     adjacency-creating event like insert/remove, so skipping the tests
     here would be the one hole in the "every pair that ever becomes
     adjacent is tested" completeness argument. *)
  let rescue s =
    Status.iter (fun o () -> if o.Segment.id <> s.Segment.id then check s o) !status;
    let keep = ref [] in
    Status.iter (fun o () -> if o.Segment.id <> s.Segment.id then keep := o :: !keep) !status;
    status := List.fold_left (fun acc o -> Status.add o () acc) Status.empty !keep;
    let prev = ref None in
    Status.iter
      (fun o () ->
        (match !prev with Some p -> check p o | None -> ());
        prev := Some o)
      !status
  in
  try
    List.iter
      (fun ev ->
        sweep_x := ev.ex;
        let s = ev.seg in
        match ev.kind with
        | 0 ->
            status := Status.add s () !status;
            let l, _, r = Status.split s !status in
            check_opt s (Status.max_binding l);
            check_opt s (Status.min_binding r)
        | 1 ->
            (* vertical: candidates are the actives whose ordinate at
               [ex] falls within the vertical's closed extent *)
            let lo = Segment.min_y s and hi = Segment.max_y s in
            Status.iter
              (fun o () ->
                let y = Segment.y_at o ev.ex in
                if lo <= y && y <= hi then check s o)
              !status
        | _ ->
            let l, present, r = Status.split s !status in
            if present = None then rescue s
            else begin
              (match (Status.max_binding l, Status.min_binding r) with
              | Some (a, ()), Some (b, ()) -> check a b
              | _ -> ());
              status := Status.remove s !status
            end)
      events;
    (* verticals sharing an abscissa were each checked against actives,
       but not against each other: do the per-abscissa pass *)
    let verts =
      Array.to_list segs
      |> List.filter (fun (s : Segment.t) -> Segment.is_vertical s && not (Segment.is_point s))
      |> List.sort (fun (a : Segment.t) b -> compare (a.x1, a.y1) (b.x1, b.y1))
    in
    let rec scan = function
      | (a : Segment.t) :: (b :: _ as rest) ->
          if a.x1 = b.x1 then check a b;
          scan rest
      | _ -> ()
    in
    scan verts;
    None
  with Found (a, b) -> Some (a, b)

let verify_nct segs = find_crossing segs = None
