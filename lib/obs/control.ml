(* The single on/off switch for the whole observability subsystem.

   Every probe site in the I/O stack is guarded by [enabled ()]: one
   atomic load, no allocation, no call when the subsystem is off — the
   discipline that keeps the uninstrumented hot path at its PR 2 cost.
   The flag is atomic (not a plain ref) so that flipping it from one
   domain is visible to query workers on others without a data race. *)

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let with_enabled f =
  let saved = Atomic.get on in
  Atomic.set on true;
  Fun.protect ~finally:(fun () -> Atomic.set on saved) f

(* SEGDB_OBS=0 is an operator veto: entry points that enable
   observability by default (serving, local stats) check [forced_off]
   first, so the environment wins over the built-in default. *)
let forced_off_ = Atomic.make false

let forced_off () = Atomic.get forced_off_

let configure_from_env () =
  match Sys.getenv_opt "SEGDB_OBS" with
  | Some ("0" | "false" | "off") ->
      Atomic.set forced_off_ true;
      disable ()
  | Some ("1" | "true" | "on") -> enable ()
  | Some _ | None -> ()
