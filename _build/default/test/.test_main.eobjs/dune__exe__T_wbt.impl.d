test/t_wbt.ml: Alcotest Array Fun Int List Map Printf QCheck QCheck_alcotest Segdb_wbt
