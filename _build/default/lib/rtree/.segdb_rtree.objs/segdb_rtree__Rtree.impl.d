lib/rtree/rtree.ml: Array Bbox Block_store List Segdb_geom Segdb_io Segment Vquery
