(** A blocking client with bounded retry and endpoint failover.

    Queries are read-only and the protocol's writes ([Insert]/[Delete])
    are idempotent, so every request the protocol carries is safe to
    replay; the client therefore treats the whole transient family —
    connection refused/reset, broken pipe, timeouts, framing damage
    ({!Wire.protocol_error} on the response stream), and the server's
    own [Overloaded]/[Corrupt_frame] answers — uniformly: drop the
    connection if it is suspect, back off exponentially with
    deterministic jitter, reconnect, replay. The policy mirrors
    [Failpoint.Io]'s bounded retry-with-backoff, and each replay bumps
    the same [io.retries] counter (plus [net.client.retries]) when
    observability is on.

    Definitive answers — results, [Bad_request], [Deadline],
    [Server_error], [Fenced] — are never retried.

    {b Failover}: {!connect_many} takes several endpoints. Any retry
    whose connection was dropped rotates to the next endpoint and
    health-probes it (a [Ping] exchange) before replaying the request,
    so the request is not burned discovering a dead server; each
    rotation bumps [net.client.failovers]. With more than one endpoint
    [Not_primary] and [Shutting_down] also become failover-able — the
    next endpoint may be the primary, or not draining — while a
    single-endpoint client still receives them as definitive. *)

module Db := Segdb_core.Segdb
open Segdb_geom

type t

exception Error of string
(** Retries exhausted, or the server answered with a non-transient
    error. *)

val connect :
  ?retries:int ->
  ?backoff_ms:int ->
  ?timeout_ms:int ->
  ?backoff_seed:int ->
  Server.addr ->
  t
(** Connects eagerly, retrying refused connections (a server still
    binding is a transient condition too). [retries] bounds replays
    {e per request} (default 4), [backoff_ms] seeds the exponential
    backoff (default 10), [timeout_ms] bounds each response wait
    (default 5000; 0 disables). [backoff_seed] fixes the jitter
    schedule (see {!backoff_delay_s}); defaults to a per-process value
    so concurrent clients desynchronize. *)

val connect_many :
  ?retries:int ->
  ?backoff_ms:int ->
  ?timeout_ms:int ->
  ?backoff_seed:int ->
  Server.addr list ->
  t
(** {!connect} over an endpoint list (["host1:p1,host2:p2"] on the
    CLI). The first endpoint is tried first; connection failures and
    dropped-connection retries rotate round-robin. Raises
    [Invalid_argument] on an empty list. *)

val endpoint : t -> Server.addr
(** The endpoint the next request will go to. *)

val endpoints : t -> Server.addr list

val backoff_delay_s : seed:int -> backoff_ms:int -> attempt:int -> float
(** The exact sleep before replay [attempt] (0-based):
    [backoff_ms * 2^min(attempt,10)] milliseconds scaled by a jitter
    factor in [0.5, 1.0) drawn deterministically from [(seed, attempt)].
    Exposed pure so tests can assert the schedule. *)

val rpc : t -> Wire.request -> Wire.response
(** One request, retried per the policy above. Raises {!Error} when
    retries are exhausted. The typed helpers below are this plus
    unwrapping. *)

val ping : t -> unit

val query : t -> Vquery.t -> int list Db.Degraded.t
(** Sorted ids; completeness/faults as reported by the server. *)

val count : t -> Vquery.t -> int

val batch : t -> Vquery.t array -> int list array Db.Degraded.t
(** Element [i] is exactly what in-process [Segdb.query_ids] on query
    [i] would return. *)

val batch_ex :
  t -> ?request_id:int -> ?trace:bool -> Vquery.t array -> int list array Db.Degraded.t
(** {!batch} with observability: [request_id] (a value from
    [Segdb_obs.Trace.fresh_request_id]) is attached to every span the
    server records while serving the batch, and [trace] asks it to
    bracket execution in an ["exec.batch"] span. Follow with
    {!fetch_trace} to pull those spans back. An old server answers the
    new tag with [Bad_request] (raised as {!Error}). *)

val fetch_trace : t -> request_id:int -> Segdb_obs.Trace.event list
(** The server's retained trace events for one request, in recording
    order. Empty when the server's observability is off or its ring
    wrapped past the request. *)

val slowlog : t -> [ `Text | `Json ] -> string
(** The server's slow-query log, pre-rendered. *)

val stats : t -> [ `Text | `Json | `Prometheus ] -> string
val shutdown : t -> unit

val insert : t -> Segment.t -> int * bool
(** Write through the primary: [(lsn, changed)]. [changed] is false
    when the id already existed (idempotent — safe under replay).
    A replica answers [Not_primary]: {!Error} on a single endpoint,
    failover with several. *)

val delete : t -> Segment.t -> int * bool
(** As {!insert}; [changed] is false when nothing matched. *)

val promote : ?epoch:int -> t -> int
(** Ask the connected node to become primary; returns its (possibly
    already-current) epoch. [epoch] forces a specific fenced epoch
    (0/default: bump by one); a non-advancing epoch is answered
    [Fenced] and raised as {!Error}. *)

val repl_status : t -> Wire.repl_status
(** Role, epoch, committed LSN, and per-replica acknowledged LSNs of
    the connected node. *)

val close : t -> unit
(** Idempotent. *)
