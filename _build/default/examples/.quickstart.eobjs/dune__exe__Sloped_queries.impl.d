examples/sloped_queries.ml: Array List Printf Segdb_core Segdb_geom Segdb_util Segdb_workload Segment Transform
