open Segdb_io
open Segdb_geom

(** External priority search trees for line-based segments (Section 2).

    The structure stores {!Lseg.t} values in blocks of at most
    [node_capacity] segments. Every node keeps the segments of its
    subtree that reach deepest (largest [far_u]) — the heap dimension —
    while the children partition the remaining segments by the
    left-to-right order {!Lseg.compare_key} — the search dimension. This
    is exactly the paper's construction ("select B segments with the
    topmost endpoints, partition the rest in two"), generalized to an
    arbitrary branching factor:

    - [branching = 2] is the binary external PST of Section 2
      (query [O(log n + t)] I/Os, Lemma 2);
    - [branching = Θ(B)] packs the child routers into the parent block
      and stands in for the P-range tree refinement of Lemma 3
      (query [O(log_B n + t)] I/Os measured; the paper's extra
      [IL*(B)] term buys the strict worst case in linear space).

    Queries are segments parallel to the base line ({!Lseg.query}).
    Matching is decided per segment by exact evaluation, so answers are
    correct unconditionally; the NCT order lemma (crossing positions of
    non-crossing segments are ordered like their {!Lseg.compare_key})
    powers the *pruning*: any scanned segment crossing left of the query
    bounds all smaller keys away, and symmetrically. [Find] — the
    deepest-leftmost / deepest-rightmost search of Lemma 1 — is exposed
    separately as {!find_leftmost} / {!find_rightmost}.

    Insertions follow the paper's semi-dynamic regime: heap push-down
    along the search path plus scapegoat-style weight-balanced subtree
    rebuilds (the BB[alpha] substitute), giving amortized logarithmic
    cost. *)

type t

val build :
  ?node_capacity:int ->
  ?branching:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  Lseg.t array ->
  t
(** Static bulk construction. [node_capacity] (the paper's [B]) defaults
    to 64, [branching] to 2. The input array is not modified; duplicate
    ids are not rejected but make answers ambiguous. *)

val binary :
  ?node_capacity:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  Lseg.t array ->
  t
(** [build ~branching:2]. *)

val blocked :
  ?node_capacity:int ->
  pool:Block_store.Pool.t ->
  stats:Io_stats.t ->
  Lseg.t array ->
  t
(** [build] with [branching = max 4 (node_capacity / 4)] — one block per
    node still holds all child routers. *)

val insert : t -> Lseg.t -> unit

val delete : t -> Lseg.t -> bool
(** Removes the segment ({!Lseg.compare_key}-identical), refilling the
    heap from child blocks along the search path; returns whether it was
    present. Subtree key ranges become conservative (still-enclosing)
    bounds, so pruning stays correct; depths are maintained exactly. *)

val size : t -> int
val height : t -> int
val block_count : t -> int
val node_capacity : t -> int

val query : t -> Lseg.query -> f:(Lseg.t -> unit) -> unit
(** Reports every stored segment intersected by the query, exactly once,
    in no particular order. *)

val query_list : t -> Lseg.query -> Lseg.t list

val count : t -> Lseg.query -> int

val find_leftmost : t -> Lseg.query -> Lseg.t option
(** The intersected segment least in {!Lseg.compare_key} order — the
    paper's deepest-leftmost segment (Lemma 1.1). *)

val find_rightmost : t -> Lseg.query -> Lseg.t option

(** {1 The Appendix A frontier form of Find}

    The paper implements [Find] with a queue of candidate nodes and
    argues it keeps at most two nodes per level (the heart of Lemma
    1.1). [find_profile] runs that breadth-first form and reports the
    realized frontier width, so the claim is measurable; results always
    agree with {!find_leftmost}/{!find_rightmost}. *)

type find_profile = {
  result : Lseg.t option;
  visited : int;  (** blocks read *)
  max_width : int;
      (** most nodes *processed* (read) on one level — the paper's
          "Q refers at most two nodes on each level"; candidates pruned
          by witnesses before being read do not count *)
  levels : int;
}

val find_profile : t -> Lseg.query -> leftmost:bool -> find_profile
val find_leftmost_bfs : t -> Lseg.query -> Lseg.t option
val find_rightmost_bfs : t -> Lseg.query -> Lseg.t option

val query_two_phase : t -> Lseg.query -> f:(Lseg.t -> unit) -> unit
(** The paper's Report as written (Appendix A, Algorithm 2): [Find]
    both boundary segments, then report the 3-sided set between their
    keys — which the NCT order lemma proves equal to the answer. Same
    results as {!query}; kept as the faithful-to-the-text variant. *)

val iter : t -> (Lseg.t -> unit) -> unit

val to_list : t -> Lseg.t list

val rebuild_count : int ref
(** Global diagnostic: scapegoat subtree rebuilds across all PSTs since
    process start (E7 uses it to relate amortized insertion cost to
    rebuild mass). *)

val rebuild_mass : int ref
(** Total segments carried by those rebuilds. *)

val check_invariants : t -> bool
(** Heap order on [far_u], key order inside blocks and across children,
    router accuracy (subtree max depth, key range, size), block
    capacity. Test use. *)
