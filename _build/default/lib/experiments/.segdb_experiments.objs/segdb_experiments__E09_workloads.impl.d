lib/experiments/e09_workloads.ml: Backends Harness List Printf Rng Segdb_util Segdb_workload Table
