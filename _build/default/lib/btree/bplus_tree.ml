open Segdb_io

module Make (K : sig
  type t

  val compare : t -> t -> int
end) (V : sig
  type t
end) =
struct
  type key = K.t
  type value = V.t

  type node =
    | Leaf of { keys : key array; vals : value array; next : Block_store.addr }
    | Inner of { seps : key array; kids : Block_store.addr array }
  (* [kids] has one more element than [seps]. Invariant: every key in
     [kids.(i)] is >= [seps.(i-1)] (for i >= 1) and < [seps.(i)] is NOT
     required — separators are lower bounds of their right subtree and
     strict upper bounds of everything to their left at the time they
     were installed; deletions may make them stale, which preserves
     search correctness (see delete). *)

  module Store = Block_store.Make (struct
    type t = node
  end)

  type t = {
    store : Store.t;
    fanout : int;
    mutable root : Block_store.addr;
    mutable size : int;
    mutable height : int; (* 1 = root is a leaf *)
  }

  let min_occupancy fanout = (fanout + 1) / 2

  (* ---- array editing helpers (persistent-style on small arrays) ---- *)

  let array_insert a i x =
    let n = Array.length a in
    let b = Array.make (n + 1) x in
    Array.blit a 0 b 0 i;
    Array.blit a i b (i + 1) (n - i);
    b

  let array_remove a i =
    let n = Array.length a in
    let b = Array.sub a 0 (n - 1) in
    Array.blit a (i + 1) b i (n - 1 - i);
    b

  let array_append = Array.append

  (* Number of separators <= key: index of the child to descend into. *)
  let child_index seps key =
    let lo = ref 0 and hi = ref (Array.length seps) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare seps.(mid) key <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Position of the first key >= key in a sorted key array. *)
  let lower_bound keys key =
    let lo = ref 0 and hi = ref (Array.length keys) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let create ?(fanout = 64) ~pool ~stats () =
    if fanout < 4 then invalid_arg "Bplus_tree.create: fanout must be >= 4";
    let store = Store.create ~name:"bplus" ~pool ~stats () in
    let root = Store.alloc store (Leaf { keys = [||]; vals = [||]; next = Block_store.null }) in
    { store; fanout; root; size = 0; height = 1 }

  let size t = t.size
  let is_empty t = t.size = 0
  let height t = t.height
  let block_count t = Store.block_count t.store

  (* ---------------- bulk load ---------------- *)

  let bulk_load ?(fanout = 64) ~pool ~stats entries =
    if fanout < 4 then invalid_arg "Bplus_tree.bulk_load: fanout must be >= 4";
    for i = 1 to Array.length entries - 1 do
      if K.compare (fst entries.(i - 1)) (fst entries.(i)) >= 0 then
        invalid_arg "Bplus_tree.bulk_load: keys not strictly increasing"
    done;
    let t = create ~fanout ~pool ~stats () in
    let n = Array.length entries in
    if n = 0 then t
    else begin
      (* Cut [n] items into runs of size within [min_occ, fanout],
         keeping the tail legal by evening out the last two runs. *)
      let runs total cap min_occ =
        let nruns = (total + cap - 1) / cap in
        let nruns = max nruns 1 in
        let base = total / nruns and extra = total mod nruns in
        List.init nruns (fun i -> if i < extra then base + 1 else base)
        |> List.map (fun sz ->
               assert (sz <= cap && (nruns = 1 || sz >= min_occ));
               sz)
      in
      let min_occ = min_occupancy fanout in
      (* leaves *)
      let leaf_sizes = runs n fanout min_occ in
      let pos = ref 0 in
      let leaves =
        List.map
          (fun sz ->
            let keys = Array.init sz (fun i -> fst entries.(!pos + i)) in
            let vals = Array.init sz (fun i -> snd entries.(!pos + i)) in
            pos := !pos + sz;
            let addr = Store.alloc t.store (Leaf { keys; vals; next = Block_store.null }) in
            (addr, keys.(0)))
          leaf_sizes
      in
      (* chain the leaves *)
      let rec chain = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            (match Store.read t.store a with
            | Leaf l -> Store.write t.store a (Leaf { keys = l.keys; vals = l.vals; next = b })
            | Inner _ -> assert false);
            chain rest
        | _ -> ()
      in
      chain leaves;
      (* build inner levels *)
      let rec build level nodes =
        match nodes with
        | [ (addr, _) ] ->
            t.root <- addr;
            t.height <- level
        | _ ->
            let arr = Array.of_list nodes in
            let m = Array.length arr in
            let sizes = runs m fanout min_occ in
            let pos = ref 0 in
            let parents =
              List.map
                (fun sz ->
                  let kids = Array.init sz (fun i -> fst arr.(!pos + i)) in
                  let seps = Array.init (sz - 1) (fun i -> snd arr.(!pos + i + 1)) in
                  let first_key = snd arr.(!pos) in
                  pos := !pos + sz;
                  let addr = Store.alloc t.store (Inner { seps; kids }) in
                  (addr, first_key))
                sizes
            in
            build (level + 1) parents
      in
      (* free the initial empty root *)
      Store.free t.store t.root;
      build 1 leaves;
      t.size <- n;
      t
    end

  (* ---------------- search ---------------- *)

  let rec find_node t addr key =
    match Store.read t.store addr with
    | Leaf { keys; vals; _ } ->
        let i = lower_bound keys key in
        if i < Array.length keys && K.compare keys.(i) key = 0 then Some vals.(i) else None
    | Inner { seps; kids } -> find_node t kids.(child_index seps key) key

  let find t key = find_node t t.root key

  let rec min_node t addr =
    match Store.read t.store addr with
    | Leaf { keys; vals; _ } ->
        if Array.length keys = 0 then None else Some (keys.(0), vals.(0))
    | Inner { kids; _ } -> min_node t kids.(0)

  let min_binding t = min_node t t.root

  let rec max_node t addr =
    match Store.read t.store addr with
    | Leaf { keys; vals; _ } ->
        let n = Array.length keys in
        if n = 0 then None else Some (keys.(n - 1), vals.(n - 1))
    | Inner { kids; _ } -> max_node t kids.(Array.length kids - 1)

  let max_binding t = max_node t t.root

  (* ---------------- insertion ---------------- *)

  (* Returns [Some (sep, right_addr)] if the node split. *)
  let rec insert_rec t addr key value =
    match Store.read t.store addr with
    | Leaf { keys; vals; next } ->
        let i = lower_bound keys key in
        if i < Array.length keys && K.compare keys.(i) key = 0 then begin
          let vals = Array.copy vals in
          vals.(i) <- value;
          Store.write t.store addr (Leaf { keys; vals; next });
          None
        end
        else begin
          t.size <- t.size + 1;
          let keys = array_insert keys i key and vals = array_insert vals i value in
          if Array.length keys <= t.fanout then begin
            Store.write t.store addr (Leaf { keys; vals; next });
            None
          end
          else begin
            let mid = Array.length keys / 2 in
            let rkeys = Array.sub keys mid (Array.length keys - mid)
            and rvals = Array.sub vals mid (Array.length vals - mid) in
            let right = Store.alloc t.store (Leaf { keys = rkeys; vals = rvals; next }) in
            Store.write t.store addr
              (Leaf { keys = Array.sub keys 0 mid; vals = Array.sub vals 0 mid; next = right });
            Some (rkeys.(0), right)
          end
        end
    | Inner { seps; kids } -> (
        let i = child_index seps key in
        match insert_rec t kids.(i) key value with
        | None -> None
        | Some (sep, right) ->
            let seps = array_insert seps i sep and kids = array_insert kids (i + 1) right in
            if Array.length kids <= t.fanout then begin
              Store.write t.store addr (Inner { seps; kids });
              None
            end
            else begin
              let midk = Array.length kids / 2 in
              (* children [0, midk) stay; separator seps.(midk - 1) moves up;
                 children [midk, ..) move right. *)
              let up = seps.(midk - 1) in
              let rkids = Array.sub kids midk (Array.length kids - midk) in
              let rseps = Array.sub seps midk (Array.length seps - midk) in
              let right = Store.alloc t.store (Inner { seps = rseps; kids = rkids }) in
              Store.write t.store addr
                (Inner { seps = Array.sub seps 0 (midk - 1); kids = Array.sub kids 0 midk });
              Some (up, right)
            end)

  let insert t key value =
    match insert_rec t t.root key value with
    | None -> ()
    | Some (sep, right) ->
        let root = Store.alloc t.store (Inner { seps = [| sep |]; kids = [| t.root; right |] }) in
        t.root <- root;
        t.height <- t.height + 1

  (* ---------------- deletion ---------------- *)

  let node_entries = function
    | Leaf { keys; _ } -> Array.length keys
    | Inner { kids; _ } -> Array.length kids

  (* Fix a potential underflow of child [i] of the inner node [(seps, kids)];
     returns the updated (seps, kids) for the parent. *)
  let fix_underflow t seps kids i =
    let min_occ = min_occupancy t.fanout in
    let child = Store.read t.store kids.(i) in
    if node_entries child >= min_occ then (seps, kids)
    else begin
      let borrow_left li =
        let left = Store.read t.store kids.(li) in
        match (left, child) with
        | Leaf l, Leaf c ->
            let n = Array.length l.keys in
            let k = l.keys.(n - 1) and v = l.vals.(n - 1) in
            Store.write t.store kids.(li)
              (Leaf { keys = Array.sub l.keys 0 (n - 1); vals = Array.sub l.vals 0 (n - 1); next = l.next });
            Store.write t.store kids.(i)
              (Leaf { keys = array_insert c.keys 0 k; vals = array_insert c.vals 0 v; next = c.next });
            let seps = Array.copy seps in
            seps.(li) <- k;
            (seps, kids)
        | Inner l, Inner c ->
            let nk = Array.length l.kids in
            let moved = l.kids.(nk - 1) in
            let new_sep = l.seps.(nk - 2) in
            Store.write t.store kids.(li)
              (Inner { seps = Array.sub l.seps 0 (nk - 2); kids = Array.sub l.kids 0 (nk - 1) });
            Store.write t.store kids.(i)
              (Inner { seps = array_insert c.seps 0 seps.(li); kids = array_insert c.kids 0 moved });
            let seps = Array.copy seps in
            seps.(li) <- new_sep;
            (seps, kids)
        | _ -> assert false
      in
      let borrow_right ri =
        let right = Store.read t.store kids.(ri) in
        match (child, right) with
        | Leaf c, Leaf r ->
            let k = r.keys.(0) and v = r.vals.(0) in
            Store.write t.store kids.(ri)
              (Leaf { keys = array_remove r.keys 0; vals = array_remove r.vals 0; next = r.next });
            Store.write t.store kids.(i)
              (Leaf
                 {
                   keys = array_append c.keys [| k |];
                   vals = array_append c.vals [| v |];
                   next = c.next;
                 });
            let seps = Array.copy seps in
            seps.(i) <- (match Store.read t.store kids.(ri) with
                        | Leaf { keys; _ } -> keys.(0)
                        | Inner _ -> assert false);
            (seps, kids)
        | Inner c, Inner r ->
            let moved = r.kids.(0) in
            let new_sep = r.seps.(0) in
            Store.write t.store kids.(ri)
              (Inner { seps = array_remove r.seps 0; kids = array_remove r.kids 0 });
            Store.write t.store kids.(i)
              (Inner
                 {
                   seps = array_append c.seps [| seps.(i) |];
                   kids = array_append c.kids [| moved |];
                 });
            let seps = Array.copy seps in
            seps.(i) <- new_sep;
            (seps, kids)
        | _ -> assert false
      in
      let merge li ri =
        (* merge kids.(ri) into kids.(li); drop seps.(li) *)
        let left = Store.read t.store kids.(li) and right = Store.read t.store kids.(ri) in
        (match (left, right) with
        | Leaf l, Leaf r ->
            Store.write t.store kids.(li)
              (Leaf
                 {
                   keys = array_append l.keys r.keys;
                   vals = array_append l.vals r.vals;
                   next = r.next;
                 })
        | Inner l, Inner r ->
            Store.write t.store kids.(li)
              (Inner
                 {
                   seps = Array.concat [ l.seps; [| seps.(li) |]; r.seps ];
                   kids = array_append l.kids r.kids;
                 })
        | _ -> assert false);
        Store.free t.store kids.(ri);
        (array_remove seps li, array_remove kids ri)
      in
      let can_lend a =
        node_entries (Store.read t.store a) > min_occ
      in
      if i > 0 && can_lend kids.(i - 1) then borrow_left (i - 1)
      else if i < Array.length kids - 1 && can_lend kids.(i + 1) then borrow_right (i + 1)
      else if i > 0 then merge (i - 1) i
      else merge i (i + 1)
    end

  let rec delete_rec t addr key =
    match Store.read t.store addr with
    | Leaf { keys; vals; next } ->
        let i = lower_bound keys key in
        if i < Array.length keys && K.compare keys.(i) key = 0 then begin
          Store.write t.store addr
            (Leaf { keys = array_remove keys i; vals = array_remove vals i; next });
          t.size <- t.size - 1;
          true
        end
        else false
    | Inner { seps; kids } ->
        let i = child_index seps key in
        let present = delete_rec t kids.(i) key in
        if present then begin
          let seps, kids = fix_underflow t seps kids i in
          Store.write t.store addr (Inner { seps; kids })
        end;
        present

  let delete t key =
    let present = delete_rec t t.root key in
    (if present then
       match Store.read t.store t.root with
       | Inner { kids; _ } when Array.length kids = 1 ->
           let old = t.root in
           t.root <- kids.(0);
           t.height <- t.height - 1;
           Store.free t.store old
       | _ -> ());
    present

  (* ---------------- traversal ---------------- *)

  (* Leaf containing the first key >= key (or the last leaf). *)
  let rec descend_to_leaf t addr key =
    match Store.read t.store addr with
    | Leaf _ -> addr
    | Inner { seps; kids } -> descend_to_leaf t kids.(child_index seps key) key

  let iter_from t key f =
    let rec walk addr start =
      match Store.read t.store addr with
      | Inner _ -> assert false
      | Leaf { keys; vals; next } ->
          let n = Array.length keys in
          let rec scan i =
            if i >= n then if next = Block_store.null then () else walk next 0
            else
              match f keys.(i) vals.(i) with `Continue -> scan (i + 1) | `Stop -> ()
          in
          scan start
    in
    let leaf = descend_to_leaf t t.root key in
    match Store.read t.store leaf with
    | Inner _ -> assert false
    | Leaf { keys; next; _ } ->
        let i = lower_bound keys key in
        if i < Array.length keys then walk leaf i
        else if next <> Block_store.null then walk next 0

  let iter_from_pred t ~pred f =
    (* descend to the leaf holding the first key with [pred] true *)
    let rec descend addr =
      match Store.read t.store addr with
      | Leaf _ -> addr
      | Inner { seps; kids } ->
          (* last child whose separator is still in the false region *)
          let k = ref 0 in
          for i = 0 to Array.length seps - 1 do
            if not (pred seps.(i)) then k := i + 1
          done;
          descend kids.(!k)
    in
    let rec walk addr start =
      match Store.read t.store addr with
      | Inner _ -> assert false
      | Leaf { keys; vals; next } ->
          let n = Array.length keys in
          let rec scan i =
            if i >= n then if next = Block_store.null then () else walk next 0
            else
              match f keys.(i) vals.(i) with `Continue -> scan (i + 1) | `Stop -> ()
          in
          scan start
    in
    let leaf = descend t.root in
    match Store.read t.store leaf with
    | Inner _ -> assert false
    | Leaf { keys; next; _ } ->
        let n = Array.length keys in
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if pred keys.(mid) then hi := mid else lo := mid + 1
        done;
        if !lo < n then walk leaf !lo
        else if next <> Block_store.null then walk next 0

  let iter_range t ~lo ~hi f =
    let start_addr =
      match lo with
      | Some k -> descend_to_leaf t t.root k
      | None ->
          let rec leftmost addr =
            match Store.read t.store addr with
            | Leaf _ -> addr
            | Inner { kids; _ } -> leftmost kids.(0)
          in
          leftmost t.root
    in
    let above_lo k = match lo with None -> true | Some b -> K.compare k b >= 0 in
    let below_hi k = match hi with None -> true | Some b -> K.compare k b <= 0 in
    let rec walk addr =
      match Store.read t.store addr with
      | Inner _ -> assert false
      | Leaf { keys; vals; next } ->
          let n = Array.length keys in
          let stop = ref false in
          for i = 0 to n - 1 do
            if not !stop && above_lo keys.(i) then
              if below_hi keys.(i) then f keys.(i) vals.(i) else stop := true
          done;
          if (not !stop) && next <> Block_store.null then walk next
    in
    walk start_addr

  let fold t ~init ~f =
    let acc = ref init in
    iter_range t ~lo:None ~hi:None (fun k v -> acc := f !acc k v);
    !acc

  (* ---------------- invariants ---------------- *)

  let check_invariants t =
    let ok = ref true in
    let min_occ = min_occupancy t.fanout in
    let leaves = ref [] in
    let rec go addr depth ~is_root =
      match Store.read t.store addr with
      | Leaf { keys; vals; _ } ->
          if depth <> t.height then ok := false;
          if Array.length keys <> Array.length vals then ok := false;
          if (not is_root) && Array.length keys < min_occ then ok := false;
          if Array.length keys > t.fanout then ok := false;
          for i = 1 to Array.length keys - 1 do
            if K.compare keys.(i - 1) keys.(i) >= 0 then ok := false
          done;
          leaves := addr :: !leaves;
          if Array.length keys = 0 then [] else [ keys.(0); keys.(Array.length keys - 1) ]
      | Inner { seps; kids } ->
          if Array.length kids <> Array.length seps + 1 then ok := false;
          if (not is_root) && Array.length kids < min_occ then ok := false;
          if is_root && Array.length kids < 2 then ok := false;
          if Array.length kids > t.fanout then ok := false;
          for i = 1 to Array.length seps - 1 do
            if K.compare seps.(i - 1) seps.(i) >= 0 then ok := false
          done;
          Array.iteri
            (fun i kid ->
              let bounds = go kid (depth + 1) ~is_root:false in
              List.iter
                (fun k ->
                  if i > 0 && K.compare k seps.(i - 1) < 0 then ok := false;
                  if i < Array.length seps && K.compare k seps.(i) >= 0 then ok := false)
                bounds)
            kids;
          []
    in
    ignore (go t.root 1 ~is_root:true);
    (* leaf chain must visit leaves in key order: walk it and count *)
    let count = ref 0 in
    iter_range t ~lo:None ~hi:None (fun _ _ -> incr count);
    if !count <> t.size then ok := false;
    !ok
end
