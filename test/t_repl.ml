(* Replication: the stream state machine (LSN tail, epoch fencing,
   promote), the reader/writer gate, snapshot resync, a live
   primary/replica pair over loopback (catch-up, steady-state
   shipping, kill + promote + failover), client endpoint failover with
   jittered backoff, and idle-connection reaping. *)

open Segdb_net
module Db = Segdb_core.Segdb
module Segment = Segdb_geom.Segment
module Vquery = Segdb_geom.Vquery
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Repl = Replication

let build_db ?(backend = `Solution2) ?(n = 200) ?(seed = 42) () =
  let segs = W.roads (Rng.create seed) ~n ~span:100.0 in
  Db.create ~backend ~block:8 ~pool_blocks:8 segs

let seg id x = Segment.make ~id (x, float_of_int id) (x +. 4.0, float_of_int id)

let show_resp = function
  | Wire.Error (c, m) -> Printf.sprintf "error %s: %s" (Wire.error_code_to_string c) m
  | _ -> "non-error response"
  [@@warning "-4"]

let wait_for ?(timeout_s = 10.0) msg pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out: %s" msg
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* ---------------- the stream ---------------- *)

let test_stream_basics () =
  let s = Repl.create ~max_tail:64 () in
  Alcotest.(check int) "fresh lsn" 0 (Repl.lsn s);
  Alcotest.(check int) "primary default epoch" 1 (Repl.epoch s);
  Alcotest.(check bool) "primary role" true (Repl.role s = Repl.Primary);
  Repl.append s "a";
  Repl.append s "b";
  Repl.append s "c";
  Alcotest.(check int) "lsn counts" 3 (Repl.lsn s);
  Alcotest.(check (option (list string)))
    "records from 1"
    (Some [ "b"; "c" ])
    (Repl.records_from s 1);
  Alcotest.(check (option (list string)))
    "from the tip: empty, not None" (Some []) (Repl.records_from s 3);
  Alcotest.(check (option (list string))) "beyond the tip" None (Repl.records_from s 4);
  Repl.reset_to s ~lsn:100;
  Alcotest.(check int) "rebased" 100 (Repl.lsn s);
  Alcotest.(check (option (list string))) "below base" None (Repl.records_from s 3);
  let r = Repl.create ~role:Repl.Replica () in
  Alcotest.(check int) "replica default epoch" 0 (Repl.epoch r)

let test_stream_tail_bound () =
  let s = Repl.create ~max_tail:64 () in
  for i = 1 to 200 do
    Repl.append s (string_of_int i)
  done;
  Alcotest.(check int) "lsn unaffected by drops" 200 (Repl.lsn s);
  Alcotest.(check bool) "old half dropped" true (Repl.base_lsn s > 0);
  (* what is retained replays exactly *)
  let b = Repl.base_lsn s in
  (match Repl.records_from s b with
  | None -> Alcotest.fail "base_lsn must be retained"
  | Some rs ->
      Alcotest.(check int) "retained count" (200 - b) (List.length rs);
      Alcotest.(check string) "first retained" (string_of_int (b + 1)) (List.hd rs));
  Alcotest.(check (option (list string)))
    "pre-base needs a snapshot" None (Repl.records_from s (b - 1))

let test_stream_epoch_fencing () =
  let s = Repl.create ~role:Repl.Replica () in
  Repl.set_epoch s 5;
  Alcotest.(check int) "adopted" 5 (Repl.epoch s);
  Repl.set_epoch s 3;
  Alcotest.(check int) "never lowers" 5 (Repl.epoch s);
  let e = Repl.promote s () in
  Alcotest.(check int) "promote bumps" 6 e;
  Alcotest.(check bool) "now primary" true (Repl.role s = Repl.Primary);
  (match Repl.promote s ~epoch:6 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-advancing epoch accepted");
  (match Repl.promote s ~epoch:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lower epoch accepted");
  Alcotest.(check int) "forced epoch" 9 (Repl.promote s ~epoch:9 ())

let test_stream_acks () =
  let s = Repl.create () in
  Repl.ack s ~peer:"a" 3;
  Repl.ack s ~peer:"b" 5;
  Repl.ack s ~peer:"a" 7;
  let acks = Repl.acks s in
  Alcotest.(check int) "latest ack wins" 7 (List.assoc "a" acks);
  Alcotest.(check int) "peers independent" 5 (List.assoc "b" acks);
  Alcotest.(check int) "one entry per peer" 2 (List.length acks)

(* ---------------- the gate ---------------- *)

let test_gate_excludes () =
  let g = Repl.Gate.create () in
  let writing = Atomic.make false in
  let violations = Atomic.make 0 in
  let reads = Atomic.make 0 in
  let stop = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Repl.Gate.enter_read g;
              if Atomic.get writing then Atomic.incr violations;
              Atomic.incr reads;
              Repl.Gate.exit_read g
            done))
  in
  for _ = 1 to 50 do
    Repl.Gate.with_write g (fun () ->
        Atomic.set writing true;
        Unix.sleepf 0.0005;
        Atomic.set writing false)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no reader saw a writer" 0 (Atomic.get violations);
  Alcotest.(check bool) "readers made progress" true (Atomic.get reads > 0)

(* ---------------- resync ---------------- *)

let test_resync_diff () =
  let db = build_db ~n:0 () in
  Db.apply_wal_ops db
    [ Db.Op_insert (seg 1 0.0); Db.Op_insert (seg 2 10.0); Db.Op_insert (seg 3 20.0) ];
  (* target: 1 unchanged, 2 moved (same id, new geometry), 3 gone, 4 new *)
  let snapshot = [| seg 1 0.0; seg 2 50.0; seg 4 30.0 |] in
  let deleted, inserted = Repl.resync db snapshot in
  Alcotest.(check int) "deleted divergent + extinct" 2 deleted;
  Alcotest.(check int) "inserted moved + new" 2 inserted;
  let sorted a =
    let l = Array.to_list a in
    List.sort Segment.compare_id l
  in
  Alcotest.(check bool) "db equals the snapshot" true
    (sorted (Db.segments db) = sorted snapshot);
  (* a second resync is a no-op *)
  let d2, i2 = Repl.resync db snapshot in
  Alcotest.(check (pair int int)) "idempotent" (0, 0) (d2, i2)

(* ---------------- a live pair ---------------- *)

let with_pair ?(primary_n = 150) ?(replica_n = 30) f =
  let pdb = build_db ~n:primary_n () in
  (* the replica starts from *different* content: only a snapshot
     resync can explain it ending up identical *)
  let rdb = build_db ~n:replica_n ~seed:7 () in
  let primary = Server.create ~domains:1 ~db:pdb (Server.Tcp ("127.0.0.1", 0)) in
  Server.start primary;
  let paddr = Server.bound_addr primary in
  let replica =
    Server.create ~domains:1 ~replica_of:paddr ~db:rdb (Server.Tcp ("127.0.0.1", 0))
  in
  Server.start replica;
  Fun.protect
    ~finally:(fun () ->
      Server.stop replica;
      Server.stop primary;
      Server.wait replica;
      Server.wait primary)
    (fun () -> f ~primary ~replica ~paddr ~raddr:(Server.bound_addr replica) ~pdb ~rdb)

let status_of addr =
  let c = Client.connect ~timeout_ms:10_000 addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> Client.repl_status c)

let test_pair_ships_and_converges () =
  with_pair @@ fun ~primary ~replica:_ ~paddr ~raddr ~pdb ~rdb ->
  let c = Client.connect ~timeout_ms:10_000 paddr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* catch-up: the replica joined with divergent content at epoch 0,
     so the subscribe must have answered with a snapshot *)
  wait_for "initial snapshot resync" (fun () ->
      (status_of raddr).Wire.lsn = Repl.lsn (Server.replication primary));
  (* steady state: stream a burst of writes record by record *)
  let lsn = ref 0 in
  for i = 1 to 40 do
    let l, changed = Client.insert c (seg (100_000 + i) (float_of_int i)) in
    Alcotest.(check bool) "fresh id inserts" true changed;
    lsn := l
  done;
  let l, changed = Client.delete c (seg 100_001 1.0) in
  Alcotest.(check bool) "delete hits" true changed;
  lsn := l;
  (* an idempotent replay does not advance divergence *)
  let _, changed = Client.delete c (seg 100_001 1.0) in
  Alcotest.(check bool) "second delete misses" false changed;
  wait_for "replica caught up" (fun () -> (status_of raddr).Wire.lsn >= !lsn);
  (* the primary saw the acks *)
  let pst = status_of paddr in
  Alcotest.(check string) "primary role" "primary" pst.Wire.role;
  Alcotest.(check bool) "a replica acked" true
    (List.exists (fun p -> p.Wire.acked_lsn >= !lsn) pst.Wire.peers);
  (* replica answers the same queries as the primary *)
  Alcotest.(check int) "identical content" (Db.size pdb) (Db.size rdb);
  let rc = Client.connect ~timeout_ms:10_000 raddr in
  Fun.protect ~finally:(fun () -> Client.close rc) @@ fun () ->
  let rng = Rng.create 11 in
  for _ = 1 to 20 do
    let x = Rng.float rng 110.0 in
    let q = Vquery.line ~x in
    let a = (Client.query c q).Db.Degraded.value in
    let b = (Client.query rc q).Db.Degraded.value in
    if a <> b then Alcotest.failf "replica diverges at x=%f" x
  done;
  (* writes are refused at the replica *)
  match Client.insert rc (seg 999_999 1.0) with
  | _ -> Alcotest.fail "replica accepted a write"
  | exception Client.Error m ->
      Alcotest.(check bool) "not-primary diagnostic" true
        (String.length m > 0
        && Wire.error_code_to_string Wire.Not_primary |> fun nm ->
           let rec contains i =
             i + String.length nm <= String.length m
             && (String.sub m i (String.length nm) = nm || contains (i + 1))
           in
           contains 0)

let test_kill_promote_failover () =
  with_pair @@ fun ~primary ~replica:_ ~paddr ~raddr ~pdb:_ ~rdb:_ ->
  let c = Client.connect ~timeout_ms:10_000 paddr in
  let lsn = ref 0 in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () ->
      wait_for "initial resync" (fun () ->
          (status_of raddr).Wire.lsn = Repl.lsn (Server.replication primary));
      for i = 1 to 10 do
        let l, _ = Client.insert c (seg (200_000 + i) (float_of_int i)) in
        lsn := l
      done;
      wait_for "replica caught up" (fun () -> (status_of raddr).Wire.lsn >= !lsn));
  (* SIGKILL-style death: no drain, connections severed *)
  Server.kill primary;
  Server.wait primary;
  (* a failover client listing the dead node first still answers *)
  let fc = Client.connect_many ~timeout_ms:10_000 ~backoff_ms:1 [ paddr; raddr ] in
  Fun.protect ~finally:(fun () -> Client.close fc) @@ fun () ->
  let epoch = Client.promote fc in
  Alcotest.(check int) "promoted above the old primary" 2 epoch;
  let st = Client.repl_status fc in
  Alcotest.(check string) "new role" "primary" st.Wire.role;
  Alcotest.(check int) "no committed write lost" !lsn st.Wire.lsn;
  (* promote is idempotent *)
  Alcotest.(check int) "re-promote answers current epoch" 2 (Client.promote fc);
  (* and the promoted node takes writes *)
  let l, changed = Client.insert fc (seg 300_000 5.0) in
  Alcotest.(check bool) "write accepted" true changed;
  Alcotest.(check int) "lsn advances" (!lsn + 1) l

let test_fencing_refusals () =
  with_pair @@ fun ~primary:_ ~replica:_ ~paddr ~raddr ~pdb:_ ~rdb:_ ->
  let rpc addr req =
    let c = Client.connect ~timeout_ms:10_000 addr in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> Client.rpc c req)
  in
  (* a subscriber claiming a NEWER epoch than the primary: the primary
     itself is stale and must say so, not stream *)
  (match rpc paddr (Wire.Repl_subscribe { epoch = 99; from_lsn = 0 }) with
  | Wire.Error (Wire.Fenced, _) -> ()
  | r -> Alcotest.failf "expected fenced, got %s" (show_resp r))
  [@warning "-4"];
  (* subscribing to a replica is refused: it is not a stream source *)
  (match rpc raddr (Wire.Repl_subscribe { epoch = 0; from_lsn = 0 }) with
  | Wire.Error (Wire.Not_primary, _) -> ()
  | r -> Alcotest.failf "expected not-primary, got %s" (show_resp r))
  [@warning "-4"];
  (* an ack from the wrong epoch is fenced, not recorded *)
  (match rpc paddr (Wire.Repl_ack { epoch = 99; lsn = 5 }) with
  | Wire.Error (Wire.Fenced, _) -> ()
  | r -> Alcotest.failf "expected fenced ack, got %s" (show_resp r))
  [@warning "-4"];
  (* bump the primary's fence, then a promote back to a lower epoch is
     a stale controller and must be fenced — on the primary and, once
     the replica has adopted the new epoch, on the replica too *)
  (match rpc paddr (Wire.Promote { epoch = 5 }) with
  | Wire.Promoted { epoch = 5 } -> ()
  | r -> Alcotest.failf "expected forced bump, got %s" (show_resp r))
  [@warning "-4"];
  (match rpc paddr (Wire.Promote { epoch = 2 }) with
  | Wire.Error (Wire.Fenced, _) -> ()
  | r -> Alcotest.failf "expected fenced promote, got %s" (show_resp r))
  [@warning "-4"];
  (* the epoch travels with pushed records: one write carries it over *)
  (let c = Client.connect ~timeout_ms:10_000 paddr in
   Fun.protect
     ~finally:(fun () -> Client.close c)
     (fun () -> ignore (Client.insert c (seg 400_000 1.0))));
  wait_for "replica adopts the bumped epoch" (fun () ->
      (status_of raddr).Wire.epoch = 5);
  match rpc raddr (Wire.Promote { epoch = 3 }) with
  | Wire.Error (Wire.Fenced, _) -> ()
  | r -> Alcotest.failf "expected fenced replica promote, got %s" (show_resp r)

(* A revived stale primary must be refused by the promoted replica's
   machinery: feed the replica-side session logic a lower-epoch batch
   via the stream API. *)
let test_stale_records_refused () =
  let db = build_db ~n:0 () in
  let stream = Repl.create ~role:Repl.Replica () in
  Repl.attach stream db;
  Repl.set_epoch stream 3;
  (* lower-epoch data: the tail would drop the connection; here we
     check the decision point the server enforces on ack/subscribe *)
  Alcotest.(check int) "epoch stands" 3 (Repl.epoch stream);
  Repl.set_epoch stream 2;
  Alcotest.(check int) "stale epoch not adopted" 3 (Repl.epoch stream)

(* ---------------- client: jitter + failover ---------------- *)

let test_backoff_jitter () =
  (* deterministic: same (seed, attempt) -> same delay *)
  for attempt = 0 to 6 do
    let d1 = Client.backoff_delay_s ~seed:99 ~backoff_ms:10 ~attempt in
    let d2 = Client.backoff_delay_s ~seed:99 ~backoff_ms:10 ~attempt in
    Alcotest.(check (float 0.0)) "deterministic" d1 d2;
    (* bounded by the exponential envelope, jittered within [0.5, 1.0) *)
    let base = float_of_int (10 * (1 lsl attempt)) /. 1000.0 in
    Alcotest.(check bool)
      (Printf.sprintf "attempt %d in envelope" attempt)
      true
      (d1 >= (0.5 *. base) -. 1e-12 && d1 < base)
  done;
  (* different seeds desynchronize (somewhere in the first attempts) *)
  let differs =
    List.exists
      (fun attempt ->
        Client.backoff_delay_s ~seed:1 ~backoff_ms:10 ~attempt
        <> Client.backoff_delay_s ~seed:2 ~backoff_ms:10 ~attempt)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "seeds differ" true differs;
  (* the exponent caps: attempt 30 must not overflow past the cap *)
  let capped = Client.backoff_delay_s ~seed:1 ~backoff_ms:10 ~attempt:30 in
  Alcotest.(check bool) "exponent capped" true
    (capped < float_of_int (10 * (1 lsl 10)) /. 1000.0)

let test_connect_many_failover () =
  let db = build_db ~n:50 () in
  let srv = Server.create ~domains:1 ~db (Server.Tcp ("127.0.0.1", 0)) in
  Server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () ->
      (* grab a port that is certainly closed *)
      let dead =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let port =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> assert false
        in
        Unix.close fd;
        Server.Tcp ("127.0.0.1", port)
      in
      let c =
        Client.connect_many ~timeout_ms:10_000 ~backoff_ms:1 ~backoff_seed:42
          [ dead; Server.bound_addr srv ]
      in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.ping c;
          Alcotest.(check bool) "rotated off the dead endpoint" true
            (Client.endpoint c = Server.bound_addr srv);
          let r = Client.query c (Vquery.line ~x:50.0) in
          Alcotest.(check bool) "query complete" true r.Db.Degraded.complete);
      match Client.connect_many [] with
      | _ -> Alcotest.fail "empty endpoint list accepted"
      | exception Invalid_argument _ -> ())

(* ---------------- idle reaping ---------------- *)

let test_idle_reap () =
  let db = build_db ~n:50 () in
  let srv =
    Server.create ~domains:1 ~idle_timeout_s:0.15 ~db (Server.Tcp ("127.0.0.1", 0))
  in
  Server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () ->
      let addr =
        match Server.bound_addr srv with
        | Server.Tcp (h, p) -> Unix.ADDR_INET (Unix.inet_addr_of_string h, p)
        | Server.Unix_path p -> Unix.ADDR_UNIX p
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd addr;
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          (* while active, the connection lives *)
          Wire.send fd (Wire.encode_request Wire.Ping);
          (match Wire.recv ~timeout:5.0 fd with
          | Result.Ok _ -> ()
          | Result.Error e -> Alcotest.failf "ping lost: %s" (Wire.protocol_error_to_string e));
          (* idle past the timeout: the server reaps; our next read
             sees a closed stream *)
          wait_for "reaped" ~timeout_s:10.0 (fun () ->
              match Wire.recv ~timeout:0.05 fd with
              | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> false
              | exception Unix.Unix_error (_, _, _) -> true
              | Result.Error _ -> true
              | Result.Ok _ -> false)))

let suite =
  ( "repl",
    [
      Alcotest.test_case "stream: lsn, tail, reset" `Quick test_stream_basics;
      Alcotest.test_case "stream: bounded tail drops oldest" `Quick test_stream_tail_bound;
      Alcotest.test_case "stream: epoch fencing" `Quick test_stream_epoch_fencing;
      Alcotest.test_case "stream: latest ack per peer" `Quick test_stream_acks;
      Alcotest.test_case "gate: writer excludes readers" `Quick test_gate_excludes;
      Alcotest.test_case "resync applies the difference" `Quick test_resync_diff;
      Alcotest.test_case "pair: snapshot catch-up + steady-state shipping" `Quick
        test_pair_ships_and_converges;
      Alcotest.test_case "pair: kill, promote, failover" `Quick test_kill_promote_failover;
      Alcotest.test_case "fencing refusals over the wire" `Quick test_fencing_refusals;
      Alcotest.test_case "stale epoch never adopted" `Quick test_stale_records_refused;
      Alcotest.test_case "backoff jitter: deterministic, bounded" `Quick
        test_backoff_jitter;
      Alcotest.test_case "connect_many fails over a dead endpoint" `Quick
        test_connect_many_failover;
      Alcotest.test_case "idle connections reaped" `Quick test_idle_reap;
    ] )
