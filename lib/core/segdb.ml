open Segdb_io
open Segdb_geom

type backend = [ `Naive | `Rtree | `Solution1 | `Solution2 | `Solution2_nofc ]

(* The third field is the backend's invariant checker over the packed
   value — carried inside the pack (rather than rebuilt from the
   backend tag) so it survives the marshaled-image fast path: closures
   marshal, and the executable-digest guard already ties images to the
   writing binary. *)
type pack =
  | Pack : (module Vs_index.S with type t = 'a) * 'a * (unit -> bool) -> pack

type op = Op_insert of Segment.t | Op_delete of Segment.t

type t = {
  cfg : Vs_index.config;
  backend : backend;
  pack : pack;
  mutable wal : Wal.t option;
  generation : int Atomic.t;
      (* bumped by every structural mutation; lets long-lived readers
         (e.g. the execution engine's per-domain cache) detect that
         their block shard may hold stale pages *)
  mutable commit_hook : (op -> unit) option;
      (* observes every committed mutation right after it is logged —
         the replication stream taps the same total order as the WAL *)
  ids : (int, unit) Hashtbl.t;
      (* live segment ids; the duplicate-insert guard must not depend
         on the backend (naive/rtree accept duplicates, solution1/2
         refuse them), or replayed and retried records would
         double-apply on some backends only *)
}

let seed_ids segs =
  let h = Hashtbl.create (max 16 (Array.length segs)) in
  Array.iter (fun (s : Segment.t) -> Hashtbl.replace h s.Segment.id ()) segs;
  h

let build_pack (cfg : Vs_index.config) backend segs =
  match backend with
  | `Naive ->
      let v = Naive.build cfg segs in
      Pack ((module Naive), v, fun () -> true)
  | `Rtree ->
      let v = Rtree_index.build cfg segs in
      Pack ((module Rtree_index), v, fun () -> Rtree_index.check_invariants v)
  | `Solution1 ->
      let v = Solution1.build cfg segs in
      Pack ((module Solution1), v, fun () -> Solution1.check_invariants v)
  | `Solution2 | `Solution2_nofc ->
      let v = Solution2.build cfg segs in
      Pack ((module Solution2), v, fun () -> Solution2.check_invariants v)

let create ?(backend = `Solution2) ?(block = 64) ?(pool_blocks = 64) segs =
  let cascade = backend <> `Solution2_nofc in
  let cfg = Vs_index.config ~pool_blocks ~block ~cascade () in
  { cfg; backend; pack = build_pack cfg backend segs; wal = None;
    generation = Atomic.make 0; commit_hook = None; ids = seed_ids segs }

let of_segments ?backend ?block ?pool_blocks polylines =
  let acc = ref [] in
  let id = ref 0 in
  List.iter
    (fun points ->
      let rec go = function
        | a :: (b :: _ as rest) ->
            acc := Segment.make ~id:!id a b :: !acc;
            incr id;
            go rest
        | _ -> ()
      in
      go points)
    polylines;
  create ?backend ?block ?pool_blocks (Array.of_list (List.rev !acc))

(* ---------------- WAL records ---------------- *)

let op_codec : op Codec.t =
  {
    write =
      (fun b -> function
        | Op_insert s ->
            Codec.W.u8 b 1;
            Seg_file.codec.write b s
        | Op_delete s ->
            Codec.W.u8 b 2;
            Seg_file.codec.write b s);
    read =
      (fun r ->
        match Codec.R.u8 r with
        | 1 -> Op_insert (Seg_file.codec.read r)
        | 2 -> Op_delete (Seg_file.codec.read r)
        | tag -> raise (Codec.Corrupt (Printf.sprintf "unknown WAL op tag %d" tag)));
  }

let encode_op op = Codec.encode op_codec op

let decode_op payload =
  match Codec.decode op_codec payload with
  | op -> Some op
  | exception Codec.Corrupt _ -> None

let log_op t op =
  match t.wal with None -> () | Some w -> Wal.append w (Codec.encode op_codec op)

let set_commit_hook t hook = t.commit_hook <- hook

(* Fired right after [log_op], i.e. once the record is in the total
   order, whether or not the apply below then succeeds — exactly the
   set of records a WAL replay would see. *)
let notify t op = match t.commit_hook with None -> () | Some f -> f op

let apply_insert t s =
  if Hashtbl.mem t.ids s.Segment.id then
    invalid_arg "Segdb.insert: duplicate segment id";
  let (Pack ((module M), v, _)) = t.pack in
  M.insert v s;
  Hashtbl.replace t.ids s.Segment.id ();
  Atomic.incr t.generation

let apply_delete t s =
  let (Pack ((module M), v, _)) = t.pack in
  let hit = M.delete v s in
  if hit then begin
    Hashtbl.remove t.ids s.Segment.id;
    Atomic.incr t.generation
  end;
  hit

(* Replay is idempotent where the index is not: a record whose effect is
   already present (the crash happened between the append and the apply
   of a later record, or the log overlaps a snapshot) must not abort
   recovery. *)
let apply_op t = function
  | Op_insert s -> ( try apply_insert t s with Invalid_argument _ -> ())
  | Op_delete s -> ignore (apply_delete t s)

let insert t s =
  (* the record is durable before the index is touched: a crash between
     the two replays the insert on reopen *)
  log_op t (Op_insert s);
  notify t (Op_insert s);
  apply_insert t s

let delete t s =
  log_op t (Op_delete s);
  notify t (Op_delete s);
  apply_delete t s

(* [insert]/[delete] with replay semantics: the op is logged and
   announced like a local mutation but applied idempotently, so a
   replayed or replicated record that already took effect is a no-op
   instead of an error. Returns whether the index changed. *)
let commit t op =
  log_op t op;
  notify t op;
  match op with
  | Op_insert s -> ( try apply_insert t s; true with Invalid_argument _ -> false)
  | Op_delete s -> apply_delete t s

let generation t = Atomic.get t.generation

(* ---------------- queries ---------------- *)

(* forward declaration lives below; the root span needs the resolved
   backend name, which depends on [t.cfg] *)
let backend_name t =
  let (Pack ((module M), _, _)) = t.pack in
  if M.name = "solution2" && not t.cfg.Vs_index.cascade then "solution2-nofc" else M.name

(* The query path's own fault site: index blocks live in memory, so
   queries have no syscalls of their own to inject into — this gives
   the degraded-result machinery a first-class fault source. One
   [Atomic.get] per query while disarmed. *)
let sp_query = Failpoint.site "segdb.query"

let fire_query () =
  match Failpoint.fire sp_query with
  | None -> ()
  | Some Failpoint.Crash -> raise (Failpoint.Injected_crash "segdb.query")
  | Some _ -> raise (Unix.Unix_error (Unix.EIO, "segdb.query", "injected"))

let query_iter t q ~f =
  fire_query ();
  let (Pack ((module M), v, _)) = t.pack in
  if Segdb_obs.Control.enabled () then
    Probe.span t.cfg.stats ("query." ^ backend_name t) (fun () -> M.query v q ~f)
  else M.query v q ~f

let query t q =
  let acc = ref [] in
  query_iter t q ~f:(fun s -> acc := s :: !acc);
  List.rev !acc

(* ---------------- degraded results ---------------- *)

module Degraded = struct
  type 'a t = { value : 'a; complete : bool; faults : string list }

  let ok value = { value; complete = true; faults = [] }
  let partial value faults = { value; complete = false; faults }

  let pp pp_v ppf t =
    if t.complete then Format.fprintf ppf "@[<h>%a@]" pp_v t.value
    else
      Format.fprintf ppf "@[<v>%a@,degraded: %a@]" pp_v t.value
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
        t.faults
end

let query_safe t q =
  let acc = ref [] in
  let finish () = List.rev !acc in
  try
    query_iter t q ~f:(fun s -> acc := s :: !acc);
    Degraded.ok (finish ())
  with
  | File_store.Corrupt_store m -> Degraded.partial (finish ()) [ m ]
  | Codec.Corrupt m -> Degraded.partial (finish ()) [ "undecodable block: " ^ m ]
  | Unix.Unix_error (e, op, _) ->
      Degraded.partial (finish ())
        [ Printf.sprintf "%s: %s" op (Unix.error_message e) ]

let query_ids t q =
  fire_query ();
  let (Pack ((module M), v, _)) = t.pack in
  Vs_index.query_ids (module M) v q

let count t q =
  let n = ref 0 in
  query_iter t q ~f:(fun _ -> incr n);
  !n

let iter_all t ~f =
  let (Pack ((module M), v, _)) = t.pack in
  M.iter_all v ~f

(* ---------------- parallel read path ---------------- *)

type reader = Vs_index.reader

let reader ?cache_blocks t = Vs_index.reader ?cache_blocks t.cfg

let reader_io = Vs_index.reader_io

let with_reader = Vs_index.with_reader

let query_ids_r t r q =
  let (Pack ((module M), v, _)) = t.pack in
  Vs_index.query_ids_r (module M) r v q

let query_iter_r t r q ~f =
  let (Pack ((module M), v, _)) = t.pack in
  M.query_r r v q ~f

let count_r t r q =
  let n = ref 0 in
  query_iter_r t r q ~f:(fun _ -> incr n);
  !n

(* Legacy batch executor, kept as the no-engine fallback and the
   bench baseline: worker domains are spawned fresh for every call and
   pull query indexes off a shared atomic cursor (self-balancing — an
   expensive query does not stall a whole stripe), each answering
   through its own reader, so the only shared writes are the cursor
   and disjoint result slots. The caller must hold off writers for the
   duration, per the reader/writer contract; the calling domain works
   too, so [domains = 1] is the serial loop. *)
let parallel_query_spawning ?readers t qs ~domains =
  if domains < 1 then invalid_arg "Segdb.parallel_query: domains must be >= 1";
  (match readers with
  | Some rs when Array.length rs <> domains ->
      invalid_arg "Segdb.parallel_query: readers array must have one reader per domain"
  | _ -> ());
  let n = Array.length qs in
  let out = Array.make n [] in
  let next = Atomic.make 0 in
  let worker k () =
    let r =
      match readers with Some rs -> rs.(k) | None -> reader t
    in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        out.(i) <- query_ids_r t r qs.(i);
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join spawned;
  out

(* Per-worker accounting for one batch: how the work and the I/O spread
   across domains. *)
type worker_stats = {
  worker : int;
  queries : int; (* queries this domain answered *)
  reads : int; (* cold block reads charged to its reader *)
  cache_hits : int; (* lookups served by the reader's own shard *)
  cache_misses : int;
}

let pp_worker_stats ppf w =
  Format.fprintf ppf "worker %d: queries=%d reads=%d cache=%d/%d" w.worker w.queries
    w.reads w.cache_hits (w.cache_hits + w.cache_misses)

(* Spawn-per-batch variant of the instrumented executor (fallback /
   baseline, like {!parallel_query_spawning}): per-worker counters
   always (they ride on structures each worker owns anyway), and
   per-worker latency histograms merged into [Metrics.default] as
   [parallel.query.ns] when observability is on. *)
let parallel_query_stats_spawning ?readers t qs ~domains =
  if domains < 1 then invalid_arg "Segdb.parallel_query_stats: domains must be >= 1";
  (match readers with
  | Some rs when Array.length rs <> domains ->
      invalid_arg "Segdb.parallel_query_stats: readers array must have one reader per domain"
  | _ -> ());
  let module Obs = Segdb_obs in
  let n = Array.length qs in
  let out = Array.make n [] in
  let stats = Array.make domains { worker = 0; queries = 0; reads = 0; cache_hits = 0; cache_misses = 0 } in
  let next = Atomic.make 0 in
  let worker k () =
    let r = match readers with Some rs -> rs.(k) | None -> reader t in
    let observing = Obs.Control.enabled () in
    let lat = if observing then Some (Obs.Histogram.create ()) else None in
    let served = ref 0 in
    let h0 = Read_context.cache_hits r and m0 = Read_context.cache_misses r in
    let r0 = Io_stats.reads (reader_io r) in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match lat with
        | Some h ->
            let t0 = Obs.Trace.now_ns () in
            out.(i) <- query_ids_r t r qs.(i);
            Obs.Histogram.record h (Obs.Trace.now_ns () - t0)
        | None -> out.(i) <- query_ids_r t r qs.(i));
        incr served;
        loop ()
      end
    in
    loop ();
    (match lat with
    | Some h -> Obs.Metrics.merge_histogram Obs.Metrics.default "parallel.query.ns" h
    | None -> ());
    stats.(k) <-
      {
        worker = k;
        queries = !served;
        reads = Io_stats.reads (reader_io r) - r0;
        cache_hits = Read_context.cache_hits r - h0;
        cache_misses = Read_context.cache_misses r - m0;
      }
  in
  let spawned = Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join spawned;
  (out, stats)

(* ---------------- the execution-engine hook ----------------

   [Segdb_core] cannot depend on [Segdb_exec] (the engine depends on
   this module), so the engine registers itself here at module
   initialization: when [Segdb_exec.Exec] is linked into the program,
   batches run on its persistent worker pool instead of spawning
   domains per call. [domains = 1] stays inline in either case — a
   serial loop with zero queueing — and the spawning executor remains
   the fallback for binaries that do not link the engine. *)

type batch_engine =
  ?readers:reader array ->
  t ->
  Vquery.t array ->
  domains:int ->
  int list array * worker_stats array

let batch_engine : batch_engine option ref = ref None

let set_batch_engine f = batch_engine := Some f

let parallel_query ?readers t qs ~domains =
  if domains < 1 then invalid_arg "Segdb.parallel_query: domains must be >= 1";
  (match readers with
  | Some rs when Array.length rs <> domains ->
      invalid_arg "Segdb.parallel_query: readers array must have one reader per domain"
  | _ -> ());
  match !batch_engine with
  | Some engine when domains > 1 -> fst (engine ?readers t qs ~domains)
  | _ -> parallel_query_spawning ?readers t qs ~domains

let parallel_query_stats ?readers t qs ~domains =
  if domains < 1 then invalid_arg "Segdb.parallel_query_stats: domains must be >= 1";
  (match readers with
  | Some rs when Array.length rs <> domains ->
      invalid_arg "Segdb.parallel_query_stats: readers array must have one reader per domain"
  | _ -> ());
  match !batch_engine with
  | Some engine when domains > 1 -> engine ?readers t qs ~domains
  | _ -> parallel_query_stats_spawning ?readers t qs ~domains

let segments t =
  let acc = ref [] in
  iter_all t ~f:(fun s -> acc := s :: !acc);
  let arr = Array.of_list !acc in
  Array.sort Segment.compare_id arr;
  arr

let size t =
  let (Pack ((module M), v, _)) = t.pack in
  M.size v

let block_count t =
  let (Pack ((module M), v, _)) = t.pack in
  M.block_count v

let io t = t.cfg.stats

let backend t = t.backend

let all_backends =
  [
    ("naive", `Naive);
    ("rtree", `Rtree);
    ("solution1", `Solution1);
    ("solution2", `Solution2);
    ("solution2-nofc", `Solution2_nofc);
  ]

let backend_of_string s = List.assoc_opt (String.lowercase_ascii s) all_backends

let backend_tag b = List.find (fun (_, b') -> b' = b) all_backends |> fst

(* ---------------- persistence ---------------- *)

let save ?(image = true) t path =
  Probe.span t.cfg.stats "snapshot.save" @@ fun () ->
  let image =
    if not image then None
    else Some (Marshal.to_string (t.cfg, t.pack) [ Marshal.Closures ])
  in
  let segments = segments t in
  Snapshot.write ~path
    {
      Snapshot.backend = backend_tag t.backend;
      block = t.cfg.block;
      pool_blocks = Block_store.Pool.capacity t.cfg.pool;
      cascade = t.cfg.cascade;
      count = Array.length segments;
      digest = Snapshot.self_digest ();
    }
    ~segments ~image

type open_mode = Restored_image | Rebuilt

let open_db_mode ?(use_image = true) path =
  Segdb_obs.Trace.with_span "snapshot.open" @@ fun () ->
  let c = Snapshot.read ~path in
  let backend =
    match backend_of_string c.header.backend with
    | Some b -> b
    | None ->
        raise
          (Snapshot.Corrupt_snapshot
             (Printf.sprintf "%s: unknown backend %S" path c.header.backend))
  in
  let restored =
    if not use_image then None
    else
      match c.image with
      | Some img
        when c.header.digest <> "" && c.header.digest = Snapshot.self_digest () -> (
          (* the image marshals closures, so it is only meaningful for
             the executable that wrote it — hence the digest guard *)
          try
            let cfg, pack = (Marshal.from_string img 0 : Vs_index.config * pack) in
            Some
              { cfg; backend; pack; wal = None; generation = Atomic.make 0;
                commit_hook = None; ids = seed_ids c.segments }
          with Failure _ -> None)
      | _ -> None
  in
  match restored with
  | Some t -> (t, Restored_image)
  | None ->
      ( create ~backend ~block:c.header.block ~pool_blocks:c.header.pool_blocks
          c.segments,
        Rebuilt )

let open_db ?use_image path = fst (open_db_mode ?use_image path)

(* ---------------- WAL lifecycle ---------------- *)

let attach_wal ?(sync = true) t path =
  if t.wal <> None then invalid_arg "Segdb.attach_wal: a WAL is already attached";
  let w, records = Wal.open_ ~sync path in
  List.iter
    (fun payload ->
      match Codec.decode op_codec payload with
      | op -> apply_op t op
      | exception Codec.Corrupt _ -> ()
      (* an intact frame with an undecodable payload was written by
         something else; skip rather than abort recovery *))
    records;
  t.wal <- Some w;
  List.length records

(* Non-mutating WAL inspection/replay, for [recover --dry-run] and
   [repair]: unlike {!attach_wal} this never truncates the log or
   attaches it. *)
let scan_wal path =
  let skipped = ref 0 in
  let ops =
    List.filter_map
      (fun payload ->
        match Codec.decode op_codec payload with
        | op -> Some op
        | exception Codec.Corrupt _ ->
            incr skipped;
            None)
      (Wal.scan path)
  in
  (ops, !skipped)

let apply_wal_ops t ops = List.iter (apply_op t) ops

let pp_op ppf = function
  | Op_insert s -> Format.fprintf ppf "insert %a" Segment.pp s
  | Op_delete s -> Format.fprintf ppf "delete %a" Segment.pp s

let wal_path t = Option.map Wal.path t.wal

let detach_wal t =
  match t.wal with
  | None -> ()
  | Some w ->
      Wal.close w;
      t.wal <- None

let checkpoint ?image t path =
  save ?image t path;
  match t.wal with None -> () | Some w -> Wal.reset w

(* ---------------- integrity validation ---------------- *)

(* Deep check of a live database, reported rather than raised (scrub
   semantics): id uniqueness, the NCT precondition over the stored set
   (plane sweep), the backend's own structural invariants (PST
   heap/x-order, interval-tree containment, cascade d-property, …)
   via the pack's checker, and — when [queries > 0] — that many random
   vertical-segment queries cross-checked against a freshly built
   naive index over the same segments. *)
let validate ?(queries = 0) ?(seed = 0) t =
  let findings = ref [] in
  let note fmt = Printf.ksprintf (fun m -> findings := m :: !findings) fmt in
  let segs = segments t in
  let ids = Hashtbl.create (Array.length segs) in
  Array.iter
    (fun (s : Segment.t) ->
      if Hashtbl.mem ids s.id then note "duplicate segment id %d" s.id
      else Hashtbl.add ids s.id ())
    segs;
  let (Pack ((module M), v, check)) = t.pack in
  if M.size v <> Array.length segs then
    note "%s: size reports %d but iteration yields %d segments" (backend_name t)
      (M.size v) (Array.length segs);
  if not (Sweep.verify_nct segs) then
    note "stored segments violate NCT (a crossing pair exists)";
  (try if not (check ()) then note "%s: structural invariants violated" (backend_name t)
   with e ->
     note "%s: invariant check raised %s" (backend_name t) (Printexc.to_string e));
  if queries > 0 && Array.length segs > 0 then begin
    let rng = Segdb_util.Rng.create seed in
    let minx = ref infinity and maxx = ref neg_infinity in
    let miny = ref infinity and maxy = ref neg_infinity in
    Array.iter
      (fun s ->
        minx := Float.min !minx (Segment.min_x s);
        maxx := Float.max !maxx (Segment.max_x s);
        miny := Float.min !miny (Segment.min_y s);
        maxy := Float.max !maxy (Segment.max_y s))
      segs;
    let span lo hi = lo +. Segdb_util.Rng.float rng (Float.max (hi -. lo) 1e-9) in
    let reference = create ~backend:`Naive ~block:t.cfg.block segs in
    for i = 1 to queries do
      let x = span !minx !maxx in
      let a = span !miny !maxy and b = span !miny !maxy in
      let q = Vquery.segment ~x ~ylo:(Float.min a b) ~yhi:(Float.max a b) in
      let got = query_ids t q and want = query_ids reference q in
      if got <> want then
        note "query %d/%d (%s): %d ids, naive finds %d" i queries
          (Format.asprintf "%a" Vquery.pp q)
          (List.length got) (List.length want)
    done
  end;
  List.rev !findings

module Sloped = struct
  type nonrec t = {
    rot : Transform.t;
    db : t;
    originals : (int, Segment.t) Hashtbl.t;
  }

  let create ?backend ?block ?pool_blocks ~slope segs =
    let rot = Transform.to_vertical ~slope in
    let originals = Hashtbl.create (Array.length segs) in
    Array.iter (fun (s : Segment.t) -> Hashtbl.replace originals s.id s) segs;
    let rotated = Array.map (Transform.segment rot) segs in
    { rot; db = create ?backend ?block ?pool_blocks rotated; originals }

  let vq t ~p1 ~p2 = Transform.vquery_of_segment t.rot p1 p2

  let query t ~p1 ~p2 =
    query (t.db) (vq t ~p1 ~p2)
    |> List.map (fun (s : Segment.t) -> Hashtbl.find t.originals s.id)

  let count t ~p1 ~p2 = count t.db (vq t ~p1 ~p2)

  let db t = t.db
end
