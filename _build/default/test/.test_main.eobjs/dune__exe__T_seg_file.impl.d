test/t_seg_file.ml: Alcotest Array Filename Fun QCheck QCheck_alcotest Segdb_core Segdb_geom Segdb_util Segdb_workload Segment String Sys
