lib/workload/workload.ml: Array Float Hashtbl List Lseg Option Predicates Rng Segdb_geom Segdb_util Segment Sweep Vquery
