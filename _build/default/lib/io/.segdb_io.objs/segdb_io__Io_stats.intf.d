lib/io/io_stats.mli: Format
