examples/gis_map_overlay.mli:
