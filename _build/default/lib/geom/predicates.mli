(** Exact geometric predicates over integer coordinates.

    Workload generators emit segments on an integer grid precisely so
    that the NCT property (non-crossing, touching allowed) can be
    *certified* with exact arithmetic rather than trusted. Coordinates
    must stay below 2^30 in magnitude so that the 2x2 determinants fit
    in a native [int]. *)

type ipoint = int * int
type iseg = ipoint * ipoint

val orient : ipoint -> ipoint -> ipoint -> int
(** Sign of the cross product [(b - a) x (c - a)]: [+1] if [c] is left
    of the directed line [a]->[b], [-1] if right, [0] if collinear. *)

val on_segment : ipoint -> iseg -> bool
(** [on_segment p s]: [p] lies on the closed segment [s] (collinear and
    within the bounding box). *)

val crosses : iseg -> iseg -> bool
(** True iff the pair violates the NCT property: the segments intersect
    at a point interior to both, or they are collinear and overlap in
    more than a single point. Touching (shared endpoint, or an endpoint
    in the other's interior) is allowed and returns [false]. *)

val intersect : iseg -> iseg -> bool
(** Closed intersection test (touching counts). *)

val nct_set : iseg array -> bool
(** O(n^2) certification that no pair crosses. Tests only. *)

val of_segment : Segment.t -> iseg
(** Converts a float segment whose coordinates are exact integers.
    Raises [Invalid_argument] otherwise. *)
