module Db = Segdb_core.Segdb
module Metrics = Segdb_obs.Metrics
module Control = Segdb_obs.Control
module Log = Segdb_obs.Log
open Segdb_geom

type role = Primary | Replica

let role_name = function Primary -> "primary" | Replica -> "replica"

(* ---------------- the reader/writer gate ---------------- *)

module Gate = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    mutable readers : int;
    mutable writer : bool;  (** active *)
    mutable waiting : int;  (** writers queued — new readers hold back *)
  }

  let create () =
    { m = Mutex.create (); c = Condition.create (); readers = 0; writer = false;
      waiting = 0 }

  let enter_read t =
    Mutex.lock t.m;
    while t.writer || t.waiting > 0 do
      Condition.wait t.c t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m

  let exit_read t =
    Mutex.lock t.m;
    t.readers <- t.readers - 1;
    if t.readers = 0 then Condition.broadcast t.c;
    Mutex.unlock t.m

  let with_write t f =
    Mutex.lock t.m;
    t.waiting <- t.waiting + 1;
    while t.writer || t.readers > 0 do
      Condition.wait t.c t.m
    done;
    t.waiting <- t.waiting - 1;
    t.writer <- true;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.writer <- false;
        Condition.broadcast t.c;
        Mutex.unlock t.m)
end

(* ---------------- the stream ---------------- *)

type t = {
  m : Mutex.t;
  mutable role_ : role;
  mutable epoch_ : int;
  mutable base : int;  (** LSN of [buf.(0)] *)
  mutable buf : string array;
  mutable len : int;
  mutable acks_ : (string * int) list;
  max_tail : int;
  mutable progress_at : float;
      (** wall clock of the last sign of replication life: a commit, an
          ack, a resync, or (on a replica) any decoded upstream frame —
          what health probes measure staleness against *)
}

let create ?role ?epoch ?(max_tail = 8192) () =
  let role_ = Option.value role ~default:Primary in
  let epoch_ =
    match epoch with
    | Some e -> max 0 e
    | None -> ( match role_ with Primary -> 1 | Replica -> 0)
  in
  { m = Mutex.create (); role_; epoch_; base = 0; buf = Array.make 64 "";
    len = 0; acks_ = []; max_tail = max 16 max_tail;
    progress_at = Unix.gettimeofday () }

let locked t f =
  Mutex.lock t.m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.m)

let role t = locked t (fun () -> t.role_)
let epoch t = locked t (fun () -> t.epoch_)
let lsn t = locked t (fun () -> t.base + t.len)
let base_lsn t = locked t (fun () -> t.base)

let touch_progress t = locked t (fun () -> t.progress_at <- Unix.gettimeofday ())

let seconds_since_progress t =
  locked t (fun () -> Float.max 0. (Unix.gettimeofday () -. t.progress_at))

let append t record =
  locked t @@ fun () ->
  t.progress_at <- Unix.gettimeofday ();
  if t.len = Array.length t.buf then
    if t.len >= t.max_tail then begin
      (* drop the oldest half: a subscriber that far behind resyncs by
         snapshot anyway, and the tail stays bounded *)
      let drop = t.len / 2 in
      Array.blit t.buf drop t.buf 0 (t.len - drop);
      Array.fill t.buf (t.len - drop) drop "";
      t.base <- t.base + drop;
      t.len <- t.len - drop
    end
    else begin
      let bigger = Array.make (min t.max_tail (2 * t.len)) "" in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
  t.buf.(t.len) <- record;
  t.len <- t.len + 1

let records_from t from =
  locked t @@ fun () ->
  if from < t.base || from > t.base + t.len then None
  else Some (Array.to_list (Array.sub t.buf (from - t.base) (t.base + t.len - from)))

let reset_to t ~lsn =
  locked t @@ fun () ->
  Array.fill t.buf 0 t.len "";
  t.base <- lsn;
  t.len <- 0;
  t.progress_at <- Unix.gettimeofday ()

let set_epoch t e = locked t (fun () -> if e > t.epoch_ then t.epoch_ <- e)

let promote t ?(epoch = 0) () =
  locked t @@ fun () ->
  let next = if epoch = 0 then t.epoch_ + 1 else epoch in
  if next <= t.epoch_ then
    invalid_arg
      (Printf.sprintf "Replication.promote: epoch %d is not above current %d" next
         t.epoch_);
  t.epoch_ <- next;
  t.role_ <- Primary;
  next

let ack t ~peer lsn =
  locked t @@ fun () ->
  t.progress_at <- Unix.gettimeofday ();
  t.acks_ <- (peer, lsn) :: List.remove_assoc peer t.acks_

let acks t = locked t (fun () -> List.rev t.acks_)

(* [sent_lsn] starts equal to the ack: the stream does not know the
   per-connection push cursors. The server, which owns them, overlays
   the real values before answering a status frame. *)
let status t =
  locked t @@ fun () ->
  {
    Wire.role = role_name t.role_;
    epoch = t.epoch_;
    lsn = t.base + t.len;
    progress_ms =
      int_of_float (Float.max 0. (Unix.gettimeofday () -. t.progress_at) *. 1e3);
    peers =
      List.rev_map
        (fun (peer, acked) -> { Wire.peer; acked_lsn = acked; sent_lsn = acked })
        t.acks_;
  }

let attach t db =
  Db.set_commit_hook db (Some (fun op -> append t (Db.encode_op op)))

(* ---------------- snapshot resync ---------------- *)

(* Equality must cover geometry, not just id: a diverged history can
   hold the same id with different endpoints, and "refused, not
   obeyed" means the divergent version is deleted and replaced. *)
let resync db snapshot =
  let want = Hashtbl.create (Array.length snapshot) in
  Array.iter (fun (s : Segment.t) -> Hashtbl.replace want s.Segment.id s) snapshot;
  let deletes = ref [] in
  Array.iter
    (fun (s : Segment.t) ->
      match Hashtbl.find_opt want s.Segment.id with
      | Some s' when s' = s -> Hashtbl.remove want s.Segment.id (* already right *)
      | Some _ | None -> deletes := Db.Op_delete s :: !deletes)
    (Db.segments db);
  let inserts = Hashtbl.fold (fun _ s ops -> Db.Op_insert s :: ops) want [] in
  Db.apply_wal_ops db !deletes;
  Db.apply_wal_ops db inserts;
  (List.length !deletes, List.length inserts)

(* ---------------- the replica tail ---------------- *)

type tail = {
  stop : bool Atomic.t;
  last_applied : int Atomic.t;
  dom : unit Domain.t;
  mutable joined : bool;
}

let c_applied = Metrics.counter Metrics.default "repl.records_applied"
let c_resyncs = Metrics.counter Metrics.default "repl.resyncs"
let c_refused = Metrics.counter Metrics.default "repl.refused"

(* One subscription session over one connection. Returns when the
   connection is no longer useful; the caller reconnects. *)
let session ~gate ~db ~stream ~stop ~on_applied ~last_applied fd =
  Wire.send fd
    (Wire.encode_request
       (Wire.Repl_subscribe { epoch = epoch stream; from_lsn = lsn stream }));
  let apply_records ~e ~from_lsn records =
    if e < epoch stream then begin
      if Control.enabled () then Metrics.incr c_refused;
      Log.warn ~comp:"repl" "stale primary refused" (fun () ->
          [ Log.i "their_epoch" e; Log.i "our_epoch" (epoch stream) ]);
      false
    end
    else begin
      set_epoch stream e;
      if from_lsn <> lsn stream then false (* desynchronized: resubscribe *)
      else begin
        Gate.with_write gate (fun () ->
            List.iter
              (fun record ->
                match Db.decode_op record with
                | Some op -> ignore (Db.commit db op)
                | None ->
                    (* keep the LSN aligned with upstream even for a
                       record this binary cannot decode *)
                    append stream record)
              records);
        Atomic.set last_applied (lsn stream);
        if Control.enabled () then Metrics.add c_applied (List.length records);
        on_applied (lsn stream);
        Wire.send fd
          (Wire.encode_request (Wire.Repl_ack { epoch = epoch stream; lsn = lsn stream }));
        true
      end
    end
  in
  let continue = ref true in
  (* Liveness guard: a connection can wedge without ever erroring — a
     short read drops bytes the kernel already handed over, and the
     misaligned stream then parses as timeouts and garbage frames
     indefinitely (a run of zero bytes even passes the CRC as an empty
     frame). Any frame that decodes counts as progress; starving the
     deadline abandons the connection and resubscribes from our lsn. *)
  let progress_deadline_s = 2.0 in
  let last_progress = ref (Unix.gettimeofday ()) in
  let progress () =
    last_progress := Unix.gettimeofday ();
    (* surface liveness on the stream too: the health endpoint calls a
       replica stalled when [seconds_since_progress] starves, and a
       healthy idle link refreshes it through the status probes below *)
    touch_progress stream
  in
  while (not (Atomic.get stop)) && role stream = Replica && !continue do
    if Unix.gettimeofday () -. !last_progress > progress_deadline_s then begin
      Log.warn ~comp:"repl" "no upstream progress; reconnecting" (fun () ->
          [ Log.i "lsn" (lsn stream) ]);
      continue := false
    end
    else
      match Wire.recv ~timeout:0.25 fd with
      | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> (
          (* idle tick: probe the link round-trip. On a healthy link the
             reply decodes and refreshes the progress deadline; on a
             wedged one it either mis-frames into a decode error or
             starves the deadline — both force a clean reconnect. *)
          try Wire.send fd (Wire.encode_request Wire.Repl_status)
          with Unix.Unix_error (_, _, _) -> continue := false)
      | exception Unix.Unix_error (_, _, _) -> continue := false
      | Result.Error _ -> continue := false
      | Result.Ok payload -> (
          match Wire.decode_response payload with
          | Result.Ok (Wire.Repl_records { epoch = e; from_lsn; records }) ->
              progress ();
              continue := apply_records ~e ~from_lsn records
          | Result.Ok (Wire.Repl_snapshot { epoch = e; lsn = l; segments }) ->
              progress ();
              if e < epoch stream then begin
                if Control.enabled () then Metrics.incr c_refused;
                Log.warn ~comp:"repl" "stale primary snapshot refused" (fun () ->
                    [ Log.i "their_epoch" e; Log.i "our_epoch" (epoch stream) ]);
                continue := false
              end
              else begin
                let deleted, inserted =
                  Gate.with_write gate (fun () -> resync db segments)
                in
                (* adopt the epoch only after the segments landed: status
                   probes treat epoch adoption as proof of catch-up *)
                set_epoch stream e;
                reset_to stream ~lsn:l;
                Atomic.set last_applied l;
                if Control.enabled () then Metrics.incr c_resyncs;
                Log.info ~comp:"repl" "snapshot resync applied" (fun () ->
                    [ Log.i "lsn" l; Log.i "deleted" deleted; Log.i "inserted" inserted ]);
                on_applied l;
                Wire.send fd
                  (Wire.encode_request
                     (Wire.Repl_ack { epoch = epoch stream; lsn = lsn stream }))
              end
          | Result.Ok (Wire.Error (Wire.Fenced, msg)) ->
              (* the upstream is behind our epoch and knows it; it will
                 not stream — back off and retry until it is replaced *)
              if Control.enabled () then Metrics.incr c_refused;
              Log.warn ~comp:"repl" "upstream fenced us off" (fun () ->
                  [ Log.s "msg" msg ]);
              continue := false
          | Result.Ok (Wire.Error (_, _)) -> continue := false
          | Result.Ok (Wire.Repl_status_payload st) ->
              (* the probe's answer. Beyond proving the link is live, it
                 exposes stream gaps: the primary advances its cursor as
                 it pushes and never retransmits, so a frame lost in
                 transit leaves it ahead of us forever on an otherwise
                 healthy connection. The socket is FIFO — any records
                 pushed before this answer were already applied above —
                 so "upstream ahead while we are idle" can only mean a
                 hole; resubscribing from our lsn streams it again. *)
              progress ();
              if st.Wire.epoch >= epoch stream && st.Wire.lsn > lsn stream then begin
                Log.warn ~comp:"repl" "upstream ahead of idle replica; resubscribing"
                  (fun () ->
                    [ Log.i "upstream_lsn" st.Wire.lsn; Log.i "lsn" (lsn stream) ]);
                continue := false
              end
          | Result.Ok _ ->
              (* some other response routed here; harmless, but proof
                 the link is live *)
              progress ()
          | Result.Error _ ->
              (* a healthy upstream never sends an undecodable frame —
                 the stream is misaligned; reconnect rather than guess *)
              continue := false)
  done

let tail_loop ~connect ~gate ~db ~stream ~stop ~on_applied ~last_applied =
  let backoff = ref 0.02 in
  while (not (Atomic.get stop)) && role stream = Replica do
    (match connect () with
    | exception _ -> ()
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
          (fun () ->
            backoff := 0.02;
            try session ~gate ~db ~stream ~stop ~on_applied ~last_applied fd with
            | Unix.Unix_error (_, _, _) -> ()
            | e ->
                (* the tail domain must survive anything a session can
                   throw — a dead tail is a silent stall, not an error *)
                Log.warn ~comp:"repl" "tail session failed; reconnecting" (fun () ->
                    [ Log.s "error" (Printexc.to_string e) ])));
    (* sleep in short slices so stop/promote are honoured promptly *)
    if (not (Atomic.get stop)) && role stream = Replica then begin
      let left = ref !backoff in
      while !left > 0.0 && (not (Atomic.get stop)) && role stream = Replica do
        Unix.sleepf 0.02;
        left := !left -. 0.02
      done;
      backoff := Float.min 0.5 (!backoff *. 2.0)
    end
  done

let start_tail ~connect ~gate ~db ~stream ?(on_applied = fun _ -> ()) () =
  let stop = Atomic.make false in
  let last_applied = Atomic.make (lsn stream) in
  let dom =
    Domain.spawn (fun () ->
        tail_loop ~connect ~gate ~db ~stream ~stop ~on_applied ~last_applied)
  in
  { stop; last_applied; dom; joined = false }

let stop_tail t = Atomic.set t.stop true

let join_tail t =
  stop_tail t;
  if not t.joined then begin
    t.joined <- true;
    Domain.join t.dom
  end

let tail_last_applied t = Atomic.get t.last_applied
