(* Observability layer: histogram math, registry merging, the trace
   ring, the exporters, and the contract that matters most — turning
   tracing on never changes any query answer. *)

open Segdb_obs
module Io_stats = Segdb_io.Io_stats
module Lru = Segdb_io.Lru
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Vs = Segdb_core.Vs_index
module Db = Segdb_core.Segdb

let qtest = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- histograms ---------------- *)

let test_bucket_boundaries () =
  (* bucket 0 holds v <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1] *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket of %d" v) b (Histogram.bucket_of v))
    [
      (min_int, 0);
      (-1, 0);
      (0, 0);
      (1, 1);
      (2, 2);
      (3, 2);
      (4, 3);
      (7, 3);
      (8, 4);
      (1023, 10);
      (1024, 11);
    ];
  for b = 1 to 20 do
    let lo, hi = Histogram.bucket_bounds b in
    Alcotest.(check int) "lo lands in b" b (Histogram.bucket_of lo);
    Alcotest.(check int) "hi lands in b" b (Histogram.bucket_of hi);
    Alcotest.(check bool) "hi+1 leaves b" true (Histogram.bucket_of (hi + 1) = b + 1)
  done

let test_percentiles_exact () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Histogram.percentile h 0.5);
  Histogram.record h 7;
  (* a single sample is every percentile *)
  Alcotest.(check (float 0.0)) "single p1" 7.0 (Histogram.percentile h 0.01);
  Alcotest.(check (float 0.0)) "single p99" 7.0 (Histogram.percentile h 0.99);
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.record h v
  done;
  (* percentiles are interpolated inside dyadic buckets, so allow the
     bucket's resolution, but the clamp to observed min/max is exact *)
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 in [32,64]" true (p50 >= 32.0 && p50 <= 64.0);
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p99 in [64,100]" true (p99 >= 64.0 && p99 <= 100.0);
  Alcotest.(check (float 0.0)) "p100 = max" 100.0 (Histogram.percentile h 1.0);
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check int) "sum" 5050 (Histogram.sum h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 100 (Histogram.max_value h)

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative and commutative" ~count:200
    QCheck.(triple (small_list small_signed_int) (small_list small_signed_int) (small_list small_signed_int))
    (fun (xs, ys, zs) ->
      let of_list l =
        let h = Histogram.create () in
        List.iter (Histogram.record h) l;
        h
      in
      let merged lists =
        let acc = Histogram.create () in
        List.iter (fun l -> Histogram.merge_into ~into:acc (of_list l)) lists;
        acc
      in
      (* (x + y) + z = x + (y + z) = z + y + x = one histogram of all *)
      let a =
        let xy = merged [ xs; ys ] in
        Histogram.merge_into ~into:xy (of_list zs);
        xy
      in
      let b =
        let yz = merged [ ys; zs ] in
        let acc = of_list xs in
        Histogram.merge_into ~into:acc yz;
        acc
      in
      let c = merged [ zs; ys; xs ] in
      let d = of_list (xs @ ys @ zs) in
      Histogram.equal a b && Histogram.equal b c && Histogram.equal c d)

let test_merge_across_domains () =
  (* each domain records into a private histogram; the merged view
     equals one histogram fed everything *)
  let parts =
    Array.init 4 (fun k ->
        Domain.spawn (fun () ->
            let h = Histogram.create () in
            for v = 1 to 1000 do
              Histogram.record h ((v * (k + 1)) land 4095)
            done;
            h))
    |> Array.map Domain.join
  in
  let merged = Histogram.create () in
  Array.iter (fun h -> Histogram.merge_into ~into:merged h) parts;
  let expect = Histogram.create () in
  for k = 0 to 3 do
    for v = 1 to 1000 do
      Histogram.record expect ((v * (k + 1)) land 4095)
    done
  done;
  Alcotest.(check bool) "merged = serial" true (Histogram.equal merged expect)

(* ---------------- metrics registry ---------------- *)

let test_registry_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check bool) "same handle" true (Metrics.counter r "a.count" == c);
  Metrics.set_gauge (Metrics.gauge r "depth") 3;
  Metrics.observe r "lat" 10;
  Metrics.observe r "lat" 20;
  let other = Metrics.create () in
  Metrics.add (Metrics.counter other "a.count") 2;
  Metrics.observe other "lat" 30;
  Metrics.merge_into ~into:r other;
  Alcotest.(check int) "merged counter" 7 (Metrics.value c);
  (match Metrics.histogram r "lat" with
  | Some h -> Alcotest.(check int) "merged histogram" 3 (Histogram.count h)
  | None -> Alcotest.fail "lat histogram missing");
  Alcotest.(check (list (pair string int))) "sorted counters" [ ("a.count", 7) ] (Metrics.counters r);
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes via old handle" 0 (Metrics.value c)

let test_atomic_io_stats () =
  (* satellite 1: concurrent recorders lose no increments *)
  let s = Io_stats.create () in
  let per = 25_000 in
  Array.init 4 (fun _ ->
      Domain.spawn (fun () ->
          for _ = 1 to per do
            Io_stats.record_read s;
            Io_stats.record_write s;
            Io_stats.record_alloc s
          done))
  |> Array.iter Domain.join;
  Alcotest.(check int) "reads" (4 * per) (Io_stats.reads s);
  Alcotest.(check int) "writes" (4 * per) (Io_stats.writes s);
  Alcotest.(check int) "allocs" (4 * per) (Io_stats.allocs s);
  let snap = Io_stats.snapshot s in
  Alcotest.(check int) "snapshot total" (8 * per) (Io_stats.snapshot_total snap)

(* ---------------- trace ring ---------------- *)

let with_tracing f =
  Trace.clear ();
  Metrics.reset Metrics.default;
  Fun.protect ~finally:(fun () -> Control.disable ()) (fun () ->
      Control.enable ();
      f ())

let test_ring_wraparound () =
  with_tracing @@ fun () ->
  Trace.set_capacity 8;
  Fun.protect ~finally:(fun () -> Trace.set_capacity 4096) @@ fun () ->
  for i = 0 to 19 do
    Trace.with_span (Printf.sprintf "p%d" i) (fun () -> ())
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "capacity survivors" 8 (List.length evs);
  (* the survivors are the 8 newest, oldest first, seq monotone *)
  List.iteri
    (fun i (ev : Trace.event) ->
      Alcotest.(check int) "seq" (12 + i) ev.seq;
      Alcotest.(check string) "phase" (Printf.sprintf "p%d" (12 + i)) ev.phase)
    evs

let test_span_nesting_and_histograms () =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner" (fun () -> ()));
  let evs = Trace.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let depth_of phase =
    (List.find (fun (e : Trace.event) -> e.phase = phase) evs).depth
  in
  Alcotest.(check int) "outer depth" 0 (depth_of "outer");
  Alcotest.(check int) "inner depth" 1 (depth_of "inner");
  (match Metrics.histogram Metrics.default (Trace.span_histogram "inner") with
  | Some h -> Alcotest.(check int) "inner samples" 2 (Histogram.count h)
  | None -> Alcotest.fail "span histogram missing");
  (* disabled means inert: no new events *)
  Control.disable ();
  Trace.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "still three" 3 (List.length (Trace.events ()))

(* ---------------- LRU / reader cache stats ---------------- *)

let test_lru_hit_miss () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check bool) "miss on empty" true (Lru.find l 1 = None);
  Lru.put l 1 "a" ~on_evict:(fun _ _ -> ());
  ignore (Lru.find l 1);
  ignore (Lru.peek l 2);
  (* peek never counts *)
  Lru.note_miss l;
  Alcotest.(check int) "hits" 1 (Lru.hits l);
  Alcotest.(check int) "misses" 2 (Lru.misses l);
  Lru.reset_stats l;
  Alcotest.(check int) "reset hits" 0 (Lru.hits l);
  Alcotest.(check int) "reset misses" 0 (Lru.misses l)

let test_reader_cache_stats () =
  let n = 60 in
  let segs = W.roads (Rng.create 5) ~n ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 ~pool_blocks:4 segs in
  let r = Db.reader ~cache_blocks:64 db in
  let q = Segdb_geom.Vquery.line ~x:50.0 in
  ignore (Db.query_ids_r db r q);
  let h1 = Segdb_io.Read_context.cache_hits r in
  let m1 = Segdb_io.Read_context.cache_misses r in
  Alcotest.(check bool) "cold run misses" true (m1 > 0);
  ignore (Db.query_ids_r db r q);
  Alcotest.(check bool) "warm run hits" true (Segdb_io.Read_context.cache_hits r > h1);
  Alcotest.(check int) "warm run adds no misses" m1 (Segdb_io.Read_context.cache_misses r)

(* ---------------- parallel worker stats ---------------- *)

let test_parallel_query_stats () =
  let n = 200 in
  let segs = W.roads (Rng.create 7) ~n ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 ~pool_blocks:8 segs in
  let rng = Rng.create 8 in
  let qs = Array.init 40 (fun _ -> Segdb_geom.Vquery.line ~x:(Rng.float rng 100.0)) in
  let expect = Array.map (fun q -> Db.query_ids db q) qs in
  let out, stats = Db.parallel_query_stats db qs ~domains:3 in
  Alcotest.(check bool) "answers match serial" true (out = expect);
  Alcotest.(check int) "one row per worker" 3 (Array.length stats);
  let total = Array.fold_left (fun acc (w : Db.worker_stats) -> acc + w.queries) 0 stats in
  Alcotest.(check int) "workers served the whole batch" (Array.length qs) total;
  Array.iteri
    (fun k (w : Db.worker_stats) ->
      Alcotest.(check int) "worker id" k w.worker;
      Alcotest.(check bool) "counters non-negative" true
        (w.reads >= 0 && w.cache_hits >= 0 && w.cache_misses >= 0))
    stats;
  (* with obs on, worker latencies land in the default registry *)
  with_tracing (fun () ->
      let _ = Db.parallel_query_stats db qs ~domains:2 in
      match Metrics.histogram Metrics.default "parallel.query.ns" with
      | Some h -> Alcotest.(check int) "latency samples" (Array.length qs) (Histogram.count h)
      | None -> Alcotest.fail "parallel.query.ns missing")

(* ---------------- tracing never changes answers ---------------- *)

let backends : (string * Db.backend) list =
  [
    ("naive", `Naive);
    ("rtree", `Rtree);
    ("solution1", `Solution1);
    ("solution2", `Solution2);
  ]

let random_query rng =
  let x = Rng.float rng 120.0 -. 10.0 in
  match Rng.int rng 4 with
  | 0 -> Segdb_geom.Vquery.line ~x
  | 1 -> Segdb_geom.Vquery.ray_up ~x ~ylo:(Rng.float rng 100.0)
  | 2 -> Segdb_geom.Vquery.ray_down ~x ~yhi:(Rng.float rng 100.0)
  | _ ->
      let y = Rng.float rng 100.0 in
      Segdb_geom.Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 40.0)

let prop_tracing_is_transparent =
  QCheck.Test.make ~name:"enabling tracing never changes query results" ~count:25
    QCheck.(pair (int_bound 100_000) (int_bound 100))
    (fun (seed, n) ->
      let segs = W.roads (Rng.create seed) ~n ~span:100.0 in
      let rng = Rng.create (seed + 1) in
      let qs = Array.init 12 (fun _ -> random_query rng) in
      List.for_all
        (fun (_, backend) ->
          let db = Db.create ~backend ~block:8 ~pool_blocks:8 segs in
          let plain = Array.map (fun q -> Db.query_ids db q) qs in
          let traced =
            with_tracing (fun () -> Array.map (fun q -> Db.query_ids db q) qs)
          in
          plain = traced)
        backends)

(* ---------------- exporters ---------------- *)

(* A tiny JSON well-formedness check: every brace/bracket balances and
   strings close. Not a full parser, but catches the classic exporter
   bugs (trailing commas are caught by CI's python -m json.tool; here
   we guard structure). *)
let json_balanced s =
  let depth = ref 0 and ok = ref true and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let exporter_registry () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "io.reads") 42;
  Metrics.set_gauge (Metrics.gauge r "pool.resident") 7;
  List.iter (Metrics.observe r "span.pst.report.ns") [ 100; 2000; 2500; 90000 ];
  List.iter (Metrics.observe r "span.pst.report.blocks") [ 0; 1; 1; 3 ];
  r

let test_exporters () =
  let r = exporter_registry () in
  let txt = Export.text r in
  Alcotest.(check bool) "text mentions counter" true
    (contains txt "io.reads");
  let js = Export.json r in
  Alcotest.(check bool) "json balanced" true (json_balanced js);
  Alcotest.(check bool) "json has histogram stats" true
    (contains js "\"p99\"");
  let prom = Export.prometheus r in
  (* every non-comment line is "name[{le=...}] number"; cumulative
     buckets end with the +Inf bucket equal to _count *)
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.fail ("prometheus line without value: " ^ line)
           | Some i -> (
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt v with
               | Some _ -> ()
               | None -> Alcotest.fail ("prometheus value not numeric: " ^ line)));
  Alcotest.(check bool) "prometheus prefixes names" true
    (contains prom "segdb_io_reads 42");
  Alcotest.(check bool) "prometheus cumulative +Inf" true
    (contains prom "segdb_span_pst_report_ns_bucket{le=\"+Inf\"} 4");
  let summary = Export.phase_summary r in
  Alcotest.(check bool) "phase summary extracts phase" true
    (contains summary "pst.report")

let test_prometheus_label_escaping () =
  let r = exporter_registry () in
  let nasty = "unix:/tmp/a \"b\"\\c\nd" in
  let prom = Export.prometheus ~labels:[ ("addr", nasty); ("host-name", "h1") ] r in
  (* the raw value (with its quote and newline) must never reach the
     output; the escaped form must, with backslash, double quote and
     newline all encoded per the exposition format *)
  Alcotest.(check bool) "raw value absent" false (contains prom nasty);
  Alcotest.(check bool) "escaped value present" true
    (contains prom "addr=\"unix:/tmp/a \\\"b\\\"\\\\c\\nd\"");
  Alcotest.(check bool) "label names sanitized" true (contains prom "host_name=\"h1\"");
  (* the histogram's le label composes with the shared labels *)
  Alcotest.(check bool) "le composes with labels" true
    (contains prom "host_name=\"h1\",le=\"+Inf\"}");
  (* every non-comment line still ends in exactly one numeric value:
     an unescaped newline would have split a sample across lines *)
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.fail ("prometheus line without value: " ^ line)
           | Some i ->
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               if float_of_string_opt v = None then
                 Alcotest.fail ("prometheus value not numeric: " ^ line))

let suite =
  ( "obs",
    [
      Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
      Alcotest.test_case "histogram percentiles" `Quick test_percentiles_exact;
      qtest prop_merge_associative;
      Alcotest.test_case "cross-domain histogram merge" `Quick test_merge_across_domains;
      Alcotest.test_case "metrics registry basics + merge" `Quick test_registry_basics;
      Alcotest.test_case "io_stats increments are atomic" `Quick test_atomic_io_stats;
      Alcotest.test_case "trace ring wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "span nesting feeds histograms" `Quick test_span_nesting_and_histograms;
      Alcotest.test_case "lru hit/miss counters" `Quick test_lru_hit_miss;
      Alcotest.test_case "reader cache stats" `Quick test_reader_cache_stats;
      Alcotest.test_case "parallel_query_stats" `Quick test_parallel_query_stats;
      qtest prop_tracing_is_transparent;
      Alcotest.test_case "exporters: text/json/prometheus" `Quick test_exporters;
      Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_label_escaping;
    ] )
