(** The serving layer: a TCP / Unix-domain socket server over one
    database.

    Architecture: one {e accept loop} (the domain that calls {!run})
    multiplexes the listen socket and every live connection with
    [select], peels complete frames off per-connection buffers, and
    feeds a {e bounded request queue}; [domains] {e worker domains}
    drain the queue, each answering through its own private
    {!Segdb_core.Segdb.reader} (the same per-domain read-context
    discipline as [Segdb.parallel_query]), executing queries via
    [query_safe] so storage faults degrade answers instead of killing
    connections.

    Backpressure is explicit: when the queue is full the accept loop
    answers [Error Overloaded] immediately instead of buffering without
    bound. Each request carries a deadline from the moment it is
    enqueued; a request that is still queued past its deadline is
    answered [Error Deadline] without being executed. A [Shutdown]
    frame (or {!stop}, which is what the SIGTERM handler of
    [segdb_server] calls) drains gracefully: accepting stops, queued
    requests are answered, then every connection is closed and {!run}
    returns.

    Instrumentation (under {!Segdb_obs.Control.enabled}): [net.requests],
    [net.bytes_in], [net.bytes_out] counters, the [net.queue_depth]
    gauge, and the [net.request.ns] histogram. *)

module Db := Segdb_core.Segdb

type addr = Tcp of string * int | Unix_path of string

val addr_of_string : string -> (addr, string) result
(** ["HOST:PORT"] or ["unix:PATH"]; a bare path containing ['/'] is
    also taken as a Unix socket. *)

val addr_to_string : addr -> string
val pp_addr : Format.formatter -> addr -> unit

type t

val create :
  ?domains:int ->
  ?queue_depth:int ->
  ?deadline_ms:int ->
  ?cache_blocks:int ->
  db:Db.t ->
  addr ->
  t
(** Binds and listens immediately (so {!bound_addr} is final before any
    worker starts). [domains] worker domains (default 2, min 1),
    [queue_depth] bounds the request queue (default 128; 0 refuses all
    queued work — useful to test backpressure), [deadline_ms] is the
    per-request budget from enqueue (default 5000; 0 disables),
    [cache_blocks] sizes each worker reader's private LRU shard.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val bound_addr : t -> addr
(** The actual listening address — the kernel-chosen port when the TCP
    address was given port 0. *)

val run : t -> unit
(** Serve until a [Shutdown] frame arrives or {!stop} is called; the
    calling domain becomes the accept loop. Worker domains are spawned
    on entry and joined before returning; every connection is closed
    and (for Unix sockets) the path unlinked. *)

val start : t -> unit
(** {!run} in a background domain — for in-process loopback use (tests,
    bench, the CLI's own client against itself). *)

val stop : t -> unit
(** Request a graceful drain. Async-signal-safe: only flips an atomic;
    the accept loop notices within its select tick. *)

val wait : t -> unit
(** Join a server started with {!start} (returns immediately if {!run}
    already returned). *)

val open_or_build : ?backend:Db.backend -> ?block:int -> string -> Db.t
(** Load a database for serving: a file with the snapshot magic is
    reopened via [Db.open_db], anything else is parsed as a text
    segment file and indexed with [backend]/[block] (defaults:
    [`Solution2], 64). Shared by [segdb_server] and [segdb_cli serve]. *)
