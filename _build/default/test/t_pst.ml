(* External PST tests: query correctness against a naive oracle on
   certified-NCT line-based sets, Find (Lemma 1), heap/key invariants,
   insertion, space and I/O behaviour. *)

open Segdb_io
open Segdb_geom
module Pst = Segdb_pst.Pst

let qtest = QCheck_alcotest.to_alcotest

let mk_env ?(pool = 256) () =
  (Block_store.Pool.create ~capacity:pool, Io_stats.create ())

(* -------- generators -------- *)

(* Certified non-crossing family: bases and slopes co-sorted. *)
let nct_lsegs rng n ~vspan ~umax =
  let bases = Array.init n (fun _ -> Segdb_util.Rng.float rng vspan) in
  let slopes = Array.init n (fun _ -> Segdb_util.Rng.float rng 6.0 -. 3.0) in
  Array.sort compare bases;
  Array.sort compare slopes;
  Array.init n (fun i ->
      let far_u = 0.1 +. Segdb_util.Rng.float rng umax in
      Lseg.make ~id:i ~base_v:bases.(i) ~far_u ~far_v:(bases.(i) +. (slopes.(i) *. far_u)) ())

let lseg_print (s : Lseg.t) =
  Printf.sprintf "L%d(b=%g,u=%g,v=%g)" s.Lseg.id s.Lseg.base_v s.Lseg.far_u s.Lseg.far_v

let scenario_gen =
  QCheck.Gen.(
    let* seed = 0 -- 100000 in
    let* n = 0 -- 120 in
    let* cap = 2 -- 8 in
    let* branching = oneofl [ 2; 4; 8 ] in
    let* uq = float_range 0.0 30.0 in
    let* v1 = float_range (-10.0) 110.0 in
    let* width = float_range 0.0 60.0 in
    return (seed, n, cap, branching, uq, v1, width))

let scenario_print (seed, n, cap, branching, uq, v1, width) =
  Printf.sprintf "seed=%d n=%d cap=%d f=%d uq=%g v=[%g,%g]" seed n cap branching uq v1
    (v1 +. width)

let scenario_arb = QCheck.make ~print:scenario_print scenario_gen

let ids xs = List.map (fun (s : Lseg.t) -> s.Lseg.id) xs |> List.sort compare

let oracle segs q = Array.to_list segs |> List.filter (Lseg.matches q)

let build_of (seed, n, cap, branching, _, _, _) =
  let pool, io = mk_env () in
  let rng = Segdb_util.Rng.create seed in
  let segs = nct_lsegs rng n ~vspan:100.0 ~umax:25.0 in
  let t = Pst.build ~node_capacity:cap ~branching ~pool ~stats:io segs in
  (t, segs, io)

let prop_query_oracle =
  QCheck.Test.make ~name:"pst query equals naive filter" ~count:400 scenario_arb
    (fun ((_, _, _, _, uq, v1, width) as sc) ->
      let t, segs, _ = build_of sc in
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      ids (Pst.query_list t q) = ids (oracle segs q))

let prop_invariants =
  QCheck.Test.make ~name:"pst build invariants" ~count:200 scenario_arb (fun sc ->
      let t, segs, _ = build_of sc in
      Pst.check_invariants t && Pst.size t = Array.length segs)

let prop_find_extremes =
  QCheck.Test.make ~name:"pst find leftmost/rightmost (Lemma 1)" ~count:400 scenario_arb
    (fun ((_, _, _, _, uq, v1, width) as sc) ->
      let t, segs, _ = build_of sc in
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      let matches = oracle segs q |> List.sort Lseg.compare_key in
      let expect_l = match matches with [] -> None | x :: _ -> Some x in
      let expect_r = match List.rev matches with [] -> None | x :: _ -> Some x in
      let got_l = Pst.find_leftmost t q and got_r = Pst.find_rightmost t q in
      let eq a b =
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> Lseg.equal x y
        | _ -> false
      in
      eq got_l expect_l && eq got_r expect_r)

let prop_insert_oracle =
  QCheck.Test.make ~name:"pst insert preserves queries" ~count:200 scenario_arb
    (fun ((seed, n, cap, branching, uq, v1, width) as _sc) ->
      let pool, io = mk_env () in
      let rng = Segdb_util.Rng.create seed in
      let segs = nct_lsegs rng (max n 1) ~vspan:100.0 ~umax:25.0 in
      let k = Array.length segs / 2 in
      let t = Pst.build ~node_capacity:cap ~branching ~pool ~stats:io (Array.sub segs 0 k) in
      for i = k to Array.length segs - 1 do
        Pst.insert t segs.(i)
      done;
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      Pst.check_invariants t
      && Pst.size t = Array.length segs
      && ids (Pst.query_list t q) = ids (oracle segs q))

let prop_line_query =
  (* uq = 0 with an unbounded v-range must return everything. *)
  QCheck.Test.make ~name:"pst full query returns all" ~count:100 scenario_arb (fun sc ->
      let t, segs, _ = build_of sc in
      let q = Lseg.query ~uq:0.0 ~vlo:neg_infinity ~vhi:infinity in
      List.length (Pst.query_list t q) = Array.length segs)

let test_empty () =
  let pool, io = mk_env () in
  let t = Pst.build ~pool ~stats:io [||] in
  Alcotest.(check int) "size" 0 (Pst.size t);
  Alcotest.(check int) "blocks" 0 (Pst.block_count t);
  Alcotest.(check bool) "invariants" true (Pst.check_invariants t);
  let q = Lseg.query ~uq:1.0 ~vlo:0.0 ~vhi:1.0 in
  Alcotest.(check int) "query" 0 (Pst.count t q);
  Alcotest.(check bool) "find" true (Pst.find_leftmost t q = None)

let test_insert_into_empty () =
  let pool, io = mk_env () in
  let t = Pst.build ~node_capacity:4 ~pool ~stats:io [||] in
  let rng = Segdb_util.Rng.create 11 in
  let segs = nct_lsegs rng 50 ~vspan:100.0 ~umax:25.0 in
  Array.iter (Pst.insert t) segs;
  Alcotest.(check int) "size" 50 (Pst.size t);
  Alcotest.(check bool) "invariants" true (Pst.check_invariants t);
  let q = Lseg.query ~uq:3.0 ~vlo:10.0 ~vhi:70.0 in
  Alcotest.(check bool) "query matches oracle" true
    (ids (Pst.query_list t q) = ids (oracle segs q))

let test_space_linear () =
  let pool, io = mk_env ~pool:1024 () in
  let rng = Segdb_util.Rng.create 5 in
  let n = 20_000 and cap = 64 in
  let segs = nct_lsegs rng n ~vspan:1000.0 ~umax:100.0 in
  let t = Pst.build ~node_capacity:cap ~pool ~stats:io segs in
  let blocks = Pst.block_count t in
  (* linear space: within a small constant of n/B *)
  Alcotest.(check bool)
    (Printf.sprintf "blocks %d vs n/B %d" blocks (n / cap))
    true
    (blocks <= 4 * (n / cap));
  Alcotest.(check int) "all stored" n (Pst.size t)

let test_query_io_logarithmic () =
  (* Lemma 2: O(log n + t) I/Os per query with a cold cache. *)
  let pool = Block_store.Pool.create ~capacity:8 in
  let io = Io_stats.create () in
  let rng = Segdb_util.Rng.create 17 in
  let n = 30_000 and cap = 64 in
  let segs = nct_lsegs rng n ~vspan:1000.0 ~umax:100.0 in
  let t = Pst.build ~node_capacity:cap ~pool ~stats:io segs in
  let worst = ref 0 in
  for i = 0 to 49 do
    let v = float_of_int i *. 20.0 in
    let q = Lseg.query ~uq:90.0 ~vlo:v ~vhi:(v +. 2.0) in
    let before = Io_stats.snapshot io in
    let tq = Pst.count t q in
    let cost = Io_stats.snapshot_total (Io_stats.diff before (Io_stats.snapshot io)) in
    let budget = (4 * (Pst.height t + 1)) + (8 * ((tq / cap) + 1)) in
    if cost > budget then incr worst
  done;
  Alcotest.(check int) "queries within logarithmic budget" 0 !worst

let test_blocked_shallower_than_binary () =
  let pool, io = mk_env ~pool:2048 () in
  let rng = Segdb_util.Rng.create 23 in
  let segs = nct_lsegs rng 10_000 ~vspan:1000.0 ~umax:100.0 in
  let b = Pst.binary ~node_capacity:16 ~pool ~stats:io segs in
  let m = Pst.blocked ~node_capacity:16 ~pool ~stats:io segs in
  Alcotest.(check bool)
    (Printf.sprintf "blocked height %d < binary height %d" (Pst.height m) (Pst.height b))
    true
    (Pst.height m < Pst.height b)

let suite =
  ( "pst",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "insert into empty" `Quick test_insert_into_empty;
      Alcotest.test_case "space linear" `Quick test_space_linear;
      Alcotest.test_case "query io logarithmic" `Quick test_query_io_logarithmic;
      Alcotest.test_case "blocked shallower" `Quick test_blocked_shallower_than_binary;
      qtest prop_query_oracle;
      qtest prop_invariants;
      qtest prop_find_extremes;
      qtest prop_insert_oracle;
      qtest prop_line_query;
    ] )



(* -------- Three_sided -------- *)

let prop_three_sided_oracle =
  QCheck.Test.make ~name:"three-sided query equals naive filter" ~count:300
    (QCheck.make
       ~print:(fun (pts, x1, w, y) ->
         Printf.sprintf "n=%d x=[%g,%g] y>=%g" (List.length pts) x1 (x1 +. w) y)
       QCheck.Gen.(
         quad
           (list_size (0 -- 100) (pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0)))
           (float_range (-60.0) 60.0) (float_range 0.0 60.0) (float_range (-60.0) 60.0)))
    (fun (pts, x1, w, y) ->
      let pool, io = mk_env () in
      let points = Array.of_list pts in
      let t = Segdb_pst.Three_sided.build ~node_capacity:4 ~pool ~stats:io points in
      let x2 = x1 +. w in
      let got = Segdb_pst.Three_sided.query_ids t ~x1 ~x2 ~y in
      let expected =
        List.filteri (fun _ _ -> true) pts
        |> List.mapi (fun i (px, py) -> (i, px, py))
        |> List.filter (fun (_, px, py) -> x1 <= px && px <= x2 && py >= y)
        |> List.map (fun (i, _, _) -> i)
      in
      got = expected)

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_three_sided_oracle ])

let prop_delete_oracle =
  QCheck.Test.make ~name:"pst delete preserves queries and invariants" ~count:200 scenario_arb
    (fun ((seed, n, cap, branching, uq, v1, width) as _sc) ->
      QCheck.assume (n > 0);
      let pool, io = mk_env () in
      let rng = Segdb_util.Rng.create seed in
      let segs = nct_lsegs rng (max n 1) ~vspan:100.0 ~umax:25.0 in
      let t = Pst.build ~node_capacity:cap ~branching ~pool ~stats:io segs in
      let doomed, kept =
        Array.to_list segs |> List.partition (fun (s : Lseg.t) -> s.Lseg.id mod 3 = 0)
      in
      let ok_del = List.for_all (Pst.delete t) doomed in
      let gone = List.for_all (fun s -> not (Pst.delete t s)) doomed in
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      ok_del && gone
      && Pst.size t = List.length kept
      && Pst.check_invariants t
      && ids (Pst.query_list t q) = ids (List.filter (Lseg.matches q) kept))

let prop_delete_insert_mix =
  QCheck.Test.make ~name:"pst interleaved insert/delete" ~count:100 scenario_arb
    (fun (seed, n, cap, branching, uq, v1, width) ->
      QCheck.assume (n > 4);
      let pool, io = mk_env () in
      let rng = Segdb_util.Rng.create seed in
      let segs = nct_lsegs rng n ~vspan:100.0 ~umax:25.0 in
      let k = n / 2 in
      let t = Pst.build ~node_capacity:cap ~branching ~pool ~stats:io (Array.sub segs 0 k) in
      let live = Hashtbl.create 16 in
      Array.iteri (fun i s -> if i < k then Hashtbl.replace live i s) segs;
      for i = k to n - 1 do
        Pst.insert t segs.(i);
        Hashtbl.replace live i segs.(i);
        let victim = (i * 7) mod k in
        if Hashtbl.mem live victim then begin
          ignore (Pst.delete t segs.(victim));
          Hashtbl.remove live victim
        end
      done;
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      let expect =
        Hashtbl.fold
          (fun _ (s : Lseg.t) acc -> if Lseg.matches q s then s.Lseg.id :: acc else acc)
          live []
        |> List.sort compare
      in
      Pst.check_invariants t && ids (Pst.query_list t q) = expect)

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_delete_oracle; qtest prop_delete_insert_mix ])

let prop_find_bfs_agrees =
  QCheck.Test.make ~name:"frontier Find agrees with DFS Find and stays narrow" ~count:300
    scenario_arb
    (fun ((_, _, _, branching, uq, v1, width) as sc) ->
      let t, segs, _ = build_of sc in
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      let prof = Pst.find_profile t q ~leftmost:true in
      let dfs = Pst.find_leftmost t q in
      let agree =
        match (prof.result, dfs) with
        | None, None -> true
        | Some a, Some b -> Lseg.equal a b
        | _ -> false
      in
      (* Lemma 1 states <= 2 for the binary tree; a b-ary node can fan
         out to a level of siblings before the witnesses tighten *)
      agree
      && prof.max_width <= 2 * branching
      && (Array.length segs = 0 || prof.levels <= Pst.height t))

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_find_bfs_agrees ])

let prop_two_phase_agrees =
  QCheck.Test.make ~name:"two-phase Report (Appendix A) equals one-pass query" ~count:300
    scenario_arb
    (fun ((_, _, _, _, uq, v1, width) as sc) ->
      let t, segs, _ = build_of sc in
      let q = Lseg.query ~uq ~vlo:v1 ~vhi:(v1 +. width) in
      let two = ref [] in
      Pst.query_two_phase t q ~f:(fun s -> two := s :: !two);
      ids !two = ids (oracle segs q))

let suite =
  let name, cases = suite in
  (name, cases @ [ qtest prop_two_phase_agrees ])
