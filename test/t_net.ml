(* Network layer: the wire codec (round-trip property, typed negative
   frames, totality over arbitrary bytes), loopback serving parity
   against the in-process engine, client retry under armed socket
   faults, backpressure and deadlines. *)

open Segdb_net
module Codec = Segdb_io.Codec
module Failpoint = Segdb_io.Failpoint
module Obs = Segdb_obs
module Metrics = Segdb_obs.Metrics
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Db = Segdb_core.Segdb
module Vquery = Segdb_geom.Vquery

let qtest = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let resp_name = function
  | Wire.Pong -> "pong"
  | Wire.Ids _ -> "ids"
  | Wire.Counted _ -> "counted"
  | Wire.Batch_ids _ -> "batch_ids"
  | Wire.Stats_payload _ -> "stats_payload"
  | Wire.Error (c, m) -> Printf.sprintf "error %s: %s" (Wire.error_code_to_string c) m
  | Wire.Shutdown_ack -> "shutdown_ack"
  | Wire.Trace_events _ -> "trace_events"
  | Wire.Slowlog_payload _ -> "slowlog_payload"
  | Wire.Applied _ -> "applied"
  | Wire.Repl_records _ -> "repl_records"
  | Wire.Repl_snapshot _ -> "repl_snapshot"
  | Wire.Repl_status_payload _ -> "repl_status_payload"
  | Wire.Promoted _ -> "promoted"

(* ---------------- generators ---------------- *)

let gen_coord =
  QCheck.Gen.(map (fun i -> float_of_int i /. 8.0) (int_range (-80_000) 80_000))

let gen_vquery =
  QCheck.Gen.(
    gen_coord >>= fun x ->
    oneof
      [
        return (Vquery.line ~x);
        map (fun ylo -> Vquery.ray_up ~x ~ylo) gen_coord;
        map (fun yhi -> Vquery.ray_down ~x ~yhi) gen_coord;
        map2
          (fun a b -> Vquery.segment ~x ~ylo:(Float.min a b) ~yhi:(Float.max a b))
          gen_coord gen_coord;
      ])

let gen_segment =
  QCheck.Gen.(
    map
      (fun ((id, (xa, ya)), (xb, yb)) ->
        Segdb_geom.Segment.make ~id (xa, ya) (xb, yb))
      (tup2
         (tup2 (int_bound 1_000_000) (tup2 gen_coord gen_coord))
         (tup2 gen_coord gen_coord)))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return Wire.Ping;
        map (fun q -> Wire.Query q) gen_vquery;
        map (fun q -> Wire.Count q) gen_vquery;
        map (fun qs -> Wire.Batch (Array.of_list qs)) (list_size (int_bound 8) gen_vquery);
        map (fun f -> Wire.Stats f) (oneofl [ `Text; `Json; `Prometheus ]);
        return Wire.Shutdown;
        map3
          (fun request_id trace qs ->
            Wire.Batch_ex { request_id; trace; queries = Array.of_list qs })
          (int_bound 1_000_000_000) bool
          (list_size (int_bound 8) gen_vquery);
        map (fun request_id -> Wire.Trace_fetch { request_id }) (int_bound 1_000_000_000);
        map (fun f -> Wire.Slowlog f) (oneofl [ `Text; `Json ]);
        map (fun s -> Wire.Insert s) gen_segment;
        map (fun s -> Wire.Delete s) gen_segment;
        map2
          (fun epoch from_lsn -> Wire.Repl_subscribe { epoch; from_lsn })
          (int_bound 1_000) (int_bound 1_000_000);
        map2
          (fun epoch lsn -> Wire.Repl_ack { epoch; lsn })
          (int_bound 1_000) (int_bound 1_000_000);
        return Wire.Repl_status;
        map (fun epoch -> Wire.Promote { epoch }) (int_bound 1_000);
      ])

let gen_ids = QCheck.Gen.(list_size (int_bound 16) (int_bound 1_000_000))
let gen_text = QCheck.Gen.(string_size (int_bound 64))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return Wire.Pong;
        map3
          (fun ids complete faults -> Wire.Ids { ids; complete; faults })
          gen_ids bool
          (list_size (int_bound 3) gen_text);
        map (fun n -> Wire.Counted n) (int_bound 1_000_000_000);
        map3
          (fun rs complete faults ->
            Wire.Batch_ids { results = Array.of_list rs; complete; faults })
          (list_size (int_bound 5) gen_ids)
          bool
          (list_size (int_bound 3) gen_text);
        map (fun s -> Wire.Stats_payload s) gen_text;
        map2
          (fun c m -> Wire.Error (c, m))
          (oneofl
             [
               Wire.Overloaded;
               Wire.Deadline;
               Wire.Bad_request;
               Wire.Corrupt_frame;
               Wire.Server_error;
               Wire.Shutting_down;
               Wire.Not_primary;
               Wire.Fenced;
             ])
          gen_text;
        return Wire.Shutdown_ack;
        map
          (fun evs -> Wire.Trace_events evs)
          (list_size (int_bound 6)
             (map
                (fun ((seq, phase, depth), (t0_ns, dur_ns, blocks), (request_id, dom)) ->
                  {
                    Obs.Trace.seq;
                    phase;
                    depth;
                    t0_ns;
                    dur_ns;
                    blocks;
                    request_id;
                    dom;
                  })
                (tup3
                   (tup3 (int_bound 100_000) gen_text (int_bound 10))
                   (tup3 (int_bound max_int) (int_bound 1_000_000_000) (int_bound 10_000))
                   (tup2 (int_bound max_int) (int_bound 64)))));
        map (fun s -> Wire.Slowlog_payload s) gen_text;
        map2
          (fun lsn changed -> Wire.Applied { lsn; changed })
          (int_bound 1_000_000) bool;
        map3
          (fun epoch from_lsn records ->
            Wire.Repl_records { epoch; from_lsn; records })
          (int_bound 1_000) (int_bound 1_000_000)
          (list_size (int_bound 6) gen_text);
        map3
          (fun epoch lsn segs ->
            Wire.Repl_snapshot { epoch; lsn; segments = Array.of_list segs })
          (int_bound 1_000) (int_bound 1_000_000)
          (list_size (int_bound 6) gen_segment);
        map
          (fun ((role, epoch), (lsn, progress_ms), peers) ->
            Wire.Repl_status_payload { Wire.role; epoch; lsn; progress_ms; peers })
          (tup3
             (tup2 (oneofl [ "primary"; "replica" ]) (int_bound 1_000))
             (tup2 (int_bound 1_000_000) (int_bound 60_000))
             (list_size (int_bound 4)
                (map
                   (fun ((peer, acked_lsn), sent_lsn) ->
                     { Wire.peer; acked_lsn; sent_lsn })
                   (tup2 (tup2 gen_text (int_bound 1_000_000)) (int_bound 1_000_000)))));
        map (fun epoch -> Wire.Promoted { epoch }) (int_bound 1_000);
      ])

(* ---------------- wire codec ---------------- *)

(* Walk the full framing path: header decode, length check, CRC check. *)
let payload_of_frame frame =
  let n = String.length frame in
  if n < Wire.header_bytes then Result.Error Wire.Truncated
  else
    match Wire.decode_header (String.sub frame 0 Wire.header_bytes) with
    | Result.Error _ as e -> e
    | Result.Ok (len, crc) ->
        if n <> Wire.header_bytes + len then
          Result.Error (Wire.Malformed "frame length mismatch")
        else Wire.check_payload ~crc (String.sub frame Wire.header_bytes len)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire requests round-trip through a framed encode" ~count:500
    (QCheck.make gen_request)
    (fun req ->
      match payload_of_frame (Wire.encode_request req) with
      | Result.Ok payload -> Wire.decode_request payload = Result.Ok req
      | Result.Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire responses round-trip through a framed encode" ~count:500
    (QCheck.make gen_response)
    (fun resp ->
      match payload_of_frame (Wire.encode_response resp) with
      | Result.Ok payload -> Wire.decode_response payload = Result.Ok resp
      | Result.Error _ -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"decode is total over arbitrary bytes" ~count:1000
    QCheck.(string_of_size Gen.(int_bound 64))
    (fun s ->
      (match Wire.decode_request s with Result.Ok _ | Result.Error _ -> true)
      && match Wire.decode_response s with Result.Ok _ | Result.Error _ -> true)

let header len crc =
  let b = Buffer.create 8 in
  Codec.W.u32 b len;
  Codec.W.u32 b crc;
  Buffer.contents b

let test_negative_frames () =
  (* oversized length prefix: rejected before any allocation *)
  (match Wire.decode_header (header (Wire.max_frame + 1) 0) with
  | Result.Error (Wire.Oversized n) ->
      Alcotest.(check int) "oversized carries the length" (Wire.max_frame + 1) n
  | _ -> Alcotest.fail "oversized header accepted");
  (* CRC mismatch *)
  let frame = Wire.encode_request Wire.Ping in
  let len, crc =
    match Wire.decode_header (String.sub frame 0 Wire.header_bytes) with
    | Result.Ok hc -> hc
    | Result.Error e ->
        Alcotest.failf "good header rejected: %s" (Wire.protocol_error_to_string e)
  in
  let payload = String.sub frame Wire.header_bytes len in
  Alcotest.(check bool) "good payload passes" true
    (Wire.check_payload ~crc payload = Result.Ok payload);
  (match Wire.check_payload ~crc:(crc lxor 1) payload with
  | Result.Error Wire.Crc_mismatch -> ()
  | _ -> Alcotest.fail "bad crc accepted");
  (* unknown tags, both directions: a response tag is not a request *)
  (match Wire.decode_request "\x63" with
  | Result.Error (Wire.Unknown_tag 99) -> ()
  | _ -> Alcotest.fail "unknown request tag accepted");
  (match Wire.decode_response "\x07" with
  | Result.Error (Wire.Unknown_tag 7) -> ()
  | _ -> Alcotest.fail "request tag accepted as a response");
  (* empty payload, truncated body, trailing garbage: Malformed *)
  (match Wire.decode_request "" with
  | Result.Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "empty payload accepted");
  let qframe = Wire.encode_request (Wire.Query (Vquery.line ~x:1.0)) in
  let qpayload =
    String.sub qframe Wire.header_bytes (String.length qframe - Wire.header_bytes)
  in
  (match Wire.decode_request (String.sub qpayload 0 (String.length qpayload - 3)) with
  | Result.Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "truncated body accepted");
  match Wire.decode_request (qpayload ^ "x") with
  | Result.Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

(* ---------------- blocking transport ---------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_send_recv_roundtrip () =
  with_socketpair (fun a b ->
      let req = Wire.Batch [| Vquery.line ~x:3.0; Vquery.ray_up ~x:1.0 ~ylo:0.0 |] in
      Wire.send b (Wire.encode_request req);
      match Wire.recv a with
      | Result.Ok payload ->
          Alcotest.(check bool) "frame survives the stream" true
            (Wire.decode_request payload = Result.Ok req)
      | Result.Error e -> Alcotest.failf "recv: %s" (Wire.protocol_error_to_string e))

let test_recv_truncated () =
  (* end-of-stream mid-header *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring b "\x04\x00" 0 2);
      Unix.close b;
      match Wire.recv a with
      | Result.Error Wire.Truncated -> ()
      | Result.Ok _ -> Alcotest.fail "truncated stream produced a frame"
      | Result.Error e ->
          Alcotest.failf "expected Truncated, got %s" (Wire.protocol_error_to_string e));
  (* end-of-stream mid-payload *)
  with_socketpair (fun a b ->
      let frame = Wire.encode_request (Wire.Query (Vquery.line ~x:2.0)) in
      ignore (Unix.write_substring b frame 0 (Wire.header_bytes + 4));
      Unix.close b;
      match Wire.recv a with
      | Result.Error Wire.Truncated -> ()
      | _ -> Alcotest.fail "mid-payload end-of-stream not Truncated")

let test_recv_timeout () =
  with_socketpair (fun a _b ->
      match Wire.recv ~timeout:0.05 a with
      | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) -> ()
      | Result.Ok _ -> Alcotest.fail "a frame out of silence"
      | Result.Error e ->
          Alcotest.failf "expected ETIMEDOUT, got %s" (Wire.protocol_error_to_string e))

(* ---------------- addresses ---------------- *)

let test_addr_of_string () =
  let ok s expect =
    match Server.addr_of_string s with
    | Result.Ok got ->
        Alcotest.(check string) s (Server.addr_to_string expect) (Server.addr_to_string got)
    | Result.Error m -> Alcotest.failf "%S rejected: %s" s m
  in
  ok "127.0.0.1:4090" (Server.Tcp ("127.0.0.1", 4090));
  ok ":8080" (Server.Tcp ("127.0.0.1", 8080));
  ok "unix:/tmp/segdb.sock" (Server.Unix_path "/tmp/segdb.sock");
  ok "/tmp/segdb.sock" (Server.Unix_path "/tmp/segdb.sock");
  List.iter
    (fun s ->
      match Server.addr_of_string s with
      | Result.Ok a -> Alcotest.failf "%S parsed as %s" s (Server.addr_to_string a)
      | Result.Error _ -> ())
    [ "nonsense"; "host:notaport"; "host:70000" ]

(* ---------------- loopback serving ---------------- *)

let build_db ?(backend = `Solution2) ?(n = 400) ?(seed = 42) () =
  let segs = W.roads (Rng.create seed) ~n ~span:100.0 in
  Db.create ~backend ~block:8 ~pool_blocks:8 segs

let with_server ?domains ?queue_depth ?deadline_ms db f =
  let srv =
    Server.create ?domains ?queue_depth ?deadline_ms ~db (Server.Tcp ("127.0.0.1", 0))
  in
  Server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f (Server.bound_addr srv))

let random_queries ?(n = 64) seed =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      let x = Rng.float rng 120.0 -. 10.0 in
      match Rng.int rng 4 with
      | 0 -> Vquery.line ~x
      | 1 -> Vquery.ray_up ~x ~ylo:(Rng.float rng 100.0)
      | 2 -> Vquery.ray_down ~x ~yhi:(Rng.float rng 100.0)
      | _ ->
          let y = Rng.float rng 100.0 in
          Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 40.0))

(* The acceptance criterion: a served batch is byte-identical to the
   in-process parallel engine's answer. *)
let test_loopback_parity () =
  let db = build_db () in
  with_server db (fun addr ->
      let c = Client.connect ~timeout_ms:30_000 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.ping c;
          let qs = random_queries 7 in
          let served = Client.batch c qs in
          let local = Db.parallel_query db qs ~domains:2 in
          Alcotest.(check bool) "batch complete" true served.Db.Degraded.complete;
          Alcotest.(check bool) "no faults" true (served.Db.Degraded.faults = []);
          Alcotest.(check bool) "served batch = parallel_query" true
            (served.Db.Degraded.value = local);
          let frame_of results =
            Wire.encode_response (Wire.Batch_ids { results; complete = true; faults = [] })
          in
          Alcotest.(check bool) "byte-identical encodings" true
            (frame_of served.Db.Degraded.value = frame_of local);
          (* singles and counts against the serial oracle *)
          Array.iter
            (fun q ->
              let one = Client.query c q in
              Alcotest.(check bool) "query complete" true one.Db.Degraded.complete;
              Alcotest.(check (list int)) "query ids"
                (List.sort_uniq compare (Db.query_ids db q))
                one.Db.Degraded.value;
              Alcotest.(check int) "count" (Db.count db q) (Client.count c q))
            (Array.sub qs 0 8)))

let test_stats_over_wire () =
  let db = build_db ~n:100 () in
  with_server db (fun addr ->
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let prom = Client.stats c `Prometheus in
          Alcotest.(check bool) "prometheus prefixed" true (contains prom "segdb_");
          Alcotest.(check bool) "addr label attached" true
            (contains prom "addr=\"127.0.0.1:");
          let js = Client.stats c `Json in
          Alcotest.(check bool) "json object" true
            (String.length js > 0 && js.[0] = '{')))

let test_shutdown_frame () =
  let db = build_db ~n:50 () in
  let srv = Server.create ~domains:1 ~db (Server.Tcp ("127.0.0.1", 0)) in
  Server.start srv;
  let addr = Server.bound_addr srv in
  let c = Client.connect addr in
  Client.ping c;
  Client.shutdown c;
  Client.close c;
  Server.wait srv;
  match Client.connect ~retries:0 ~backoff_ms:1 addr with
  | exception Client.Error _ -> ()
  | c2 ->
      Client.close c2;
      Alcotest.fail "server still accepting after drain"

let test_unix_socket () =
  let path = Filename.temp_file "segdb_net" ".sock" in
  Sys.remove path;
  let db = build_db ~n:50 () in
  let srv = Server.create ~domains:1 ~db (Server.Unix_path path) in
  Server.start srv;
  let c = Client.connect (Server.Unix_path path) in
  Client.ping c;
  let q = Vquery.line ~x:50.0 in
  let got = Client.query c q in
  Alcotest.(check (list int)) "ids over the unix socket"
    (List.sort_uniq compare (Db.query_ids db q))
    got.Db.Degraded.value;
  Client.shutdown c;
  Client.close c;
  Server.wait srv;
  Alcotest.(check bool) "socket path unlinked on drain" false (Sys.file_exists path)

(* ---------------- faults, backpressure, deadlines ---------------- *)

let metric name = Metrics.value (Metrics.counter Metrics.default name)

let with_obs f =
  Metrics.reset Metrics.default;
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.disable ();
      Failpoint.disarm ())
    (fun () ->
      Obs.Control.enable ();
      f ())

(* The acceptance criterion: a torn response frame kills the connection
   under the client, which retries to success; [io.retries] and
   [net.requests] reflect the replay. *)
let test_torn_write_retry () =
  with_obs @@ fun () ->
  let db = build_db ~n:200 () in
  with_server ~domains:1 db (fun addr ->
      let c = Client.connect ~retries:6 ~backoff_ms:1 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let q = Vquery.line ~x:50.0 in
          let expect = List.sort_uniq compare (Db.query_ids db q) in
          let requests0 = metric "net.requests" in
          (* hit 1 is the client's own send; hit 2 tears the server's
             response mid-frame and resets the connection *)
          Failpoint.arm ~seed:11 [ ("net.write", Failpoint.plan ~at:2 Failpoint.Torn) ];
          let got = Client.query c q in
          Failpoint.disarm ();
          Alcotest.(check (list int)) "healed answer" expect got.Db.Degraded.value;
          Alcotest.(check bool) "client retried" true (metric "net.client.retries" >= 1);
          Alcotest.(check bool) "io.retries reflects it" true (metric "io.retries" >= 1);
          Alcotest.(check bool) "server saw the request again" true
            (metric "net.requests" - requests0 >= 2)))

let test_overload_backpressure () =
  let db = build_db ~n:50 () in
  with_server ~domains:1 ~queue_depth:0 db (fun addr ->
      let c = Client.connect ~retries:0 ~backoff_ms:1 addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* ping is answered inline by the accept loop, never queued *)
          Client.ping c;
          match Client.query c (Vquery.line ~x:1.0) with
          | exception Client.Error m ->
              Alcotest.(check bool) "names the overload" true (contains m "overload")
          | _ -> Alcotest.fail "zero-depth queue accepted work"))

let test_deadline () =
  let db = build_db ~backend:`Naive ~n:100_000 () in
  with_server ~domains:1 ~deadline_ms:1 db (fun addr ->
      let port = match addr with Server.Tcp (_, p) -> p | _ -> Alcotest.fail "tcp" in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          (* a slow naive batch occupies the lone worker — its first
             query alone (immune to the deadline by design) runs for
             several ms — so the query behind it sits queued past its
             own 1ms budget and is refused without being executed *)
          let slow =
            Wire.Batch (Array.init 20 (fun i -> Vquery.line ~x:(float_of_int i /. 3.0)))
          in
          Wire.send fd (Wire.encode_request slow);
          Wire.send fd (Wire.encode_request (Wire.Query (Vquery.line ~x:1.0)));
          let read_resp () =
            match Wire.recv ~timeout:60.0 fd with
            | Result.Ok payload -> (
                match Wire.decode_response payload with
                | Result.Ok r -> r
                | Result.Error e ->
                    Alcotest.failf "decode: %s" (Wire.protocol_error_to_string e))
            | Result.Error e ->
                Alcotest.failf "recv: %s" (Wire.protocol_error_to_string e)
          in
          (match read_resp () with
          | Wire.Batch_ids _ -> ()
          | r -> Alcotest.failf "expected the batch first, got %s" (resp_name r));
          match read_resp () with
          | Wire.Error (Wire.Deadline, _) -> ()
          | r -> Alcotest.failf "expected a deadline error, got %s" (resp_name r)))

(* ---------------- the CLI reads queries from stdin ---------------- *)

let cli_exe =
  List.find_opt Sys.file_exists
    [
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/segdb_cli.exe";
      "../bin/segdb_cli.exe";
    ]

let run_lines cmd =
  let ic = Unix.open_process_in cmd in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> lines
  | _ -> Alcotest.failf "command failed: %s" cmd

let test_cli_batch_stdin () =
  match cli_exe with
  | None -> Alcotest.skip ()
  | Some exe ->
      let seg = Filename.temp_file "segdb_net" ".seg" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove seg with Sys_error _ -> ())
        (fun () ->
          let oc = open_out seg in
          output_string oc "1 0 0 10 10\n2 5 0 5 10\n3 20 0 30 10\n";
          close_out oc;
          let cmd =
            Printf.sprintf "printf '5\\n25\\n' | %s batch %s -q - --domains 1"
              (Filename.quote exe) (Filename.quote seg)
          in
          let lines = run_lines cmd in
          let hits =
            List.filter (fun l -> contains l "-> 2 segments" || contains l "-> 1 segments")
              lines
          in
          Alcotest.(check int) "two answered queries" 2 (List.length hits))

(* ---------------- HTTP monitoring endpoints ---------------- *)

let http_request addr raw =
  let sa = Server.sockaddr_of addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sa;
      let n = String.length raw in
      let rec push off =
        if off < n then push (off + Unix.write_substring fd raw off (n - off))
      in
      push 0;
      let buf = Buffer.create 512 and chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | k ->
            Buffer.add_subbytes buf chunk 0 k;
            drain ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      drain ();
      Buffer.contents buf)

let http_get addr path = http_request addr (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path)

let http_status resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> ( try int_of_string code with Failure _ -> -1)
  | _ -> -1

let with_metrics_server ?health_stall_s ?replica_of db f =
  let srv =
    Server.create ?health_stall_s ?replica_of ~domains:1 ~db (Server.Tcp ("127.0.0.1", 0))
  in
  let maddr = Server.serve_metrics srv (Server.Tcp ("127.0.0.1", 0)) in
  Server.start srv;
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv)
    (fun () -> f (Server.bound_addr srv) maddr)

let test_http_metrics_scrape () =
  with_obs @@ fun () ->
  let db = build_db ~n:100 () in
  with_metrics_server db (fun addr maddr ->
      (* move the counters so the exposition has bodies, not just types *)
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> ignore (Client.query c (Vquery.line ~x:50.0)));
      let resp = http_get maddr "/metrics" in
      Alcotest.(check int) "scrape answers 200" 200 (http_status resp);
      Alcotest.(check bool) "prometheus exposition" true (contains resp "# TYPE segdb_");
      Alcotest.(check bool) "request counter exported" true
        (contains resp "segdb_net_requests");
      (* scrape-time refresh publishes replication and pool gauges even
         though the background sampler is not running *)
      Alcotest.(check bool) "replication gauges" true (contains resp "segdb_repl_epoch");
      Alcotest.(check bool) "pool gauges" true (contains resp "segdb_exec_pool_workers");
      let hz = http_get maddr "/healthz" in
      Alcotest.(check int) "healthz 200" 200 (http_status hz);
      Alcotest.(check bool) "primary role" true (contains hz "\"role\":\"primary\"");
      Alcotest.(check bool) "epoch reported" true (contains hz "\"epoch\"");
      Alcotest.(check int) "unknown path is 404" 404 (http_status (http_get maddr "/nope")))

let test_http_healthz_stall () =
  let db = build_db ~n:50 () in
  (* a replica whose upstream is already dead never sees stream
     progress, so past the stall budget /healthz flips to 503 *)
  let dead = Server.Tcp ("127.0.0.1", 1) in
  with_metrics_server ~health_stall_s:0.05 ~replica_of:dead db (fun _addr maddr ->
      Unix.sleepf 0.3;
      let hz = http_get maddr "/healthz" in
      Alcotest.(check int) "stalled replica answers 503" 503 (http_status hz);
      Alcotest.(check bool) "names the stall" true (contains hz "\"status\":\"stalled\"");
      Alcotest.(check bool) "replica role" true (contains hz "\"role\":\"replica\""))

let test_http_malformed_request () =
  let db = build_db ~n:50 () in
  with_metrics_server db (fun _addr maddr ->
      let bad = http_request maddr "BOGUS\r\n\r\n" in
      Alcotest.(check int) "garbage request answers 400" 400 (http_status bad);
      let post = http_request maddr "POST /metrics HTTP/1.0\r\n\r\n" in
      Alcotest.(check int) "non-GET answers 405" 405 (http_status post);
      (* neither killed the accept loop *)
      Alcotest.(check int) "still serving afterwards" 200
        (http_status (http_get maddr "/healthz")))

let test_stats_obs_off_note () =
  let was = Obs.Control.enabled () in
  Obs.Control.disable ();
  Fun.protect
    ~finally:(fun () -> if was then Obs.Control.enable ())
    (fun () ->
      let db = build_db ~n:50 () in
      with_server ~domains:1 db (fun addr ->
          let c = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let txt = Client.stats c `Text in
              Alcotest.(check bool) "wire stats carry the disabled note" true
                (contains txt "observability disabled"))))

let suite =
  ( "net",
    [
      qtest prop_request_roundtrip;
      qtest prop_response_roundtrip;
      qtest prop_decode_total;
      Alcotest.test_case "negative frames decode to typed errors" `Quick
        test_negative_frames;
      Alcotest.test_case "send/recv over a socketpair" `Quick test_send_recv_roundtrip;
      Alcotest.test_case "recv: truncated streams" `Quick test_recv_truncated;
      Alcotest.test_case "recv: timeout" `Quick test_recv_timeout;
      Alcotest.test_case "addr_of_string" `Quick test_addr_of_string;
      Alcotest.test_case "loopback parity with the in-process engine" `Quick
        test_loopback_parity;
      Alcotest.test_case "stats frame over the wire" `Quick test_stats_over_wire;
      Alcotest.test_case "shutdown frame drains the server" `Quick test_shutdown_frame;
      Alcotest.test_case "unix-domain socket serving" `Quick test_unix_socket;
      Alcotest.test_case "torn response heals via client retry" `Quick
        test_torn_write_retry;
      Alcotest.test_case "zero-depth queue answers overloaded" `Quick
        test_overload_backpressure;
      Alcotest.test_case "queued past the deadline" `Quick test_deadline;
      Alcotest.test_case "cli batch reads queries from stdin" `Quick test_cli_batch_stdin;
      Alcotest.test_case "http: /metrics scrape + /healthz" `Quick test_http_metrics_scrape;
      Alcotest.test_case "http: stalled replica healthz 503" `Quick test_http_healthz_stall;
      Alcotest.test_case "http: malformed request answers 400" `Quick
        test_http_malformed_request;
      Alcotest.test_case "stats with obs off carries a note" `Quick test_stats_obs_off_note;
    ] )
