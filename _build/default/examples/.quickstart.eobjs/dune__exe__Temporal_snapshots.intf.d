examples/temporal_snapshots.mli:
