lib/util/table.mli:
