open Segdb_io
open Segdb_geom

(* Overlay keys: inserted fragments keyed by their crossing of the
   G-node's reference boundary; the full segment rides along so
   predicate searches can evaluate geometry at the query abscissa. *)
module Okey = struct
  type t = { ykey : float; seg : Segment.t }

  (* must agree with [cmp_at] below: slope breaks ties of fragments
     touching at the reference line *)
  let compare a b =
    let c = compare a.ykey b.ykey in
    if c <> 0 then c
    else
      let c = compare (Segment.slope a.seg) (Segment.slope b.seg) in
      if c <> 0 then c else compare a.seg.Segment.id b.seg.Segment.id
end

module Obt = Segdb_btree.Bplus_tree.Make (Okey) (struct
  type t = unit
end)

type entry = {
  frag : Segment.t;
  land_left : Packed_list.pos option;
      (* physical position of this entry's successor in the left child's
         list (first child entry >= this one); None when the child list
         is empty. O(1) access — the fractional cascading bridge. *)
  land_right : Packed_list.pos option;
}

module Plist = Packed_list.Make (struct
  type t = entry
end)

type gnode = {
  glo : int; (* gap range covered by this node *)
  ghi : int;
  mutable list : Plist.t;
  mutable overlay : Obt.t option; (* inserted-since-rebuild fragments *)
  left : gnode option;
  right : gnode option;
}

type t = {
  boundaries : float array;
  pool : Block_store.Pool.t;
  io : Io_stats.t;
  list_block : int;
  mutable root : gnode option;
  mutable static_size : int; (* fragments in the packed lists *)
  mutable overlay_size : int; (* fragments inserted since last rebuild *)
  tombstones : (int, unit) Hashtbl.t; (* deleted fragment ids awaiting a rebuild *)
  cascade : bool;
  (* query-path diagnostics: atomic because queries — the only writers
     of these counters — may run from several domains at once *)
  guided : int Atomic.t;
  fallback : int Atomic.t;
}

(* Vertical order of fragments along the line [x = line]: both fragments
   must span it. Fragments touching at the line itself are ordered by
   slope — at any abscissa right of the line that is their true
   vertical order (all reference lines are left span boundaries, so
   queries never fall left of them); ids make the order total. *)
let cmp_at line (a : Segment.t) (b : Segment.t) =
  let c = compare (Segment.y_at a line) (Segment.y_at b line) in
  if c <> 0 then c
  else
    let c = compare (Segment.slope a) (Segment.slope b) in
    if c <> 0 then c else compare a.Segment.id b.Segment.id

let lower_bound arr cmp_v =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_v arr.(mid) > 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let boundary_index boundaries x =
  let lo = ref 0 and hi = ref (Array.length boundaries - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if boundaries.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if boundaries.(!lo) = x then !lo
  else invalid_arg "Slab_segment_tree: fragment endpoint is not on a boundary"

(* mutable skeleton used during construction *)
type proto = {
  pglo : int;
  pghi : int;
  mutable bucket : Segment.t list;
  pleft : proto option;
  pright : proto option;
}

let rec mk_proto glo ghi =
  if glo = ghi then { pglo = glo; pghi = ghi; bucket = []; pleft = None; pright = None }
  else begin
    let mid = (glo + ghi) / 2 in
    {
      pglo = glo;
      pghi = ghi;
      bucket = [];
      pleft = Some (mk_proto glo mid);
      pright = Some (mk_proto (mid + 1) ghi);
    }
  end

(* Standard segment tree allocation: [a, b] is the fragment's gap range. *)
let rec assign proto a b frag =
  if a <= proto.pglo && proto.pghi <= b then proto.bucket <- frag :: proto.bucket
  else begin
    (match proto.pleft with
    | Some l when a <= l.pghi -> assign l a b frag
    | _ -> ());
    match proto.pright with
    | Some r when b >= r.pglo -> assign r a b frag
    | _ -> ()
  end

let construct ~pool ~stats ~list_block ~boundaries frags =
  let nb = Array.length boundaries in
  let proto = mk_proto 0 (nb - 2) in
  Array.iter
    (fun (f : Segment.t) ->
      let a = boundary_index boundaries f.Segment.x1
      and b = boundary_index boundaries f.Segment.x2 in
      if a >= b then invalid_arg "Slab_segment_tree.build: fragment spans no gap";
      assign proto a (b - 1) f)
    frags;
  (* Finalize bottom-up: sort each bucket at the node's reference line,
     then compute exact landings into the children's sorted arrays. *)
  let rec finalize proto : gnode * Segment.t array =
    let left = Option.map finalize proto.pleft in
    let right = Option.map finalize proto.pright in
    let line = boundaries.(proto.pglo) in
    let sorted = Array.of_list proto.bucket in
    Array.sort (cmp_at line) sorted;
    let landing side_arr_opt (f : Segment.t) =
      match side_arr_opt with
      | None -> None
      | Some (child, arr) ->
          if Array.length arr = 0 then None
          else begin
            let child_line = boundaries.(child.glo) in
            let idx = lower_bound arr (fun g -> cmp_at child_line f g) in
            Some (Plist.pos_of child.list idx)
          end
    in
    let entries =
      Array.map
        (fun f ->
          { frag = f; land_left = landing left f; land_right = landing right f })
        sorted
    in
    let list = Plist.build ~block_capacity:list_block ~pool ~stats entries in
    let node =
      {
        glo = proto.pglo;
        ghi = proto.pghi;
        list;
        overlay = None;
        left = Option.map fst left;
        right = Option.map fst right;
      }
    in
    (node, sorted)
  in
  let root, _ = finalize proto in
  root

let build ?(cascade = true) ?(list_block = 64) ~pool ~stats ~boundaries frags =
  let nb = Array.length boundaries in
  if nb < 2 then invalid_arg "Slab_segment_tree.build: need at least 2 boundaries";
  for i = 1 to nb - 1 do
    if boundaries.(i - 1) >= boundaries.(i) then
      invalid_arg "Slab_segment_tree.build: boundaries must be strictly increasing"
  done;
  let root = construct ~pool ~stats ~list_block ~boundaries frags in
  {
    boundaries;
    pool;
    io = stats;
    list_block;
    root = Some root;
    static_size = Array.length frags;
    overlay_size = 0;
    tombstones = Hashtbl.create 16;
    cascade;
    guided = Atomic.make 0;
    fallback = Atomic.make 0;
  }

let size t = t.static_size + t.overlay_size - Hashtbl.length t.tombstones

let rec stored_rec node =
  Plist.length node.list
  + (match node.overlay with Some o -> Obt.size o | None -> 0)
  + (match node.left with Some l -> stored_rec l | None -> 0)
  + match node.right with Some r -> stored_rec r | None -> 0

let stored_entries t = match t.root with Some r -> stored_rec r | None -> 0

let rec blocks_rec node =
  Plist.block_count node.list
  + (match node.overlay with Some o -> Obt.block_count o | None -> 0)
  + (match node.left with Some l -> blocks_rec l | None -> 0)
  + match node.right with Some r -> blocks_rec r | None -> 0

let block_count t = match t.root with Some r -> blocks_rec r | None -> 0

let guided_levels t = Atomic.get t.guided
let fallback_searches t = Atomic.get t.fallback

(* Query descent along the path to gap [k]. [emit] receives each
   intersected fragment of each list on the path.

   Cascaded levels start from the parent's landing position — one block
   touched, no index descent: entries strictly before the landing are
   <= the parent's first match in the shared NCT order, hence <= yhi at
   [x], so the backward walk emits only reported fragments and stops at
   the first one below [ylo]; the forward walk emits until [yhi] is
   passed. Only fallback levels (no parent match) pay a list search. *)
let c_guided = Probe.counter "slab.cascade_guided"
let c_fallback = Probe.counter "slab.cascade_fallback"

let descend t ~x ~ylo ~yhi ~k ~emit =
  let y_of (e : entry) = Segment.y_at e.frag x in
  let rec go node guidance =
    let list = node.list in
    let f1 =
      if Plist.length list = 0 then None
      else begin
        let f1 = ref None in
        let accept e =
          if not (Hashtbl.mem t.tombstones e.frag.Segment.id) then emit e.frag
        in
        let forward_from pos =
          let first_fwd = ref None in
          Plist.walk_forward list pos (fun e ->
              if y_of e > yhi then `Stop
              else begin
                if !first_fwd = None then first_fwd := Some e;
                accept e;
                `Continue
              end);
          !first_fwd
        in
        (match guidance with
        | Some pos when t.cascade ->
            Atomic.incr t.guided;
            Probe.bump c_guided;
            (* matches below the landing, in decreasing order; the last
               accepted is the subtree's first match *)
            Plist.walk_backward list pos (fun e ->
                if y_of e >= ylo then begin
                  f1 := Some e;
                  accept e;
                  `Continue
                end
                else `Stop);
            let first_fwd = forward_from pos in
            if !f1 = None then f1 := first_fwd
        | _ ->
            Atomic.incr t.fallback;
            Probe.bump c_fallback;
            let idx = Plist.search list ~cmp:(fun e -> if y_of e >= ylo then 0 else -1) in
            if idx < Plist.length list then f1 := forward_from (Plist.pos_of list idx));
        !f1
      end
    in
    (match node.overlay with
    | Some ob when not (Obt.is_empty ob) ->
        Obt.iter_from_pred ob
          ~pred:(fun (k : Okey.t) -> Segment.y_at k.seg x >= ylo)
          (fun k () ->
            if Segment.y_at k.seg x > yhi then `Stop
            else begin
              if not (Hashtbl.mem t.tombstones k.seg.Segment.id) then emit k.seg;
              `Continue
            end)
    | _ -> ());
    if node.glo <> node.ghi then begin
      let mid = (node.glo + node.ghi) / 2 in
      let child, landing =
        if k <= mid then (node.left, Option.bind f1 (fun e -> e.land_left))
        else (node.right, Option.bind f1 (fun e -> e.land_right))
      in
      match child with Some c -> go c landing | None -> ()
    end
  in
  match t.root with Some r -> go r None | None -> ()

let query t ~x ~ylo ~yhi ~f =
  if ylo > yhi then invalid_arg "Slab_segment_tree.query: ylo > yhi";
  Probe.span t.io "slab.query" @@ fun () ->
  let boundaries = t.boundaries in
  let nb = Array.length boundaries in
  if nb >= 2 && x >= boundaries.(0) && x <= boundaries.(nb - 1) then begin
    (* gap index: number of boundaries < x, minus 1; exact hits on an
       interior boundary touch fragments on both sides *)
    let cnt = ref 0 in
    Array.iter (fun b -> if b < x then incr cnt) boundaries;
    let on_boundary =
      let lo = ref 0 and hi = ref (nb - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if boundaries.(mid) < x then lo := mid + 1 else hi := mid
      done;
      boundaries.(!lo) = x
    in
    let gap = if on_boundary then !cnt else !cnt - 1 in
    let k_right = max 0 (min gap (nb - 2)) in
    if on_boundary && !cnt > 0 && !cnt <= nb - 2 then begin
      (* two paths; dedupe by id *)
      let seen = Hashtbl.create 16 in
      let emit (frag : Segment.t) =
        if not (Hashtbl.mem seen frag.Segment.id) then begin
          Hashtbl.add seen frag.Segment.id ();
          f frag
        end
      in
      descend t ~x ~ylo ~yhi ~k:(!cnt - 1) ~emit;
      descend t ~x ~ylo ~yhi ~k:!cnt ~emit
    end
    else descend t ~x ~ylo ~yhi ~k:k_right ~emit:f
  end

let query_list t ~x ~ylo ~yhi =
  let acc = ref [] in
  query t ~x ~ylo ~yhi ~f:(fun s -> acc := s :: !acc);
  !acc

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let boundaries = t.boundaries in
  let total = ref 0 in
  let incr_total () = incr total in
  let rec arr_of node = Plist.to_array node.list |> Array.map (fun e -> e.frag)
  and go node =
    let entries = Plist.to_array node.list in
    total := !total + Array.length entries;
    let line = boundaries.(node.glo) in
    for i = 1 to Array.length entries - 1 do
      if cmp_at line entries.(i - 1).frag entries.(i).frag >= 0 then fail ()
    done;
    Array.iter
      (fun e ->
        (* allocated fragments span the node's whole range *)
        let a = boundary_index boundaries e.frag.Segment.x1
        and b = boundary_index boundaries e.frag.Segment.x2 in
        if not (a <= node.glo && node.ghi <= b - 1) then fail ())
      entries;
    let check_land child get_land =
      match child with
      | None -> Array.iter (fun e -> if get_land e <> None then fail ()) entries
      | Some c ->
          let carr = arr_of c in
          let cline = boundaries.(c.glo) in
          Array.iter
            (fun e ->
              let expect = lower_bound carr (fun g -> cmp_at cline e.frag g) in
              match get_land e with
              | None -> if Array.length carr > 0 then fail ()
              | Some (p : Packed_list.pos) ->
                  if p.pbase + p.poffset <> expect then fail ())
            entries
    in
    check_land node.left (fun e -> e.land_left);
    check_land node.right (fun e -> e.land_right);
    (match node.overlay with
    | Some ob ->
        Obt.iter_range ob ~lo:None ~hi:None (fun (k : Okey.t) () ->
            incr_total ();
            if k.ykey <> Segment.y_at k.seg line then fail ();
            let a = boundary_index boundaries k.seg.Segment.x1
            and b = boundary_index boundaries k.seg.Segment.x2 in
            if not (a <= node.glo && node.ghi <= b - 1) then fail ())
    | None -> ());
    (match node.left with Some l -> go l | None -> ());
    match node.right with Some r -> go r | None -> ()
  in
  (match t.root with Some r -> go r | None -> ());
  if !total <> stored_entries t then fail ();
  !ok

(* ---------------- semi-dynamic insertion ---------------- *)

let rec iter_unique_rec ?(skip = fun _ -> false) node seen f =
  ignore skip;
  iter_unique_core skip node seen f

and iter_unique_core skip node seen f =
  Plist.iter_forward node.list 0 (fun _ e ->
      let id = e.frag.Segment.id in
      if (not (Hashtbl.mem seen id)) && not (skip id) then begin
        Hashtbl.add seen id ();
        f e.frag
      end;
      `Continue);
  (match node.overlay with
  | Some ob ->
      Obt.iter_range ob ~lo:None ~hi:None (fun (k : Okey.t) () ->
          let id = k.seg.Segment.id in
          if (not (Hashtbl.mem seen id)) && not (skip id) then begin
            Hashtbl.add seen id ();
            f k.seg
          end)
  | None -> ());
  (match node.left with Some l -> iter_unique_core skip l seen f | None -> ());
  match node.right with Some r -> iter_unique_core skip r seen f | None -> ()

let iter_unique t f =
  let skip id = Hashtbl.mem t.tombstones id in
  match t.root with
  | Some r -> iter_unique_rec ~skip r (Hashtbl.create 64) f
  | None -> ()

let rec free_lists node =
  Plist.free node.list;
  (* overlay B+-trees are dropped wholesale; their handles become
     unreachable and stop being counted *)
  (match node.left with Some l -> free_lists l | None -> ());
  match node.right with Some r -> free_lists r | None -> ()

let rebuild t =
  let frags = ref [] in
  iter_unique t (fun s -> frags := s :: !frags);
  (match t.root with Some r -> free_lists r | None -> ());
  let arr = Array.of_list !frags in
  t.root <- Some (construct ~pool:t.pool ~stats:t.io ~list_block:t.list_block ~boundaries:t.boundaries arr);
  t.static_size <- Array.length arr;
  t.overlay_size <- 0;
  Hashtbl.reset t.tombstones

let insert t (f : Segment.t) =
  let a = boundary_index t.boundaries f.Segment.x1
  and b = boundary_index t.boundaries f.Segment.x2 in
  if a >= b then invalid_arg "Slab_segment_tree.insert: fragment spans no gap";
  let rec assign node =
    if a <= node.glo && node.ghi <= b - 1 then begin
      let ob =
        match node.overlay with
        | Some ob -> ob
        | None ->
            let ob = Obt.create ~fanout:(max 4 t.list_block) ~pool:t.pool ~stats:t.io () in
            node.overlay <- Some ob;
            ob
      in
      Obt.insert ob { Okey.ykey = Segment.y_at f t.boundaries.(node.glo); seg = f } ()
    end
    else begin
      (match node.left with Some l when a <= l.ghi -> assign l | _ -> ());
      match node.right with Some r when b - 1 >= r.glo -> assign r | _ -> ()
    end
  in
  (match t.root with Some r -> assign r | None -> ());
  t.overlay_size <- t.overlay_size + 1;
  (* doubling rebuild folds the overlay into the cascaded static lists *)
  if t.overlay_size + Hashtbl.length t.tombstones > max (2 * t.list_block) t.static_size then
    rebuild t

let overlay_size t = t.overlay_size

let delete t (f : Segment.t) =
  (* The caller (Solution 2) guarantees the fragment is stored; lazy
     tombstoning keeps the packed lists untouched until the next
     doubling rebuild. *)
  if Hashtbl.mem t.tombstones f.Segment.id then false
  else begin
    Hashtbl.add t.tombstones f.Segment.id ();
    if Hashtbl.length t.tombstones + t.overlay_size > max (2 * t.list_block) t.static_size
    then rebuild t;
    true
  end
