lib/internal/internal_pst.ml: Array Lseg Segdb_geom
