(* Background registry sampler: bounded ring of snapshots, per-interval
   rates, runtime gauges, pluggable higher-layer sources.

   Concurrency: one mutex guards the ring, the rate table and the
   source list; [armed] is the single atomic the disarmed path touches.
   The background domain is the only writer of the ring in production,
   but [tick] is also callable directly (tests, one-shot tools), so
   everything stays lock-disciplined rather than owner-disciplined. *)

type sample = {
  at_ns : int;
  counters : (string * int) list;
  gauges : (string * int) list;
  hists : (string * int array) list;
}

let m = Mutex.create ()
let locked f =
  Mutex.lock m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock m)

let armed = Atomic.make false
let stop_flag = Atomic.make false
let runner : unit Domain.t option ref = ref None
let interval_ms_ = ref 1000
let capacity = ref 120
let watched = ref [ "exec.request.ns"; "net.request.ns" ]
let ring : sample list ref = ref [] (* newest first *)
let rates_ : (string * float) list ref = ref []
let sources : (string * (unit -> (string * int) list)) list ref = ref []

let running () = Atomic.get armed
let interval_ms () = locked (fun () -> !interval_ms_)
let samples () = locked (fun () -> List.rev !ring)
let rates () = locked (fun () -> !rates_)

let register_source name f =
  locked (fun () -> sources := (name, f) :: List.remove_assoc name !sources)

let unregister_source name =
  locked (fun () -> sources := List.remove_assoc name !sources)

let set_capacity n =
  locked (fun () ->
      capacity := max 2 n;
      let rec take k = function
        | x :: tl when k > 0 -> x :: take (k - 1) tl
        | _ -> []
      in
      ring := take !capacity !ring)

let set_watched names = locked (fun () -> watched := names)

(* ---------------- gauge providers ---------------- *)

let g name v = Metrics.set_gauge (Metrics.gauge Metrics.default name) v

let runtime_gauges () =
  let st = Gc.quick_stat () in
  g "runtime.heap_words" st.Gc.heap_words;
  g "runtime.minor_collections" st.Gc.minor_collections;
  g "runtime.major_collections" st.Gc.major_collections;
  g "runtime.compactions" st.Gc.compactions;
  match Sys.readdir "/proc/self/fd" with
  | entries -> g "runtime.open_fds" (Array.length entries)
  | exception Sys_error _ -> ()

let refresh_gauges () =
  runtime_gauges ();
  let srcs = locked (fun () -> !sources) in
  List.iter
    (fun (_, f) ->
      match f () with
      | gauges -> List.iter (fun (n, v) -> g n v) gauges
      | exception _ -> () (* a broken source must not kill the sampler *))
    srcs

(* ---------------- windowed percentiles ---------------- *)

(* p-th percentile out of a raw bucket-count array (the diff of two
   cumulative snapshots): walk to the landing bucket, interpolate
   linearly inside it. Bucket 0's nominal lower bound is min_int;
   clamp it to 0 — samples are non-negative by construction. *)
let percentile_of_buckets b p =
  let total = Array.fold_left ( + ) 0 b in
  if total = 0 then None
  else begin
    let rank = p *. float_of_int total in
    let acc = ref 0.0 and res = ref None and i = ref 0 in
    while !res = None && !i < Array.length b do
      let c = b.(!i) in
      if c > 0 then begin
        let next = !acc +. float_of_int c in
        if next >= rank then begin
          let lo, hi = Histogram.bucket_bounds !i in
          let lo = if !i = 0 then 0 else lo in
          let frac = (rank -. !acc) /. float_of_int c in
          res := Some (float_of_int lo +. (frac *. float_of_int (hi - lo)))
        end
        else acc := next
      end;
      incr i
    done;
    !res
  end

let diff_buckets newer older =
  Array.init (Array.length newer) (fun i ->
      let o = if i < Array.length older then older.(i) else 0 in
      max 0 (newer.(i) - o))

(* window = newest ring entry minus oldest that carries the histogram *)
let window_buckets name =
  locked (fun () ->
      match !ring with
      | [] -> None
      | newest :: rest -> (
          match List.assoc_opt name newest.hists with
          | None -> None
          | Some nb ->
              let oldest =
                List.fold_left
                  (fun acc s ->
                    match List.assoc_opt name s.hists with Some b -> Some b | None -> acc)
                  None rest
              in
              Some (match oldest with Some ob -> diff_buckets nb ob | None -> nb)))

let window_p99 name =
  match window_buckets name with
  | None -> None
  | Some b -> percentile_of_buckets b 0.99

(* ---------------- the tick ---------------- *)

let tick ?now_ns () =
  let now = match now_ns with Some n -> n | None -> Trace.now_ns () in
  refresh_gauges ();
  let reg = Metrics.default in
  let counters = Metrics.counters reg in
  let gauges = Metrics.gauges reg in
  let watched_now = locked (fun () -> !watched) in
  let hists =
    List.filter_map
      (fun name ->
        match Metrics.histogram reg name with
        | Some h -> Some (name, Histogram.buckets h)
        | None -> None)
      watched_now
  in
  let fresh_rates =
    locked (fun () ->
        let prev = match !ring with s :: _ -> Some s | [] -> None in
        ring := { at_ns = now; counters; gauges; hists } :: !ring;
        let rec take k = function
          | x :: tl when k > 0 -> x :: take (k - 1) tl
          | _ -> []
        in
        ring := take !capacity !ring;
        (match prev with
        | Some p when now > p.at_ns ->
            let dt = float_of_int (now - p.at_ns) /. 1e9 in
            rates_ :=
              List.map
                (fun (name, v) ->
                  let d =
                    match List.assoc_opt name p.counters with
                    | Some pv -> v - pv
                    | None -> v
                  in
                  (* a counter that moved backwards was reset; a
                     negative rate would be a lie — clamp to zero *)
                  (name, if d < 0 then 0.0 else float_of_int d /. dt))
                counters
        | _ -> ());
        !rates_)
  in
  (* publish back into the registry so every exporter carries the rate
     and window families without knowing about the sampler *)
  List.iter
    (fun (name, r) -> g ("rate." ^ name ^ ".per_s") (int_of_float (r +. 0.5)))
    fresh_rates;
  List.iter
    (fun name ->
      match window_p99 name with
      | Some p -> g ("window." ^ name ^ ".p99") (int_of_float p)
      | None -> ())
    watched_now

(* ---------------- the background domain ---------------- *)

let loop () =
  while not (Atomic.get stop_flag) do
    tick ();
    (* sleep in short slices so stop is honoured promptly *)
    let left = ref (float_of_int !interval_ms_ /. 1e3) in
    while !left > 0.0 && not (Atomic.get stop_flag) do
      let slice = Float.min 0.05 !left in
      Unix.sleepf slice;
      left := !left -. slice
    done
  done

let start ?(interval_ms = 1000) () =
  let spawn =
    locked (fun () ->
        if !runner <> None then false
        else begin
          interval_ms_ := max 1 interval_ms;
          Atomic.set stop_flag false;
          true
        end)
  in
  if spawn then begin
    let d = Domain.spawn loop in
    locked (fun () -> runner := Some d);
    Atomic.set armed true
  end

let stop () =
  Atomic.set stop_flag true;
  let d = locked (fun () -> let d = !runner in runner := None; d) in
  (match d with Some d -> Domain.join d | None -> ());
  Atomic.set armed false

(* ---------------- /varz ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let varz_json () =
  let ring_now, rates_now, iv = locked (fun () -> (List.rev !ring, !rates_, !interval_ms_)) in
  let b = Buffer.create 4096 in
  let kvs pairs =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" (json_escape k) v))
      pairs;
    Buffer.add_char b '}'
  in
  Buffer.add_string b
    (Printf.sprintf "{\"running\":%b,\"interval_ms\":%d,\"samples\":[" (running ()) iv);
  List.iteri
    (fun i (s : sample) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"at_ns\":%d,\"counters\":" s.at_ns);
      kvs (List.map (fun (k, v) -> (k, string_of_int v)) s.counters);
      Buffer.add_string b ",\"gauges\":";
      kvs (List.map (fun (k, v) -> (k, string_of_int v)) s.gauges);
      Buffer.add_char b '}')
    ring_now;
  Buffer.add_string b "],\"rates_per_s\":";
  kvs (List.map (fun (k, v) -> (k, Printf.sprintf "%.3f" v)) rates_now);
  Buffer.add_string b ",\"window_p99\":";
  kvs
    (List.filter_map
       (fun name ->
         match window_p99 name with
         | Some p -> Some (name, Printf.sprintf "%.0f" p)
         | None -> None)
       (locked (fun () -> !watched)));
  Buffer.add_string b "}\n";
  Buffer.contents b
