(** The master switch of the observability subsystem.

    Probe sites throughout the I/O stack ({!Block_store}, {!File_store},
    the PSTs, interval trees, slab segment trees, the WAL, snapshots)
    check [enabled ()] before touching any metric or trace state. The
    default is off: a disabled probe costs one atomic load and nothing
    else, so query paths run at their uninstrumented speed. *)

val enabled : unit -> bool
(** One atomic load; [false] by default. *)

val enable : unit -> unit
val disable : unit -> unit

val with_enabled : (unit -> 'a) -> 'a
(** Runs [f] with observability on, restoring the previous state after
    (also on exceptions). *)

val configure_from_env : unit -> unit
(** Honour [SEGDB_OBS]: ["1"]/["true"]/["on"] enables, ["0"]/["false"]/
    ["off"] disables {e and} marks the subsystem force-disabled (see
    {!forced_off}); unset or unrecognized leaves the default. *)

val forced_off : unit -> bool
(** [true] after [SEGDB_OBS=0]: entry points that would enable
    observability by default (serving, local stats) must respect the
    operator's veto and stay off. *)
