lib/geom/bbox.mli: Format Segment Vquery
