open Segdb_io
open Segdb_geom

(** The segment database: the user-facing facade.

    A [Segdb.t] stores a set of NCT plane segments under one of the
    index backends and answers generalized vertical-segment queries
    ({!Vquery.t}). Fixed-slope (non-vertical) query families are
    supported by rotating the database with {!Transform} before
    indexing — see [examples/sloped_queries.ml].

    {[
      let db =
        Segdb.create ~backend:`Solution2
          [| Segment.make ~id:0 (0., 0.) (4., 2.); ... |]
      in
      let hits = Segdb.query db (Vquery.segment ~x:1.0 ~ylo:0.0 ~yhi:5.0) in
      ...
    ]} *)

type backend =
  [ `Naive  (** block scan; the baseline floor *)
  | `Rtree  (** STR-packed R-tree; the practical comparator *)
  | `Solution1  (** the paper's linear-space two-level structure *)
  | `Solution2  (** the paper's improved structure, with cascading *)
  | `Solution2_nofc  (** Solution 2 with fractional cascading disabled *)
  ]

type t

val create :
  ?backend:backend ->
  ?block:int ->
  ?pool_blocks:int ->
  Segment.t array ->
  t
(** Builds an index over the segments (default backend [`Solution2],
    block size 64, buffer pool 64 blocks). Ids must be distinct; use
    {!of_segments} to assign them. *)

val of_segments : ?backend:backend -> ?block:int -> ?pool_blocks:int -> (float * float) list list -> t
(** Convenience: each element is a polyline (list of points) whose
    consecutive point pairs become segments; ids are assigned
    sequentially. The caller is responsible for the NCT property. *)

val insert : t -> Segment.t -> unit
(** Semi-dynamic insertion; the new segment must not cross stored ones
    (NCT) for complexity guarantees, though answers remain exact for
    touching-only violations. With a WAL attached the record is made
    durable {e before} the index is touched. Raises [Invalid_argument]
    if a segment with the same id is already stored — uniformly across
    backends, so replayed and replicated records stay idempotent. *)

val delete : t -> Segment.t -> bool
(** Removes the segment (matched by id and geometry); amortized
    logarithmic via local removal plus periodic rebuilds. Logged like
    {!insert} when a WAL is attached. *)

val generation : t -> int
(** Monotone counter bumped by every structural mutation ({!insert},
    effective {!delete}, WAL replay). Long-lived readers — e.g. the
    execution engine's per-domain cached readers — compare it against
    the value captured at reader creation to detect that their private
    block shard may hold stale pages and must be rebuilt. *)

val query : t -> Vquery.t -> Segment.t list
val query_iter : t -> Vquery.t -> f:(Segment.t -> unit) -> unit
val query_ids : t -> Vquery.t -> int list
val count : t -> Vquery.t -> int

(** {1 Degraded results}

    A result that may be partial: what was collected before a fault,
    an explicit completeness flag, and the faults hit. The typed
    channel lets a caller serve what survives a quarantined page or a
    failing device instead of turning one bad block into a failed
    request. *)
module Degraded : sig
  type 'a t = {
    value : 'a;  (** everything collected before the first fault *)
    complete : bool;  (** [true] iff [faults = []]: the answer is exact *)
    faults : string list;
  }

  val ok : 'a -> 'a t
  val partial : 'a -> string list -> 'a t
  val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
end

val query_safe : t -> Vquery.t -> Segment.t list Degraded.t
(** {!query}, catching storage faults ([File_store.Corrupt_store],
    undecodable blocks, [Unix] errors that survived the retry policy)
    into a {!Degraded.t} instead of raising. Injected crashes
    ([Failpoint.Injected_crash]) still propagate — they model process
    death, not a servable fault. *)

val size : t -> int
val block_count : t -> int

val iter_all : t -> f:(Segment.t -> unit) -> unit
(** Every stored segment once, in unspecified order. *)

val segments : t -> Segment.t array
(** Every stored segment, sorted by id — what {!save} persists. *)

val io : t -> Io_stats.t
(** The index's I/O counter (shared by all its sub-structures). *)

(** {1 Parallel read path}

    Queries never mutate the index, and with a {!reader} they do not
    touch shared mutable state either: each reader owns its I/O counter
    and LRU shard, so any number of domains may query one database
    concurrently. The contract is reader/writer: [insert], [delete] and
    [checkpoint] require exclusive access (no concurrent readers); the
    query family is freely shareable between writes. Mutating under an
    installed reader raises [Invalid_argument]. *)

type reader = Vs_index.reader

val reader : ?cache_blocks:int -> t -> reader
(** A fresh read context for this database. [cache_blocks] sizes the
    reader's private LRU shard (default: the shared pool's capacity).
    Readers are cheap; use one per domain, never share one across
    databases. *)

val reader_io : reader -> Io_stats.t
(** The reader's own counter — cold misses this reader paid; its
    [writes] and [allocs] stay zero by construction. *)

val with_reader : reader -> (unit -> 'a) -> 'a
(** Installs the reader on the current domain for the duration of the
    callback; any [Segdb] query API used inside runs through it. *)

val query_ids_r : t -> reader -> Vquery.t -> int list
(** {!query_ids} through a reader: identical answer, I/O charged to the
    reader, shared state untouched. *)

val query_iter_r : t -> reader -> Vquery.t -> f:(Segment.t -> unit) -> unit

val count_r : t -> reader -> Vquery.t -> int

val parallel_query :
  ?readers:reader array -> t -> Vquery.t array -> domains:int -> int list array
(** [parallel_query t qs ~domains] answers the whole batch, fanning the
    queries across up to [domains] worker domains (the calling domain
    is one of them; [domains = 1] is the serial loop, run inline with
    zero queueing). Element [i] of the result is exactly
    [query_ids t qs.(i)] — sorted ids. Workers pull queries off a
    shared cursor, so skewed batches self-balance. Each worker uses its
    own fresh reader unless [readers] supplies one per domain (useful
    to keep shards warm across batches or to inspect per-worker I/O).
    No writer may run concurrently.

    When [Segdb_exec.Exec] is linked (see {!set_batch_engine}), the
    fan-out runs on its persistent worker pool — no domain is spawned
    per call; otherwise it falls back to {!parallel_query_spawning}. *)

val parallel_query_spawning :
  ?readers:reader array -> t -> Vquery.t array -> domains:int -> int list array
(** The legacy executor: identical answers, but [domains - 1] fresh
    domains are spawned (and joined) on every call. Kept as the
    fallback when no execution engine is linked and as the baseline the
    bench suite compares the persistent pool against. *)

type worker_stats = {
  worker : int;
  queries : int;  (** queries this domain answered *)
  reads : int;  (** cold block reads charged to its reader *)
  cache_hits : int;  (** lookups served by the reader's own shard *)
  cache_misses : int;
}

val pp_worker_stats : Format.formatter -> worker_stats -> unit

val parallel_query_stats :
  ?readers:reader array ->
  t ->
  Vquery.t array ->
  domains:int ->
  int list array * worker_stats array
(** {!parallel_query} plus per-worker accounting: how many queries each
    domain served and what it paid in cold reads and reader-shard
    hits/misses (deltas over the batch, so passed-in readers may be
    reused). When {!Segdb_obs.Control.enabled}, each worker additionally
    records its query latencies and merges them into
    [Segdb_obs.Metrics.default] under ["parallel.query.ns"]. *)

type batch_engine =
  ?readers:reader array ->
  t ->
  Vquery.t array ->
  domains:int ->
  int list array * worker_stats array
(** What a pluggable batch executor provides: answers plus per-worker
    accounting for an already-validated batch ([domains >= 2], readers
    arity checked). The [worker_stats] array has [domains] entries;
    entries for slots the engine did not need (its pool was smaller
    than [domains - 1]) report zero queries. *)

val set_batch_engine : batch_engine -> unit
(** Installs the engine behind {!parallel_query} /
    {!parallel_query_stats}. Called once, at module initialization, by
    [Segdb_exec.Exec] — the inversion that lets the engine depend on
    this module while every [Segdb] entry point routes through the
    engine's persistent domain pool. Not meant for application code. *)

val backend : t -> backend
val backend_name : t -> string

val backend_of_string : string -> backend option
val all_backends : (string * backend) list

(** {1 Persistence}

    A snapshot (see {!Snapshot} for the file format) holds the segment
    set plus, by default, a marshaled image of the live index. Opening
    a snapshot written by the same executable restores the image —
    no rebuild, cold buffer pool, so the first queries measure the
    paper's cold-open cost; any other reader falls back to rebuilding
    from the segment section and answers identically.

    A write-ahead log makes [insert]/[delete] durable between
    snapshots: each operation is appended (and fsynced, by default) to
    the log before the index is touched, and {!attach_wal} replays the
    log's intact prefix — acknowledged operations survive a crash, torn
    tails are truncated. {!checkpoint} snapshots and then empties the
    log. *)

val save : ?image:bool -> t -> string -> unit
(** Writes a snapshot atomically (temp file + rename). [image:false]
    omits the marshaled index — smaller and binary-independent, at the
    cost of a rebuild on open. *)

val open_db : ?use_image:bool -> string -> t
(** Reopens a snapshot; [use_image:false] forces the rebuild path.
    Raises {!Snapshot.Corrupt_snapshot} on a damaged file. *)

type open_mode = Restored_image | Rebuilt

val open_db_mode : ?use_image:bool -> string -> t * open_mode
(** Like {!open_db}, also reporting which path was taken. *)

val attach_wal : ?sync:bool -> t -> string -> int
(** Opens (creating if absent) the WAL at the path, truncates a torn
    tail, replays the surviving records into the index, and attaches the
    log so subsequent [insert]/[delete] are logged. Returns the number
    of records replayed. [sync] (default true) fsyncs every append. *)

type op = Op_insert of Segment.t | Op_delete of Segment.t
(** A WAL record, decoded. *)

val scan_wal : string -> op list * int
(** The decoded operations in the log's valid prefix, plus how many
    intact-but-undecodable records were skipped — without opening the
    log for append, truncating its tail, or touching any index. Backs
    [recover --dry-run] and [repair]. *)

val apply_wal_ops : t -> op list -> unit
(** Replays decoded operations into the index, idempotently (an
    already-present insert or already-absent delete is a no-op), and
    without logging them anywhere. *)

val pp_op : Format.formatter -> op -> unit

val encode_op : op -> string
(** The exact WAL/replication record bytes for [op] — what {!insert}
    appends to an attached log and what the replication stream ships. *)

val decode_op : string -> op option
(** Inverse of {!encode_op}; [None] on an undecodable record. *)

val commit : t -> op -> bool
(** [insert]/[delete] with replay semantics: the op is logged to the
    attached WAL (if any) and announced to the commit hook like a local
    mutation, but applied {e idempotently} — an insert whose id is
    already present or a delete that misses is a no-op instead of an
    error. Returns whether the index changed. This is the write path
    for operations that may be retried or replayed (the server's wire
    writes, a replica applying its upstream's stream). *)

val set_commit_hook : t -> (op -> unit) option -> unit
(** Installs (or clears) a hook observing every committed mutation —
    local {!insert}/{!delete} and replayed {!commit}s alike — invoked
    right after the record is logged, before it is applied, on the
    mutating domain. The replication stream taps the WAL's total order
    through this. WAL replay on {!attach_wal} does {e not} notify (the
    hook is installed on an already-recovered database). At most one
    hook; installing replaces the previous one. *)

val wal_path : t -> string option
val detach_wal : t -> unit

val checkpoint : ?image:bool -> t -> string -> unit
(** {!save}, then truncate the attached WAL (if any): the snapshot now
    carries everything the log did. *)

val validate : ?queries:int -> ?seed:int -> t -> string list
(** Deep integrity check, findings reported rather than raised: id
    uniqueness, the NCT precondition (plane sweep over the stored
    set), the backend's structural invariants (PST heap and x-order,
    interval-tree containment, the cascade's d-property — whatever the
    backend defines), and, when [queries > 0], that many seeded random
    queries cross-checked against a freshly built naive index. [[]]
    means the database is sound. *)

(** {1 Fixed-slope query families}

    The paper's footnote: non-vertical query directions reduce to the
    vertical case by rotating the coordinate axes. [Sloped] owns that
    reduction: it rotates the database once at build time and rotates
    each query segment on the fly. *)

module Sloped : sig
  type db := t
  type t

  val create :
    ?backend:backend -> ?block:int -> ?pool_blocks:int -> slope:float -> Segment.t array -> t
  (** Indexes the segments for query segments of slope [slope]. *)

  val query : t -> p1:float * float -> p2:float * float -> Segment.t list
  (** [p1]-[p2] must lie on a line of slope [slope] (up to float noise);
      answers are the original (unrotated) segments. *)

  val count : t -> p1:float * float -> p2:float * float -> int
  val db : t -> db
  (** The underlying rotated database (for stats). *)
end
