(** Deterministic pseudo-random number generator (SplitMix64).

    Every workload generator and every property-based test in the repository
    draws randomness through this module so that experiment tables and
    failures are reproducible from a seed alone. *)

type t

val create : int -> t
(** [create seed] returns a generator deterministically derived from
    [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
