lib/segtree/packed_list.ml: Array Block_store List Segdb_io
