(** External merge sort in the I/O model.

    The classical EM sorting bound O((n/B) log_{M/B} (n/B)) is the
    construction-cost floor for every bulk-loaded structure in this
    repository (the paper's builds implicitly sort endpoints). This
    module runs the textbook algorithm against the simulated disk so
    the cost is *measured*, not assumed: input blocks are written out,
    runs of [memory_blocks] blocks are formed in the workspace, and
    (memory_blocks - 1)-way merge passes stream blocks through it.

    Experiment E16 validates the pass structure; index builds quote it
    as their sorting component. *)

module Make (E : sig
  type t

  val compare : t -> t -> int
end) : sig
  val sort :
    pool:Block_store.Pool.t ->
    stats:Io_stats.t ->
    ?block:int ->
    ?memory_blocks:int ->
    E.t array ->
    E.t array
  (** [block] items per block (default 64); [memory_blocks] workspace
      blocks (default 8, so 7-way merges). The sort is stable. Raises
      [Invalid_argument] if [memory_blocks < 3]. *)

  val passes : block:int -> memory_blocks:int -> int -> int
  (** Predicted number of merge passes for [n] items — the
      log_{M/B}(n/M) term; for tests and E16. *)
end
