lib/experiments/e13_find_frontier.ml: Block_store Harness Io_stats List Lseg Rng Segdb_geom Segdb_io Segdb_pst Segdb_util Segdb_workload Stats Table
