(** The serving layer: a TCP / Unix-domain socket server over one
    database.

    Architecture: one {e accept loop} (the domain that calls {!run})
    multiplexes the listen socket and every live connection with
    [select], peels complete frames off per-connection buffers, and
    submits query-bearing requests to a {!Segdb_exec.Exec} pool — the
    same execution engine behind [Segdb.parallel_query] and the CLI.
    The server owns {e no} worker domains, request queue, or deadline
    bookkeeping of its own: admission control, per-worker readers,
    deadline propagation and cancellation all live in the engine; the
    completion callback writes the response from whichever worker
    domain served the request.

    Backpressure is explicit: when the engine's queue is full the
    request is answered [Error Overloaded] immediately instead of
    buffering without bound. Each request carries a deadline from the
    moment it is submitted; one still queued past its budget is
    answered [Error Deadline] without being executed, and one that
    expires mid-batch returns the partial answers it earned (an
    admitted request always completes at least its first query). A
    [Shutdown] frame (or {!stop}, which is what the SIGTERM handler of
    [segdb_server] calls) drains gracefully: accepting stops, admitted
    requests are answered, the pool is shut down, then every connection
    is closed and {!run} returns.

    Instrumentation (under {!Segdb_obs.Control.enabled}): [net.requests],
    [net.bytes_in], [net.bytes_out] counters and the [net.request.ns]
    histogram from this layer, plus the engine's [exec.queue_depth]
    gauge, [exec.request.ns] histogram and [exec.deadline_exceeded] /
    [exec.cancelled] counters — all served over the wire by the
    [Stats] frame. *)

module Db := Segdb_core.Segdb
module Exec := Segdb_exec.Exec

type addr = Tcp of string * int | Unix_path of string

val addr_of_string : string -> (addr, string) result
(** ["HOST:PORT"] or ["unix:PATH"]; a bare path containing ['/'] is
    also taken as a Unix socket. *)

val addr_to_string : addr -> string
val pp_addr : Format.formatter -> addr -> unit

val sockaddr_of : addr -> Unix.sockaddr
(** Resolve to a connectable/bindable [Unix.sockaddr] (host names via
    [getaddrinfo]; raises [Unix.Unix_error] on resolution failure). *)

type t

val create :
  ?domains:int ->
  ?queue_depth:int ->
  ?deadline_ms:int ->
  ?cache_blocks:int ->
  ?idle_timeout_s:float ->
  ?health_stall_s:float ->
  ?epoch:int ->
  ?replica_of:addr ->
  db:Db.t ->
  addr ->
  t
(** Binds and listens immediately (so {!bound_addr} is final before any
    worker starts), then creates the server's {!Segdb_exec.Exec} pool:
    [domains] worker domains (default 2, min 1), [queue_depth] bounds
    admission (default 128; 0 refuses all queued work — useful to test
    backpressure), [deadline_ms] is the per-request budget from
    submission (default 5000; 0 disables), [cache_blocks] sizes each
    worker's cached reader shard. Raises [Unix.Unix_error] if the
    address cannot be bound.

    [idle_timeout_s] (default 0 = never) reaps connections with no
    traffic and no in-flight requests for that long — a dead peer must
    not hold its slot forever; each reap is logged. Subscribed
    replicas are exempt.

    [replica_of] starts the node as a {e replica} of the primary at
    that address: a background tail subscribes from the node's applied
    LSN, applies pushed records behind the query gate (each apply
    bumps [Segdb.generation], so worker readers rebuild), and catches
    up by snapshot when it joins late or reconnects after a partition.
    A replica answers queries normally but refuses writes and
    subscriptions with [Not_primary] until a [Promote] frame turns it
    into a primary at a fenced epoch. [epoch] seeds the fencing epoch
    (default 1 for a primary, 0 for a replica).

    [health_stall_s] (default 3) is the replica staleness threshold
    behind [/healthz]: a replica whose stream has shown no sign of life
    (no applied records, and no status probe answered by the upstream)
    for longer than this answers 503. *)

val bound_addr : t -> addr
(** The actual listening address — the kernel-chosen port when the TCP
    address was given port 0. *)

val serve_metrics : t -> addr -> addr
(** Bind the monitoring exporter ({!Http}) on [addr] and serve it from
    the accept loop: [GET /metrics] (Prometheus exposition, gauges
    refreshed at scrape time), [GET /healthz] (role / epoch / LSN /
    progress / queue and pool occupancy / per-peer lag as JSON; 200
    healthy, 503 stopping or stalled replica), [GET /varz] (the
    sampler's ring as JSON). Returns the bound address (kernel-chosen
    port for TCP port 0). Call before {!run}/{!start}; raises
    [Unix.Unix_error] if the address cannot be bound. The endpoints
    answer even with observability off ([/metrics] then leads with a
    "disabled" comment) — health must not depend on metrics being on. *)

val metrics_addr : t -> addr option
(** The exporter's bound address, when {!serve_metrics} was called. *)

val pool : t -> Exec.t
(** The server's execution pool (for size / introspection). *)

val replication : t -> Replication.t
(** The node's replication stream state: role, epoch, LSN, acks. *)

val run : t -> unit
(** Serve until a [Shutdown] frame arrives or {!stop} is called; the
    calling domain becomes the accept loop. Worker domains are spawned
    on entry and joined before returning; every connection is closed
    and (for Unix sockets) the path unlinked. *)

val start : t -> unit
(** {!run} in a background domain — for in-process loopback use (tests,
    bench, the CLI's own client against itself). *)

val stop : t -> unit
(** Request a graceful drain. Async-signal-safe: only flips an atomic;
    the accept loop notices within its select tick. *)

val kill : t -> unit
(** Abrupt death, for chaos tests: stop without draining. Queued
    requests are never answered, every connection is severed
    mid-exchange, and (for Unix sockets) the path is left behind —
    what a SIGKILL would leave. Like {!stop}, only flips atomics. *)

val wait : t -> unit
(** Join a server started with {!start} (returns immediately if {!run}
    already returned). *)

val open_or_build : ?backend:Db.backend -> ?block:int -> string -> Db.t
(** Load a database for serving: a file with the snapshot magic is
    reopened via [Db.open_db], anything else is parsed as a text
    segment file and indexed with [backend]/[block] (defaults:
    [`Solution2], 64). Shared by [segdb_server] and [segdb_cli serve]. *)
