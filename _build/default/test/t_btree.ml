(* Model-based tests for the external B+-tree. *)

open Segdb_io

module B = Segdb_btree.Bplus_tree.Make (Int) (struct
  type t = string
end)

module Model = Map.Make (Int)

let qtest = QCheck_alcotest.to_alcotest

let mk ?(fanout = 8) () =
  let pool = Block_store.Pool.create ~capacity:64 in
  let io = Io_stats.create () in
  (B.create ~fanout ~pool ~stats:io (), io)

type op = Insert of int | Delete of int

let op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun k -> Insert k) (int_range 0 300)); (2, map (fun k -> Delete k) (int_range 0 300)) ])

let ops_arb =
  QCheck.make
    ~print:
      (QCheck.Print.list (function
        | Insert k -> Printf.sprintf "I%d" k
        | Delete k -> Printf.sprintf "D%d" k))
    QCheck.Gen.(list_size (0 -- 500) op_gen)

let value_of k = string_of_int (k * 7)

let apply t ops =
  List.fold_left
    (fun m op ->
      match op with
      | Insert k ->
          B.insert t k (value_of k);
          Model.add k (value_of k) m
      | Delete k ->
          let present = B.delete t k in
          if present <> Model.mem k m then Alcotest.fail "delete presence mismatch";
          Model.remove k m)
    Model.empty ops

let prop_model =
  QCheck.Test.make ~name:"btree equals Map model" ~count:150 ops_arb (fun ops ->
      let t, _ = mk () in
      let m = apply t ops in
      B.size t = Model.cardinal m
      && Model.for_all (fun k v -> B.find t k = Some v) m
      && List.for_all (fun k -> Model.mem k m || B.find t k = None)
           (List.map (function Insert k | Delete k -> k) ops)
      && List.rev (B.fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))
         = Model.bindings m)

let prop_invariants =
  QCheck.Test.make ~name:"btree invariants after random ops" ~count:150 ops_arb (fun ops ->
      let t, _ = mk () in
      let _ = apply t ops in
      B.check_invariants t)

let prop_bulk_load =
  QCheck.Test.make ~name:"bulk load equals inserts" ~count:80
    QCheck.(pair (int_range 0 500) (int_range 4 32))
    (fun (n, fanout) ->
      let pool = Block_store.Pool.create ~capacity:64 in
      let io = Io_stats.create () in
      let entries = Array.init n (fun i -> (i * 3, value_of i)) in
      let t = B.bulk_load ~fanout ~pool ~stats:io entries in
      B.check_invariants t && B.size t = n
      && Array.for_all (fun (k, v) -> B.find t k = Some v) entries
      && (n = 0 || B.min_binding t = Some entries.(0))
      && (n = 0 || B.max_binding t = Some entries.(n - 1)))

let prop_range =
  QCheck.Test.make ~name:"iter_range equals model filter" ~count:120
    QCheck.(triple ops_arb (int_range (-10) 310) (int_range 0 100))
    (fun (ops, lo, width) ->
      let t, _ = mk () in
      let m = apply t ops in
      let hi = lo + width in
      let got = ref [] in
      B.iter_range t ~lo:(Some lo) ~hi:(Some hi) (fun k v -> got := (k, v) :: !got);
      let expected = Model.bindings m |> List.filter (fun (k, _) -> lo <= k && k <= hi) in
      List.rev !got = expected)

let test_iter_from_stop () =
  let t, _ = mk () in
  List.iter (fun k -> B.insert t k (value_of k)) [ 1; 3; 5; 7; 9 ];
  let seen = ref [] in
  B.iter_from t 4 (fun k _ ->
      seen := k :: !seen;
      if List.length !seen >= 2 then `Stop else `Continue);
  Alcotest.(check (list int)) "starts at successor, stops on demand" [ 5; 7 ] (List.rev !seen)

let test_bulk_load_rejects_unsorted () =
  let pool = Block_store.Pool.create ~capacity:8 in
  let io = Io_stats.create () in
  match B.bulk_load ~fanout:4 ~pool ~stats:io [| (2, "a"); (1, "b") |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_io_scaling () =
  (* A point lookup in a bulk-loaded tree should cost O(log_B n) I/Os
     with a cold-ish cache, far below n/B. *)
  let pool = Block_store.Pool.create ~capacity:4 in
  let io = Io_stats.create () in
  let n = 20_000 in
  let entries = Array.init n (fun i -> (i, value_of i)) in
  let t = B.bulk_load ~fanout:32 ~pool ~stats:io entries in
  Io_stats.reset io;
  ignore (B.find t (n / 2));
  let cost = Io_stats.reads io in
  Alcotest.(check bool)
    (Printf.sprintf "lookup cost %d is logarithmic" cost)
    true
    (cost <= B.height t + 1)

let test_empty_tree () =
  let t, _ = mk () in
  Alcotest.(check bool) "empty" true (B.is_empty t);
  Alcotest.(check (option string)) "find" None (B.find t 1);
  Alcotest.(check bool) "delete absent" false (B.delete t 1);
  Alcotest.(check bool) "min none" true (B.min_binding t = None);
  let seen = ref 0 in
  B.iter_range t ~lo:None ~hi:None (fun _ _ -> incr seen);
  Alcotest.(check int) "no elements" 0 !seen

let suite =
  ( "btree",
    [
      Alcotest.test_case "empty tree" `Quick test_empty_tree;
      Alcotest.test_case "iter_from stop" `Quick test_iter_from_stop;
      Alcotest.test_case "bulk rejects unsorted" `Quick test_bulk_load_rejects_unsorted;
      Alcotest.test_case "lookup io scaling" `Quick test_io_scaling;
      qtest prop_model;
      qtest prop_invariants;
      qtest prop_bulk_load;
      qtest prop_range;
    ] )

(* ---------------- weight-balanced B-tree ---------------- *)

module Wbb = Segdb_btree.Wb_btree.Make (Int) (struct
  type t = string
end)

let mk_wbb ?(branching = 4) ?(leaf_weight = 4) () =
  let pool = Block_store.Pool.create ~capacity:64 in
  let io = Io_stats.create () in
  Wbb.create ~branching ~leaf_weight ~pool ~stats:io ()

let prop_wbb_model =
  QCheck.Test.make ~name:"wb-btree equals Map model" ~count:150 ops_arb (fun ops ->
      let t = mk_wbb () in
      let m =
        List.fold_left
          (fun m op ->
            match op with
            | Insert k ->
                Wbb.insert t k (value_of k);
                Model.add k (value_of k) m
            | Delete k ->
                let present = Wbb.delete t k in
                if present <> Model.mem k m then Alcotest.fail "wbb delete presence";
                Model.remove k m)
          Model.empty ops
      in
      Wbb.size t = Model.cardinal m
      && Model.for_all (fun k v -> Wbb.find t k = Some v) m
      && (let got = ref [] in
          Wbb.iter t (fun k v -> got := (k, v) :: !got);
          List.rev !got = Model.bindings m))

let prop_wbb_invariants =
  QCheck.Test.make ~name:"wb-btree weight invariants" ~count:150 ops_arb (fun ops ->
      let t = mk_wbb () in
      List.iter
        (function
          | Insert k -> Wbb.insert t k (value_of k)
          | Delete k -> ignore (Wbb.delete t k))
        ops;
      Wbb.check_invariants t)

let test_wbb_split_amortization () =
  (* the reason the structure exists: a node of weight w splits only
     after Omega(w) insertions below it, so total split mass is
     O(n log n) — we check the height and invariants after a large
     sequential load, the worst case for naive B-trees *)
  let t = mk_wbb ~branching:8 ~leaf_weight:16 () in
  for i = 1 to 20_000 do
    Wbb.insert t i (value_of i)
  done;
  Alcotest.(check bool) "invariants at 20k" true (Wbb.check_invariants t);
  Alcotest.(check bool)
    (Printf.sprintf "height %d logarithmic" (Wbb.height t))
    true (Wbb.height t <= 7);
  Alcotest.(check int) "all present" 20_000 (Wbb.size t)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "wbb split amortization" `Quick test_wbb_split_amortization;
        qtest prop_wbb_model;
        qtest prop_wbb_invariants;
      ] )
