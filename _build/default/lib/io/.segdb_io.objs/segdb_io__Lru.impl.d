lib/io/lru.ml: Hashtbl
