(* Temporal database scenario: valid-time version histories.

   Each record key is a horizontal row; each version of the record is a
   segment [start, end] on that row. Then:
   - "snapshot at time tau"            = a vertical line query;
   - "versions of keys 100..200 live
      at tau"                          = a vertical segment query;
   - appending a new version           = a semi-dynamic insertion.

   The paper names temporal databases [13] among the applications of
   segment databases; this is that reduction, executable.

   Run with: dune exec examples/temporal_snapshots.exe *)

open Segdb_geom
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module Rng = Segdb_util.Rng
module Io_stats = Segdb_io.Io_stats

let () =
  let keys = 2_000 and horizon = 100_000 in
  let n = 80_000 in
  let history = W.temporal (Rng.create 11) ~n ~keys ~horizon in
  let db = Db.create ~backend:`Solution2 history in
  Printf.printf "version store: %d versions of %d keys over [0, %d]\n" (Db.size db) keys
    horizon;

  (* snapshot: which versions were live at tau? *)
  let tau = 43_217.0 in
  let io = Db.io db in
  Io_stats.reset io;
  let live = Db.count db (Vquery.line ~x:tau) in
  Printf.printf "snapshot(tau=%.0f): %d live versions      (%d I/Os)\n" tau live
    (Io_stats.total_io io);

  (* key-range timeslice: versions of keys 100..200 live at tau *)
  Io_stats.reset io;
  let slice = Db.query db (Vquery.segment ~x:tau ~ylo:100.0 ~yhi:200.0) in
  Printf.printf "slice(keys 100..200): %d versions          (%d I/Os)\n"
    (List.length slice) (Io_stats.total_io io);
  (match slice with
  | s :: _ ->
      Printf.printf "  e.g. key %.0f: valid [%.0f, %.0f]\n" s.Segment.y1 s.Segment.x1
        s.Segment.x2
  | [] -> ());

  (* append new versions: close the current version of key 150 at tau
     and open a new one *)
  let next_id = Db.size db + 1_000_000 in
  Db.insert db (Segment.make ~id:next_id (tau +. 1.0, 150.0) (tau +. 5_000.0, 150.0));
  let recheck = Db.count db (Vquery.segment ~x:(tau +. 100.0) ~ylo:150.0 ~yhi:150.0) in
  Printf.printf "after append, key 150 at tau+100: %d version(s)\n" recheck;

  (* time-travel audit: how the live count evolves *)
  Printf.printf "live versions over time:\n";
  List.iter
    (fun t ->
      Printf.printf "  t=%6.0f: %5d\n" t (Db.count db (Vquery.line ~x:t)))
    [ 0.0; 20_000.0; 50_000.0; 80_000.0; 99_999.0 ]
