exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

module W = struct
  let u8 b v = Buffer.add_uint8 b (v land 0xFF)
  let u32 b v = Buffer.add_int32_le b (Int32.of_int v)
  let u64 b v = Buffer.add_int64_le b (Int64.of_int v)
  let f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s
end

module R = struct
  type t = { data : string; mutable pos : int }

  let of_string ?(pos = 0) data = { data; pos }
  let pos r = r.pos
  let remaining r = String.length r.data - r.pos

  let need r n =
    if remaining r < n then
      corrupt "truncated input: need %d bytes at offset %d, have %d" n r.pos (remaining r)

  let u8 r =
    need r 1;
    let v = String.get_uint8 r.data r.pos in
    r.pos <- r.pos + 1;
    v

  let u32 r =
    need r 4;
    let v = String.get_int32_le r.data r.pos in
    r.pos <- r.pos + 4;
    Int32.to_int v land 0xFFFFFFFF

  let u64 r =
    need r 8;
    let v = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    Int64.to_int v

  let f64 r =
    need r 8;
    let v = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    Int64.float_of_bits v

  let raw r n =
    if n < 0 then corrupt "negative length %d at offset %d" n r.pos;
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let str r =
    let n = u32 r in
    raw r n
end

type 'a t = { write : Buffer.t -> 'a -> unit; read : R.t -> 'a }

let int = { write = W.u64; read = R.u64 }
let float = { write = W.f64; read = R.f64 }

let bool =
  {
    write = (fun b v -> W.u8 b (if v then 1 else 0));
    read =
      (fun r ->
        match R.u8 r with
        | 0 -> false
        | 1 -> true
        | v -> corrupt "invalid bool byte %d" v);
  }

let string = { write = W.str; read = R.str }

let pair a b =
  {
    write =
      (fun buf (x, y) ->
        a.write buf x;
        b.write buf y);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y));
  }

let option a =
  {
    write =
      (fun buf -> function
        | None -> W.u8 buf 0
        | Some v ->
            W.u8 buf 1;
            a.write buf v);
    read =
      (fun r ->
        match R.u8 r with
        | 0 -> None
        | 1 -> Some (a.read r)
        | v -> corrupt "invalid option byte %d" v);
  }

let array a =
  {
    write =
      (fun buf v ->
        W.u32 buf (Array.length v);
        Array.iter (a.write buf) v);
    read =
      (fun r ->
        let n = R.u32 r in
        (* every element costs at least one byte, so a huge count is
           corruption, not a huge allocation *)
        if n > R.remaining r then
          corrupt "array length %d exceeds remaining %d bytes" n (R.remaining r);
        if n = 0 then [||]
        else begin
          let out = Array.make n (a.read r) in
          for i = 1 to n - 1 do
            out.(i) <- a.read r
          done;
          out
        end);
  }

let list a =
  let arr = array a in
  {
    write = (fun buf v -> arr.write buf (Array.of_list v));
    read = (fun r -> Array.to_list (arr.read r));
  }

let encode c v =
  let b = Buffer.create 256 in
  c.write b v;
  Buffer.contents b

let decode c s =
  let r = R.of_string s in
  let v = c.read r in
  if R.remaining r <> 0 then corrupt "%d trailing bytes after decode" (R.remaining r);
  v
