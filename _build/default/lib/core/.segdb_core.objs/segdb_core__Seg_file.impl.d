lib/core/seg_file.ml: Array Fun List Printf Segdb_geom Segment String
