open Segdb_util

type experiment = {
  id : string;
  title : string;
  validates : string;
  run : Harness.params -> Harness.output list;
}

let all =
  [
    {
      id = E01_pst_scaling.id;
      title = E01_pst_scaling.title;
      validates = E01_pst_scaling.validates;
      run = E01_pst_scaling.run;
    };
    {
      id = E02_pst_block_size.id;
      title = E02_pst_block_size.title;
      validates = E02_pst_block_size.validates;
      run = E02_pst_block_size.run;
    };
    {
      id = E03_output_sensitivity.id;
      title = E03_output_sensitivity.title;
      validates = E03_output_sensitivity.validates;
      run = E03_output_sensitivity.run;
    };
    {
      id = E04_vs_query_scaling.id;
      title = E04_vs_query_scaling.title;
      validates = E04_vs_query_scaling.validates;
      run = E04_vs_query_scaling.run;
    };
    {
      id = E05_cascading.id;
      title = E05_cascading.title;
      validates = E05_cascading.validates;
      run = E05_cascading.run;
    };
    { id = E06_space.id; title = E06_space.title; validates = E06_space.validates; run = E06_space.run };
    {
      id = E07_insertion.id;
      title = E07_insertion.title;
      validates = E07_insertion.validates;
      run = E07_insertion.run;
    };
    {
      id = E08_stabbing.id;
      title = E08_stabbing.title;
      validates = E08_stabbing.validates;
      run = E08_stabbing.run;
    };
    {
      id = E09_workloads.id;
      title = E09_workloads.title;
      validates = E09_workloads.validates;
      run = E09_workloads.run;
    };
    {
      id = E10_bridge_tradeoff.id;
      title = E10_bridge_tradeoff.title;
      validates = E10_bridge_tradeoff.validates;
      run = E10_bridge_tradeoff.run;
    };
    {
      id = E12_duality.id;
      title = E12_duality.title;
      validates = E12_duality.validates;
      run = E12_duality.run;
    };
    {
      id = E13_find_frontier.id;
      title = E13_find_frontier.title;
      validates = E13_find_frontier.validates;
      run = E13_find_frontier.run;
    };
    {
      id = E14_pool_size.id;
      title = E14_pool_size.title;
      validates = E14_pool_size.validates;
      run = E14_pool_size.run;
    };
    {
      id = E15_internal_vs_external.id;
      title = E15_internal_vs_external.title;
      validates = E15_internal_vs_external.validates;
      run = E15_internal_vs_external.run;
    };
    {
      id = E16_construction.id;
      title = E16_construction.title;
      validates = E16_construction.validates;
      run = E16_construction.run;
    };
  ]

let find id = List.find_opt (fun e -> String.lowercase_ascii id = e.id) all

let run_ids ?(params = Harness.default) ids =
  let selected =
    match ids with
    | [] -> all
    | ids ->
        List.map
          (fun id ->
            match find id with
            | Some e -> e
            | None -> invalid_arg (Printf.sprintf "unknown experiment %S" id))
          ids
  in
  List.iter
    (fun e ->
      Printf.printf "\n### %s — validates: %s\n\n" e.id e.validates;
      List.iter
        (function
          | Harness.Table t -> Table.print t
          | Harness.Chart c -> print_string c)
        (e.run params);
      print_newline ())
    selected
