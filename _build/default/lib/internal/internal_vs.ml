open Segdb_geom

type node = {
  xb : float; (* the node's vertical line *)
  collinear : Segment.t array; (* vertical segments on the line, by min_y *)
  lpst : Internal_pst.t; (* left parts of crossing segments *)
  rpst : Internal_pst.t;
  left : node option;
  right : node option;
  count : int;
}

type t = { root : node option; by_id : (int, Segment.t) Hashtbl.t }

let size t = match t.root with Some n -> n.count | None -> 0

let rec height_rec = function
  | None -> 0
  | Some n -> 1 + max (height_rec n.left) (height_rec n.right)

let height t = height_rec t.root

let on_line xb (s : Segment.t) = Segment.is_vertical s && s.x1 = xb
let crosses_line xb (s : Segment.t) = Segment.spans_x s xb && not (on_line xb s)

let median_endpoint_x (segs : Segment.t list) =
  let xs = List.concat_map (fun (s : Segment.t) -> [ s.Segment.x1; s.Segment.x2 ]) segs in
  let xs = List.sort compare xs in
  List.nth xs (List.length xs / 2)

let rec build_rec (segs : Segment.t list) : node option =
  match segs with
  | [] -> None
  | _ ->
      let xb = median_endpoint_x segs in
      let here, lefts, rights =
        List.fold_left
          (fun (h, l, r) (s : Segment.t) ->
            if on_line xb s || crosses_line xb s then (s :: h, l, r)
            else if s.x2 < xb then (h, s :: l, r)
            else (h, l, s :: r))
          ([], [], []) segs
      in
      (* the median is an endpoint of some segment, so [here] is never
         empty and both sides strictly shrink *)
      assert (here <> []);
      let collinear =
        List.filter (on_line xb) here |> List.sort (fun a b -> compare (Segment.min_y a) (Segment.min_y b))
        |> Array.of_list
      in
      let crossing = List.filter (crosses_line xb) here in
      let lpst =
        Internal_pst.build
          (Array.of_list (List.map (Lseg.left_of_vline ~base_x:xb) crossing))
      in
      let rpst =
        Internal_pst.build
          (Array.of_list (List.map (Lseg.right_of_vline ~base_x:xb) crossing))
      in
      Some
        {
          xb;
          collinear;
          lpst;
          rpst;
          left = build_rec lefts;
          right = build_rec rights;
          count = List.length segs;
        }

let build segs =
  let by_id = Hashtbl.create (Array.length segs) in
  Array.iter (fun (s : Segment.t) -> Hashtbl.replace by_id s.id s) segs;
  if Hashtbl.length by_id <> Array.length segs then
    invalid_arg "Internal_vs.build: duplicate segment ids";
  { root = build_rec (Array.to_list segs); by_id }

let query t (q : Vquery.t) ~f =
  let seen = Hashtbl.create 16 in
  let emit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      f (Hashtbl.find t.by_id id)
    end
  in
  let emit_lseg (ls : Lseg.t) = emit ls.Lseg.id in
  let rec go = function
    | None -> ()
    | Some n ->
        if q.x = n.xb then begin
          Array.iter
            (fun (s : Segment.t) ->
              if Segment.min_y s <= q.yhi && Segment.max_y s >= q.ylo then emit s.id)
            n.collinear;
          let lq = Lseg.query ~uq:0.0 ~vlo:q.ylo ~vhi:q.yhi in
          Internal_pst.query n.lpst lq ~f:emit_lseg;
          Internal_pst.query n.rpst lq ~f:emit_lseg
        end
        else if q.x < n.xb then begin
          Internal_pst.query n.lpst (Lseg.query ~uq:(n.xb -. q.x) ~vlo:q.ylo ~vhi:q.yhi)
            ~f:emit_lseg;
          go n.left
        end
        else begin
          Internal_pst.query n.rpst (Lseg.query ~uq:(q.x -. n.xb) ~vlo:q.ylo ~vhi:q.yhi)
            ~f:emit_lseg;
          go n.right
        end
  in
  go t.root

let query_ids t q =
  let acc = ref [] in
  query t q ~f:(fun s -> acc := s.Segment.id :: !acc);
  List.sort compare !acc

let check_invariants t =
  let ok = ref true in
  let seen = Hashtbl.create 64 in
  let rec go lo hi = function
    | None -> 0
    | Some n ->
        (match lo with Some b -> if n.xb <= b then ok := false | None -> ());
        (match hi with Some b -> if n.xb >= b then ok := false | None -> ());
        if not (Internal_pst.check_invariants n.lpst) then ok := false;
        if not (Internal_pst.check_invariants n.rpst) then ok := false;
        if Internal_pst.size n.lpst <> Internal_pst.size n.rpst then ok := false;
        Array.iter
          (fun s ->
            if Hashtbl.mem seen s.Segment.id then ok := false
            else Hashtbl.add seen s.Segment.id ();
            if not (on_line n.xb s) then ok := false)
          n.collinear;
        Internal_pst.query n.lpst
          (Lseg.query ~uq:0.0 ~vlo:neg_infinity ~vhi:infinity)
          ~f:(fun ls ->
            if Hashtbl.mem seen ls.Lseg.id then ok := false
            else Hashtbl.add seen ls.Lseg.id ());
        let cl = go lo (Some n.xb) n.left and cr = go (Some n.xb) hi n.right in
        let here = Array.length n.collinear + Internal_pst.size n.lpst in
        if here + cl + cr <> n.count then ok := false;
        n.count
  in
  let total = go None None t.root in
  if total <> Hashtbl.length t.by_id then ok := false;
  !ok
