lib/core/segdb.mli: Io_stats Segdb_geom Segdb_io Segment Vquery
