(* The execution engine: one persistent pool behind every entry point.
   Parity with the serial answers, deadline propagation (a queued
   request past its budget never executes; a slow batch is cut after
   the immune first query), pool persistence across batches, admission
   control, and cancellation stopping block fetches mid-flight. *)

open Segdb_io
open Segdb_geom
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Db = Segdb_core.Segdb
module Exec = Segdb_exec.Exec

let line_queries n =
  Array.init n (fun i -> Vquery.line ~x:(float_of_int (i * 97 mod 100)))

let random_query rng =
  let x = Rng.float rng 100.0 in
  match Rng.int rng 3 with
  | 0 -> Vquery.line ~x
  | 1 -> Vquery.ray_up ~x ~ylo:(Rng.float rng 100.0)
  | _ ->
      let y = Rng.float rng 100.0 in
      Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 40.0)

(* A database slow enough that one naive query runs for several
   milliseconds — the deterministic lever for deadline tests (same
   sizing as the server deadline test in t_net). *)
let slow_db =
  lazy
    (Db.create ~backend:`Naive ~block:8 ~pool_blocks:8
       (W.roads (Rng.create 42) ~n:100_000 ~span:100.0))

let with_pool ?queue_depth ~workers f =
  let pool = Exec.create ?queue_depth ~workers () in
  Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f pool)

(* ---------------- parity ---------------- *)

let test_run_matches_serial () =
  let rng = Rng.create 13 in
  let segs = W.roads (Rng.split rng) ~n:300 ~span:100.0 in
  let queries = Array.init 40 (fun _ -> random_query rng) in
  with_pool ~workers:3 (fun pool ->
      List.iter
        (fun (name, backend) ->
          let db = Db.create ~backend ~block:8 ~pool_blocks:16 segs in
          let serial = Array.map (Db.query_ids db) queries in
          List.iter
            (fun domains ->
              match Exec.run pool db (Exec.request queries) ~domains with
              | Exec.Ok out, stats ->
                  Array.iteri
                    (fun i got ->
                      Alcotest.(check (list int))
                        (Printf.sprintf "%s: query %d, %d domains" name i domains)
                        serial.(i) got)
                    out;
                  Alcotest.(check int)
                    (Printf.sprintf "%s: stats rows" name)
                    domains (Array.length stats);
                  Alcotest.(check int)
                    (Printf.sprintf "%s: every query answered once" name)
                    (Array.length queries)
                    (Array.fold_left (fun a s -> a + s.Db.queries) 0 stats)
              | o, _ ->
                  Alcotest.failf "%s: expected Ok, got %s" name
                    (Format.asprintf "%a" Exec.pp_outcome o))
            [ 1; 2; 4 ])
        Db.all_backends)

(* ---------------- deadline propagation ---------------- *)

(* A request that expired while queued must answer [Deadline_exceeded]
   with zero completions and, crucially, never reach the query path:
   the [segdb.query] failpoint is armed to crash on any execution, and
   its hit counter must stay at zero. *)
let test_deadline_expired_in_queue () =
  let db = Db.create ~backend:`Naive ~block:8 [| |] in
  Fun.protect ~finally:Failpoint.disarm (fun () ->
      Failpoint.arm
        [ ("segdb.query", Failpoint.plan ~persistent:true Failpoint.Crash) ];
      with_pool ~workers:1 (fun pool ->
          let req = Exec.request ~deadline_ms:1 (line_queries 4) in
          Unix.sleepf 0.01;
          (* the budget started at construction; it is long gone *)
          let tk = Exec.submit pool db req in
          (match Exec.await tk with
          | Exec.Deadline_exceeded { partial; completed } ->
              Alcotest.(check int) "no query completed" 0 completed;
              Alcotest.(check bool) "all slots empty" true
                (Array.for_all (fun l -> l = []) partial)
          | o -> Alcotest.failf "expected Deadline_exceeded, got %s"
                   (Format.asprintf "%a" Exec.pp_outcome o));
          Alcotest.(check int) "query path never entered" 0
            (Failpoint.hits (Failpoint.site "segdb.query"))))

(* The immune first query always answers; the deadline then cuts the
   rest of the batch at the next query boundary. *)
let test_deadline_cuts_slow_batch () =
  let db = Lazy.force slow_db in
  let queries = line_queries 10 in
  with_pool ~workers:1 (fun pool ->
      match Exec.run pool db (Exec.request ~deadline_ms:1 queries) ~domains:1 with
      | Exec.Deadline_exceeded { partial; completed }, stats ->
          Alcotest.(check bool)
            (Printf.sprintf "cut mid-batch (completed %d)" completed)
            true
            (completed >= 1 && completed < Array.length queries);
          Alcotest.(check (list int)) "first answer is the serial answer"
            (Db.query_ids db queries.(0))
            partial.(0);
          Alcotest.(check int) "stats agree with completions" completed
            (Array.fold_left (fun a s -> a + s.Db.queries) 0 stats)
      | o, _ ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Format.asprintf "%a" Exec.pp_outcome o))

(* ---------------- pool persistence ---------------- *)

let test_pool_reuse_across_batches () =
  let segs = W.roads (Rng.create 17) ~n:200 ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 ~pool_blocks:16 segs in
  let queries = line_queries 6 in
  let serial = Array.map (Db.query_ids db) queries in
  with_pool ~workers:1 (fun pool ->
      let answer tk =
        match Exec.await tk with
        | Exec.Ok out ->
            Array.iteri
              (fun i got -> Alcotest.(check (list int))
                  (Printf.sprintf "query %d" i) serial.(i) got)
              out
        | o -> Alcotest.failf "expected Ok, got %s"
                 (Format.asprintf "%a" Exec.pp_outcome o)
      in
      let tk1 = Exec.submit pool db (Exec.request queries) in
      answer tk1;
      let tk2 = Exec.submit pool db (Exec.request queries) in
      answer tk2;
      let d1 = Exec.served_by tk1 and d2 = Exec.served_by tk2 in
      Alcotest.(check bool) "a worker picked each batch up" true (d1 >= 0 && d2 >= 0);
      Alcotest.(check int) "same persistent domain served both" d1 d2;
      Alcotest.(check bool) "and it was not the caller" true
        (d1 <> (Domain.self () :> int)))

(* ---------------- cancellation ---------------- *)

module Store = Block_store.Make (struct
  type t = int
end)

(* The storage layer polls the installed handle on every block fetch:
   flipping the flag mid-scan stops the reads where they are — the
   counter plateaus instead of walking the remaining blocks. *)
let test_cancel_stops_block_fetches () =
  let pool = Block_store.Pool.create ~capacity:2 in
  let io = Io_stats.create () in
  let s = Store.create ~pool ~stats:io () in
  let addrs = Array.init 100 (fun i -> Store.alloc s i) in
  let flag = Atomic.make false in
  let h = Cancel.create ~flag () in
  let outcome =
    Cancel.install h (fun () ->
        try
          for i = 0 to Array.length addrs - 1 do
            if i = 10 then Atomic.set flag true;
            ignore (Store.read s addrs.(i))
          done;
          `Ran_to_completion
        with Cancel.Cancelled Cancel.Explicit -> `Cancelled)
  in
  Alcotest.(check bool) "scan was cancelled" true (outcome = `Cancelled);
  let reads = Io_stats.reads io in
  Alcotest.(check bool)
    (Printf.sprintf "reads plateaued at %d of %d" reads (Array.length addrs))
    true
    (reads <= 11);
  (* still tripped: the next fetch under the handle does not read either *)
  (match Cancel.install h (fun () -> Store.read s addrs.(50)) with
  | _ -> Alcotest.fail "read after cancel did not raise"
  | exception Cancel.Cancelled Cancel.Explicit -> ());
  Alcotest.(check int) "no further reads issued" reads (Io_stats.reads io)

(* Cancelling a queued request completes it as [Cancelled] with no
   work done, while the request ahead of it still answers. *)
let test_cancel_queued_submit () =
  let db = Lazy.force slow_db in
  with_pool ~workers:1 (fun pool ->
      let blocker = Exec.submit pool db (Exec.request (line_queries 5)) in
      let probe = Exec.submit pool db (Exec.request (line_queries 3)) in
      Exec.cancel probe;
      (match Exec.await probe with
      | Exec.Cancelled { completed; _ } ->
          Alcotest.(check int) "cancelled before any work" 0 completed
      | o -> Alcotest.failf "expected Cancelled, got %s"
               (Format.asprintf "%a" Exec.pp_outcome o));
      match Exec.await blocker with
      | Exec.Ok _ -> ()
      | o -> Alcotest.failf "blocker: expected Ok, got %s"
               (Format.asprintf "%a" Exec.pp_outcome o))

(* ---------------- admission control ---------------- *)

let test_zero_depth_refuses_submit () =
  let segs = W.roads (Rng.create 23) ~n:100 ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 segs in
  let queries = line_queries 4 in
  with_pool ~queue_depth:0 ~workers:1 (fun pool ->
      let tk = Exec.submit pool db (Exec.request queries) in
      Alcotest.(check bool) "refused synchronously" true
        (Exec.peek tk = Some Exec.Overloaded);
      (* cooperative work bypasses admission: the same pool still runs *)
      match Exec.run pool db (Exec.request queries) ~domains:2 with
      | Exec.Ok out, _ ->
          Array.iteri
            (fun i got -> Alcotest.(check (list int))
                (Printf.sprintf "query %d" i) (Db.query_ids db queries.(i)) got)
            out
      | o, _ -> Alcotest.failf "run on zero-depth pool: expected Ok, got %s"
                  (Format.asprintf "%a" Exec.pp_outcome o))

let test_run_validation () =
  let db = Db.create ~backend:`Naive [||] in
  with_pool ~workers:1 (fun pool ->
      Alcotest.check_raises "domains 0"
        (Invalid_argument "Exec.run: domains must be >= 1") (fun () ->
          ignore (Exec.run pool db (Exec.request [||]) ~domains:0));
      Alcotest.check_raises "readers arity"
        (Invalid_argument "Exec.run: readers array must have one reader per domain")
        (fun () ->
          ignore
            (Exec.run ~readers:[| Db.reader db |] pool db (Exec.request [||])
               ~domains:2)))

let suite =
  ( "exec",
    [
      Alcotest.test_case "run matches serial on every backend" `Quick
        test_run_matches_serial;
      Alcotest.test_case "expired in the queue: refused unexecuted" `Quick
        test_deadline_expired_in_queue;
      Alcotest.test_case "deadline cuts a slow batch after the first answer" `Quick
        test_deadline_cuts_slow_batch;
      Alcotest.test_case "one persistent domain serves successive batches" `Quick
        test_pool_reuse_across_batches;
      Alcotest.test_case "cancellation stops block fetches" `Quick
        test_cancel_stops_block_fetches;
      Alcotest.test_case "cancelling a queued request" `Quick test_cancel_queued_submit;
      Alcotest.test_case "zero-depth queue refuses submits, run bypasses" `Quick
        test_zero_depth_refuses_submit;
      Alcotest.test_case "run validation" `Quick test_run_validation;
    ] )
