(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]).

    Checksums guard every on-disk artifact of the persistence layer:
    snapshot sections, {!File_store} superblocks, and {!Wal} records.
    Values are the unsigned 32-bit checksum carried in an [int]. *)

val init : int
(** Accumulator for an empty input. *)

val update : int -> string -> pos:int -> len:int -> int
(** Folds [len] bytes of the string starting at [pos] into the
    accumulator. *)

val finish : int -> int
(** Final checksum of an accumulator. *)

val string : string -> int
(** One-shot checksum of a whole string:
    [finish (update init s ~pos:0 ~len:(String.length s))].
    [string "123456789" = 0xCBF43926] (the standard check value). *)

val bytes : Bytes.t -> pos:int -> len:int -> int
(** One-shot checksum of a byte range. *)
