lib/pst/pst.mli: Block_store Io_stats Lseg Segdb_geom Segdb_io
