type t = { x : float; ylo : float; yhi : float }

let segment ~x ~ylo ~yhi =
  if Float.is_nan x || Float.is_nan ylo || Float.is_nan yhi then
    invalid_arg "Vquery.segment: NaN bound";
  if ylo > yhi then invalid_arg "Vquery.segment: ylo > yhi";
  { x; ylo; yhi }

let ray_up ~x ~ylo = segment ~x ~ylo ~yhi:infinity
let ray_down ~x ~yhi = segment ~x ~ylo:neg_infinity ~yhi
let line ~x = segment ~x ~ylo:neg_infinity ~yhi:infinity

let is_line q = q.ylo = neg_infinity && q.yhi = infinity

let matches q (s : Segment.t) =
  Segment.spans_x s q.x
  &&
  if Segment.is_vertical s then s.y1 <= q.yhi && s.y2 >= q.ylo
  else
    let y = Segment.y_at s q.x in
    q.ylo <= y && y <= q.yhi

let pp ppf q = Format.fprintf ppf "VS(x=%g, y in [%g, %g])" q.x q.ylo q.yhi
