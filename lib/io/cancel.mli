(** Cooperative cancellation and deadlines for the read path.

    A {e handle} carries an explicit-cancel flag and an optional
    absolute deadline. The execution engine ({!Segdb_exec}) installs a
    handle on the current domain around each query; the storage layer
    calls {!poll} at block-fetch granularity ({!Block_store.Make.read},
    {!File_store.Make.read}), so an expired or cancelled request stops
    issuing I/O instead of running to completion.

    Cost discipline mirrors {!Failpoint} and {!Segdb_obs.Control}: with
    no handle installed anywhere in the process, {!poll} is a single
    [Atomic.get]. With a handle installed, the cancel flag is one more
    [Atomic.get] per poll and the deadline consults the monotonic clock
    only every {!poll_stride} polls — a handful of nanoseconds
    amortized over a block fetch.

    Handles may share one cancel flag (pass [~flag]): the parallel
    batch path gives every worker domain its own handle — poll counters
    are domain-local — while a single flip of the shared flag stops all
    of them. *)

type reason = Deadline | Explicit

exception Cancelled of reason
(** Raised out of {!poll} (and therefore out of a storage read) when
    the installed handle is cancelled or past its deadline. Queries
    never mutate shared state, so unwinding mid-traversal is safe; the
    execution engine catches this at the per-query boundary. *)

type t

val create : ?deadline_ns:int -> ?flag:bool Atomic.t -> unit -> t
(** [deadline_ns] is an {e absolute} [Segdb_obs.Trace.now_ns] instant
    (0, the default, means none). [flag] shares an existing cancel
    flag between handles; a fresh one is private. *)

val flag : t -> bool Atomic.t

val cancel : t -> unit
(** Flips the flag: every handle sharing it trips at its next poll. *)

val cancelled : t -> bool
val deadline_ns : t -> int

val expired : t -> bool
(** Whether the deadline (if any) has passed — always consults the
    clock; used between work units where precision beats cheapness. *)

val set_deadline_enabled : t -> bool -> unit
(** While [false], {!poll} ignores the deadline (the explicit flag
    still trips). The execution engine disables it around a request's
    first query so an admitted request always makes progress — a
    deadline can then only cut queries after the first. Default:
    enabled. *)

val poll_stride : int
(** {!poll} consults the clock every this many polls of an installed
    deadline handle. *)

val install : t -> (unit -> 'a) -> 'a
(** Runs the callback with the handle installed on the current domain
    (saving and restoring any previous one); storage reads inside it
    {!poll} against this handle. *)

val active : unit -> t option
(** The handle installed on the current domain, if any. *)

val poll : unit -> unit
(** The storage layer's check. No handle installed: one [Atomic.get].
    Installed: raises {!Cancelled} if the flag is set, or — every
    {!poll_stride} polls while the deadline is enabled — if the
    deadline has passed. *)
