(** The R-tree baseline behind the common index interface. *)

include Vs_index.S
