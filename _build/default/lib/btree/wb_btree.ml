open Segdb_io

module Make (K : sig
  type t

  val compare : t -> t -> int
end) (V : sig
  type t
end) =
struct
  type key = K.t
  type value = V.t

  type node =
    | Leaf of (key * value) array (* sorted *)
    | Inner of {
        seps : key array; (* lower bounds of kids.(i+1) *)
        kids : Block_store.addr array;
        weights : int array; (* live items below each child *)
      }

  module Store = Block_store.Make (struct
    type t = node
  end)

  type t = {
    store : Store.t;
    branching : int;
    leaf_weight : int;
    mutable root : Block_store.addr;
    mutable height : int; (* leaves are at height 0 *)
    mutable size : int;
    mutable dead : int; (* lazily deleted items *)
  }

  let create ?(branching = 8) ?(leaf_weight = 64) ~pool ~stats () =
    if branching < 4 then invalid_arg "Wb_btree.create: branching must be >= 4";
    if leaf_weight < 2 then invalid_arg "Wb_btree.create: leaf_weight must be >= 2";
    let store = Store.create ~name:"wbb" ~pool ~stats () in
    let root = Store.alloc store (Leaf [||]) in
    { store; branching; leaf_weight; root; height = 0; size = 0; dead = 0 }

  let size t = t.size
  let height t = t.height + 1
  let block_count t = Store.block_count t.store

  (* max weight of a node at height h *)
  let max_weight t h =
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    pow t.branching h * t.leaf_weight

  let child_index seps key =
    let lo = ref 0 and hi = ref (Array.length seps) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare seps.(mid) key <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let lower_bound entries key =
    let lo = ref 0 and hi = ref (Array.length entries) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare (fst entries.(mid)) key < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let rec find_rec t addr key =
    match Store.read t.store addr with
    | Leaf entries ->
        let i = lower_bound entries key in
        if i < Array.length entries && K.compare (fst entries.(i)) key = 0 then
          Some (snd entries.(i))
        else None
    | Inner { seps; kids; _ } -> find_rec t kids.(child_index seps key) key

  let find t key = find_rec t t.root key

  let rec iter_rec t addr f =
    match Store.read t.store addr with
    | Leaf entries -> Array.iter (fun (k, v) -> f k v) entries
    | Inner { kids; _ } -> Array.iter (fun kid -> iter_rec t kid f) kids

  let iter t f = iter_rec t t.root f

  let array_insert a i x =
    let n = Array.length a in
    let b = Array.make (n + 1) x in
    Array.blit a 0 b 0 i;
    Array.blit a i b (i + 1) (n - i);
    b

  (* Split a node into two halves by weight; returns
     (left_addr, left_weight, separator, right_addr, right_weight).
     The input block is reused as the left half. *)
  let split_node t addr =
    match Store.read t.store addr with
    | Leaf entries ->
        let n = Array.length entries in
        let mid = n / 2 in
        let right = Store.alloc t.store (Leaf (Array.sub entries mid (n - mid))) in
        Store.write t.store addr (Leaf (Array.sub entries 0 mid));
        (addr, mid, fst entries.(mid), right, n - mid)
    | Inner { seps; kids; weights } ->
        (* cut children at the weight midpoint *)
        let total = Array.fold_left ( + ) 0 weights in
        let cut = ref 1 and acc = ref weights.(0) in
        while !cut < Array.length kids - 1 && !acc * 2 < total do
          acc := !acc + weights.(!cut);
          incr cut
        done;
        let cut = !cut in
        let right =
          Store.alloc t.store
            (Inner
               {
                 seps = Array.sub seps cut (Array.length seps - cut);
                 kids = Array.sub kids cut (Array.length kids - cut);
                 weights = Array.sub weights cut (Array.length weights - cut);
               })
        in
        let sep = seps.(cut - 1) in
        Store.write t.store addr
          (Inner
             {
               seps = Array.sub seps 0 (cut - 1);
               kids = Array.sub kids 0 cut;
               weights = Array.sub weights 0 cut;
             });
        let lw = Array.fold_left ( + ) 0 (Array.sub weights 0 cut) in
        (addr, lw, sep, right, total - lw)

  (* Insert below [addr] (a node at height [h]); returns [`Ok grew]
     where [grew] says whether an item was added (vs replaced), or
     [`Split (l, lw, sep, r, rw, grew)] when the node had to split. *)
  let rec insert_rec t addr h key value =
    match Store.read t.store addr with
    | Leaf entries ->
        let i = lower_bound entries key in
        if i < Array.length entries && K.compare (fst entries.(i)) key = 0 then begin
          let entries = Array.copy entries in
          entries.(i) <- (key, value);
          Store.write t.store addr (Leaf entries);
          `Ok false
        end
        else begin
          let entries = array_insert entries i (key, value) in
          Store.write t.store addr (Leaf entries);
          if Array.length entries > max_weight t 0 then
            let l, lw, sep, r, rw = split_node t addr in
            `Split (l, lw, sep, r, rw, true)
          else `Ok true
        end
    | Inner { seps; kids; weights } -> (
        let i = child_index seps key in
        match insert_rec t kids.(i) (h - 1) key value with
        | `Ok grew ->
            if grew then begin
              let weights = Array.copy weights in
              weights.(i) <- weights.(i) + 1;
              Store.write t.store addr (Inner { seps; kids; weights });
              let total = Array.fold_left ( + ) 0 weights in
              if total > max_weight t h then
                let l, lw, sep, r, rw = split_node t addr in
                `Split (l, lw, sep, r, rw, true)
              else `Ok true
            end
            else `Ok false
        | `Split (l, lw, sep, r, rw, grew) ->
            let seps = array_insert seps i sep in
            let kids = array_insert kids (i + 1) r in
            let weights = array_insert weights (i + 1) rw in
            kids.(i) <- l;
            weights.(i) <- lw;
            Store.write t.store addr (Inner { seps; kids; weights });
            let total = Array.fold_left ( + ) 0 weights in
            if total > max_weight t h then
              let l', lw', sep', r', rw' = split_node t addr in
              `Split (l', lw', sep', r', rw', grew)
            else `Ok grew)

  let insert t key value =
    match insert_rec t t.root t.height key value with
    | `Ok grew -> if grew then t.size <- t.size + 1
    | `Split (l, lw, sep, r, rw, grew) ->
        let root =
          Store.alloc t.store
            (Inner { seps = [| sep |]; kids = [| l; r |]; weights = [| lw; rw |] })
        in
        t.root <- root;
        t.height <- t.height + 1;
        if grew then t.size <- t.size + 1

  (* lazy deletion + halving rebuild *)
  let rec free_rec t addr =
    (match Store.read t.store addr with
    | Leaf _ -> ()
    | Inner { kids; _ } -> Array.iter (free_rec t) kids);
    Store.free t.store addr

  let rebuild t =
    let acc = ref [] in
    iter t (fun k v -> acc := (k, v) :: !acc);
    free_rec t t.root;
    t.root <- Store.alloc t.store (Leaf [||]);
    t.height <- 0;
    t.size <- 0;
    t.dead <- 0;
    List.iter (fun (k, v) -> insert t k v) (List.rev !acc)

  let rec delete_rec t addr key =
    match Store.read t.store addr with
    | Leaf entries ->
        let i = lower_bound entries key in
        if i < Array.length entries && K.compare (fst entries.(i)) key = 0 then begin
          let out = Array.make (Array.length entries - 1) entries.(0) in
          Array.blit entries 0 out 0 i;
          Array.blit entries (i + 1) out i (Array.length entries - 1 - i);
          Store.write t.store addr (Leaf out);
          true
        end
        else false
    | Inner { seps; kids; weights } ->
        let i = child_index seps key in
        let present = delete_rec t kids.(i) key in
        if present then begin
          let weights = Array.copy weights in
          weights.(i) <- weights.(i) - 1;
          Store.write t.store addr (Inner { seps; kids; weights })
        end;
        present

  let delete t key =
    let present = delete_rec t t.root key in
    if present then begin
      t.size <- t.size - 1;
      t.dead <- t.dead + 1;
      if t.dead > t.size + t.leaf_weight then rebuild t
    end;
    present

  let check_invariants t =
    let ok = ref true in
    let fail () = ok := false in
    let rec go addr h ~lo ~hi ~is_root =
      match Store.read t.store addr with
      | Leaf entries ->
          if h <> 0 then fail ();
          for i = 1 to Array.length entries - 1 do
            if K.compare (fst entries.(i - 1)) (fst entries.(i)) >= 0 then fail ()
          done;
          Array.iter
            (fun (k, _) ->
              (match lo with Some b -> if K.compare k b < 0 then fail () | None -> ());
              match hi with Some b -> if K.compare k b >= 0 then fail () | None -> ())
            entries;
          let w = Array.length entries in
          if w > max_weight t 0 then fail ();
          (* lazy deletions deplete weights until the halving rebuild *)
          if (not is_root) && t.dead = 0 && w * 4 < max_weight t 0 then fail ();
          w
      | Inner { seps; kids; weights } ->
          if h = 0 then fail ();
          if Array.length kids <> Array.length seps + 1 then fail ();
          if Array.length kids <> Array.length weights then fail ();
          for i = 1 to Array.length seps - 1 do
            if K.compare seps.(i - 1) seps.(i) >= 0 then fail ()
          done;
          let total = ref 0 in
          Array.iteri
            (fun i kid ->
              let klo = if i = 0 then lo else Some seps.(i - 1) in
              let khi = if i = Array.length seps then hi else Some seps.(i) in
              let w = go kid (h - 1) ~lo:klo ~hi:khi ~is_root:false in
              if w <> weights.(i) then fail ();
              total := !total + w)
            kids;
          if !total > max_weight t h then fail ();
          if (not is_root) && t.dead = 0 && !total * 4 < max_weight t h then fail ();
          !total
    in
    let w = go t.root t.height ~lo:None ~hi:None ~is_root:true in
    if w <> t.size then fail ();
    !ok
end
