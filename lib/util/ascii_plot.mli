(** Terminal line charts.

    The paper has no data figures; the experiment harness draws its own:
    one chart per experiment series, log-x-aware, rendered with plain
    ASCII so the output survives logs and diffs. *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** Multi-series scatter/line chart; each series is drawn with its own
    glyph and listed in the legend. Points with non-finite coordinates
    are ignored. *)

val print :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  unit

val sparkline : ?width:int -> float list -> string
(** One-line bar-glyph strip of the series, oldest to newest, scaled to
    its own min/max (a flat series renders mid-height). Keeps the
    newest [width] (default 40) points; non-finite values are dropped;
    an empty series renders as blanks. *)
