(** Bounded LRU map over integer keys, used as the buffer pool of
    {!Block_store}.

    Operations are O(1): a hash table maps keys to doubly-linked-list
    nodes ordered by recency. On overflow the least-recently-used binding
    is evicted and handed to the caller's callback (which write-back
    logic hooks into). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** Touches the binding (moves it to most-recently-used). *)

val mem : 'a t -> int -> bool
(** Does not touch recency. *)

val peek : 'a t -> int -> 'a option
(** Like {!find} but without touching recency — the read-only lookup
    read contexts use to consult a shared cache without mutating it. *)

val put : 'a t -> int -> 'a -> on_evict:(int -> 'a -> unit) -> unit
(** Inserts or replaces the binding and marks it most-recently-used.
    If insertion overflows the capacity the LRU binding is removed and
    passed to [on_evict] (never the key just inserted). *)

val remove : 'a t -> int -> 'a option
(** Removes and returns the binding without calling any eviction hook. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterates from most- to least-recently-used. *)

val clear : 'a t -> on_evict:(int -> 'a -> unit) -> unit
(** Empties the cache, invoking [on_evict] on every binding. *)
