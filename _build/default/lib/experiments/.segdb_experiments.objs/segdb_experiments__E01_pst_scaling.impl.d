lib/experiments/e01_pst_scaling.ml: Array Ascii_plot Block_store Harness Io_stats List Lseg Naive_lsegs Rng Segdb_geom Segdb_io Segdb_pst Segdb_util Segdb_workload Table
