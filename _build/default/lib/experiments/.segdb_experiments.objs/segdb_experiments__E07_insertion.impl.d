lib/experiments/e07_insertion.ml: Array Block_store Harness Io_stats List Rng Segdb_core Segdb_geom Segdb_io Segdb_itree Segdb_pst Segdb_util Segdb_workload Segment Table
