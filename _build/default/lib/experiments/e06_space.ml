(* E6 — space: Theorem 1(i) gives O(n) blocks for Solution 1, Theorem
   2(i) gives O(n log2 B) for Solution 2; the PSTs and interval trees
   are linear. Reported as blocks per n/B. *)

open Segdb_util
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb

let id = "e6"
let title = "E6: space (blocks) vs N"
let validates = "Theorem 1(i) O(n) vs Theorem 2(i) O(n log2 B)"

let run (p : Harness.params) =
  let span = 1000.0 in
  let table =
    Table.create ~title
      ~columns:
        [ "n"; "n/B"; "naive"; "rtree"; "sol1"; "sol2"; "sol1/(n/B)"; "sol2/(n/B)" ]
  in
  List.iter
    (fun n ->
      let segs = W.uniform (Rng.create p.seed) ~n ~span in
      let blocks b = Db.block_count (Backends.build b segs) in
      let nb = float_of_int n /. float_of_int Harness.block in
      let s1 = blocks "solution1" and s2 = blocks "solution2" in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float ~decimals:0 nb;
          Table.cell_int (blocks "naive");
          Table.cell_int (blocks "rtree");
          Table.cell_int s1;
          Table.cell_int s2;
          Table.cell_float ~decimals:2 (float_of_int s1 /. nb);
          Table.cell_float ~decimals:2 (float_of_int s2 /. nb);
        ])
    (Harness.sweep_n p);
  [ Harness.Table table ]
