(* The bridge between the obs layer and I/O accounting.

   Segdb_obs sits below segdb_io in the dependency order, so spans
   cannot read Io_stats themselves; this helper closes the loop. A
   structure passes the Io_stats.t it was built with, and the probe
   samples whichever counter the current domain actually charges
   (the installed reader's, inside [Read_context.with_reader]) at span
   entry and exit, giving each span its blocks-read delta.

   Everything here is behind [Control.enabled]: when tracing is off,
   [span] is [f ()] after one atomic load. *)

let blocks_of stats () = Io_stats.reads (Read_context.effective_stats stats)

let span stats phase f =
  if not (Segdb_obs.Control.enabled ()) then f ()
  else Segdb_obs.Trace.with_span ~blocks:(blocks_of stats) phase f

let counter name = Segdb_obs.Metrics.counter Segdb_obs.Metrics.default name

let bump c = if Segdb_obs.Control.enabled () then Segdb_obs.Metrics.incr c

let bump_by c n = if Segdb_obs.Control.enabled () then Segdb_obs.Metrics.add c n
