open Segdb_geom

type t = {
  pst : Pst.t;
  points : (float * float) array;
  y_offset : float; (* Lseg depths must be >= 0 *)
}

let build ?node_capacity ?branching ~pool ~stats points =
  let y_offset =
    Array.fold_left (fun acc (_, y) -> Float.min acc y) 0.0 points
  in
  let lsegs =
    Array.mapi
      (fun i (x, y) -> Lseg.make ~id:i ~base_v:x ~far_u:(y -. y_offset) ~far_v:x ())
      points
  in
  let pst = Pst.build ?node_capacity ?branching ~pool ~stats lsegs in
  { pst; points = Array.copy points; y_offset }

let size t = Pst.size t.pst
let block_count t = Pst.block_count t.pst

let query t ~x1 ~x2 ~y ~f =
  if x1 <= x2 then begin
    let uq = Float.max 0.0 (y -. t.y_offset) in
    (* a vertical lseg crosses depth uq iff its point's y >= y (after
       clamping, which only matters when the whole plane qualifies) *)
    let q = Lseg.query ~uq ~vlo:x1 ~vhi:x2 in
    Pst.query t.pst q ~f:(fun (ls : Lseg.t) ->
        let id = ls.Lseg.id in
        let px, py = t.points.(id) in
        if py >= y then f id (px, py))
  end

let query_ids t ~x1 ~x2 ~y =
  let acc = ref [] in
  query t ~x1 ~x2 ~y ~f:(fun id _ -> acc := id :: !acc);
  List.sort compare !acc

let count t ~x1 ~x2 ~y =
  let n = ref 0 in
  query t ~x1 ~x2 ~y ~f:(fun _ _ -> incr n);
  !n
