open Segdb_io

type pos = { paddr : int; pbase : int; poffset : int }

module Make (E : sig
  type t
end) =
struct
  type node =
    | Data of { entries : E.t array; prev : Block_store.addr; next : Block_store.addr }
    | Index of {
        firsts : E.t array; (* first entry of each child subtree *)
        offsets : int array; (* global position of each child's first entry *)
        kids : Block_store.addr array;
      }

  module Store = Block_store.Make (struct
    type t = node
  end)

  type t = {
    store : Store.t;
    cap : int;
    root : Block_store.addr; (* null iff empty *)
    length : int;
  }

  let length t = t.length
  let block_count t = Store.block_count t.store

  let build ?(block_capacity = 64) ~pool ~stats entries =
    if block_capacity < 2 then invalid_arg "Packed_list.build: block_capacity must be >= 2";
    let store = Store.create ~name:"plist" ~pool ~stats () in
    let n = Array.length entries in
    if n = 0 then { store; cap = block_capacity; root = Block_store.null; length = 0 }
    else begin
      let cap = block_capacity in
      let nblocks = (n + cap - 1) / cap in
      (* data level, chained both ways *)
      let addrs = Array.make nblocks Block_store.null in
      for b = 0 to nblocks - 1 do
        let lo = b * cap in
        let len = min cap (n - lo) in
        addrs.(b) <-
          Store.alloc store
            (Data { entries = Array.sub entries lo len; prev = Block_store.null; next = Block_store.null })
      done;
      for b = 0 to nblocks - 1 do
        let prev = if b = 0 then Block_store.null else addrs.(b - 1) in
        let next = if b = nblocks - 1 then Block_store.null else addrs.(b + 1) in
        match Store.read store addrs.(b) with
        | Data d -> Store.write store addrs.(b) (Data { d with prev; next })
        | Index _ -> assert false
      done;
      (* index levels *)
      let rec build_index (level : (Block_store.addr * E.t * int) array) =
        if Array.length level = 1 then
          let a, _, _ = level.(0) in
          a
        else begin
          let m = Array.length level in
          let nidx = (m + cap - 1) / cap in
          let next_level =
            Array.init nidx (fun b ->
                let lo = b * cap in
                let len = min cap (m - lo) in
                let firsts = Array.init len (fun i -> let _, e, _ = level.(lo + i) in e) in
                let offsets = Array.init len (fun i -> let _, _, o = level.(lo + i) in o) in
                let kids = Array.init len (fun i -> let a, _, _ = level.(lo + i) in a) in
                let addr = Store.alloc store (Index { firsts; offsets; kids }) in
                (addr, firsts.(0), offsets.(0)))
          in
          build_index next_level
        end
      in
      let data_level =
        Array.init nblocks (fun b -> (addrs.(b), entries.(b * cap), b * cap))
      in
      let root = build_index data_level in
      { store; cap = block_capacity; root; length = n }
    end

  (* Locate the data block containing global position [i]; returns its
     address, starting global position, entries, and neighbours. *)
  let rec locate t addr base i =
    match Store.read t.store addr with
    | Data { entries; prev; next } -> (addr, base, entries, prev, next)
    | Index { offsets; kids; _ } ->
        (* last child whose offset <= i *)
        let k = ref 0 in
        for j = 1 to Array.length offsets - 1 do
          if offsets.(j) <= i then k := j
        done;
        locate t kids.(!k) offsets.(!k) i

  let get t i =
    if i < 0 || i >= t.length then invalid_arg "Packed_list.get: out of bounds";
    let _, base, entries, _, _ = locate t t.root 0 i in
    entries.(i - base)

  let search t ~cmp =
    if t.length = 0 then 0
    else begin
      let rec go addr base =
        match Store.read t.store addr with
        | Data { entries; _ } ->
            let lo = ref 0 and hi = ref (Array.length entries) in
            while !lo < !hi do
              let mid = (!lo + !hi) / 2 in
              if cmp entries.(mid) < 0 then lo := mid + 1 else hi := mid
            done;
            base + !lo
        | Index { firsts; offsets; kids; _ } ->
            (* descend into the last child whose first entry is still
               before the boundary; the boundary position may equal the
               next child's first *)
            let k = ref 0 in
            for j = 1 to Array.length firsts - 1 do
              if cmp firsts.(j) < 0 then k := j
            done;
            go kids.(!k) offsets.(!k)
      in
      go t.root 0
    end

  let iter_forward t i f =
    if t.length > 0 && i < t.length then begin
      let i = max i 0 in
      let _, base0, entries0, _, next0 = locate t t.root 0 i in
      let rec go base entries next start =
        let n = Array.length entries in
        let rec scan j =
          if j >= n then
            if next = Block_store.null then ()
            else begin
              match Store.read t.store next with
              | Data d -> go (base + n) d.entries d.next 0
              | Index _ -> assert false
            end
          else
            match f (base + j) entries.(j) with `Continue -> scan (j + 1) | `Stop -> ()
        in
        scan start
      in
      go base0 entries0 next0 (i - base0)
    end

  let iter_backward t i f =
    if t.length > 0 && i >= 0 then begin
      let i = min i (t.length - 1) in
      let _, base0, entries0, prev0, _ = locate t t.root 0 i in
      let rec go base entries prev start =
        let rec scan j =
          if j < 0 then
            if prev = Block_store.null then ()
            else begin
              match Store.read t.store prev with
              | Data d ->
                  let m = Array.length d.entries in
                  go (base - m) d.entries d.prev (m - 1)
              | Index _ -> assert false
            end
          else
            match f (base + j) entries.(j) with `Continue -> scan (j - 1) | `Stop -> ()
        in
        scan start
      in
      go base0 entries0 prev0 (i - base0)
    end

  let pos_of t i =
    if t.length = 0 || i < 0 || i > t.length then invalid_arg "Packed_list.pos_of";
    let i' = min i (t.length - 1) in
    let addr, base, _, _, _ = locate t t.root 0 i' in
    (* i = length lands one past the end of the last block *)
    { paddr = addr; pbase = base; poffset = i - base }

  let walk_forward t (p : pos) f =
    let rec go addr start =
      if addr <> Block_store.null then
        match Store.read t.store addr with
        | Index _ -> assert false
        | Data { entries; next; _ } ->
            let n = Array.length entries in
            let rec scan j =
              if j >= n then go next 0
              else match f entries.(j) with `Continue -> scan (j + 1) | `Stop -> ()
            in
            scan start
    in
    if t.length > 0 then go p.paddr (max 0 p.poffset)

  let walk_backward t (p : pos) f =
    let rec go addr start =
      if addr <> Block_store.null then
        match Store.read t.store addr with
        | Index _ -> assert false
        | Data { entries; prev; _ } ->
            let rec scan j =
              if j < 0 then go prev max_int
              else
                let j = min j (Array.length entries - 1) in
                match f entries.(j) with `Continue -> scan (j - 1) | `Stop -> ()
            in
            scan (min start (Array.length entries - 1))
    in
    if t.length > 0 && (p.poffset > 0 || p.pbase > 0) then begin
      (* start strictly before the position *)
      if p.poffset > 0 then go p.paddr (p.poffset - 1)
      else
        match Store.read t.store p.paddr with
        | Data { prev; _ } -> go prev max_int
        | Index _ -> assert false
    end

  let to_array t =
    if t.length = 0 then [||]
    else begin
      let out = ref [] in
      iter_forward t 0 (fun _ e ->
          out := e :: !out;
          `Continue);
      Array.of_list (List.rev !out)
    end

  let free t =
    let rec go addr =
      if addr <> Block_store.null then begin
        (match Store.read t.store addr with
        | Data _ -> ()
        | Index { kids; _ } -> Array.iter go kids);
        Store.free t.store addr
      end
    in
    go t.root
end
