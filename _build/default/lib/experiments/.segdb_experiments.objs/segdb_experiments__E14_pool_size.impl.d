lib/experiments/e14_pool_size.ml: Harness List Option Printf Rng Segdb_core Segdb_util Segdb_workload Table
