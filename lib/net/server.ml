module Db = Segdb_core.Segdb
module Seg_file = Segdb_core.Seg_file
module Exec = Segdb_exec.Exec
module Failpoint = Segdb_io.Failpoint
module Metrics = Segdb_obs.Metrics
module Control = Segdb_obs.Control
module Trace = Segdb_obs.Trace
module Export = Segdb_obs.Export
module Log = Segdb_obs.Log
module Slowlog = Segdb_obs.Slowlog
module Sampler = Segdb_obs.Sampler

(* ---------------- addresses ---------------- *)

type addr = Tcp of string * int | Unix_path of string

let addr_of_string s =
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Result.Ok (Unix_path (String.sub s 5 (String.length s - 5)))
  else if String.contains s '/' then Result.Ok (Unix_path s)
  else
    match String.rindex_opt s ':' with
    | None -> Result.Error (Printf.sprintf "%S: expected HOST:PORT or unix:PATH" s)
    | Some i -> (
        let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 ->
            Result.Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | _ -> Result.Error (Printf.sprintf "%S: bad port" s))

let addr_to_string = function
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p
  | Unix_path p -> "unix:" ^ p

let pp_addr ppf a = Format.pp_print_string ppf (addr_to_string a)

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> raise (Unix.Unix_error (Unix.EINVAL, "getaddrinfo", host)))
      in
      Unix.ADDR_INET (ip, port)

(* ---------------- connections ---------------- *)

(* A subscribed replica's cursor: the LSN up to which records have been
   pushed down this connection (acknowledged LSNs live in the stream's
   ack table, keyed by peer). *)
type sub = { mutable sent_lsn : int }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  mutable inbuf : string;  (** bytes received, not yet framed *)
  wlock : Mutex.t;  (** serializes frame writes (pool workers + accept loop) *)
  pending : int Atomic.t;  (** submitted requests still owing a response *)
  closing : bool Atomic.t;  (** reaped by the accept loop once [pending] drains *)
  mutable last_active : float;  (** last read, for idle reaping *)
  mutable sub : sub option;  (** a subscribed replica (exempt from reaping) *)
}

(* The server owns no execution machinery of its own: queueing,
   admission control, worker domains, deadlines and per-worker readers
   all live in [Exec]. What is left here is purely the socket side —
   accept, frame, dispatch, respond — plus the replication stream
   state and the reader/writer gate that serializes mutations against
   served queries. *)
type t = {
  db : Db.t;
  lfd : Unix.file_descr;
  bound : addr;
  deadline_ms : int;  (** 0 disables *)
  cache_blocks : int option;
  idle_timeout_s : float;  (** 0 disables *)
  health_stall_s : float;  (** replica staleness before /healthz turns 503 *)
  pool : Exec.t;
  repl : Replication.t;
  gate : Replication.Gate.t;
  mutable tail : Replication.tail option;  (** the replica's subscription loop *)
  stopping : bool Atomic.t;
  killed : bool Atomic.t;  (** abrupt death requested — no graceful drain *)
  mutable conns : conn list;  (** owned by the accept-loop domain *)
  live_conns : int Atomic.t;  (** |conns|, readable off the accept domain *)
  mutable next_conn : int;
  mutable http : Http.t option;  (** the monitoring exporter, if enabled *)
  mutable metrics_bound_ : addr option;
  mutable runner : unit Domain.t option;
  (* metric handles, resolved once *)
  m_requests : Metrics.counter;
  m_bytes_in : Metrics.counter;
  m_bytes_out : Metrics.counter;
}

let connector addr () =
  let sa = sockaddr_of addr in
  let dom =
    match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd sa;
     match addr with
     | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
     | Unix_path _ -> ()
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  fd

let create ?(domains = 2) ?(queue_depth = 128) ?(deadline_ms = 5000) ?cache_blocks
    ?(idle_timeout_s = 0.) ?(health_stall_s = 3.0) ?epoch ?replica_of ~db addr =
  let sa = sockaddr_of addr in
  (match addr with
  | Unix_path p when Sys.file_exists p && (Unix.stat p).Unix.st_kind = Unix.S_SOCK ->
      (* a stale socket from a dead server; a live one fails at bind *)
      Unix.unlink p
  | _ -> ());
  let dom = match sa with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET in
  let lfd = Unix.socket dom Unix.SOCK_STREAM 0 in
  (try
     (match addr with Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true | Unix_path _ -> ());
     Unix.bind lfd sa;
     Unix.listen lfd 64
   with e ->
     Unix.close lfd;
     raise e);
  let bound =
    match (addr, Unix.getsockname lfd) with
    | Tcp (h, _), Unix.ADDR_INET (_, p) -> Tcp (h, p)
    | a, _ -> a
  in
  let reg = Metrics.default in
  let role =
    match replica_of with
    | Some _ -> Replication.Replica
    | None -> Replication.Primary
  in
  let repl = Replication.create ~role ?epoch () in
  Replication.attach repl db;
  let gate = Replication.Gate.create () in
  let t =
    {
      db;
      lfd;
      bound;
      deadline_ms = max 0 deadline_ms;
      cache_blocks;
      idle_timeout_s = Float.max 0. idle_timeout_s;
      health_stall_s = Float.max 0.001 health_stall_s;
      pool = Exec.create ~queue_depth:(max 0 queue_depth) ~workers:(max 1 domains) ();
      repl;
      gate;
      tail = None;
      stopping = Atomic.make false;
      killed = Atomic.make false;
      conns = [];
      live_conns = Atomic.make 0;
      next_conn = 0;
      http = None;
      metrics_bound_ = None;
      runner = None;
      m_requests = Metrics.counter reg "net.requests";
      m_bytes_in = Metrics.counter reg "net.bytes_in";
      m_bytes_out = Metrics.counter reg "net.bytes_out";
    }
  in
  (match replica_of with
  | None -> ()
  | Some upstream ->
      t.tail <-
        Some
          (Replication.start_tail ~connect:(connector upstream) ~gate ~db ~stream:repl ()));
  (* the sampler (and any scrape via [Sampler.refresh_gauges]) pulls
     this node's serving/replication standing into the registry; every
     value read here is atomic- or mutex-protected, so the source is
     safe to run from the sampler's domain *)
  Sampler.register_source
    ("server@" ^ addr_to_string bound)
    (fun () ->
      let acks = Replication.acks t.repl in
      let lsn = Replication.lsn t.repl in
      [
        ("net.connections", Atomic.get t.live_conns);
        ("exec.pool_busy", Exec.busy t.pool);
        ("exec.pool_workers", Exec.size t.pool);
        ("exec.queue_len", Exec.queued t.pool);
        ("repl.epoch", Replication.epoch t.repl);
        ("repl.last_lsn", lsn);
        ("repl.is_primary", if Replication.role t.repl = Replication.Primary then 1 else 0);
        ( "repl.ms_since_progress",
          int_of_float (Replication.seconds_since_progress t.repl *. 1e3) );
      ]
      @ List.map (fun (peer, acked) -> ("repl.lag_records." ^ peer, max 0 (lsn - acked))) acks);
  t

let bound_addr t = t.bound
let metrics_addr t = t.metrics_bound_
let pool t = t.pool
let replication t = t.repl
let stop t = Atomic.set t.stopping true

let kill t =
  Atomic.set t.killed true;
  Atomic.set t.stopping true

(* ---------------- responses ---------------- *)

(* A failed write means the peer is gone: mark the connection for
   reaping rather than raising into whoever answered. *)
let respond t conn resp =
  let s = Wire.encode_response resp in
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      let t0 = if Control.enabled () then Trace.now_ns () else 0 in
      match Wire.send conn.fd s with
      | () ->
          if t0 <> 0 then begin
            Metrics.add t.m_bytes_out (String.length s);
            Metrics.observe Metrics.default "net.write.ns" (Trace.now_ns () - t0)
          end
      | exception Unix.Unix_error (_, _, _) -> Atomic.set conn.closing true)

(* ---------------- request execution (via the engine) ---------------- *)

let obs_off_note = "observability disabled (set SEGDB_OBS=1 or serve without --no-obs)"

let stats_payload t fmt =
  let reg = Metrics.default in
  (* pull gauge sources (runtime, serving, replication) to now, so a
     scrape never reads values from the previous sampler tick *)
  if Control.enabled () then Sampler.refresh_gauges ();
  match fmt with
  | `Text ->
      if Control.enabled () then Export.text reg
      else obs_off_note ^ "\n\n" ^ Export.text reg
  | `Json -> Export.json reg
  | `Prometheus ->
      let body = Export.prometheus ~labels:[ ("addr", addr_to_string t.bound) ] reg in
      if Control.enabled () then body else "# " ^ obs_off_note ^ "\n" ^ body

(* The stream only knows acknowledged LSNs; the per-connection push
   cursors live on this domain's [conn] records. Runs on the accept
   loop (both wire dispatch and the HTTP handler do), so reading
   [t.conns] needs no lock. *)
let repl_status_enriched t =
  let st = Replication.status t.repl in
  let sent_of peer =
    List.find_map
      (fun c ->
        match c.sub with
        | Some s when c.peer = peer && not (Atomic.get c.closing) -> Some s.sent_lsn
        | _ -> None)
      t.conns
  in
  {
    st with
    Wire.peers =
      List.map
        (fun (p : Wire.repl_peer) ->
          match sent_of p.Wire.peer with
          | Some sent -> { p with Wire.sent_lsn = sent }
          | None -> p)
        st.Wire.peers;
  }

(* ---------------- the monitoring endpoints ---------------- *)

let healthz t =
  let st = repl_status_enriched t in
  let progress_s = Replication.seconds_since_progress t.repl in
  let stopping = Atomic.get t.stopping in
  let stalled = st.Wire.role = "replica" && progress_s > t.health_stall_s in
  let state = if stopping then "stopping" else if stalled then "stalled" else "ok" in
  let b = Buffer.create 256 in
  Printf.bprintf b
    "{\"status\":%S,\"role\":%S,\"epoch\":%d,\"lsn\":%d,\"seconds_since_progress\":%.3f,\"queue_depth\":%d,\"pool_busy\":%d,\"pool_workers\":%d,\"connections\":%d,\"lag\":{"
    state st.Wire.role st.Wire.epoch st.Wire.lsn progress_s (Exec.queued t.pool)
    (Exec.busy t.pool) (Exec.size t.pool)
    (Atomic.get t.live_conns);
  List.iteri
    (fun i { Wire.peer; acked_lsn; _ } ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "%S:%d" peer (max 0 (st.Wire.lsn - acked_lsn)))
    st.Wire.peers;
  Buffer.add_string b "}}\n";
  let status = if stopping || stalled then 503 else 200 in
  { Http.status; content_type = "application/json"; body = Buffer.contents b }

let http_handler t path =
  match path with
  | "/metrics" ->
      { Http.status = 200; content_type = "text/plain; version=0.0.4";
        body = stats_payload t `Prometheus }
  | "/healthz" -> healthz t
  | "/varz" ->
      { Http.status = 200; content_type = "application/json"; body = Sampler.varz_json () }
  | _ ->
      { Http.status = 404; content_type = "application/json";
        body = Printf.sprintf "{\"error\":\"no such endpoint %s\"}\n" path }

let serve_metrics t addr =
  (match addr with
  | Unix_path p when Sys.file_exists p && (Unix.stat p).Unix.st_kind = Unix.S_SOCK ->
      Unix.unlink p
  | _ -> ());
  let h = Http.create ~handler:(http_handler t) (sockaddr_of addr) in
  let bound =
    match (addr, Http.bound h) with
    | Tcp (host, _), Unix.ADDR_INET (_, p) -> Tcp (host, p)
    | a, _ -> a
  in
  t.http <- Some h;
  t.metrics_bound_ <- Some bound;
  Log.info ~comp:"server" "metrics endpoint up" (fun () ->
      [ Log.s "addr" (addr_to_string bound) ]);
  bound

(* An [Exec] outcome, folded back into the wire vocabulary of the
   request that produced it. *)
let response_of_outcome t ~kind (o : Exec.outcome) =
  match (o, kind) with
  | Exec.Ok out, `Query -> Wire.Ids { ids = out.(0); complete = true; faults = [] }
  | Exec.Ok out, `Count -> Wire.Counted (List.length out.(0))
  | Exec.Ok out, `Batch -> Wire.Batch_ids { results = out; complete = true; faults = [] }
  | Exec.Degraded (out, faults), `Query ->
      Wire.Ids { ids = out.(0); complete = false; faults }
  | Exec.Degraded (_, faults), `Count ->
      (* a count has no partial-answer channel: surface the fault *)
      Wire.Error (Wire.Server_error, String.concat "; " faults)
  | Exec.Degraded (out, faults), `Batch ->
      Wire.Batch_ids { results = out; complete = false; faults }
  | Exec.Deadline_exceeded { completed = 0; _ }, _ ->
      (* expired before any work — still queued when the budget ran out *)
      Wire.Error (Wire.Deadline, Printf.sprintf "queued past %dms" t.deadline_ms)
  | Exec.Deadline_exceeded { partial; completed }, `Batch ->
      Wire.Batch_ids
        {
          results = partial;
          complete = false;
          faults =
            [
              Printf.sprintf "deadline exceeded after %d of %d queries" completed
                (Array.length partial);
            ];
        }
  | Exec.Deadline_exceeded _, (`Query | `Count) ->
      (* unreachable: a single-query request either completes its one
         query (first-query immunity) or expires with completed = 0 *)
      Wire.Error (Wire.Deadline, "deadline exceeded")
  | Exec.Overloaded, _ -> Wire.Error (Wire.Overloaded, "request queue full")
  | Exec.Cancelled _, _ -> Wire.Error (Wire.Server_error, "cancelled")

(* Hand a query-bearing request to the pool. The completion callback
   runs on whichever worker domain served it (or right here, for an
   admission refusal) and writes the response itself — no coordination
   hop back to the accept loop. *)
let submit_query t conn req =
  Atomic.incr conn.pending;
  (* enter the gate as a reader before the request can reach a worker:
     a mutation (wire write, replicated batch) waits for in-flight
     queries and blocks new ones, so no query observes a half-applied
     batch *)
  Replication.Gate.enter_read t.gate;
  let t0 = Trace.now_ns () in
  let qs, kind, rid, trace =
    match req with
    | Wire.Query q -> ([| q |], `Query, 0, false)
    | Wire.Count q -> ([| q |], `Count, 0, false)
    | Wire.Batch qs -> (qs, `Batch, 0, false)
    | Wire.Batch_ex { request_id; trace; queries } -> (queries, `Batch, request_id, trace)
    | _ -> assert false
  in
  let ereq =
    Exec.request ~deadline_ms:t.deadline_ms
      ?request_id:(if rid <> 0 then Some rid else None)
      ~trace qs
  in
  let on_complete outcome =
    respond t conn (response_of_outcome t ~kind outcome);
    (match outcome with
    | Exec.Overloaded when Log.would_log Log.Warn ->
        Log.warn ~comp:"server" "request refused: overloaded" (fun () ->
            [ Log.s "peer" conn.peer; Log.i "queries" (Array.length qs) ])
    | _ -> ());
    if Control.enabled () then begin
      let now = Trace.now_ns () in
      Metrics.observe Metrics.default "net.request.ns" (now - t0);
      (* the server-side envelope of the request: receipt to response
         written, bridging the accept loop and the worker domain *)
      Trace.record ~request_id:(Exec.request_id ereq) ~t0_ns:t0 ~dur_ns:(now - t0)
        "server.request"
    end;
    Replication.Gate.exit_read t.gate;
    Atomic.decr conn.pending
  in
  ignore (Exec.submit ?cache_blocks:t.cache_blocks ~on_complete t.pool t.db ereq)

(* ---------------- replication handlers ---------------- *)

(* Push pending records to every subscribed replica. Runs on the
   accept-loop domain only (right after a wire write lands, and every
   select tick for in-process writers), so subscriber cursors need no
   locking. *)
let flush_subscribers t =
  let l = Replication.lsn t.repl in
  let e = Replication.epoch t.repl in
  List.iter
    (fun c ->
      match c.sub with
      | Some sub when (not (Atomic.get c.closing)) && l > sub.sent_lsn -> (
          match Replication.records_from t.repl sub.sent_lsn with
          | Some records ->
              let from_lsn = sub.sent_lsn in
              sub.sent_lsn <- from_lsn + List.length records;
              respond t c (Wire.Repl_records { epoch = e; from_lsn; records })
          | None ->
              (* the tail was trimmed past this subscriber: resync *)
              let resp =
                Replication.Gate.with_write t.gate (fun () ->
                    Wire.Repl_snapshot
                      { epoch = e; lsn = Replication.lsn t.repl; segments = Db.segments t.db })
              in
              (match resp with
              | Wire.Repl_snapshot { lsn; _ } -> sub.sent_lsn <- lsn
              | _ -> ());
              respond t c resp)
      | _ -> ())
    t.conns

(* A wire write: primary-only, committed through the idempotent replay
   path (safe under client retry), serialized against queries by the
   gate, then streamed out immediately. *)
let handle_write t conn op =
  if Atomic.get t.stopping then
    respond t conn (Wire.Error (Wire.Shutting_down, "draining"))
  else if Replication.role t.repl <> Replication.Primary then
    respond t conn
      (Wire.Error (Wire.Not_primary, "read-only replica: write to the primary or promote"))
  else begin
    let changed = Replication.Gate.with_write t.gate (fun () -> Db.commit t.db op) in
    respond t conn (Wire.Applied { lsn = Replication.lsn t.repl; changed });
    flush_subscribers t
  end

let handle_subscribe t conn ~epoch ~from_lsn =
  let my = Replication.epoch t.repl in
  if Atomic.get t.stopping then
    respond t conn (Wire.Error (Wire.Shutting_down, "draining"))
  else if epoch > my then begin
    (* the subscriber has seen a newer primary: we are the stale one
       and must not stream history the cluster has moved past *)
    Log.warn ~comp:"repl" "subscriber carries newer epoch; refusing to stream" (fun () ->
        [ Log.s "peer" conn.peer; Log.i "their_epoch" epoch; Log.i "our_epoch" my ]);
    respond t conn
      (Wire.Error
         (Wire.Fenced, Printf.sprintf "node epoch %d is behind subscriber epoch %d" my epoch))
  end
  else if Replication.role t.repl <> Replication.Primary then
    respond t conn (Wire.Error (Wire.Not_primary, "cannot subscribe to a replica"))
  else begin
    (* same epoch and a from_lsn the in-memory tail still covers →
       stream the tail; anything else (an older epoch's divergent
       history, a subscriber older than the retained tail, a fresh
       node) → full snapshot under the gate, so (segments, lsn) is one
       consistent cut *)
    let answer =
      if epoch = my then
        match Replication.records_from t.repl from_lsn with
        | Some records ->
            Some (Wire.Repl_records { epoch = my; from_lsn; records }, from_lsn + List.length records)
        | None -> None
      else None
    in
    let answer, sent_lsn =
      match answer with
      | Some a -> a
      | None ->
          Replication.Gate.with_write t.gate (fun () ->
              let lsn = Replication.lsn t.repl in
              (Wire.Repl_snapshot { epoch = my; lsn; segments = Db.segments t.db }, lsn))
    in
    (* the cursor is exactly what this answer carries — never re-read
       the stream lsn here, or a commit landing between building the
       answer and this line would be skipped for this subscriber *)
    conn.sub <- Some { sent_lsn };
    Log.info ~comp:"repl" "replica subscribed" (fun () ->
        [
          Log.s "peer" conn.peer;
          Log.i "from_lsn" from_lsn;
          Log.i "epoch" epoch;
          Log.b "snapshot" (match answer with Wire.Repl_snapshot _ -> true | _ -> false);
        ]);
    respond t conn answer
  end

let handle_ack t conn ~epoch ~lsn =
  let my = Replication.epoch t.repl in
  if epoch <> my then begin
    Log.warn ~comp:"repl" "stale-epoch ack fenced" (fun () ->
        [ Log.s "peer" conn.peer; Log.i "their_epoch" epoch; Log.i "our_epoch" my ]);
    respond t conn
      (Wire.Error
         (Wire.Fenced, Printf.sprintf "ack epoch %d does not match node epoch %d" epoch my))
  end
  else Replication.ack t.repl ~peer:conn.peer lsn (* fire-and-forget: no response *)

let handle_promote t conn ~epoch =
  match Replication.role t.repl with
  | Replication.Primary ->
      let cur = Replication.epoch t.repl in
      if epoch = 0 || epoch = cur then
        (* idempotent for an operator script that retries *)
        respond t conn (Wire.Promoted { epoch = cur })
      else if epoch > cur then begin
        (* operator-forced fence bump on a live primary *)
        Replication.set_epoch t.repl epoch;
        Log.info ~comp:"repl" "epoch bumped" (fun () -> [ Log.i "epoch" epoch ]);
        respond t conn (Wire.Promoted { epoch })
      end
      else
        respond t conn
          (Wire.Error
             ( Wire.Fenced,
               Printf.sprintf "promote to epoch %d is behind current epoch %d" epoch cur
             ))
  | Replication.Replica -> (
      match Replication.promote t.repl ~epoch () with
      | new_epoch ->
          (match t.tail with Some tl -> Replication.stop_tail tl | None -> ());
          Log.info ~comp:"repl" "promoted to primary" (fun () ->
              [ Log.i "epoch" new_epoch; Log.i "lsn" (Replication.lsn t.repl) ]);
          respond t conn (Wire.Promoted { epoch = new_epoch })
      | exception Invalid_argument msg -> respond t conn (Wire.Error (Wire.Fenced, msg)))

(* ---------------- accept loop ---------------- *)

let dispatch t conn req =
  if Control.enabled () then Metrics.incr t.m_requests;
  match req with
  | Wire.Ping -> respond t conn Wire.Pong
  | Wire.Shutdown ->
      Log.info ~comp:"server" "shutdown frame received; draining" (fun () ->
          [ Log.s "peer" conn.peer ]);
      respond t conn Wire.Shutdown_ack;
      stop t
  | Wire.Stats fmt -> respond t conn (Wire.Stats_payload (stats_payload t fmt))
  | Wire.Trace_fetch { request_id } ->
      (* inline like Stats: a read of the trace ring, no execution *)
      let evs =
        List.filter (fun (e : Trace.event) -> e.Trace.request_id = request_id) (Trace.events ())
      in
      respond t conn (Wire.Trace_events evs)
  | Wire.Slowlog fmt ->
      let es = Slowlog.entries () in
      respond t conn
        (Wire.Slowlog_payload
           (match fmt with `Text -> Slowlog.to_text es | `Json -> Slowlog.to_json es))
  | Wire.Insert s -> handle_write t conn (Db.Op_insert s)
  | Wire.Delete s -> handle_write t conn (Db.Op_delete s)
  | Wire.Repl_subscribe { epoch; from_lsn } -> handle_subscribe t conn ~epoch ~from_lsn
  | Wire.Repl_ack { epoch; lsn } -> handle_ack t conn ~epoch ~lsn
  | Wire.Repl_status -> respond t conn (Wire.Repl_status_payload (repl_status_enriched t))
  | Wire.Promote { epoch } -> handle_promote t conn ~epoch
  | Wire.Query _ | Wire.Count _ | Wire.Batch _ | Wire.Batch_ex _ ->
      if Atomic.get t.stopping then respond t conn (Wire.Error (Wire.Shutting_down, "draining"))
      else submit_query t conn req

(* Peel complete frames off [conn.inbuf]. Framing damage (oversized
   header, CRC mismatch) means the stream can no longer be trusted:
   answer [Corrupt_frame] and close. A frame that is intact but does
   not decode is the client's problem alone: [Bad_request], stream
   stays up. *)
let parse_frames t conn =
  let continue = ref true in
  while !continue && not (Atomic.get conn.closing) do
    let buf = conn.inbuf in
    let have = String.length buf in
    if have < Wire.header_bytes then continue := false
    else
      match Wire.decode_header (String.sub buf 0 Wire.header_bytes) with
      | Result.Error e ->
          respond t conn (Wire.Error (Wire.Corrupt_frame, Wire.protocol_error_to_string e));
          Atomic.set conn.closing true
      | Result.Ok (len, crc) ->
          if have < Wire.header_bytes + len then continue := false
          else begin
            let payload = String.sub buf Wire.header_bytes len in
            conn.inbuf <-
              String.sub buf (Wire.header_bytes + len) (have - Wire.header_bytes - len);
            match Wire.check_payload ~crc payload with
            | Result.Error e ->
                Log.warn ~comp:"server" "corrupt frame; closing stream" (fun () ->
                    [ Log.s "peer" conn.peer; Log.s "error" (Wire.protocol_error_to_string e) ]);
                respond t conn (Wire.Error (Wire.Corrupt_frame, Wire.protocol_error_to_string e));
                Atomic.set conn.closing true
            | Result.Ok payload -> (
                let t_dec = if Control.enabled () then Trace.now_ns () else 0 in
                let decoded = Wire.decode_request payload in
                if t_dec <> 0 then
                  Metrics.observe Metrics.default "net.decode.ns" (Trace.now_ns () - t_dec);
                match decoded with
                | Result.Error e ->
                    respond t conn
                      (Wire.Error (Wire.Bad_request, Wire.protocol_error_to_string e))
                | Result.Ok req -> dispatch t conn req)
          end
  done

let read_chunk t conn =
  let buf = Bytes.create 65536 in
  match Failpoint.Io.recv conn.fd buf ~pos:0 ~len:(Bytes.length buf) with
  | 0 -> Atomic.set conn.closing true
  | n ->
      if Control.enabled () then Metrics.add t.m_bytes_in n;
      conn.last_active <- Unix.gettimeofday ();
      conn.inbuf <- conn.inbuf ^ Bytes.sub_string buf 0 n;
      parse_frames t conn
  | exception Unix.Unix_error (_, _, _) -> Atomic.set conn.closing true

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX _ -> "unix"
  | exception Unix.Unix_error (_, _, _) -> "?"

let accept_conn t =
  match Unix.accept t.lfd with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
      (match t.bound with
      | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
      | Unix_path _ -> ());
      (* Unix-socket peers are all anonymous; the counter keeps them
         distinct in logs and in the replication ack table *)
      t.next_conn <- t.next_conn + 1;
      let peer =
        match peer_string fd with
        | "unix" -> Printf.sprintf "unix#%d" t.next_conn
        | p -> p
      in
      Log.info ~comp:"server" "connection accepted" (fun () -> [ Log.s "peer" peer ]);
      Atomic.incr t.live_conns;
      t.conns <-
        {
          fd;
          peer;
          inbuf = "";
          wlock = Mutex.create ();
          pending = Atomic.make 0;
          closing = Atomic.make false;
          last_active = Unix.gettimeofday ();
          sub = None;
        }
        :: t.conns

(* Close connections marked [closing] whose queued jobs have all
   answered — deferring the close keeps worker writes off a reused fd.
   With [idle_timeout_s] set, a peer silent past it is reaped too:
   a dead client must not hold its slot forever. Subscribed replicas
   are exempt — quiet is their steady state between writes. *)
let reap t =
  if t.idle_timeout_s > 0. then begin
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if
          (not (Atomic.get c.closing))
          && c.sub = None
          && Atomic.get c.pending = 0
          && now -. c.last_active > t.idle_timeout_s
        then begin
          Log.info ~comp:"server" "idle connection reaped" (fun () ->
              [ Log.s "peer" c.peer; Log.f "idle_s" (now -. c.last_active) ]);
          Atomic.set c.closing true
        end)
      t.conns
  end;
  let dead, live =
    List.partition (fun c -> Atomic.get c.closing && Atomic.get c.pending = 0) t.conns
  in
  List.iter
    (fun c ->
      Atomic.decr t.live_conns;
      try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
    dead;
  t.conns <- live

let run t =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (* serve *)
  while not (Atomic.get t.stopping) do
    let rfds = t.lfd :: List.map (fun c -> c.fd) t.conns in
    let rfds = match t.http with Some h -> rfds @ Http.fds h | None -> rfds in
    (match Unix.select rfds [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.lfd then accept_conn t
            else
              match t.http with
              | Some h when Http.owns h fd -> Http.handle h fd
              | _ -> (
                  match List.find_opt (fun c -> c.fd = fd) t.conns with
                  | Some c when not (Atomic.get c.closing) -> read_chunk t c
                  | _ -> ()))
          ready);
    reap t;
    (match t.http with Some h -> Http.reap h | None -> ());
    (* pushes records landed by in-process writers (wire writes flush
       inline); bounds steady-state replication lag at one tick *)
    flush_subscribers t
  done;
  (match t.tail with Some tl -> Replication.stop_tail tl | None -> ());
  (try Unix.close t.lfd with Unix.Unix_error (_, _, _) -> ());
  Sampler.unregister_source ("server@" ^ addr_to_string t.bound);
  (match t.http with
  | Some h ->
      Http.close h;
      t.http <- None;
      (match t.metrics_bound_ with
      | Some (Unix_path p) -> (
          try Unix.unlink p with Unix.Unix_error (_, _, _) | Sys_error _ -> ())
      | _ -> ())
  | None -> ());
  let drained () = List.for_all (fun c -> Atomic.get c.pending = 0) t.conns in
  if Atomic.get t.killed then begin
    (* abrupt death (chaos soak): sever every connection mid-exchange —
       no drain answers, no unlink (a real SIGKILL leaves the socket
       path behind). Fds close only after in-flight jobs finish, so a
       worker's response write hits a severed socket, never a reused
       descriptor. *)
    List.iter
      (fun c -> try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ())
      t.conns;
    while not (drained ()) do
      Unix.sleepf 0.002
    done;
    Exec.shutdown t.pool;
    List.iter (fun c -> Atomic.set c.closing true) t.conns;
    reap t
  end
  else begin
    (* drain: no new connections or requests; answer what is queued,
       then stop the pool (joins its worker domains) *)
    Log.info ~comp:"server" "draining" (fun () ->
        [
          Log.s "addr" (addr_to_string t.bound);
          Log.i "connections" (List.length t.conns);
          Log.i "pending" (List.fold_left (fun a c -> a + Atomic.get c.pending) 0 t.conns);
        ]);
    while not (drained ()) do
      Unix.sleepf 0.002
    done;
    Exec.shutdown t.pool;
    Log.info ~comp:"server" "drained; pool stopped" (fun () ->
        [ Log.s "addr" (addr_to_string t.bound) ]);
    List.iter (fun c -> Atomic.set c.closing true) t.conns;
    List.iter (fun c -> Atomic.set c.pending 0) t.conns;
    reap t;
    match t.bound with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error (_, _, _) | Sys_error _ -> ())
    | Tcp _ -> ()
  end;
  match t.tail with
  | Some tl -> Replication.join_tail tl
  | None -> ()

let start t = t.runner <- Some (Domain.spawn (fun () -> run t))

let wait t =
  match t.runner with
  | None -> ()
  | Some d ->
      t.runner <- None;
      Domain.join d

(* ---------------- db loading ---------------- *)

let sniff_magic path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> try really_input_string ic 8 with End_of_file -> "")

let open_or_build ?(backend = `Solution2) ?(block = 64) path =
  if sniff_magic path = "SEGDBSNP" then Db.open_db path
  else Db.create ~backend ~block (Seg_file.load path)
