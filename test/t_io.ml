(* Tests for the simulated disk: LRU semantics and exact I/O accounting. *)

open Segdb_io

let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Lru ---------------- *)

let test_lru_basic () =
  let l = Lru.create ~capacity:2 in
  let evicted = ref [] in
  let on_evict k _ = evicted := k :: !evicted in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 2 "b" ~on_evict;
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find l 1);
  Lru.put l 3 "c" ~on_evict;
  (* 2 was least recently used (1 was touched by find) *)
  Alcotest.(check (list int)) "evicted 2" [ 2 ] !evicted;
  Alcotest.(check (option string)) "2 gone" None (Lru.find l 2);
  Alcotest.(check int) "length" 2 (Lru.length l)

let test_lru_replace () =
  let l = Lru.create ~capacity:2 in
  let on_evict _ _ = Alcotest.fail "no eviction expected" in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 1 "b" ~on_evict;
  Alcotest.(check (option string)) "replaced" (Some "b") (Lru.find l 1);
  Alcotest.(check int) "length 1" 1 (Lru.length l)

let test_lru_remove () =
  let l = Lru.create ~capacity:4 in
  let on_evict _ _ = () in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 2 "b" ~on_evict;
  Alcotest.(check (option string)) "remove returns" (Some "a") (Lru.remove l 1);
  Alcotest.(check (option string)) "remove again" None (Lru.remove l 1);
  Alcotest.(check int) "length" 1 (Lru.length l)

let test_lru_iter_order () =
  let l = Lru.create ~capacity:3 in
  let on_evict _ _ = () in
  Lru.put l 1 "a" ~on_evict;
  Lru.put l 2 "b" ~on_evict;
  Lru.put l 3 "c" ~on_evict;
  ignore (Lru.find l 1);
  let order = ref [] in
  Lru.iter l (fun k _ -> order := k :: !order);
  Alcotest.(check (list int)) "MRU first" [ 1; 3; 2 ] (List.rev !order)

(* Model-based property: the LRU against a naive list model. *)
let prop_lru_model =
  QCheck.Test.make ~name:"lru model equivalence" ~count:300
    QCheck.(pair (int_range 1 8) (small_list (pair (int_range 0 15) (int_range 0 100))))
    (fun (cap, ops) ->
      QCheck.assume (cap >= 1);
      let l = Lru.create ~capacity:cap in
      (* model: association list, most recent first *)
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (k, v) ->
          Lru.put l k v ~on_evict:(fun _ _ -> ());
          model := (k, v) :: List.remove_assoc k !model;
          if List.length !model > cap then
            model := List.filteri (fun i _ -> i < cap) !model)
        ops;
      List.iter
        (fun (k, _) ->
          match List.assoc_opt k !model with
          | Some mv -> if Lru.find l k <> Some mv then ok := false
          | None -> if Lru.mem l k then ok := false)
        ops;
      if Lru.length l <> List.length !model then ok := false;
      !ok)

(* ---------------- Block_store ---------------- *)

module S = Block_store.Make (struct
  type t = int
end)

let mk ?(cap = 4) () =
  let pool = Block_store.Pool.create ~capacity:cap in
  let io = Io_stats.create () in
  let s = S.create ~pool ~stats:io () in
  (s, io, pool)

let test_store_roundtrip () =
  let s, _, _ = mk () in
  let a = S.alloc s 10 and b = S.alloc s 20 in
  Alcotest.(check int) "read a" 10 (S.read s a);
  Alcotest.(check int) "read b" 20 (S.read s b);
  S.write s a 11;
  Alcotest.(check int) "read a after write" 11 (S.read s a);
  Alcotest.(check int) "live blocks" 2 (S.block_count s)

let test_store_no_io_while_resident () =
  let s, io, _ = mk ~cap:8 () in
  let addrs = List.init 4 (fun i -> S.alloc s i) in
  List.iter (fun a -> ignore (S.read s a)) addrs;
  List.iter (fun a -> ignore (S.read s a)) addrs;
  Alcotest.(check int) "no reads charged while resident" 0 (Io_stats.reads io);
  Alcotest.(check int) "no writes yet" 0 (Io_stats.writes io);
  Alcotest.(check int) "allocs counted" 4 (Io_stats.allocs io)

let test_store_eviction_charges () =
  let s, io, _ = mk ~cap:2 () in
  let a = S.alloc s 1 in
  let b = S.alloc s 2 in
  let c = S.alloc s 3 in
  (* pool holds 2; allocating c evicted a (dirty) -> 1 write *)
  Alcotest.(check int) "write on dirty eviction" 1 (Io_stats.writes io);
  Alcotest.(check int) "read back a" 1 (S.read s a);
  (* reading a missed -> 1 read, and evicted b (dirty) -> +1 write *)
  Alcotest.(check int) "read charged" 1 (Io_stats.reads io);
  Alcotest.(check int) "second dirty eviction" 2 (Io_stats.writes io);
  ignore (S.read s c);
  ignore b

let test_store_clean_eviction_free () =
  let s, io, _ = mk ~cap:1 () in
  let a = S.alloc s 1 in
  let _b = S.alloc s 2 in
  (* a evicted dirty: 1 write *)
  Alcotest.(check int) "dirty eviction" 1 (Io_stats.writes io);
  ignore (S.read s a);
  (* b evicted dirty: +1 write; a resident clean *)
  Alcotest.(check int) "dirty eviction b" 2 (Io_stats.writes io);
  ignore (S.read s _b);
  (* a evicted clean: no write *)
  Alcotest.(check int) "clean eviction free" 2 (Io_stats.writes io);
  Alcotest.(check int) "reads" 2 (Io_stats.reads io)

let test_store_free_and_errors () =
  let s, _, _ = mk () in
  let a = S.alloc s 5 in
  S.free s a;
  Alcotest.(check int) "no live blocks" 0 (S.block_count s);
  (match S.read s a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "read after free should raise");
  match S.free s a with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double free should raise"

let test_store_flush () =
  let s, io, _ = mk ~cap:8 () in
  let a = S.alloc s 1 and b = S.alloc s 2 in
  S.flush s;
  Alcotest.(check int) "flush writes dirty blocks" 2 (Io_stats.writes io);
  S.flush s;
  Alcotest.(check int) "second flush free" 2 (Io_stats.writes io);
  ignore (a, b)

let test_store_write_nonresident_no_read () =
  let s, io, _ = mk ~cap:1 () in
  let a = S.alloc s 1 in
  let _b = S.alloc s 2 in
  (* a is on disk now *)
  let r0 = Io_stats.reads io in
  S.write s a 10;
  Alcotest.(check int) "blind overwrite charges no read" r0 (Io_stats.reads io);
  Alcotest.(check int) "value updated" 10 (S.read s a)

(* Satellite pin for block_store.mli's write contract: overwriting a
   non-resident block charges no read at write time, and the dirty page
   is charged exactly one write when evicted or flushed. *)
let test_store_blind_write_accounting () =
  let s, io, _ = mk ~cap:1 () in
  let a = S.alloc s 1 in
  let _b = S.alloc s 2 in
  (* alloc b evicted dirty a: 1 write *)
  Alcotest.(check int) "setup eviction" 1 (Io_stats.writes io);
  S.write s a 10;
  (* blind overwrite of non-resident a: no read, no write yet; inserting
     the frame evicted dirty b: +1 write *)
  Alcotest.(check int) "no read charged" 0 (Io_stats.reads io);
  Alcotest.(check int) "only b's eviction charged" 2 (Io_stats.writes io);
  S.flush s;
  (* the overwritten page pays exactly one write at flush *)
  Alcotest.(check int) "one write on flush" 3 (Io_stats.writes io);
  S.flush s;
  Alcotest.(check int) "clean after flush" 3 (Io_stats.writes io);
  Alcotest.(check int) "value survived" 10 (S.read s a);
  Alcotest.(check int) "still no spurious reads" 0 (Io_stats.reads io)

(* Two stores on one pool: eviction order is the pool's LRU order across
   both stores, and only dirty evictions are charged as writes. *)
let test_shared_pool_eviction_order () =
  let pool = Block_store.Pool.create ~capacity:2 in
  let io = Io_stats.create () in
  let s1 = S.create ~name:"s1" ~pool ~stats:io () in
  let s2 = S.create ~name:"s2" ~pool ~stats:io () in
  let a = S.alloc s1 1 in
  let b = S.alloc s2 2 in
  (* recency now [b; a]; touching a flips it *)
  Alcotest.(check int) "touch a" 1 (S.read s1 a);
  let c = S.alloc s2 3 in
  (* b was LRU: evicted dirty -> 1 write; a survived *)
  Alcotest.(check int) "b evicted dirty" 1 (Io_stats.writes io);
  Alcotest.(check int) "a still resident (no read)" 0 (Io_stats.reads io);
  Alcotest.(check int) "a readable" 1 (S.read s1 a);
  (* clean pages evict for free: flush both stores, then miss on b *)
  S.flush s1;
  S.flush s2;
  let w0 = Io_stats.writes io in
  Alcotest.(check int) "read b back" 2 (S.read s2 b);
  (* b's return evicted the pool's LRU (a or c, both clean): no write *)
  Alcotest.(check int) "clean eviction uncharged" w0 (Io_stats.writes io);
  Alcotest.(check int) "miss charged" 1 (Io_stats.reads io);
  Alcotest.(check bool) "pool bounded" true (Block_store.Pool.resident pool <= 2);
  ignore c

(* Dirty write-back counting when both stores churn through a tiny pool:
   every resident dirty page is written back exactly once. *)
let test_shared_pool_writeback_count () =
  let pool = Block_store.Pool.create ~capacity:2 in
  let io = Io_stats.create () in
  let s1 = S.create ~name:"s1" ~pool ~stats:io () in
  let s2 = S.create ~name:"s2" ~pool ~stats:io () in
  let n = 6 in
  let a1 = Array.init n (fun i -> S.alloc s1 i) in
  let a2 = Array.init n (fun i -> S.alloc s2 (100 + i)) in
  (* 2n dirty allocations through a 2-frame pool: all but the final two
     residents were evicted dirty *)
  Alcotest.(check int) "evictions charged" ((2 * n) - 2) (Io_stats.writes io);
  S.flush s1;
  S.flush s2;
  Alcotest.(check int) "flush writes the rest" (2 * n) (Io_stats.writes io);
  Array.iteri (fun i a -> Alcotest.(check int) "s1 contents" i (S.read s1 a)) a1;
  Array.iteri (fun i a -> Alcotest.(check int) "s2 contents" (100 + i) (S.read s2 a)) a2

(* Two stores sharing one pool compete for frames. *)
let test_shared_pool () =
  let pool = Block_store.Pool.create ~capacity:2 in
  let io = Io_stats.create () in
  let s1 = S.create ~name:"s1" ~pool ~stats:io () in
  let s2 = S.create ~name:"s2" ~pool ~stats:io () in
  let a = S.alloc s1 1 in
  let _ = S.alloc s2 2 in
  let _ = S.alloc s2 3 in
  (* a was evicted by s2's allocations *)
  let r0 = Io_stats.reads io in
  Alcotest.(check int) "read back from disk" 1 (S.read s1 a);
  Alcotest.(check int) "miss charged" (r0 + 1) (Io_stats.reads io);
  Alcotest.(check bool) "pool bounded" true (Block_store.Pool.resident pool <= 2)

let prop_store_model =
  QCheck.Test.make ~name:"block store read-your-writes under eviction" ~count:200
    QCheck.(pair (int_range 1 6) (small_list (pair (int_range 0 9) (int_range 0 999))))
    (fun (cap, writes) ->
      let pool = Block_store.Pool.create ~capacity:cap in
      let io = Io_stats.create () in
      let s = S.create ~pool ~stats:io () in
      let addr_of = Hashtbl.create 16 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          (match Hashtbl.find_opt addr_of k with
          | None -> Hashtbl.add addr_of k (S.alloc s v)
          | Some a -> S.write s a v);
          Hashtbl.replace model k v)
        writes;
      Hashtbl.fold
        (fun k a ok -> ok && S.read s a = Hashtbl.find model k)
        addr_of true)

let suite =
  ( "io",
    [
      Alcotest.test_case "lru basic" `Quick test_lru_basic;
      Alcotest.test_case "lru replace" `Quick test_lru_replace;
      Alcotest.test_case "lru remove" `Quick test_lru_remove;
      Alcotest.test_case "lru iter order" `Quick test_lru_iter_order;
      Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
      Alcotest.test_case "store resident free" `Quick test_store_no_io_while_resident;
      Alcotest.test_case "store eviction charges" `Quick test_store_eviction_charges;
      Alcotest.test_case "store clean eviction free" `Quick test_store_clean_eviction_free;
      Alcotest.test_case "store free/errors" `Quick test_store_free_and_errors;
      Alcotest.test_case "store flush" `Quick test_store_flush;
      Alcotest.test_case "store blind write" `Quick test_store_write_nonresident_no_read;
      Alcotest.test_case "store blind write accounting pin" `Quick
        test_store_blind_write_accounting;
      Alcotest.test_case "shared pool" `Quick test_shared_pool;
      Alcotest.test_case "shared pool eviction order" `Quick
        test_shared_pool_eviction_order;
      Alcotest.test_case "shared pool write-back count" `Quick
        test_shared_pool_writeback_count;
      qtest prop_lru_model;
      qtest prop_store_model;
    ] )

(* ---------------- Ext_sort ---------------- *)

module Xs = Ext_sort.Make (Int)

let prop_extsort_correct =
  QCheck.Test.make ~name:"external sort equals Array.sort" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 2000) (int_range 0 10_000))
        (int_range 1 16) (int_range 3 8))
    (fun (xs, block, mem) ->
      let pool = Block_store.Pool.create ~capacity:mem in
      let io = Io_stats.create () in
      let arr = Array.of_list xs in
      let sorted = Xs.sort ~pool ~stats:io ~block ~memory_blocks:mem arr in
      let expected = Array.copy arr in
      Array.sort compare expected;
      sorted = expected)

let prop_extsort_stable =
  QCheck.Test.make ~name:"external sort is stable" ~count:100
    QCheck.(list_of_size Gen.(0 -- 500) (int_range 0 20))
    (fun keys ->
      (* tag duplicates with their original index; compare keys only *)
      let module P = Ext_sort.Make (struct
        type t = int * int

        let compare (a, _) (b, _) = compare a b
      end) in
      let pool = Block_store.Pool.create ~capacity:8 in
      let io = Io_stats.create () in
      let arr = Array.of_list (List.mapi (fun i k -> (k, i)) keys) in
      let sorted = P.sort ~pool ~stats:io ~block:4 ~memory_blocks:3 arr in
      let expected = Array.copy arr in
      Array.stable_sort (fun (a, _) (b, _) -> compare a b) expected;
      sorted = expected)

let test_extsort_io_scaling () =
  (* I/O ~ 2 * blocks * (passes + 1): the EM sorting bound's shape *)
  let block = 16 and mem = 4 in
  let costs =
    List.map
      (fun n ->
        let pool = Block_store.Pool.create ~capacity:mem in
        let io = Io_stats.create () in
        let arr = Array.init n (fun i -> (i * 7919) mod 104729) in
        ignore (Xs.sort ~pool ~stats:io ~block ~memory_blocks:mem arr);
        let blocks = (n + block - 1) / block in
        let passes = Xs.passes ~block ~memory_blocks:mem n in
        (n, Io_stats.total_io io, blocks * (2 * (passes + 2))))
      [ 1_000; 4_000; 16_000 ]
  in
  List.iter
    (fun (n, io, budget) ->
      Alcotest.(check bool)
        (Printf.sprintf "n=%d io=%d within budget %d" n io budget)
        true (io <= budget))
    costs

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "extsort io scaling" `Quick test_extsort_io_scaling;
        qtest prop_extsort_correct;
        qtest prop_extsort_stable;
      ] )

(* ---------------- Crc ---------------- *)

let test_crc_vectors () =
  Alcotest.(check int) "check value" 0xCBF43926 (Crc.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc.string "");
  Alcotest.(check bool) "distinct" true (Crc.string "abc" <> Crc.string "abd")

let prop_crc_incremental =
  QCheck.Test.make ~name:"crc incremental equals one-shot" ~count:200
    QCheck.(pair (small_string) (small_string))
    (fun (a, b) ->
      let s = a ^ b in
      let acc = Crc.update Crc.init a ~pos:0 ~len:(String.length a) in
      let acc = Crc.update acc (a ^ b) ~pos:(String.length a) ~len:(String.length b) in
      Crc.finish acc = Crc.string s)

(* ---------------- Codec ---------------- *)

let prop_codec_roundtrip =
  let c =
    Codec.(pair int (pair float (pair string (pair bool (list (option int))))))
  in
  QCheck.Test.make ~name:"codec roundtrip" ~count:300
    QCheck.(
      quad int float (printable_string)
        (pair bool (small_list (option int))))
    (fun (i, f, s, (b, l)) ->
      let v = (i, (f, (s, (b, l)))) in
      let d = Codec.decode c (Codec.encode c v) in
      (* distinguish nan from nan by bits, not by (=) *)
      let (i', (f', rest')) = d and (_, (_, rest)) = v in
      i' = i && Int64.bits_of_float f' = Int64.bits_of_float f && rest' = rest)

let test_codec_corrupt () =
  let s = Codec.encode Codec.int 42 in
  (match Codec.decode Codec.int (s ^ "x") with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "trailing bytes must raise");
  (match Codec.decode Codec.int (String.sub s 0 4) with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncation must raise");
  match Codec.decode Codec.(array int) "\xff\xff\xff\xff" with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "huge array length must raise"

(* ---------------- File_store ---------------- *)

module FS = File_store.Make (struct
  type t = int array

  let codec = Codec.(array int)
end)

let tmpfile () = Filename.temp_file "segdb_fstore" ".blk"

let with_store ?(page_size = 4096) ?(cache_blocks = 4) f =
  let path = tmpfile () in
  let io = Io_stats.create () in
  let s = FS.create ~page_size ~cache_blocks ~stats:io ~path () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path io s)

let test_fstore_roundtrip () =
  with_store (fun _ _ s ->
      let a = FS.alloc s [| 10 |] and b = FS.alloc s [| 20; 21 |] in
      Alcotest.(check (array int)) "read a" [| 10 |] (FS.read s a);
      Alcotest.(check (array int)) "read b" [| 20; 21 |] (FS.read s b);
      FS.write s a [| 11 |];
      Alcotest.(check (array int)) "after write" [| 11 |] (FS.read s a);
      Alcotest.(check int) "live blocks" 2 (FS.block_count s);
      FS.close s)

(* The in-memory store's accounting battery, replayed against the file:
   identical charges for single-page payloads. *)
let test_fstore_accounting () =
  with_store ~cache_blocks:2 (fun _ io s ->
      let a = FS.alloc s [| 1 |] in
      let b = FS.alloc s [| 2 |] in
      let c = FS.alloc s [| 3 |] in
      Alcotest.(check int) "write on dirty eviction" 1 (Io_stats.writes io);
      Alcotest.(check (array int)) "read back a" [| 1 |] (FS.read s a);
      Alcotest.(check int) "read charged" 1 (Io_stats.reads io);
      Alcotest.(check int) "second dirty eviction" 2 (Io_stats.writes io);
      ignore (FS.read s c);
      ignore b;
      FS.close s)

let test_fstore_blind_write () =
  with_store ~cache_blocks:1 (fun _ io s ->
      let a = FS.alloc s [| 1 |] in
      let _b = FS.alloc s [| 2 |] in
      let r0 = Io_stats.reads io in
      FS.write s a [| 10 |];
      Alcotest.(check int) "blind overwrite charges no read" r0 (Io_stats.reads io);
      Alcotest.(check (array int)) "value updated" [| 10 |] (FS.read s a);
      FS.close s)

let test_fstore_free_errors () =
  with_store (fun _ _ s ->
      let a = FS.alloc s [| 5 |] in
      FS.free s a;
      Alcotest.(check int) "no live blocks" 0 (FS.block_count s);
      (match FS.read s a with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "read after free should raise");
      (match FS.free s a with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "double free should raise");
      FS.close s)

let test_fstore_persistence () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let io = Io_stats.create () in
      let s = FS.create ~page_size:256 ~cache_blocks:4 ~stats:io ~path () in
      let addrs = Array.init 20 (fun i -> FS.alloc s (Array.init (i mod 7) (fun j -> (i * 100) + j))) in
      FS.set_root s addrs.(3);
      FS.close s;
      (* a different process would do exactly this *)
      let io2 = Io_stats.create () in
      let s2 = FS.open_existing ~cache_blocks:4 ~stats:io2 ~path () in
      Alcotest.(check int) "live blocks survive" 20 (FS.block_count s2);
      Alcotest.(check int) "root survives" addrs.(3) (FS.root s2);
      Alcotest.(check int) "page size from superblock" 256 (FS.page_size s2);
      Array.iteri
        (fun i a ->
          Alcotest.(check (array int))
            (Printf.sprintf "block %d" i)
            (Array.init (i mod 7) (fun j -> (i * 100) + j))
            (FS.read s2 a))
        addrs;
      Alcotest.(check bool) "cold reads charged" true (Io_stats.reads io2 >= 16);
      FS.close s2)

let test_fstore_multipage () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let io = Io_stats.create () in
      (* page payload capacity 64 - 9 = 55 bytes: a 100-int array (804
         bytes with the length prefix) needs 15 pages *)
      let s = FS.create ~page_size:64 ~cache_blocks:2 ~stats:io ~path () in
      let big = Array.init 100 (fun i -> i * i) in
      let a = FS.alloc s big in
      let small = FS.alloc s [| 7 |] in
      FS.flush s;
      let w = Io_stats.writes io in
      Alcotest.(check bool) "multi-page write charged per page" true (w >= 15);
      let pages_before = FS.page_count s in
      (* shrink: surplus pages go to the free list and are reused *)
      FS.write s a [| 1; 2 |];
      FS.flush s;
      let b = FS.alloc s (Array.init 50 (fun i -> i)) in
      FS.flush s;
      Alcotest.(check bool) "shrink + realloc reuses pages"
        true
        (FS.page_count s <= pages_before + 1);
      FS.close s;
      let io2 = Io_stats.create () in
      let s2 = FS.open_existing ~stats:io2 ~path () in
      Alcotest.(check (array int)) "shrunk block" [| 1; 2 |] (FS.read s2 a);
      Alcotest.(check (array int)) "small block" [| 7 |] (FS.read s2 small);
      Alcotest.(check (array int)) "reused-page block" (Array.init 50 (fun i -> i)) (FS.read s2 b);
      FS.close s2)

let test_fstore_free_reuse () =
  with_store (fun _ _ s ->
      let a = FS.alloc s [| 1 |] in
      let _b = FS.alloc s [| 2 |] in
      let pages = FS.page_count s in
      FS.free s a;
      let c = FS.alloc s [| 3 |] in
      Alcotest.(check int) "freed page reused" pages (FS.page_count s);
      Alcotest.(check (array int)) "new contents" [| 3 |] (FS.read s c);
      FS.close s)

let test_fstore_corrupt () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "this is not a block store at all.....";
      close_out oc;
      match FS.open_existing ~stats:(Io_stats.create ()) ~path () with
      | exception File_store.Corrupt_store _ -> ()
      | _ -> Alcotest.fail "garbage must be rejected")

let prop_fstore_model =
  QCheck.Test.make ~name:"file store read-your-writes under eviction" ~count:60
    QCheck.(pair (int_range 1 6) (small_list (pair (int_range 0 9) (int_range 0 999))))
    (fun (cap, writes) ->
      let path = tmpfile () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let io = Io_stats.create () in
          let s = FS.create ~page_size:64 ~cache_blocks:cap ~stats:io ~path () in
          let addr_of = Hashtbl.create 16 in
          let model = Hashtbl.create 16 in
          List.iter
            (fun (k, v) ->
              (* variable payload sizes exercise extent growth/shrink *)
              let payload = Array.make (1 + (v mod 40)) v in
              (match Hashtbl.find_opt addr_of k with
              | None -> Hashtbl.add addr_of k (FS.alloc s payload)
              | Some a -> FS.write s a payload);
              Hashtbl.replace model k payload)
            writes;
          let ok =
            Hashtbl.fold
              (fun k a ok -> ok && FS.read s a = Hashtbl.find model k)
              addr_of true
          in
          (* and across a close/open boundary *)
          FS.close s;
          let s2 = FS.open_existing ~stats:(Io_stats.create ()) ~path () in
          let ok2 =
            Hashtbl.fold
              (fun k a ok -> ok && FS.read s2 a = Hashtbl.find model k)
              addr_of ok
          in
          FS.close s2;
          ok2))

(* ---------------- Wal ---------------- *)

let test_wal_roundtrip () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w, replayed = Wal.open_ ~sync:false path in
      Alcotest.(check (list string)) "fresh log" [] replayed;
      Wal.append w "alpha";
      Wal.append w "";
      Wal.append w (String.make 1000 'z');
      Wal.close w;
      let w2, replayed = Wal.open_ ~sync:false path in
      Alcotest.(check (list string))
        "records survive" [ "alpha"; ""; String.make 1000 'z' ] replayed;
      Wal.append w2 "omega";
      Wal.close w2;
      Alcotest.(check (list string))
        "scan sees appended"
        [ "alpha"; ""; String.make 1000 'z'; "omega" ]
        (Wal.scan path))

let test_wal_reset () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w, _ = Wal.open_ ~sync:false path in
      Wal.append w "a";
      Wal.append w "b";
      Wal.reset w;
      Alcotest.(check int) "empty after reset" 0 (Wal.size w);
      Wal.append w "c";
      Wal.close w;
      Alcotest.(check (list string)) "only post-reset records" [ "c" ] (Wal.scan path))

(* The acceptance test: truncate the log at EVERY byte offset; recovery
   must accept exactly the complete frames and repair the file. *)
let test_wal_torn_tail_sweep () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  let torn = Filename.temp_file "segdb_wal" ".torn" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove torn)
    (fun () ->
      let payloads = [ "a"; ""; "bcd"; String.make 57 'x'; "e"; "fg" ] in
      let w, _ = Wal.open_ ~sync:false path in
      List.iter (Wal.append w) payloads;
      Wal.close w;
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* frame boundaries: 8 bytes of framing per record *)
      let boundaries =
        List.fold_left
          (fun acc p -> (List.hd acc + 8 + String.length p) :: acc)
          [ 0 ] payloads
        |> List.rev
      in
      let expected_at len =
        let rec go ps bs acc =
          match (ps, bs) with
          | p :: ps', b :: (b' :: _ as bs') when b' <= len -> ignore b; go ps' bs' (p :: acc)
          | _ -> List.rev acc
        in
        go payloads boundaries []
      in
      for len = 0 to String.length data do
        let oc = open_out_bin torn in
        output_string oc (String.sub data 0 len);
        close_out oc;
        let w, replayed = Wal.open_ ~sync:false torn in
        let expect = expected_at len in
        if replayed <> expect then
          Alcotest.failf "truncation at %d: got %d records, expected %d" len
            (List.length replayed) (List.length expect);
        (* the torn tail was truncated away: the file is now exactly its
           valid prefix *)
        let repaired = (Unix.stat torn).Unix.st_size in
        let valid =
          List.fold_left (fun acc p -> acc + 8 + String.length p) 0 expect
        in
        if repaired <> valid then
          Alcotest.failf "truncation at %d: repaired size %d, expected %d" len repaired
            valid;
        Wal.close w
      done)

let test_wal_corrupt_byte () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w, _ = Wal.open_ ~sync:false path in
      Wal.append w "hello";
      Wal.append w "world";
      Wal.close w;
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* flip a byte inside the first payload: both records die (the
         second is unreachable without trusting the first frame) *)
      let b = Bytes.of_string data in
      Bytes.set b 9 (Char.chr (Char.code (Bytes.get b 9) lxor 0xFF));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      Alcotest.(check (list string)) "corrupt frame stops the scan" [] (Wal.scan path))

(* Replay from an arbitrary LSN offset into the log's total order —
   the replication catch-up path. *)
let test_wal_scan_from () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let payloads = [ "a"; "bb"; ""; "dddd"; "e" ] in
      let w, _ = Wal.open_ ~sync:false path in
      List.iter (Wal.append w) payloads;
      Wal.close w;
      Alcotest.(check (list string)) "from 0 = scan" payloads (Wal.scan_from path ~from:0);
      Alcotest.(check (list string))
        "negative behaves like 0" payloads
        (Wal.scan_from path ~from:(-3));
      Alcotest.(check (list string))
        "mid offset" [ ""; "dddd"; "e" ]
        (Wal.scan_from path ~from:2);
      Alcotest.(check (list string)) "last record" [ "e" ] (Wal.scan_from path ~from:4);
      Alcotest.(check (list string)) "at the end" [] (Wal.scan_from path ~from:5);
      Alcotest.(check (list string)) "past the end" [] (Wal.scan_from path ~from:50);
      Alcotest.(check (list string))
        "missing file" []
        (Wal.scan_from (path ^ ".does-not-exist") ~from:0))

(* A tail torn exactly at a record boundary is indistinguishable from a
   clean close: every record before the cut survives, the audit shows
   zero torn bytes, and open_ truncates nothing. *)
let test_wal_torn_at_record_boundary () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  let torn = Filename.temp_file "segdb_wal" ".torn" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove torn)
    (fun () ->
      let payloads = [ "alpha"; ""; "gamma!" ] in
      let w, _ = Wal.open_ ~sync:false path in
      List.iter (Wal.append w) payloads;
      Wal.close w;
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let cut = ref 0 in
      List.iteri
        (fun i p ->
          cut := !cut + 8 + String.length p;
          let oc = open_out_bin torn in
          output_string oc (String.sub data 0 !cut);
          close_out oc;
          let a = Wal.audit torn in
          Alcotest.(check int)
            (Printf.sprintf "boundary %d: records" i)
            (i + 1) a.Wal.audit_records;
          Alcotest.(check int)
            (Printf.sprintf "boundary %d: no torn tail" i)
            a.Wal.valid_bytes a.Wal.file_bytes;
          let w, replayed = Wal.open_ ~sync:false torn in
          Alcotest.(check int)
            (Printf.sprintf "boundary %d: replay" i)
            (i + 1) (List.length replayed);
          Alcotest.(check int)
            (Printf.sprintf "boundary %d: open_ truncated nothing" i)
            !cut
            (Unix.stat torn).Unix.st_size;
          Wal.close w)
        payloads)

(* Audit on an empty (zero-length but existing) log: all zeros, and
   consistent with what open_ replays. *)
let test_wal_audit_empty () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Alcotest.(check int) "fresh temp file is empty" 0 (Unix.stat path).Unix.st_size;
      let a = Wal.audit path in
      Alcotest.(check int) "no records" 0 a.Wal.audit_records;
      Alcotest.(check int) "no valid bytes" 0 a.Wal.valid_bytes;
      Alcotest.(check int) "no file bytes" 0 a.Wal.file_bytes;
      let w, replayed = Wal.open_ ~sync:false path in
      Alcotest.(check (list string)) "open_ replays nothing" [] replayed;
      Wal.close w;
      Alcotest.(check (list string)) "scan_from on empty" [] (Wal.scan_from path ~from:0))

(* ---------------- Failpoint + checksummed store ---------------- *)

(* Every test arms the global registry, so every test disarms in a
   [finally] — a leaked plan would fault unrelated tests. *)
let with_armed ?seed plans f =
  Fun.protect ~finally:Failpoint.disarm (fun () ->
      Failpoint.arm ?seed plans;
      f ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_fp_parse () =
  (match Failpoint.parse_spec "wal.append=crash@3;pread=eio+" with
  | Error e -> Alcotest.failf "valid spec rejected: %s" e
  | Ok plans ->
      Alcotest.(check int) "two plans" 2 (List.length plans);
      let p = List.assoc "wal.append" plans in
      Alcotest.(check int) "hit number" 3 p.Failpoint.at;
      Alcotest.(check bool) "one-shot" false p.Failpoint.persistent;
      let q = List.assoc "pread" plans in
      Alcotest.(check bool) "persistent" true q.Failpoint.persistent);
  List.iter
    (fun bad ->
      match Failpoint.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "malformed spec accepted: %S" bad)
    [ "pread"; "pread=frob"; "pread=eio@zero"; "=eio" ]

let test_fp_disarmed () =
  Failpoint.disarm ();
  Alcotest.(check bool) "disarmed by default" false (Failpoint.armed ());
  Alcotest.(check bool) "fire is a no-op" true
    (Failpoint.fire (Failpoint.site "pread") = None)

(* A one-shot transient EIO on the read path heals invisibly: the
   caller sees the correct value, only the retry counter moves. *)
let test_fp_retry_transparent () =
  with_store ~page_size:128 ~cache_blocks:1 (fun _ _ s ->
      let a = FS.alloc s [| 1; 2; 3 |] in
      let _b = FS.alloc s [| 4 |] in
      FS.flush s;
      with_armed [ ("pread", Failpoint.plan Failpoint.Eio) ] (fun () ->
          Alcotest.(check (array int)) "transient EIO healed" [| 1; 2; 3 |] (FS.read s a);
          Alcotest.(check bool) "site fired" true
            (Failpoint.hits (Failpoint.site "pread") >= 1));
      FS.close s)

(* A persistent EIO is a dead device: the bounded retry gives up and
   the error surfaces instead of spinning forever. *)
let test_fp_persistent_eio () =
  with_store ~page_size:128 ~cache_blocks:1 (fun _ _ s ->
      let a = FS.alloc s [| 9; 9 |] in
      let _b = FS.alloc s [| 4 |] in
      FS.flush s;
      with_armed [ ("pread", Failpoint.plan ~persistent:true Failpoint.Eio) ] (fun () ->
          match FS.read s a with
          | _ -> Alcotest.fail "persistent EIO must surface"
          | exception Unix.Unix_error (Unix.EIO, _, _) -> ()
          | exception File_store.Corrupt_store _ -> ());
      (* the device recovered: the store object is still usable *)
      Alcotest.(check (array int)) "usable after disarm" [| 9; 9 |] (FS.read s a);
      FS.close s)

(* A flipped bit on the write path is silent at write time; the page
   CRC refuses it at read time — or, if the flip landed in the page's
   uncovered slack, the value is simply intact. Either way, never a
   silently wrong value. *)
let test_fp_write_flip_caught () =
  with_store ~page_size:128 ~cache_blocks:1 (fun _ _ s ->
      let a = FS.alloc s [| 5; 6; 7 |] in
      with_armed ~seed:7 [ ("pwrite", Failpoint.plan Failpoint.Bit_flip) ] (fun () ->
          let _b = FS.alloc s [| 1 |] in
          (* allocating _b evicted dirty a through the flipped pwrite *)
          ());
      (match FS.read s a with
      | v -> Alcotest.(check (array int)) "flip in slack: value intact" [| 5; 6; 7 |] v
      | exception File_store.Corrupt_store _ -> ());
      FS.close s)

(* Deterministic page-CRC check: flip the first payload byte of the
   first page on disk; the read must refuse and the scrubber must point
   at the page. *)
let test_fstore_crc_detects_flip () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = FS.create ~page_size:128 ~cache_blocks:2 ~stats:(Io_stats.create ()) ~path () in
      let a = FS.alloc s [| 11; 12; 13 |] in
      FS.sync s;
      FS.close s;
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let off = 128 + 13 in
      (* first payload byte of page 1 *)
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      (match File_store.Scrub.file path with
      | [] -> Alcotest.fail "scrub must report the damaged page"
      | fs ->
          Alcotest.(check bool)
            "finding names page 1" true
            (List.exists (fun m -> contains ~sub:"page 1" m) fs));
      let s2 = FS.open_existing ~stats:(Io_stats.create ()) ~path () in
      (match FS.read s2 a with
      | _ -> Alcotest.fail "corrupt page must not decode"
      | exception File_store.Corrupt_store _ -> ());
      FS.close s2)

(* The satellite property: flip one byte ANYWHERE in a saved store
   file. Acceptable outcomes: detected (open or read raises
   [Corrupt_store], and the scrubber reports a finding) or provably
   harmless (every surviving value reads back bit-identical). Silent
   wrong answers — and clean scrubs alongside read failures — fail. *)
let prop_fstore_flip_never_silent =
  QCheck.Test.make ~name:"single byte flip in the store is never silent" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 0 7))
    (fun (posx, bit) ->
      let path = tmpfile () in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
        (fun () ->
          let s =
            FS.create ~page_size:64 ~cache_blocks:2 ~stats:(Io_stats.create ()) ~path ()
          in
          let payload i = Array.init (1 + (i * 5 mod 17)) (fun j -> (i * 100) + j) in
          let addrs = Array.init 8 (fun i -> FS.alloc s (payload i)) in
          FS.free s addrs.(2);
          FS.set_root s addrs.(0);
          FS.sync s;
          FS.close s;
          let ic = open_in_bin path in
          let data =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          let pos = posx mod String.length data in
          let b = Bytes.of_string data in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          let oc = open_out_bin path in
          output_bytes oc b;
          close_out oc;
          let findings = File_store.Scrub.file path in
          match FS.open_existing ~stats:(Io_stats.create ()) ~path () with
          | exception File_store.Corrupt_store _ -> findings <> []
          | s2 ->
              let silent = ref false and detected = ref false in
              Array.iteri
                (fun i a ->
                  if i <> 2 then
                    match FS.read s2 a with
                    | v -> if v <> payload i then silent := true
                    | exception File_store.Corrupt_store _ -> detected := true
                    | exception Invalid_argument _ ->
                        (* the flip hit a page header: the rebuilt
                           address map dropped the page, so the read is
                           refused loudly — detected, not silent *)
                        detected := true)
                addrs;
              FS.close s2;
              (not !silent) && ((not !detected) || findings <> [])))

(* Format gate: a version-1 image (even with a self-consistent CRC)
   is refused with a message that says how to migrate. *)
let test_fstore_v1_rejected () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = FS.create ~page_size:128 ~cache_blocks:2 ~stats:(Io_stats.create ()) ~path () in
      ignore (FS.alloc s [| 1 |]);
      FS.sync s;
      FS.close s;
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      let sb = Bytes.create 28 in
      ignore (Unix.read fd sb 0 28);
      Bytes.set_int32_le sb 8 1l;
      (* re-seal: the CRC is valid, only the version is old *)
      let crc = Crc.string (Bytes.sub_string sb 0 24) in
      Bytes.set_int32_le sb 24 (Int32.of_int crc);
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      ignore (Unix.write fd sb 0 28);
      Unix.close fd;
      (match FS.open_existing ~stats:(Io_stats.create ()) ~path () with
      | _ -> Alcotest.fail "v1 image must be rejected"
      | exception File_store.Corrupt_store m ->
          Alcotest.(check bool)
            "message names the version" true
            (contains ~sub:"version" m));
      Alcotest.(check bool)
        "scrub reports the version too" true
        (List.exists
           (fun m -> contains ~sub:"version" m)
           (File_store.Scrub.file path)))

(* A store that has only ever gone through the front door scrubs
   clean — including after frees, shrinks and multi-page extents. *)
let test_fstore_fresh_scrub_clean () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = FS.create ~page_size:64 ~cache_blocks:2 ~stats:(Io_stats.create ()) ~path () in
      let big = FS.alloc s (Array.init 100 (fun i -> i)) in
      let small = FS.alloc s [| 1 |] in
      FS.free s small;
      FS.write s big [| 9 |];
      (* shrink: surplus pages become tombstones *)
      ignore (FS.alloc s (Array.init 30 (fun i -> i)));
      FS.sync s;
      FS.close s;
      Alcotest.(check (list string)) "clean" [] (File_store.Scrub.file path))

(* Torn WAL append: the writer dies mid-frame; recovery replays the
   intact prefix and truncates the tear, and [Wal.audit] sees both
   states. *)
let test_wal_torn_append () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w, _ = Wal.open_ ~sync:false path in
      Wal.append w "one";
      Wal.append w "two";
      with_armed ~seed:3 [ ("wal.append", Failpoint.plan Failpoint.Torn) ] (fun () ->
          match Wal.append w (String.make 200 'q') with
          | () -> Alcotest.fail "torn append must crash"
          | exception Failpoint.Injected_crash _ -> ());
      Wal.close w;
      let a = Wal.audit path in
      Alcotest.(check int) "intact records" 2 a.Wal.audit_records;
      Alcotest.(check bool) "tear is visible" true (a.Wal.file_bytes >= a.Wal.valid_bytes);
      let w2, replayed = Wal.open_ ~sync:false path in
      Alcotest.(check (list string)) "prefix replayed" [ "one"; "two" ] replayed;
      Wal.close w2;
      let a2 = Wal.audit path in
      Alcotest.(check int) "tail truncated" a2.Wal.valid_bytes a2.Wal.file_bytes)

(* A short write on the append path is retried from the frame start:
   the caller never notices and the log has no partial frame. *)
let test_wal_short_append_retried () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w, _ = Wal.open_ ~sync:false path in
      Wal.append w "first";
      with_armed ~seed:5 [ ("wal.append", Failpoint.plan Failpoint.Short) ] (fun () ->
          Wal.append w (String.make 100 'r'));
      Wal.append w "last";
      Wal.close w;
      Alcotest.(check (list string))
        "every record intact"
        [ "first"; String.make 100 'r'; "last" ]
        (Wal.scan path);
      let a = Wal.audit path in
      Alcotest.(check int) "no torn bytes" a.Wal.valid_bytes a.Wal.file_bytes)

(* Bit flips in each field of a WAL frame: length, checksum, payload —
   the scan must stop at the damaged frame, never deliver garbage. *)
let test_wal_flip_fields () =
  let write_flipped path data pos =
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let w, _ = Wal.open_ ~sync:false path in
      Wal.append w "hello";
      Wal.append w "world";
      Wal.close w;
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* frame 1 occupies [0, 13): len u32 | crc u32 | 5 payload bytes *)
      List.iter
        (fun (pos, what) ->
          write_flipped path data pos;
          Alcotest.(check (list string))
            (Printf.sprintf "flip in %s kills frame 1" what)
            [] (Wal.scan path))
        [ (0, "length"); (4, "checksum"); (9, "payload") ];
      (* frame 2's fields: frame 1 must still be delivered *)
      List.iter
        (fun (pos, what) ->
          write_flipped path data pos;
          Alcotest.(check (list string))
            (Printf.sprintf "flip in frame-2 %s keeps frame 1" what)
            [ "hello" ] (Wal.scan path))
        [ (13, "length"); (17, "checksum"); (21, "payload") ])

let test_wal_audit () =
  let path = Filename.temp_file "segdb_wal" ".wal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let missing = Wal.audit (path ^ ".does-not-exist") in
      Alcotest.(check int) "missing file: no records" 0 missing.Wal.audit_records;
      Alcotest.(check int) "missing file: no bytes" 0 missing.Wal.file_bytes;
      let w, _ = Wal.open_ ~sync:false path in
      Wal.append w "aa";
      Wal.append w "bbbb";
      Wal.close w;
      let a = Wal.audit path in
      Alcotest.(check int) "records" 2 a.Wal.audit_records;
      Alcotest.(check int) "fully valid" a.Wal.file_bytes a.Wal.valid_bytes;
      Alcotest.(check int) "framing accounted" (8 + 2 + 8 + 4) a.Wal.valid_bytes;
      (* garbage after the valid prefix *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "\xde\xad\xbe\xef";
      close_out oc;
      let a2 = Wal.audit path in
      Alcotest.(check int) "records unchanged" 2 a2.Wal.audit_records;
      Alcotest.(check int) "valid prefix unchanged" a.Wal.valid_bytes a2.Wal.valid_bytes;
      Alcotest.(check int) "garbage counted" (a.Wal.file_bytes + 4) a2.Wal.file_bytes)

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "failpoint spec parser" `Quick test_fp_parse;
        Alcotest.test_case "failpoint disarmed no-op" `Quick test_fp_disarmed;
        Alcotest.test_case "transient EIO healed by retry" `Quick test_fp_retry_transparent;
        Alcotest.test_case "persistent EIO surfaces bounded" `Quick test_fp_persistent_eio;
        Alcotest.test_case "write-path bit flip caught by CRC" `Quick
          test_fp_write_flip_caught;
        Alcotest.test_case "page CRC detects a flipped byte" `Quick
          test_fstore_crc_detects_flip;
        qtest prop_fstore_flip_never_silent;
        Alcotest.test_case "v1 store image rejected" `Quick test_fstore_v1_rejected;
        Alcotest.test_case "fresh store scrubs clean" `Quick test_fstore_fresh_scrub_clean;
        Alcotest.test_case "wal torn append recovers prefix" `Quick test_wal_torn_append;
        Alcotest.test_case "wal short append retried" `Quick test_wal_short_append_retried;
        Alcotest.test_case "wal flips in every frame field" `Quick test_wal_flip_fields;
        Alcotest.test_case "wal audit" `Quick test_wal_audit;
      ] )

let suite =
  let name, cases = suite in
  ( name,
    cases
    @ [
        Alcotest.test_case "crc vectors" `Quick test_crc_vectors;
        qtest prop_crc_incremental;
        qtest prop_codec_roundtrip;
        Alcotest.test_case "codec corrupt input" `Quick test_codec_corrupt;
        Alcotest.test_case "fstore roundtrip" `Quick test_fstore_roundtrip;
        Alcotest.test_case "fstore accounting parity" `Quick test_fstore_accounting;
        Alcotest.test_case "fstore blind write" `Quick test_fstore_blind_write;
        Alcotest.test_case "fstore free/errors" `Quick test_fstore_free_errors;
        Alcotest.test_case "fstore persistence" `Quick test_fstore_persistence;
        Alcotest.test_case "fstore multi-page extents" `Quick test_fstore_multipage;
        Alcotest.test_case "fstore free-list reuse" `Quick test_fstore_free_reuse;
        Alcotest.test_case "fstore rejects garbage" `Quick test_fstore_corrupt;
        qtest prop_fstore_model;
        Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
        Alcotest.test_case "wal reset" `Quick test_wal_reset;
        Alcotest.test_case "wal torn tail at every offset" `Quick test_wal_torn_tail_sweep;
        Alcotest.test_case "wal corrupt byte" `Quick test_wal_corrupt_byte;
        Alcotest.test_case "wal scan from arbitrary lsn" `Quick test_wal_scan_from;
        Alcotest.test_case "wal torn exactly at record boundary" `Quick
          test_wal_torn_at_record_boundary;
        Alcotest.test_case "wal audit on empty log" `Quick test_wal_audit_empty;
      ] )
