(* E12 — Figure 2 made quantitative: a segment query on line-based
   segments vs the 3-sided query on their far endpoints. The two
   answers share most segments (type 1) but diverge in both directions:
   segments intersected though their endpoint is outside the region
   (type 2), and endpoints inside the region whose segments miss the
   query (type 3). The divergence rate is what forces the paper to
   prove Lemma 1 instead of just reusing point PSTs. *)

open Segdb_io
open Segdb_geom
open Segdb_util
module W = Segdb_workload.Workload
module Pst = Segdb_pst.Pst
module T3 = Segdb_pst.Three_sided

let id = "e12"
let title = "E12: segment query vs 3-sided endpoint query (Figure 2)"
let validates = "Section 2 / Figure 2: the two query semantics differ"

let run (p : Harness.params) =
  let n = if p.quick then 1 lsl 12 else 1 lsl 15 in
  let vspan = 1000.0 and umax = 100.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (N = %d)" title n)
      ~columns:
        [ "width%"; "both (1)"; "seg only (2)"; "endpoint only (3)"; "divergence%" ]
  in
  let rng = Rng.create p.seed in
  let lsegs = W.line_based rng ~n ~vspan ~umax in
  let io = Io_stats.create () in
  let pool = Block_store.Pool.create ~capacity:1024 in
  let pst = Pst.blocked ~node_capacity:Harness.block ~pool ~stats:io lsegs in
  (* endpoint set: far endpoints in (v, u) coordinates; ids align with
     lseg ids because line_based assigns them positionally *)
  let points = Array.map (fun (s : Lseg.t) -> (s.Lseg.far_v, s.Lseg.far_u)) lsegs in
  let t3 = T3.build ~node_capacity:Harness.block ~pool ~stats:io points in
  List.iter
    (fun width_pct ->
      let qrng = Rng.create (p.seed + 1) in
      let w = float_of_int width_pct /. 100.0 *. vspan in
      let both = ref 0 and seg_only = ref 0 and point_only = ref 0 in
      for _ = 1 to 30 do
        let uq = Rng.float qrng (0.8 *. umax) in
        let v = Rng.float qrng (vspan -. w) in
        let seg_ans =
          Pst.query_list pst (Lseg.query ~uq ~vlo:v ~vhi:(v +. w))
          |> List.map (fun (s : Lseg.t) -> s.Lseg.id)
          |> List.sort_uniq compare
        in
        let pt_ans = T3.query_ids t3 ~x1:v ~x2:(v +. w) ~y:uq in
        let rec diff a b (b1, s1, p1) =
          match (a, b) with
          | [], [] -> (b1, s1, p1)
          | x :: xs, y :: ys when x = y -> diff xs ys (b1 + 1, s1, p1)
          | x :: xs, (y :: _ as b) when x < y -> diff xs b (b1, s1 + 1, p1)
          | a, _ :: ys -> diff a ys (b1, s1, p1 + 1)
          | _ :: xs, [] -> diff xs [] (b1, s1 + 1, p1)
        in
        let b, s, pt = diff seg_ans pt_ans (0, 0, 0) in
        both := !both + b;
        seg_only := !seg_only + s;
        point_only := !point_only + pt
      done;
      let total = !both + !seg_only + !point_only in
      Table.add_row table
        [
          Table.cell_int width_pct;
          Table.cell_int !both;
          Table.cell_int !seg_only;
          Table.cell_int !point_only;
          Table.cell_float ~decimals:1
            (if total = 0 then 0.0
             else 100.0 *. float_of_int (!seg_only + !point_only) /. float_of_int total);
        ])
    [ 1; 5; 10; 25; 50 ];
  [ Harness.Table table ]
