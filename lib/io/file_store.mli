(** File-backed secondary storage: the {!Block_store} contract over a
    real file.

    The store divides the file into fixed-size pages. Page 0 is the
    superblock (magic, version, page size, page count, a root-address
    slot, CRC); every other page carries a 13-byte header — kind, next
    page, payload length, and a CRC-32 over header and payload — and
    payload bytes. The CRC is verified on every page fetch (i.e. on
    cache miss), so a flipped bit anywhere in a live page surfaces as
    {!Corrupt_store} at read time, before damaged bytes reach a codec;
    detections count into [Segdb_obs.Metrics] as [io.corrupt_pages].
    A block is an {e extent}: a chain of one or more pages whose
    first page number is the block's address, so addresses are stable
    across payload growth and across process restarts. Payloads are
    encoded with the per-payload {!Codec}; payloads larger than one page
    spill into continuation pages, and a free list recycles pages from
    freed or shrunken extents.

    A bounded LRU cache of {e decoded} payloads fronts the file, exactly
    like the buffer pool of the in-memory {!Block_store}, and the same
    accounting applies: a cache miss charges one read per page fetched
    ([pread]), a dirty eviction or flush charges one write per page
    written ([pwrite]), resident accesses are free. With payloads that
    fit one page the counters match the in-memory store's line for line
    — the paper's I/O counts become counts of real syscalls.

    Durability: {!sync} (and {!close}) makes the file reflect the
    logical contents — payloads, tombstones of freed blocks, superblock
    — and fsyncs. Between syncs the on-disk image may be stale; crash
    recovery of acknowledged updates is the {!Wal}'s job, not this
    module's. Metadata writes at sync (tombstones, superblock) are not
    charged as block transfers. *)

exception Corrupt_store of string
(** Raised by {!Make.open_existing} on a bad magic, version, or
    superblock CRC or page chain — and by {!Make.read} when a fetched
    page fails its CRC or header sanity checks. *)

(** Offline integrity check of a store file, without its codec.

    Verifies the superblock, every page's header sanity and CRC
    (including free pages: tombstoning writes them with a valid
    checksum), the chain structure (no escapes, double claims, or
    chains through non-continuation pages), and the root's liveness.
    Orphaned continuation pages from freed extents keep their stale
    but valid headers and are deliberately {e not} findings — a
    freshly {!Make.sync}'d store always scrubs clean. *)
module Scrub : sig
  val file : string -> string list
  (** Findings, in file order; [[]] means clean. Diagnoses rather than
      raises: any I/O error becomes a finding. *)
end

module Make (P : sig
  type t

  val codec : t Codec.t
end) : sig
  type t

  val create :
    ?name:string ->
    ?page_size:int ->
    ?cache_blocks:int ->
    stats:Io_stats.t ->
    path:string ->
    unit ->
    t
  (** Creates (truncating) [path]. [page_size] defaults to 4096 bytes,
      [cache_blocks] — the LRU capacity in blocks — to 64. *)

  val open_existing :
    ?name:string -> ?cache_blocks:int -> stats:Io_stats.t -> path:string -> unit -> t
  (** Opens an existing store, rebuilding the live-block directory and
      free list from the page headers. The page size is read from the
      superblock. Raises {!Corrupt_store} on a damaged file, and on
      images of an older format version (version 1 pages carry no
      CRCs) with a message telling the user to re-[save]. *)

  (** The {!Block_store} contract: *)

  val alloc : t -> P.t -> Block_store.addr
  val read : t -> Block_store.addr -> P.t
  val write : t -> Block_store.addr -> P.t -> unit
  val free : t -> Block_store.addr -> unit
  val flush : t -> unit
  val block_count : t -> int
  val stats : t -> Io_stats.t

  (** File lifecycle: *)

  val sync : t -> unit
  (** {!flush}, then persist tombstones and the superblock, then
      [fsync]. *)

  val close : t -> unit
  (** {!sync}, then close the descriptor. The handle must not be used
      afterwards. *)

  val set_root : t -> Block_store.addr -> unit
  (** Stores a distinguished address in the superblock (persisted at
      {!sync}) so a structure can find its entry point on reopen. *)

  val root : t -> Block_store.addr

  val path : t -> string
  val page_size : t -> int

  val live_addrs : t -> Block_store.addr list
  (** Live block addresses, ascending. *)

  val page_count : t -> int
  (** Pages in the file, superblock included: the file's size in
      pages. *)

  val verify : t -> string list
  (** {!sync}, then {!Scrub.file} the underlying file: [[]] means the
      on-disk image is clean. *)

  val crash : t -> unit
  (** Test hook: abandons the handle as if the process died — nothing
      is flushed or synced, the descriptor is closed, and the handle
      refuses further use. The file keeps whatever the last {!sync}
      and cache evictions made durable. *)
end
