open Segdb_io
open Segdb_geom

(** Block-scan baseline over line-based segments (for E1-E3). *)

type t

val build :
  ?block:int -> pool:Block_store.Pool.t -> stats:Io_stats.t -> Lseg.t array -> t

val count : t -> Lseg.query -> int
val block_count : t -> int
