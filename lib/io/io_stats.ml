type snapshot = { reads : int; writes : int; allocs : int }

(* Atomic fields: counters are bumped from parallel query workers
   (each reader has its own [t], but the shared pool's counter can be
   hit from several domains when readers fault the same block in), so
   plain [mutable int] would drop increments. The [snapshot] record
   stays plain ints — tests and callers compare snapshots
   structurally. *)
type t = { reads : int Atomic.t; writes : int Atomic.t; allocs : int Atomic.t }

let create () = { reads = Atomic.make 0; writes = Atomic.make 0; allocs = Atomic.make 0 }

let record_read t = Atomic.incr t.reads
let record_write t = Atomic.incr t.writes
let record_alloc t = Atomic.incr t.allocs

let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes
let allocs t = Atomic.get t.allocs
let total_io t = reads t + writes t

let reset t =
  Atomic.set t.reads 0;
  Atomic.set t.writes 0;
  Atomic.set t.allocs 0

let snapshot t : snapshot = { reads = reads t; writes = writes t; allocs = allocs t }

let diff (before : snapshot) (after : snapshot) : snapshot =
  {
    reads = after.reads - before.reads;
    writes = after.writes - before.writes;
    allocs = after.allocs - before.allocs;
  }

let snapshot_total (s : snapshot) = s.reads + s.writes

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d allocs=%d" (reads t) (writes t) (allocs t)
