open Segdb_io

exception Corrupt_snapshot of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt_snapshot m)) fmt

let magic = "SEGDBSNP"
let version = 1
let sp_write = Failpoint.site "snapshot.write"
let tag_segments = 1
let tag_image = 2

type header = {
  backend : string;
  block : int;
  pool_blocks : int;
  cascade : bool;
  count : int;
  digest : string;
}

type contents = {
  header : header;
  segments : Segdb_geom.Segment.t array;
  image : string option;
}

let self_digest =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some d -> d
    | None ->
        let d =
          try Digest.to_hex (Digest.file Sys.executable_name) with Sys_error _ -> ""
        in
        memo := Some d;
        d

let header_codec : header Codec.t =
  {
    write =
      (fun b h ->
        Codec.W.str b h.backend;
        Codec.W.u32 b h.block;
        Codec.W.u32 b h.pool_blocks;
        Codec.bool.write b h.cascade;
        Codec.W.u64 b h.count;
        Codec.W.str b h.digest);
    read =
      (fun r ->
        let backend = Codec.R.str r in
        let block = Codec.R.u32 r in
        let pool_blocks = Codec.R.u32 r in
        let cascade = Codec.bool.read r in
        let count = Codec.R.u64 r in
        let digest = Codec.R.str r in
        { backend; block; pool_blocks; cascade; count; digest });
  }

let write_section b tag payload =
  Codec.W.u8 b tag;
  Codec.W.u64 b (String.length payload);
  Codec.W.u32 b (Crc.string payload);
  Buffer.add_string b payload

let write ~path header ~segments ~image =
  let b = Buffer.create (4096 + (48 * Array.length segments)) in
  Buffer.add_string b magic;
  Codec.W.u32 b version;
  let hp = Codec.encode header_codec header in
  Codec.W.u32 b (String.length hp);
  Buffer.add_string b hp;
  Codec.W.u32 b (Crc.string hp);
  write_section b tag_segments (Codec.encode Seg_file.array_codec segments);
  (match image with None -> () | Some img -> write_section b tag_image img);
  (* write to a temp file, fsync, then rename: a crashed save never
     clobbers the previous snapshot *)
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Failpoint.Io.write_all ~site:sp_write fd ~off:0 (Buffer.to_bytes b);
      Failpoint.Io.fsync fd);
  Sys.rename tmp path

let read ~path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let r = Codec.R.of_string data in
  (try
     if Codec.R.raw r 8 <> magic then corrupt "%s: not a segdb snapshot (bad magic)" path
   with Codec.Corrupt _ -> corrupt "%s: not a segdb snapshot (too short)" path);
  try
    let ver = Codec.R.u32 r in
    if ver <> version then corrupt "%s: unsupported snapshot version %d" path ver;
    let hlen = Codec.R.u32 r in
    let hp = Codec.R.raw r hlen in
    let hcrc = Codec.R.u32 r in
    if Crc.string hp <> hcrc then corrupt "%s: header CRC mismatch" path;
    let header = Codec.decode header_codec hp in
    let segments = ref None and image = ref None in
    while Codec.R.remaining r > 0 do
      let tag = Codec.R.u8 r in
      let len = Codec.R.u64 r in
      let crc = Codec.R.u32 r in
      let payload = Codec.R.raw r len in
      if Crc.string payload <> crc then corrupt "%s: section %d CRC mismatch" path tag;
      if tag = tag_segments then segments := Some payload
      else if tag = tag_image then image := Some payload
      (* unknown tags are skipped: forward compatibility *)
    done;
    let segments =
      match !segments with
      | None -> corrupt "%s: no segments section" path
      | Some payload -> Codec.decode Seg_file.array_codec payload
    in
    if Array.length segments <> header.count then
      corrupt "%s: header says %d segments, section holds %d" path header.count
        (Array.length segments);
    { header; segments; image = !image }
  with Codec.Corrupt m -> corrupt "%s: malformed snapshot: %s" path m

(* Lenient variant of {!read} for repair: collects findings instead of
   raising, drops damaged sections instead of rejecting the file, and
   returns whatever survives. A corrupt image section costs only the
   rebuild fast path; corrupt segments cost the contents. *)
let salvage ~path =
  let findings = ref [] in
  let note fmt = Printf.ksprintf (fun m -> findings := m :: !findings) fmt in
  let contents =
    try
      let data =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let r = Codec.R.of_string data in
      if (try Codec.R.raw r 8 <> magic with Codec.Corrupt _ -> true) then begin
        note "not a segdb snapshot (bad magic)";
        None
      end
      else begin
        let header =
          try
            let ver = Codec.R.u32 r in
            if ver <> version then note "unsupported snapshot version %d" ver;
            let hlen = Codec.R.u32 r in
            let hp = Codec.R.raw r hlen in
            let hcrc = Codec.R.u32 r in
            if Crc.string hp <> hcrc then begin
              note "header CRC mismatch";
              None
            end
            else Some (Codec.decode header_codec hp)
          with Codec.Corrupt m ->
            note "malformed header: %s" m;
            None
        in
        match header with
        | None -> None
        | Some header -> (
            let segments = ref None and image = ref None in
            (try
               while Codec.R.remaining r > 0 do
                 let tag = Codec.R.u8 r in
                 let len = Codec.R.u64 r in
                 let crc = Codec.R.u32 r in
                 let payload = Codec.R.raw r len in
                 if Crc.string payload <> crc then
                   note "section %d: CRC mismatch (dropped)" tag
                 else if tag = tag_segments then segments := Some payload
                 else if tag = tag_image then image := Some payload
               done
             with Codec.Corrupt m -> note "truncated section table: %s" m);
            match !segments with
            | None ->
                note "no intact segments section";
                None
            | Some payload -> (
                match Codec.decode Seg_file.array_codec payload with
                | exception Codec.Corrupt m ->
                    note "segments section does not decode: %s" m;
                    None
                | segments ->
                    if Array.length segments <> header.count then
                      note "header says %d segments, section holds %d (using the \
                            section)"
                        header.count (Array.length segments);
                    Some { header; segments; image = !image }))
      end
    with Sys_error m ->
      note "unreadable: %s" m;
      None
  in
  (List.rev !findings, contents)
