(* Log-bucketed histogram over non-negative integers (latencies in
   nanoseconds, blocks per operation).

   Bucket 0 holds v <= 0; bucket b >= 1 holds the dyadic range
   [2^(b-1), 2^b - 1], so bucket_of v = floor(log2 v) + 1. Sixty-four
   buckets cover the whole 63-bit int range. Percentiles interpolate
   linearly inside the landing bucket and are clamped to the exact
   [min]/[max], which makes single-distinct-value histograms exact.

   A histogram is owned by one domain at a time; cross-domain
   aggregation goes through [merge_into] (each worker records into its
   own and the owner folds them together), which is what
   [Segdb.parallel_query] does with per-worker latency recordings. *)

let nbuckets = 64

type t = {
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array;
}

let create () =
  { count = 0; sum = 0; min_v = max_int; max_v = min_int; buckets = Array.make nbuckets 0 }

let clear t =
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- min_int;
  Array.fill t.buckets 0 nbuckets 0

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    !b
  end

let bucket_bounds b =
  if b <= 0 then (min_int, 0)
  else if b >= nbuckets then invalid_arg "Histogram.bucket_bounds"
  else (1 lsl (b - 1), (1 lsl b) - 1)

let record t v =
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count
let sum t = t.sum
let is_empty t = t.count = 0
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count
let buckets t = Array.copy t.buckets

let percentile t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Histogram.percentile: p outside [0, 1]";
  if t.count = 0 then 0.0
  else begin
    (* rank of the sample sought, 1-based *)
    let target = max 1 (int_of_float (Float.ceil (p *. float_of_int t.count))) in
    let b = ref 0 and cum = ref 0 in
    while !cum + t.buckets.(!b) < target do
      cum := !cum + t.buckets.(!b);
      incr b
    done;
    let est =
      if !b = 0 then 0.0
      else begin
        let lo, hi = bucket_bounds !b in
        let inside = float_of_int (target - !cum - 1) /. float_of_int t.buckets.(!b) in
        float_of_int lo +. (inside *. float_of_int (hi - lo))
      end
    in
    Float.min (float_of_int t.max_v) (Float.max (float_of_int t.min_v) est)
  end

let merge_into ~into src =
  if src.count > 0 then begin
    into.count <- into.count + src.count;
    into.sum <- into.sum + src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    for b = 0 to nbuckets - 1 do
      into.buckets.(b) <- into.buckets.(b) + src.buckets.(b)
    done
  end

let copy t =
  {
    count = t.count;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
    buckets = Array.copy t.buckets;
  }

let equal a b =
  a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && a.buckets = b.buckets

let pp ppf t =
  Format.fprintf ppf "count=%d p50=%.0f p90=%.0f p99=%.0f max=%d" t.count
    (percentile t 0.5) (percentile t 0.9) (percentile t 0.99) (max_value t)
