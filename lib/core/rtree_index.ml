module R = Segdb_rtree.Rtree

type t = R.t

let name = "rtree"

let build (cfg : Vs_index.config) segs =
  R.bulk_load ~node_capacity:cfg.block ~pool:cfg.pool ~stats:cfg.stats segs

let insert = R.insert
let delete = R.delete
let query = R.query
let query_r r t q ~f = Segdb_io.Read_context.with_reader r (fun () -> R.query t q ~f)
let iter_all t ~f = R.iter t f
let size = R.size
let block_count = R.block_count
let check_invariants = R.check_invariants
