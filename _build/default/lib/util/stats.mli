(** Running summary statistics (count / mean / min / max / variance)
    accumulated online with Welford's algorithm. Used by the experiment
    harness to aggregate per-query I/O counts. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min : t -> float
val max : t -> float
val stddev : t -> float
val total : t -> float

val pp : Format.formatter -> t -> unit
(** Prints [mean ± stddev (min..max, n=count)]. *)
