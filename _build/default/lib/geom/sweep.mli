(** Plane-sweep crossing detection.

    [find_crossing segs] reports a pair of segments that violates the
    NCT property (properly crossing interiors, or collinear overlap in
    more than a point), or [None]. This is the O(n log n) tool that
    makes NCT certification affordable at index scale, where the O(n²)
    pairwise check of {!Predicates.nct_set} is not.

    Method: a left-to-right sweep keeps the active segments ordered by
    their ordinate at the sweep abscissa in a weight-balanced tree; a
    pair is *tested* when it becomes adjacent (on insertion or after a
    removal), and verticals are tested against the actives spanning
    their abscissa. Every test is decided by an exact verdict — the
    integer predicates when all coordinates are integral, a strict
    float orientation test otherwise — so a reported pair always truly
    crosses. Completeness follows the classical argument: before the
    leftmost crossing the status order is correct, and the crossing
    pair becomes adjacent no later than that point. Inputs whose
    float-ordering degenerates exactly at a crossing can, in principle,
    escape the float verdict; integer inputs are decided exactly. *)

val find_crossing :
  ?verdict:(Segment.t -> Segment.t -> bool) ->
  Segment.t array ->
  (Segment.t * Segment.t) option
(** [verdict] decides whether a candidate pair truly crosses; the
    default uses {!Predicates.crosses} when every coordinate is
    integral, else a strict float test. *)

val verify_nct : Segment.t array -> bool
(** [find_crossing segs = None]. *)
