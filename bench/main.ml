(* Benchmark harness.

   Two sections:
   1. The I/O experiment tables E1-E10 + E12 (EXPERIMENTS.md): the
      paper's complexity claims measured in simulated block transfers.
   2. E11 — a Bechamel wall-clock suite: build and query throughput of
      every backend, confirming the simulated-I/O ordering carries over
      to real time.

   [dune exec bench/main.exe] runs everything at full scale; pass
   [--quick] (or set SEGDB_BENCH_QUICK) for a smoke run. *)

open Bechamel
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb
module Rng = Segdb_util.Rng
module Harness = Segdb_experiments.Harness
module Registry = Segdb_experiments.Registry

let quick =
  Array.exists (fun a -> a = "--quick") Sys.argv || Sys.getenv_opt "SEGDB_BENCH_QUICK" <> None

(* ---------------- machine-readable output ---------------- *)

(* Every measurement also lands in BENCH_PR10.json so runs can be
   diffed without scraping the ASCII tables. *)

type json_row = {
  backend : string;
  op : string;
  ns_per_op : float option;
  blocks_per_op : float option;
  queries_per_sec : float option;
  domains : int option;
  p50_ns : float option;
  p90_ns : float option;
  p99_ns : float option;
}

let row backend op =
  {
    backend;
    op;
    ns_per_op = None;
    blocks_per_op = None;
    queries_per_sec = None;
    domains = None;
    p50_ns = None;
    p90_ns = None;
    p99_ns = None;
  }

let json_rows : json_row list ref = ref []
let add_json r = json_rows := r :: !json_rows

let write_json path =
  let oc = open_out path in
  let float_field name = function
    | Some v when not (Float.is_nan v) -> Printf.sprintf "\"%s\": %.6g" name v
    | _ -> Printf.sprintf "\"%s\": null" name
  in
  let int_field name = function
    | Some v -> Printf.sprintf "\"%s\": %d" name v
    | None -> Printf.sprintf "\"%s\": null" name
  in
  Printf.fprintf oc "{\n  \"mode\": %S,\n  \"cpus\": %d,\n  \"rows\": [\n"
    (if quick then "quick" else "full")
    (Domain.recommended_domain_count ());
  let rows = List.rev !json_rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    {\"backend\": %S, \"op\": %S, %s, %s, %s, %s, %s, %s, %s}%s\n"
        r.backend r.op
        (float_field "ns_per_op" r.ns_per_op)
        (float_field "blocks_per_op" r.blocks_per_op)
        (float_field "queries_per_sec" r.queries_per_sec)
        (int_field "domains" r.domains)
        (float_field "p50_ns" r.p50_ns)
        (float_field "p90_ns" r.p90_ns)
        (float_field "p99_ns" r.p99_ns)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

(* ---------------- E11: wall clock ---------------- *)

let wall_clock_tests () =
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let queries = W.segment_queries (Rng.create 43) ~n:64 ~span ~selectivity:0.02 in
  let qi = ref 0 in
  let next_query () =
    let q = queries.(!qi land 63) in
    incr qi;
    q
  in
  let query_test name backend =
    let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
    Test.make ~name:("query/" ^ name)
      (Staged.stage (fun () -> ignore (Db.count db (next_query ()))))
  in
  let build_test name backend =
    Test.make ~name:("build/" ^ name)
      (Staged.stage (fun () -> ignore (Db.create ~backend ~block:64 ~pool_blocks:64 segs)))
  in
  let insert_test name backend =
    let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
    let fresh = W.uniform (Rng.create 44) ~n:(n / 4) ~span in
    let i = ref 0 in
    Test.make ~name:("insert/" ^ name)
      (Staged.stage (fun () ->
           (* fresh ids so the semi-dynamic path is exercised; wrap by
              rebuilding the db when the pool of new segments runs out *)
           if !i >= Array.length fresh then i := 0;
           let s = fresh.(!i) in
           incr i;
           let s = Segdb_geom.Segment.with_id s (n + 1_000_000 + !qi) in
           incr qi;
           try Db.insert db s with Invalid_argument _ -> ()))
  in
  List.concat
    [
      List.map (fun (name, b) -> query_test name b) Db.all_backends;
      [
        build_test "naive" `Naive;
        build_test "rtree" `Rtree;
        build_test "solution1" `Solution1;
        build_test "solution2" `Solution2;
      ];
      [ insert_test "solution1" `Solution1; insert_test "solution2" `Solution2 ];
    ]

(* blocks/op companion to the E11 query timings: the same query mix,
   costed in simulated block transfers on a warm pool *)
let query_block_costs () =
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let queries = W.segment_queries (Rng.create 43) ~n:64 ~span ~selectivity:0.02 in
  List.map
    (fun (name, backend) ->
      let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
      let io = Db.io db in
      Array.iter (fun q -> ignore (Db.count db q)) queries;
      let before = Segdb_io.Io_stats.snapshot io in
      Array.iter (fun q -> ignore (Db.count db q)) queries;
      let d = Segdb_io.Io_stats.diff before (Segdb_io.Io_stats.snapshot io) in
      ( name,
        float_of_int (Segdb_io.Io_stats.snapshot_total d) /. float_of_int (Array.length queries)
      ))
    Db.all_backends

let run_wall_clock () =
  let block_costs = query_block_costs () in
  let tests = Test.make_grouped ~name:"segdb" (wall_clock_tests ()) in
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let table =
    Segdb_util.Table.create ~title:"E11: wall-clock (Bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "ns/op" ]
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, est) ->
         let ns =
           match Analyze.OLS.estimates est with Some [ v ] -> v | _ -> nan
         in
         (match String.split_on_char '/' name with
         | [ _; op; backend ] ->
             add_json
               {
                 (row backend op) with
                 ns_per_op = (if Float.is_nan ns then None else Some ns);
                 blocks_per_op =
                   (if op = "query" then List.assoc_opt backend block_costs else None);
               }
         | _ -> ());
         Segdb_util.Table.add_row table
           [ name; Segdb_util.Table.cell_float ~decimals:0 ns ]);
  Segdb_util.Table.print table

(* ---------------- query latency percentiles ---------------- *)

(* The obs layer measuring itself honest: per-query latency recorded
   into a histogram (not OLS-fitted means, so tail behaviour shows),
   plus blocks/op over the same mix. Observability is ON here — these
   numbers include the probe overhead by design; E11 above stays OFF
   and guards the uninstrumented hot path. *)

let run_latency_percentiles () =
  Segdb_obs.Control.with_enabled @@ fun () ->
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let queries = W.segment_queries (Rng.create 43) ~n:64 ~span ~selectivity:0.02 in
  let rounds = if quick then 4 else 32 in
  let table =
    Segdb_util.Table.create
      ~title:
        (Printf.sprintf "query latency percentiles: n=%d, %d queries x %d rounds (obs on)" n
           (Array.length queries) rounds)
      ~columns:[ "backend"; "p50 us"; "p90 us"; "p99 us"; "max us"; "blocks/op" ]
  in
  List.iter
    (fun (name, backend) ->
      let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
      let io = Db.io db in
      Array.iter (fun q -> ignore (Db.count db q)) queries;
      let h = Segdb_obs.Histogram.create () in
      let before = Segdb_io.Io_stats.snapshot io in
      for _ = 1 to rounds do
        Array.iter
          (fun q ->
            let t0 = Segdb_obs.Trace.now_ns () in
            ignore (Db.count db q);
            Segdb_obs.Histogram.record h (Segdb_obs.Trace.now_ns () - t0))
          queries
      done;
      let d = Segdb_io.Io_stats.diff before (Segdb_io.Io_stats.snapshot io) in
      let ops = rounds * Array.length queries in
      let blocks = float_of_int (Segdb_io.Io_stats.snapshot_total d) /. float_of_int ops in
      let p p = Segdb_obs.Histogram.percentile h p in
      add_json
        {
          (row name "query_latency") with
          blocks_per_op = Some blocks;
          p50_ns = Some (p 0.5);
          p90_ns = Some (p 0.9);
          p99_ns = Some (p 0.99);
        };
      Segdb_util.Table.add_row table
        [
          name;
          Segdb_util.Table.cell_float ~decimals:1 (p 0.5 /. 1e3);
          Segdb_util.Table.cell_float ~decimals:1 (p 0.9 /. 1e3);
          Segdb_util.Table.cell_float ~decimals:1 (p 0.99 /. 1e3);
          Segdb_util.Table.cell_float ~decimals:1
            (float_of_int (Segdb_obs.Histogram.max_value h) /. 1e3);
          Segdb_util.Table.cell_float ~decimals:2 blocks;
        ])
    Db.all_backends;
  Segdb_util.Table.print table

(* Where a solution2 query spends its time and its blocks, phase by
   phase: the per-phase span histograms over the standard query mix. *)
let run_traced_phases () =
  Segdb_obs.Control.with_enabled @@ fun () ->
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let queries = W.segment_queries (Rng.create 43) ~n:64 ~span ~selectivity:0.02 in
  let db = Db.create ~backend:`Solution2 ~block:64 ~pool_blocks:64 segs in
  Segdb_obs.Metrics.reset Segdb_obs.Metrics.default;
  Array.iter (fun q -> ignore (Db.count db q)) queries;
  print_string (Segdb_obs.Export.phase_summary Segdb_obs.Metrics.default)

(* Observability overhead: the same solution2 query mix timed with the
   obs layer off (every probe site reduced to one Atomic.get), on
   (spans recorded into per-domain rings, histograms fed), and on with
   the background sampler ticking at 100ms and at 10ms. The rows are
   the PR's overhead contract: obs-off must stay within noise of the
   uninstrumented hot path, and the sampler — which only reads the
   registry from its own domain — must not move the query numbers. *)
let run_obs_overhead () =
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let queries = W.segment_queries (Rng.create 43) ~n:64 ~span ~selectivity:0.02 in
  let db = Db.create ~backend:`Solution2 ~block:64 ~pool_blocks:64 segs in
  Array.iter (fun q -> ignore (Db.count db q)) queries;
  let rounds = if quick then 8 else 64 in
  let measure () =
    let t0 = Segdb_obs.Trace.now_ns () in
    for _ = 1 to rounds do
      Array.iter (fun q -> ignore (Db.count db q)) queries
    done;
    float_of_int (Segdb_obs.Trace.now_ns () - t0)
    /. float_of_int (rounds * Array.length queries)
  in
  Segdb_obs.Control.disable ();
  let off = measure () in
  let on =
    Segdb_obs.Control.with_enabled (fun () ->
        Segdb_obs.Trace.clear ();
        measure ())
  in
  let with_sampler interval_ms =
    Segdb_obs.Control.with_enabled (fun () ->
        Segdb_obs.Sampler.start ~interval_ms ();
        Fun.protect ~finally:Segdb_obs.Sampler.stop measure)
  in
  let s100 = with_sampler 100 in
  let s10 = with_sampler 10 in
  add_json { (row "solution2" "query_obs_off") with ns_per_op = Some off };
  add_json { (row "solution2" "query_obs_on") with ns_per_op = Some on };
  add_json { (row "solution2" "query_sampler_100ms") with ns_per_op = Some s100 };
  add_json { (row "solution2" "query_sampler_10ms") with ns_per_op = Some s10 };
  Printf.printf
    "solution2 query mix: %.1f us/op obs off, %.1f us/op obs on (%+.1f%%), %.1f us/op \
     sampler@100ms, %.1f us/op sampler@10ms\n"
    (off /. 1e3) (on /. 1e3)
    (100.0 *. ((on /. off) -. 1.0))
    (s100 /. 1e3) (s10 /. 1e3)

(* ---------------- parallel query throughput ---------------- *)

(* The read path split in action: one database, per-domain readers,
   whole batches answered by [Segdb.parallel_query]. Scaling beyond
   1 domain requires that many hardware threads — the JSON records the
   machine's count so flat curves are attributable. *)

let run_parallel_throughput () =
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let nq = if quick then 128 else 512 in
  let queries = W.segment_queries (Rng.create 45) ~n:nq ~span ~selectivity:0.02 in
  let table =
    Segdb_util.Table.create
      ~title:
        (Printf.sprintf "parallel query throughput: n=%d, %d-query batches (queries/sec)" n
           nq)
      ~columns:[ "backend"; "1 domain"; "2 domains"; "4 domains"; "4v1" ]
  in
  List.iter
    (fun (name, backend) ->
      let db = Db.create ~backend ~block:64 ~pool_blocks:64 segs in
      (* warm the shared pool so every domain count sees the same state *)
      Array.iter (fun q -> ignore (Db.count db q)) queries;
      let qps domains =
        let readers = Array.init domains (fun _ -> Db.reader db) in
        ignore (Db.parallel_query ~readers db queries ~domains);
        let min_elapsed = if quick then 0.05 else 0.3 in
        let batches = ref 0 in
        let t0 = Unix.gettimeofday () in
        let elapsed = ref 0.0 in
        while !elapsed < min_elapsed do
          ignore (Db.parallel_query ~readers db queries ~domains);
          incr batches;
          elapsed := Unix.gettimeofday () -. t0
        done;
        float_of_int (!batches * nq) /. !elapsed
      in
      let q1 = qps 1 and q2 = qps 2 and q4 = qps 4 in
      List.iter
        (fun (d, q) ->
          add_json
            {
              (row name "parallel_query") with
              ns_per_op = Some (1e9 /. q);
              queries_per_sec = Some q;
              domains = Some d;
            })
        [ (1, q1); (2, q2); (4, q4) ];
      Segdb_util.Table.add_row table
        [
          name;
          Segdb_util.Table.cell_float ~decimals:0 q1;
          Segdb_util.Table.cell_float ~decimals:0 q2;
          Segdb_util.Table.cell_float ~decimals:0 q4;
          Segdb_util.Table.cell_float ~decimals:2 (q4 /. q1);
        ])
    Db.all_backends;
  Segdb_util.Table.print table;
  Printf.printf "(machine reports %d hardware thread(s))\n"
    (Domain.recommended_domain_count ())

(* ---------------- execution engine: pool vs spawn ---------------- *)

(* What the persistent pool buys over spawn-per-batch: the same warm
   batch answered via the legacy spawning executor and via [Exec.run]
   on a pre-created pool, at 1/2/4 participating domains. The spawning
   path pays domain creation + teardown on every call; the pool path
   only enqueues. Then the deadline in action: a thrashing naive scan
   (shared pool far smaller than the index) with and without a tight
   budget — cooperative cancellation at block-fetch granularity means
   the cold reads charged to the workers' readers plateau instead of
   running the whole batch.

   JSON rows: [exec_spawn]/[exec_pool] carry queries_per_sec per
   [domains]; [deadline_full]/[deadline_tight] carry the total cold
   reads in [blocks_per_op] and the answered-query count in
   [domains]. *)

let run_exec_pool () =
  let module Exec = Segdb_exec.Exec in
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let nq = if quick then 128 else 512 in
  let queries = W.segment_queries (Rng.create 47) ~n:nq ~span ~selectivity:0.02 in
  let db = Db.create ~backend:`Solution2 ~block:64 ~pool_blocks:64 segs in
  Array.iter (fun q -> ignore (Db.count db q)) queries;
  let min_elapsed = if quick then 0.05 else 0.3 in
  let table =
    Segdb_util.Table.create
      ~title:
        (Printf.sprintf
           "execution engine: spawn-per-batch vs persistent pool (solution2, %d-query batches)"
           nq)
      ~columns:[ "domains"; "spawn q/s"; "pool q/s"; "pool/spawn" ]
  in
  List.iter
    (fun domains ->
      let readers = Array.init domains (fun _ -> Db.reader db) in
      let qps f =
        ignore (f ());
        let batches = ref 0 in
        let t0 = Unix.gettimeofday () in
        let elapsed = ref 0.0 in
        while !elapsed < min_elapsed do
          ignore (f ());
          incr batches;
          elapsed := Unix.gettimeofday () -. t0
        done;
        float_of_int (!batches * nq) /. !elapsed
      in
      let pool = Exec.create ~workers:(max 1 (domains - 1)) () in
      let spawn_f () = ignore (Db.parallel_query_spawning ~readers db queries ~domains) in
      (* degraded_ok:false matches the engine hook behind
         [Segdb.parallel_query] — same per-query work as the spawning
         baseline *)
      let pool_f () =
        ignore (Exec.run ~readers pool db (Exec.request ~degraded_ok:false queries) ~domains)
      in
      (* interleaved best-of-3: a background load burst hitting one
         trial does not decide the comparison *)
      let spawn_q = ref 0.0 and pool_q = ref 0.0 in
      for _ = 1 to 3 do
        spawn_q := Float.max !spawn_q (qps spawn_f);
        pool_q := Float.max !pool_q (qps pool_f)
      done;
      let spawn_q = !spawn_q and pool_q = !pool_q in
      Exec.shutdown pool;
      List.iter
        (fun (op, q) ->
          add_json
            {
              (row "solution2" op) with
              ns_per_op = Some (1e9 /. q);
              queries_per_sec = Some q;
              domains = Some domains;
            })
        [ ("exec_spawn", spawn_q); ("exec_pool", pool_q) ];
      Segdb_util.Table.add_row table
        [
          string_of_int domains;
          Segdb_util.Table.cell_float ~decimals:0 spawn_q;
          Segdb_util.Table.cell_float ~decimals:0 pool_q;
          Segdb_util.Table.cell_float ~decimals:2 (pool_q /. spawn_q);
        ])
    [ 1; 2; 4 ];
  Segdb_util.Table.print table;
  (* deadline plateau: naive scans thrashing a tiny shared pool, so
     every query pays cold reads; a 2ms budget cuts the batch short *)
  let n_slow = if quick then 1 lsl 11 else 1 lsl 13 in
  let slow_segs = W.uniform (Rng.create 48) ~n:n_slow ~span in
  let slow_db = Db.create ~backend:`Naive ~block:8 ~pool_blocks:8 slow_segs in
  let slow_qs = W.segment_queries (Rng.create 49) ~n:64 ~span ~selectivity:0.05 in
  let pool = Exec.create ~workers:1 () in
  let run_with ~deadline_ms =
    let readers = Array.init 2 (fun _ -> Db.reader slow_db) in
    let outcome, stats =
      Exec.run ~readers pool slow_db (Exec.request ~deadline_ms slow_qs) ~domains:2
    in
    let reads = Array.fold_left (fun acc (s : Db.worker_stats) -> acc + s.reads) 0 stats in
    let answered =
      match outcome with
      | Exec.Ok out | Exec.Degraded (out, _) -> Array.length out
      | Exec.Deadline_exceeded { completed; _ } | Exec.Cancelled { completed; _ } ->
          completed
      | Exec.Overloaded -> 0
    in
    (reads, answered)
  in
  let full_reads, full_answered = run_with ~deadline_ms:0 in
  let tight_reads, tight_answered = run_with ~deadline_ms:2 in
  Exec.shutdown pool;
  List.iter
    (fun (op, reads, answered) ->
      add_json
        { (row "naive" op) with blocks_per_op = Some (float_of_int reads); domains = Some answered })
    [ ("deadline_full", full_reads, full_answered);
      ("deadline_tight", tight_reads, tight_answered) ];
  Printf.printf
    "deadline plateau (naive, %d queries, 2 domains): no budget %d cold reads / %d answered;\n\
    \  2ms budget %d cold reads / %d answered\n"
    (Array.length slow_qs) full_reads full_answered tight_reads tight_answered

(* ---------------- loopback serving throughput ---------------- *)

(* The serving layer measured end to end over a Unix socket: frame
   encode + CRC + syscalls + queue + worker execution + response
   decode, per request. One concurrent client domain per worker domain
   keeps every worker busy (a single blocking client would serialize
   the server). Latencies are recorded per request into per-client
   histograms and merged, so the p99 covers queueing, not just
   execution. *)

let run_net_throughput () =
  let module Server = Segdb_net.Server in
  let module Client = Segdb_net.Client in
  let n = if quick then 1 lsl 12 else 1 lsl 15 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create 42) ~n ~span in
  let nq = 64 in
  let queries = W.segment_queries (Rng.create 46) ~n:nq ~span ~selectivity:0.02 in
  let db = Db.create ~backend:`Solution2 ~block:64 ~pool_blocks:64 segs in
  let dir = Filename.temp_file "segdb_bench_net" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let min_elapsed = if quick then 0.1 else 0.5 in
  let table =
    Segdb_util.Table.create
      ~title:
        (Printf.sprintf
           "loopback serving throughput: solution2, n=%d, unix socket (obs off)" n)
      ~columns:[ "domains"; "requests/sec"; "p50 us"; "p99 us"; "max us" ]
  in
  List.iter
    (fun domains ->
      let sock = Filename.concat dir (Printf.sprintf "bench%d.sock" domains) in
      let srv = Server.create ~domains ~queue_depth:256 ~db (Server.Unix_path sock) in
      Server.start srv;
      let stop_clients = Atomic.make false in
      let client i () =
        let c = Client.connect (Server.Unix_path sock) in
        let h = Segdb_obs.Histogram.create () in
        let count = ref 0 in
        let qi = ref (i * 17) in
        while not (Atomic.get stop_clients) do
          let q = queries.(!qi mod nq) in
          incr qi;
          let t0 = Segdb_obs.Trace.now_ns () in
          ignore (Client.query c q);
          Segdb_obs.Histogram.record h (Segdb_obs.Trace.now_ns () - t0);
          incr count
        done;
        Client.close c;
        (h, !count)
      in
      let t0 = Unix.gettimeofday () in
      let clients = List.init domains (fun i -> Domain.spawn (client i)) in
      Unix.sleepf min_elapsed;
      Atomic.set stop_clients true;
      let results = List.map Domain.join clients in
      let elapsed = Unix.gettimeofday () -. t0 in
      Server.stop srv;
      Server.wait srv;
      let h = Segdb_obs.Histogram.create () in
      List.iter (fun (hc, _) -> Segdb_obs.Histogram.merge_into ~into:h hc) results;
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 results in
      let rps = float_of_int total /. elapsed in
      let p p' = Segdb_obs.Histogram.percentile h p' in
      add_json
        {
          (row "solution2" "net_query") with
          ns_per_op = Some (1e9 /. Float.max rps 1e-9);
          queries_per_sec = Some rps;
          domains = Some domains;
          p50_ns = Some (p 0.5);
          p99_ns = Some (p 0.99);
        };
      Segdb_util.Table.add_row table
        [
          string_of_int domains;
          Segdb_util.Table.cell_float ~decimals:0 rps;
          Segdb_util.Table.cell_float ~decimals:1 (p 0.5 /. 1e3);
          Segdb_util.Table.cell_float ~decimals:1 (p 0.99 /. 1e3);
          Segdb_util.Table.cell_float ~decimals:1
            (float_of_int (Segdb_obs.Histogram.max_value h) /. 1e3);
        ])
    [ 1; 2; 4 ];
  Segdb_util.Table.print table;
  Printf.printf "(one client domain per worker domain; machine reports %d hardware thread(s))\n"
    (Domain.recommended_domain_count ());
  Unix.rmdir dir

(* ---------------- persistence: cold vs warm open ---------------- *)

(* Not a complexity claim from the paper — an engineering table for the
   storage layer: what a snapshot buys over a rebuild, per backend, and
   what the file-backed block store costs in real syscalls. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run_persistence () =
  let n = if quick then 1 lsl 12 else 1 lsl 16 in
  let segs = W.roads (Rng.create 42) ~n ~span:1000.0 in
  let dir = Filename.temp_file "segdb_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let snap = Filename.concat dir "db.snap" in
  let table =
    Segdb_util.Table.create
      ~title:(Printf.sprintf "persistence: n=%d roads, build vs snapshot open (seconds)" n)
      ~columns:[ "backend"; "build"; "save"; "open img"; "open rebuild"; "snap MB" ]
  in
  List.iter
    (fun (name, backend) ->
      let db, t_build = time (fun () -> Db.create ~backend ~block:64 segs) in
      let (), t_save = time (fun () -> Db.save db snap) in
      let mb = float_of_int (Unix.stat snap).Unix.st_size /. 1048576.0 in
      let (db_img, mode), t_img = time (fun () -> Db.open_db_mode snap) in
      assert (mode = Db.Restored_image && Db.size db_img = Db.size db);
      let (db_rb, mode), t_rb = time (fun () -> Db.open_db_mode ~use_image:false snap) in
      assert (mode = Db.Rebuilt && Db.size db_rb = Db.size db);
      Segdb_util.Table.add_row table
        [
          name;
          Segdb_util.Table.cell_float ~decimals:3 t_build;
          Segdb_util.Table.cell_float ~decimals:3 t_save;
          Segdb_util.Table.cell_float ~decimals:3 t_img;
          Segdb_util.Table.cell_float ~decimals:3 t_rb;
          Segdb_util.Table.cell_float ~decimals:1 mb;
        ])
    Db.all_backends;
  Segdb_util.Table.print table;
  Sys.remove snap;
  (* file-backed block store: page I/O per op, sequential fill + readback *)
  let module P = struct
    type t = float array

    let codec = Segdb_io.Codec.(array float)
  end in
  let module FS = Segdb_io.File_store.Make (P) in
  let blocks = if quick then 512 else 8192 in
  let payload = Array.init 64 float_of_int in
  let path = Filename.concat dir "store.blk" in
  let io = Segdb_io.Io_stats.create () in
  let s = FS.create ~page_size:4096 ~cache_blocks:64 ~stats:io ~path () in
  let addrs, t_fill =
    time (fun () ->
        let a = Array.init blocks (fun _ -> FS.alloc s payload) in
        FS.sync s;
        a)
  in
  let t_read =
    let rng = Rng.create 7 in
    snd
      (time (fun () ->
           for _ = 1 to blocks do
             ignore (FS.read s (addrs.(Rng.int rng blocks)))
           done))
  in
  Printf.printf
    "file store: %d blocks of 64 floats, page 4K, cache 64\n\
    \  fill+sync %.3fs (%d page writes), random read %.3fs (%d page reads)\n"
    blocks t_fill (Segdb_io.Io_stats.writes io) t_read (Segdb_io.Io_stats.reads io);
  FS.close s;
  Sys.remove path;
  Unix.rmdir dir

(* ---------------- replication: catch-up, lag, failover ---------------- *)

(* Three wall-clock figures for the WAL-shipping pair, written to
   BENCH_PR9.json: how fast a replica replays a primary's WAL tail
   (records/s), how far a synced replica trails the primary's commits
   (write-to-ack latency), and how long a kill + promote + client
   failover takes end to end. *)
let run_replication () =
  let module Server = Segdb_net.Server in
  let module Client = Segdb_net.Client in
  let module Repl = Segdb_net.Replication in
  let records = if quick then 1_500 else 6_000 in
  let writes = if quick then 100 else 300 in
  let dir = Filename.temp_file "segdb_bench_repl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let psock = Filename.concat dir "p.sock"
  and rsock = Filename.concat dir "r.sock" in
  let span = 1000.0 in
  (* [W.uniform] may come up short of [n]; over-generate and check *)
  let segs = W.uniform (Rng.create 11) ~n:(2 * (records + writes)) ~span in
  assert (Array.length segs >= records + writes);
  (* both nodes start empty: every stored segment travels as a
     replicated record, so catch-up replays exactly [records] records *)
  let pdb = Db.create ~backend:`Solution2 ~block:64 [||] in
  let primary = Server.create ~domains:2 ~db:pdb (Server.Unix_path psock) in
  Server.start primary;
  let c = Client.connect (Server.Unix_path psock) in
  for i = 0 to records - 1 do
    ignore (Client.insert c segs.(i))
  done;
  (* catch-up: a replica that shares the epoch but has nothing replays
     the whole tail via the records path (no snapshot shortcut) *)
  let rdb = Db.create ~backend:`Solution2 ~block:64 [||] in
  let replica =
    Server.create ~epoch:1 ~replica_of:(Server.Unix_path psock) ~db:rdb
      (Server.Unix_path rsock)
  in
  let t0 = Unix.gettimeofday () in
  Server.start replica;
  let deadline = t0 +. 60.0 in
  while
    Repl.lsn (Server.replication replica) < records
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.001
  done;
  let catchup_s = Unix.gettimeofday () -. t0 in
  let caught_up = Repl.lsn (Server.replication replica) >= records in
  let catchup_rps = float_of_int records /. Float.max catchup_s 1e-9 in
  (* steady-state lag: commit at the primary, wait for the replica's ack *)
  let ack_ms = ref [] in
  let prepl = Server.replication primary in
  for i = 0 to writes - 1 do
    let w0 = Unix.gettimeofday () in
    let lsn, _ = Client.insert c segs.(records + i) in
    while not (List.exists (fun (_, a) -> a >= lsn) (Repl.acks prepl)) do
      Unix.sleepf 0.0002
    done;
    ack_ms := ((Unix.gettimeofday () -. w0) *. 1e3) :: !ack_ms
  done;
  let sorted = List.sort compare !ack_ms in
  let pct p =
    let a = Array.of_list sorted in
    a.(min (Array.length a - 1) (int_of_float (p *. float_of_int (Array.length a))))
  in
  let p50 = pct 0.5 and p99 = pct 0.99 in
  (* failover: kill the primary mid-conversation, promote the replica,
     and time until a multi-endpoint client answers again *)
  let fc =
    Client.connect_many [ Server.Unix_path psock; Server.Unix_path rsock ]
  in
  let q = W.segment_queries (Rng.create 13) ~n:1 ~span ~selectivity:0.02 in
  ignore (Client.query fc q.(0));
  let rc = Client.connect (Server.Unix_path rsock) in
  let f0 = Unix.gettimeofday () in
  Server.kill primary;
  Client.close c;
  Server.wait primary;
  ignore (Client.promote rc);
  ignore (Client.query fc q.(0));
  let failover_ms = (Unix.gettimeofday () -. f0) *. 1e3 in
  Printf.printf
    "catch-up: %d records in %.3fs (%.0f records/s)%s\n\
     steady-state write-to-ack: p50 %.2f ms, p99 %.2f ms over %d writes\n\
     failover (kill + promote + client retarget): %.1f ms\n"
    records catchup_s catchup_rps
    (if caught_up then "" else " [DID NOT CONVERGE]")
    p50 p99 writes failover_ms;
  Client.close rc;
  Client.close fc;
  Server.stop replica;
  Server.wait replica;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ psock; rsock ];
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
  let oc = open_out "BENCH_PR9.json" in
  Printf.fprintf oc
    "{\n\
    \  \"catchup\": { \"records\": %d, \"seconds\": %.6g, \"records_per_sec\": \
     %.6g, \"converged\": %b },\n\
    \  \"steady_state_lag\": { \"writes\": %d, \"ack_p50_ms\": %.6g, \
     \"ack_p99_ms\": %.6g },\n\
    \  \"failover\": { \"kill_to_first_answer_ms\": %.6g }\n\
     }\n"
    records catchup_s catchup_rps caught_up writes p50 p99 failover_ms;
  close_out oc;
  Printf.printf "wrote BENCH_PR9.json\n"

(* ---------------- main ---------------- *)

let () =
  let params = if quick then Harness.quick else Harness.default in
  Printf.printf "segdb bench harness (%s mode)\n" (if quick then "quick" else "full");
  Printf.printf "=== I/O experiment tables (E1-E10, E12-E16) ===\n";
  Registry.run_ids ~params [];
  Printf.printf "\n=== E11: wall-clock timing ===\n\n";
  (* E11 guards the uninstrumented hot path: observability must be off *)
  Segdb_obs.Control.disable ();
  run_wall_clock ();
  Printf.printf "\n=== query latency percentiles (observability on) ===\n\n";
  run_latency_percentiles ();
  Printf.printf "\n=== solution2 per-phase spans ===\n\n";
  run_traced_phases ();
  Printf.printf "\n=== observability overhead (off vs on) ===\n\n";
  run_obs_overhead ();
  Printf.printf "\n=== parallel query throughput ===\n\n";
  run_parallel_throughput ();
  Printf.printf "\n=== execution engine: pool vs spawn ===\n\n";
  run_exec_pool ();
  Printf.printf "\n=== loopback serving throughput ===\n\n";
  run_net_throughput ();
  Printf.printf "\n=== persistence: snapshot open + file store ===\n\n";
  run_persistence ();
  Printf.printf "\n=== replication: catch-up, lag, failover ===\n\n";
  run_replication ();
  print_newline ();
  write_json "BENCH_PR10.json"
