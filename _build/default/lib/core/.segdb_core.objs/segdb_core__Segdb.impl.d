lib/core/segdb.ml: Array Hashtbl List Naive Rtree_index Segdb_geom Segment Solution1 Solution2 String Transform Vs_index
