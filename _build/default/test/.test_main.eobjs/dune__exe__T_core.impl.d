test/t_core.ml: Alcotest Array Float Hashtbl Io_stats List Printf QCheck QCheck_alcotest Segdb_core Segdb_geom Segdb_io Segdb_util Segdb_workload Segment Vquery
