open Segdb_geom

(** Internal-memory priority search tree over line-based segments — the
    McCreight-style one-segment-per-node structure the paper's Section 2
    externalizes (reference [14], used by [5]).

    Static build in O(n log n); a query segment parallel to the base
    line is answered in O(log n + t) by the same witness-pruned
    traversal the external PST uses, shrunk to single-segment nodes. *)

type t

val build : Lseg.t array -> t

val size : t -> int
val height : t -> int

val query : t -> Lseg.query -> f:(Lseg.t -> unit) -> unit
val query_list : t -> Lseg.query -> Lseg.t list

val check_invariants : t -> bool
