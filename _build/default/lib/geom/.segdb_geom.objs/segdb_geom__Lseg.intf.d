lib/geom/lseg.mli: Format Segment
