(* Model-based and invariant tests for the weight-balanced tree. *)

module M = Segdb_wbt.Wbt.Make (Int)
module Model = Map.Make (Int)

let qtest = QCheck_alcotest.to_alcotest

type op = Add of int * int | Remove of int

let op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map2 (fun k v -> Add (k, v)) (int_range 0 200) (int_range 0 1000));
        (1, map (fun k -> Remove k) (int_range 0 200)) ])

let op_print = function
  | Add (k, v) -> Printf.sprintf "Add(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove(%d)" k

let ops_arb = QCheck.make ~print:QCheck.Print.(list op_print) QCheck.Gen.(list_size (0 -- 400) op_gen)

let apply_ops ops =
  List.fold_left
    (fun (t, m) -> function
      | Add (k, v) -> (M.add k v t, Model.add k v m)
      | Remove k -> (M.remove k t, Model.remove k m))
    (M.empty, Model.empty) ops

let prop_model =
  QCheck.Test.make ~name:"wbt equals Map model" ~count:200 ops_arb (fun ops ->
      let t, m = apply_ops ops in
      M.to_list t = Model.bindings m)

let prop_invariants =
  QCheck.Test.make ~name:"wbt invariants hold" ~count:200 ops_arb (fun ops ->
      let t, _ = apply_ops ops in
      M.check_invariants t)

let prop_height =
  QCheck.Test.make ~name:"wbt height is logarithmic" ~count:50
    QCheck.(int_range 1 2000)
    (fun n ->
      let t = ref M.empty in
      for i = 0 to n - 1 do
        t := M.add i i !t
      done;
      (* delta = 3 gives height <= ~2.41 log2 n; allow slack *)
      float_of_int (M.height !t) <= (3.0 *. (log (float_of_int n) /. log 2.0)) +. 3.0)

let prop_split =
  QCheck.Test.make ~name:"wbt split partitions" ~count:200
    QCheck.(pair (int_range 0 200) ops_arb)
    (fun (pivot, ops) ->
      let t, m = apply_ops ops in
      let l, data, r = M.split pivot t in
      M.check_invariants l && M.check_invariants r
      && data = Model.find_opt pivot m
      && List.for_all (fun (k, _) -> k < pivot) (M.to_list l)
      && List.for_all (fun (k, _) -> k > pivot) (M.to_list r)
      && M.size l + M.size r + (if data = None then 0 else 1) = Model.cardinal m)

let prop_rank_nth =
  QCheck.Test.make ~name:"wbt rank/nth consistent" ~count:200 ops_arb (fun ops ->
      let t, m = apply_ops ops in
      let bindings = Model.bindings m in
      List.for_all2
        (fun i (k, v) -> M.nth i t = (k, v) && M.rank k t = i)
        (List.init (List.length bindings) Fun.id)
        bindings)

let test_empty () =
  Alcotest.(check bool) "empty" true (M.is_empty M.empty);
  Alcotest.(check int) "size" 0 (M.size M.empty);
  Alcotest.(check (option int)) "find" None (M.find 1 M.empty);
  Alcotest.(check bool) "min" true (M.min_binding M.empty = None);
  Alcotest.(check bool) "max" true (M.max_binding M.empty = None)

let test_min_max () =
  let t = List.fold_left (fun t k -> M.add k (k * 10) t) M.empty [ 5; 1; 9; 3 ] in
  Alcotest.(check bool) "min" true (M.min_binding t = Some (1, 10));
  Alcotest.(check bool) "max" true (M.max_binding t = Some (9, 90))

let test_of_sorted_array () =
  let a = Array.init 100 (fun i -> (i, i)) in
  let t = M.of_sorted_array a in
  Alcotest.(check bool) "invariants" true (M.check_invariants t);
  Alcotest.(check int) "size" 100 (M.size t);
  Alcotest.(check bool) "rejects unsorted" true
    (match M.of_sorted_array [| (2, 0); (1, 0) |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  ( "wbt",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "min/max" `Quick test_min_max;
      Alcotest.test_case "of_sorted_array" `Quick test_of_sorted_array;
      qtest prop_model;
      qtest prop_invariants;
      qtest prop_height;
      qtest prop_split;
      qtest prop_rank_nth;
    ] )
