lib/core/vs_index.ml: Block_store Io_stats List Segdb_geom Segdb_io Segment Vquery
