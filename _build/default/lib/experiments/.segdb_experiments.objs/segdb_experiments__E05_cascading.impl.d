lib/experiments/e05_cascading.ml: Harness List Rng Segdb_core Segdb_util Segdb_workload Table
