open Segdb_geom

type ivl = { lo : float; hi : float; seg : Segment.t }

(* Node: center point, the intervals containing it sorted by lo
   ascending and by hi descending, and side subtrees. *)
type node = {
  center : float;
  by_lo : ivl array;
  by_hi : ivl array;
  left : node option;
  right : node option;
  count : int; (* intervals in this subtree *)
}

type t = { mutable root : node option; mutable size : int; mutable ops : int }

let sort_by_lo a =
  Array.sort (fun x y -> compare (x.lo, x.seg.Segment.id) (y.lo, y.seg.Segment.id)) a;
  a

let sort_by_hi a =
  Array.sort (fun x y -> compare (y.hi, y.seg.Segment.id) (x.hi, x.seg.Segment.id)) a;
  a

let rec build_rec (ivls : ivl list) : node option =
  match ivls with
  | [] -> None
  | _ ->
      let pts = List.concat_map (fun iv -> [ iv.lo; iv.hi ]) ivls in
      let pts = List.sort compare pts in
      let center = List.nth pts (List.length pts / 2) in
      let here, lefts, rights =
        List.fold_left
          (fun (h, l, r) iv ->
            if iv.hi < center then (h, iv :: l, r)
            else if iv.lo > center then (h, l, iv :: r)
            else (iv :: h, l, r))
          ([], [], []) ivls
      in
      if here = [] && (lefts = [] || rights = []) then
        (* degenerate distribution; still terminates since one side is
           empty only when all intervals avoid the median, which forces
           [here] nonempty unless values repeat — then shrink by one *)
        match (lefts, rights) with
        | [], [] -> None
        | iv :: rest, [] | [], iv :: rest ->
            Some
              {
                center = iv.lo;
                by_lo = sort_by_lo [| iv |];
                by_hi = sort_by_hi [| iv |];
                left = None;
                right = build_rec rest;
                count = List.length ivls;
              }
        | _ -> assert false
      else
        Some
          {
            center;
            by_lo = sort_by_lo (Array.of_list here);
            by_hi = sort_by_hi (Array.of_list here);
            left = build_rec lefts;
            right = build_rec rights;
            count = List.length ivls;
          }

let build ivls =
  Array.iter
    (fun iv -> if iv.lo > iv.hi then invalid_arg "Internal_interval_tree.build: lo > hi")
    ivls;
  { root = build_rec (Array.to_list ivls); size = Array.length ivls; ops = 0 }

let size t = t.size

let rec height_rec = function
  | None -> 0
  | Some n ->
      1 + max (height_rec n.left) (height_rec n.right)

let height t = height_rec t.root

let rec iter_rec n f =
  match n with
  | None -> ()
  | Some n ->
      Array.iter f n.by_lo;
      iter_rec n.left f;
      iter_rec n.right f

let iter t f = iter_rec t.root f

let stab t x ~f =
  let rec go = function
    | None -> ()
    | Some n ->
        if x < n.center then begin
          (* by_lo ascending: report while lo <= x *)
          (try
             Array.iter
               (fun iv -> if iv.lo <= x then f iv else raise Exit)
               n.by_lo
           with Exit -> ());
          go n.left
        end
        else if x > n.center then begin
          (try
             Array.iter (fun iv -> if iv.hi >= x then f iv else raise Exit) n.by_hi
           with Exit -> ());
          go n.right
        end
        else Array.iter f n.by_lo
  in
  go t.root

let stab_list t x =
  let acc = ref [] in
  stab t x ~f:(fun iv -> acc := iv :: !acc);
  !acc

let overlap t ~lo ~hi ~f =
  if lo > hi then invalid_arg "Internal_interval_tree.overlap: lo > hi";
  (* stab lo, plus every interval starting inside (lo, hi] *)
  stab t lo ~f;
  let rec go = function
    | None -> ()
    | Some n ->
        (* subtree may contain starts in (lo, hi] anywhere *)
        Array.iter (fun iv -> if iv.lo > lo && iv.lo <= hi then f iv) n.by_lo;
        if n.center >= lo then go n.left;
        if n.center <= hi then go n.right
  in
  go t.root

(* scapegoat-style insertion *)
let rec flatten n acc =
  match n with
  | None -> acc
  | Some n -> flatten n.left (flatten n.right (Array.fold_left (fun a iv -> iv :: a) acc n.by_lo))

let rec insert_rec node iv depth =
  match node with
  | None ->
      Some
        {
          center = iv.lo;
          by_lo = [| iv |];
          by_hi = [| iv |];
          left = None;
          right = None;
          count = 1;
        }
  | Some n ->
      if iv.hi < n.center then
        Some { n with left = insert_rec n.left iv (depth + 1); count = n.count + 1 }
      else if iv.lo > n.center then
        Some { n with right = insert_rec n.right iv (depth + 1); count = n.count + 1 }
      else
        Some
          {
            n with
            by_lo = sort_by_lo (Array.append n.by_lo [| iv |]);
            by_hi = sort_by_hi (Array.append n.by_hi [| iv |]);
            count = n.count + 1;
          }

let maybe_rebuild t =
  t.ops <- t.ops + 1;
  (* periodic global rebuild keeps the backbone balanced without
     per-rotation list surgery *)
  if t.ops > max 32 (t.size / 2) then begin
    t.root <- build_rec (flatten t.root []);
    t.ops <- 0
  end

let insert t iv =
  if iv.lo > iv.hi then invalid_arg "Internal_interval_tree.insert: lo > hi";
  t.root <- insert_rec t.root iv 0;
  t.size <- t.size + 1;
  maybe_rebuild t

let delete t iv =
  let removed = ref false in
  let prune a =
    match
      Array.find_index
        (fun c -> c.seg.Segment.id = iv.seg.Segment.id && c.lo = iv.lo && c.hi = iv.hi)
        a
    with
    | Some i ->
        removed := true;
        let out = Array.make (Array.length a - 1) iv in
        Array.blit a 0 out 0 i;
        Array.blit a (i + 1) out i (Array.length a - 1 - i);
        out
    | None -> a
  in
  let rec go = function
    | None -> None
    | Some n ->
        if !removed then Some n
        else if iv.hi < n.center then
          let left = go n.left in
          if !removed then Some { n with left; count = n.count - 1 } else Some n
        else if iv.lo > n.center then
          let right = go n.right in
          if !removed then Some { n with right; count = n.count - 1 } else Some n
        else begin
          let by_lo = prune n.by_lo in
          if !removed then begin
            let by_hi = prune n.by_hi in
            ignore by_hi;
            (* recompute by_hi from by_lo to stay consistent *)
            let by_hi = sort_by_hi (Array.copy by_lo) in
            if Array.length by_lo = 0 && n.left = None && n.right = None then None
            else Some { n with by_lo; by_hi; count = n.count - 1 }
          end
          else Some n
        end
  in
  t.root <- go t.root;
  if !removed then begin
    t.size <- t.size - 1;
    maybe_rebuild t
  end;
  !removed

let check_invariants t =
  let ok = ref true in
  let total = ref 0 in
  let rec go lo hi = function
    | None -> ()
    | Some n ->
        (match lo with Some b -> if n.center < b then ok := false | None -> ());
        (match hi with Some b -> if n.center > b then ok := false | None -> ());
        total := !total + Array.length n.by_lo;
        if Array.length n.by_lo <> Array.length n.by_hi then ok := false;
        Array.iter
          (fun iv -> if not (iv.lo <= n.center && n.center <= iv.hi) then ok := false)
          n.by_lo;
        for i = 1 to Array.length n.by_lo - 1 do
          if n.by_lo.(i - 1).lo > n.by_lo.(i).lo then ok := false
        done;
        for i = 1 to Array.length n.by_hi - 1 do
          if n.by_hi.(i - 1).hi < n.by_hi.(i).hi then ok := false
        done;
        go lo (Some n.center) n.left;
        go (Some n.center) hi n.right
  in
  go None None t.root;
  if !total <> t.size then ok := false;
  !ok
