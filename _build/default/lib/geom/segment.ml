type t = { x1 : float; y1 : float; x2 : float; y2 : float; id : int }

let make ?(id = -1) (ax, ay) (bx, by) =
  if ax < bx || (ax = bx && ay <= by) then { x1 = ax; y1 = ay; x2 = bx; y2 = by; id }
  else { x1 = bx; y1 = by; x2 = ax; y2 = ay; id }

let with_id s id = { s with id }

let equal a b = a.id = b.id && a.x1 = b.x1 && a.y1 = b.y1 && a.x2 = b.x2 && a.y2 = b.y2

let compare_id a b = compare a.id b.id

let is_vertical s = s.x1 = s.x2
let is_point s = s.x1 = s.x2 && s.y1 = s.y2

let min_x s = s.x1
let max_x s = s.x2
let min_y s = if s.y1 <= s.y2 then s.y1 else s.y2
let max_y s = if s.y1 >= s.y2 then s.y1 else s.y2

let spans_x s x = s.x1 <= x && x <= s.x2

let slope s =
  if s.x1 = s.x2 then infinity else (s.y2 -. s.y1) /. (s.x2 -. s.x1)

let y_at s x =
  if s.x1 = s.x2 then s.y1
  else s.y1 +. ((s.y2 -. s.y1) *. ((x -. s.x1) /. (s.x2 -. s.x1)))

let pp ppf s = Format.fprintf ppf "#%d[(%g,%g)-(%g,%g)]" s.id s.x1 s.y1 s.x2 s.y2

let clip_x s lo hi =
  if lo > hi then None
  else if is_vertical s then if lo <= s.x1 && s.x1 <= hi then Some s else None
  else
    let lo' = if s.x1 > lo then s.x1 else lo
    and hi' = if s.x2 < hi then s.x2 else hi in
    if lo' > hi' then None
    else if lo' = s.x1 && hi' = s.x2 then Some s
    else Some { s with x1 = lo'; y1 = y_at s lo'; x2 = hi'; y2 = y_at s hi' }
