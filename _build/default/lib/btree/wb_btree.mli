open Segdb_io

(** External weight-balanced B-tree (Arge–Vitter, the paper's reference
    [3] and the first level prescribed for semi-dynamic Solution 2).

    Invariant: all leaves at one depth; a node at height [h] (leaves at
    height 0) carries weight (items in its subtree) at most
    [branching^h * leaf_weight] and, unless it is the root, at least a
    quarter of that. An insertion splits every overweight node on its
    path into two near-equal halves, so between two splits of the same
    node Ω(weight) insertions must hit it — the amortization the
    paper's Section 4 leans on when secondary structures hang off
    first-level nodes ("rebuilding costs O(weight) but happens every
    Ω(weight) updates").

    The index solutions use a quantile-rebuild discipline with the same
    invariant (DESIGN.md); this module is the cited structure itself,
    validated standalone: model-equivalence and weight-invariant
    property tests in [test/t_btree.ml]. Deletions are lazy (weights
    keep counting live items; a half-empty tree is rebuilt). *)

module Make (K : sig
  type t

  val compare : t -> t -> int
end) (V : sig
  type t
end) : sig
  type t
  type key = K.t
  type value = V.t

  val create :
    ?branching:int ->
    ?leaf_weight:int ->
    pool:Block_store.Pool.t ->
    stats:Io_stats.t ->
    unit ->
    t
  (** [branching] (default 8) >= 4; [leaf_weight] (default 64) >= 2. *)

  val size : t -> int
  val height : t -> int
  val block_count : t -> int

  val find : t -> key -> value option
  val insert : t -> key -> value -> unit
  (** Replaces on duplicate key. *)

  val delete : t -> key -> bool
  (** Lazy: the key is removed from its leaf; the tree is rebuilt when
      half the inserted items are gone. *)

  val iter : t -> (key -> value -> unit) -> unit
  (** In key order. *)

  val check_invariants : t -> bool
  (** Key order, uniform leaf depth, and the weight bounds above. *)
end
