open Segdb_io
open Segdb_geom
module Pst = Segdb_pst.Pst
module Itree = Segdb_itree.Interval_tree
module G = Segdb_segtree.Slab_segment_tree

type node =
  | Leaf of Segment.t array
  | Node of {
      boundaries : float array; (* m >= 1 slab boundaries, ascending *)
      cs : Itree.t option array; (* per boundary: collinear segments *)
      ls : Pst.t array; (* per boundary: short fragments to its left *)
      rs : Pst.t array; (* per boundary: short fragments to its right *)
      g : G.t option; (* long fragments; None when m < 2 *)
      kids : Block_store.addr array; (* m + 1 slabs *)
      size : int;
    }

module Store = Block_store.Make (struct
  type t = node
end)

type t = {
  store : Store.t;
  cfg : Vs_index.config;
  branching : int; (* the paper's b = B/4 *)
  by_id : (int, Segment.t) Hashtbl.t; (* see Solution1 *)
  mutable root : Block_store.addr;
  mutable size : int;
  mutable deletes : int; (* since the last global rebuild *)
}

let name = "solution2"

(* first boundary index >= x, or length if none *)
let lower_boundary boundaries x =
  let lo = ref 0 and hi = ref (Array.length boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if boundaries.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* number of boundaries <= x: the slab index *)
let slab_of boundaries x =
  let lo = ref 0 and hi = ref (Array.length boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if boundaries.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Crossed boundary range of a segment: [Some (f, l)] when at least one
   boundary lies within its closed x-extent. *)
let crossed boundaries (s : Segment.t) =
  let m = Array.length boundaries in
  let f = lower_boundary boundaries s.x1 in
  if f >= m || boundaries.(f) > s.x2 then None
  else begin
    let l = slab_of boundaries s.x2 - 1 in
    Some (f, l)
  end

let on_boundary boundaries (s : Segment.t) =
  if not (Segment.is_vertical s) then None
  else begin
    let f = lower_boundary boundaries s.x1 in
    if f < Array.length boundaries && boundaries.(f) = s.x1 then Some f else None
  end

let ivl_of (s : Segment.t) = { Itree.lo = Segment.min_y s; hi = Segment.max_y s; seg = s }

let build_pst t lsegs =
  Pst.blocked ~node_capacity:t.cfg.block ~pool:t.cfg.pool ~stats:t.cfg.stats
    (Array.of_list lsegs)

let build_itree t ivls =
  Itree.build ~leaf_capacity:t.cfg.block ~pool:t.cfg.pool ~stats:t.cfg.stats
    (Array.of_list ivls)

(* Quantile slab boundaries over endpoint abscissas, deduplicated. *)
let quantile_boundaries branching segs =
  let xs = Array.make (2 * Array.length segs) 0.0 in
  Array.iteri
    (fun i (s : Segment.t) ->
      xs.(2 * i) <- s.x1;
      xs.((2 * i) + 1) <- s.x2)
    segs;
  Array.sort compare xs;
  let m = Array.length xs in
  let raw = List.init (branching - 1) (fun i -> xs.(min ((i + 1) * m / branching) (m - 1))) in
  Array.of_list (List.sort_uniq compare raw)

let rec build_node t (segs : Segment.t array) : Block_store.addr =
  let n = Array.length segs in
  if n = 0 then Block_store.null
  else if n <= t.cfg.block then Store.alloc t.store (Leaf segs)
  else begin
    let boundaries = quantile_boundaries t.branching segs in
    let m = Array.length boundaries in
    if m = 0 then Store.alloc t.store (Leaf segs)
    else begin
      let cs_acc = Array.make m [] in
      let ls_acc = Array.make m [] and rs_acc = Array.make m [] in
      let longs = ref [] in
      let below = Array.make (m + 1) [] in
      let stored = ref 0 in
      Array.iter
        (fun (s : Segment.t) ->
          match on_boundary boundaries s with
          | Some i ->
              cs_acc.(i) <- ivl_of s :: cs_acc.(i);
              incr stored
          | None -> (
              match crossed boundaries s with
              | Some (f, l) ->
                  ls_acc.(f) <- Lseg.left_of_vline ~base_x:boundaries.(f) s :: ls_acc.(f);
                  rs_acc.(l) <- Lseg.right_of_vline ~base_x:boundaries.(l) s :: rs_acc.(l);
                  if f < l then begin
                    match Segment.clip_x s boundaries.(f) boundaries.(l) with
                    | Some frag -> longs := frag :: !longs
                    | None -> assert false
                  end;
                  incr stored
              | None ->
                  let k = slab_of boundaries s.x1 in
                  below.(k) <- s :: below.(k)))
        segs;
      if !stored = 0 && Array.exists (fun l -> List.length l = n) below then
        Store.alloc t.store (Leaf segs)
      else begin
        let cs =
          Array.map (fun acc -> if acc = [] then None else Some (build_itree t acc)) cs_acc
        in
        let ls = Array.map (build_pst t) ls_acc and rs = Array.map (build_pst t) rs_acc in
        let g =
          if m >= 2 then
            Some
              (G.build ~cascade:t.cfg.cascade ~list_block:t.cfg.block ~pool:t.cfg.pool
                 ~stats:t.cfg.stats ~boundaries
                 (Array.of_list !longs))
          else begin
            assert (!longs = []);
            None
          end
        in
        let kids = Array.map (fun l -> build_node t (Array.of_list (List.rev l))) below in
        Store.alloc t.store (Node { boundaries; cs; ls; rs; g; kids; size = n })
      end
    end
  end

let build (cfg : Vs_index.config) segs =
  let store = Store.create ~name:"sol2" ~pool:cfg.pool ~stats:cfg.stats () in
  let t =
    {
      store;
      cfg;
      branching = max 4 (cfg.block / 4);
      by_id = Hashtbl.create 1024;
      root = Block_store.null;
      size = 0;
      deletes = 0;
    }
  in
  Array.iter (fun (s : Segment.t) -> Hashtbl.replace t.by_id s.id s) segs;
  if Hashtbl.length t.by_id <> Array.length segs then
    invalid_arg "Solution2.build: duplicate segment ids";
  t.root <- build_node t (Array.copy segs);
  t.size <- Array.length segs;
  t

(* ---------------- query ---------------- *)

let query t (q : Vquery.t) ~f =
  Probe.span t.cfg.stats "sol2.descent" @@ fun () ->
  let seen = Hashtbl.create 16 in
  let emit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      f (Hashtbl.find t.by_id id)
    end
  in
  let emit_lseg (ls : Lseg.t) = emit ls.Lseg.id in
  let emit_frag (s : Segment.t) = emit s.id in
  let rec go addr =
    if addr <> Block_store.null then
      match Store.read t.store addr with
      | Leaf segs ->
          Array.iter (fun (s : Segment.t) -> if Vquery.matches q s then emit s.id) segs
      | Node n ->
          let m = Array.length n.boundaries in
          let k = slab_of n.boundaries q.x in
          let hit_boundary = k >= 1 && n.boundaries.(k - 1) = q.x in
          (match n.g with
          | Some g -> G.query g ~x:q.x ~ylo:q.ylo ~yhi:q.yhi ~f:emit_frag
          | None -> ());
          if hit_boundary then begin
            let i = k - 1 in
            (match n.cs.(i) with
            | Some c -> Itree.overlap c ~lo:q.ylo ~hi:q.yhi ~f:(fun iv -> emit iv.seg.Segment.id)
            | None -> ());
            let lq = Lseg.query ~uq:0.0 ~vlo:q.ylo ~vhi:q.yhi in
            Pst.query n.ls.(i) lq ~f:emit_lseg;
            Pst.query n.rs.(i) lq ~f:emit_lseg
          end
          else begin
            if k <= m - 1 then
              Pst.query n.ls.(k)
                (Lseg.query ~uq:(n.boundaries.(k) -. q.x) ~vlo:q.ylo ~vhi:q.yhi)
                ~f:emit_lseg;
            if k >= 1 then
              Pst.query n.rs.(k - 1)
                (Lseg.query ~uq:(q.x -. n.boundaries.(k - 1)) ~vlo:q.ylo ~vhi:q.yhi)
                ~f:emit_lseg
          end;
          go n.kids.(k)
  in
  go t.root

let query_r r t q ~f = Read_context.with_reader r (fun () -> query t q ~f)

let iter_all t ~f = Hashtbl.iter (fun _ s -> f s) t.by_id

(* ---------------- insertion ---------------- *)

let node_size t addr =
  if addr = Block_store.null then 0
  else match Store.read t.store addr with Leaf s -> Array.length s | Node n -> n.size

let needs_rebuild t ~child_size ~subtree_size =
  subtree_size > 4 * t.cfg.block
  && (t.branching + 1) * (child_size + 1) > 4 * (subtree_size + 1)

let rec collect t addr seen acc =
  if addr <> Block_store.null then begin
    let add (s : Segment.t) =
      if not (Hashtbl.mem seen s.id) then begin
        Hashtbl.add seen s.id ();
        acc := s :: !acc
      end
    in
    let add_id id = add (Hashtbl.find t.by_id id) in
    (match Store.read t.store addr with
    | Leaf segs -> Array.iter add segs
    | Node n ->
        Array.iter
          (function Some c -> Itree.iter c (fun iv -> add iv.Itree.seg) | None -> ())
          n.cs;
        Array.iter (fun p -> Pst.iter p (fun ls -> add_id ls.Lseg.id)) n.ls;
        (* rs mirror ls; G fragments come from the same segments *)
        Array.iter (fun kid -> collect t kid seen acc) n.kids);
    Store.free t.store addr
  end

let rebuild_subtree t addr =
  let acc = ref [] in
  collect t addr (Hashtbl.create 64) acc;
  build_node t (Array.of_list !acc)

let rec insert_rec t addr (s : Segment.t) : Block_store.addr =
  if addr = Block_store.null then Store.alloc t.store (Leaf [| s |])
  else
    match Store.read t.store addr with
    | Leaf segs ->
        let segs = Array.append segs [| s |] in
        if Array.length segs <= t.cfg.block then begin
          Store.write t.store addr (Leaf segs);
          addr
        end
        else begin
          Store.free t.store addr;
          build_node t segs
        end
    | Node n -> (
        match on_boundary n.boundaries s with
        | Some i ->
            let c = match n.cs.(i) with Some c -> c | None -> build_itree t [] in
            Itree.insert c (ivl_of s);
            let cs = Array.copy n.cs in
            cs.(i) <- Some c;
            Store.write t.store addr (Node { n with cs; size = n.size + 1 });
            addr
        | None -> (
            match crossed n.boundaries s with
            | Some (f, l) ->
                Pst.insert n.ls.(f) (Lseg.left_of_vline ~base_x:n.boundaries.(f) s);
                Pst.insert n.rs.(l) (Lseg.right_of_vline ~base_x:n.boundaries.(l) s);
                if f < l then begin
                  match (n.g, Segment.clip_x s n.boundaries.(f) n.boundaries.(l)) with
                  | Some g, Some frag -> G.insert g frag
                  | _ -> assert false
                end;
                Store.write t.store addr (Node { n with size = n.size + 1 });
                addr
            | None ->
                let k = slab_of n.boundaries s.x1 in
                let kid = insert_rec t n.kids.(k) s in
                let kid =
                  if needs_rebuild t ~child_size:(node_size t kid) ~subtree_size:(n.size + 1)
                  then rebuild_subtree t kid
                  else kid
                in
                let kids = Array.copy n.kids in
                kids.(k) <- kid;
                Store.write t.store addr (Node { n with kids; size = n.size + 1 });
                addr))

let insert t s =
  if Hashtbl.mem t.by_id s.Segment.id then invalid_arg "Solution2.insert: duplicate id";
  Hashtbl.replace t.by_id s.Segment.id s;
  t.size <- t.size + 1;
  t.root <- insert_rec t t.root s

(* ---------------- deletion ---------------- *)

let rec free_tree t addr =
  if addr <> Block_store.null then begin
    (match Store.read t.store addr with
    | Leaf _ -> ()
    | Node n -> Array.iter (free_tree t) n.kids);
    Store.free t.store addr
  end

let rec delete_rec t addr (s : Segment.t) : bool =
  if addr = Block_store.null then false
  else
    match Store.read t.store addr with
    | Leaf segs -> (
        match Array.find_index (fun c -> Segment.equal c s) segs with
        | Some i ->
            let out = Array.make (Array.length segs - 1) s in
            Array.blit segs 0 out 0 i;
            Array.blit segs (i + 1) out i (Array.length segs - 1 - i);
            Store.write t.store addr (Leaf out);
            true
        | None -> false)
    | Node n -> (
        match on_boundary n.boundaries s with
        | Some i -> (
            match n.cs.(i) with
            | Some c ->
                let present =
                  Itree.delete c { Itree.lo = Segment.min_y s; hi = Segment.max_y s; seg = s }
                in
                if present then Store.write t.store addr (Node { n with size = n.size - 1 });
                present
            | None -> false)
        | None -> (
            match crossed n.boundaries s with
            | Some (f, l) ->
                let dl = Pst.delete n.ls.(f) (Lseg.left_of_vline ~base_x:n.boundaries.(f) s) in
                let dr = Pst.delete n.rs.(l) (Lseg.right_of_vline ~base_x:n.boundaries.(l) s) in
                if dl <> dr then invalid_arg "Solution2.delete: inconsistent halves";
                if dl && f < l then begin
                  match (n.g, Segment.clip_x s n.boundaries.(f) n.boundaries.(l)) with
                  | Some g, Some frag -> ignore (G.delete g frag)
                  | _ -> ()
                end;
                if dl then Store.write t.store addr (Node { n with size = n.size - 1 });
                dl
            | None ->
                let k = slab_of n.boundaries s.x1 in
                let present = delete_rec t n.kids.(k) s in
                if present then Store.write t.store addr (Node { n with size = n.size - 1 });
                present))

let delete t (s : Segment.t) =
  match Hashtbl.find_opt t.by_id s.Segment.id with
  | Some stored when Segment.equal stored s ->
      let present = delete_rec t t.root s in
      if present then begin
        Hashtbl.remove t.by_id s.Segment.id;
        t.size <- t.size - 1;
        t.deletes <- t.deletes + 1;
        if t.deletes > t.size + t.cfg.block then begin
          let segs = Array.of_seq (Hashtbl.to_seq_values t.by_id) in
          free_tree t t.root;
          t.root <- build_node t segs;
          t.deletes <- 0
        end
      end;
      present
  | _ -> false

(* ---------------- metrics / invariants ---------------- *)

let size t = t.size

let rec blocks_rec t addr =
  if addr = Block_store.null then 0
  else
    match Store.read t.store addr with
    | Leaf _ -> 1
    | Node n ->
        1
        + Array.fold_left
            (fun acc c -> match c with Some c -> acc + Itree.block_count c | None -> acc)
            0 n.cs
        + Array.fold_left (fun acc p -> acc + Pst.block_count p) 0 n.ls
        + Array.fold_left (fun acc p -> acc + Pst.block_count p) 0 n.rs
        + (match n.g with Some g -> G.block_count g | None -> 0)
        + Array.fold_left (fun acc kid -> acc + blocks_rec t kid) 0 n.kids

let block_count t = blocks_rec t t.root

let rec height_rec t addr =
  if addr = Block_store.null then 0
  else
    match Store.read t.store addr with
    | Leaf _ -> 1
    | Node n -> 1 + Array.fold_left (fun acc kid -> max acc (height_rec t kid)) 0 n.kids

let height t = height_rec t t.root

let rec cascade_rec t addr =
  if addr = Block_store.null then (0, 0)
  else
    match Store.read t.store addr with
    | Leaf _ -> (0, 0)
    | Node n ->
        let g0, f0 =
          match n.g with
          | Some g -> (G.guided_levels g, G.fallback_searches g)
          | None -> (0, 0)
        in
        Array.fold_left
          (fun (ga, fa) kid ->
            let g, f = cascade_rec t kid in
            (ga + g, fa + f))
          (g0, f0) n.kids

let cascade_counters t = cascade_rec t t.root

let check_invariants t =
  let ok = ref true in
  let fail () = ok := false in
  let seen = Hashtbl.create 64 in
  let see (s : Segment.t) =
    if Hashtbl.mem seen s.id then fail () else Hashtbl.add seen s.id ()
  in
  let rec go addr ~lo ~hi =
    if addr = Block_store.null then 0
    else
      match Store.read t.store addr with
      | Leaf segs ->
          Array.iter
            (fun (s : Segment.t) ->
              see s;
              (match lo with Some b -> if s.x1 < b then fail () | None -> ());
              match hi with Some b -> if s.x2 > b then fail () | None -> ())
            segs;
          Array.length segs
      | Node n ->
          let m = Array.length n.boundaries in
          let stored = ref 0 in
          Array.iteri
            (fun i c ->
              match c with
              | Some c ->
                  Itree.iter c (fun iv ->
                      incr stored;
                      see iv.Itree.seg;
                      if on_boundary n.boundaries iv.Itree.seg <> Some i then fail ())
              | None -> ())
            n.cs;
          Array.iteri
            (fun i p ->
              if not (Pst.check_invariants p) then fail ();
              Pst.iter p (fun ls ->
                  incr stored;
                  let s = Hashtbl.find t.by_id ls.Lseg.id in
                  see s;
                  match crossed n.boundaries s with
                  | Some (f, _) -> if f <> i then fail ()
                  | None -> fail ()))
            n.ls;
          Array.iteri
            (fun i p ->
              if not (Pst.check_invariants p) then fail ();
              Pst.iter p (fun ls ->
                  let s = Hashtbl.find t.by_id ls.Lseg.id in
                  match crossed n.boundaries s with
                  | Some (_, l) -> if l <> i then fail ()
                  | None -> fail ()))
            n.rs;
          (match n.g with Some g -> if not (G.check_invariants g) then fail () | None -> ());
          let kid_sizes =
            Array.mapi
              (fun k kid ->
                let klo = if k = 0 then lo else Some n.boundaries.(k - 1) in
                let khi = if k = m then hi else Some n.boundaries.(k) in
                go kid ~lo:klo ~hi:khi)
              n.kids
          in
          let below = Array.fold_left ( + ) 0 kid_sizes in
          if !stored + below <> n.size then fail ();
          n.size
  in
  let total = go t.root ~lo:None ~hi:None in
  if total <> t.size then fail ();
  !ok
