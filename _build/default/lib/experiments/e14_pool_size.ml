(* E14 — buffer-pool sensitivity (DESIGN.md ablation 4): the I/O counts
   of every index as the memory budget M grows from a few blocks to
   index-sized. The paper's bounds are memory-oblivious (beyond one
   block per active structure); the naive scan, by contrast, is saved
   only by a pool larger than the database. *)

open Segdb_util
module W = Segdb_workload.Workload
module Db = Segdb_core.Segdb

let id = "e14"
let title = "E14: query I/O vs buffer-pool size"
let validates = "cost-model sanity: index bounds hold with O(1) memory; scans need O(n)"

let run (p : Harness.params) =
  let n = if p.quick then 1 lsl 13 else 1 lsl 16 in
  let span = 1000.0 in
  let segs = W.uniform (Rng.create p.seed) ~n ~span in
  let queries = W.segment_queries (Rng.create (p.seed + 1)) ~n:40 ~span ~selectivity:0.02 in
  let table =
    Table.create
      ~title:(Printf.sprintf "%s (N = %d, n/B = %d)" title n (n / Harness.block))
      ~columns:[ "pool"; "naive"; "rtree"; "sol1"; "sol2" ]
  in
  List.iter
    (fun pool_blocks ->
      let cost backend =
        let db =
          Db.create ~backend:(Option.get (Db.backend_of_string backend)) ~block:Harness.block
            ~pool_blocks segs
        in
        let c = Harness.measure ~io:(Db.io db) ~queries ~run:(Db.count db) in
        Table.cell_float ~decimals:1 c.mean_io
      in
      Table.add_row table
        [
          Table.cell_int pool_blocks;
          cost "naive";
          cost "rtree";
          cost "solution1";
          cost "solution2";
        ])
    [ 4; 16; 64; 256; 1024 ];
  [ Harness.Table table ]
