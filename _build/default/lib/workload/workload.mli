open Segdb_util
open Segdb_geom

(** Workload generators.

    Every family produces a *certified* NCT set — the construction
    itself guarantees segments never properly cross (touching is
    allowed), so indexes can be exercised at scales where an O(n²)
    check would be unaffordable. Families with integer coordinates are
    additionally verified with exact predicates in the test suite.

    The families mirror the application domains the paper's
    introduction motivates: GIS map layers ([roads], [grid_city]),
    temporal databases ([temporal]), and adversarial/synthetic shapes
    ([fans], [line_based]). Ids are assigned sequentially from 0. *)

val roads : Rng.t -> n:int -> span:float -> Segment.t array
(** GIS-like map layer: parallel polyline "tracks" (bounded-amplitude
    random walks in disjoint horizontal bands), cut into chained
    segments with occasional gaps. Float coordinates; NCT by band
    separation and per-track chaining. *)

val grid_city : Rng.t -> n:int -> span:int -> max_len:int -> Segment.t array
(** Manhattan layout: axis-parallel street segments on an integer grid,
    split exactly at every crossing so the result only touches. The
    closest synthetic analogue of planarized cadastral data. Returns at
    least [n] segments when possible, truncated to [n]. *)

val temporal : Rng.t -> n:int -> keys:int -> horizon:int -> Segment.t array
(** Valid-time version histories: for each key (a row [y = key]) a
    sequence of touching or gapped version intervals over
    [\[0, horizon\]]. A vertical line query at time [tau] is a snapshot
    ("which versions were live at tau"). Integer coordinates. *)

val fans : Rng.t -> n:int -> centers:int -> span:int -> Segment.t array
(** Star/fan sets: segments radiating upward from a few base points in
    disjoint strips — the line-based worst case concentrating many
    segments on few base positions. Integer coordinates. *)

val uniform : Rng.t -> n:int -> span:float -> Segment.t array
(** Default mixed workload: [roads] with many narrow tracks, giving
    short, direction-varied segments spread uniformly. *)

val long_spans : Rng.t -> n:int -> span:float -> Segment.t array
(** Wide nearly-parallel segments (bases and slopes co-sorted, hence
    NCT) whose x-extents cover 30-80% of the span: the regime where
    Solution 2 produces many long fragments and fractional cascading
    matters. *)

val line_based : Rng.t -> n:int -> vspan:float -> umax:float -> Lseg.t array
(** Canonical-frame line-based segments (for the Section 2 structures):
    base positions and slopes co-sorted, hence mutually non-crossing at
    any depth; depths are independent. *)

val line_based_fan : Rng.t -> n:int -> centers:int -> vspan:float -> umax:float -> Lseg.t array
(** Line-based fans: few distinct base positions, slope-ordered. *)

(** {1 Queries} *)

val segment_queries :
  Rng.t -> n:int -> span:float -> selectivity:float -> Vquery.t array
(** Vertical segment queries with height [selectivity * span], centered
    uniformly inside the data extent. *)

val line_queries : Rng.t -> n:int -> span:float -> Vquery.t array
(** Stabbing queries (Figure 1's left side). *)

val ray_queries : Rng.t -> n:int -> span:float -> Vquery.t array
(** Upward/downward rays, alternating. *)

val mixed_queries :
  Rng.t -> n:int -> span:float -> selectivity:float -> Vquery.t array
(** One third each of lines, rays, segments. *)

(** {1 Checking} *)

val verify_nct : Segment.t array -> bool
(** Exact pairwise check via integer predicates — only for families with
    integer coordinates, and test-sized inputs (O(n²)). *)

val verify_nct_fast : Segment.t array -> bool
(** Sweepline check ({!Segdb_geom.Sweep}): O(n log n), usable at index
    scale; exact on integral coordinates. *)
