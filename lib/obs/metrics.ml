(* The metrics registry: named counters, gauges and histograms.

   Counters and gauges are Atomic ints, safe to bump from any domain
   once the handle is in hand. Histograms are plain (single-owner)
   structures, so every access to a *registry-owned* histogram goes
   through the registry mutex ([observe], [merge_histogram], and the
   snapshot functions); workers that record at high rate keep a private
   Histogram.t and fold it in with one [merge_histogram] at the end.

   Handle lookup is get-or-create under the mutex; probe sites resolve
   their handles once at module initialization, so the steady-state
   cost of a counter bump is one atomic load (the Control flag) plus
   one atomic add. *)

type counter = int Atomic.t
type gauge = int Atomic.t

type t = {
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 64;
  }

let default = create ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let get_or_create table name mk =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.add table name v;
      v

let counter t name = locked t (fun () -> get_or_create t.counters name (fun () -> Atomic.make 0))
let gauge t name = locked t (fun () -> get_or_create t.gauges name (fun () -> Atomic.make 0))

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c
let set_gauge g v = Atomic.set g v

let observe t name v =
  locked t (fun () ->
      Histogram.record (get_or_create t.histograms name Histogram.create) v)

let merge_histogram t name src =
  locked t (fun () ->
      Histogram.merge_into ~into:(get_or_create t.histograms name Histogram.create) src)

let histogram t name =
  locked t (fun () -> Option.map Histogram.copy (Hashtbl.find_opt t.histograms name))

let reset t =
  locked t (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) t.counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0) t.gauges;
      Hashtbl.iter (fun _ h -> Histogram.clear h) t.histograms)

let sorted_bindings table value_of =
  Hashtbl.fold (fun name v acc -> (name, value_of v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = locked t (fun () -> sorted_bindings t.counters Atomic.get)
let gauges t = locked t (fun () -> sorted_bindings t.gauges Atomic.get)
let histograms t = locked t (fun () -> sorted_bindings t.histograms Histogram.copy)

(* Merge by name: counters and gauges add, histograms merge pointwise.
   [src] is left untouched; both registries may keep being used. [src]
   is snapshotted before [into] is locked, so the two locks are never
   held together. *)
let merge_into ~into src =
  let cs = counters src and gs = gauges src and hs = histograms src in
  List.iter (fun (name, v) -> if v <> 0 then add (counter into name) v) cs;
  List.iter (fun (name, v) -> if v <> 0 then add (gauge into name) v) gs;
  List.iter (fun (name, h) -> merge_histogram into name h) hs
