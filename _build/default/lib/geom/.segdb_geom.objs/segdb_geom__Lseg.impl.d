lib/geom/lseg.ml: Float Format Segment
