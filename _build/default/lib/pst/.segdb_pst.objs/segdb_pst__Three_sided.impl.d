lib/pst/three_sided.ml: Array Float List Lseg Pst Segdb_geom
