lib/btree/bplus_tree.mli: Block_store Io_stats Segdb_io
