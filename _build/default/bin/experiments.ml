(* Experiment runner: regenerates the EXPERIMENTS.md tables.

   Usage:  experiments [--quick] [--seed N] [--list] [ID ...]         *)

open Cmdliner
module Registry = Segdb_experiments.Registry
module Harness = Segdb_experiments.Harness

let list_experiments () =
  List.iter
    (fun (e : Registry.experiment) ->
      Printf.printf "%-4s %s\n     validates: %s\n" e.id e.title e.validates)
    Registry.all;
  Printf.printf "%-4s %s\n     validates: %s\n" "e11" "E11: wall-clock timing (Bechamel)"
    "sanity: simulated-I/O ordering carries to wall-clock (run: bench/main.exe)"

let run quick seed list ids =
  if list then begin
    list_experiments ();
    0
  end
  else begin
    let params = { Harness.quick = quick; seed } in
    match Registry.run_ids ~params ids with
    | () -> 0
    | exception Invalid_argument msg ->
        prerr_endline msg;
        2
  end

let quick_t =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (smoke run, ~seconds).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload generator seed.")

let list_t = Arg.(value & flag & info [ "list" ] ~doc:"List experiments and exit.")

let ids_t =
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")

let cmd =
  let doc = "regenerate the segdb experiment tables (EXPERIMENTS.md)" in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const run $ quick_t $ seed_t $ list_t $ ids_t)

let () = exit (Cmd.eval' cmd)
