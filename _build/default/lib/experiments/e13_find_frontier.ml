(* E13 — Lemma 1's frontier claim: the paper's queue-based Find keeps
   at most two candidate nodes per tree level. We run the breadth-first
   Find with witness pruning over NCT workloads and report the realized
   frontier widths and visited-block counts against the tree height —
   the empirical footing for the O(log n) bound of Find. *)

open Segdb_io
open Segdb_geom
open Segdb_util
module W = Segdb_workload.Workload
module Pst = Segdb_pst.Pst

let id = "e13"
let title = "E13: Find frontier width (Lemma 1.1, Appendix A)"
let validates = "Lemma 1.1: the Find queue holds O(1) nodes per level"

let run (p : Harness.params) =
  let table =
    Table.create ~title
      ~columns:
        [ "n"; "family"; "height"; "mean width"; "max width"; "mean visited"; "agree" ]
  in
  let sweep = if p.quick then [ 1 lsl 11; 1 lsl 13 ] else [ 1 lsl 12; 1 lsl 14; 1 lsl 16 ] in
  let vspan = 1000.0 and umax = 100.0 in
  List.iter
    (fun n ->
      let families =
        [
          ("line-based", W.line_based (Rng.create p.seed) ~n ~vspan ~umax);
          ("fans", W.line_based_fan (Rng.create p.seed) ~n ~centers:8 ~vspan ~umax);
        ]
      in
      List.iter
        (fun (fam, lsegs) ->
          let io = Io_stats.create () in
          let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
          (* binary: the Section 2 structure the lemma is stated for *)
          let t = Pst.binary ~node_capacity:Harness.block ~pool ~stats:io lsegs in
          let qrng = Rng.create (p.seed + 1) in
          let widths = Stats.create () and visited = Stats.create () in
          let agree = ref true in
          for _ = 1 to 50 do
            let uq = Rng.float qrng (0.8 *. umax) in
            let v = Rng.float qrng vspan in
            let q = Lseg.query ~uq ~vlo:v ~vhi:(v +. (0.02 *. vspan)) in
            let prof = Pst.find_profile t q ~leftmost:true in
            Stats.add widths (float_of_int prof.max_width);
            Stats.add visited (float_of_int prof.visited);
            let dfs = Pst.find_leftmost t q in
            let same =
              match (prof.result, dfs) with
              | None, None -> true
              | Some a, Some b -> Lseg.equal a b
              | _ -> false
            in
            if not same then agree := false
          done;
          Table.add_row table
            [
              Table.cell_int n;
              fam;
              Table.cell_int (Pst.height t);
              Table.cell_float ~decimals:2 (Stats.mean widths);
              Table.cell_float ~decimals:0 (Stats.max widths);
              Table.cell_float ~decimals:1 (Stats.mean visited);
              (if !agree then "yes" else "NO");
            ])
        families)
    sweep;
  [ Harness.Table table ]
