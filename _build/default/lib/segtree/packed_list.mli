open Segdb_io

(** Static sorted block lists with a hierarchical index and a
    bidirectional leaf chain — the storage for multislab lists.

    Built once from an array the caller has ordered; afterwards supports
    - [search]: locate the first entry satisfying a monotone predicate
      in [O(log_C L)] I/Os (the index levels carry whole entries, so the
      predicate can evaluate geometry — unlike a key-only B+-tree);
    - positional access and bounded walks in both directions, one I/O
      per crossed block — what fractional-cascading landings need.

    Indices are global 0-based positions, stable for the lifetime of the
    list (the structure is immutable after build). *)

type pos = { paddr : int; pbase : int; poffset : int }
(** A stable physical position: block address, the block's first global
    index, and the offset inside it. [poffset] may equal the block
    length (one-past-the-end of the last block). Positions are what
    fractional-cascading landings store: walks starting from a [pos]
    touch no index blocks. *)

module Make (E : sig
  type t
end) : sig
  type t

  val build :
    ?block_capacity:int ->
    pool:Block_store.Pool.t ->
    stats:Io_stats.t ->
    E.t array ->
    t
  (** [block_capacity] (default 64) entries per block. The array is
      copied; the caller guarantees it is sorted in the intended
      order. *)

  val length : t -> int
  val block_count : t -> int

  val get : t -> int -> E.t
  (** Random access; charges the index descent plus the data block.
      Raises [Invalid_argument] out of bounds. *)

  val search : t -> cmp:(E.t -> int) -> int
  (** [search t ~cmp] returns the smallest position [i] with
      [cmp (get t i) >= 0], or [length t] if none. [cmp] must be
      monotone non-decreasing along the list. Costs one index descent. *)

  val iter_forward : t -> int -> (int -> E.t -> [ `Continue | `Stop ]) -> unit
  (** From position [i] (inclusive) rightward; positions past the end
      are permitted and yield nothing. *)

  val iter_backward : t -> int -> (int -> E.t -> [ `Continue | `Stop ]) -> unit
  (** From position [i] (inclusive) leftward; [i = -1] yields nothing,
      [i >= length] is clamped to the last entry. *)

  val pos_of : t -> int -> pos
  (** Physical position of global index [i] (0 <= i <= length; [length]
      maps one past the last block's entries). Pays an index descent —
      meant for build time. Raises [Invalid_argument] out of range or
      on an empty list. *)

  val walk_forward : t -> pos -> (E.t -> [ `Continue | `Stop ]) -> unit
  (** Entries from the position (inclusive) rightward; O(1) to start. *)

  val walk_backward : t -> pos -> (E.t -> [ `Continue | `Stop ]) -> unit
  (** Entries strictly before the position, leftward; O(1) to start. *)

  val to_array : t -> E.t array
  (** For tests and rebuilds. *)

  val free : t -> unit
  (** Releases all blocks. The list must not be used afterwards. *)
end
