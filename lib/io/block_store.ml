type addr = int

let null = 0

module Pool = struct
  type entry = { evict : unit -> unit }

  type t = { lru : entry Lru.t; mutable next_addr : int }

  let create ~capacity = { lru = Lru.create ~capacity; next_addr = 1 }

  let capacity t = Lru.capacity t.lru
  let resident t = Lru.length t.lru

  let touch t a = ignore (Lru.find t.lru a)

  let insert t a entry =
    Lru.put t.lru a entry ~on_evict:(fun _ e -> e.evict ())

  let forget t a = ignore (Lru.remove t.lru a)

  let hits t = Lru.hits t.lru
  let misses t = Lru.misses t.lru
  let note_miss t = Lru.note_miss t.lru
  let reset_stats t = Lru.reset_stats t.lru
end

module Make (P : sig
  type t
end) =
struct
  type frame = { mutable payload : P.t; mutable dirty : bool }

  type t = {
    name : string;
    uid : int; (* distinguishes stores inside a shared read context *)
    pool : Pool.t;
    io : Io_stats.t;
    disk : (addr, P.t) Hashtbl.t; (* contents of non-resident blocks *)
    cache : (addr, frame) Hashtbl.t; (* resident blocks of this store *)
    live : (addr, unit) Hashtbl.t;
  }

  let create ?(name = "store") ~pool ~stats () =
    {
      name;
      uid = Read_context.fresh_uid ();
      pool;
      io = stats;
      disk = Hashtbl.create 1024;
      cache = Hashtbl.create 64;
      live = Hashtbl.create 1024;
    }

  (* Mutators refuse to run under a read context: queries that sneak in
     an alloc/write/free are a purity bug, and this is where it trips. *)
  let guard_writer t op =
    if Read_context.active () <> None then
      invalid_arg
        (Printf.sprintf "Block_store(%s): %s under a read context (queries must not mutate)"
           t.name op)

  let evict t a =
    match Hashtbl.find_opt t.cache a with
    | None -> ()
    | Some frame ->
        Hashtbl.remove t.cache a;
        if frame.dirty then Io_stats.record_write t.io;
        Hashtbl.replace t.disk a frame.payload

  let make_resident t a frame =
    Hashtbl.replace t.cache a frame;
    Pool.insert t.pool a { Pool.evict = (fun () -> evict t a) }

  let alloc t payload =
    guard_writer t "alloc";
    let a = t.pool.Pool.next_addr in
    t.pool.Pool.next_addr <- a + 1;
    Io_stats.record_alloc t.io;
    Hashtbl.replace t.live a ();
    make_resident t a { payload; dirty = true };
    a

  let fail_unknown t a =
    invalid_arg (Printf.sprintf "Block_store(%s): unknown or freed address %d" t.name a)

  (* Read under an installed context: the shared pool, shared stats and
     this store's tables are consulted read-only and never modified, so
     any number of domains may run this concurrently (writers excluded
     by the reader/writer contract). A block resident in the shared pool
     is free, exactly as in the serial model; a disk block charges one
     read to the *reader's* stats and lands in the reader's own LRU
     shard, so each reader pays its own cold misses. *)
  let read_via t ctx a =
    match Read_context.find ctx ~uid:t.uid ~addr:a with
    | Some payload -> (Obj.obj payload : P.t)
    | None -> (
        match Hashtbl.find_opt t.cache a with
        | Some frame ->
            (* free (no disk read), but warm the reader's shard so the
               next access is a local hit rather than a recounted miss *)
            Read_context.add ctx ~uid:t.uid ~addr:a (Obj.repr frame.payload);
            frame.payload
        | None -> (
            match Hashtbl.find_opt t.disk a with
            | Some payload ->
                Io_stats.record_read (Read_context.stats ctx);
                Read_context.add ctx ~uid:t.uid ~addr:a (Obj.repr payload);
                payload
            | None -> fail_unknown t a))

  let read t a =
    (* block-fetch granularity for cooperative cancellation: an
       expired request stops here instead of scanning to completion *)
    Cancel.poll ();
    match Read_context.active () with
    | Some ctx -> read_via t ctx a
    | None -> (
        match Hashtbl.find_opt t.cache a with
        | Some frame ->
            Pool.touch t.pool a;
            frame.payload
        | None -> (
            match Hashtbl.find_opt t.disk a with
            | Some payload ->
                Pool.note_miss t.pool;
                Io_stats.record_read t.io;
                Hashtbl.remove t.disk a;
                make_resident t a { payload; dirty = false };
                payload
            | None -> fail_unknown t a))

  let write t a payload =
    guard_writer t "write";
    if not (Hashtbl.mem t.live a) then fail_unknown t a;
    match Hashtbl.find_opt t.cache a with
    | Some frame ->
        frame.payload <- payload;
        frame.dirty <- true;
        Pool.touch t.pool a
    | None ->
        (* Full-block overwrite: the old contents are not needed, so no
           read is charged; the write is charged at eviction/flush. *)
        Hashtbl.remove t.disk a;
        make_resident t a { payload; dirty = true }

  let free t a =
    guard_writer t "free";
    if not (Hashtbl.mem t.live a) then fail_unknown t a;
    Hashtbl.remove t.live a;
    Hashtbl.remove t.disk a;
    if Hashtbl.mem t.cache a then begin
      Hashtbl.remove t.cache a;
      Pool.forget t.pool a
    end

  let flush t =
    guard_writer t "flush";
    Hashtbl.iter
      (fun _ frame ->
        if frame.dirty then begin
          Io_stats.record_write t.io;
          frame.dirty <- false
        end)
      t.cache

  let block_count t = Hashtbl.length t.live

  let stats t = t.io
end
