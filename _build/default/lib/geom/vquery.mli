(** Generalized vertical query segments.

    The paper's query is a *generalized segment* with a fixed angular
    coefficient — after the coordinate change of {!Transform} this is
    always a vertical line, ray, or segment. A query is the abscissa [x]
    together with a closed ordinate range [\[ylo, yhi\]]; rays and lines
    use infinite bounds, so all three query kinds share one
    representation and one evaluation path. *)

type t = private { x : float; ylo : float; yhi : float }

val segment : x:float -> ylo:float -> yhi:float -> t
(** Raises [Invalid_argument] if [ylo > yhi] or a bound is NaN. *)

val ray_up : x:float -> ylo:float -> t
(** [{x} × [ylo, +∞)]. *)

val ray_down : x:float -> yhi:float -> t
(** [{x} × (-∞, yhi]]. *)

val line : x:float -> t
(** The full vertical line: a stabbing query. *)

val is_line : t -> bool

val matches : t -> Segment.t -> bool
(** Closed-intersection test between the query and a segment; this is
    the oracle every index is tested against. Touching counts as
    intersecting, consistently with NCT semantics. *)

val pp : Format.formatter -> t -> unit
