lib/geom/vquery.mli: Format Segment
