(* Observability layer: histogram math, registry merging, the trace
   ring, the exporters, and the contract that matters most — turning
   tracing on never changes any query answer. *)

open Segdb_obs
module Io_stats = Segdb_io.Io_stats
module Lru = Segdb_io.Lru
module W = Segdb_workload.Workload
module Rng = Segdb_util.Rng
module Vs = Segdb_core.Vs_index
module Db = Segdb_core.Segdb

let qtest = QCheck_alcotest.to_alcotest

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A tiny JSON well-formedness check: every brace/bracket balances and
   strings close. Not a full parser, but catches the classic exporter
   bugs (trailing commas are caught by CI's python -m json.tool; here
   we guard structure). *)
let json_balanced s =
  let depth = ref 0 and ok = ref true and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

(* ---------------- histograms ---------------- *)

let test_bucket_boundaries () =
  (* bucket 0 holds v <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1] *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket of %d" v) b (Histogram.bucket_of v))
    [
      (min_int, 0);
      (-1, 0);
      (0, 0);
      (1, 1);
      (2, 2);
      (3, 2);
      (4, 3);
      (7, 3);
      (8, 4);
      (1023, 10);
      (1024, 11);
    ];
  for b = 1 to 20 do
    let lo, hi = Histogram.bucket_bounds b in
    Alcotest.(check int) "lo lands in b" b (Histogram.bucket_of lo);
    Alcotest.(check int) "hi lands in b" b (Histogram.bucket_of hi);
    Alcotest.(check bool) "hi+1 leaves b" true (Histogram.bucket_of (hi + 1) = b + 1)
  done

let test_percentiles_exact () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Histogram.percentile h 0.5);
  Histogram.record h 7;
  (* a single sample is every percentile *)
  Alcotest.(check (float 0.0)) "single p1" 7.0 (Histogram.percentile h 0.01);
  Alcotest.(check (float 0.0)) "single p99" 7.0 (Histogram.percentile h 0.99);
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.record h v
  done;
  (* percentiles are interpolated inside dyadic buckets, so allow the
     bucket's resolution, but the clamp to observed min/max is exact *)
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 in [32,64]" true (p50 >= 32.0 && p50 <= 64.0);
  let p99 = Histogram.percentile h 0.99 in
  Alcotest.(check bool) "p99 in [64,100]" true (p99 >= 64.0 && p99 <= 100.0);
  Alcotest.(check (float 0.0)) "p100 = max" 100.0 (Histogram.percentile h 1.0);
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check int) "sum" 5050 (Histogram.sum h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 100 (Histogram.max_value h)

let prop_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative and commutative" ~count:200
    QCheck.(triple (small_list small_signed_int) (small_list small_signed_int) (small_list small_signed_int))
    (fun (xs, ys, zs) ->
      let of_list l =
        let h = Histogram.create () in
        List.iter (Histogram.record h) l;
        h
      in
      let merged lists =
        let acc = Histogram.create () in
        List.iter (fun l -> Histogram.merge_into ~into:acc (of_list l)) lists;
        acc
      in
      (* (x + y) + z = x + (y + z) = z + y + x = one histogram of all *)
      let a =
        let xy = merged [ xs; ys ] in
        Histogram.merge_into ~into:xy (of_list zs);
        xy
      in
      let b =
        let yz = merged [ ys; zs ] in
        let acc = of_list xs in
        Histogram.merge_into ~into:acc yz;
        acc
      in
      let c = merged [ zs; ys; xs ] in
      let d = of_list (xs @ ys @ zs) in
      Histogram.equal a b && Histogram.equal b c && Histogram.equal c d)

let test_merge_across_domains () =
  (* each domain records into a private histogram; the merged view
     equals one histogram fed everything *)
  let parts =
    Array.init 4 (fun k ->
        Domain.spawn (fun () ->
            let h = Histogram.create () in
            for v = 1 to 1000 do
              Histogram.record h ((v * (k + 1)) land 4095)
            done;
            h))
    |> Array.map Domain.join
  in
  let merged = Histogram.create () in
  Array.iter (fun h -> Histogram.merge_into ~into:merged h) parts;
  let expect = Histogram.create () in
  for k = 0 to 3 do
    for v = 1 to 1000 do
      Histogram.record expect ((v * (k + 1)) land 4095)
    done
  done;
  Alcotest.(check bool) "merged = serial" true (Histogram.equal merged expect)

let test_percentile_edges () =
  (* empty: every percentile is 0, and p outside [0,1] is rejected *)
  let h = Histogram.create () in
  List.iter
    (fun p -> Alcotest.(check (float 0.0)) "empty" 0.0 (Histogram.percentile h p))
    [ 0.0; 0.5; 1.0 ];
  List.iter
    (fun p ->
      match Histogram.percentile h p with
      | _ -> Alcotest.failf "p=%f accepted" p
      | exception Invalid_argument _ -> ())
    [ -0.1; 1.5 ];
  (* a single observation answers every percentile exactly, including
     one sitting precisely on a bucket's lower bound *)
  Histogram.record h 1024;
  List.iter
    (fun p -> Alcotest.(check (float 0.0)) "single" 1024.0 (Histogram.percentile h p))
    [ 0.0; 0.25; 0.99; 1.0 ];
  (* p0 clamps to the observed min even though the estimate
     interpolates inside dyadic buckets *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 3; 50; 700; 9001 ];
  Alcotest.(check (float 0.0)) "p0 = min" 3.0 (Histogram.percentile h 0.0);
  Alcotest.(check bool) "p100 <= max" true (Histogram.percentile h 1.0 <= 9001.0);
  (* values pinned to a bucket bound: when every sample is the same
     bound, the min/max clamp makes every percentile exact *)
  List.iter
    (fun b ->
      let lo, hi = Histogram.bucket_bounds b in
      List.iter
        (fun v ->
          let h = Histogram.create () in
          for _ = 1 to 5 do
            Histogram.record h v
          done;
          List.iter
            (fun p ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "pinned %d p%g" v p)
                (float_of_int v) (Histogram.percentile h p))
            [ 0.0; 0.5; 1.0 ])
        [ lo; hi ])
    [ 1; 4; 11 ];
  (* a mixed bucket stays inside its bounds *)
  let h = Histogram.create () in
  let lo, hi = Histogram.bucket_bounds 4 in
  List.iter (Histogram.record h) [ lo; lo; lo; hi ];
  let p50 = Histogram.percentile h 0.5 in
  Alcotest.(check bool) "p50 within bucket" true
    (p50 >= float_of_int lo && p50 <= float_of_int hi);
  Alcotest.(check (float 0.0)) "p0 pinned lo" (float_of_int lo) (Histogram.percentile h 0.0);
  let p100 = Histogram.percentile h 1.0 in
  Alcotest.(check bool) "p100 within bucket, above p50" true
    (p100 >= p50 && p100 <= float_of_int hi)

(* ---------------- metrics registry ---------------- *)

let test_registry_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.value c);
  Alcotest.(check bool) "same handle" true (Metrics.counter r "a.count" == c);
  Metrics.set_gauge (Metrics.gauge r "depth") 3;
  Metrics.observe r "lat" 10;
  Metrics.observe r "lat" 20;
  let other = Metrics.create () in
  Metrics.add (Metrics.counter other "a.count") 2;
  Metrics.observe other "lat" 30;
  Metrics.merge_into ~into:r other;
  Alcotest.(check int) "merged counter" 7 (Metrics.value c);
  (match Metrics.histogram r "lat" with
  | Some h -> Alcotest.(check int) "merged histogram" 3 (Histogram.count h)
  | None -> Alcotest.fail "lat histogram missing");
  Alcotest.(check (list (pair string int))) "sorted counters" [ ("a.count", 7) ] (Metrics.counters r);
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes via old handle" 0 (Metrics.value c)

let test_atomic_io_stats () =
  (* satellite 1: concurrent recorders lose no increments *)
  let s = Io_stats.create () in
  let per = 25_000 in
  Array.init 4 (fun _ ->
      Domain.spawn (fun () ->
          for _ = 1 to per do
            Io_stats.record_read s;
            Io_stats.record_write s;
            Io_stats.record_alloc s
          done))
  |> Array.iter Domain.join;
  Alcotest.(check int) "reads" (4 * per) (Io_stats.reads s);
  Alcotest.(check int) "writes" (4 * per) (Io_stats.writes s);
  Alcotest.(check int) "allocs" (4 * per) (Io_stats.allocs s);
  let snap = Io_stats.snapshot s in
  Alcotest.(check int) "snapshot total" (8 * per) (Io_stats.snapshot_total snap)

(* ---------------- trace ring ---------------- *)

let with_tracing f =
  Trace.clear ();
  Metrics.reset Metrics.default;
  Fun.protect ~finally:(fun () -> Control.disable ()) (fun () ->
      Control.enable ();
      f ())

let test_ring_wraparound () =
  with_tracing @@ fun () ->
  Trace.set_capacity 8;
  Fun.protect ~finally:(fun () -> Trace.set_capacity 4096) @@ fun () ->
  for i = 0 to 19 do
    Trace.with_span (Printf.sprintf "p%d" i) (fun () -> ())
  done;
  let evs = Trace.events () in
  Alcotest.(check int) "capacity survivors" 8 (List.length evs);
  (* the survivors are the 8 newest, oldest first, seq monotone *)
  List.iteri
    (fun i (ev : Trace.event) ->
      Alcotest.(check int) "seq" (12 + i) ev.seq;
      Alcotest.(check string) "phase" (Printf.sprintf "p%d" (12 + i)) ev.phase)
    evs

let test_span_nesting_and_histograms () =
  with_tracing @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner" (fun () -> ()));
  let evs = Trace.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let depth_of phase =
    (List.find (fun (e : Trace.event) -> e.phase = phase) evs).depth
  in
  Alcotest.(check int) "outer depth" 0 (depth_of "outer");
  Alcotest.(check int) "inner depth" 1 (depth_of "inner");
  (match Metrics.histogram Metrics.default (Trace.span_histogram "inner") with
  | Some h -> Alcotest.(check int) "inner samples" 2 (Histogram.count h)
  | None -> Alcotest.fail "span histogram missing");
  (* disabled means inert: no new events *)
  Control.disable ();
  Trace.with_span "ghost" (fun () -> ());
  Alcotest.(check int) "still three" 3 (List.length (Trace.events ()))

let test_per_domain_rings () =
  with_tracing @@ fun () ->
  (* writers on distinct domains record concurrently into private
     rings; the merged view loses nothing and keeps global seq order *)
  Array.init 3 (fun k ->
      Domain.spawn (fun () ->
          for i = 0 to 49 do
            Trace.with_span (Printf.sprintf "d%d.%d" k i) (fun () -> ())
          done))
  |> Array.iter Domain.join;
  Trace.with_span "local" (fun () -> ());
  let evs = Trace.events () in
  Alcotest.(check int) "all events retained" 151 (List.length evs);
  let seqs = List.map (fun (e : Trace.event) -> e.seq) evs in
  Alcotest.(check int) "seqs globally unique" 151
    (List.length (List.sort_uniq compare seqs));
  Alcotest.(check bool) "merged view sorted by seq" true
    (seqs = List.sort compare seqs);
  let doms = List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.dom) evs) in
  Alcotest.(check bool) "events tagged with >= 2 domains" true (List.length doms >= 2)

let test_request_ids () =
  let a = Trace.fresh_request_id () and b = Trace.fresh_request_id () in
  Alcotest.(check bool) "fresh ids nonzero" true (a <> 0 && b <> 0);
  Alcotest.(check bool) "fresh ids distinct" true (a <> b);
  with_tracing @@ fun () ->
  Alcotest.(check int) "no ambient id" 0 (Trace.current_request_id ());
  Trace.with_request_id a (fun () ->
      Alcotest.(check int) "ambient id set" a (Trace.current_request_id ());
      Trace.with_span "tagged" (fun () -> ());
      Trace.with_request_id b (fun () -> Trace.with_span "nested" (fun () -> ()));
      Alcotest.(check int) "inner scope restored" a (Trace.current_request_id ()));
  Alcotest.(check int) "outer scope restored" 0 (Trace.current_request_id ());
  Trace.with_span "untagged" (fun () -> ());
  Trace.record ~request_id:b ~blocks:3 ~t0_ns:1 ~dur_ns:2 "injected";
  let find p = List.find (fun (e : Trace.event) -> e.phase = p) (Trace.events ()) in
  Alcotest.(check int) "span carries ambient id" a (find "tagged").request_id;
  Alcotest.(check int) "nested override wins" b (find "nested").request_id;
  Alcotest.(check int) "outside scope is 0" 0 (find "untagged").request_id;
  let inj = find "injected" in
  Alcotest.(check int) "record carries explicit id" b inj.request_id;
  Alcotest.(check int) "record keeps interval" 2 inj.dur_ns;
  Alcotest.(check int) "record keeps blocks" 3 inj.blocks

(* ---------------- trace-event JSON export ---------------- *)

let count_occurrences needle s =
  let nn = String.length needle in
  let rec go i acc =
    if i + nn > String.length s then acc
    else if String.sub s i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let test_trace_json_wellformed () =
  with_tracing @@ fun () ->
  let rid = Trace.fresh_request_id () in
  Trace.with_request_id rid (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "in\"ner" (fun () -> ())));
  Trace.record ~request_id:rid ~blocks:2 ~t0_ns:0 ~dur_ns:5000 "pinned";
  let evs = Trace.events () in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let js = Export.trace_json evs in
  Alcotest.(check bool) "balanced json" true (json_balanced js);
  Alcotest.(check bool) "phase names escaped" true (contains js "in\\\"ner");
  (* every event is a complete X event: all mandatory keys, once each *)
  Alcotest.(check int) "one X per event" 3 (count_occurrences "\"ph\": \"X\"" js);
  List.iter
    (fun key -> Alcotest.(check int) key 3 (count_occurrences key js))
    [ "\"name\": "; "\"ts\": "; "\"dur\": "; "\"pid\": "; "\"tid\": "; "\"args\": " ];
  Alcotest.(check int) "all events under one request id" 3
    (count_occurrences (Printf.sprintf "\"pid\": %d" rid) js);
  (* timestamps come out sorted ascending (one pass for viewers) *)
  let find_from needle from =
    let nn = String.length needle in
    let rec go i =
      if i + nn > String.length js then None
      else if String.sub js i nn = needle then Some i
      else go (i + 1)
    in
    go from
  in
  let ts_values =
    let marker = "\"ts\": " in
    let rec collect i acc =
      match find_from marker i with
      | None -> List.rev acc
      | Some j ->
          let start = j + String.length marker in
          let stop = String.index_from js start ',' in
          collect stop (float_of_string (String.sub js start (stop - start)) :: acc)
    in
    collect 0 []
  in
  Alcotest.(check int) "ts per event" 3 (List.length ts_values);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "ts monotone" true (monotone ts_values);
  (* the injected t0=0 event sorts first *)
  Alcotest.(check (float 0.0)) "pinned event first" 0.0 (List.hd ts_values)

(* ---------------- structured log ---------------- *)

let test_log_levels_and_ring () =
  Log.set_stderr false;
  Fun.protect
    ~finally:(fun () ->
      Log.set_stderr true;
      Log.set_level None;
      Log.set_ring 0)
  @@ fun () ->
  Log.set_level None;
  Log.set_ring 4;
  Alcotest.(check bool) "off: nothing would log" false (Log.would_log Log.Error);
  let forced = ref false in
  Log.error ~comp:"t" "dropped" (fun () ->
      forced := true;
      []);
  Alcotest.(check bool) "off: fields never forced" false !forced;
  Alcotest.(check int) "off: ring untouched" 0 (List.length (Log.ring_events ()));
  Log.set_level (Some Log.Warn);
  Alcotest.(check bool) "warn clears threshold" true (Log.would_log Log.Warn);
  Alcotest.(check bool) "info below threshold" false (Log.would_log Log.Info);
  Log.info ~comp:"t" "below" (fun () -> [ Log.s "k" "v" ]);
  Log.warn ~comp:"t" "kept" (fun () -> [ Log.s "peer" "unix:/x y"; Log.i "n" 3 ]);
  Log.error ~comp:"t" "also kept" (fun () -> [ Log.b "flag" true; Log.f "ms" 1.5 ]);
  (match Log.ring_events () with
  | [ w; e ] ->
      Alcotest.(check string) "ring keeps msg" "kept" w.Log.msg;
      Alcotest.(check string) "ring keeps comp" "t" w.Log.comp;
      Alcotest.(check bool) "ring keeps ts" true (w.Log.ts_ns > 0);
      let wl = Log.render w in
      Alcotest.(check bool) "renders level" true (contains wl "level=warn");
      Alcotest.(check bool) "quotes values with spaces" true
        (contains wl "peer=\"unix:/x y\"");
      Alcotest.(check bool) "renders ints bare" true (contains wl "n=3");
      Alcotest.(check bool) "quotes the message" true (contains wl "msg=\"kept\"");
      let el = Log.render e in
      Alcotest.(check bool) "renders bools" true (contains el "flag=true");
      Alcotest.(check bool) "renders floats" true (contains el "ms=1.5")
  | l -> Alcotest.failf "expected 2 ring events, got %d" (List.length l));
  (* the ring keeps only the newest n, oldest first *)
  Log.set_level (Some Log.Debug);
  for k = 1 to 10 do
    Log.debug ~comp:"t" (string_of_int k) (fun () -> [])
  done;
  let evs = Log.ring_events () in
  Alcotest.(check int) "ring bounded" 4 (List.length evs);
  Alcotest.(check (list string)) "newest four, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun (e : Log.event) -> e.msg) evs)

let test_log_render_escaping () =
  let ev =
    {
      Log.ts_ns = 42;
      lvl = Log.Error;
      dom = 1;
      comp = "wal";
      msg = "torn \"tail\"\ntruncated";
      fields = [ Log.s "path" "/tmp/a=b"; Log.s "plain" "ok" ];
    }
  in
  let line = Log.render ev in
  Alcotest.(check bool) "escapes quotes in msg" true (contains line "\\\"tail\\\"");
  Alcotest.(check bool) "escapes newline in msg" true (contains line "\\n");
  Alcotest.(check bool) "no raw newline in output" false (String.contains line '\n');
  Alcotest.(check bool) "quotes values with =" true (contains line "path=\"/tmp/a=b\"");
  Alcotest.(check bool) "bare values stay bare" true (contains line "plain=ok")

(* ---------------- slow-query log ---------------- *)

let mk_entry ?(request_id = 0xbeef) ?(wall_ns = 7_000_000) query =
  {
    Slowlog.request_id;
    query;
    queries = 1;
    outcome = "ok";
    wall_ns;
    queue_wait_ns = 1_000_000;
    blocks = 4;
    cache_hits = 2;
    cache_misses = 1;
    at_ns = 99;
  }

let test_slowlog_threshold_and_ring () =
  Fun.protect
    ~finally:(fun () ->
      Slowlog.set_threshold_ms (-1);
      Slowlog.set_capacity 128)
  @@ fun () ->
  Slowlog.set_threshold_ms (-1);
  Slowlog.clear ();
  Alcotest.(check bool) "disabled by default" false (Slowlog.enabled ());
  Alcotest.(check int) "threshold readback disabled" (-1) (Slowlog.threshold_ms ());
  let forced = ref false in
  Slowlog.note ~wall_ns:max_int (fun () ->
      forced := true;
      mk_entry "never");
  Alcotest.(check bool) "disabled: entry never built" false !forced;
  Slowlog.set_threshold_ms 5;
  Alcotest.(check bool) "armed" true (Slowlog.enabled ());
  Alcotest.(check int) "threshold readback" 5 (Slowlog.threshold_ms ());
  Slowlog.note ~wall_ns:4_999_999 (fun () ->
      forced := true;
      mk_entry "fast");
  Alcotest.(check bool) "below threshold skipped" false !forced;
  Slowlog.note ~wall_ns:5_000_000 (fun () -> mk_entry "q1");
  Slowlog.note ~wall_ns:12_000_000 (fun () -> mk_entry "q2");
  (match Slowlog.entries () with
  | [ a; b ] ->
      Alcotest.(check string) "oldest first" "q1" a.Slowlog.query;
      Alcotest.(check string) "newest last" "q2" b.Slowlog.query
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  (* threshold 0 records everything; the ring stays bounded *)
  Slowlog.set_threshold_ms 0;
  Slowlog.set_capacity 2;
  for k = 1 to 5 do
    Slowlog.note ~wall_ns:0 (fun () -> mk_entry (Printf.sprintf "w%d" k))
  done;
  Alcotest.(check (list string)) "ring keeps newest two" [ "w4"; "w5" ]
    (List.map (fun (e : Slowlog.entry) -> e.query) (Slowlog.entries ()))

let test_slowlog_rendering () =
  let es = [ mk_entry ~request_id:0xabc "VS(x=1, y in [2, 3])"; mk_entry "q\"2" ] in
  let txt = Slowlog.to_text es in
  Alcotest.(check bool) "text has hex request id" true (contains txt "abc");
  Alcotest.(check bool) "text has query" true (contains txt "VS(x=1, y in [2, 3])");
  Alcotest.(check bool) "empty text placeholder" true
    (contains (Slowlog.to_text []) "empty");
  let js = Slowlog.to_json es in
  Alcotest.(check bool) "json balanced" true (json_balanced js);
  Alcotest.(check bool) "json escapes queries" true (contains js "q\\\"2");
  Alcotest.(check bool) "json carries wait split" true
    (contains js "\"queue_wait_ns\": 1000000");
  Alcotest.(check bool) "empty json is an empty array" true
    (json_balanced (Slowlog.to_json []))

(* ---------------- LRU / reader cache stats ---------------- *)

let test_lru_hit_miss () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check bool) "miss on empty" true (Lru.find l 1 = None);
  Lru.put l 1 "a" ~on_evict:(fun _ _ -> ());
  ignore (Lru.find l 1);
  ignore (Lru.peek l 2);
  (* peek never counts *)
  Lru.note_miss l;
  Alcotest.(check int) "hits" 1 (Lru.hits l);
  Alcotest.(check int) "misses" 2 (Lru.misses l);
  Lru.reset_stats l;
  Alcotest.(check int) "reset hits" 0 (Lru.hits l);
  Alcotest.(check int) "reset misses" 0 (Lru.misses l)

let test_reader_cache_stats () =
  let n = 60 in
  let segs = W.roads (Rng.create 5) ~n ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 ~pool_blocks:4 segs in
  let r = Db.reader ~cache_blocks:64 db in
  let q = Segdb_geom.Vquery.line ~x:50.0 in
  ignore (Db.query_ids_r db r q);
  let h1 = Segdb_io.Read_context.cache_hits r in
  let m1 = Segdb_io.Read_context.cache_misses r in
  Alcotest.(check bool) "cold run misses" true (m1 > 0);
  ignore (Db.query_ids_r db r q);
  Alcotest.(check bool) "warm run hits" true (Segdb_io.Read_context.cache_hits r > h1);
  Alcotest.(check int) "warm run adds no misses" m1 (Segdb_io.Read_context.cache_misses r)

(* ---------------- parallel worker stats ---------------- *)

let test_parallel_query_stats () =
  let n = 200 in
  let segs = W.roads (Rng.create 7) ~n ~span:100.0 in
  let db = Db.create ~backend:`Solution2 ~block:8 ~pool_blocks:8 segs in
  let rng = Rng.create 8 in
  let qs = Array.init 40 (fun _ -> Segdb_geom.Vquery.line ~x:(Rng.float rng 100.0)) in
  let expect = Array.map (fun q -> Db.query_ids db q) qs in
  let out, stats = Db.parallel_query_stats db qs ~domains:3 in
  Alcotest.(check bool) "answers match serial" true (out = expect);
  Alcotest.(check int) "one row per worker" 3 (Array.length stats);
  let total = Array.fold_left (fun acc (w : Db.worker_stats) -> acc + w.queries) 0 stats in
  Alcotest.(check int) "workers served the whole batch" (Array.length qs) total;
  Array.iteri
    (fun k (w : Db.worker_stats) ->
      Alcotest.(check int) "worker id" k w.worker;
      Alcotest.(check bool) "counters non-negative" true
        (w.reads >= 0 && w.cache_hits >= 0 && w.cache_misses >= 0))
    stats;
  (* with obs on, worker latencies land in the default registry *)
  with_tracing (fun () ->
      let _ = Db.parallel_query_stats db qs ~domains:2 in
      match Metrics.histogram Metrics.default "parallel.query.ns" with
      | Some h -> Alcotest.(check int) "latency samples" (Array.length qs) (Histogram.count h)
      | None -> Alcotest.fail "parallel.query.ns missing")

(* ---------------- tracing never changes answers ---------------- *)

let backends : (string * Db.backend) list =
  [
    ("naive", `Naive);
    ("rtree", `Rtree);
    ("solution1", `Solution1);
    ("solution2", `Solution2);
  ]

let random_query rng =
  let x = Rng.float rng 120.0 -. 10.0 in
  match Rng.int rng 4 with
  | 0 -> Segdb_geom.Vquery.line ~x
  | 1 -> Segdb_geom.Vquery.ray_up ~x ~ylo:(Rng.float rng 100.0)
  | 2 -> Segdb_geom.Vquery.ray_down ~x ~yhi:(Rng.float rng 100.0)
  | _ ->
      let y = Rng.float rng 100.0 in
      Segdb_geom.Vquery.segment ~x ~ylo:y ~yhi:(y +. Rng.float rng 40.0)

let prop_tracing_is_transparent =
  QCheck.Test.make ~name:"enabling tracing never changes query results" ~count:25
    QCheck.(pair (int_bound 100_000) (int_bound 100))
    (fun (seed, n) ->
      let segs = W.roads (Rng.create seed) ~n ~span:100.0 in
      let rng = Rng.create (seed + 1) in
      let qs = Array.init 12 (fun _ -> random_query rng) in
      List.for_all
        (fun (_, backend) ->
          let db = Db.create ~backend ~block:8 ~pool_blocks:8 segs in
          let plain = Array.map (fun q -> Db.query_ids db q) qs in
          let traced =
            with_tracing (fun () -> Array.map (fun q -> Db.query_ids db q) qs)
          in
          plain = traced)
        backends)

(* ---------------- exporters ---------------- *)

let exporter_registry () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "io.reads") 42;
  Metrics.set_gauge (Metrics.gauge r "pool.resident") 7;
  List.iter (Metrics.observe r "span.pst.report.ns") [ 100; 2000; 2500; 90000 ];
  List.iter (Metrics.observe r "span.pst.report.blocks") [ 0; 1; 1; 3 ];
  r

let test_exporters () =
  let r = exporter_registry () in
  let txt = Export.text r in
  Alcotest.(check bool) "text mentions counter" true
    (contains txt "io.reads");
  let js = Export.json r in
  Alcotest.(check bool) "json balanced" true (json_balanced js);
  Alcotest.(check bool) "json has histogram stats" true
    (contains js "\"p99\"");
  let prom = Export.prometheus r in
  (* every non-comment line is "name[{le=...}] number"; cumulative
     buckets end with the +Inf bucket equal to _count *)
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.fail ("prometheus line without value: " ^ line)
           | Some i -> (
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               match float_of_string_opt v with
               | Some _ -> ()
               | None -> Alcotest.fail ("prometheus value not numeric: " ^ line)));
  Alcotest.(check bool) "prometheus prefixes names" true
    (contains prom "segdb_io_reads 42");
  Alcotest.(check bool) "prometheus cumulative +Inf" true
    (contains prom "segdb_span_pst_report_ns_bucket{le=\"+Inf\"} 4");
  let summary = Export.phase_summary r in
  Alcotest.(check bool) "phase summary extracts phase" true
    (contains summary "pst.report")

let test_prometheus_label_escaping () =
  let r = exporter_registry () in
  let nasty = "unix:/tmp/a \"b\"\\c\nd" in
  let prom = Export.prometheus ~labels:[ ("addr", nasty); ("host-name", "h1") ] r in
  (* the raw value (with its quote and newline) must never reach the
     output; the escaped form must, with backslash, double quote and
     newline all encoded per the exposition format *)
  Alcotest.(check bool) "raw value absent" false (contains prom nasty);
  Alcotest.(check bool) "escaped value present" true
    (contains prom "addr=\"unix:/tmp/a \\\"b\\\"\\\\c\\nd\"");
  Alcotest.(check bool) "label names sanitized" true (contains prom "host_name=\"h1\"");
  (* the histogram's le label composes with the shared labels *)
  Alcotest.(check bool) "le composes with labels" true
    (contains prom "host_name=\"h1\",le=\"+Inf\"}");
  (* every non-comment line still ends in exactly one numeric value:
     an unescaped newline would have split a sample across lines *)
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then
           match String.rindex_opt line ' ' with
           | None -> Alcotest.fail ("prometheus line without value: " ^ line)
           | Some i ->
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               if float_of_string_opt v = None then
                 Alcotest.fail ("prometheus value not numeric: " ^ line))

(* ---------------- sampler ---------------- *)

let sec = 1_000_000_000

(* deterministic ticks via ~now_ns: a 1s interval with a +50 counter
   move is a 50/s rate, and a counter that moves backwards (registry
   reset = process restart) clamps to zero instead of going negative *)
let test_sampler_rates_and_reset () =
  Sampler.set_capacity 120;
  let c = Metrics.counter Metrics.default "t.sampler.reqs" in
  Sampler.tick ~now_ns:(1 * sec) ();
  Metrics.add c 50;
  Sampler.tick ~now_ns:(2 * sec) ();
  let r = List.assoc "t.sampler.reqs" (Sampler.rates ()) in
  Alcotest.(check (float 0.01)) "50/s over 1s" 50.0 r;
  Alcotest.(check int) "rate republished as gauge" 50
    (List.assoc "rate.t.sampler.reqs.per_s" (Metrics.gauges Metrics.default));
  Metrics.reset Metrics.default;
  Metrics.add c 5;
  Sampler.tick ~now_ns:(3 * sec) ();
  let r = List.assoc "t.sampler.reqs" (Sampler.rates ()) in
  Alcotest.(check (float 0.0001)) "reset clamps the rate to 0" 0.0 r

let test_sampler_window_p99 () =
  Sampler.set_watched [ "t.sampler.lat" ];
  Sampler.tick ~now_ns:(10 * sec) ();
  for _ = 1 to 100 do
    Metrics.observe Metrics.default "t.sampler.lat" 1000
  done;
  Sampler.tick ~now_ns:(11 * sec) ();
  (match Sampler.window_p99 "t.sampler.lat" with
  | None -> Alcotest.fail "expected a windowed p99"
  | Some p ->
      (* every sample was 1000, so the p99 lands inside 1000's dyadic
         bucket *)
      Alcotest.(check bool) "p99 inside the sample's bucket" true (p >= 256. && p <= 2048.));
  Alcotest.(check bool) "window gauge published" true
    (List.mem_assoc "window.t.sampler.lat.p99" (Metrics.gauges Metrics.default));
  Sampler.set_watched [ "exec.request.ns"; "net.request.ns" ]

let test_sampler_ring_bounded () =
  Sampler.set_capacity 5;
  for i = 20 to 40 do
    Sampler.tick ~now_ns:(i * sec) ()
  done;
  let ss = Sampler.samples () in
  Alcotest.(check int) "capacity enforced" 5 (List.length ss);
  (match ss with
  | first :: _ -> Alcotest.(check int) "oldest survivor is t=36s" (36 * sec) first.Sampler.at_ns
  | [] -> Alcotest.fail "empty ring");
  Alcotest.(check int) "newest is t=40s" (40 * sec) (List.nth ss 4).Sampler.at_ns;
  (* shrinking a live ring trims immediately *)
  Sampler.set_capacity 2;
  Alcotest.(check int) "shrink trims" 2 (List.length (Sampler.samples ()));
  Sampler.set_capacity 120

let test_sampler_start_stop () =
  Sampler.start ~interval_ms:5 ();
  Alcotest.(check bool) "running" true (Sampler.running ());
  Unix.sleepf 0.05;
  Sampler.stop ();
  Alcotest.(check bool) "stopped" false (Sampler.running ());
  Alcotest.(check bool) "background ticks accumulated" true
    (List.length (Sampler.samples ()) > 0);
  Alcotest.(check bool) "runtime gauges published" true
    (List.mem_assoc "runtime.heap_words" (Metrics.gauges Metrics.default));
  Alcotest.(check bool) "varz JSON balanced" true (json_balanced (Sampler.varz_json ()))

(* the off-discipline: a disarmed sampler costs one atomic load and
   zero allocation on the hot path *)
let test_sampler_disarmed_cost () =
  Alcotest.(check bool) "disarmed" false (Sampler.running ());
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Sys.opaque_identity (Sampler.running ()))
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool) "no allocation when disarmed" true (dw < 256.)

let suite =
  ( "obs",
    [
      Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
      Alcotest.test_case "histogram percentiles" `Quick test_percentiles_exact;
      Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
      qtest prop_merge_associative;
      Alcotest.test_case "cross-domain histogram merge" `Quick test_merge_across_domains;
      Alcotest.test_case "metrics registry basics + merge" `Quick test_registry_basics;
      Alcotest.test_case "io_stats increments are atomic" `Quick test_atomic_io_stats;
      Alcotest.test_case "trace ring wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "span nesting feeds histograms" `Quick test_span_nesting_and_histograms;
      Alcotest.test_case "per-domain rings merge losslessly" `Quick test_per_domain_rings;
      Alcotest.test_case "request-id propagation" `Quick test_request_ids;
      Alcotest.test_case "trace-event JSON well-formed" `Quick test_trace_json_wellformed;
      Alcotest.test_case "log levels, ring, logfmt" `Quick test_log_levels_and_ring;
      Alcotest.test_case "log render escaping" `Quick test_log_render_escaping;
      Alcotest.test_case "slowlog threshold + ring" `Quick test_slowlog_threshold_and_ring;
      Alcotest.test_case "slowlog rendering" `Quick test_slowlog_rendering;
      Alcotest.test_case "lru hit/miss counters" `Quick test_lru_hit_miss;
      Alcotest.test_case "reader cache stats" `Quick test_reader_cache_stats;
      Alcotest.test_case "parallel_query_stats" `Quick test_parallel_query_stats;
      qtest prop_tracing_is_transparent;
      Alcotest.test_case "exporters: text/json/prometheus" `Quick test_exporters;
      Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_label_escaping;
      Alcotest.test_case "sampler: rates + reset clamp" `Quick test_sampler_rates_and_reset;
      Alcotest.test_case "sampler: windowed p99" `Quick test_sampler_window_p99;
      Alcotest.test_case "sampler: bounded ring eviction" `Quick test_sampler_ring_bounded;
      Alcotest.test_case "sampler: start/stop lifecycle" `Quick test_sampler_start_stop;
      Alcotest.test_case "sampler: disarmed costs nothing" `Quick test_sampler_disarmed_cost;
    ] )
