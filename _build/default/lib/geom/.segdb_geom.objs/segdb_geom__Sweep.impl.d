lib/geom/sweep.ml: Array Float List Predicates Segdb_wbt Segment
