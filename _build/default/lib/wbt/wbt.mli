(** Weight-balanced binary search trees (the BB[alpha] substitute).

    The paper makes both dynamic first-level structures weight-balanced:
    a BB[alpha] tree in Solution 1 and a weighted-balanced B-tree in
    Solution 2. This module provides the balance discipline as a generic,
    persistent key/value search tree with order statistics; the index
    structures reuse the same balance criterion for their rebuild-based
    rebalancing.

    Balance invariant (Adams-style, [delta = 3]): for every internal
    node, [size l + 1 <= delta * (size r + 1)] and symmetrically. This
    bounds the height by [O(log n)] like BB[alpha] with
    [alpha = 1/(1+delta)]. *)

module Make (K : sig
  type t

  val compare : t -> t -> int
end) : sig
  type key = K.t
  type 'v t

  val empty : 'v t
  val is_empty : 'v t -> bool
  val size : 'v t -> int
  val height : 'v t -> int

  val find : key -> 'v t -> 'v option
  val mem : key -> 'v t -> bool

  val add : key -> 'v -> 'v t -> 'v t
  (** Replaces the binding if the key is present. *)

  val remove : key -> 'v t -> 'v t

  val min_binding : 'v t -> (key * 'v) option
  val max_binding : 'v t -> (key * 'v) option

  val nth : int -> 'v t -> key * 'v
  (** 0-based order statistic. Raises [Invalid_argument] out of range. *)

  val rank : key -> 'v t -> int
  (** Number of keys strictly smaller than [key]. *)

  val split : key -> 'v t -> 'v t * 'v option * 'v t
  (** [(l, data, r)]: keys below, the binding at the key if any, keys
      above. *)

  val iter : (key -> 'v -> unit) -> 'v t -> unit
  val fold : (key -> 'v -> 'a -> 'a) -> 'v t -> 'a -> 'a
  val to_list : 'v t -> (key * 'v) list
  val of_sorted_array : (key * 'v) array -> 'v t
  (** Requires strictly increasing keys; O(n). *)

  val check_invariants : 'v t -> bool
  (** BST order + weight balance; for tests. *)
end
