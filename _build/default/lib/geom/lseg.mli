(** Line-based segments in a canonical frame (Section 2 of the paper).

    A set of segments is *line-based* when every segment has an endpoint
    on a common base line and all segments lie in the same half-plane.
    This module fixes a canonical frame: the base line is the axis
    [u = 0], segments extend into [u >= 0]. A segment is then the pair of
    its base ordinate [base_v] (position of the on-line endpoint along
    the base line) and its far endpoint [(far_u, far_v)].

    Both orientations used by the two-level structures map here:
    - a vertical base line [x = xb] with segments to its left/right
      ([u] = distance from the line, [v] = y);
    - the horizontal base line of the paper's figures
      ([u] = height above the line, [v] = x).

    Queries are segments parallel to the base line: the line [u = uq]
    restricted to [v ∈ [vlo, vhi]].

    The central order fact (used by [Find]/[Report], proved by the
    QCheck suite): among mutually non-crossing line-based segments that
    reach depth [uq], the order of crossing positions [cross_v] at
    [u = uq] equals the order of base positions [base_v]. *)

type t = private { base_v : float; far_u : float; far_v : float; id : int }

val make : ?id:int -> base_v:float -> far_u:float -> far_v:float -> unit -> t
(** Raises [Invalid_argument] if [far_u < 0] or any coordinate is NaN. *)

type query = { uq : float; vlo : float; vhi : float }

val query : uq:float -> vlo:float -> vhi:float -> query
(** Raises [Invalid_argument] if [uq < 0] or [vlo > vhi]. *)

val reaches : t -> float -> bool
(** [reaches s uq]: the segment crosses the line [u = uq]
    (i.e. [far_u >= uq]). *)

val cross_v : t -> float -> float
(** Crossing position along [v] at depth [uq]; requires [reaches s uq].
    At [uq = 0] this is [base_v]. *)

val matches : query -> t -> bool
(** The naive oracle: [reaches] and [cross_v] within the query range. *)

val slope : t -> float
(** Lateral drift per unit of depth: [(far_v - base_v) / far_u]
    (0 when [far_u = 0]). *)

(** Ordering along the base line; ties broken by [id] so sorting is
    deterministic. *)
val compare_base : t -> t -> int

val compare_key : t -> t -> int
(** The total left-to-right order [(base_v, slope, id)] under which, for
    a mutually non-crossing set, crossing positions at any depth are
    non-decreasing. This is the BST key of the external PSTs: segments
    sharing a base point fan out by slope, so base position alone would
    not order their crossings. *)

val compare_far_u : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Conversions from plane segments} *)

val left_of_vline : base_x:float -> Segment.t -> t
(** Left part of a segment w.r.t. the vertical line [x = base_x]: base
    point at the line, far point at the segment's left endpoint.
    Requires [spans_x s base_x] and [s] not vertical. *)

val right_of_vline : base_x:float -> Segment.t -> t
(** Symmetric right part. *)

val above_hline : base_y:float -> Segment.t -> t
(** For a segment with one endpoint on [y = base_y] and the other at
    [y >= base_y] (the paper's drawing convention). *)

val to_segment_above : base_y:float -> t -> Segment.t
(** Inverse of [above_hline] (for tests and figures). *)
