lib/internal/internal_vs.mli: Segdb_geom Segment Vquery
