examples/constraint_ranges.ml: Array List Printf Segdb_core Segdb_geom Segdb_io Segdb_util Segment Vquery
