lib/core/naive.mli: Vs_index
