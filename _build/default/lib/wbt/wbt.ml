module Make (K : sig
  type t

  val compare : t -> t -> int
end) =
struct
  type key = K.t

  type 'v t = Empty | Node of { l : 'v t; k : key; v : 'v; r : 'v t; size : int }

  let delta = 3
  let ratio = 2

  let empty = Empty
  let is_empty t = t = Empty

  let size = function Empty -> 0 | Node n -> n.size

  let rec height = function Empty -> 0 | Node n -> 1 + max (height n.l) (height n.r)

  let node l k v r = Node { l; k; v; r; size = size l + size r + 1 }

  (* Rotations restoring the weight-balance invariant after one
     insertion or deletion on a balanced tree. *)
  let single_l l k v r =
    match r with
    | Node { l = rl; k = rk; v = rv; r = rr; _ } -> node (node l k v rl) rk rv rr
    | Empty -> assert false

  let single_r l k v r =
    match l with
    | Node { l = ll; k = lk; v = lv; r = lr; _ } -> node ll lk lv (node lr k v r)
    | Empty -> assert false

  let double_l l k v r =
    match r with
    | Node { l = Node { l = rll; k = rlk; v = rlv; r = rlr; _ }; k = rk; v = rv; r = rr; _ } ->
        node (node l k v rll) rlk rlv (node rlr rk rv rr)
    | _ -> assert false

  let double_r l k v r =
    match l with
    | Node { l = ll; k = lk; v = lv; r = Node { l = lrl; k = lrk; v = lrv; r = lrr; _ }; _ } ->
        node (node ll lk lv lrl) lrk lrv (node lrr k v r)
    | _ -> assert false

  let is_balanced a b = delta * (size a + 1) >= size b + 1

  let balance l k v r =
    if is_balanced l r && is_balanced r l then node l k v r
    else if size r > size l then
      match r with
      | Node { l = rl; r = rr; _ } ->
          if size rl + 1 < ratio * (size rr + 1) then single_l l k v r else double_l l k v r
      | Empty -> assert false
    else
      match l with
      | Node { l = ll; r = lr; _ } ->
          if size lr + 1 < ratio * (size ll + 1) then single_r l k v r else double_r l k v r
      | Empty -> assert false

  let rec find key = function
    | Empty -> None
    | Node { l; k; v; r; _ } ->
        let c = K.compare key k in
        if c = 0 then Some v else if c < 0 then find key l else find key r

  let mem key t = find key t <> None

  let rec add key value = function
    | Empty -> node Empty key value Empty
    | Node { l; k; v; r; _ } ->
        let c = K.compare key k in
        if c = 0 then node l key value r
        else if c < 0 then balance (add key value l) k v r
        else balance l k v (add key value r)

  let rec min_binding = function
    | Empty -> None
    | Node { l = Empty; k; v; _ } -> Some (k, v)
    | Node { l; _ } -> min_binding l

  let rec max_binding = function
    | Empty -> None
    | Node { r = Empty; k; v; _ } -> Some (k, v)
    | Node { r; _ } -> max_binding r

  let rec remove_min = function
    | Empty -> invalid_arg "Wbt.remove_min: empty"
    | Node { l = Empty; k; v; r; _ } -> ((k, v), r)
    | Node { l; k; v; r; _ } ->
        let m, l' = remove_min l in
        (m, balance l' k v r)

  let glue l r =
    match (l, r) with
    | Empty, t | t, Empty -> t
    | _ ->
        let (k, v), r' = remove_min r in
        balance l k v r'

  let rec remove key = function
    | Empty -> Empty
    | Node { l; k; v; r; _ } ->
        let c = K.compare key k in
        if c = 0 then glue l r
        else if c < 0 then balance (remove key l) k v r
        else balance l k v (remove key r)

  let rec nth i = function
    | Empty -> invalid_arg "Wbt.nth: out of range"
    | Node { l; k; v; r; _ } ->
        let sl = size l in
        if i < sl then nth i l else if i = sl then (k, v) else nth (i - sl - 1) r

  let rec rank key = function
    | Empty -> 0
    | Node { l; k; r; _ } ->
        let c = K.compare key k in
        if c <= 0 then rank key l else size l + 1 + rank key r

  (* Join two balanced trees of arbitrary relative size around a pivot. *)
  let rec join l k v r =
    match (l, r) with
    | Empty, _ -> add k v r
    | _, Empty -> add k v l
    | Node ln, Node rn ->
        if delta * (ln.size + 1) < rn.size + 1 then balance (join l k v rn.l) rn.k rn.v rn.r
        else if delta * (rn.size + 1) < ln.size + 1 then balance ln.l ln.k ln.v (join ln.r k v r)
        else node l k v r

  let rec split key = function
    | Empty -> (Empty, None, Empty)
    | Node { l; k; v; r; _ } ->
        let c = K.compare key k in
        if c = 0 then (l, Some v, r)
        else if c < 0 then
          let ll, data, lr = split key l in
          (ll, data, join lr k v r)
        else
          let rl, data, rr = split key r in
          (join l k v rl, data, rr)

  let rec iter f = function
    | Empty -> ()
    | Node { l; k; v; r; _ } ->
        iter f l;
        f k v;
        iter f r

  let rec fold f t acc =
    match t with
    | Empty -> acc
    | Node { l; k; v; r; _ } -> fold f r (f k v (fold f l acc))

  let to_list t = fold (fun k v acc -> (k, v) :: acc) t [] |> List.rev

  let of_sorted_array a =
    let rec build lo hi =
      if lo > hi then Empty
      else
        let mid = (lo + hi) / 2 in
        let k, v = a.(mid) in
        node (build lo (mid - 1)) k v (build (mid + 1) hi)
    in
    for i = 1 to Array.length a - 1 do
      if K.compare (fst a.(i - 1)) (fst a.(i)) >= 0 then
        invalid_arg "Wbt.of_sorted_array: keys not strictly increasing"
    done;
    build 0 (Array.length a - 1)

  let check_invariants t =
    let rec bst lo hi = function
      | Empty -> true
      | Node { l; k; r; size = sz; _ } ->
          let ok_lo = match lo with None -> true | Some b -> K.compare b k < 0 in
          let ok_hi = match hi with None -> true | Some b -> K.compare k b < 0 in
          ok_lo && ok_hi
          && sz = size l + size r + 1
          && is_balanced l r && is_balanced r l
          && bst lo (Some k) l && bst (Some k) hi r
    in
    bst None None t
end
