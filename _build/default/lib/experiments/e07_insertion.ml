(* E7 — Theorem 1(iii) / Theorem 2(iii): amortized insertion cost.
   Builds an index on half the data, inserts the other half one by one
   and reports the amortized I/Os per insert (rebuild storms included —
   that is what "amortized" means here). *)

open Segdb_io
open Segdb_geom
open Segdb_util
module W = Segdb_workload.Workload
module Pst = Segdb_pst.Pst
module Itree = Segdb_itree.Interval_tree
module Vs = Segdb_core.Vs_index
module S1 = Segdb_core.Solution1
module S2 = Segdb_core.Solution2

let id = "e7"
let title = "E7: amortized insertion I/O vs N"
let validates = "Theorems 1(iii), 2(iii), Lemma 3(iii): amortized logarithmic updates"

let amortized io insert items =
  let before = Io_stats.snapshot io in
  Array.iter insert items;
  let d = Io_stats.diff before (Io_stats.snapshot io) in
  float_of_int (Io_stats.snapshot_total d) /. float_of_int (max 1 (Array.length items))

let run (p : Harness.params) =
  let span = 1000.0 in
  let table =
    Table.create ~title ~columns:[ "n"; "pst"; "itree"; "rtree"; "sol1"; "sol2"; "log2 n" ]
  in
  (* rebuild storms make large insert-only runs expensive to *simulate*
     (not only to run): cap the sweep below the query experiments' *)
  let sweep =
    if p.quick then [ 1 lsl 10; 1 lsl 11; 1 lsl 12 ]
    else List.filter (fun n -> n <= 1 lsl 15) (Harness.sweep_n p)
  in
  List.iter
    (fun n ->
      let rng = Rng.create p.seed in
      let segs = W.uniform rng ~n ~span in
      let k = n / 2 in
      let head = Array.sub segs 0 k and tail = Array.sub segs k (Array.length segs - k) in
      (* line-based PST on its own workload *)
      let pst_cost =
        let lsegs = W.line_based (Rng.create p.seed) ~n ~vspan:span ~umax:100.0 in
        let io = Io_stats.create () in
        let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
        let t = Pst.blocked ~node_capacity:Harness.block ~pool ~stats:io (Array.sub lsegs 0 k) in
        amortized io (Pst.insert t) (Array.sub lsegs k (n - k))
      in
      let itree_cost =
        let io = Io_stats.create () in
        let pool = Block_store.Pool.create ~capacity:Harness.pool_blocks in
        let ivl (s : Segment.t) = { Itree.lo = s.Segment.x1; hi = s.Segment.x2; seg = s } in
        let t =
          Itree.build ~leaf_capacity:Harness.block ~pool ~stats:io (Array.map ivl head)
        in
        amortized io (fun s -> Itree.insert t (ivl s)) tail
      in
      let solution_cost (module M : Vs.S) =
        let cfg = Vs.config ~pool_blocks:Harness.pool_blocks ~block:Harness.block () in
        let t = M.build cfg head in
        amortized cfg.stats (M.insert t) tail
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float ~decimals:1 pst_cost;
          Table.cell_float ~decimals:1 itree_cost;
          Table.cell_float ~decimals:1 (solution_cost (module Segdb_core.Rtree_index));
          Table.cell_float ~decimals:1 (solution_cost (module S1));
          Table.cell_float ~decimals:1 (solution_cost (module S2));
          Table.cell_float ~decimals:1 (Harness.log2 (float_of_int n));
        ])
    sweep;
  [ Harness.Table table ]
