let () =
  Alcotest.run "segdb"
    [ T_util.suite; T_io.suite; T_wbt.suite; T_btree.suite; T_geom.suite; T_pst.suite; T_itree.suite; T_segtree.suite; T_rtree.suite; T_workload.suite; T_core.suite; T_parallel.suite; T_seg_file.suite; T_internal.suite; T_sweep.suite; T_obs.suite; T_exec.suite; T_net.suite; T_repl.suite ]
